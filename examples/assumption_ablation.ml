(* The paper's "minimal assumptions" claim (§3.2, Theorem 2), live.

   Three committee-BA designs face the same adaptive attack — corrupt a
   committee member the instant its ACK reveals it, and try to make it
   ACK the opposite bit too:

   1. Chen-Micali style: round-specific eligibility tickets, ACK bits
      signed with ephemeral forward-secure keys, keys erased right after
      sending (the MEMORY-ERASURE model).
   2. The same protocol when erasure is not available.
   3. The paper's protocol: BIT-SPECIFIC eligibility tickets, no
      ephemeral keys, no erasure — nothing to steal.

     dune exec examples/assumption_ablation.exe
*)

open Basim
open Bacore

let n = 360

let budget = 110

let params = Params.make ~lambda:20 ~max_epochs:5 ()

let verdict_line label conflicts verdict =
  Printf.printf "%-38s %-22s %s\n" label
    (if conflicts > 0 then
       Printf.sprintf "committees mirrored!" |> fun s ->
       Printf.sprintf "%s (%d)" s conflicts
     else "no mirrored committees")
    (if verdict.Properties.consistent then "outputs agree"
     else "OUTPUTS DISAGREE")

let () =
  print_endline
    "One adaptive attack, three designs (n = 360, f = 110, split inputs)\n";
  let inputs = Scenario.split_inputs ~n in

  (* 1. Chen-Micali with the erasure assumption. *)
  let cm_erasure = Babaselines.Chen_micali.protocol ~params ~erasure:true in
  let env1, r1 =
    Engine.run_env cm_erasure
      ~adversary:(Baattacks.Cm_equivocator.make ())
      ~n ~budget ~inputs ~max_rounds:14 ~seed:5L
  in
  verdict_line "Chen-Micali + memory erasure:"
    (Atomic.get env1.Babaselines.Chen_micali.conflicts)
    (Properties.agreement ~inputs r1);

  (* 2. Chen-Micali without it. *)
  let cm_plain = Babaselines.Chen_micali.protocol ~params ~erasure:false in
  let env2, r2 =
    Engine.run_env cm_plain
      ~adversary:(Baattacks.Cm_equivocator.make ())
      ~n ~budget ~inputs ~max_rounds:14 ~seed:5L
  in
  verdict_line "Chen-Micali, erasure disabled:"
    (Atomic.get env2.Babaselines.Chen_micali.conflicts)
    (Properties.agreement ~inputs r2);

  (* 3. The paper's bit-specific eligibility. *)
  let paper =
    Sub_third.protocol ~params ~world:`Hybrid ~mode:Sub_third.Bit_specific
  in
  let env3, r3 =
    Engine.run_env paper
      ~adversary:(Baattacks.Equivocator.make ())
      ~n ~budget ~inputs ~max_rounds:14 ~seed:5L
  in
  verdict_line "bit-specific eligibility (paper):"
    (Atomic.get env3.Sub_third.conflicts)
    (Properties.agreement ~inputs r3);

  print_newline ();
  print_endline
    "Chen-Micali is only as safe as the promise that a corrupted machine's\n\
     erased keys are really gone; the paper's protocol gets the same\n\
     protection from the lottery itself — a ticket for (ACK, r, b) says\n\
     nothing about (ACK, r, 1-b) — which is why Theorem 2 needs neither\n\
     random oracles nor the memory-erasure model."
