(* Source-lint driver: walks lib/**/*.ml for banned patterns and emits
   a machine-readable JSON report. Deliberately dependency-free (stdlib
   [Arg], no cmdliner) so the lint gate builds even when the main CLI
   does not. Exit status: 0 clean, 1 findings, 2 usage error. *)

let root = ref "."
let json_out = ref ""
let quiet = ref false

let spec =
  [ ("--root", Arg.Set_string root, "DIR repository root to scan (default .)");
    ( "--json",
      Arg.Set_string json_out,
      "FILE write the JSON report to FILE (default: no report)" );
    ("--quiet", Arg.Set quiet, " suppress per-finding lines on stdout") ]

let usage = "ba_lint [--root DIR] [--json FILE] [--quiet]"

let () =
  Arg.parse spec
    (fun anon ->
      Printf.eprintf "ba_lint: unexpected argument %S\n" anon;
      Arg.usage spec usage;
      exit 2)
    usage;
  let findings = Bacheck.Source_lint.scan_tree ~root:!root in
  if not !quiet then
    List.iter
      (fun f -> Format.printf "%a@." Bacheck.Source_lint.pp_finding f)
      findings;
  let report =
    Baobs.Json.Obj
      [ ("tool", Baobs.Json.String "ba_lint");
        ("root", Baobs.Json.String !root);
        ("findings", Bacheck.Source_lint.findings_to_json findings);
        ("count", Baobs.Json.Int (List.length findings)) ]
  in
  if !json_out <> "" then begin
    let oc = open_out !json_out in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (Baobs.Json.to_string report ^ "\n"))
  end;
  if findings = [] then begin
    if not !quiet then print_endline "ba_lint: clean"
  end
  else begin
    Printf.printf "ba_lint: %d finding(s)\n" (List.length findings);
    exit 1
  end
