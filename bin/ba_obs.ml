(* Observability toolchain: consume what the instrumented runs emit.

     ba_obs report trace.jsonl              per-round/per-node analytics
     ba_obs profile profile.json            probe snapshot -> Chrome trace
     ba_obs compare BENCH_A.json BENCH_B.json   bench-regression gate

   Exit codes: 0 clean; 1 usage, I/O, parse errors, or (compare) a
   regression past the threshold; 2 a failed [report --check]. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let read_json path = Baobs.Json.of_string (String.trim (read_file path))

let write_out output text =
  match output with
  | None -> print_string text
  | Some path ->
      let oc = open_out path in
      output_string oc text;
      close_out oc

(* Shared error discipline: Sys_error covers unreadable inputs and
   unwritable outputs; Parse_error covers malformed JSON/traces. *)
let guarded f =
  try f () with
  | Sys_error e ->
      prerr_endline ("ba_obs: " ^ e);
      1
  | Baobs.Json.Parse_error e ->
      prerr_endline ("ba_obs: " ^ e);
      1

(* ---------- report ------------------------------------------------------ *)

type format = Text | Json | Csv

let formats = [ ("text", Text); ("json", Json); ("csv", Csv) ]

let run_report file format top chk output =
  guarded (fun () ->
      let report = Baobs_report.Report.of_jsonl_string (read_file file) in
      let rendered =
        match format with
        | Text -> Baobs_report.Report.to_text ~k:top report
        | Json ->
            Baobs.Json.to_string (Baobs_report.Report.to_json ~k:top report)
            ^ "\n"
        | Csv -> Baobs_report.Report.to_csv report
      in
      write_out output rendered;
      if not chk then 0
      else
        match Baobs_report.Report.check report with
        | Ok () ->
            prerr_endline "ba_obs: check ok";
            0
        | Error errors ->
            List.iter (fun e -> prerr_endline ("ba_obs: check: " ^ e)) errors;
            2)

let file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"TRACE" ~doc:"JSONL trace file (from ba_run --trace-jsonl).")

let format_arg =
  Arg.(
    value
    & opt (enum formats) Text
    & info [ "format" ] ~docv:"FMT" ~doc:"Output format: text, json, or csv.")

let top_arg =
  Arg.(
    value & opt int 10
    & info [ "top" ] ~docv:"K" ~doc:"How many top talkers to list.")

let check_arg =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:
          "Verify the report's internal consistency (event JSON \
           round-trip; per-round and per-node tables sum to the totals) \
           and exit 2 on any mismatch.")

let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write to $(docv) instead of stdout.")

let report_cmd =
  let doc =
    "Analyze a JSONL execution trace: per-round timeline, per-node \
     communication matrix with top-k talkers, message-size percentiles"
  in
  Cmd.v
    (Cmd.info "report" ~doc)
    Term.(const run_report $ file_arg $ format_arg $ top_arg $ check_arg
          $ output_arg)

(* ---------- profile ----------------------------------------------------- *)

let run_profile file output =
  guarded (fun () ->
      let chrome = Baobs.Chrome_trace.of_profile (read_json file) in
      write_out output (Baobs.Json.to_string chrome ^ "\n");
      0)

let profile_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"PROFILE"
        ~doc:"Probe profile (from ba_run --profile-json).")

let profile_cmd =
  let doc =
    "Convert a probe snapshot into Chrome trace_event JSON loadable in \
     Perfetto (ui.perfetto.dev) or chrome://tracing"
  in
  Cmd.v (Cmd.info "profile" ~doc) Term.(const run_profile $ profile_arg $ output_arg)

(* ---------- compare ----------------------------------------------------- *)

let run_compare base current threshold only json_out =
  guarded (fun () ->
      if threshold <= 0.0 then begin
        prerr_endline "ba_obs: --threshold must be positive";
        1
      end
      else begin
        let cmp =
          Baobs.Bench_compare.diff ~threshold ?only ~base:(read_json base)
            ~current:(read_json current) ()
        in
        print_string (Baobs.Bench_compare.render cmp);
        (match json_out with
        | Some path ->
            write_out (Some path)
              (Baobs.Json.to_string (Baobs.Bench_compare.to_json cmp) ^ "\n")
        | None -> ());
        Baobs.Bench_compare.exit_code cmp
      end)

let base_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"BASE" ~doc:"Baseline bench report (BENCH_*.json).")

let current_arg =
  Arg.(
    required
    & pos 1 (some file) None
    & info [] ~docv:"CURRENT" ~doc:"Current bench report to gate.")

let threshold_arg =
  Arg.(
    value & opt float 0.2
    & info [ "threshold" ] ~docv:"FRAC"
        ~doc:
          "Regression threshold as a fraction: a benchmark regresses when \
           current/base exceeds 1 + $(docv) (default 0.2 = 20%).")

let only_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "only" ] ~docv:"PREFIX"
        ~doc:
          "Restrict the comparison to benchmarks whose name starts with \
           $(docv) (e.g. ba/crypto/ to gate on the low-noise microbenches \
           only).")

let json_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Also write the machine-readable comparison to $(docv).")

let compare_cmd =
  let doc =
    "Diff two bench reports by ns/run and exit 1 if any benchmark \
     regressed past the threshold"
  in
  Cmd.v
    (Cmd.info "compare" ~doc)
    Term.(const run_compare $ base_arg $ current_arg $ threshold_arg
          $ only_arg $ json_out_arg)

(* ---------- group ------------------------------------------------------- *)

let cmd =
  let doc = "Analyze traces, profiles, and bench reports from the BA harness" in
  Cmd.group (Cmd.info "ba_obs" ~doc) [ report_cmd; profile_cmd; compare_cmd ]

let () = exit (Cmd.eval' cmd)
