(* Observability toolchain: consume what the instrumented runs emit.

     ba_obs report trace.jsonl              per-round/per-node analytics
     ba_obs causal trace.jsonl              happens-before DAG, cones, taint
     ba_obs profile profile.json            probe snapshot -> Chrome trace
     ba_obs compare BENCH_A.json BENCH_B.json   bench-regression gate
     ba_obs mem resource.json               per-round memory-flatness report

   Exit codes: 0 clean; 1 usage, I/O, parse errors, or (compare) a
   regression past the threshold; 2 a failed [report --check],
   [causal --check], or [mem --check]. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let read_json path = Baobs.Json.of_string (String.trim (read_file path))

let write_out output text =
  match output with
  | None -> print_string text
  | Some path ->
      let oc = open_out path in
      output_string oc text;
      close_out oc

(* Shared error discipline: Sys_error covers unreadable inputs and
   unwritable outputs; Parse_error covers malformed JSON/traces. *)
let guarded f =
  try f () with
  | Sys_error e ->
      prerr_endline ("ba_obs: " ^ e);
      1
  | Baobs.Json.Parse_error e ->
      prerr_endline ("ba_obs: " ^ e);
      1

(* ---------- report ------------------------------------------------------ *)

type format = Text | Json | Csv

let formats = [ ("text", Text); ("json", Json); ("csv", Csv) ]

let run_report file format top chk rounds output =
  guarded (fun () ->
      let report =
        Baobs_report.Report.of_jsonl_string ?rounds (read_file file)
      in
      let rendered =
        match format with
        | Text -> Baobs_report.Report.to_text ~k:top report
        | Json ->
            Baobs.Json.to_string (Baobs_report.Report.to_json ~k:top report)
            ^ "\n"
        | Csv -> Baobs_report.Report.to_csv report
      in
      write_out output rendered;
      if not chk then 0
      else
        match Baobs_report.Report.check report with
        | Ok () ->
            prerr_endline "ba_obs: check ok";
            0
        | Error errors ->
            List.iter (fun e -> prerr_endline ("ba_obs: check: " ^ e)) errors;
            2)

let file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"TRACE" ~doc:"JSONL trace file (from ba_run --trace-jsonl).")

let format_arg =
  Arg.(
    value
    & opt (enum formats) Text
    & info [ "format" ] ~docv:"FMT" ~doc:"Output format: text, json, or csv.")

let top_arg =
  Arg.(
    value & opt int 10
    & info [ "top" ] ~docv:"K" ~doc:"How many top talkers to list.")

let check_arg =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:
          "Verify the report's internal consistency (event JSON \
           round-trip; per-round and per-node tables sum to the totals) \
           and exit 2 on any mismatch.")

let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write to $(docv) instead of stdout.")

(* "A:B" — an inclusive round window (A = -1 covers setup events). *)
let rounds_conv =
  let parse s =
    match String.index_opt s ':' with
    | None -> Error (`Msg "expected A:B (inclusive round window)")
    | Some i -> (
        let a = String.sub s 0 i
        and b = String.sub s (i + 1) (String.length s - i - 1) in
        match (int_of_string_opt a, int_of_string_opt b) with
        | Some lo, Some hi when lo <= hi -> Ok (lo, hi)
        | Some lo, Some hi ->
            Error
              (`Msg (Printf.sprintf "empty round window %d:%d" lo hi))
        | _ -> Error (`Msg "expected A:B with integer bounds"))
  in
  let print fmt (lo, hi) = Format.fprintf fmt "%d:%d" lo hi in
  Arg.conv (parse, print)

let rounds_arg =
  Arg.(
    value
    & opt (some rounds_conv) None
    & info [ "rounds" ] ~docv:"A:B"
        ~doc:
          "Restrict the report to rounds $(docv) inclusive (applied before \
           the timeline/matrix/histograms; --check sums are recomputed over \
           the window). Round -1 is setup.")

let report_cmd =
  let doc =
    "Analyze a JSONL execution trace: per-round timeline, per-node \
     communication matrix with top-k talkers, message-size percentiles"
  in
  Cmd.v
    (Cmd.info "report" ~doc)
    Term.(const run_report $ file_arg $ format_arg $ top_arg $ check_arg
          $ rounds_arg $ output_arg)

(* ---------- causal ------------------------------------------------------ *)

type causal_format = C_text | C_json | C_csv | C_dot

let causal_formats =
  [ ("text", C_text); ("json", C_json); ("csv", C_csv); ("dot", C_dot) ]

let run_causal file format top n_override chk chrome output =
  guarded (fun () ->
      let causal =
        Baobs_report.Causal.of_jsonl_string ?n:n_override (read_file file)
      in
      let rendered =
        match format with
        | C_text -> Baobs_report.Causal.to_text ~top causal
        | C_json ->
            Baobs.Json.to_string (Baobs_report.Causal.to_json causal) ^ "\n"
        | C_csv -> Baobs_report.Causal.to_csv causal
        | C_dot -> Baobs_report.Causal.to_dot causal
      in
      write_out output rendered;
      (match chrome with
      | Some path ->
          write_out (Some path)
            (Baobs.Json.to_string (Baobs_report.Causal.to_chrome causal) ^ "\n")
      | None -> ());
      if not chk then 0
      else
        match Baobs_report.Causal.check causal with
        | Ok () ->
            prerr_endline "ba_obs: causal check ok";
            0
        | Error errors ->
            List.iter
              (fun e -> prerr_endline ("ba_obs: causal check: " ^ e))
              errors;
            2)

let causal_format_arg =
  Arg.(
    value
    & opt (enum causal_formats) C_text
    & info [ "format" ] ~docv:"FMT"
        ~doc:"Output format: text, json (ba-causal/v1), csv, or dot.")

let causal_top_arg =
  Arg.(
    value & opt int 10
    & info [ "top" ] ~docv:"K"
        ~doc:
          "How many decisions to list in the text format (highest tainted \
           fraction first).")

let causal_n_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "n" ] ~docv:"N"
        ~doc:
          "Node count (default: the smallest count consistent with the \
           trace).")

let causal_check_arg =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:
          "Self-verify the analysis — DAG round-stratification, flow-matrix \
           sums against independently computed Definition-7 totals, \
           per-decision cone/taint/critical-path invariants — and exit 2 on \
           any mismatch.")

let chrome_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "chrome" ] ~docv:"FILE"
        ~doc:
          "Also write a Chrome trace_event document with per-message flow \
           arrows to $(docv) (load in ui.perfetto.dev).")

let causal_cmd =
  let doc =
    "Reconstruct the happens-before DAG of a traced execution: per-decision \
     causal cones, critical paths, a per-kind flow matrix, and \
     adversary-influence (taint) attribution"
  in
  Cmd.v
    (Cmd.info "causal" ~doc)
    Term.(const run_causal $ file_arg $ causal_format_arg $ causal_top_arg
          $ causal_n_arg $ causal_check_arg $ chrome_arg $ output_arg)

(* ---------- profile ----------------------------------------------------- *)

let run_profile file output =
  guarded (fun () ->
      let chrome = Baobs.Chrome_trace.of_profile (read_json file) in
      write_out output (Baobs.Json.to_string chrome ^ "\n");
      0)

let profile_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"PROFILE"
        ~doc:"Probe profile (from ba_run --profile-json).")

let profile_cmd =
  let doc =
    "Convert a probe snapshot into Chrome trace_event JSON loadable in \
     Perfetto (ui.perfetto.dev) or chrome://tracing"
  in
  Cmd.v (Cmd.info "profile" ~doc) Term.(const run_profile $ profile_arg $ output_arg)

(* ---------- mem --------------------------------------------------------- *)

let run_mem file format warmup cooldown tolerance chk output =
  guarded (fun () ->
      let report = Baobs.Resource.report_of_json (read_json file) in
      let flat =
        Baobs.Resource.flatness ?warmup ?cooldown ~tolerance report
      in
      let rendered =
        match format with
        | Text -> Baobs.Resource.report_to_text report flat ^ "\n"
        | Json ->
            Baobs.Json.to_string (Baobs.Resource.report_to_json report flat)
            ^ "\n"
        | Csv -> Baobs.Resource.report_to_csv report
      in
      write_out output rendered;
      if not chk then 0
      else if flat.Baobs.Resource.flat then begin
        prerr_endline "ba_obs: mem check ok";
        0
      end
      else begin
        Printf.eprintf
          "ba_obs: mem check: allocated words/round drifted %+.4f over the \
           post-warmup window (tolerance %.2f) — per-round memory is not flat\n"
          flat.Baobs.Resource.drift flat.Baobs.Resource.tolerance;
        2
      end)

let mem_file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"RESOURCE"
        ~doc:"ba-resource/v1 report (from ba_run --resource-json).")

let warmup_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "warmup" ] ~docv:"N"
        ~doc:
          "Exclude the first $(docv) executed rounds from the flatness fit \
           (default: a fifth of the rounds, at least 1).")

let cooldown_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "cooldown" ] ~docv:"N"
        ~doc:
          "Exclude the last $(docv) executed rounds from the flatness fit — \
           the decide/halt phase is a one-off allocation spike, not a leak \
           (default: a fifth of the rounds, at least 1).")

let tolerance_arg =
  Arg.(
    value & opt float 0.25
    & info [ "tolerance" ] ~docv:"FRAC"
        ~doc:
          "Maximum tolerated relative drift of allocated-words-per-round \
           across the post-warmup window (default 0.25).")

let mem_check_arg =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:
          "Assert the allocated-words-per-round slope is ≈ 0 after warmup \
           and exit 2 on violation — the CI memory-flatness gate.")

let mem_cmd =
  let doc =
    "Render a per-round memory/GC flatness report from a ba_run \
     --resource-json document, optionally gating on allocated-words-per-round \
     flatness"
  in
  Cmd.v
    (Cmd.info "mem" ~doc)
    Term.(const run_mem $ mem_file_arg $ format_arg $ warmup_arg
          $ cooldown_arg $ tolerance_arg $ mem_check_arg $ output_arg)

(* ---------- compare ----------------------------------------------------- *)

let run_compare base current threshold only json_out =
  guarded (fun () ->
      if threshold <= 0.0 then begin
        prerr_endline "ba_obs: --threshold must be positive";
        1
      end
      else begin
        let cmp =
          Baobs.Bench_compare.diff ~threshold ?only ~base:(read_json base)
            ~current:(read_json current) ()
        in
        print_string (Baobs.Bench_compare.render cmp);
        (match json_out with
        | Some path ->
            write_out (Some path)
              (Baobs.Json.to_string (Baobs.Bench_compare.to_json cmp) ^ "\n")
        | None -> ());
        Baobs.Bench_compare.exit_code cmp
      end)

let base_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"BASE" ~doc:"Baseline bench report (BENCH_*.json).")

let current_arg =
  Arg.(
    required
    & pos 1 (some file) None
    & info [] ~docv:"CURRENT" ~doc:"Current bench report to gate.")

let threshold_arg =
  Arg.(
    value & opt float 0.2
    & info [ "threshold" ] ~docv:"FRAC"
        ~doc:
          "Regression threshold as a fraction: a benchmark regresses when \
           current/base exceeds 1 + $(docv) (default 0.2 = 20%).")

let only_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "only" ] ~docv:"PREFIX"
        ~doc:
          "Restrict the comparison to benchmarks whose name starts with \
           $(docv) (e.g. ba/crypto/ to gate on the low-noise microbenches \
           only).")

let json_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Also write the machine-readable comparison to $(docv).")

let compare_cmd =
  let doc =
    "Diff two bench reports by ns/run and exit 1 if any benchmark \
     regressed past the threshold"
  in
  Cmd.v
    (Cmd.info "compare" ~doc)
    Term.(const run_compare $ base_arg $ current_arg $ threshold_arg
          $ only_arg $ json_out_arg)

(* ---------- group ------------------------------------------------------- *)

let cmd =
  let doc = "Analyze traces, profiles, and bench reports from the BA harness" in
  Cmd.group (Cmd.info "ba_obs" ~doc)
    [ report_cmd; causal_cmd; profile_cmd; compare_cmd; mem_cmd ]

let () = exit (Cmd.eval' cmd)
