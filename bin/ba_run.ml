(* Command-line runner: execute one protocol × adversary × parameter
   configuration and print the outcome, the property verdict, and the
   communication metrics.

     dune exec bin/ba_run.exe -- --protocol sub-hm --n 201 --adversary \
       split-vote --budget 60 --inputs split --seed 7
*)

open Basim
open Bacore
open Cmdliner

type proto_choice =
  | P_warmup
  | P_sub_third
  | P_sub_third_agnostic
  | P_quadratic
  | P_sub_hm
  | P_sub_hm_real
  | P_dolev_strong
  | P_static_committee
  | P_nakamoto
  | P_sparse_relay
  | P_chen_micali
  | P_chen_micali_no_erasure

let protocols =
  [ ("warmup-third", P_warmup);
    ("sub-third", P_sub_third);
    ("sub-third-agnostic", P_sub_third_agnostic);
    ("quadratic-hm", P_quadratic);
    ("sub-hm", P_sub_hm);
    ("sub-hm-real", P_sub_hm_real);
    ("dolev-strong", P_dolev_strong);
    ("static-committee", P_static_committee);
    ("nakamoto", P_nakamoto);
    ("sparse-relay", P_sparse_relay);
    ("chen-micali", P_chen_micali);
    ("chen-micali-no-erasure", P_chen_micali_no_erasure) ]

type adv_choice =
  | A_none
  | A_eraser
  | A_silencer
  | A_split
  | A_equivocator
  | A_cm_equivocator
  | A_takeover

let adversaries =
  [ ("none", A_none);
    ("eraser", A_eraser);
    ("silencer", A_silencer);
    ("split-vote", A_split);
    ("equivocator", A_equivocator);
    ("cm-equivocator", A_cm_equivocator);
    ("takeover", A_takeover) ]

type inputs_choice = I_zero | I_one | I_split | I_random

let inputs_choices =
  [ ("zeros", I_zero); ("ones", I_one); ("split", I_split); ("random", I_random) ]

let make_inputs choice ~n ~seed =
  match choice with
  | I_zero -> Scenario.unanimous_inputs ~n false
  | I_one -> Scenario.unanimous_inputs ~n true
  | I_split -> Scenario.split_inputs ~n
  | I_random -> Scenario.random_inputs ~n seed

let print_result ~label ~inputs result =
  let verdict = Properties.agreement ~inputs result in
  Printf.printf "protocol      : %s\n" label;
  Printf.printf "rounds        : %d\n" result.Engine.rounds_used;
  Printf.printf "corruptions   : %d\n" result.Engine.corruptions;
  Printf.printf "verdict       : %s\n"
    (Format.asprintf "%a" Properties.pp verdict);
  Printf.printf "communication : %s\n"
    (Format.asprintf "%a" Metrics.pp result.Engine.metrics);
  let decided =
    Array.to_list result.Engine.outputs |> List.filter_map (fun o -> o)
  in
  let ones = List.length (List.filter (fun b -> b) decided) in
  Printf.printf "outputs       : %d decided (%d ones, %d zeros)\n"
    (List.length decided) ones
    (List.length decided - ones);
  if Properties.ok verdict then 0 else 2

(* Monte-Carlo sweep (--reps > 1): the single configuration repeated
   over derived seeds — fresh inputs, adversary and protocol state per
   trial — aggregated through the deterministic parallel trial runner,
   so the printed rates are identical for every --jobs value. *)
let print_rates ~label (rates : Baexperiments.Common.rates) =
  let open Baexperiments.Common in
  Printf.printf "protocol      : %s\n" label;
  Printf.printf "trials        : %d\n" rates.trials;
  Printf.printf "non-term      : %s\n" (rate rates.termination_fail rates.trials);
  Printf.printf "inconsistent  : %s\n" (rate rates.consistency_fail rates.trials);
  Printf.printf "invalid       : %s\n" (rate rates.validity_fail rates.trials);
  Printf.printf "mean rounds   : %.2f\n" (mean_rounds rates);
  Printf.printf "mean multicast: %.2f\n" (mean_multicasts rates);
  Printf.printf "mean unicasts : %.2f\n" (mean_unicasts rates);
  Printf.printf "mean removals : %.2f\n" (mean_removals rates);
  Printf.printf "mean corrupt  : %.2f\n" (mean_corruptions rates)

(* Each protocol has its own message type, so the dispatch instantiates
   engine, adversary, and printer together. *)
let dispatch proto adv ~n ~budget ~lambda ~epochs ~inputs_choice ~seed ~reps
    ~jobs ~sparse ~trace ~trace_jsonl ~metrics_json ~profile_json
    ~resource_json ~causal ~causal_json ~timings ~check_trace ~lenient_caps =
  (* --causal-json implies causal recording (message ids, kind labels,
     explicit recipient lists in the trace). *)
  let causal = causal || causal_json <> None in
  let collector =
    if trace || check_trace || causal_json <> None then
      Some (Trace.collector ())
    else None
  in
  let jsonl =
    Option.map
      (fun path ->
        let oc = open_out path in
        (oc, Trace.jsonl_tracer (Baobs.Jsonl.to_channel oc)))
      trace_jsonl
  in
  let tracer e =
    (match collector with Some c -> Trace.observe c e | None -> ());
    match jsonl with Some (_, emit) -> emit e | None -> ()
  in
  let series =
    if metrics_json <> None then Some (Baobs.Series.create ~n) else None
  in
  let resource =
    match resource_json with
    | None -> None
    | Some _ ->
        (* Sampling reads GC counters only, so flipping this on cannot
           change the execution or its trace (asserted in CI). *)
        Baobs.Resource.enable ();
        Some (Baobs.Resource.create ())
  in
  if timings then Baobs.Probe.enable ();
  (match profile_json with
  | Some _ ->
      (* Per-span events feed [ba_obs profile]'s Chrome trace; the ring
         bounds memory on long runs (oldest spans evicted first). *)
      Baobs.Probe.enable ();
      Baobs.Probe.record_spans ~capacity:65_536
  | None -> ());
  let write_profile () =
    match profile_json with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (Baobs.Json.to_string (Baobs.Probe.profile_to_json ()));
        output_char oc '\n';
        close_out oc
  in
  let print_trace () =
    match collector with
    | Some c when trace ->
        print_endline "--- trace ---";
        print_string (Trace.render c)
    | Some _ | None -> ()
  in
  (* Post-run bookkeeping shared by every protocol branch: close the
     JSONL sink, export metrics + series, print timings. *)
  let finish ~label (result : Engine.result) =
    (match jsonl with Some (oc, _) -> close_out oc | None -> ());
    (match (resource_json, resource) with
    | Some path, Some r ->
        let meta =
          [ ("protocol", Baobs.Json.String label);
            ("n", Baobs.Json.Int n);
            ("budget", Baobs.Json.Int budget);
            ("seed", Baobs.Json.Int seed);
            ("rounds_used", Baobs.Json.Int result.Engine.rounds_used) ]
        in
        let oc = open_out path in
        output_string oc (Baobs.Json.to_string (Baobs.Resource.to_json ~meta r));
        output_char oc '\n';
        close_out oc
    | _ -> ());
    (match (metrics_json, series) with
    | Some path, Some s ->
        let json =
          Baobs.Json.Obj
            [ ("protocol", Baobs.Json.String label);
              ("n", Baobs.Json.Int n);
              ("budget", Baobs.Json.Int budget);
              ("seed", Baobs.Json.Int seed);
              ("rounds_used", Baobs.Json.Int result.Engine.rounds_used);
              ("metrics", Metrics.to_json result.Engine.metrics);
              ("series", Baobs.Series.to_json s) ]
        in
        let oc = open_out path in
        output_string oc (Baobs.Json.to_string json);
        output_char oc '\n';
        close_out oc
    | _ -> ());
    if timings then begin
      print_endline "--- timings ---";
      print_string (Baobs.Probe.report ())
    end;
    write_profile ()
  in
  let params = Params.make ~lambda ~max_epochs:epochs () in
  let seed64 = Int64.of_int seed in
  let inputs = make_inputs inputs_choice ~n ~seed:seed64 in
  let max_rounds = (4 * epochs) + 12 in
  let generic_adv () =
    match adv with
    | A_none ->
        Ok (fun () -> Engine.passive ~name:"none" ~model:Corruption.Adaptive)
    | A_eraser -> Ok (fun () -> Baattacks.Eraser.make ())
    | A_silencer -> Ok (fun () -> Baattacks.Eraser.silencer ())
    | A_split | A_equivocator | A_cm_equivocator | A_takeover ->
        Error "this adversary only targets specific protocols"
  in
  let on_caps_mismatch = if lenient_caps then `Warn else `Refuse in
  (* Pipe the collected trace through the invariant verifier; a finding
     means the run violated the declared adversary model. Exit 3 keeps
     trace violations distinct from property-verdict failures (2). *)
  let run_check_trace adversary (result : Engine.result) =
    if not check_trace then 0
    else
      match collector with
      | None -> 0
      | Some c ->
          let findings =
            Bacheck.Trace_lint.verify ~metrics:result.Engine.metrics
              ~model:adversary.Engine.model ~budget (Trace.events c)
          in
          let items = Bacheck.Report.of_trace_findings findings in
          if Bacheck.Report.emit_text ~tool:"check-trace" items then 3 else 0
  in
  let run_sweep ?sparse_make proto_rec label make_adv =
    if
      trace || check_trace || causal || trace_jsonl <> None
      || resource_json <> None
    then begin
      prerr_endline
        "ba_run: --trace/--trace-jsonl/--check-trace/--causal/--causal-json/\
         --resource-json observe a single execution; drop them or use --reps 1";
      1
    end
    else begin
      let rates =
        Baexperiments.Common.measure ?jobs ~reps ~seed:seed64 (fun s ->
            let inputs = make_inputs inputs_choice ~n ~seed:s in
            (* fresh hook per trial: trials may run on parallel domains *)
            let sparse = Option.map (fun make -> make ()) sparse_make in
            let result =
              Engine.run ?sparse ~on_caps_mismatch proto_rec
                ~adversary:(make_adv ()) ~n ~budget ~inputs ~max_rounds ~seed:s
            in
            (result, Properties.agreement ~inputs result))
      in
      print_rates ~label rates;
      if timings then begin
        print_endline "--- timings ---";
        print_string (Baobs.Probe.report ())
      end;
      write_profile ();
      (match metrics_json with
      | Some path ->
          let json =
            Baobs.Json.Obj
              [ ("protocol", Baobs.Json.String label);
                ("n", Baobs.Json.Int n);
                ("budget", Baobs.Json.Int budget);
                ("seed", Baobs.Json.Int seed);
                ("reps", Baobs.Json.Int reps);
                ("rates", Baexperiments.Common.rates_to_json rates) ]
          in
          let oc = open_out path in
          output_string oc (Baobs.Json.to_string json);
          output_char oc '\n';
          close_out oc
      | None -> ());
      if
        rates.Baexperiments.Common.consistency_fail = 0
        && rates.Baexperiments.Common.validity_fail = 0
        && rates.Baexperiments.Common.termination_fail = 0
      then 0
      else 2
    end
  in
  let run_proto ?sparse_make ~labeler proto_rec label make_adv =
    if reps > 1 then run_sweep ?sparse_make proto_rec label make_adv
    else begin
      let adversary = make_adv () in
      let labeler = if causal then Some labeler else None in
      let sparse = Option.map (fun make -> make ()) sparse_make in
      let result =
        Engine.run ~tracer ?series ?resource ?labeler ?sparse ~on_caps_mismatch
          proto_rec ~adversary ~n ~budget ~inputs ~max_rounds ~seed:seed64
      in
      print_trace ();
      finish ~label result;
      (match (causal_json, collector) with
      | Some path, Some c ->
          let analysis = Baobs_report.Causal.of_events ~n (Trace.events c) in
          let oc = open_out path in
          output_string oc
            (Baobs.Json.to_string (Baobs_report.Causal.to_json analysis));
          output_char oc '\n';
          close_out oc
      | (Some _ | None), (Some _ | None) -> ());
      let check_code = run_check_trace adversary result in
      let verdict_code = print_result ~label ~inputs result in
      if check_code <> 0 then check_code else verdict_code
    end
  in
  let run_generic ~labeler proto_rec label =
    match generic_adv () with
    | Error e ->
        prerr_endline e;
        1
    | Ok adversary -> run_proto ~labeler proto_rec label adversary
  in
  match proto with
  | P_warmup ->
      run_generic ~labeler:Warmup_third.msg_kind
        (Warmup_third.protocol ~params) "warmup-third"
  | P_quadratic ->
      run_generic ~labeler:Quadratic_hm.msg_kind (Quadratic_hm.protocol ())
        "quadratic-hm"
  | P_dolev_strong ->
      run_generic ~labeler:Babaselines.Dolev_strong.msg_kind
        (Babaselines.Dolev_strong.protocol ~sender:0 ~f:((n - 1) / 3))
        "dolev-strong"
  | P_static_committee ->
      let proto_rec =
        Babaselines.Static_committee.protocol ~committee_size:lambda
      in
      let adversary =
        match adv with
        | A_none ->
            Ok (fun () -> Engine.passive ~name:"none" ~model:Corruption.Adaptive)
        | A_eraser -> Ok (fun () -> Baattacks.Eraser.make ())
        | A_silencer -> Ok (fun () -> Baattacks.Eraser.silencer ())
        | A_takeover -> Ok (fun () -> Baattacks.Takeover.make ~force:true ())
        | A_split | A_equivocator | A_cm_equivocator ->
            Error "use takeover against static-committee"
      in
      (match adversary with
      | Error e ->
          prerr_endline e;
          1
      | Ok adversary ->
          run_proto ~labeler:Babaselines.Static_committee.msg_kind proto_rec
            "static-committee" adversary)
  | P_nakamoto ->
      run_generic ~labeler:Babaselines.Nakamoto.msg_kind
        (Babaselines.Nakamoto.protocol ~p:0.01 ~confirmations:6)
        "nakamoto"
  | P_sparse_relay ->
      run_generic ~labeler:Babaselines.Sparse_relay.msg_kind
        (Babaselines.Sparse_relay.protocol ~d:3)
        "sparse-relay"
  | P_chen_micali | P_chen_micali_no_erasure ->
      let erasure = proto = P_chen_micali in
      let proto_rec = Babaselines.Chen_micali.protocol ~params ~erasure in
      let adversary =
        match adv with
        | A_none ->
            Ok (fun () -> Engine.passive ~name:"none" ~model:Corruption.Adaptive)
        | A_eraser -> Ok (fun () -> Baattacks.Eraser.make ())
        | A_silencer -> Ok (fun () -> Baattacks.Eraser.silencer ())
        | A_cm_equivocator -> Ok (fun () -> Baattacks.Cm_equivocator.make ())
        | A_split | A_equivocator | A_takeover ->
            Error "use cm-equivocator against chen-micali"
      in
      (match adversary with
      | Error e ->
          prerr_endline e;
          1
      | Ok adversary ->
          run_proto ~labeler:Babaselines.Chen_micali.msg_kind proto_rec
            (if erasure then "chen-micali" else "chen-micali-no-erasure")
            adversary)
  | P_sub_third | P_sub_third_agnostic ->
      let mode =
        match proto with
        | P_sub_third -> Sub_third.Bit_specific
        | _ -> Sub_third.Bit_agnostic
      in
      let proto_rec = Sub_third.protocol ~params ~world:`Hybrid ~mode in
      let adversary =
        match adv with
        | A_none ->
            Ok (fun () -> Engine.passive ~name:"none" ~model:Corruption.Adaptive)
        | A_eraser -> Ok (fun () -> Baattacks.Eraser.make ())
        | A_silencer -> Ok (fun () -> Baattacks.Eraser.silencer ())
        | A_split -> Ok (fun () -> Baattacks.Split_vote.sub_third ())
        | A_equivocator -> Ok (fun () -> Baattacks.Equivocator.make ())
        | A_cm_equivocator | A_takeover ->
            Error "cm-equivocator/takeover target other protocols"
      in
      (match adversary with
      | Error e ->
          prerr_endline e;
          1
      | Ok adversary ->
          run_proto ~labeler:Sub_third.msg_kind proto_rec "sub-third" adversary)
  | P_sub_hm | P_sub_hm_real ->
      let world = match proto with P_sub_hm -> `Hybrid | _ -> `Real in
      let proto_rec = Sub_hm.protocol ~params ~world in
      let adversary =
        match adv with
        | A_none ->
            Ok (fun () -> Engine.passive ~name:"none" ~model:Corruption.Adaptive)
        | A_eraser -> Ok (fun () -> Baattacks.Eraser.make ())
        | A_silencer -> Ok (fun () -> Baattacks.Eraser.silencer ())
        | A_split -> Ok (fun () -> Baattacks.Split_vote.sub_hm ())
        | A_equivocator | A_cm_equivocator | A_takeover ->
            Error "the equivocators/takeover target other protocols"
      in
      (match adversary with
      | Error e ->
          prerr_endline e;
          1
      | Ok adversary ->
          let sparse_make = if sparse then Some Sub_hm.sparse_step else None in
          run_proto ?sparse_make ~labeler:Sub_hm.msg_kind proto_rec "sub-hm"
            adversary)

let proto_arg =
  Arg.(
    required
    & opt (some (enum protocols)) None
    & info [ "protocol"; "p" ] ~docv:"NAME"
        ~doc:(Printf.sprintf "Protocol: %s." (String.concat ", " (List.map fst protocols))))

let adv_arg =
  Arg.(
    value
    & opt (enum adversaries) A_none
    & info [ "adversary"; "a" ] ~docv:"NAME"
        ~doc:(Printf.sprintf "Adversary: %s." (String.concat ", " (List.map fst adversaries))))

let n_arg = Arg.(value & opt int 201 & info [ "n" ] ~doc:"Number of nodes.")

let budget_arg =
  Arg.(value & opt int 0 & info [ "budget"; "f" ] ~doc:"Corruption budget.")

let lambda_arg =
  Arg.(value & opt int 40 & info [ "lambda" ] ~doc:"Expected committee size λ.")

let epochs_arg =
  Arg.(value & opt int 40 & info [ "epochs" ] ~doc:"Epoch/iteration cap.")

let inputs_arg =
  Arg.(
    value
    & opt (enum inputs_choices) I_random
    & info [ "inputs" ] ~docv:"KIND" ~doc:"Input bits: zeros, ones, split, random.")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"RNG seed.")

let reps_arg =
  Arg.(
    value & opt int 1
    & info [ "reps" ] ~docv:"N"
        ~doc:
          "Repeat the configuration over $(docv) derived seeds and print \
           aggregate rates instead of one run's verdict (exit 2 if any \
           trial failed a property).")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "With --reps, run trials on $(docv) domains (default: BA_JOBS or \
           the machine's recommended domain count). Aggregates are \
           byte-identical for every $(docv).")

let intra_jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "intra-jobs" ] ~docv:"N"
        ~doc:
          "Shard each round's honest-step phase across $(docv) domains \
           inside every execution (default: BA_INTRA_JOBS or 1). Traces, \
           metrics and series are byte-identical for every $(docv).")

let trace_arg =
  Arg.(value & flag & info [ "trace" ] ~doc:"Print a per-round event trace.")

let trace_jsonl_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-jsonl" ] ~docv:"FILE"
        ~doc:
          "Stream the execution trace to $(docv), one JSON object per event \
           per line.")

let metrics_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-json" ] ~docv:"FILE"
        ~doc:
          "Write run metrics and the per-round × per-node metric series to \
           $(docv) as JSON.")

let profile_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile-json" ] ~docv:"FILE"
        ~doc:
          "Enable the probe registry with per-span recording and write the \
           snapshot-plus-spans profile to $(docv) after the run; convert it \
           with ba_obs profile for Perfetto.")

let resource_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "resource-json" ] ~docv:"FILE"
        ~doc:
          "Record a per-round GC/memory series (allocated words, promoted \
           words, collections, heap size) and write the ba-resource/v1 \
           report to $(docv) after the run; analyze it with ba_obs mem.")

let causal_arg =
  Arg.(
    value & flag
    & info [ "causal" ]
        ~doc:
          "Record causal fields in the trace: stable per-run message ids, \
           protocol kind labels, and explicit recipient lists for targeted \
           sends. Analyze the resulting --trace-jsonl file with ba_obs \
           causal. Without this flag the trace is byte-identical to the \
           legacy format.")

let causal_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "causal-json" ] ~docv:"FILE"
        ~doc:
          "Run the causal analysis (happens-before cones, critical paths, \
           flow matrix, taint attribution) after the run and write the \
           ba-causal/v1 document to $(docv). Implies --causal.")

let timings_arg =
  Arg.(
    value & flag
    & info [ "timings" ]
        ~doc:
          "Enable phase/crypto timers and print a per-probe summary after the \
           run.")

let check_trace_arg =
  Arg.(
    value & flag
    & info [ "check-trace" ]
        ~doc:
          "Collect the execution trace and verify it against the adversary \
           model's invariants (round monotonicity, removal discipline, \
           budget, Definition-7 accounting). Exits 3 on any finding.")

let sparse_arg =
  Arg.(
    value & flag
    & info [ "sparse" ]
        ~doc:
          "Execute rounds through the engine's sparse path with the \
           protocol's crowd hook (sub-hm and sub-hm-real only). Traces, \
           metrics, series and verdicts are byte-identical to the dense \
           path; a round costs O(active nodes) instead of O(n × inbox), \
           which is what makes n = 100000 runs practical.")

let lenient_caps_arg =
  Arg.(
    value & flag
    & info [ "lenient-caps" ]
        ~doc:
          "Only warn (instead of refusing to run) when the adversary's \
           declared capabilities are inconsistent with the corruption model \
           or budget.")

let main proto adv n budget lambda epochs inputs_choice seed reps jobs
    intra_jobs sparse trace trace_jsonl metrics_json profile_json resource_json
    causal causal_json timings check_trace lenient_caps =
  (match intra_jobs with
  | Some j when j >= 1 -> Engine.set_intra_jobs j
  | Some j ->
      prerr_endline
        (Printf.sprintf "ba_run: --intra-jobs must be >= 1 (got %d)" j);
      exit 1
  | None -> ());
  (* Reject doomed output destinations before the run, not after it:
     --metrics-json and --profile-json only open their file once the
     (possibly long) execution has completed. *)
  let path_errors =
    List.filter_map
      (fun (flag, path) ->
        match path with
        | None -> None
        | Some p -> (
            match Baobs.Jsonl.validate_path p with
            | Ok () -> None
            | Error e -> Some (Printf.sprintf "%s: %s" flag e)))
      [ ("--trace-jsonl", trace_jsonl);
        ("--metrics-json", metrics_json);
        ("--profile-json", profile_json);
        ("--resource-json", resource_json);
        ("--causal-json", causal_json) ]
  in
  if path_errors <> [] then begin
    List.iter (fun e -> prerr_endline ("ba_run: " ^ e)) path_errors;
    1
  end
  else if
    sparse && (match proto with P_sub_hm | P_sub_hm_real -> false | _ -> true)
  then begin
    prerr_endline
      "ba_run: --sparse is implemented for the sub-hm protocols only";
    1
  end
  else
    try
      dispatch proto adv ~n ~budget ~lambda ~epochs ~inputs_choice ~seed ~reps
        ~jobs ~sparse ~trace ~trace_jsonl ~metrics_json ~profile_json
        ~resource_json ~causal ~causal_json ~timings ~check_trace ~lenient_caps
    with Sys_error e ->
      (* e.g. a destination that became unwritable mid-run *)
      prerr_endline ("ba_run: " ^ e);
      1

let cmd =
  let doc = "Run one Byzantine Agreement protocol execution on the simulator" in
  Cmd.v
    (Cmd.info "ba_run" ~doc)
    Term.(
      const main $ proto_arg $ adv_arg $ n_arg $ budget_arg $ lambda_arg
      $ epochs_arg $ inputs_arg $ seed_arg $ reps_arg $ jobs_arg
      $ intra_jobs_arg $ sparse_arg $ trace_arg $ trace_jsonl_arg
      $ metrics_json_arg
      $ profile_json_arg $ resource_json_arg $ causal_arg $ causal_json_arg
      $ timings_arg $ check_trace_arg $ lenient_caps_arg)

let () = exit (Cmd.eval' cmd)
