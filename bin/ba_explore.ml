(* Bounded adversary-schedule model checker CLI.

     dune exec bin/ba_explore.exe -- --protocol sub-third \
       --n 3 --budget 2 --lambda 3 --epochs 2 --inputs ones --seed 7

   Searches the bounded adversary decision tree (Bacheck.Explore) for a
   schedule that breaks consistency, validity or termination; exits 2
   when one is found, writing the minimized counterexample as a
   replayable schedule (--schedule-json) and trace (--trace-jsonl). *)

open Basim
open Cmdliner

type proto_choice = P_sub_third | P_static_committee

let protocols =
  [ ("sub-third", P_sub_third); ("static-committee", P_static_committee) ]

type strategy_choice = S_dfs | S_random

let strategies = [ ("dfs", S_dfs); ("random", S_random) ]

type inputs_choice = I_zero | I_one | I_split | I_random

let inputs_choices =
  [ ("zeros", I_zero); ("ones", I_one); ("split", I_split); ("random", I_random) ]

type dsts_choice = D_everyone | D_halves

let dsts_choices = [ ("everyone", D_everyone); ("halves", D_halves) ]

type format_choice = F_text | F_json

let formats = [ ("text", F_text); ("json", F_json) ]

let models =
  [ ("static", Corruption.Static);
    ("adaptive", Corruption.Adaptive);
    ("strongly-adaptive", Corruption.Strongly_adaptive) ]

let make_inputs choice ~n ~seed =
  match choice with
  | I_zero -> Scenario.unanimous_inputs ~n false
  | I_one -> Scenario.unanimous_inputs ~n true
  | I_split -> Scenario.split_inputs ~n
  | I_random -> Scenario.random_inputs ~n seed

type opts = {
  strategy : strategy_choice;
  seed : int;
  max_rounds : int;
  max_nodes : int;
  samples : int;
  max_actions : int;
  actions_per_round : int;
  dsts : dsts_choice;
  allow_setup : bool;
  all : bool;
  no_minimize : bool;
  format : format_choice;
  out : string option;
  schedule_json : string option;
  trace_jsonl : string option;
  replay : string option;
}

let write_json path json =
  let oc = open_out path in
  output_string oc (Baobs.Json.to_string json);
  output_char oc '\n';
  close_out oc

(* Re-run a schedule through the engine with a JSONL tracer so the
   counterexample can be replayed through `ba_obs report --check`. *)
let write_trace (inst : (_, _, _) Bacheck.Explore.instance) sched path =
  let oc = open_out path in
  let emit = Trace.jsonl_tracer (Baobs.Jsonl.to_channel oc) in
  let adversary =
    Schedule.to_adversary ~compiler:inst.Bacheck.Explore.compiler sched
  in
  let (_ : Engine.result) =
    Engine.run ~tracer:emit inst.Bacheck.Explore.protocol ~adversary
      ~n:inst.Bacheck.Explore.n ~budget:inst.Bacheck.Explore.budget
      ~inputs:inst.Bacheck.Explore.inputs
      ~max_rounds:inst.Bacheck.Explore.max_rounds
      ~seed:inst.Bacheck.Explore.exec_seed
  in
  close_out oc

let output_report opts items stats =
  let tool = "ba_explore" in
  match opts.format with
  | F_json ->
      let json =
        match Bacheck.Report.to_json ~tool items with
        | Baobs.Json.Obj fields ->
            Baobs.Json.Obj
              (fields @ [ ("stats", Bacheck.Explore.stats_to_json stats) ])
        | j -> j
      in
      (match opts.out with
      | Some path -> write_json path json
      | None -> print_endline (Baobs.Json.to_string json))
  | F_text ->
      Printf.printf "explored      : %d\n" stats.Bacheck.Explore.explored;
      Printf.printf "violating     : %d\n" stats.Bacheck.Explore.violating;
      if stats.Bacheck.Explore.node_cap_hit then
        Printf.printf "node cap hit  : yes (raise --max-nodes)\n";
      let (_ : bool) = Bacheck.Report.emit_text ~tool items in
      ()

let run_replay (inst : (_, _, _) Bacheck.Explore.instance) opts path =
  let contents =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let sched = Schedule.of_json (Baobs.Json.of_string contents) in
  let o = Bacheck.Explore.run_schedule inst sched in
  let violations = Bacheck.Explore.violations_of o in
  let finding =
    { Bacheck.Explore.schedule = sched;
      minimized = sched;
      violations;
      verdict = o.Bacheck.Explore.verdict;
      lint = o.Bacheck.Explore.lint }
  in
  let items =
    if violations = [] then []
    else Bacheck.Explore.to_report_items [ finding ]
  in
  (match opts.trace_jsonl with
  | Some p -> write_trace inst sched p
  | None -> ());
  output_report opts items
    { Bacheck.Explore.explored = 1;
      violating = (if violations = [] then 0 else 1);
      node_cap_hit = false };
  if violations = [] then 0 else 2

let run_search (inst : (_, _, _) Bacheck.Explore.instance) opts =
  match opts.replay with
  | Some path -> run_replay inst opts path
  | None ->
      let space =
        { (Bacheck.Explore.default_space ~max_round:(opts.max_rounds - 1)) with
          Bacheck.Explore.max_actions = opts.max_actions;
          actions_per_round = opts.actions_per_round;
          allow_setup = opts.allow_setup;
          dsts =
            (match opts.dsts with
            | D_everyone -> [ Schedule.Everyone ]
            | D_halves ->
                [ Schedule.Everyone; Schedule.Lower_half; Schedule.Upper_half ])
        }
      in
      let stop_at_first = not opts.all in
      let shrink = not opts.no_minimize in
      let findings, stats =
        match opts.strategy with
        | S_dfs ->
            Bacheck.Explore.dfs ~space ~stop_at_first
              ~max_nodes:opts.max_nodes ~shrink inst
        | S_random ->
            Bacheck.Explore.random_search ~space ~samples:opts.samples
              ~stop_at_first ~shrink ~seed:(Int64.of_int opts.seed) inst
      in
      (match (findings, opts.schedule_json) with
      | f :: _, Some path ->
          write_json path (Schedule.to_json f.Bacheck.Explore.minimized)
      | _, _ -> ());
      (match (findings, opts.trace_jsonl) with
      | f :: _, Some path -> write_trace inst f.Bacheck.Explore.minimized path
      | _, _ -> ());
      output_report opts (Bacheck.Explore.to_report_items findings) stats;
      if findings = [] then 0 else 2

let main proto model strategy n budget lambda epochs committee inputs_choice
    seed max_rounds max_nodes samples max_actions actions_per_round dsts
    allow_setup all no_minimize format out schedule_json trace_jsonl replay =
  let path_errors =
    List.filter_map
      (fun (flag, path) ->
        match path with
        | None -> None
        | Some p -> (
            match Baobs.Jsonl.validate_path p with
            | Ok () -> None
            | Error e -> Some (Printf.sprintf "%s: %s" flag e)))
      [ ("--output", out);
        ("--schedule-json", schedule_json);
        ("--trace-jsonl", trace_jsonl) ]
  in
  if path_errors <> [] then begin
    List.iter (fun e -> prerr_endline ("ba_explore: " ^ e)) path_errors;
    1
  end
  else if n < 1 then begin
    prerr_endline "ba_explore: --n must be at least 1";
    1
  end
  else begin
    let opts =
      { strategy;
        seed;
        max_rounds;
        max_nodes;
        samples;
        max_actions;
        actions_per_round;
        dsts;
        allow_setup;
        all;
        no_minimize;
        format;
        out;
        schedule_json;
        trace_jsonl;
        replay }
    in
    let seed64 = Int64.of_int seed in
    let inputs = make_inputs inputs_choice ~n ~seed:seed64 in
    try
      match proto with
      | P_sub_third ->
          let params = Bacore.Params.make ~lambda ~max_epochs:epochs () in
          run_search
            { Bacheck.Explore.protocol =
                Bacore.Sub_third.protocol ~params ~world:`Hybrid
                  ~mode:Bacore.Sub_third.Bit_specific;
              compiler = Baattacks.Schedule_targets.sub_third;
              model;
              n;
              budget;
              inputs;
              max_rounds = (2 * epochs) + 2;
              exec_seed = seed64;
              check = Properties.agreement }
            opts
      | P_static_committee ->
          run_search
            { Bacheck.Explore.protocol =
                Babaselines.Static_committee.protocol ~committee_size:committee;
              compiler = Baattacks.Schedule_targets.static_committee;
              model;
              n;
              budget;
              inputs;
              max_rounds = 4;
              exec_seed = seed64;
              check = Properties.agreement }
            opts
    with
    | Baobs.Json.Parse_error e ->
        prerr_endline ("ba_explore: bad schedule JSON: " ^ e);
        1
    | Engine.Illegal_action e ->
        prerr_endline ("ba_explore: illegal schedule: " ^ e);
        1
    | Sys_error e ->
        prerr_endline ("ba_explore: " ^ e);
        1
  end

let proto_arg =
  Arg.(
    required
    & opt (some (enum protocols)) None
    & info [ "protocol"; "p" ] ~docv:"NAME"
        ~doc:
          (Printf.sprintf "Protocol to search against: %s."
             (String.concat ", " (List.map fst protocols))))

let model_arg =
  Arg.(
    value
    & opt (enum models) Corruption.Adaptive
    & info [ "model" ] ~docv:"MODEL"
        ~doc:
          "Corruption model granted to the searched adversary: static, \
           adaptive, strongly-adaptive.")

let strategy_arg =
  Arg.(
    value
    & opt (enum strategies) S_dfs
    & info [ "strategy" ] ~docv:"NAME"
        ~doc:
          "Search strategy: dfs (exhaustive over canonical schedules) or \
           random (budgeted uniform sampling).")

let n_arg = Arg.(value & opt int 3 & info [ "n" ] ~doc:"Number of nodes.")

let budget_arg =
  Arg.(value & opt int 1 & info [ "budget"; "f" ] ~doc:"Corruption budget.")

let lambda_arg =
  Arg.(
    value & opt int 3
    & info [ "lambda" ] ~doc:"Expected committee size λ (sub-third).")

let epochs_arg =
  Arg.(value & opt int 2 & info [ "epochs" ] ~doc:"Epoch cap (sub-third).")

let committee_arg =
  Arg.(
    value & opt int 3
    & info [ "committee" ] ~doc:"Committee size (static-committee).")

let inputs_arg =
  Arg.(
    value
    & opt (enum inputs_choices) I_one
    & info [ "inputs" ] ~docv:"KIND"
        ~doc:"Input bits: zeros, ones, split, random.")

let seed_arg =
  Arg.(
    value & opt int 1
    & info [ "seed" ]
        ~doc:
          "Seed of every leaf execution (and of the random strategy's \
           sampler). Same seed, same findings.")

let max_rounds_arg =
  Arg.(
    value & opt int 2
    & info [ "max-rounds" ] ~docv:"R"
        ~doc:"Schedule actions may occur in rounds 0 .. $(docv)-1.")

let max_nodes_arg =
  Arg.(
    value & opt int 200_000
    & info [ "max-nodes" ] ~docv:"N"
        ~doc:"DFS executes at most $(docv) schedules before giving up.")

let samples_arg =
  Arg.(
    value & opt int 1_000
    & info [ "samples" ] ~docv:"N"
        ~doc:"Random strategy draws $(docv) schedules.")

let max_actions_arg =
  Arg.(
    value & opt int 4
    & info [ "max-actions" ] ~docv:"N"
        ~doc:"At most $(docv) actions per schedule (setup included).")

let actions_per_round_arg =
  Arg.(
    value & opt int 4
    & info [ "actions-per-round" ] ~docv:"N"
        ~doc:"At most $(docv) actions in any single round.")

let dsts_arg =
  Arg.(
    value
    & opt (enum dsts_choices) D_everyone
    & info [ "dsts" ] ~docv:"KIND"
        ~doc:
          "Injection-target vocabulary: everyone (multicast only) or halves \
           (multicast plus the two network halves — the split-vote idiom).")

let allow_setup_arg =
  Arg.(
    value & flag
    & info [ "allow-setup" ]
        ~doc:
          "Also enumerate setup-time (static) corruptions. Required for the \
           static model, where mid-round corruption is illegal.")

let all_arg =
  Arg.(
    value & flag
    & info [ "all" ]
        ~doc:"Collect every violating schedule instead of stopping at the \
              first.")

let no_minimize_arg =
  Arg.(
    value & flag
    & info [ "no-minimize" ]
        ~doc:"Report discovered schedules as-is, skipping delta-debugging \
              minimization.")

let format_arg =
  Arg.(
    value
    & opt (enum formats) F_text
    & info [ "format" ] ~docv:"FMT" ~doc:"Output format: text or json.")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "output"; "o" ] ~docv:"FILE"
        ~doc:"Write the findings document to $(docv) instead of stdout \
              (json format only).")

let schedule_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "schedule-json" ] ~docv:"FILE"
        ~doc:
          "Write the first finding's minimized schedule to $(docv) as \
           ba-schedule/v1 JSON (replayable with --replay).")

let trace_jsonl_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-jsonl" ] ~docv:"FILE"
        ~doc:
          "Re-run the first finding's minimized schedule and stream its \
           execution trace to $(docv) (one JSON object per event — feed it \
           to ba_obs report --check).")

let replay_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "replay" ] ~docv:"FILE"
        ~doc:
          "Skip searching: load a ba-schedule/v1 JSON from $(docv), run it \
           against the configured instance, and judge it (exit 2 if it \
           violates a property).")

let cmd =
  let doc =
    "Bounded model checking over adversary schedules for the BA simulator"
  in
  Cmd.v
    (Cmd.info "ba_explore" ~doc)
    Term.(
      const main $ proto_arg $ model_arg $ strategy_arg $ n_arg $ budget_arg
      $ lambda_arg $ epochs_arg $ committee_arg $ inputs_arg $ seed_arg
      $ max_rounds_arg $ max_nodes_arg $ samples_arg $ max_actions_arg
      $ actions_per_round_arg $ dsts_arg $ allow_setup_arg $ all_arg
      $ no_minimize_arg $ format_arg $ out_arg $ schedule_json_arg
      $ trace_jsonl_arg $ replay_arg)

let () = exit (Cmd.eval' cmd)
