(* CLI for the experiment suite: runs E1–E9 (or a chosen one) and prints
   the tables recorded in EXPERIMENTS.md. *)

open Cmdliner

let quick =
  Arg.(value & flag & info [ "quick" ] ~doc:"Reduced repetitions (smoke run).")

let only =
  Arg.(
    value
    & opt (some string) None
    & info [ "only" ] ~docv:"ID" ~doc:"Run a single experiment (E1, E1b, … E11).")

let list_flag =
  Arg.(value & flag & info [ "list" ] ~doc:"List experiments and exit.")

let json_path =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Also write every produced table to $(docv) as JSON.")

let jobs =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Run Monte-Carlo trials on $(docv) domains (default: BA_JOBS or \
           the machine's recommended domain count). Every table and the \
           --json document are byte-identical for every $(docv).")

let intra_jobs =
  Arg.(
    value
    & opt (some int) None
    & info [ "intra-jobs" ] ~docv:"N"
        ~doc:
          "Shard each round's honest-step phase across $(docv) domains \
           inside every trial (default: BA_INTRA_JOBS or 1). Composes with \
           --jobs; every table is byte-identical for every $(docv).")

let main quick only list_flag json_path jobs intra_jobs =
  (match intra_jobs with
  | Some j when j >= 1 -> Basim.Engine.set_intra_jobs j
  | Some j ->
      Printf.eprintf "experiments: --intra-jobs must be >= 1 (got %d)\n" j;
      exit 1
  | None -> ());
  if list_flag then begin
    List.iter
      (fun e ->
        Printf.printf "%-4s %s\n" e.Baexperiments.All.id e.Baexperiments.All.claim)
      Baexperiments.All.experiments;
    0
  end
  else
    match only with
    | None ->
        Baexperiments.All.run_all ~quick ?jobs ?json_path ();
        0
    | Some id ->
        if Baexperiments.All.run_one ~quick ?jobs ?json_path id then 0
        else begin
          Printf.eprintf "unknown experiment %S (try --list)\n" id;
          1
        end

let cmd =
  let doc =
    "Regenerate the evaluation of 'Communication Complexity of Byzantine \
     Agreement, Revisited' (PODC 2019)"
  in
  Cmd.v
    (Cmd.info "experiments" ~doc)
    Term.(const main $ quick $ only $ list_flag $ json_path $ jobs $ intra_jobs)

let () = exit (Cmd.eval' cmd)
