(* Benchmark harness.

   Part 1 regenerates every experiment table (E1–E11, the paper's
   theorem-level claims) — the output recorded in EXPERIMENTS.md.

   Part 2 times an E2-style Monte-Carlo sweep sequentially and on the
   --jobs domain pool, checks the aggregates are bit-identical, and
   records the measured speedup.

   Part 3 is a Bechamel suite: one Test.make per experiment workload (a
   single representative trial of each), plus micro-benchmarks of the
   cryptographic substrate.

     dune exec bench/main.exe              # full run
     dune exec bench/main.exe -- --quick   # reduced repetitions
     dune exec bench/main.exe -- --jobs 4  # trial parallelism
     dune exec bench/main.exe -- --out BENCH_2.json --against BENCH_1.json
                                           # write elsewhere + regression gate
*)

open Bechamel
open Toolkit
open Basim
open Bacore

let quick = Array.exists (fun a -> a = "--quick") Sys.argv

let flag_value name =
  let rec find i =
    if i + 1 >= Array.length Sys.argv then None
    else if Sys.argv.(i) = name then Some Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

let jobs =
  match Option.bind (flag_value "--jobs") int_of_string_opt with
  | Some j when j >= 1 -> j
  | Some _ | None -> Bapar.Pool.default_jobs ()

(* --intra-jobs N: shard each round's honest-step phase across N domains
   inside every execution (Part 1 tables and Part 3 workloads). The
   Part-2b sweep below measures the intra speedup explicitly and is
   unaffected by this knob (it passes pools per run). *)
let () =
  match Option.bind (flag_value "--intra-jobs") int_of_string_opt with
  | Some j when j >= 1 -> Engine.set_intra_jobs j
  | Some _ | None -> ()

(* --against FILE: after writing the report, diff it against FILE and
   exit nonzero on a regression past --threshold (default 20%). *)
let against = flag_value "--against"

(* --out FILE: where to write the report (default BENCH_1.json;
   successor baselines go to BENCH_2.json, BENCH_3.json, etc. — the
   committed baseline CI gates against is currently BENCH_5.json). *)
let bench_json_path =
  match flag_value "--out" with Some path -> path | None -> "BENCH_1.json"

let threshold =
  match Option.bind (flag_value "--threshold") float_of_string_opt with
  | Some t when t > 0.0 -> t
  | Some _ | None -> 0.2

let () = Baexperiments.Common.set_jobs jobs

(* ---------- Part 1: experiment tables --------------------------------- *)

let () = Baexperiments.All.run_all ~quick ()

(* ---------- Part 2: parallel trial-runner speedup ---------------------- *)

(* An E2-style sweep: passive sub-hm at n = 401, the workload every
   large-n scaling experiment is made of. Timed once sequentially and
   once on the pool; the aggregates must be bit-identical (that is the
   Bapar contract), and the ratio is the machine's measured trial-level
   speedup, recorded in BENCH_1.json. *)
let sweep_trials = if quick then 4 else 12

let speedup_sweep ~jobs () =
  let params = Params.make ~lambda:40 ~max_epochs:60 () in
  let proto = Sub_hm.protocol ~params ~world:`Hybrid in
  Baexperiments.Common.measure ~jobs ~reps:sweep_trials ~seed:2L
    (fun s ->
      let inputs = Scenario.random_inputs ~n:401 s in
      let result =
        Engine.run proto
          ~adversary:(Engine.passive ~name:"none" ~model:Corruption.Adaptive)
          ~n:401 ~budget:0 ~inputs ~max_rounds:250 ~seed:s
      in
      (result, Properties.agreement ~inputs result))

let time_s f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

let parallel_summary =
  print_endline "\n### Parallel trial runner (E2-style sweep, n = 401)\n";
  let seq_s, seq_rates = time_s (speedup_sweep ~jobs:1) in
  let par_s, par_rates = time_s (speedup_sweep ~jobs) in
  let identical =
    Baobs.Json.to_string (Baexperiments.Common.rates_to_json seq_rates)
    = Baobs.Json.to_string (Baexperiments.Common.rates_to_json par_rates)
  in
  let speedup = if par_s > 0.0 then seq_s /. par_s else 0.0 in
  Printf.printf "jobs 1: %.3f s   jobs %d: %.3f s   speedup: %.2fx   \
                 aggregates identical: %b\n"
    seq_s jobs par_s speedup identical;
  if not identical then begin
    prerr_endline "bench: parallel aggregates diverged from sequential";
    exit 1
  end;
  (* jobs/recommended_domains/trials pin the measurement conditions: a
     0.79x "speedup" is expected on a 1-core container and meaningless
     without them in the recorded trajectory. *)
  Baobs.Json.Obj
    [ ("jobs", Baobs.Json.Int jobs);
      ( "recommended_domains",
        Baobs.Json.Int (Domain.recommended_domain_count ()) );
      ("trials", Baobs.Json.Int sweep_trials);
      ("seq_s", Baobs.Json.Float seq_s);
      ("par_s", Baobs.Json.Float par_s);
      ("speedup", Baobs.Json.Float speedup);
      ("deterministic", Baobs.Json.Bool identical) ]

(* ---------- Part 2b: intra-trial (per-round) parallel engine ----------- *)

(* One seeded e2-style execution (passive sub-hm, n = 401) timed with the
   sequential engine and re-timed with phase 1 sharded across 2/4/8
   domains. The determinism bit per pool size asserts the tentpole
   contract at the bench level: metrics JSON and the full per-round ×
   per-node series JSON must be byte-identical strings, or the bench
   aborts. The speedups are recorded in the report; like the trial-level
   sweep they are meaningless without recommended_domains pinned next to
   them. *)
let intra_sweep = [ 2; 4; 8 ]

let intra_run ?pool () =
  let params = Params.make ~lambda:40 ~max_epochs:60 () in
  let proto = Sub_hm.protocol ~params ~world:`Hybrid in
  let n = 401 in
  let inputs = Scenario.split_inputs ~n in
  let series = Baobs.Series.create ~n in
  let result =
    Engine.run ~series ?pool proto
      ~adversary:(Engine.passive ~name:"none" ~model:Corruption.Adaptive)
      ~n ~budget:0 ~inputs ~max_rounds:250 ~seed:2L
  in
  ( Baobs.Json.to_string (Metrics.to_json result.Engine.metrics),
    Baobs.Json.to_string (Baobs.Series.to_json series) )

let intra_parallel_summary =
  print_endline "\n### Intra-trial parallel engine (e2-style run, n = 401)\n";
  (* A size-1 pool is normalized away inside the engine, so this is the
     sequential baseline even if --intra-jobs configured a global pool. *)
  let seq_s, (seq_metrics, seq_series) =
    time_s (fun () ->
        Bapar.Pool.with_pool ~jobs:1 (fun pool -> intra_run ~pool ()))
  in
  let entries =
    List.map
      (fun j ->
        let par_s, (par_metrics, par_series) =
          time_s (fun () ->
              Bapar.Pool.with_pool ~jobs:j (fun pool -> intra_run ~pool ()))
        in
        let deterministic =
          par_metrics = seq_metrics && par_series = seq_series
        in
        let speedup = if par_s > 0.0 then seq_s /. par_s else 0.0 in
        Printf.printf
          "intra-jobs 1: %.3f s   intra-jobs %d: %.3f s   speedup: %.2fx   \
           metrics+series identical: %b\n"
          seq_s j par_s speedup deterministic;
        if not deterministic then begin
          prerr_endline
            (Printf.sprintf
               "bench: intra-jobs %d metrics/series diverged from sequential" j);
          exit 1
        end;
        Baobs.Json.Obj
          [ ("intra_jobs", Baobs.Json.Int j);
            ("seq_s", Baobs.Json.Float seq_s);
            ("par_s", Baobs.Json.Float par_s);
            ("speedup", Baobs.Json.Float speedup);
            ("deterministic", Baobs.Json.Bool deterministic) ])
      intra_sweep
  in
  Baobs.Json.Obj
    [ ("scenario", Baobs.Json.String "e2.sub-hm-n401");
      ( "recommended_domains",
        Baobs.Json.Int (Domain.recommended_domain_count ()) );
      ("entries", Baobs.Json.List entries) ]

(* ---------- Part 3: Bechamel ------------------------------------------- *)

let passive () = Engine.passive ~name:"none" ~model:Corruption.Adaptive

let run_sub_hm ~n ~lambda ~world ~seed () =
  let params = Params.make ~lambda ~max_epochs:60 () in
  let proto = Sub_hm.protocol ~params ~world in
  let inputs = Scenario.split_inputs ~n in
  ignore
    (Engine.run proto ~adversary:(passive ()) ~n ~budget:0 ~inputs
       ~max_rounds:250 ~seed)

let experiment_tests =
  [ Test.make ~name:"e1.eraser-vs-sub-hm"
      (Staged.stage (fun () ->
           let params = Params.make ~lambda:20 ~max_epochs:5 () in
           let proto = Sub_hm.protocol ~params ~world:`Hybrid in
           let inputs = Scenario.unanimous_inputs ~n:401 true in
           ignore
             (Engine.run proto ~adversary:(Baattacks.Eraser.make ()) ~n:401
                ~budget:150 ~inputs ~max_rounds:40 ~seed:1L)));
    Test.make ~name:"e1b.dolev-reischuk-isolation"
      (Staged.stage (fun () ->
           let proto = Babaselines.Sparse_relay.protocol ~d:8 in
           let inputs = Array.make 41 true in
           ignore
             (Engine.run proto
                ~adversary:(Baattacks.Dolev_reischuk.make ~victim:40 ())
                ~n:41 ~budget:20 ~inputs ~max_rounds:46 ~seed:1L)));
    Test.make ~name:"e2.sub-hm-n801"
      (Staged.stage (run_sub_hm ~n:801 ~lambda:40 ~world:`Hybrid ~seed:2L));
    Test.make ~name:"e3.quadratic-hm-n101"
      (Staged.stage (fun () ->
           let inputs = Scenario.split_inputs ~n:101 in
           ignore
             (Engine.run (Quadratic_hm.protocol ()) ~adversary:(passive ())
                ~n:101 ~budget:0 ~inputs ~max_rounds:200 ~seed:3L)));
    Test.make ~name:"e3.nakamoto-k8"
      (Staged.stage (fun () ->
           let inputs = Scenario.unanimous_inputs ~n:50 true in
           ignore
             (Engine.run
                (Babaselines.Nakamoto.protocol ~p:0.004 ~confirmations:8)
                ~adversary:(passive ()) ~n:50 ~budget:0 ~inputs
                ~max_rounds:4000 ~seed:4L)));
    Test.make ~name:"e4.split-vote-sub-hm"
      (Staged.stage (fun () ->
           let params = Params.make ~lambda:40 ~max_epochs:40 () in
           let proto = Sub_hm.protocol ~params ~world:`Hybrid in
           let inputs = Scenario.unanimous_inputs ~n:200 true in
           ignore
             (Engine.run proto ~adversary:(Baattacks.Split_vote.sub_hm ())
                ~n:200 ~budget:60 ~inputs ~max_rounds:170 ~seed:5L)));
    Test.make ~name:"e5.equivocator-bit-agnostic"
      (Staged.stage (fun () ->
           let params = Params.make ~lambda:20 ~max_epochs:5 () in
           let proto =
             Sub_third.protocol ~params ~world:`Hybrid
               ~mode:Sub_third.Bit_agnostic
           in
           let inputs = Scenario.split_inputs ~n:360 in
           ignore
             (Engine.run proto ~adversary:(Baattacks.Equivocator.make ())
                ~n:360 ~budget:110 ~inputs ~max_rounds:14 ~seed:6L)));
    Test.make ~name:"e5b.cm-equivocator-no-erasure"
      (Staged.stage (fun () ->
           let params = Params.make ~lambda:20 ~max_epochs:5 () in
           let proto =
             Babaselines.Chen_micali.protocol ~params ~erasure:false
           in
           let inputs = Scenario.split_inputs ~n:360 in
           ignore
             (Engine.run proto ~adversary:(Baattacks.Cm_equivocator.make ())
                ~n:360 ~budget:110 ~inputs ~max_rounds:14 ~seed:6L)));
    Test.make ~name:"e6.two-world-experiment"
      (Staged.stage (fun () ->
           ignore
             (Baattacks.Setup_necessity.run ~n:200 ~committee_size:12
                ~seed:7L)));
    Test.make ~name:"e7.sub-hm-n601"
      (Staged.stage (run_sub_hm ~n:601 ~lambda:40 ~world:`Hybrid ~seed:8L));
    Test.make ~name:"e8.committee-takeover"
      (Staged.stage (fun () ->
           let proto =
             Babaselines.Static_committee.protocol ~committee_size:12
           in
           let inputs = Scenario.unanimous_inputs ~n:200 false in
           ignore
             (Engine.run proto
                ~adversary:(Baattacks.Takeover.make ~force:true ())
                ~n:200 ~budget:24 ~inputs ~max_rounds:6 ~seed:9L)));
    Test.make ~name:"e9.sub-hm-real-world-n61"
      (Staged.stage (run_sub_hm ~n:61 ~lambda:24 ~world:`Real ~seed:10L));
    Test.make ~name:"e10.broadcast-over-sub-hm"
      (Staged.stage (fun () ->
           let params = Params.make ~lambda:40 ~max_epochs:60 () in
           let bb =
             Broadcast.of_ba (Sub_hm.protocol ~params ~world:`Hybrid) ~sender:0
           in
           let inputs = Array.make 201 false in
           inputs.(0) <- true;
           ignore
             (Engine.run bb ~adversary:(passive ()) ~n:201 ~budget:0 ~inputs
                ~max_rounds:254 ~seed:11L)));
    Test.make ~name:"e11.sub-hm-lambda80"
      (Staged.stage (fun () ->
           let params = Params.make ~lambda:80 ~max_epochs:40 () in
           let proto = Sub_hm.protocol ~params ~world:`Hybrid in
           let inputs = Scenario.unanimous_inputs ~n:200 true in
           ignore
             (Engine.run proto ~adversary:(Baattacks.Split_vote.sub_hm ())
                ~n:200 ~budget:80 ~inputs ~max_rounds:170 ~seed:12L))) ]

let crypto_tests =
  let rng = Bacrypto.Rng.create 99L in
  let pki = Bacrypto.Pki.setup ~n:8 rng in
  let sk = Bacrypto.Pki.secret_key pki 0 in
  let pk = Bacrypto.Pki.public_key pki 0 in
  let params = Bacrypto.Pki.params pki in
  let payload = String.make 1024 'x' in
  let key = Bacrypto.Prf.gen rng in
  let counter = ref 0 in
  let precomputed = Bacrypto.Vrf.eval params sk "bench-verify" in
  [ Test.make ~name:"sha256-1KiB"
      (Staged.stage (fun () -> ignore (Bacrypto.Sha256.digest_string payload)));
    Test.make ~name:"hmac-1KiB"
      (Staged.stage (fun () -> ignore (Bacrypto.Hmac.mac ~key payload)));
    Test.make ~name:"vrf-eval"
      (Staged.stage (fun () ->
           incr counter;
           ignore (Bacrypto.Vrf.eval params sk (string_of_int !counter))));
    Test.make ~name:"vrf-verify"
      (Staged.stage (fun () ->
           ignore (Bacrypto.Vrf.verify params pk "bench-verify" precomputed)));
    Test.make ~name:"fmine-mine"
      (Staged.stage
         (let fmine = Bafmine.Fmine.create (Bacrypto.Rng.create 1L) in
          fun () ->
            incr counter;
            ignore
              (Bafmine.Fmine.mine fmine ~node:(!counter mod 1000)
                 ~msg:"Vote:1:0" ~p:0.1))) ]

let estimates results =
  Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
  |> List.sort compare
  |> List.map (fun (name, ols) ->
         let ns =
           match Analyze.OLS.estimates ols with
           | Some (t :: _) -> Some t
           | Some [] | None -> None
         in
         (name, ns))

let report named =
  List.iter
    (fun (name, ns) ->
      let estimate =
        match ns with
        | Some t -> Printf.sprintf "%12.0f ns/run" t
        | None -> "(no estimate)"
      in
      Printf.printf "%-45s %s\n" name estimate)
    named

(* One seeded run per headline scenario, recorded as engine counter
   summaries in the JSON report: perf numbers are only comparable
   across commits if the work they measure (rounds, multicasts, bits)
   is pinned alongside them. *)
let engine_counter_summaries () =
  let summarize name (result : Engine.result) =
    Baobs.Json.Obj
      [ ("scenario", Baobs.Json.String name);
        ("rounds_used", Baobs.Json.Int result.Engine.rounds_used);
        ("corruptions", Baobs.Json.Int result.Engine.corruptions);
        ("metrics", Metrics.to_json result.Engine.metrics) ]
  in
  let eraser_n401 () =
    let params = Params.make ~lambda:20 ~max_epochs:5 () in
    let proto = Sub_hm.protocol ~params ~world:`Hybrid in
    let inputs = Scenario.unanimous_inputs ~n:401 true in
    Engine.run proto ~adversary:(Baattacks.Eraser.make ()) ~n:401 ~budget:150
      ~inputs ~max_rounds:40 ~seed:1L
  in
  let passive_n401 () =
    let params = Params.make ~lambda:40 ~max_epochs:60 () in
    let proto = Sub_hm.protocol ~params ~world:`Hybrid in
    let inputs = Scenario.split_inputs ~n:401 in
    Engine.run proto ~adversary:(passive ()) ~n:401 ~budget:0 ~inputs
      ~max_rounds:250 ~seed:2L
  in
  [ summarize "e1.eraser-vs-sub-hm-n401" (eraser_n401 ());
    summarize "e2.sub-hm-passive-n401" (passive_n401 ()) ]

(* One recorded e2.sub-hm-n801 run: the per-round GC/memory series the
   ROADMAP's million-node item gates on. Peak heap and allocated
   words/round are only meaningful against the pinned workload above,
   so they live in the same report. *)
let resource_summary () =
  let open Baobs.Json in
  Baobs.Resource.enable ();
  let recorder = Baobs.Resource.create () in
  let params = Params.make ~lambda:40 ~max_epochs:60 () in
  let proto = Sub_hm.protocol ~params ~world:`Hybrid in
  let inputs = Scenario.split_inputs ~n:801 in
  let result =
    Engine.run proto ~resource:recorder ~adversary:(passive ()) ~n:801
      ~budget:0 ~inputs ~max_rounds:250 ~seed:2L
  in
  Baobs.Resource.disable ();
  let rows = Baobs.Resource.rows recorder in
  let peak_heap =
    List.fold_left
      (fun acc r -> max acc r.Baobs.Resource.row_top_heap_words)
      0 rows
  in
  let minor_gcs, major_gcs =
    List.fold_left
      (fun (mi, ma) r ->
        (mi + r.Baobs.Resource.minor_gcs, ma + r.Baobs.Resource.major_gcs))
      (0, 0) rows
  in
  let words_per_round =
    match Baobs.Resource.allocation_summary recorder with
    | Some s -> Float s.Bastats.Summary.mean
    | None -> Null
  in
  Obj
    [ ("scenario", String "e2.sub-hm-n801");
      ("rounds_used", Int result.Engine.rounds_used);
      ("rows", Int (List.length rows));
      ("peak_heap_words", Int peak_heap);
      ("allocated_words_per_round", words_per_round);
      ("minor_gcs", Int minor_gcs);
      ("major_gcs", Int major_gcs) ]

(* ---------- Scale: the sparse engine at n = 10^3 .. 10^5 --------------- *)

(* The million-node trajectory measured directly: one seeded passive
   sub-HM trial per decade through the crowd-sparse path, recording wall
   time, peak heap and allocated words/round. Memory flatness at
   n = 10^5 is gated in CI by `ba_obs mem --check`; recording the same
   numbers here lets BENCH baselines track the trajectory across
   commits. *)
let scale_summary () =
  let open Baobs.Json in
  print_endline "\n### Sparse engine scale (passive sub-hm, crowd hook)\n";
  List.map
    (fun n ->
      Baobs.Resource.enable ();
      let recorder = Baobs.Resource.create () in
      let params = Params.make ~lambda:40 ~max_epochs:60 () in
      let proto = Sub_hm.protocol ~params ~world:`Hybrid in
      let inputs = Scenario.split_inputs ~n in
      let wall_s, result =
        time_s (fun () ->
            Engine.run proto ~resource:recorder
              ~sparse:(Sub_hm.sparse_step ())
              ~adversary:(passive ()) ~n ~budget:0 ~inputs ~max_rounds:250
              ~seed:2L)
      in
      Baobs.Resource.disable ();
      let rows = Baobs.Resource.rows recorder in
      let peak_heap =
        List.fold_left
          (fun acc r -> max acc r.Baobs.Resource.row_top_heap_words)
          0 rows
      in
      let words_per_round =
        match Baobs.Resource.allocation_summary recorder with
        | Some s -> Some s.Bastats.Summary.mean
        | None -> None
      in
      Printf.printf
        "n=%-7d rounds=%-3d wall %8.3f s   peak heap %10d words   \
         alloc/round %s\n"
        n result.Engine.rounds_used wall_s peak_heap
        (match words_per_round with
        | Some w -> Printf.sprintf "%12.0f words" w
        | None -> "(none)");
      Obj
        [ ("scenario", String (Printf.sprintf "scale.sub-hm-sparse-n%d" n));
          ("n", Int n);
          ("rounds_used", Int result.Engine.rounds_used);
          ("wall_s", Float wall_s);
          ("peak_heap_words", Int peak_heap);
          ( "allocated_words_per_round",
            match words_per_round with Some w -> Float w | None -> Null ) ])
    [ 1_000; 10_000; 100_000 ]

let write_bench_json ~quota_s named =
  let open Baobs.Json in
  let results =
    List.map
      (fun (name, ns) ->
        Obj
          [ ("name", String name);
            ("ns_per_run", match ns with Some t -> Float t | None -> Null) ])
      named
  in
  let json =
    Obj
      [ ("schema", String "ba-bench/v1");
        ("quick", Bool quick);
        ("quota_s", Float quota_s);
        ("parallel", parallel_summary);
        ("intra_parallel", intra_parallel_summary);
        ("results", List results);
        ("engine_counters", List (engine_counter_summaries ()));
        ("resource", resource_summary ());
        ("scale", List (scale_summary ())) ]
  in
  let oc = open_out bench_json_path in
  output_string oc (to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s (%d estimates)\n" bench_json_path
    (List.length named)

let () =
  print_endline "\n### Bechamel micro/macro benchmarks\n";
  let instances = Instance.[ monotonic_clock ] in
  let quota = if quick then Time.second 0.1 else Time.second 0.5 in
  let cfg = Benchmark.cfg ~limit:100 ~quota ~kde:None () in
  let grouped =
    Test.make_grouped ~name:"ba"
      [ Test.make_grouped ~name:"experiments" experiment_tests;
        Test.make_grouped ~name:"crypto" crypto_tests ]
  in
  let raw = Benchmark.all cfg instances grouped in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let named = estimates results in
  report named;
  write_bench_json ~quota_s:(if quick then 0.1 else 0.5) named;
  print_endline "\nbench: done";
  (* Regression gate: diff the report just written against a recorded
     baseline. Exit nonzero so CI can gate (soft or hard) on it. *)
  match against with
  | None -> ()
  | Some base_path ->
      let read_json path =
        let ic = open_in_bin path in
        let contents =
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        Baobs.Json.of_string (String.trim contents)
      in
      let cmp =
        Baobs.Bench_compare.diff ~threshold ~base:(read_json base_path)
          ~current:(read_json bench_json_path) ()
      in
      Printf.printf "\n### Bench comparison vs %s\n\n%s" base_path
        (Baobs.Bench_compare.render cmp);
      exit (Baobs.Bench_compare.exit_code cmp)
