test/test_crypto.ml: Alcotest Array Bacrypto Bytes Char Commitment Forward_secure Gen Hmac List Nizk Pki Prf Printf QCheck QCheck_alcotest Rng Selective_opening Sha256 Signature String Test Vrf
