test/test_stats.ml: Alcotest Bacrypto Bastats Binomial Chernoff Gen Histogram List Printf QCheck QCheck_alcotest String Summary Table Test
