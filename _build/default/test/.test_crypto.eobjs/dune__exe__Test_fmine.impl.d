test/test_fmine.ml: Alcotest Bacrypto Bafmine Compiler Eligibility Fmine Gen List Printf QCheck QCheck_alcotest Test
