test/test_sim.ml: Alcotest Array Basim Corruption Engine Format Gen List Metrics Properties QCheck QCheck_alcotest Scenario String Test Trace
