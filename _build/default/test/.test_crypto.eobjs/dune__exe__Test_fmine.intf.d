test/test_fmine.mli:
