test/test_experiments.ml: Alcotest Bacore Baexperiments Basim Bastats List String
