(* Smoke tests for the experiment suite: every experiment must execute at
   low repetitions, produce non-empty tables, and — where the claim is
   sharp enough to assert — reproduce the paper's direction. *)

let tables_of entry = entry.Baexperiments.All.run ~reps:2 ()

let test_all_experiments_execute () =
  List.iter
    (fun entry ->
      let tables = tables_of entry in
      Alcotest.(check bool)
        (entry.Baexperiments.All.id ^ " produces tables")
        true
        (tables <> []);
      List.iter
        (fun t ->
          let rendered = Bastats.Table.render t in
          Alcotest.(check bool)
            (entry.Baexperiments.All.id ^ " table non-empty")
            true
            (String.length rendered > 40))
        tables)
    Baexperiments.All.experiments

let test_experiment_ids_unique () =
  let ids =
    List.map (fun e -> e.Baexperiments.All.id) Baexperiments.All.experiments
  in
  Alcotest.(check int) "ids unique" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_run_one_dispatch () =
  (* run_one must find experiments case-insensitively and reject unknowns.
     Use E6, the cheapest. *)
  Alcotest.(check bool) "e6 found" true (Baexperiments.All.run_one ~quick:true "e6");
  Alcotest.(check bool) "unknown rejected" false
    (Baexperiments.All.run_one ~quick:true "E42")

let test_common_measure_counts () =
  let rates =
    Baexperiments.Common.measure ~reps:4 ~seed:1L (fun seed ->
        let inputs = Basim.Scenario.unanimous_inputs ~n:7 true in
        let proto = Bacore.Warmup_third.protocol ~params:(Bacore.Params.make ~lambda:10 ~max_epochs:6 ()) in
        let result =
          Basim.Engine.run proto
            ~adversary:(Basim.Engine.passive ~name:"p" ~model:Basim.Corruption.Adaptive)
            ~n:7 ~budget:0 ~inputs ~max_rounds:20 ~seed
        in
        (result, Basim.Properties.agreement ~inputs result))
  in
  Alcotest.(check int) "trials" 4 rates.Baexperiments.Common.trials;
  Alcotest.(check int) "no failures" 0 rates.Baexperiments.Common.consistency_fail;
  Alcotest.(check bool) "rounds positive" true
    (rates.Baexperiments.Common.mean_rounds > 0.0)

let test_common_seed_derivation () =
  let a = Baexperiments.Common.seed_of 1L 0 in
  let b = Baexperiments.Common.seed_of 1L 1 in
  let a' = Baexperiments.Common.seed_of 1L 0 in
  Alcotest.(check int64) "stable" a a';
  Alcotest.(check bool) "distinct" true (a <> b)

let test_rate_formatting () =
  Alcotest.(check string) "rate" "1/4 (25.0%)" (Baexperiments.Common.rate 1 4);
  Alcotest.(check string) "pct" "50.0%" (Baexperiments.Common.pct 0.5)

let () =
  Alcotest.run "experiments"
    [ ( "suite",
        [ Alcotest.test_case "all execute" `Slow test_all_experiments_execute;
          Alcotest.test_case "ids unique" `Quick test_experiment_ids_unique;
          Alcotest.test_case "run_one dispatch" `Quick test_run_one_dispatch ] );
      ( "common",
        [ Alcotest.test_case "measure" `Quick test_common_measure_counts;
          Alcotest.test_case "seed derivation" `Quick test_common_seed_derivation;
          Alcotest.test_case "formatting" `Quick test_rate_formatting ] ) ]
