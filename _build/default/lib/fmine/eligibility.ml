type credential =
  | Ideal_ticket
  | Vrf_credential of Bacrypto.Vrf.evaluation

type t = {
  world : [ `Hybrid | `Real ];
  mine : node:int -> msg:string -> p:float -> credential option;
  verify : node:int -> msg:string -> p:float -> credential -> bool;
  credential_bits : credential -> int;
}

let hybrid fmine =
  { world = `Hybrid;
    mine =
      (fun ~node ~msg ~p ->
        if Fmine.mine fmine ~node ~msg ~p then Some Ideal_ticket else None);
    verify =
      (fun ~node ~msg ~p:_ -> function
        | Ideal_ticket -> Fmine.verify fmine ~node ~msg
        | Vrf_credential _ -> false);
    credential_bits =
      (function Ideal_ticket -> 0 | Vrf_credential ev -> Bacrypto.Vrf.evaluation_bits ev) }

let mining_msg ~tag ~iter ~bit =
  match bit with
  | Some b -> Printf.sprintf "%s:%d:%d" tag iter (if b then 1 else 0)
  | None -> Printf.sprintf "%s:%d" tag iter
