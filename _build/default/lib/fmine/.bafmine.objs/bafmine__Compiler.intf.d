lib/fmine/compiler.mli: Bacrypto Eligibility
