lib/fmine/fmine.ml: Bacrypto Hashtbl Printf String
