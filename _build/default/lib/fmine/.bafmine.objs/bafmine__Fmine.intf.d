lib/fmine/fmine.mli: Bacrypto
