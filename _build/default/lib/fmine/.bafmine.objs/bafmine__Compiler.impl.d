lib/fmine/compiler.ml: Bacrypto Eligibility Hashtbl Pki Prf Vrf
