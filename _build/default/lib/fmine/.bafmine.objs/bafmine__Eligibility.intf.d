lib/fmine/eligibility.mli: Bacrypto Fmine
