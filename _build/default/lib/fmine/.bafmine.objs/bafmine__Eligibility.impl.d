lib/fmine/eligibility.ml: Bacrypto Fmine Printf
