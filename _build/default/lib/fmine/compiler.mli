(** The Appendix-D compiler: instantiate the eligibility interface in the
    real world, replacing the [Fmine] ideal functionality with the
    adaptively secure VRF (PRF + perfectly binding commitment + NIZK)
    built over the trusted PKI.

    - [Fmine.mine(m)] becomes: evaluate [ρ = PRF_sk(m)], attach the NIZK
      [π] that [ρ] is correct w.r.t. the key committed in the node's
      public key; the attempt succeeds iff [ρ < D_p].
    - [Fmine.verify(m, i)] becomes: check [ρ < D_p] and verify [π]
      against node [i]'s public key.

    Appendix E proves the real world preserves all security properties of
    the hybrid world; experiment E9 checks the two worlds elect identical
    committees when driven by the same keys, and measures the proof
    overhead in bits. *)

val real_world : Bacrypto.Pki.t -> Eligibility.t
(** [real_world pki] is the compiled eligibility oracle over [pki].
    [mine ~node] evaluates with node [node]'s secret key (honest code runs
    in-node; adversaries may call it only for corrupted nodes, whose keys
    {!Bacrypto.Pki.corrupt} hands over). *)

val hybrid_from_pki : Bacrypto.Pki.t -> Eligibility.t
(** A hybrid-world oracle whose Bernoulli coins are derived from the
    PKI's PRF keys — the same lottery as {!real_world} — but which issues
    zero-size ideal tickets and verifies by consulting its own mined-set
    table, exactly like {!Fmine}. *)

val paired : Bacrypto.Pki.t -> Eligibility.t * Eligibility.t
(** [paired pki] is [(hybrid_from_pki pki, real_world pki)]: two worlds
    coupled on the same lottery, so a node is eligible in one iff in the
    other. Used by experiment E9 to exhibit transcript equality and
    measure proof overhead. *)
