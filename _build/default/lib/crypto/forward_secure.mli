(** Forward-secure signatures with explicit key erasure — the "ephemeral
    keys" of Chen–Micali (the paper's §3.2 discussion, footnote 5).

    In a forward-secure scheme a node starts with a key that signs any
    slot [t ≥ 0]; after signing at slot [t] it can {e update} its key to
    one that signs only slots [> t], erasing the old one. In the
    {b memory-erasure model} the adversary that corrupts a node obtains
    only the current (updated) key, so it cannot sign for past slots —
    this is what lets Chen–Micali survive the §3.3 equivocation attack
    {e without} bit-specific eligibility. Dropping the erasure assumption
    hands the adversary the master key, and the attack goes through;
    experiment E5b measures exactly this difference.

    Like {!Signature}, this is an idealized functionality: a trusted
    scheme value holds one master key per node, slot keys are derived by
    PRF, and verification recomputes tags. The erasure state (each node's
    lowest signable slot) is enforced by the functionality: honest code
    cannot sign below it, and {!corrupt} reveals either the post-erasure
    capability or the master key depending on the model. *)

type scheme

type tag = string

val setup : n:int -> Rng.t -> scheme
(** Keys for nodes [0 … n-1], all starting at slot 0. *)

val current_slot : scheme -> int -> int
(** Lowest slot node [i] can still sign. *)

val sign : scheme -> signer:int -> slot:int -> string -> tag
(** Sign [msg] for [slot] with [signer]'s slot key.
    @raise Invalid_argument if the slot key has been erased
    ([slot < current_slot]) or the signer is out of range. *)

val update : scheme -> signer:int -> slot:int -> unit
(** Erase all of [signer]'s slot keys below [slot] (monotone: updating
    backwards is a no-op). Honest nodes call this immediately after
    signing — atomically with the send, before the adversary can act. *)

val verify : scheme -> signer:int -> slot:int -> string -> tag -> bool
(** Check a slot signature. *)

(** What corruption reveals. *)
type capability =
  | Master
      (** the non-erasure model: everything, all slots forever *)
  | From_slot of int
      (** the memory-erasure model: only slots the node had not yet
          erased at corruption time *)

val corrupt : scheme -> erasure:bool -> int -> capability
(** [corrupt scheme ~erasure i] is the adversary's haul when it corrupts
    node [i]: [Master] if the model has no erasure, otherwise
    [From_slot (current_slot i)]. *)

val adversary_sign :
  scheme -> capability:capability -> signer:int -> slot:int -> string ->
  tag option
(** Sign on behalf of a corrupted node, if the stolen capability covers
    the slot; [None] when the needed slot key was erased before the
    corruption. *)
