exception Non_compliant of string

type instance_state = {
  key : Prf.key;
  mutable corrupted : bool;
  mutable challenged : (string, string) Hashtbl.t;
  mutable evaluated : (string, unit) Hashtbl.t;
}

type t = {
  b : bool;
  rng : Rng.t;
  mutable instances : instance_state array;
  mutable count : int;
  mutable served : int;
}

let start ~b rng = { b; rng; instances = [||]; count = 0; served = 0 }

let create_instance t =
  let inst =
    { key = Prf.gen t.rng;
      corrupted = false;
      challenged = Hashtbl.create 8;
      evaluated = Hashtbl.create 8 }
  in
  t.instances <- Array.append t.instances [| inst |];
  t.count <- t.count + 1;
  t.served <- t.served + 1;
  t.count - 1

let get t instance =
  if instance < 0 || instance >= t.count then
    invalid_arg "Selective_opening: unknown instance";
  t.instances.(instance)

let evaluate t ~instance msg =
  let inst = get t instance in
  if Hashtbl.mem inst.challenged msg then
    raise (Non_compliant "evaluate on a challenged point");
  Hashtbl.replace inst.evaluated msg ();
  t.served <- t.served + 1;
  Prf.eval inst.key msg

let corrupt t ~instance =
  let inst = get t instance in
  if Hashtbl.length inst.challenged > 0 then
    raise (Non_compliant "corrupting a challenged instance");
  inst.corrupted <- true;
  t.served <- t.served + 1;
  inst.key

let fresh_random t =
  String.init 32 (fun _ ->
      Char.chr (Int64.to_int (Int64.logand (Rng.next_int64 t.rng) 0xffL)))

let challenge t ~instance msg =
  let inst = get t instance in
  if inst.corrupted then
    raise (Non_compliant "challenging a corrupted instance");
  if Hashtbl.mem inst.evaluated msg then
    raise (Non_compliant "challenging an evaluated point");
  t.served <- t.served + 1;
  match Hashtbl.find_opt inst.challenged msg with
  | Some answer -> answer
  | None ->
      let answer = if t.b then Prf.eval inst.key msg else fresh_random t in
      Hashtbl.replace inst.challenged msg answer;
      answer

let queries t = t.served

let advantage ~trials ~seed ~play =
  let rng = Rng.create seed in
  let correct = ref 0 in
  for _ = 1 to trials do
    let b = Rng.bool rng in
    let game = start ~b (Rng.split rng) in
    let guess = play game in
    if guess = b then incr correct
  done;
  abs_float ((float_of_int !correct /. float_of_int trials) -. 0.5)
