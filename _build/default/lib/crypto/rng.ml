type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = seed }

let first_8_bytes_as_int64 digest =
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code digest.[i]))
  done;
  !v

let of_string label =
  create (first_8_bytes_as_int64 (Sha256.digest_string label))

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = create (next_int64 t)

let split_named t label =
  let digest =
    Sha256.digest_concat [ Int64.to_string t.state; label ]
  in
  create (first_8_bytes_as_int64 digest)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling over the low 62 bits to avoid modulo bias. *)
  let mask = 0x3FFFFFFFFFFFFFFFL in
  let rec draw () =
    let v = Int64.to_int (Int64.logand (next_int64 t) mask) in
    let limit = max_int - (max_int mod bound) in
    if v >= limit then draw () else v mod bound
  in
  draw ()

let float t =
  (* 53 random bits into [0,1). *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let bernoulli t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))

let sample_without_replacement t k n =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  (* Floyd's algorithm: O(k) expected insertions. *)
  let module Iset = Set.Make (Int) in
  let chosen = ref Iset.empty in
  for j = n - k to n - 1 do
    let candidate = int t (j + 1) in
    if Iset.mem candidate !chosen then chosen := Iset.add j !chosen
    else chosen := Iset.add candidate !chosen
  done;
  Iset.elements !chosen
