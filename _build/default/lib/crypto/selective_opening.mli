(** The selective-opening PRF security game of Appendix E.1
    (Definition 20 / Theorem 21), as executable code.

    The game [Expt_b] between a challenger and an adversary: the adversary
    may {e create} PRF instances, {e evaluate} them on chosen messages,
    {e corrupt} instances (learning their keys — modeling adaptive node
    corruption), and issue {e challenge} queries on some instance/message;
    the challenger answers challenges truthfully ([b = 1]) or with fresh
    randomness ([b = 0]). A {b compliant} adversary never corrupts a
    challenged instance and never both evaluates and challenges the same
    (instance, message). Security: no compliant adversary distinguishes
    the two worlds.

    This is the exact property the Appendix-E hybrid argument consumes
    when it replaces honest nodes' mining coins with true randomness, one
    corruption at a time. The module provides the challenger with
    compliance {e enforcement} (non-compliant queries raise), so tests can
    both (a) run statistical distinguishing experiments against the
    HMAC-SHA256 PRF and (b) check that the compliance rules — which are
    what make the reduction sound — are actually enforced. *)

type t
(** A game instance (the challenger's state), fixed to world [b]. *)

exception Non_compliant of string
(** Raised when the adversary violates compliance (corrupting a
    challenged instance, challenging a corrupted one, or
    evaluating-and-challenging the same point). *)

val start : b:bool -> Rng.t -> t
(** [start ~b rng] begins [Expt_b]: [b = true] answers challenges with
    real PRF evaluations, [b = false] with fresh uniform randomness. *)

val create_instance : t -> int
(** Create a fresh PRF instance; returns its index. *)

val evaluate : t -> instance:int -> string -> string
(** Honest evaluation query. @raise Non_compliant if (instance, msg) was
    already challenged. @raise Invalid_argument on unknown instance. *)

val corrupt : t -> instance:int -> Prf.key
(** Corruption query: reveals the instance's key.
    @raise Non_compliant if the instance was already challenged. *)

val challenge : t -> instance:int -> string -> string
(** Challenge query: the real evaluation or fresh randomness, per [b].
    Repeated challenges on the same point return the same answer.
    @raise Non_compliant if the instance is corrupted or the point was
    evaluated. *)

val queries : t -> int
(** Total queries served (for reduction-loss accounting in tests). *)

val advantage :
  trials:int ->
  seed:int64 ->
  play:(t -> bool) ->
  float
(** [advantage ~trials ~seed ~play] estimates an adversary's
    distinguishing advantage: [play] receives a fresh game (world chosen
    by fair coin) and guesses the world; the result is
    [|P(guess = b) − 1/2|]. Used by tests to show natural distinguishers
    get ≈ 0 against the HMAC PRF. *)
