type crs = { tag : string }

type t = string

let gen rng =
  { tag =
      String.init 32 (fun _ ->
          Char.chr (Int64.to_int (Int64.logand (Rng.next_int64 rng) 0xffL))) }

let crs_to_string crs = crs.tag

let commit crs ~value ~salt =
  Sha256.digest_concat [ "commit"; crs.tag; value; salt ]

let verify crs c ~value ~salt = String.equal c (commit crs ~value ~salt)

let fresh_salt rng =
  String.init 32 (fun _ ->
      Char.chr (Int64.to_int (Int64.logand (Rng.next_int64 rng) 0xffL)))
