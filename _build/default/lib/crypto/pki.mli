(** Trusted public-key-infrastructure setup (the setup phase of §3.2 and
    Appendix D.4).

    A single trusted run generates: the commitment CRS, the NIZK CRS, a
    VRF key pair per node (public key = commitment to the node's PRF key),
    and the idealized signature functionality. Public information — the
    CRSs and all public keys — is available to everyone including the
    adversary; each node's secret key is private until the node is
    corrupted, at which point {!corrupt} hands the full secret state to the
    adversary (modeling the selective-opening games of Appendix E). *)

type t

val setup : n:int -> Rng.t -> t
(** [setup ~n rng] runs trusted setup for [n] nodes. *)

val n : t -> int
(** Number of enrolled nodes. *)

val params : t -> Vrf.params
(** The public CRSs. *)

val public_key : t -> int -> Vrf.pk
(** [public_key t i] is node [i]'s VRF public key. *)

val secret_key : t -> int -> Vrf.sk
(** [secret_key t i] is node [i]'s VRF secret key. Honest-node code only;
    adversaries obtain it via {!corrupt}. *)

val signatures : t -> Signature.scheme
(** The idealized signature functionality for this execution. *)

type corrupted_state = {
  vrf_sk : Vrf.sk;
  sig_key : string;
}
(** Everything the adversary learns when it corrupts a node. *)

val corrupt : t -> int -> corrupted_state
(** [corrupt t i] is node [i]'s full secret state. *)
