(** Deterministic splittable pseudo-random number generator (SplitMix64).

    Every experiment in this repository is reproducible from a single 64-bit
    seed. The generator is splittable: {!split} derives an independent child
    stream, so the engine can hand each node, each round, and each adversary
    its own stream without any cross-contamination of draws — reordering
    draws in one component never perturbs another. *)

type t
(** A mutable PRNG stream. *)

val create : int64 -> t
(** [create seed] is a fresh stream seeded with [seed]. *)

val of_string : string -> t
(** [of_string label] seeds a stream from the SHA-256 of [label]; used to
    derive named sub-streams reproducibly. *)

val split : t -> t
(** [split t] draws from [t] to produce an independent child stream. *)

val split_named : t -> string -> t
(** [split_named t label] derives a child stream from [t]'s seed material
    and [label] without consuming draws from [t]; two distinct labels give
    independent streams. *)

val next_int64 : t -> int64
(** Next 64 uniformly random bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. @raise Invalid_argument if
    [bound <= 0]. *)

val float : t -> float
(** Uniform in [\[0, 1)] with 53 bits of precision. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p] (clamped to [\[0,1\]]). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. @raise Invalid_argument on an
    empty array. *)

val sample_without_replacement : t -> int -> int -> int list
(** [sample_without_replacement t k n] is a uniformly random size-[k] subset
    of [\[0, n)], in increasing order. @raise Invalid_argument if
    [k < 0 || k > n]. *)
