(** Non-interactive commitment scheme (Appendix D.2), instantiated with
    SHA-256.

    The paper requires a commitment that is perfectly binding and
    computationally hiding under selective opening (Theorem 18 instantiates
    it from bilinear groups). We substitute a hash commitment
    [com = H(crs, value, salt)]: binding up to collisions, hiding up to
    preimages — the same interface and the same role in the PKI (each
    node's public key is a commitment to its PRF secret key). See DESIGN.md
    §3 for why this substitution preserves the experiments' behaviour. *)

type crs
(** Common reference string for the scheme. *)

type t = string
(** A commitment (32 raw bytes). *)

val gen : Rng.t -> crs
(** [gen rng] samples a CRS. *)

val crs_to_string : crs -> string
(** Serialized CRS, for inclusion in statements and transcripts. *)

val commit : crs -> value:string -> salt:string -> t
(** [commit crs ~value ~salt] commits to [value] under randomness [salt]. *)

val verify : crs -> t -> value:string -> salt:string -> bool
(** [verify crs c ~value ~salt] checks the opening [(value, salt)]. *)

val fresh_salt : Rng.t -> string
(** 32 bytes of commitment randomness. *)
