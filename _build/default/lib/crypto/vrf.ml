type params = { crs_comm : Commitment.crs; crs_nizk : Nizk.crs }

type sk = { index : int; prf_key : Prf.key; salt : string }

type pk = { pk_index : int; com : Commitment.t }

type evaluation = { rho : string; proof : Nizk.proof }

let keygen params rng ~index =
  let prf_key = Prf.gen rng in
  let salt = Commitment.fresh_salt rng in
  let com = Commitment.commit params.crs_comm ~value:prf_key ~salt in
  ({ index; prf_key; salt }, { pk_index = index; com })

let statement params ~com ~rho ~msg =
  { Nizk.rho;
    com;
    crs_comm = Commitment.crs_to_string params.crs_comm;
    msg }

let eval params sk msg =
  let rho = Prf.eval sk.prf_key msg in
  let com = Commitment.commit params.crs_comm ~value:sk.prf_key ~salt:sk.salt in
  let stmt = statement params ~com ~rho ~msg in
  let witness = { Nizk.sk = sk.prf_key; salt = sk.salt } in
  { rho; proof = Nizk.prove params.crs_nizk params.crs_comm stmt witness }

let verify params pk msg ev =
  let stmt = statement params ~com:pk.com ~rho:ev.rho ~msg in
  Nizk.verify params.crs_nizk stmt ev.proof

let output_fraction ev = Prf.output_fraction ev.rho

let evaluation_bits ev = (String.length ev.rho * 8) + Nizk.proof_bits ev.proof
