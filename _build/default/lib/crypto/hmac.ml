let block_size = 64

let pad_key key =
  let key =
    if String.length key > block_size then Sha256.digest_string key else key
  in
  let padded = Bytes.make block_size '\x00' in
  Bytes.blit_string key 0 padded 0 (String.length key);
  padded

let xor_pad padded byte =
  String.init block_size (fun i ->
      Char.chr (Char.code (Bytes.get padded i) lxor byte))

let with_pads ~key inner_feed =
  let padded = pad_key key in
  let ipad = xor_pad padded 0x36 and opad = xor_pad padded 0x5c in
  let inner = Sha256.init () in
  Sha256.feed_string inner ipad;
  inner_feed inner;
  let inner_digest = Sha256.finalize inner in
  let outer = Sha256.init () in
  Sha256.feed_string outer opad;
  Sha256.feed_string outer inner_digest;
  Sha256.finalize outer

let mac ~key msg = with_pads ~key (fun ctx -> Sha256.feed_string ctx msg)

let mac_concat ~key parts =
  (* Reuse the injective encoding of Sha256.digest_concat: 8-byte big-endian
     length prefix before each part. *)
  let encode part =
    let n = String.length part in
    let prefix =
      String.init 8 (fun i -> Char.chr ((n lsr (8 * (7 - i))) land 0xff))
    in
    prefix ^ part
  in
  with_pads ~key (fun ctx ->
      List.iter (fun part -> Sha256.feed_string ctx (encode part)) parts)

let equal a b =
  if String.length a <> String.length b then false
  else begin
    let diff = ref 0 in
    String.iteri (fun i c -> diff := !diff lor (Char.code c lxor Char.code b.[i])) a;
    !diff = 0
  end
