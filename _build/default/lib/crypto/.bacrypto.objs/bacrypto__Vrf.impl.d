lib/crypto/vrf.ml: Commitment Nizk Prf String
