lib/crypto/signature.mli: Rng
