lib/crypto/hmac.mli:
