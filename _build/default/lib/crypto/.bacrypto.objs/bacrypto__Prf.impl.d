lib/crypto/prf.ml: Char Hmac Int64 Rng String
