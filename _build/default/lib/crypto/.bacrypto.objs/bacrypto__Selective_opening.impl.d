lib/crypto/selective_opening.ml: Array Char Hashtbl Int64 Prf Rng String
