lib/crypto/nizk.ml: Char Commitment Hmac Int64 Prf Rng Sha256 String
