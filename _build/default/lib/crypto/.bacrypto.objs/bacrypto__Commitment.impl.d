lib/crypto/commitment.ml: Char Int64 Rng Sha256 String
