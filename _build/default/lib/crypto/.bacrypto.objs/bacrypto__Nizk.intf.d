lib/crypto/nizk.mli: Commitment Prf Rng
