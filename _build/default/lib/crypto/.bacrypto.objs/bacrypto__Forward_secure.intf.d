lib/crypto/forward_secure.mli: Rng
