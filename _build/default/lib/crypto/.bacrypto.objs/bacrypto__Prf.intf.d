lib/crypto/prf.mli: Rng
