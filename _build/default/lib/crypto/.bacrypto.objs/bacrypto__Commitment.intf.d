lib/crypto/commitment.mli: Rng
