lib/crypto/selective_opening.mli: Prf Rng
