lib/crypto/rng.ml: Array Char Int Int64 Set Sha256 String
