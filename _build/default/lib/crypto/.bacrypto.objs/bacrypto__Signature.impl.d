lib/crypto/signature.ml: Array Hmac Prf
