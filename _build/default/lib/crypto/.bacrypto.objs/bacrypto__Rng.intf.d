lib/crypto/rng.mli:
