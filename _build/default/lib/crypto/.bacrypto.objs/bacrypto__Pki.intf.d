lib/crypto/pki.mli: Rng Signature Vrf
