lib/crypto/pki.ml: Array Commitment Nizk Signature Vrf
