lib/crypto/vrf.mli: Commitment Nizk Prf Rng
