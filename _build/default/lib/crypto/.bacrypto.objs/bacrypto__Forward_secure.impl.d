lib/crypto/forward_secure.ml: Array Hmac Prf
