let digest_size = 32

let k =
  [| 0x428a2f98l; 0x71374491l; 0xb5c0fbcfl; 0xe9b5dba5l; 0x3956c25bl;
     0x59f111f1l; 0x923f82a4l; 0xab1c5ed5l; 0xd807aa98l; 0x12835b01l;
     0x243185bel; 0x550c7dc3l; 0x72be5d74l; 0x80deb1fel; 0x9bdc06a7l;
     0xc19bf174l; 0xe49b69c1l; 0xefbe4786l; 0x0fc19dc6l; 0x240ca1ccl;
     0x2de92c6fl; 0x4a7484aal; 0x5cb0a9dcl; 0x76f988dal; 0x983e5152l;
     0xa831c66dl; 0xb00327c8l; 0xbf597fc7l; 0xc6e00bf3l; 0xd5a79147l;
     0x06ca6351l; 0x14292967l; 0x27b70a85l; 0x2e1b2138l; 0x4d2c6dfcl;
     0x53380d13l; 0x650a7354l; 0x766a0abbl; 0x81c2c92el; 0x92722c85l;
     0xa2bfe8a1l; 0xa81a664bl; 0xc24b8b70l; 0xc76c51a3l; 0xd192e819l;
     0xd6990624l; 0xf40e3585l; 0x106aa070l; 0x19a4c116l; 0x1e376c08l;
     0x2748774cl; 0x34b0bcb5l; 0x391c0cb3l; 0x4ed8aa4al; 0x5b9cca4fl;
     0x682e6ff3l; 0x748f82eel; 0x78a5636fl; 0x84c87814l; 0x8cc70208l;
     0x90befffal; 0xa4506cebl; 0xbef9a3f7l; 0xc67178f2l |]

type ctx = {
  h : int32 array;          (* 8-word chaining state *)
  block : bytes;            (* 64-byte input buffer *)
  mutable used : int;       (* bytes currently buffered *)
  mutable total : int64;    (* total message length in bytes *)
  w : int32 array;          (* 64-word message schedule, reused *)
}

let init () =
  { h =
      [| 0x6a09e667l; 0xbb67ae85l; 0x3c6ef372l; 0xa54ff53al; 0x510e527fl;
         0x9b05688cl; 0x1f83d9abl; 0x5be0cd19l |];
    block = Bytes.create 64;
    used = 0;
    total = 0L;
    w = Array.make 64 0l }

let ( &&& ) = Int32.logand
let ( ||| ) = Int32.logor
let ( ^^^ ) = Int32.logxor
let ( +%  ) = Int32.add

let rotr x n = Int32.shift_right_logical x n ||| Int32.shift_left x (32 - n)
let shr x n = Int32.shift_right_logical x n

(* Compress the 64-byte block currently in [ctx.block]. *)
let compress ctx =
  let b = ctx.block and w = ctx.w and h = ctx.h in
  for t = 0 to 15 do
    let i = t * 4 in
    let byte j = Int32.of_int (Char.code (Bytes.get b (i + j))) in
    w.(t) <-
      Int32.shift_left (byte 0) 24
      ||| Int32.shift_left (byte 1) 16
      ||| Int32.shift_left (byte 2) 8
      ||| byte 3
  done;
  for t = 16 to 63 do
    let s0 =
      rotr w.(t - 15) 7 ^^^ rotr w.(t - 15) 18 ^^^ shr w.(t - 15) 3
    and s1 =
      rotr w.(t - 2) 17 ^^^ rotr w.(t - 2) 19 ^^^ shr w.(t - 2) 10
    in
    w.(t) <- w.(t - 16) +% s0 +% w.(t - 7) +% s1
  done;
  let a = ref h.(0) and b' = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
  let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
  for t = 0 to 63 do
    let sigma1 = rotr !e 6 ^^^ rotr !e 11 ^^^ rotr !e 25 in
    let ch = (!e &&& !f) ^^^ (Int32.lognot !e &&& !g) in
    let t1 = !hh +% sigma1 +% ch +% k.(t) +% w.(t) in
    let sigma0 = rotr !a 2 ^^^ rotr !a 13 ^^^ rotr !a 22 in
    let maj = (!a &&& !b') ^^^ (!a &&& !c) ^^^ (!b' &&& !c) in
    let t2 = sigma0 +% maj in
    hh := !g;
    g := !f;
    f := !e;
    e := !d +% t1;
    d := !c;
    c := !b';
    b' := !a;
    a := t1 +% t2
  done;
  h.(0) <- h.(0) +% !a;
  h.(1) <- h.(1) +% !b';
  h.(2) <- h.(2) +% !c;
  h.(3) <- h.(3) +% !d;
  h.(4) <- h.(4) +% !e;
  h.(5) <- h.(5) +% !f;
  h.(6) <- h.(6) +% !g;
  h.(7) <- h.(7) +% !hh

let feed_bytes ctx src ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length src then
    invalid_arg "Sha256.feed_bytes: range out of bounds";
  ctx.total <- Int64.add ctx.total (Int64.of_int len);
  let rec loop pos len =
    if len > 0 then begin
      let room = 64 - ctx.used in
      let take = min room len in
      Bytes.blit src pos ctx.block ctx.used take;
      ctx.used <- ctx.used + take;
      if ctx.used = 64 then begin
        compress ctx;
        ctx.used <- 0
      end;
      loop (pos + take) (len - take)
    end
  in
  loop pos len

let feed_string ctx s =
  feed_bytes ctx (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)

let finalize ctx =
  let bit_len = Int64.mul ctx.total 8L in
  (* Append 0x80, pad with zeros to 56 mod 64, then the 64-bit length. *)
  Bytes.set ctx.block ctx.used '\x80';
  ctx.used <- ctx.used + 1;
  if ctx.used > 56 then begin
    Bytes.fill ctx.block ctx.used (64 - ctx.used) '\x00';
    compress ctx;
    ctx.used <- 0
  end;
  Bytes.fill ctx.block ctx.used (56 - ctx.used) '\x00';
  for i = 0 to 7 do
    let shift = 8 * (7 - i) in
    let byte = Int64.to_int (Int64.logand (Int64.shift_right_logical bit_len shift) 0xffL) in
    Bytes.set ctx.block (56 + i) (Char.chr byte)
  done;
  compress ctx;
  let out = Bytes.create 32 in
  for i = 0 to 7 do
    let v = ctx.h.(i) in
    let byte shift = Char.chr (Int32.to_int (shr v shift &&& 0xffl)) in
    Bytes.set out (4 * i) (byte 24);
    Bytes.set out ((4 * i) + 1) (byte 16);
    Bytes.set out ((4 * i) + 2) (byte 8);
    Bytes.set out ((4 * i) + 3) (byte 0)
  done;
  Bytes.unsafe_to_string out

let digest_string s =
  let ctx = init () in
  feed_string ctx s;
  finalize ctx

(* Length-prefix each part so the encoding is injective. *)
let digest_concat parts =
  let ctx = init () in
  let len_buf = Bytes.create 8 in
  let feed_len n =
    for i = 0 to 7 do
      Bytes.set len_buf i (Char.chr ((n lsr (8 * (7 - i))) land 0xff))
    done;
    feed_bytes ctx len_buf ~pos:0 ~len:8
  in
  List.iter
    (fun part ->
      feed_len (String.length part);
      feed_string ctx part)
    parts;
  finalize ctx

let to_hex d =
  let buf = Buffer.create (2 * String.length d) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) d;
  Buffer.contents buf
