(** HMAC-SHA256 (RFC 2104 / FIPS 198-1).

    The message-authentication code used as the PRF of the paper's
    Appendix-D compiler and as the tag algorithm of the idealized signature
    functionality. Validated against the RFC 4231 test vectors in the test
    suite. *)

val mac : key:string -> string -> string
(** [mac ~key msg] is the 32-byte HMAC-SHA256 tag of [msg] under [key].
    Keys longer than the 64-byte block are hashed first, shorter keys are
    zero-padded, per the standard. *)

val mac_concat : key:string -> string list -> string
(** [mac_concat ~key parts] tags the injective length-prefixed encoding of
    [parts] (same encoding as {!Sha256.digest_concat}). *)

val equal : string -> string -> bool
(** Constant-time comparison of two equal-length tags; [false] on length
    mismatch. *)
