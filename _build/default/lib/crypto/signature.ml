type scheme = { keys : string array }

type tag = string

let setup ~n rng =
  { keys = Array.init n (fun _ -> Prf.gen rng) }

let n scheme = Array.length scheme.keys

let check_range scheme i =
  if i < 0 || i >= Array.length scheme.keys then
    invalid_arg "Signature: signer out of range"

let sign scheme ~signer msg =
  check_range scheme signer;
  Hmac.mac_concat ~key:scheme.keys.(signer) [ "sig"; msg ]

let verify scheme ~signer msg tag =
  check_range scheme signer;
  Hmac.equal tag (sign scheme ~signer msg)

let corrupt_key scheme i =
  check_range scheme i;
  scheme.keys.(i)

let tag_bits = 32 * 8
