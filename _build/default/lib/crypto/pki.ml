type t = {
  count : int;
  vrf_params : Vrf.params;
  sks : Vrf.sk array;
  pks : Vrf.pk array;
  sigs : Signature.scheme;
}

type corrupted_state = { vrf_sk : Vrf.sk; sig_key : string }

let setup ~n rng =
  let vrf_params =
    { Vrf.crs_comm = Commitment.gen rng; crs_nizk = Nizk.gen rng }
  in
  let pairs = Array.init n (fun index -> Vrf.keygen vrf_params rng ~index) in
  { count = n;
    vrf_params;
    sks = Array.map fst pairs;
    pks = Array.map snd pairs;
    sigs = Signature.setup ~n rng }

let n t = t.count

let params t = t.vrf_params

let check_range t i =
  if i < 0 || i >= t.count then invalid_arg "Pki: node index out of range"

let public_key t i =
  check_range t i;
  t.pks.(i)

let secret_key t i =
  check_range t i;
  t.sks.(i)

let signatures t = t.sigs

let corrupt t i =
  check_range t i;
  { vrf_sk = t.sks.(i); sig_key = Signature.corrupt_key t.sigs i }
