(** The strongly adaptive {e eraser} — the adversary of Theorem 1/4 in its
    simplest executable form, and the centrepiece of experiment E1.

    Every round it watches which honest nodes are about to multicast,
    corrupts each speaker, and {e after-the-fact removes} every message
    the speaker just sent, until the corruption budget runs out. It is
    protocol-agnostic: it never parses messages, so the same value
    attacks every protocol in the repository.

    Consequences, exactly as the theorem predicts:

    - against a subquadratic protocol ({!Bacore.Sub_hm}), the set of
      speakers over the whole execution is [O(λ²) ≪ f], so the eraser
      silences {e everyone}: no quorum ever forms and the protocol cannot
      terminate (or, for fixed-duration protocols, validity breaks);
    - against a quadratic protocol ([n = 2f+1] speakers {e per round}),
      the budget dies in the first round while [f+1] honest speakers
      remain — exactly a quorum — and the protocol sails through.

    A protocol can only survive this adversary by having [Ω(f)] nodes
    speak per round for [Ω(f)] rounds — [Ω(f²)] messages. *)

val make : unit -> ('env, 'msg) Basim.Engine.adversary
(** A fresh eraser (strongly adaptive). *)

val silencer : unit -> ('env, 'msg) Basim.Engine.adversary
(** The weaker cousin used as a control: same corruption schedule but
    {e without} removals (merely adaptive). Shows that the corruptions
    alone are harmless — it is specifically the after-the-fact removal
    power that kills subquadratic protocols. *)
