lib/attacks/eraser.ml: Array Basim Corruption Engine List
