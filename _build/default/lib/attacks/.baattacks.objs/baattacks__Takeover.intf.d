lib/attacks/takeover.mli: Babaselines Basim
