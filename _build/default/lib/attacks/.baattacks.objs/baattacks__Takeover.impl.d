lib/attacks/takeover.ml: Babaselines Basim Corruption Engine List Static_committee
