lib/attacks/split_vote.ml: Bacore Bafmine Basim Cert Corruption Engine Hashtbl List Option Quadratic_hm Sub_hm Sub_third
