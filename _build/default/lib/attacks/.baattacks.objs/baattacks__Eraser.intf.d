lib/attacks/eraser.mli: Basim
