lib/attacks/equivocator.mli: Bacore Basim
