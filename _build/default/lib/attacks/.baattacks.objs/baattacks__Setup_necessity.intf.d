lib/attacks/setup_necessity.mli:
