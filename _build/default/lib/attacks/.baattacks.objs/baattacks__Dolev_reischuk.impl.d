lib/attacks/dolev_reischuk.ml: Array Babaselines Basim Corruption Engine Hashtbl List Sparse_relay
