lib/attacks/equivocator.ml: Array Bacore Bafmine Basim Corruption Engine List Sub_third
