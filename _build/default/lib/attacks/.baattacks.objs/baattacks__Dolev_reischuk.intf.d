lib/attacks/dolev_reischuk.mli: Babaselines Basim
