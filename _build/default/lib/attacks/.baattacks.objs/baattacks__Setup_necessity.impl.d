lib/attacks/setup_necessity.ml: Array Bacrypto Hashtbl List
