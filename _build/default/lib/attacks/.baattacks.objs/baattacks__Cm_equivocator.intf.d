lib/attacks/cm_equivocator.mli: Babaselines Basim
