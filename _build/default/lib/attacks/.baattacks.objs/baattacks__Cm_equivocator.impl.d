lib/attacks/cm_equivocator.ml: Array Babaselines Bacrypto Basim Chen_micali Corruption Engine List
