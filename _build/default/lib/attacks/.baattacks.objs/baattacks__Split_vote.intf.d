lib/attacks/split_vote.mli: Bacore Basim
