(** The §3.3 equivocation attack aimed at the Chen–Micali-style protocol
    ({!Babaselines.Chen_micali}) — the other half of experiment E5b.

    On seeing an honest [(ACK, r, b)], the adversary corrupts the sender
    and tries to also send [(ACK, r, 1−b)]. The round-specific
    eligibility ticket replays for free (it does not name the bit); what
    stands in the way is the forward-secure slot signature:

    - in the {b memory-erasure model} the node erased its slot-[r] key
      atomically with the send, so {!Bacrypto.Forward_secure.corrupt}
      yields only future slots and the forgery fails — Chen–Micali holds;
    - {b without erasure} the adversary gets the master key, signs the
      opposite bit for slot [r], and mirrors the committee — the attack
      succeeds, showing the erasure assumption is load-bearing.

    The paper's protocol needs neither: bit-specific eligibility makes
    the ticket itself non-replayable (see {!Equivocator}). *)

val make :
  unit ->
  (Babaselines.Chen_micali.env, Babaselines.Chen_micali.msg)
  Basim.Engine.adversary
