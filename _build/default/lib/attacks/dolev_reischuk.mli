(** The Dolev–Reischuk-style isolation adversary [A′] (Theorem 4's proof,
    specialized to the deterministic {!Babaselines.Sparse_relay} victim)
    — experiment E1b.

    In the sparse-relay protocol every copy of the bit addressed to the
    victim comes from its [d] ring predecessors. The adversary corrupts
    exactly those [d] nodes at setup; thereafter it simulates their
    honest behaviour faithfully {e except} that they never send to the
    victim (this is precisely "ignore messages to [p], behave honestly to
    everyone else"). The victim hears nothing, times out, and outputs the
    default bit 0 while everyone else outputs the sender's bit —
    consistency (and validity, when the bit is 1) is violated with only
    [d] corruptions.

    The defence is redundancy: with [d > f] the budget cannot cover the
    predecessors — and the protocol then sends more than [n·f = Ω(f²)]
    messages (for [n = Θ(f)]), the Dolev–Reischuk bound made concrete. *)

val make :
  victim:int ->
  unit ->
  (Babaselines.Sparse_relay.env, Babaselines.Sparse_relay.msg)
  Basim.Engine.adversary
(** [make ~victim ()] isolates [victim]. [victim] must not be the sender
    (node 0), and the victim's predecessor set must not contain node 0 —
    use [victim = n−1] with [d ≤ n−2]. If the budget is smaller than
    [d], only the first [budget] predecessors are corrupted and the
    attack (correctly) fails. *)
