(** The §3.3-Remark adversary for experiment E5: why eligibility must be
    {e bit-specific}.

    A merely adaptive adversary (no after-the-fact removal) watches the
    ACK round of {!Bacore.Sub_third}. Whenever an honest node reveals
    itself by sending [(ACK, r, b)], the adversary instantly corrupts it
    and tries to make it also send [(ACK, r, 1−b)] in the same round —
    the original ACK cannot be retracted, but extra messages are allowed.
    Two avenues:

    + {b replay} the revealed eligibility credential on the opposite bit
      — succeeds iff eligibility is bit-{e agnostic} (the ticket names
      only (ACK, r)); with bit-specific tickets the replay fails
      verification;
    + {b fresh mining} of (ACK, r, 1−b) with the corrupted key —
      legitimate but succeeds only with probability [λ/n]: corrupting the
      node gained essentially nothing, which is precisely the paper's
      point.

    Against the bit-agnostic protocol with split inputs this mirrors
    every epoch committee, producing "ample ACKs" for both bits, so
    honest beliefs never converge and outputs disagree; against the
    bit-specific protocol the very same adversary is impotent. *)

val make : unit -> (Bacore.Sub_third.env, Bacore.Sub_third.msg) Basim.Engine.adversary
(** A fresh equivocator (adaptive, no removal). *)
