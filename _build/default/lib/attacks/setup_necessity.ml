(* The two-world (Q — 1 — Q') simulation of Appendix B, over a PKI-free
   echo-committee broadcast.  This experiment needs its own harness: it
   runs 2n−1 honest instances wired in a topology the normal engine does
   not (and should not) support. *)

type msg = Inp of bool | Echo of bool

(* One protocol instance.  Identities are the paper's 1..n; the sender is
   node 2.  Without a PKI, a received message carries only the claimed
   identity of its sender — which is exactly what node 1 gets from both
   sides. *)
type instance = {
  id : int;
  mutable learned : bool option;          (* bit attributed to the sender *)
  mutable echoes : (int * bool) list;     (* first echo per identity *)
}

let sender_id = 2

let make_instance id = { id; learned = None; echoes = [] }

let receive inst (from_id, m) =
  match m with
  | Inp b -> if from_id = sender_id && inst.learned = None then inst.learned <- Some b
  | Echo b ->
      if not (List.mem_assoc from_id inst.echoes) then
        inst.echoes <- (from_id, b) :: inst.echoes

let decide inst =
  let ones = List.length (List.filter snd inst.echoes) in
  let zeros = List.length inst.echoes - ones in
  ones > zeros

type outcome = {
  n : int;
  committee_size : int;
  q_output : bool option;
  q'_output : bool option;
  node1_output : bool;
  multicast_complexity : int;
  corruptions_needed : int;
  contradiction : bool;
}

let unanimous = function
  | [] -> None
  | b :: rest -> if List.for_all (fun x -> x = b) rest then Some b else None

let run ~n ~committee_size ~seed =
  if n < 3 then invalid_arg "Setup_necessity.run: n must be at least 3";
  if committee_size > n - 1 then
    invalid_arg "Setup_necessity.run: committee larger than {2..n}";
  (* Public CRS: a committee drawn from identities {2..n} — chosen
     independently of corruptions, visible to everyone. *)
  let rng = Bacrypto.Rng.create seed in
  let committee =
    List.map
      (fun k -> k + 2)
      (Bacrypto.Rng.sample_without_replacement rng committee_size (n - 1))
  in
  (* Instances: Q side and Q' side hold nodes 2..n; node 1 is shared. *)
  let q = Array.init (n + 1) (fun id -> make_instance id) in
  let q' = Array.init (n + 1) (fun id -> make_instance id) in
  let node1 = make_instance 1 in
  let side_multicasts = ref 0 in
  let speakers = Hashtbl.create 16 in
  (* Deliver a multicast from [from_id] within one side (plus node 1).
     Deliveries to node 1 happen for *both* sides; Q is delivered first,
     matching an arbitrary but fixed channel order. *)
  let deliver_side side ~from_id m ~count =
    if count then begin
      incr side_multicasts;
      Hashtbl.replace speakers from_id ()
    end;
    for id = 2 to n do
      receive side.(id) (from_id, m)
    done;
    receive node1 (from_id, m)
  in
  (* Round 0: the two senders multicast their inputs (0 in Q, 1 in Q'). *)
  deliver_side q ~from_id:sender_id (Inp false) ~count:true;
  deliver_side q' ~from_id:sender_id (Inp true) ~count:false;
  (* count only one world's multicasts for the complexity figure; the
     speakers table covers the simulated (Q') side separately below. *)
  Hashtbl.replace speakers sender_id ();
  (* Round 1: committee members echo what they attribute to the sender. *)
  List.iter
    (fun id ->
      (match q.(id).learned with
      | Some b -> deliver_side q ~from_id:id (Echo b) ~count:true
      | None -> ());
      match q'.(id).learned with
      | Some b ->
          deliver_side q' ~from_id:id (Echo b) ~count:false;
          Hashtbl.replace speakers id ()
      | None -> ())
    committee;
  (* Round 2: decisions. *)
  let q_outputs = List.init (n - 1) (fun k -> decide q.(k + 2)) in
  let q'_outputs = List.init (n - 1) (fun k -> decide q'.(k + 2)) in
  let node1_output = decide node1 in
  let q_output = unanimous q_outputs and q'_output = unanimous q'_outputs in
  let contradiction =
    match (q_output, q'_output) with
    | Some a, Some b -> a <> b
    | _ -> false
  in
  { n;
    committee_size;
    q_output;
    q'_output;
    node1_output;
    multicast_complexity = !side_multicasts;
    corruptions_needed = Hashtbl.length speakers;
    contradiction }
