(** The committee-takeover adversary of experiment E8 — the paper's §1
    motivation for why CRS-selected committees fail against adaptive
    corruption.

    The committee of {!Babaselines.Static_committee} is public the moment
    the CRS is published. An adaptive adversary corrupts the whole
    committee in round 0 (their round-0 vote intents cannot be retracted,
    but it does not matter) and in round 1 injects unanimous Result
    announcements for the adversary's bit. Every honest node adopts the
    committee majority — the adversary's bit — so validity is violated
    whenever honest inputs are unanimous for the other bit.

    The same corruption budget aimed at {!Bacore.Sub_hm} achieves
    nothing: its per-message committees are secret until the moment they
    speak, and bit-specific, so there is nothing useful to take over. *)

val make :
  force:bool ->
  unit ->
  (Babaselines.Static_committee.env, Babaselines.Static_committee.msg)
  Basim.Engine.adversary
(** [make ~force ()] corrupts the published committee and forces the
    output [force]. Requires budget ≥ committee size (extra committee
    members beyond the budget are left honest — the attack then needs
    only a corrupt majority of the committee to win the Result vote). *)
