(** The Theorem-3 / Appendix-B hypothetical experiment: without a PKI (or
    any setup binding identities to keys), no multicast protocol with
    multicast complexity [C] tolerates [C] adaptive corruptions.

    The victim protocol is a natural PKI-{e free}, sublinear-multicast
    broadcast: a public CRS names a [λ]-sized committee out of
    [{2..n}]; the sender (node 2) multicasts its bit; committee members
    echo it; everyone outputs the per-identity-deduplicated majority of
    echoes. Its multicast complexity is [1 + λ ≪ n], and over
    authenticated channels with honest participants it is perfectly
    correct — the two-world experiment is what kills it.

    The experiment wires [2n − 1] honest protocol instances as in the
    paper: a set [Q] (nodes 2…n, sender input 0), a set [Q′] (nodes 2…n,
    sender input 1), and a single shared node 1 that hears both sides and
    cannot tell [i ∈ Q] from [i ∈ Q′] — without a PKI the channel
    carries only the claimed identity. By validity (corrupt-1
    interpretation), [Q] decides 0 and [Q′] decides 1; by consistency
    (honest-1 interpretation, where the other side is simulated by an
    adversary that corrupts one real node per simulated speaker), node 1
    must agree with {e both} — a contradiction realized as an actual
    disagreement in the output record. The number of corruptions the
    simulating adversary needs equals the number of speakers, which is
    bounded by the multicast complexity. *)

type outcome = {
  n : int;
  committee_size : int;
  q_output : bool option;        (** unanimous output of Q, if unanimous *)
  q'_output : bool option;       (** unanimous output of Q′, if unanimous *)
  node1_output : bool;
  multicast_complexity : int;    (** honest multicasts in one world *)
  corruptions_needed : int;      (** speakers in the simulated side *)
  contradiction : bool;
      (** both sides unanimous with different bits, so node 1 necessarily
          disagrees with one of them *)
}

val run : n:int -> committee_size:int -> seed:int64 -> outcome
(** Execute the hypothetical experiment.
    @raise Invalid_argument if [committee_size > n - 1] or [n < 3]. *)
