lib/sim/properties.mli: Engine Format
