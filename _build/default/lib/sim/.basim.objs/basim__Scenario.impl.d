lib/sim/scenario.ml: Array Bacrypto Engine List Metrics Properties
