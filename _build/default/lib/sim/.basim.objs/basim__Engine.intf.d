lib/sim/engine.mli: Bacrypto Corruption Metrics Trace
