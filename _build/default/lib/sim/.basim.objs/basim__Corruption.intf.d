lib/sim/corruption.mli:
