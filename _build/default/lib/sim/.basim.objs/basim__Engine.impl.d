lib/sim/engine.ml: Array Bacrypto Corruption Format List Metrics Printf Trace
