lib/sim/scenario.mli: Engine Properties
