lib/sim/corruption.ml: Array
