lib/sim/properties.ml: Array Engine Format List
