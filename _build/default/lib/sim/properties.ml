type verdict = { consistent : bool; valid : bool; terminated : bool }

let ok v = v.consistent && v.valid && v.terminated

let honest_outputs (result : Engine.result) =
  let acc = ref [] in
  Array.iteri
    (fun i out ->
      if not result.Engine.corrupt.(i) then acc := (i, out) :: !acc)
    result.Engine.outputs;
  List.rev !acc

let consistency result =
  let outputs = honest_outputs result in
  let decided = List.filter_map (fun (_, o) -> o) outputs in
  match decided with
  | [] -> true
  | first :: rest -> List.for_all (fun b -> b = first) rest

let termination result = result.Engine.all_honest_decided

let agreement ~inputs result =
  let honest = honest_outputs result in
  let honest_inputs =
    List.map (fun (i, _) -> inputs.(i)) honest
  in
  let unanimous =
    match honest_inputs with
    | [] -> None
    | b :: rest -> if List.for_all (fun x -> x = b) rest then Some b else None
  in
  let valid =
    match unanimous with
    | None -> true
    | Some b ->
        List.for_all
          (fun (_, out) -> match out with None -> true | Some o -> o = b)
          honest
  in
  { consistent = consistency result; valid; terminated = termination result }

let broadcast ~sender ~input result =
  let valid =
    if result.Engine.corrupt.(sender) then true
    else
      List.for_all
        (fun (_, out) -> match out with None -> true | Some o -> o = input)
        (honest_outputs result)
  in
  { consistent = consistency result; valid; terminated = termination result }

let pp fmt v =
  Format.fprintf fmt "consistent=%b valid=%b terminated=%b" v.consistent
    v.valid v.terminated
