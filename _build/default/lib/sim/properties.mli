(** Security-property checking on execution results (Appendix A.2).

    All predicates quantify over {e forever-honest} nodes only — nodes that
    were never corrupted — exactly as in the paper's definitions. *)

type verdict = {
  consistent : bool;
      (** Consistency: all forever-honest outputs are equal. *)
  valid : bool;
      (** Validity, per the chosen flavour (see below). *)
  terminated : bool;
      (** Tend-termination: every forever-honest node halted with an
          output within the round limit. *)
}

val ok : verdict -> bool
(** All three properties hold. *)

val agreement : inputs:bool array -> Engine.result -> verdict
(** Agreement-version BA: validity requires that {e if} all forever-honest
    nodes received the same input bit [b], they all output [b]; vacuous
    otherwise. *)

val broadcast : sender:int -> input:bool -> Engine.result -> verdict
(** Broadcast version: validity requires that if the designated [sender]
    is forever-honest, every forever-honest output equals [input];
    vacuous if the sender was corrupted. *)

val pp : Format.formatter -> verdict -> unit
