type trial = {
  seed : int64;
  verdict : Properties.verdict;
  result : Engine.result;
}

type aggregate = {
  trials : int;
  consistency_failures : int;
  validity_failures : int;
  termination_failures : int;
  mean_rounds : float;
  max_rounds_observed : int;
  mean_multicasts : float;
  mean_multicast_bits : float;
  mean_classical_messages : float;
  mean_corruptions : float;
}

let run_trials ~reps ~base_seed f =
  let root = Bacrypto.Rng.create base_seed in
  List.init reps (fun k ->
      let seed = Bacrypto.Rng.next_int64 (Bacrypto.Rng.split_named root (string_of_int k)) in
      let result, verdict = f seed in
      { seed; verdict; result })

let aggregate trials =
  let count = List.length trials in
  if count = 0 then invalid_arg "Scenario.aggregate: no trials";
  let fcount = float_of_int count in
  let sum f = List.fold_left (fun acc t -> acc +. f t) 0.0 trials in
  let bool_failures f =
    List.fold_left (fun acc t -> if f t.verdict then acc else acc + 1) 0 trials
  in
  { trials = count;
    consistency_failures = bool_failures (fun v -> v.Properties.consistent);
    validity_failures = bool_failures (fun v -> v.Properties.valid);
    termination_failures = bool_failures (fun v -> v.Properties.terminated);
    mean_rounds =
      sum (fun t -> float_of_int t.result.Engine.rounds_used) /. fcount;
    max_rounds_observed =
      List.fold_left (fun acc t -> max acc t.result.Engine.rounds_used) 0 trials;
    mean_multicasts =
      sum (fun t ->
          float_of_int (Metrics.honest_multicasts t.result.Engine.metrics))
      /. fcount;
    mean_multicast_bits =
      sum (fun t ->
          float_of_int (Metrics.honest_multicast_bits t.result.Engine.metrics))
      /. fcount;
    mean_classical_messages =
      sum (fun t ->
          float_of_int (Metrics.classical_messages t.result.Engine.metrics))
      /. fcount;
    mean_corruptions =
      sum (fun t -> float_of_int t.result.Engine.corruptions) /. fcount }

let failure_rate agg =
  let failures =
    max agg.consistency_failures
      (max agg.validity_failures agg.termination_failures)
  in
  (* A trial can fail several properties at once; report the fraction of
     trials with any failure by recomputing conservatively from the max.
     The per-property counts are reported separately where it matters. *)
  float_of_int failures /. float_of_int agg.trials

let random_inputs ~n seed =
  let rng = Bacrypto.Rng.create seed in
  Array.init n (fun _ -> Bacrypto.Rng.bool rng)

let unanimous_inputs ~n b = Array.make n b

let split_inputs ~n = Array.init n (fun i -> i * 2 >= n)
