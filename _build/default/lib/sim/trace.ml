type event =
  | Round_started of { round : int }
  | Sent of { round : int; node : int; multicast : bool; recipients : int }
  | Corrupted of { round : int; node : int }
  | Removed of { round : int; victim : int }
  | Injected of { round : int; src : int; recipients : int }
  | Halted of { round : int; node : int; output : bool option }

let pp_event fmt = function
  | Round_started { round } -> Format.fprintf fmt "-- round %d --" round
  | Sent { node; multicast; recipients; _ } ->
      if multicast then Format.fprintf fmt "node %d multicasts" node
      else Format.fprintf fmt "node %d sends to %d nodes" node recipients
  | Corrupted { round; node } ->
      if round < 0 then Format.fprintf fmt "node %d corrupted at setup" node
      else Format.fprintf fmt "node %d corrupted" node
  | Removed { victim; _ } ->
      Format.fprintf fmt "a message of node %d erased after the fact" victim
  | Injected { src; recipients; _ } ->
      Format.fprintf fmt "adversary sends as node %d to %d nodes" src recipients
  | Halted { node; output; _ } ->
      Format.fprintf fmt "node %d halts with output %s" node
        (match output with
        | Some true -> "1"
        | Some false -> "0"
        | None -> "none")

type collector = { mutable rev_events : event list; mutable total : int }

let collector () = { rev_events = []; total = 0 }

let observe c event =
  c.rev_events <- event :: c.rev_events;
  c.total <- c.total + 1

let events c = List.rev c.rev_events

let count c p = List.length (List.filter p (events c))

let round_of = function
  | Round_started { round }
  | Sent { round; _ }
  | Corrupted { round; _ }
  | Removed { round; _ }
  | Injected { round; _ }
  | Halted { round; _ } ->
      round

let render ?(max_rounds = 30) c =
  let buf = Buffer.create 1024 in
  let skipped = ref 0 in
  List.iter
    (fun e ->
      if round_of e < max_rounds then
        Buffer.add_string buf (Format.asprintf "%a\n" pp_event e)
      else incr skipped)
    (events c);
  if !skipped > 0 then
    Buffer.add_string buf
      (Printf.sprintf "... %d further events beyond round %d elided\n" !skipped
         max_rounds);
  Buffer.contents buf
