(** Repetition harness: run a configuration over many seeds and aggregate
    property verdicts and communication metrics. Every experiment table in
    the repository is produced through this module. *)

type trial = {
  seed : int64;
  verdict : Properties.verdict;
  result : Engine.result;
}

type aggregate = {
  trials : int;
  consistency_failures : int;
  validity_failures : int;
  termination_failures : int;
  mean_rounds : float;
  max_rounds_observed : int;
  mean_multicasts : float;
  mean_multicast_bits : float;
  mean_classical_messages : float;
  mean_corruptions : float;
}

val run_trials :
  reps:int ->
  base_seed:int64 ->
  (int64 -> Engine.result * Properties.verdict) ->
  trial list
(** [run_trials ~reps ~base_seed f] calls [f] on [reps] distinct derived
    seeds. *)

val aggregate : trial list -> aggregate
(** Summarize a batch of trials. @raise Invalid_argument on []. *)

val failure_rate : aggregate -> float
(** Fraction of trials violating at least one property. *)

val random_inputs : n:int -> int64 -> bool array
(** Independent fair-coin inputs derived from a seed. *)

val unanimous_inputs : n:int -> bool -> bool array
(** All-[b] inputs (the validity-triggering case). *)

val split_inputs : n:int -> bool array
(** Half 0, half 1 — the adversarially interesting mixed-input case. *)
