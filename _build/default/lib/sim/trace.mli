(** Structured execution traces.

    The engine can emit one {!event} per noteworthy occurrence — sends,
    corruptions, after-the-fact removals, injections, halts — to an
    observer callback. {!collector} gathers them for inspection
    (tests, the CLI's [--trace] mode); rendering is message-agnostic so
    one tracer serves every protocol. *)

type event =
  | Round_started of { round : int }
  | Sent of { round : int; node : int; multicast : bool; recipients : int }
      (** an honest send survived to delivery ([recipients] = n for a
          multicast) *)
  | Corrupted of { round : int; node : int }
      (** [round = -1] for setup-time (static) corruption *)
  | Removed of { round : int; victim : int }
      (** an after-the-fact removal of one of [victim]'s sends *)
  | Injected of { round : int; src : int; recipients : int }
      (** the adversary made corrupt [src] send a message *)
  | Halted of { round : int; node : int; output : bool option }

val pp_event : Format.formatter -> event -> unit

type collector

val collector : unit -> collector

val observe : collector -> event -> unit
(** The callback to hand to {!Engine.run} via [?tracer]. *)

val events : collector -> event list
(** All observed events, in order. *)

val count : collector -> (event -> bool) -> int

val render : ?max_rounds:int -> collector -> string
(** Human-readable, per-round digest of the trace (rounds beyond
    [max_rounds] are summarized). *)
