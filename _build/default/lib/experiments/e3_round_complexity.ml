open Basim
open Bacore

let passive () = Engine.passive ~name:"passive" ~model:Corruption.Adaptive

let round_samples proto ~n ~reps ~seed ~max_rounds =
  List.init reps (fun k ->
      let s = Common.seed_of seed k in
      let inputs = Scenario.random_inputs ~n s in
      let result =
        Engine.run proto ~adversary:(passive ()) ~n ~budget:0 ~inputs
          ~max_rounds ~seed:s
      in
      result.Engine.rounds_used)

let round_stats proto ~n ~reps ~seed ~max_rounds =
  Bastats.Summary.of_ints (round_samples proto ~n ~reps ~seed ~max_rounds)

let run ?(reps = 20) ?(seed = 104L) () =
  let table =
    Bastats.Table.create
      ~title:
        "E3 (Cor. 16): expected-constant rounds vs Nakamoto confirmation depth"
      ~columns:[ "protocol"; "config"; "mean rounds"; "p95"; "max" ]
  in
  let add label config summary =
    Bastats.Table.add_row table
      [ label;
        config;
        Bastats.Table.fmt_float summary.Bastats.Summary.mean;
        Bastats.Table.fmt_float summary.Bastats.Summary.p95;
        Bastats.Table.fmt_float summary.Bastats.Summary.max ]
  in
  let params = Params.make ~lambda:40 ~max_epochs:60 () in
  add "sub-hm" "n=201, λ=40"
    (round_stats (Sub_hm.protocol ~params ~world:`Hybrid) ~n:201 ~reps ~seed
       ~max_rounds:250);
  add "quadratic-hm" "n=101"
    (round_stats (Quadratic_hm.protocol ()) ~n:101 ~reps ~seed ~max_rounds:220);
  List.iter
    (fun confirmations ->
      add "nakamoto"
        (Printf.sprintf "n=50, p=0.004, k=%d" confirmations)
        (round_stats
           (Babaselines.Nakamoto.protocol ~p:0.004 ~confirmations)
           ~n:50 ~reps ~seed ~max_rounds:4000))
    [ 2; 4; 8; 16; 32 ];
  Bastats.Table.add_note table
    "sub-hm and quadratic-hm: a constant number of iterations in \
     expectation, independent of any security knob; nakamoto: rounds grow \
     linearly in the confirmation depth k (≈ k/(n·p)) — the paper's point \
     that Nakamoto-style protocols cannot be expected constant round.";
  (* The geometric tail, visibly: a histogram of sub-hm iteration counts
     (rounds bucketed by 4-round iterations). *)
  let hist = Bastats.Histogram.create () in
  Bastats.Histogram.add_many hist
    (List.map
       (fun r -> (r + 2) / 4)
       (round_samples
          (Sub_hm.protocol ~params:(Params.make ~lambda:40 ~max_epochs:60 ())
             ~world:`Hybrid)
          ~n:201 ~reps:(4 * reps) ~seed:(Int64.add seed 1L) ~max_rounds:250));
  Bastats.Table.add_note table
    ("iterations-to-decide distribution (sub-hm, geometric as Lemma 12 \
      predicts):\n" ^ Bastats.Histogram.render ~width:40 hist);
  [ table ]
