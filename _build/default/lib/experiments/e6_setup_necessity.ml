open Baattacks

let log2 n = int_of_float (ceil (log (float_of_int n) /. log 2.0))

let run ?(reps = 3) ?(seed = 107L) () =
  let table =
    Bastats.Table.create
      ~title:
        "E6 (Thm 3): the Q — 1 — Q' experiment on a PKI-free committee \
         broadcast (committee = 2·log2 n)"
      ~columns:
        [ "n"; "multicast complexity C"; "corruptions needed"; "Q decides";
          "Q' decides"; "node 1"; "contradictions" ]
  in
  List.iter
    (fun n ->
      let committee_size = 2 * log2 n in
      let outcomes =
        List.init reps (fun k ->
            Setup_necessity.run ~n ~committee_size ~seed:(Common.seed_of seed k))
      in
      let first = List.hd outcomes in
      let contradictions =
        List.length (List.filter (fun o -> o.Setup_necessity.contradiction) outcomes)
      in
      let show_bit = function
        | Some b -> if b then "1" else "0"
        | None -> "split"
      in
      Bastats.Table.add_row table
        [ string_of_int n;
          string_of_int first.Setup_necessity.multicast_complexity;
          string_of_int first.Setup_necessity.corruptions_needed;
          show_bit first.Setup_necessity.q_output;
          show_bit first.Setup_necessity.q'_output;
          (if first.Setup_necessity.node1_output then "1" else "0");
          Common.rate contradictions reps ])
    [ 50; 100; 200; 400; 800 ];
  Bastats.Table.add_note table
    "corruptions needed ≤ C ≪ n in every row: simulating the other world \
     costs the adversary only the protocol's (sublinear) speaker set, so \
     the shared node's forced disagreement contradicts consistency — no \
     setup-free protocol can be both communication-efficient and \
     adaptively secure (Theorem 3).";
  [ table ]
