(** Experiment E9 — Appendix D/E: the real-world compilation of [Fmine]
    preserves behaviour.

    Both worlds are run over the {e same} PKI and coupled lotteries
    ({!Bafmine.Compiler.paired}): a node wins an eligibility ticket in
    the hybrid world iff it wins in the real world. With identical seeds
    the two executions must then elect identical committees, take the
    same rounds, multicast the same number of messages, and decide the
    same bit — the only difference being the VRF credential (ρ, π)
    attached to every real-world message, whose byte overhead the table
    reports (Lemma 15's O((log κ + log n)·λ)-bit messages). *)

val run : ?reps:int -> ?seed:int64 -> unit -> Bastats.Table.t list
