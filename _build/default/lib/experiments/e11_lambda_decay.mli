(** Experiment E11 — the "negligible in κ" claims, quantitatively.

    Every security statement in the paper fails with probability
    [exp(−Ω(ε²λ)) · poly(κ)] (Lemmas 10–15): the committee size λ is the
    security dial. This experiment fixes an aggressive-but-tolerated
    corruption level ([f/n = 0.4 < 1/2 − ε]) and sweeps λ, measuring the
    safety-failure rate of {!Bacore.Sub_hm} under the double-voting
    adversary. The rate must decay roughly geometrically in λ — visible
    already between λ = 10 and λ = 50 — which is the executable meaning
    of "except with negligible probability" and the reason the paper can
    take λ = ω(log κ). *)

val run : ?reps:int -> ?seed:int64 -> unit -> Bastats.Table.t list
