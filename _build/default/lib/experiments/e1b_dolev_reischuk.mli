(** Experiment E1b — the Dolev–Reischuk core of the lower bound, made
    concrete on a deterministic victim.

    {!Babaselines.Sparse_relay} broadcasts with redundancy [d]
    ([≈ n·d] total messages); the {!Baattacks.Dolev_reischuk} adversary
    isolates one node by corrupting its [d] predecessors. The sweep over
    [d] with a fixed budget [f] shows the attack succeeds exactly while
    [d ≤ f] — so safety requires [d > f], i.e. more than [n·f] messages,
    which is [Ω(f²)] at [n = Θ(f)]: Dolev–Reischuk's bound observed as a
    phase transition in a table. *)

val run : ?reps:int -> ?seed:int64 -> unit -> Bastats.Table.t list
