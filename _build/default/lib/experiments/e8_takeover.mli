(** Experiment E8 — the §1 motivation: a public (CRS-selected) committee
    dies under adaptive corruption; secret, vote-specific committees do
    not.

    The {!Baattacks.Takeover} adversary corrupts the published committee
    of {!Babaselines.Static_committee} in round 0 and dictates the
    output — a 100% validity violation with a budget of just the
    committee size. The same budget pointed at {!Bacore.Sub_hm} (via the
    double-voting adversary, the strongest legal use of a small corrupt
    coalition) achieves nothing: the adversary cannot learn who will be
    eligible before the message is already on the wire. *)

val run : ?reps:int -> ?seed:int64 -> unit -> Bastats.Table.t list
