(** Experiment E7 — the stochastic lemmas behind Theorem 2, measured:

    - {b Lemma 11} (committee concentration): per-message committees are
      Binomial(n, λ/n); measured sizes must sit inside the Chernoff band
      around λ;
    - {b Lemma 12} (good iterations): the fraction of iterations with
      exactly one successful Propose attempt is at least 1/(2e) ≈ 0.18 —
      this is what makes the protocol expected-constant-round;
    - {b Lemma 10} (terminate cascade): once the first honest node
      terminates, everyone else terminates within a couple of rounds —
      measured as the spread of per-node halt rounds. *)

val run : ?reps:int -> ?seed:int64 -> unit -> Bastats.Table.t list
