open Basim
open Bacore

let passive () = Engine.passive ~name:"passive" ~model:Corruption.Adaptive

let run ?(reps = 30) ?(seed = 108L) () =
  let n = 601 and lambda = 40 in
  let params = Params.make ~lambda ~max_epochs:60 () in
  let proto = Sub_hm.protocol ~params ~world:`Hybrid in
  let committee_sizes = ref [] in
  let good_iters = ref 0 and seen_iters = ref 0 in
  let cascade_spreads = ref [] in
  for k = 0 to reps - 1 do
    let s = Common.seed_of seed k in
    let inputs = Scenario.random_inputs ~n s in
    let env, result =
      Engine.run_env proto ~adversary:(passive ()) ~n ~budget:0 ~inputs
        ~max_rounds:250 ~seed:s
    in
    (match env.Sub_hm.fmine with
    | None -> ()
    | Some fmine ->
        (* Lemma 11: the iteration-1 Vote lottery is a clean Binomial(n, λ/n)
           sample — every node makes exactly one attempt, for its input bit. *)
        let c1 =
          Bafmine.Fmine.successes_for fmine ~prefix:"shm:Vote:1:0"
          + Bafmine.Fmine.successes_for fmine ~prefix:"shm:Vote:1:1"
        in
        committee_sizes := float_of_int c1 :: !committee_sizes;
        (* Lemma 12: iterations whose Propose lottery had exactly one
           winner (counting corrupt attempts too — none here). *)
        let max_iter =
          match Quadratic_hm.phase_of_round (max 0 (result.Engine.rounds_used - 1)) with
          | Quadratic_hm.Phase_status i | Quadratic_hm.Phase_propose i
          | Quadratic_hm.Phase_vote i | Quadratic_hm.Phase_commit i ->
              i
        in
        for iter = 2 to max_iter do
          let winners =
            Bafmine.Fmine.successes_for fmine
              ~prefix:(Printf.sprintf "shm:Propose:%d:" iter)
          in
          incr seen_iters;
          if winners = 1 then incr good_iters
        done);
    (* Lemma 10: spread of honest halt rounds. *)
    let halts =
      Array.to_list result.Engine.halt_rounds
      |> List.filteri (fun i _ -> not result.Engine.corrupt.(i))
      |> List.filter_map (fun h -> h)
    in
    match halts with
    | [] -> ()
    | h :: t ->
        let lo = List.fold_left min h t and hi = List.fold_left max h t in
        cascade_spreads := float_of_int (hi - lo) :: !cascade_spreads
  done;
  let sizes = Bastats.Summary.of_list !committee_sizes in
  let lo, hi =
    Bastats.Chernoff.committee_size_band ~lambda:(float_of_int lambda)
      ~confidence:0.999
  in
  let outside =
    List.length
      (List.filter (fun c -> c < lo || c > hi) !committee_sizes)
  in
  let table =
    Bastats.Table.create
      ~title:
        (Printf.sprintf
           "E7 (Lemmas 10-12): stochastic guarantees, n = %d, λ = %d, %d runs"
           n lambda reps)
      ~columns:[ "quantity"; "measured"; "paper bound" ]
  in
  Bastats.Table.add_row table
    [ "committee size mean (L11)";
      Bastats.Table.fmt_float sizes.Bastats.Summary.mean;
      Printf.sprintf "λ = %d" lambda ];
  Bastats.Table.add_row table
    [ "committee size min..max (L11)";
      Printf.sprintf "%.0f..%.0f" sizes.Bastats.Summary.min
        sizes.Bastats.Summary.max;
      Printf.sprintf "99.9%% Chernoff band %.1f..%.1f" lo hi ];
  Bastats.Table.add_row table
    [ "committees outside band (L11)";
      Common.rate outside (List.length !committee_sizes);
      "≈ 0.1%" ];
  let good_rate =
    if !seen_iters = 0 then 0.0
    else float_of_int !good_iters /. float_of_int !seen_iters
  in
  Bastats.Table.add_row table
    [ "unique-proposer iteration rate (L12)";
      Printf.sprintf "%s (%d/%d)" (Common.pct good_rate) !good_iters !seen_iters;
      "> 1/(2e) ≈ 18.4%" ];
  let spreads = Bastats.Summary.of_list !cascade_spreads in
  Bastats.Table.add_row table
    [ "halt-round spread mean/max (L10)";
      Printf.sprintf "%.1f / %.0f" spreads.Bastats.Summary.mean
        spreads.Bastats.Summary.max;
      "O(1) rounds once εn/2 honest nodes terminate" ];
  [ table ]
