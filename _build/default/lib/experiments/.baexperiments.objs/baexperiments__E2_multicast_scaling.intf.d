lib/experiments/e2_multicast_scaling.mli: Bastats
