lib/experiments/e8_takeover.mli: Bastats
