lib/experiments/e9_compiler.mli: Bastats
