lib/experiments/e1_strong_adaptive.ml: Array Baattacks Babaselines Bacore Basim Bastats Common Engine List Params Properties Quadratic_hm Scenario Sub_hm
