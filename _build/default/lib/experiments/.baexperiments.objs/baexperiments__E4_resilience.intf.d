lib/experiments/e4_resilience.mli: Bastats
