lib/experiments/e5_bit_specific.mli: Bastats
