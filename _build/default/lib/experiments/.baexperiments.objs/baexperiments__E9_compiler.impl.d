lib/experiments/e9_compiler.ml: Bacore Bacrypto Bafmine Basim Bastats Common Corruption Engine Hashtbl Metrics Params Printf Scenario Sub_hm
