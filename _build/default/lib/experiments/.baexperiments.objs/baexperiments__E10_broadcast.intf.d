lib/experiments/e10_broadcast.mli: Bastats
