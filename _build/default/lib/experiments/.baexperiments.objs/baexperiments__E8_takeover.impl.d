lib/experiments/e8_takeover.ml: Baattacks Babaselines Bacore Basim Bastats Common Engine Params Printf Properties Scenario Sub_hm
