lib/experiments/e5_bit_specific.ml: Baattacks Bacore Basim Bastats Common Engine List Params Properties Scenario Sub_third
