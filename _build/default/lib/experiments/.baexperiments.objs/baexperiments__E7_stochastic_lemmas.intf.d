lib/experiments/e7_stochastic_lemmas.mli: Bastats
