lib/experiments/e3_round_complexity.ml: Babaselines Bacore Basim Bastats Common Corruption Engine Int64 List Params Printf Quadratic_hm Scenario Sub_hm
