lib/experiments/e11_lambda_decay.ml: Baattacks Bacore Basim Bastats Common Engine List Params Printf Properties Scenario Sub_hm
