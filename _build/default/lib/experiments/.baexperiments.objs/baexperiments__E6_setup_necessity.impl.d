lib/experiments/e6_setup_necessity.ml: Baattacks Bastats Common List Setup_necessity
