lib/experiments/e4_resilience.ml: Baattacks Bacore Basim Bastats Common Engine List Params Printf Properties Scenario Sub_hm Sub_third
