lib/experiments/all.mli: Bastats
