lib/experiments/e5b_memory_erasure.ml: Baattacks Babaselines Bacore Basim Bastats Common Engine List Params Printf Properties Scenario Sub_third
