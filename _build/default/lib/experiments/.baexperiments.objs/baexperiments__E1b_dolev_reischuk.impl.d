lib/experiments/e1b_dolev_reischuk.ml: Array Baattacks Babaselines Basim Bastats Common Engine List Properties
