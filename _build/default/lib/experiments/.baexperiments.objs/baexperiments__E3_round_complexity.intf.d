lib/experiments/e3_round_complexity.mli: Bastats
