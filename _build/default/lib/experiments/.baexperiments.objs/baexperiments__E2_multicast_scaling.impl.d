lib/experiments/e2_multicast_scaling.ml: Bacore Basim Bastats Common Corruption Engine List Params Properties Quadratic_hm Scenario Sub_hm Sub_third
