lib/experiments/e5b_memory_erasure.mli: Bastats
