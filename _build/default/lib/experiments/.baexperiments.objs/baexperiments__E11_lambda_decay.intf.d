lib/experiments/e11_lambda_decay.mli: Bastats
