lib/experiments/common.mli: Basim
