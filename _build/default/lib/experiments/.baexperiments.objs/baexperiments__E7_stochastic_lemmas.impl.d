lib/experiments/e7_stochastic_lemmas.ml: Array Bacore Bafmine Basim Bastats Common Corruption Engine List Params Printf Quadratic_hm Scenario Sub_hm
