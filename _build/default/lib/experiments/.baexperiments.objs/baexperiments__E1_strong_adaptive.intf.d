lib/experiments/e1_strong_adaptive.mli: Bastats
