lib/experiments/e6_setup_necessity.mli: Bastats
