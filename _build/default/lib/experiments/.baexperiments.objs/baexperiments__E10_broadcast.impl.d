lib/experiments/e10_broadcast.ml: Array Bacore Basim Bastats Broadcast Common Corruption Engine Fun List Params Printf Properties Scenario Sub_hm
