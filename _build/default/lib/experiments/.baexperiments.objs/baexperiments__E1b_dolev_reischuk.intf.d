lib/experiments/e1b_dolev_reischuk.mli: Bastats
