lib/experiments/common.ml: Bacrypto Basim List Printf
