(** Experiment E3 — Corollary 16 vs Nakamoto-style confirmation: the
    subquadratic protocol terminates in expected O(1) rounds (a geometric
    number of 4-round iterations, success probability > 1/(2e) each —
    Lemma 12), while a longest-chain protocol needs rounds {e linear} in
    its confirmation depth (its security parameter), so it cannot be
    expected-constant-round at any fixed security level. *)

val run : ?reps:int -> ?seed:int64 -> unit -> Bastats.Table.t list
