open Basim
open Bacore

let n = 200

let budget = 80 (* f/n = 0.4: inside the tolerated region, ε = 0.1 *)

let run ?(reps = 20) ?(seed = 113L) () =
  let table =
    Bastats.Table.create
      ~title:
        (Printf.sprintf
           "E11: safety-failure decay in λ (sub-hm, n = %d, f = %d, \
            double-voting adversary)"
           n budget)
      ~columns:
        [ "λ"; "quorum λ/2"; "safety fail"; "non-term";
          "Chernoff envelope exp(-δ²μ/3)" ]
  in
  List.iter
    (fun lambda ->
      let params = Params.make ~lambda ~max_epochs:40 () in
      let proto = Sub_hm.protocol ~params ~world:`Hybrid in
      let rates =
        Common.measure ~reps ~seed (fun s ->
            let inputs = Scenario.unanimous_inputs ~n true in
            let result =
              Engine.run proto
                ~adversary:(Baattacks.Split_vote.sub_hm ())
                ~n ~budget ~inputs ~max_rounds:170 ~seed:s
            in
            (result, Properties.agreement ~inputs result))
      in
      let safety = max rates.Common.consistency_fail rates.Common.validity_fail in
      (* The dominant bad event: the corrupt coalition's lone vote
         committee, mean μ = f·λ/n = 0.4λ, reaching the λ/2 quorum — an
         upper-tail deviation of δ = 0.25; the displayed envelope is
         exp(-δ²μ/3). *)
      let bound = exp (-.(0.25 *. 0.25) *. (0.4 *. float_of_int lambda) /. 3.0) in
      Bastats.Table.add_row table
        [ string_of_int lambda;
          string_of_int (Params.hm_quorum params);
          Common.rate safety rates.Common.trials;
          Common.rate rates.Common.termination_fail rates.Common.trials;
          Printf.sprintf "%.3f" bound ])
    [ 10; 20; 30; 40; 60; 80 ];
  Bastats.Table.add_note table
    "the failure rate decays geometrically as λ grows at fixed corruption \
     0.4n — the executable meaning of the paper's exp(-Ω(ε²λ)) error terms \
     (Lemmas 10-15) and of choosing λ = ω(log κ).";
  [ table ]
