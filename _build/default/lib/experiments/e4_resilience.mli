(** Experiment E4 — resilience thresholds: Theorem 2's [f < (1−ε)n/2] for
    the honest-majority protocol versus the [n/3] barrier of the §3
    protocol.

    Sweep the corruption fraction under the {!Baattacks.Split_vote}
    double-voting adversaries (entirely legitimate Byzantine behaviour:
    real mined credentials of corrupt nodes, targeted at network halves):

    - {!Bacore.Sub_third} stays safe below [n/3] and starts splitting
      beyond it — the per-bit ACK committee [((n−f)/2 + f)·λ/n] crosses
      the [2λ/3] quorum exactly at [f = n/3];
    - {!Bacore.Sub_hm} stays safe up to (just below) [n/2]; past it, the
      corrupt coalition's vote committee alone reaches the [λ/2] quorum
      and it can manufacture conflicting commits. *)

val run : ?reps:int -> ?seed:int64 -> unit -> Bastats.Table.t list
