(** Experiment E5 — the §3.3-Remark ablation: {e vote-specific
    (bit-specific) eligibility is what buys adaptive security}.

    The same merely-adaptive {!Baattacks.Equivocator} — which corrupts
    each node the moment its ACK reveals it and replays the revealed
    eligibility credential on the opposite bit — is run against the
    §3.2 protocol in its two eligibility modes:

    - {b bit-agnostic} (the ticket names only (ACK, epoch)): the replay
      verifies, every epoch committee is mirrored onto the opposite bit,
      honest nodes observe "ample ACKs" for {e both} bits (the
      within-epoch consistency violation the Remark describes), the
      split never converges, and final outputs disagree;
    - {b bit-specific} (the paper's protocol): the replay fails
      verification and fresh mining with the stolen key wins only with
      probability λ/n — corruption gains the adversary essentially
      nothing. *)

val run : ?reps:int -> ?seed:int64 -> unit -> Bastats.Table.t list
