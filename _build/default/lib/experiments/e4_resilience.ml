open Basim
open Bacore

let n = 200

let sub_third_rates ~reps ~seed ~budget =
  let params = Params.make ~lambda:60 ~max_epochs:14 () in
  let proto =
    Sub_third.protocol ~params ~world:`Hybrid ~mode:Sub_third.Bit_specific
  in
  Common.measure ~reps ~seed (fun s ->
      let inputs = Scenario.split_inputs ~n in
      let result =
        Engine.run proto
          ~adversary:(Baattacks.Split_vote.sub_third ())
          ~n ~budget ~inputs ~max_rounds:32 ~seed:s
      in
      (result, Properties.agreement ~inputs result))

let sub_hm_rates ~reps ~seed ~budget =
  let params = Params.make ~lambda:40 ~max_epochs:40 () in
  let proto = Sub_hm.protocol ~params ~world:`Hybrid in
  Common.measure ~reps ~seed (fun s ->
      let inputs = Scenario.unanimous_inputs ~n true in
      let result =
        Engine.run proto
          ~adversary:(Baattacks.Split_vote.sub_hm ())
          ~n ~budget ~inputs ~max_rounds:170 ~seed:s
      in
      (result, Properties.agreement ~inputs result))

let run ?(reps = 10) ?(seed = 105L) () =
  let table =
    Bastats.Table.create
      ~title:
        "E4: resilience sweep under double-voting adversaries (n = 200)"
      ~columns:
        [ "f/n"; "sub-third inconsist"; "sub-third non-term";
          "sub-hm safety fail"; "sub-hm non-term" ]
  in
  List.iter
    (fun fraction ->
      let budget = int_of_float (fraction *. float_of_int n) in
      let third = sub_third_rates ~reps ~seed ~budget in
      let hm = sub_hm_rates ~reps ~seed ~budget in
      let hm_safety = max hm.Common.consistency_fail hm.Common.validity_fail in
      Bastats.Table.add_row table
        [ Printf.sprintf "%.2f" fraction;
          Common.rate third.Common.consistency_fail third.Common.trials;
          Common.rate third.Common.termination_fail third.Common.trials;
          Common.rate hm_safety hm.Common.trials;
          Common.rate hm.Common.termination_fail hm.Common.trials ])
    [ 0.10; 0.20; 0.30; 0.37; 0.45; 0.55; 0.65 ];
  Bastats.Table.add_note table
    "sub-third degrades past f/n = 1/3 (its per-bit ACK committee crosses \
     the 2λ/3 quorum there); sub-hm holds to just below 1/2 and collapses \
     beyond it, where corrupt vote committees alone reach λ/2 (Theorem 2's \
     (1-ε)/2 resilience is near-optimal).";
  [ table ]
