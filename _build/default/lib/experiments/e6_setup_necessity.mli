(** Experiment E6 — Theorem 3: without setup assumptions, a protocol with
    multicast complexity C cannot tolerate C adaptive corruptions.

    Runs the {!Baattacks.Setup_necessity} two-world experiment over a
    range of network sizes: in every row, both worlds decide their
    sender's bit (validity), the shared node necessarily disagrees with
    one of them, and the number of corruptions the honest-1
    interpretation needs is bounded by the protocol's multicast
    complexity — sublinear in n. *)

val run : ?reps:int -> ?seed:int64 -> unit -> Bastats.Table.t list
