(** Experiment E2 — Theorem 2: the subquadratic protocol's multicast
    complexity is polylogarithmic and {e independent of n}, while the
    quadratic protocol multicasts Θ(n) messages per round (Θ(n²)
    pairwise).

    Sweep [n] with fixed committee size [λ]: the sub-hm columns stay
    flat; the quadratic columns grow linearly in multicasts and
    quadratically in pairwise messages. This regenerates the headline
    comparison of the paper's Table-less evaluation (Theorem 2 vs the
    warmup protocols of §3.1 / C.1). *)

val run : ?reps:int -> ?seed:int64 -> unit -> Bastats.Table.t list
