(** Experiment E5b — why the paper's protocol needs {e fewer} assumptions
    than Chen–Micali (§3.2's comparison, footnote 5).

    Three designs face their respective §3.3-style equivocators:

    + {b Chen–Micali with memory erasure}: round-specific tickets, ACK
      bits signed with ephemeral forward-secure keys erased atomically
      with the send. The ticket replays but the signature cannot be
      forged — safe, {e at the price of the erasure assumption}.
    + {b Chen–Micali without erasure}: the same protocol when nodes
      cannot (or do not) erase — corruption yields the master key, the
      opposite-bit signature is forged, committees are mirrored, broken.
    + {b Bit-specific eligibility} (the paper): the ticket itself names
      the bit; nothing to replay, nothing to erase — safe with no extra
      model assumptions.

    This is the paper's claim that its key insight {e removes} the
    memory-erasure model that all prior subquadratic constructions
    needed. *)

val run : ?reps:int -> ?seed:int64 -> unit -> Bastats.Table.t list
