(** Experiment E10 — the §1.1 reduction: Byzantine Broadcast from BA
    preserves communication efficiency.

    The paper states its upper bounds for BA and its lower bounds for
    Broadcast, connected by the reduction "sender multicasts its input,
    then everyone runs BA on what they received" — which adds exactly one
    multicast. The table compares the BA and the wrapped-Broadcast runs
    of the subquadratic protocol (still polylog multicasts), checks
    honest-sender validity, and shows that a corrupt {e equivocating}
    sender — who tells each half of the network a different bit — still
    cannot break consistency: BA's agreement absorbs the equivocation. *)

val run : ?reps:int -> ?seed:int64 -> unit -> Bastats.Table.t list
