(** Experiment E1 — Theorem 1/4: against a strongly adaptive adversary
    (after-the-fact removal), subquadratic BA is impossible, and the
    communication needed to survive is Ω(f²).

    The {!Baattacks.Eraser} silences every honest speaker until its
    corruption budget runs out. We sweep the budget against the
    subquadratic protocol ({!Bacore.Sub_hm}): once the budget covers the
    protocol's total number of speakers — a polylogarithmic quantity far
    below [(εf/2)²] — no honest node ever hears anything and termination
    fails. Controls:

    - the {e silencer} (same corruptions, no removal — i.e. the paper's
      default adaptive model) leaves the protocol intact, isolating
      removal as the lethal power;
    - the quadratic protocol ([2f+1] speakers per round) exhausts the
      eraser in round one and sails through — quadratic communication is
      exactly what buys strong-adaptive resilience;
    - Dolev–Strong survives with its output degraded to the default bit
      at worst (consistently), never disagreeing. *)

val run : ?reps:int -> ?seed:int64 -> unit -> Bastats.Table.t list
