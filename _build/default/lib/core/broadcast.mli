(** Byzantine Broadcast from Byzantine Agreement — the communication-
    preserving reduction of §1.1: the designated sender multicasts its
    input bit to everyone, then all nodes run the BA instance on the bit
    they received (a default bit if the sender stayed silent).

    If the underlying BA is communication-efficient, so is the resulting
    broadcast: the reduction adds exactly one multicast of one bit. The
    paper states its upper bounds for BA and its lower bounds for
    broadcast; this wrapper is what links the two in our experiments. *)

type 'm msg =
  | Input of bool   (** the sender's round-0 announcement *)
  | Inner of 'm     (** a message of the underlying BA *)

type 's state

val of_ba :
  ('e, 's, 'm) Basim.Engine.protocol ->
  sender:int ->
  ('e, 's state, 'm msg) Basim.Engine.protocol
(** [of_ba ba ~sender] is the broadcast protocol: round 0 is the sender's
    announcement; from round 1 on, the wrapped BA runs (shifted by one
    round) on inputs equal to the announced bit, defaulting to [false]
    for nodes that heard nothing. The engine's [inputs] array is read
    only at index [sender]. If a corrupt sender equivocates (targeted
    announcements), BA consistency still forces a unanimous output. *)
