type t = { lambda : int; epsilon : float; max_epochs : int }

let default = { lambda = 40; epsilon = 0.1; max_epochs = 60 }

let make ?(lambda = default.lambda) ?(epsilon = default.epsilon)
    ?(max_epochs = default.max_epochs) () =
  if lambda <= 0 then invalid_arg "Params.make: lambda must be positive";
  if epsilon <= 0.0 || epsilon >= 0.5 then
    invalid_arg "Params.make: epsilon outside (0, 1/2)";
  if max_epochs <= 0 then invalid_arg "Params.make: max_epochs must be positive";
  { lambda; epsilon; max_epochs }

let ack_probability t ~n = min 1.0 (float_of_int t.lambda /. float_of_int n)

let propose_probability ~n = 1.0 /. (2.0 *. float_of_int n)

let third_quorum t = (2 * t.lambda + 2) / 3

let hm_quorum t = (t.lambda + 1) / 2

(* Truncate with a tiny nudge so exact values like (1/3 - 0.1)·300 = 70
   are not lost to float rounding. *)
let third_max_faulty t ~n =
  int_of_float ((((1.0 /. 3.0) -. t.epsilon) *. float_of_int n) +. 1e-9)

let hm_max_faulty t ~n =
  int_of_float (((0.5 -. t.epsilon) *. float_of_int n) +. 1e-9)
