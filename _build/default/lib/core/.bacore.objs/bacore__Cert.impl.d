lib/core/cert.ml: Int List Set
