lib/core/broadcast.mli: Basim
