lib/core/quadratic_hm.ml: Array Bacrypto Basim Cert Hashtbl Int List Option Printf Rng Set Signature
