lib/core/cert.mli:
