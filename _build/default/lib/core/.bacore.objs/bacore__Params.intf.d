lib/core/params.mli:
