lib/core/warmup_third.mli: Bacrypto Basim Params
