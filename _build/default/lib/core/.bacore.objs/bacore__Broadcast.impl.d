lib/core/broadcast.ml: Bacrypto Basim List Option
