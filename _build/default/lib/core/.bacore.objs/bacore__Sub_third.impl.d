lib/core/sub_third.ml: Bacrypto Bafmine Basim Int List Params Set
