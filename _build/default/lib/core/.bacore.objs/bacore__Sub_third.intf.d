lib/core/sub_third.mli: Bacrypto Bafmine Basim Params
