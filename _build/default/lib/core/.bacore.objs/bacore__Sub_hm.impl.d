lib/core/sub_hm.ml: Bacrypto Bafmine Basim Cert Compiler Eligibility Fmine Hashtbl Int List Option Params Printf Quadratic_hm Set
