lib/core/warmup_third.ml: Bacrypto Basim Int List Option Params Printf Rng Set Signature
