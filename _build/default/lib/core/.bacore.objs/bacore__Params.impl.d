lib/core/params.ml:
