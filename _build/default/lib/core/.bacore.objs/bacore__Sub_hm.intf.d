lib/core/sub_hm.mli: Bacrypto Bafmine Basim Cert Hashtbl Params Quadratic_hm
