lib/core/quadratic_hm.mli: Bacrypto Basim Cert Hashtbl
