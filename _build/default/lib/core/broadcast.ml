type 'm msg = Input of bool | Inner of 'm

type 's state =
  | Announcing of {
      me : int;
      n : int;
      rng : Bacrypto.Rng.t;
      input : bool;  (* meaningful only at the sender *)
    }
  | Running of 's

let of_ba (ba : ('e, 's, 'm) Basim.Engine.protocol) ~sender =
  let wrap_sends sends =
    List.map
      (fun { Basim.Engine.dst; payload } ->
        { Basim.Engine.dst; payload = Inner payload })
      sends
  in
  let unwrap_inbox inbox =
    List.filter_map
      (fun (src, m) -> match m with Inner im -> Some (src, im) | Input _ -> None)
      inbox
  in
  let init _env ~rng ~n ~me ~input = Announcing { me; n; rng; input } in
  let step env state ~round ~inbox =
    match state with
    | Announcing { me; n; rng; input } ->
        if round = 0 then begin
          let sends =
            if me = sender then [ Basim.Engine.multicast (Input input) ] else []
          in
          (state, sends)
        end
        else begin
          (* Round 1: adopt the sender's announcement as the BA input. *)
          let announced =
            List.find_map
              (fun (src, m) ->
                match m with
                | Input b when src = sender -> Some b
                | Input _ | Inner _ -> None)
              inbox
          in
          let ba_input = Option.value announced ~default:false in
          let inner = ba.Basim.Engine.init env ~rng ~n ~me ~input:ba_input in
          let inner', sends =
            ba.Basim.Engine.step env inner ~round:0 ~inbox:(unwrap_inbox inbox)
          in
          (Running inner', wrap_sends sends)
        end
    | Running inner ->
        let inner', sends =
          ba.Basim.Engine.step env inner ~round:(round - 1)
            ~inbox:(unwrap_inbox inbox)
        in
        (Running inner', wrap_sends sends)
  in
  { Basim.Engine.proto_name = "broadcast<" ^ ba.Basim.Engine.proto_name ^ ">";
    make_env = ba.Basim.Engine.make_env;
    init;
    step;
    output =
      (fun s ->
        match s with
        | Announcing _ -> None
        | Running inner -> ba.Basim.Engine.output inner);
    halted =
      (fun s ->
        match s with
        | Announcing _ -> false
        | Running inner -> ba.Basim.Engine.halted inner);
    msg_bits =
      (fun env m ->
        match m with
        | Input _ -> 8
        | Inner im -> ba.Basim.Engine.msg_bits env im) }
