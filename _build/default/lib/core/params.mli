(** Protocol parameters shared by the four BA protocols.

    The paper expresses everything in terms of the expected committee size
    [λ = ω(log κ)] and two difficulty parameters (§3.2, Appendix C.2):

    - [D]: each {e committee} message (ACK in §3, Status/Vote/Commit/
      Terminate in Appendix C) is eligible with probability [λ/n], so each
      per-message committee has expected size [λ];
    - [D₀]: each {e proposal} is eligible with probability [1/(2n)], so
      with [n] honest attempts per iteration one leader emerges every two
      iterations on average.

    Quorum thresholds: [2λ/3] for the ⅓-resilient protocols (§3.2) and
    [λ/2] for the honest-majority protocols (Appendix C.2). *)

type t = {
  lambda : int;
      (** Expected committee size λ. Default 40 — large enough that the
          Chernoff terms [exp(-Ω(ε²λ))] are tiny at experiment scale. *)
  epsilon : float;
      (** Resilience slack ε: protocols tolerate [(1/3 − ε)n] or
          [(1/2 − ε)n] corruptions. *)
  max_epochs : int;
      (** R: number of epochs for the §3 protocols (the paper takes
          [R = ω(log κ)]); also the iteration cap for the Appendix-C
          protocols, which normally terminate after O(1) iterations. *)
}

val default : t
(** [{ lambda = 40; epsilon = 0.1; max_epochs = 60 }]. *)

val make : ?lambda:int -> ?epsilon:float -> ?max_epochs:int -> unit -> t
(** Keyword constructor over {!default}. @raise Invalid_argument on
    non-positive [lambda]/[max_epochs] or [epsilon] outside (0, 1/2). *)

val ack_probability : t -> n:int -> float
(** [λ/n], capped at 1 (the paper assumes [n ≥ 2λ]; for tiny test
    networks the cap keeps the protocol meaningful). *)

val propose_probability : n:int -> float
(** [1/(2n)]. *)

val third_quorum : t -> int
(** [⌈2λ/3⌉] — the "ample ACKs" threshold of §3. *)

val hm_quorum : t -> int
(** [⌈λ/2⌉] — the certificate/commit threshold of Appendix C.2. *)

val third_max_faulty : t -> n:int -> int
(** [(1/3 − ε)·n], the corruption budget the ⅓ protocols tolerate. *)

val hm_max_faulty : t -> n:int -> int
(** [(1/2 − ε)·n], the corruption budget the honest-majority protocols
    tolerate. *)
