lib/stats/chernoff.mli:
