lib/stats/chernoff.ml:
