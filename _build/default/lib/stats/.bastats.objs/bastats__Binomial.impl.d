lib/stats/binomial.ml: Array
