lib/stats/histogram.ml: Buffer Int List Map Option Printf String
