lib/stats/table.mli:
