lib/stats/histogram.mli:
