lib/stats/binomial.mli:
