(** Chernoff-bound envelopes used to check the paper's stochastic lemmas
    (Lemmas 10–12) against measured data. *)

val lower_tail_bound : mu:float -> delta:float -> float
(** [lower_tail_bound ~mu ~delta] bounds [P(X <= (1-delta) mu)] for a sum
    of independent Bernoullis with mean [mu]: [exp(-delta² mu / 2)].
    @raise Invalid_argument unless [0 <= delta <= 1] and [mu >= 0]. *)

val upper_tail_bound : mu:float -> delta:float -> float
(** [upper_tail_bound ~mu ~delta] bounds [P(X >= (1+delta) mu)]:
    [exp(-delta² mu / (2+delta))]. @raise Invalid_argument if
    [delta < 0 || mu < 0]. *)

val committee_size_band : lambda:float -> confidence:float -> float * float
(** [committee_size_band ~lambda ~confidence] is a symmetric
    Chernoff-derived band [(lo, hi)] such that a Binomial(n, λ/n)
    committee lands in it except with probability at most
    [1 - confidence]. Used as the envelope in experiment E7. *)
