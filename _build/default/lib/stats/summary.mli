(** Summary statistics over float samples. *)

type t = {
  count : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n−1 denominator) *)
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

val of_list : float list -> t
(** @raise Invalid_argument on the empty list. *)

val of_ints : int list -> t

val quantile : float array -> float -> float
(** [quantile sorted q] is the [q]-quantile (linear interpolation) of an
    ascending-sorted array. @raise Invalid_argument if empty or
    [q] outside [\[0,1\]]. *)

val pp : Format.formatter -> t -> unit
