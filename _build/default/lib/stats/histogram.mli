(** Integer histograms with ASCII rendering, used by the experiment
    harness to display round-count and committee-size distributions. *)

type t

val create : unit -> t

val add : t -> int -> unit

val add_many : t -> int list -> unit

val count : t -> int -> int
(** Occurrences of a value. *)

val total : t -> int

val bins : t -> (int * int) list
(** (value, count) pairs, ascending by value. *)

val mode : t -> int option

val render : ?width:int -> t -> string
(** ASCII bar chart, one line per distinct value. *)
