module Imap = Map.Make (Int)

type t = { mutable counts : int Imap.t; mutable total : int }

let create () = { counts = Imap.empty; total = 0 }

let add t v =
  t.counts <-
    Imap.update v (function None -> Some 1 | Some c -> Some (c + 1)) t.counts;
  t.total <- t.total + 1

let add_many t vs = List.iter (add t) vs

let count t v = match Imap.find_opt v t.counts with None -> 0 | Some c -> c

let total t = t.total

let bins t = Imap.bindings t.counts

let mode t =
  Imap.fold
    (fun v c best ->
      match best with
      | Some (_, bc) when bc >= c -> best
      | _ -> Some (v, c))
    t.counts None
  |> Option.map fst

let render ?(width = 50) t =
  let buf = Buffer.create 256 in
  let max_count = Imap.fold (fun _ c m -> max c m) t.counts 1 in
  Imap.iter
    (fun v c ->
      let bar = c * width / max_count in
      Buffer.add_string buf
        (Printf.sprintf "%6d | %s %d\n" v (String.make bar '#') c))
    t.counts;
  Buffer.contents buf
