(** Binomial utilities: exact tails for small n, Wilson confidence
    intervals for experiment failure rates. *)

val log_choose : int -> int -> float
(** [log_choose n k] = log (n choose k). @raise Invalid_argument if
    [k < 0 || k > n]. *)

val pmf : n:int -> p:float -> int -> float
(** Probability of exactly [k] successes out of [n] with success
    probability [p]. *)

val cdf : n:int -> p:float -> int -> float
(** Probability of at most [k] successes. *)

val upper_tail : n:int -> p:float -> int -> float
(** Probability of at least [k] successes. *)

val wilson_interval : successes:int -> trials:int -> z:float -> float * float
(** Wilson score interval for a proportion; [z = 1.96] for 95%.
    @raise Invalid_argument if [trials <= 0]. *)
