(* log Gamma via Lanczos; enough accuracy for experiment-scale n. *)
let log_gamma x =
  let coefficients =
    [| 76.18009172947146; -86.50532032941677; 24.01409824083091;
       -1.231739572450155; 0.1208650973866179e-2; -0.5395239384953e-5 |]
  in
  let y = ref x in
  let tmp = x +. 5.5 in
  let tmp = tmp -. ((x +. 0.5) *. log tmp) in
  let ser = ref 1.000000000190015 in
  Array.iter
    (fun c ->
      y := !y +. 1.0;
      ser := !ser +. (c /. !y))
    coefficients;
  -.tmp +. log (2.5066282746310005 *. !ser /. x)

let log_choose n k =
  if k < 0 || k > n then invalid_arg "Binomial.log_choose";
  if k = 0 || k = n then 0.0
  else
    log_gamma (float_of_int (n + 1))
    -. log_gamma (float_of_int (k + 1))
    -. log_gamma (float_of_int (n - k + 1))

let pmf ~n ~p k =
  if k < 0 || k > n then 0.0
  else if p <= 0.0 then if k = 0 then 1.0 else 0.0
  else if p >= 1.0 then if k = n then 1.0 else 0.0
  else
    exp
      (log_choose n k
      +. (float_of_int k *. log p)
      +. (float_of_int (n - k) *. log (1.0 -. p)))

let cdf ~n ~p k =
  if k < 0 then 0.0
  else if k >= n then 1.0
  else begin
    let acc = ref 0.0 in
    for j = 0 to k do
      acc := !acc +. pmf ~n ~p j
    done;
    min 1.0 !acc
  end

let upper_tail ~n ~p k =
  if k <= 0 then 1.0 else 1.0 -. cdf ~n ~p (k - 1)

let wilson_interval ~successes ~trials ~z =
  if trials <= 0 then invalid_arg "Binomial.wilson_interval";
  let n = float_of_int trials in
  let phat = float_of_int successes /. n in
  let z2 = z *. z in
  let denom = 1.0 +. (z2 /. n) in
  let center = (phat +. (z2 /. (2.0 *. n))) /. denom in
  let half =
    z *. sqrt ((phat *. (1.0 -. phat) /. n) +. (z2 /. (4.0 *. n *. n))) /. denom
  in
  (max 0.0 (center -. half), min 1.0 (center +. half))
