let lower_tail_bound ~mu ~delta =
  if delta < 0.0 || delta > 1.0 || mu < 0.0 then
    invalid_arg "Chernoff.lower_tail_bound";
  exp (-.(delta *. delta) *. mu /. 2.0)

let upper_tail_bound ~mu ~delta =
  if delta < 0.0 || mu < 0.0 then invalid_arg "Chernoff.upper_tail_bound";
  exp (-.(delta *. delta) *. mu /. (2.0 +. delta))

let committee_size_band ~lambda ~confidence =
  if lambda <= 0.0 || confidence <= 0.0 || confidence >= 1.0 then
    invalid_arg "Chernoff.committee_size_band";
  let alpha = 1.0 -. confidence in
  (* Solve exp(-d² λ / 3) = α/2 for d (3 ≥ 2+δ covers the upper tail for
     δ ≤ 1; the lower tail bound is tighter). *)
  let delta = sqrt (3.0 *. log (2.0 /. alpha) /. lambda) in
  (max 0.0 (lambda *. (1.0 -. delta)), lambda *. (1.0 +. delta))
