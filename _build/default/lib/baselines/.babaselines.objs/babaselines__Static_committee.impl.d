lib/baselines/static_committee.ml: Bacrypto Basim List Printf Rng Signature
