lib/baselines/static_committee.mli: Bacrypto Basim
