lib/baselines/dolev_strong.ml: Bacrypto Basim Int List Printf Set Signature
