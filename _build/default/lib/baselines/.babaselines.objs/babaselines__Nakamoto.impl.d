lib/baselines/nakamoto.ml: Bacrypto Basim List String
