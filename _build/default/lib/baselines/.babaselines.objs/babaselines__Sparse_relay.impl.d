lib/baselines/sparse_relay.ml: Basim List Option
