lib/baselines/nakamoto.mli: Basim
