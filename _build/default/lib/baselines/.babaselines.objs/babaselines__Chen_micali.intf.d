lib/baselines/chen_micali.mli: Bacore Bacrypto Bafmine Basim
