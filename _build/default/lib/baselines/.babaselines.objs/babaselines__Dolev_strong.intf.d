lib/baselines/dolev_strong.mli: Bacrypto Basim
