lib/baselines/sparse_relay.mli: Basim
