lib/baselines/chen_micali.ml: Bacore Bacrypto Bafmine Basim Int List Params Printf Set
