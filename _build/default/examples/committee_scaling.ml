(* The decentralized-cryptocurrency motivation from the paper's
   introduction: in a large peer-to-peer network, multicast is the native
   primitive and the question is how many nodes must SPEAK to reach
   agreement. This example grows the network from 101 to 1601 nodes and
   shows the speaker set staying flat (≈ λ per step) while a classical
   protocol's grows linearly.

     dune exec examples/committee_scaling.exe
*)

open Basim
open Bacore

let run_sub_hm ~n ~seed =
  let params = Params.make ~lambda:40 ~max_epochs:60 () in
  let proto = Sub_hm.protocol ~params ~world:`Hybrid in
  let inputs = Scenario.random_inputs ~n seed in
  Engine.run proto
    ~adversary:(Engine.passive ~name:"none" ~model:Corruption.Adaptive)
    ~n ~budget:0 ~inputs ~max_rounds:250 ~seed

let run_quadratic ~n ~seed =
  let inputs = Scenario.random_inputs ~n seed in
  Engine.run (Quadratic_hm.protocol ())
    ~adversary:(Engine.passive ~name:"none" ~model:Corruption.Adaptive)
    ~n ~budget:0 ~inputs ~max_rounds:200 ~seed

let () =
  let table =
    Bastats.Table.create
      ~title:"who has to speak, as the network grows (λ = 40)"
      ~columns:
        [ "n"; "sub-hm speakers/round"; "sub-hm total multicasts";
          "quadratic speakers/round" ]
  in
  List.iter
    (fun n ->
      let r = run_sub_hm ~n ~seed:7L in
      let speakers =
        float_of_int (Metrics.honest_multicasts r.Engine.metrics)
        /. float_of_int r.Engine.rounds_used
      in
      let quad =
        if n <= 401 then begin
          let q = run_quadratic ~n ~seed:7L in
          Printf.sprintf "%.0f"
            (float_of_int (Metrics.honest_multicasts q.Engine.metrics)
            /. float_of_int q.Engine.rounds_used)
        end
        else "(too expensive to run)"
      in
      Bastats.Table.add_row table
        [ string_of_int n;
          Printf.sprintf "%.1f" speakers;
          string_of_int (Metrics.honest_multicasts r.Engine.metrics);
          quad ])
    [ 101; 201; 401; 801; 1601 ];
  Bastats.Table.add_note table
    "a node checks its own VRF to learn it may speak; nobody — including \
     the adversary — knows the committee in advance, and each (message, \
     iteration, bit) triple gets an independent one.";
  Bastats.Table.print table
