(* Theorem 3, live: why the PKI in Theorem 2 cannot be dropped.

   A perfectly reasonable PKI-free protocol — a public committee echoes
   the sender's bit, everyone takes the majority — has sublinear
   multicast complexity and works fine among honest nodes. The paper's
   two-world experiment (Appendix B) wires one shared node between two
   honest executions with opposite inputs; because channels without a PKI
   carry only CLAIMED identities, the shared node cannot tell the worlds
   apart, and consistency forces it to agree with both — a contradiction
   an adaptive adversary can realize with only as many corruptions as the
   protocol has speakers.

     dune exec examples/setup_necessity.exe
*)

let () =
  print_endline "Theorem 3: the Q --- 1 --- Q' hypothetical experiment\n";
  List.iter
    (fun n ->
      let committee_size = 10 in
      let o =
        Baattacks.Setup_necessity.run ~n ~committee_size ~seed:42L
      in
      let bit = function Some true -> "1" | Some false -> "0" | None -> "?" in
      Printf.printf
        "n=%-4d  Q decides %s, Q' decides %s, the shared node says %d — \
         contradiction with %d corruptions (multicast complexity %d)\n"
        n
        (bit o.Baattacks.Setup_necessity.q_output)
        (bit o.Baattacks.Setup_necessity.q'_output)
        (if o.Baattacks.Setup_necessity.node1_output then 1 else 0)
        o.Baattacks.Setup_necessity.corruptions_needed
        o.Baattacks.Setup_necessity.multicast_complexity)
    [ 50; 200; 800 ];
  print_newline ();
  print_endline
    "In the interpretation where node 1 is honest and Q' is simulated,\n\
     the adversary corrupts one real node per simulated speaker — a\n\
     sublinear number — yet node 1 must disagree with one world: no\n\
     setup-free protocol can be both communication-efficient and\n\
     adaptively secure. The PKI of Theorem 2 is necessary."
