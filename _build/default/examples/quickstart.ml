(* Quickstart: run the paper's flagship protocol — subquadratic Byzantine
   Agreement with vote-specific eligibility (Theorem 2) — among 201 nodes
   holding mixed inputs, and inspect the outcome.

     dune exec examples/quickstart.exe
*)

open Basim
open Bacore

let () =
  let n = 201 in
  (* λ = 40: each conditional multicast wins with probability λ/n, so
     roughly 40 nodes speak per step no matter how large n grows. *)
  let params = Params.make ~lambda:40 ~epsilon:0.1 ~max_epochs:60 () in
  let protocol = Sub_hm.protocol ~params ~world:`Hybrid in

  (* Mixed inputs: the first 100 nodes say 0, the rest say 1. *)
  let inputs = Scenario.split_inputs ~n in

  (* No adversary for the first run — see adaptive_attack.ml for attacks. *)
  let adversary = Engine.passive ~name:"nobody" ~model:Corruption.Adaptive in

  let result =
    Engine.run protocol ~adversary ~n ~budget:0 ~inputs ~max_rounds:250
      ~seed:2024L
  in

  let verdict = Properties.agreement ~inputs result in
  Printf.printf "n = %d nodes, lambda = %d, mixed inputs\n" n params.Params.lambda;
  Printf.printf "terminated in %d rounds\n" result.Engine.rounds_used;
  Printf.printf "verdict: %s\n" (Format.asprintf "%a" Properties.pp verdict);

  let decided = Array.to_list result.Engine.outputs |> List.filter_map Fun.id in
  let ones = List.length (List.filter Fun.id decided) in
  Printf.printf "all %d nodes agreed on: %d\n" (List.length decided)
    (if ones > 0 then 1 else 0);

  (* The headline: communication. A naive protocol would need every node
     to multicast every round (n x rounds messages); here only committee
     members ever speak. *)
  let m = result.Engine.metrics in
  Printf.printf "honest multicasts: %d (a full-broadcast protocol would use ~%d)\n"
    (Metrics.honest_multicasts m)
    (n * result.Engine.rounds_used);
  Printf.printf "multicast complexity: %d bits\n" (Metrics.honest_multicast_bits m);

  (* Re-run in the real world: same protocol compiled with the VRF of
     Appendix D instead of the Fmine ideal functionality. *)
  let real = Sub_hm.protocol ~params ~world:`Real in
  let result_real =
    Engine.run real ~adversary:(Engine.passive ~name:"nobody" ~model:Corruption.Adaptive)
      ~n:101 ~budget:0 ~inputs:(Scenario.split_inputs ~n:101) ~max_rounds:250
      ~seed:2024L
  in
  Printf.printf
    "\nreal-world (PKI + PRF + NIZK) run at n = 101: %d rounds, verdict %s\n"
    result_real.Engine.rounds_used
    (Format.asprintf "%a" Properties.pp
       (Properties.agreement ~inputs:(Scenario.split_inputs ~n:101) result_real))
