examples/assumption_ablation.mli:
