examples/adaptive_attack.mli:
