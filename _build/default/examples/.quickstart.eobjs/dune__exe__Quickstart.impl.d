examples/quickstart.ml: Array Bacore Basim Corruption Engine Format Fun List Metrics Params Printf Properties Scenario Sub_hm
