examples/quickstart.mli:
