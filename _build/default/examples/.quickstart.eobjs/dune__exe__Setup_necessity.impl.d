examples/setup_necessity.ml: Baattacks List Printf
