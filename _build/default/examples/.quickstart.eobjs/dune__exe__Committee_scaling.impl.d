examples/committee_scaling.ml: Bacore Basim Bastats Corruption Engine List Metrics Params Printf Quadratic_hm Scenario Sub_hm
