examples/committee_scaling.mli:
