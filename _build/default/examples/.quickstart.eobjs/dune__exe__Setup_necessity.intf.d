examples/setup_necessity.mli:
