examples/adaptive_attack.ml: Baattacks Bacore Basim Engine Format Metrics Params Printf Properties Quadratic_hm Scenario Sub_hm
