examples/assumption_ablation.ml: Baattacks Babaselines Bacore Basim Engine Params Printf Properties Scenario Sub_third
