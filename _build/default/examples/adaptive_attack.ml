(* The paper's central modeling point, in one runnable story (Theorem 1):
   a strongly adaptive adversary — one that can corrupt a node after
   seeing its message and erase that message "after the fact" — destroys
   any subquadratic protocol, while the exact same corruption schedule
   WITHOUT removal is harmless, and a quadratic protocol shrugs off even
   the eraser.

     dune exec examples/adaptive_attack.exe
*)

open Basim
open Bacore

let describe label result verdict =
  Printf.printf "%-34s rounds=%-3d erased=%-4d corrupted=%-4d %s\n" label
    result.Engine.rounds_used
    (Metrics.removals result.Engine.metrics)
    result.Engine.corruptions
    (if Properties.ok verdict then "OK"
     else Format.asprintf "BROKEN (%a)" Properties.pp verdict)

let () =
  let n = 401 and budget = 150 in
  let params = Params.make ~lambda:20 ~max_epochs:5 () in
  let sub_hm = Sub_hm.protocol ~params ~world:`Hybrid in
  let inputs = Scenario.unanimous_inputs ~n true in

  print_endline "Theorem 1, live: what after-the-fact removal buys the adversary";
  Printf.printf "(n = %d, corruption budget f = %d)\n\n" n budget;

  (* 1. The eraser: corrupt every speaker, erase everything it just said. *)
  let r1 =
    Engine.run sub_hm ~adversary:(Baattacks.Eraser.make ()) ~n ~budget ~inputs
      ~max_rounds:40 ~seed:1L
  in
  describe "sub-hm vs eraser:" r1 (Properties.agreement ~inputs r1);

  (* 2. Control: identical corruption schedule, no removal (the paper's
     standard adaptive adversary). The already-sent messages survive and
     the protocol decides. *)
  let params12 = Params.make ~lambda:20 ~max_epochs:12 () in
  let sub_hm12 = Sub_hm.protocol ~params:params12 ~world:`Hybrid in
  let r2 =
    Engine.run sub_hm12 ~adversary:(Baattacks.Eraser.silencer ()) ~n ~budget:90
      ~inputs ~max_rounds:60 ~seed:1L
  in
  describe "sub-hm vs silencer (no removal):" r2 (Properties.agreement ~inputs r2);

  (* 3. The quadratic protocol has 2f+1 speakers per round: the eraser
     burns its whole budget in the first round and f+1 honest voices
     remain — exactly a quorum. *)
  let nq = 101 in
  let inputs_q = Scenario.unanimous_inputs ~n:nq true in
  let r3 =
    Engine.run (Quadratic_hm.protocol ()) ~adversary:(Baattacks.Eraser.make ())
      ~n:nq ~budget:(nq / 2) ~inputs:inputs_q ~max_rounds:200 ~seed:1L
  in
  describe
    (Printf.sprintf "quadratic-hm (n=%d) vs eraser:" nq)
    r3
    (Properties.agreement ~inputs:inputs_q r3);

  print_newline ();
  Printf.printf
    "the eraser needed only %d erasures to kill the subquadratic protocol —\n\
     a strongly-adaptively-secure protocol must be able to absorb (εf/2)² =\n\
     %.0f of them (Theorem 4), which is why it cannot be subquadratic.\n"
    (Metrics.removals r1.Engine.metrics)
    ((0.5 *. float_of_int budget /. 2.0) ** 2.0)
