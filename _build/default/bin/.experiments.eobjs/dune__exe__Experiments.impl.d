bin/experiments.ml: Arg Baexperiments Cmd Cmdliner List Printf Term
