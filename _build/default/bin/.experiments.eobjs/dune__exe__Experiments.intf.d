bin/experiments.mli:
