bin/ba_run.mli:
