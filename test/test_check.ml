(* Tests for the Bacheck static-analysis layer: capability checking
   against corruption models, the trace-invariant verifier (clean seeded
   runs + hand-mutated negative traces), JSONL round-tripping, and the
   source lint. *)

open Basim
open Bacore

(* --- helpers ------------------------------------------------------------ *)

let collect_run ?on_caps_mismatch proto ~adversary ~n ~budget ~inputs
    ~max_rounds ~seed =
  let c = Trace.collector () in
  let result =
    Engine.run ~tracer:(Trace.observe c) ?on_caps_mismatch proto ~adversary ~n
      ~budget ~inputs ~max_rounds ~seed
  in
  (Trace.events c, result)

let assert_clean name findings =
  match findings with
  | [] -> ()
  | f :: _ ->
      Alcotest.failf "%s: expected clean trace, got %d finding(s), first: %a"
        name (List.length findings) Bacheck.Trace_lint.pp_finding f

let assert_finds name kind findings =
  if
    not
      (List.exists
         (fun f -> f.Bacheck.Trace_lint.kind = kind)
         findings)
  then
    Alcotest.failf "%s: expected a %s finding, got %d other(s)" name
      (Bacheck.Trace_lint.kind_name kind)
      (List.length findings)

(* --- verified-clean seeded runs (E1 / E2 / E8 style) -------------------- *)

let verify_run ?(name = "run") proto ~adversary ~n ~budget ~inputs ~max_rounds
    ~seed =
  let events, result =
    collect_run proto ~adversary ~n ~budget ~inputs ~max_rounds ~seed
  in
  let findings =
    Bacheck.Trace_lint.verify ~metrics:result.Engine.metrics
      ~model:adversary.Engine.model ~budget events
  in
  assert_clean name findings

let test_e1_strongly_adaptive_clean () =
  (* E1's headline row: sub-hm under the strongly adaptive eraser. *)
  let params = Params.make ~lambda:40 ~max_epochs:40 () in
  let proto = Sub_hm.protocol ~params ~world:`Hybrid in
  verify_run ~name:"sub-hm + eraser" proto
    ~adversary:(Baattacks.Eraser.make ())
    ~n:31 ~budget:7
    ~inputs:(Scenario.unanimous_inputs ~n:31 true)
    ~max_rounds:172 ~seed:3L

let test_e1_adaptive_clean () =
  (* Same protocol family under the merely adaptive silencer. *)
  let params = Params.make ~lambda:40 ~max_epochs:40 () in
  let proto = Warmup_third.protocol ~params in
  verify_run ~name:"warmup-third + silencer" proto
    ~adversary:(Baattacks.Eraser.silencer ())
    ~n:21 ~budget:5
    ~inputs:(Scenario.unanimous_inputs ~n:21 true)
    ~max_rounds:172 ~seed:1L

let test_e1_static_clean () =
  let params = Params.make ~lambda:40 ~max_epochs:40 () in
  let proto = Sub_hm.protocol ~params ~world:`Hybrid in
  verify_run ~name:"sub-hm + passive static" proto
    ~adversary:(Engine.passive ~name:"passive" ~model:Corruption.Static)
    ~n:31 ~budget:0
    ~inputs:(Scenario.random_inputs ~n:31 11L)
    ~max_rounds:172 ~seed:11L

let test_e2_scaling_clean () =
  (* E2 style: the quadratic baseline, passive adversary. *)
  let proto = Quadratic_hm.protocol () in
  verify_run ~name:"quadratic-hm + passive" proto
    ~adversary:(Engine.passive ~name:"passive" ~model:Corruption.Adaptive)
    ~n:41 ~budget:0
    ~inputs:(Scenario.random_inputs ~n:41 5L)
    ~max_rounds:172 ~seed:5L

let test_e8_takeover_clean () =
  (* E8: adaptive takeover of a public committee — heavy injection use. *)
  let proto = Babaselines.Static_committee.protocol ~committee_size:8 in
  verify_run ~name:"static-committee + takeover" proto
    ~adversary:(Baattacks.Takeover.make ~force:true ())
    ~n:60 ~budget:12
    ~inputs:(Scenario.unanimous_inputs ~n:60 false)
    ~max_rounds:6 ~seed:9L

(* --- hand-mutated negative traces --------------------------------------- *)

let sent ~round ~node =
  Trace.Sent
    { round; node; multicast = true; recipients = 6; bits = 8;
      id = Trace.no_id; kind = Trace.no_kind; targets = [] }

let removed ~round ~victim =
  Trace.Removed
    { round; victim; multicast = true; recipients = 6; bits = 8;
      id = Trace.no_id; kind = Trace.no_kind; targets = [] }

let verify ?metrics ~model ~budget events =
  Bacheck.Trace_lint.verify ?metrics ~model ~budget events

let test_neg_removal_without_model () =
  let events =
    [ Trace.Round_started { round = 0 };
      Trace.Corrupted { round = 0; node = 2 };
      removed ~round:0 ~victim:2 ]
  in
  let fs = verify ~model:Corruption.Adaptive ~budget:3 events in
  assert_finds "removal under adaptive" Bacheck.Trace_lint.Removal_without_model
    fs;
  (* the identical trace is legal for the strongly adaptive adversary *)
  assert_clean "same trace, strongly adaptive"
    (verify ~model:Corruption.Strongly_adaptive ~budget:3 events)

let test_neg_removal_of_uncorrupted () =
  let fs =
    verify ~model:Corruption.Strongly_adaptive ~budget:3
      [ Trace.Round_started { round = 0 }; removed ~round:0 ~victim:4 ]
  in
  assert_finds "honest victim" Bacheck.Trace_lint.Removal_of_uncorrupted fs

let test_neg_removal_outside_corruption_round () =
  (* Removal is only legal in the victim's corruption round. *)
  let fs =
    verify ~model:Corruption.Strongly_adaptive ~budget:3
      [ Trace.Round_started { round = 0 };
        Trace.Corrupted { round = 0; node = 2 };
        Trace.Round_started { round = 1 };
        removed ~round:1 ~victim:2 ]
  in
  assert_finds "stale corruption" Bacheck.Trace_lint.Removal_of_uncorrupted fs

let test_neg_over_budget () =
  let fs =
    verify ~model:Corruption.Adaptive ~budget:1
      [ Trace.Round_started { round = 0 };
        Trace.Corrupted { round = 0; node = 1 };
        Trace.Corrupted { round = 0; node = 2 } ]
  in
  assert_finds "budget 1, 2 corruptions" Bacheck.Trace_lint.Over_budget fs

let test_neg_sent_while_corrupt () =
  let fs =
    verify ~model:Corruption.Adaptive ~budget:2
      [ Trace.Round_started { round = 0 };
        Trace.Corrupted { round = 0; node = 2 };
        Trace.Round_started { round = 1 };
        sent ~round:1 ~node:2 ]
  in
  assert_finds "corrupt node sent" Bacheck.Trace_lint.Sent_while_corrupt fs

let test_corrupt_then_send_same_round_legal () =
  (* Engine phase order: a node corrupted in round r already produced its
     round-r send — that is legal and must not be flagged. *)
  assert_clean "same-round corrupt then send"
    (verify ~model:Corruption.Adaptive ~budget:2
       [ Trace.Round_started { round = 0 };
         Trace.Corrupted { round = 0; node = 2 };
         sent ~round:0 ~node:2 ])

let test_neg_event_after_halt () =
  let fs =
    verify ~model:Corruption.Adaptive ~budget:0
      [ Trace.Round_started { round = 0 };
        Trace.Halted { round = 0; node = 1; output = Some true };
        Trace.Round_started { round = 1 };
        sent ~round:1 ~node:1 ]
  in
  assert_finds "send after halt" Bacheck.Trace_lint.Event_after_halt fs

let test_neg_non_monotonic_round () =
  let fs =
    verify ~model:Corruption.Adaptive ~budget:0
      [ Trace.Round_started { round = 0 }; Trace.Round_started { round = 0 } ]
  in
  assert_finds "repeated round" Bacheck.Trace_lint.Non_monotonic_round fs

let test_neg_static_midround_corruption () =
  let fs =
    verify ~model:Corruption.Static ~budget:3
      [ Trace.Round_started { round = 0 };
        Trace.Corrupted { round = 0; node = 1 } ]
  in
  assert_finds "static corrupts mid-round"
    Bacheck.Trace_lint.Static_midround_corruption fs;
  (* setup-time corruption is what the static adversary is allowed *)
  assert_clean "static setup corruption"
    (verify ~model:Corruption.Static ~budget:3
       [ Trace.Corrupted { round = -1; node = 1 };
         Trace.Round_started { round = 0 } ])

let test_neg_injection_from_honest () =
  let fs =
    verify ~model:Corruption.Adaptive ~budget:2
      [ Trace.Round_started { round = 0 };
        Trace.Injected
          { round = 0; src = 4; recipients = 6; bits = -1; id = Trace.no_id;
            kind = Trace.no_kind; targets = [] } ]
  in
  assert_finds "injection from honest node"
    Bacheck.Trace_lint.Injection_from_honest fs

let test_neg_round_mismatch () =
  let fs =
    verify ~model:Corruption.Adaptive ~budget:0
      [ Trace.Round_started { round = 0 }; sent ~round:2 ~node:1 ]
  in
  assert_finds "event from the wrong round" Bacheck.Trace_lint.Round_mismatch fs

let test_neg_accounting_mismatch () =
  (* Take a real run, drop one Sent event: the reconstruction no longer
     matches the engine's Metrics. *)
  let params = Params.make ~lambda:40 ~max_epochs:40 () in
  let proto = Sub_hm.protocol ~params ~world:`Hybrid in
  let adversary = Engine.passive ~name:"passive" ~model:Corruption.Adaptive in
  let events, result =
    collect_run proto ~adversary ~n:21 ~budget:0
      ~inputs:(Scenario.unanimous_inputs ~n:21 true)
      ~max_rounds:172 ~seed:2L
  in
  let dropped_one =
    let seen = ref false in
    List.filter
      (fun e ->
        match e with
        | Trace.Sent _ when not !seen ->
            seen := true;
            false
        | _ -> true)
      events
  in
  let fs =
    Bacheck.Trace_lint.verify ~metrics:result.Engine.metrics
      ~model:Corruption.Adaptive ~budget:0 dropped_one
  in
  assert_finds "dropped send breaks Definition-7 totals"
    Bacheck.Trace_lint.Accounting_mismatch fs

(* --- capability checking ------------------------------------------------ *)

let test_caps_eraser_models () =
  let eraser = Baattacks.Eraser.make () in
  Alcotest.(check int)
    "eraser consistent with its own (strongly adaptive) model" 0
    (List.length (Bacheck.Capability.check_adversary eraser ~budget:7));
  let fs =
    Bacheck.Capability.check ~adversary:"eraser" eraser.Engine.caps
      ~model:Corruption.Adaptive ~budget:7
  in
  Alcotest.(check bool)
    "removal capability clashes with adaptive" true
    (List.exists
       (fun f ->
         match f.Bacheck.Capability.mismatch with
         | Capability.Removal_not_allowed _ -> true
         | Capability.Midround_not_allowed _
         | Capability.Bound_exceeds_budget _ ->
             false)
       fs)

let test_caps_static_midround () =
  let decl =
    { Capability.caps = [ Capability.Midround_corruption ];
      budget_bound = None }
  in
  let fs =
    Bacheck.Capability.check decl ~model:Corruption.Static ~budget:3
  in
  Alcotest.(check bool)
    "midround capability clashes with static" true
    (List.exists
       (fun f ->
         match f.Bacheck.Capability.mismatch with
         | Capability.Midround_not_allowed _ -> true
         | Capability.Removal_not_allowed _
         | Capability.Bound_exceeds_budget _ ->
             false)
       fs)

let test_caps_bound_exceeds_budget () =
  let decl = { Capability.caps = []; budget_bound = Some 5 } in
  Alcotest.(check int)
    "bound 5 > budget 3 is one finding" 1
    (List.length (Bacheck.Capability.check decl ~model:Corruption.Static ~budget:3));
  Alcotest.(check int)
    "bound within budget is fine" 0
    (List.length (Bacheck.Capability.check decl ~model:Corruption.Static ~budget:5))

(* A two-round flood protocol, small enough to exercise engine-level
   capability refusal. *)
type flood_state = { input : bool; mutable out : bool option }

let flood : (unit, flood_state, bool) Engine.protocol =
  { Engine.proto_name = "flood";
    make_env = (fun ~n:_ _ -> ());
    init = (fun () ~rng:_ ~n:_ ~me:_ ~input -> { input; out = None });
    step =
      (fun () state ~round ~inbox ->
        if round = 0 then (state, [ Engine.multicast state.input ])
        else begin
          let ones = List.length (List.filter snd inbox) in
          state.out <- Some (2 * ones > List.length inbox);
          (state, [])
        end);
    output = (fun s -> s.out);
    halted = (fun s -> s.out <> None);
    msg_bits = (fun () _ -> 1) }

let inconsistent_adversary () =
  (* Declares removal power but runs under the merely adaptive model. *)
  { Engine.adv_name = "inconsistent";
    model = Corruption.Adaptive;
    caps =
      { Capability.caps = [ Capability.After_fact_removal ];
        budget_bound = None };
    setup = (fun _ ~n:_ ~budget:_ ~rng:_ -> []);
    intervene = (fun _ -> []) }

let run_flood ?on_caps_mismatch adversary =
  Engine.run ?on_caps_mismatch flood ~adversary ~n:5 ~budget:1
    ~inputs:[| true; true; true; false; false |]
    ~max_rounds:5 ~seed:1L

let test_engine_refuses_inconsistent_caps () =
  match run_flood (inconsistent_adversary ()) with
  | _ -> Alcotest.fail "expected Illegal_action before round 0"
  | exception Engine.Illegal_action _ -> ()

let test_engine_warns_when_lenient () =
  (* `Warn runs the execution to completion. *)
  let result = run_flood ~on_caps_mismatch:`Warn (inconsistent_adversary ()) in
  Alcotest.(check bool) "all decided" true result.Engine.all_honest_decided

let test_engine_requires_declared_cap () =
  (* A consistent declaration that omits Midround_corruption: the model
     allows the corruption, the declaration does not. *)
  let adversary =
    { Engine.adv_name = "undeclared";
      model = Corruption.Adaptive;
      caps = { Capability.caps = []; budget_bound = None };
      setup = (fun _ ~n:_ ~budget:_ ~rng:_ -> []);
      intervene =
        (fun view ->
          if view.Engine.round = 0 then [ Engine.Corrupt 0 ] else []) }
  in
  match run_flood adversary with
  | _ -> Alcotest.fail "expected Illegal_action at the corruption"
  | exception Engine.Illegal_action msg ->
      Alcotest.(check bool)
        "message names the capability" true
        (let sub = "midround-corruption" in
         let rec contains i =
           i + String.length sub <= String.length msg
           && (String.sub msg i (String.length sub) = sub || contains (i + 1))
         in
         contains 0)

(* --- JSONL round-trip ---------------------------------------------------- *)

let event_gen =
  let open QCheck.Gen in
  let node = 0 -- 40 in
  let round = -1 -- 60 in
  let bits = 0 -- 2048 in
  (* Causal fields mix sentinels (the unlabeled legacy shape) with
     recorded values, so the round-trip covers both wire formats and
     every partial combination. *)
  let id = oneof [ return Trace.no_id; 0 -- 500 ] in
  let kind = oneofl [ Trace.no_kind; "propose"; "vote"; "status" ] in
  let targets = oneof [ return []; list_size (1 -- 4) node ] in
  oneof
    [ map (fun round -> Trace.Round_started { round }) (0 -- 60);
      map
        (fun ((round, node, multicast, recipients, bits), (id, kind, targets)) ->
          Trace.Sent { round; node; multicast; recipients; bits; id; kind; targets })
        (tup2 (tup5 round node bool (0 -- 41) bits) (tup3 id kind targets));
      map (fun (round, node) -> Trace.Corrupted { round; node })
        (tup2 round node);
      map
        (fun ((round, victim, multicast, recipients, bits), (id, kind, targets)) ->
          Trace.Removed
            { round; victim; multicast; recipients; bits; id; kind; targets })
        (tup2 (tup5 round node bool (0 -- 41) bits) (tup3 id kind targets));
      map
        (fun ((round, src, recipients, bits), (id, kind, targets)) ->
          Trace.Injected { round; src; recipients; bits; id; kind; targets })
        (tup2
           (tup4 round node (0 -- 41) (oneof [ return (-1); bits ]))
           (tup3 id kind targets));
      map
        (fun (round, node, output) -> Trace.Halted { round; node; output })
        (tup3 round node (option bool)) ]

let event_arbitrary =
  QCheck.make
    ~print:(fun e -> Baobs.Json.to_string (Trace.to_json e))
    event_gen

let roundtrip_prop e =
  let json_line = Baobs.Json.to_string (Trace.to_json e) in
  Trace.of_json (Baobs.Json.of_string json_line) = e

let roundtrip_tests =
  [ QCheck.Test.make ~name:"event → json → string → json → event" ~count:500
      event_arbitrary roundtrip_prop ]

let test_legacy_fixture_lints_clean () =
  (* A committed pre-causal trace: the file mode parses it with the
     sentinel defaults and the invariant verifier finds nothing. *)
  let events = Bacheck.Trace_lint.load_jsonl "fixtures/legacy_e1_trace.jsonl" in
  Alcotest.(check bool) "fixture nonempty" true (List.length events > 0);
  List.iter
    (fun e ->
      match Trace.message_id e with
      | Some id -> Alcotest.(check int) "legacy ids default to sentinel"
          Trace.no_id id
      | None -> ())
    events;
  assert_clean "legacy fixture"
    (Bacheck.Trace_lint.verify ~model:Corruption.Strongly_adaptive ~budget:3
       events)

let test_jsonl_tracer_roundtrip () =
  (* The streaming tracer's file format must re-parse into exactly the
     events the collector saw. *)
  let params = Params.make ~lambda:40 ~max_epochs:40 () in
  let proto = Sub_hm.protocol ~params ~world:`Hybrid in
  let buf = Buffer.create 4096 in
  let sink = Baobs.Jsonl.to_buffer buf in
  let collector = Trace.collector () in
  let tracer e =
    Trace.observe collector e;
    Trace.jsonl_tracer sink e
  in
  let _result =
    Engine.run ~tracer proto
      ~adversary:(Baattacks.Eraser.make ())
      ~n:21 ~budget:5
      ~inputs:(Scenario.unanimous_inputs ~n:21 true)
      ~max_rounds:172 ~seed:4L
  in
  let reparsed = Bacheck.Trace_lint.events_of_jsonl (Buffer.contents buf) in
  Alcotest.(check int)
    "same number of events"
    (List.length (Trace.events collector))
    (List.length reparsed);
  Alcotest.(check bool)
    "identical event streams" true
    (Trace.events collector = reparsed)

(* --- source lint --------------------------------------------------------- *)

let scan src = Bacheck.Source_lint.scan_source ~path:"lib/x/sample.ml" src

let rules fs = List.map (fun f -> f.Bacheck.Source_lint.rule) fs

let test_lint_blanking () =
  let src =
    "let x = (* compare (* nested *) \"inner \\\" compare\" *) \"compare\" \
     'c' 1"
  in
  Alcotest.(check int)
    "compare only in comments/strings: no findings" 0
    (List.length (scan src));
  let blanked = Bacheck.Source_lint.blank_comments_and_strings src in
  Alcotest.(check int)
    "blanking preserves length" (String.length src) (String.length blanked)

let rule_names src = List.map Bacheck.Source_lint.rule_name (rules (scan src))

let test_lint_poly_compare () =
  Alcotest.(check (list string))
    "bare compare flagged" [ "poly-compare" ]
    (rule_names "let xs = List.sort compare ys");
  Alcotest.(check int)
    "Int.compare is fine" 0
    (List.length (scan "let xs = List.sort Int.compare ys"));
  Alcotest.(check int)
    "Stdlib.compare flagged" 1
    (List.length (scan "let xs = List.sort Stdlib.compare ys"));
  Alcotest.(check int)
    "defining compare is fine" 0
    (List.length (scan "let compare a b = Int.compare a.id b.id"));
  Alcotest.(check int)
    "comment mention is fine" 0
    (List.length (scan "(* use compare here? no *) let x = 1"))

let test_lint_obj_magic_and_exit () =
  Alcotest.(check (list string))
    "Obj.magic flagged" [ "obj-magic" ]
    (List.map
       (fun f -> Bacheck.Source_lint.rule_name f.Bacheck.Source_lint.rule)
       (scan "let y = Obj.magic x"));
  Alcotest.(check (list string))
    "exit flagged" [ "stdlib-exit" ]
    (List.map
       (fun f -> Bacheck.Source_lint.rule_name f.Bacheck.Source_lint.rule)
       (scan "let () = if bad then exit 1"));
  Alcotest.(check int)
    "String literals do not trip" 0
    (List.length (scan "let s = \"Obj.magic exit compare\""))

let test_lint_hot_path () =
  let src =
    "let run () =\n\
    \  while !running do\n\
    \    if bad then failwith \"boom\";\n\
    \    step ()\n\
    \  done;\n\
    \  failwith \"after the loop is fine\"\n"
  in
  let engine_findings =
    Bacheck.Source_lint.scan_source ~path:"lib/sim/engine.ml" src
  in
  Alcotest.(check (list string))
    "failwith inside the loop, only" [ "failwith-hot-path" ]
    (List.map
       (fun f -> Bacheck.Source_lint.rule_name f.Bacheck.Source_lint.rule)
       engine_findings);
  Alcotest.(check int) "line number" 3
    (match engine_findings with f :: _ -> f.Bacheck.Source_lint.line | [] -> 0);
  Alcotest.(check int)
    "same code outside engine.ml is not hot-path" 0
    (List.length (Bacheck.Source_lint.scan_source ~path:"lib/x/other.ml" src))

let test_lint_unused_capability () =
  let attack_path = "lib/attacks/sample.ml" in
  let attack_scan src =
    List.map Bacheck.Source_lint.rule_name
      (rules (Bacheck.Source_lint.scan_source ~path:attack_path src))
  in
  let declares_injection_never_injects =
    "open Basim\n\
     let make () =\n\
    \  { Engine.adv_name = \"sample\";\n\
    \    model = Corruption.Adaptive;\n\
    \    caps =\n\
    \      { Capability.caps =\n\
    \          [ Capability.Midround_corruption; Capability.Injection ];\n\
    \        budget_bound = None };\n\
    \    setup = (fun _ ~n:_ ~budget:_ ~rng:_ -> []);\n\
    \    intervene = (fun _ -> [ Engine.Corrupt 0 ]) }\n"
  in
  Alcotest.(check (list string))
    "declared injection, no Inject: flagged" [ "unused-capability" ]
    (attack_scan declares_injection_never_injects);
  Alcotest.(check int)
    "same file outside lib/attacks: rule is scoped" 0
    (List.length
       (Bacheck.Source_lint.scan_source ~path:"lib/sim/sample.ml"
          declares_injection_never_injects));
  let exercises_everything =
    "open Basim\n\
     let make () =\n\
    \  { Engine.adv_name = \"sample\";\n\
    \    model = Corruption.Strongly_adaptive;\n\
    \    caps =\n\
    \      { Capability.caps =\n\
    \          [ Capability.Setup_corruption; Capability.Midround_corruption;\n\
    \            Capability.After_fact_removal; Capability.Injection ];\n\
    \        budget_bound = None };\n\
    \    setup = (fun _ ~n:_ ~budget:_ ~rng:_ -> [ 0 ]);\n\
    \    intervene =\n\
    \      (fun _ ->\n\
    \        [ Engine.Corrupt 1;\n\
    \          Engine.Remove { victim = 1; index = 0 };\n\
    \          Engine.Inject { src = 0; payload; dst = Engine.All } ]) }\n"
  in
  Alcotest.(check int)
    "all four capabilities exercised: clean" 0
    (List.length
       (Bacheck.Source_lint.scan_source ~path:attack_path exercises_everything));
  let trivial_setup_declared =
    "open Basim\n\
     let make () =\n\
    \  { Engine.adv_name = \"sample\";\n\
    \    model = Corruption.Static;\n\
    \    caps =\n\
    \      { Capability.caps = [ Capability.Setup_corruption ];\n\
    \        budget_bound = None };\n\
    \    setup = (fun _ ~n:_ ~budget:_ ~rng:_ -> []);\n\
    \    intervene = (fun _ -> []) }\n"
  in
  Alcotest.(check (list string))
    "declared setup corruption, no-op setup body: flagged"
    [ "unused-capability" ]
    (attack_scan trivial_setup_declared);
  Alcotest.(check int)
    "module with no caps declaration (e.g. compilers): clean" 0
    (List.length
       (Bacheck.Source_lint.scan_source ~path:attack_path
          "let compile env = ignore env"))

let test_lint_repo_clean () =
  (* The repository itself must stay lint-clean — same gate as
     `dune build @lint`, runnable from the test tree. *)
  let root =
    (* tests run in _build/default/test; the project root is one up *)
    Filename.concat (Sys.getcwd ()) ".."
  in
  let findings = Bacheck.Source_lint.scan_tree ~root in
  match findings with
  | [] -> ()
  | f :: _ ->
      Alcotest.failf "repo has %d lint finding(s), first: %a"
        (List.length findings) Bacheck.Source_lint.pp_finding f

(* --- harness ------------------------------------------------------------- *)

let () =
  Alcotest.run "check"
    [ ( "clean-runs",
        [ Alcotest.test_case "E1 strongly adaptive" `Slow
            test_e1_strongly_adaptive_clean;
          Alcotest.test_case "E1 adaptive" `Slow test_e1_adaptive_clean;
          Alcotest.test_case "E1 static" `Slow test_e1_static_clean;
          Alcotest.test_case "E2 scaling" `Slow test_e2_scaling_clean;
          Alcotest.test_case "E8 takeover" `Quick test_e8_takeover_clean ] );
      ( "negative-traces",
        [ Alcotest.test_case "removal without model" `Quick
            test_neg_removal_without_model;
          Alcotest.test_case "removal of uncorrupted" `Quick
            test_neg_removal_of_uncorrupted;
          Alcotest.test_case "removal outside corruption round" `Quick
            test_neg_removal_outside_corruption_round;
          Alcotest.test_case "over budget" `Quick test_neg_over_budget;
          Alcotest.test_case "sent while corrupt" `Quick
            test_neg_sent_while_corrupt;
          Alcotest.test_case "same-round corrupt+send legal" `Quick
            test_corrupt_then_send_same_round_legal;
          Alcotest.test_case "event after halt" `Quick
            test_neg_event_after_halt;
          Alcotest.test_case "non-monotonic round" `Quick
            test_neg_non_monotonic_round;
          Alcotest.test_case "static midround corruption" `Quick
            test_neg_static_midround_corruption;
          Alcotest.test_case "injection from honest" `Quick
            test_neg_injection_from_honest;
          Alcotest.test_case "round mismatch" `Quick test_neg_round_mismatch;
          Alcotest.test_case "accounting mismatch" `Slow
            test_neg_accounting_mismatch ] );
      ( "capabilities",
        [ Alcotest.test_case "eraser vs models" `Quick test_caps_eraser_models;
          Alcotest.test_case "midround vs static" `Quick
            test_caps_static_midround;
          Alcotest.test_case "bound vs budget" `Quick
            test_caps_bound_exceeds_budget;
          Alcotest.test_case "engine refuses mismatch" `Quick
            test_engine_refuses_inconsistent_caps;
          Alcotest.test_case "lenient mode warns" `Quick
            test_engine_warns_when_lenient;
          Alcotest.test_case "undeclared capability refused" `Quick
            test_engine_requires_declared_cap ] );
      ( "jsonl-roundtrip",
        Alcotest.test_case "jsonl tracer reparses" `Slow
          test_jsonl_tracer_roundtrip
        :: Alcotest.test_case "legacy fixture replays clean" `Quick
             test_legacy_fixture_lints_clean
        :: List.map
             (QCheck_alcotest.to_alcotest
                ~rand:(Random.State.make [| 0xba002 |]))
             roundtrip_tests );
      ( "source-lint",
        [ Alcotest.test_case "blanking" `Quick test_lint_blanking;
          Alcotest.test_case "poly compare" `Quick test_lint_poly_compare;
          Alcotest.test_case "obj magic / exit" `Quick
            test_lint_obj_magic_and_exit;
          Alcotest.test_case "hot path" `Quick test_lint_hot_path;
          Alcotest.test_case "unused capability" `Quick
            test_lint_unused_capability;
          Alcotest.test_case "repo is lint-clean" `Quick test_lint_repo_clean ]
      ) ]
