(* Integration tests for the core BA protocols: the §3.1 warmup, the §3.2
   subquadratic one-third protocol (both worlds), the Appendix-C quadratic
   and subquadratic honest-majority protocols, and the broadcast
   reduction. *)

open Basim
open Bacore

let passive () = Engine.passive ~name:"passive" ~model:Corruption.Adaptive

let check_rate label failures trials limit =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %d/%d failures (limit %d)" label failures trials limit)
    true (failures <= limit)

let run_agreement proto ~n ~budget ~inputs ~max_rounds ~seed =
  let result =
    Engine.run proto ~adversary:(passive ()) ~n ~budget ~inputs ~max_rounds ~seed
  in
  (result, Properties.agreement ~inputs result)

let trial_failures proto ~n ~inputs_of ~max_rounds ~reps ~base_seed =
  let trials =
    Scenario.run_trials ~reps ~base_seed (fun seed ->
        let inputs = inputs_of seed in
        run_agreement proto ~n ~budget:0 ~inputs ~max_rounds ~seed)
  in
  let agg = Scenario.aggregate trials in
  (agg, trials)

(* --- Params -------------------------------------------------------------- *)

let test_params_quorums () =
  let p = Params.make ~lambda:40 () in
  Alcotest.(check int) "2λ/3" 27 (Params.third_quorum p);
  Alcotest.(check int) "λ/2" 20 (Params.hm_quorum p);
  let p' = Params.make ~lambda:3 () in
  Alcotest.(check int) "ceil(2·3/3)" 2 (Params.third_quorum p');
  Alcotest.(check int) "ceil(3/2)" 2 (Params.hm_quorum p')

let test_params_probabilities () =
  let p = Params.make ~lambda:40 () in
  Alcotest.(check bool) "λ/n" true
    (abs_float (Params.ack_probability p ~n:400 -. 0.1) < 1e-12);
  Alcotest.(check bool) "capped at 1" true
    (Params.ack_probability p ~n:10 = 1.0);
  Alcotest.(check bool) "1/2n" true
    (abs_float (Params.propose_probability ~n:100 -. 0.005) < 1e-12)

let test_params_validation () =
  Alcotest.check_raises "bad lambda"
    (Invalid_argument "Params.make: lambda must be positive") (fun () ->
      ignore (Params.make ~lambda:0 ()));
  Alcotest.check_raises "bad epsilon"
    (Invalid_argument "Params.make: epsilon outside (0, 1/2)") (fun () ->
      ignore (Params.make ~epsilon:0.6 ()))

let test_params_faulty_bounds () =
  let p = Params.make ~epsilon:0.1 () in
  Alcotest.(check int) "(1/3-ε)n of 300" 70 (Params.third_max_faulty p ~n:300);
  Alcotest.(check int) "(1/2-ε)n of 300" 120 (Params.hm_max_faulty p ~n:300)

(* --- Cert ---------------------------------------------------------------- *)

let test_cert_dedup () =
  let c = Cert.make ~iter:2 ~bit:true ~endorsements:[ (1, "a"); (1, "b"); (2, "c") ] in
  Alcotest.(check int) "deduped" 2 (List.length c.Cert.endorsements);
  Alcotest.(check int) "distinct endorsers" 2 (Cert.distinct_endorsers c)

let test_cert_rank () =
  let c = Cert.make ~iter:3 ~bit:false ~endorsements:[ (0, ()) ] in
  Alcotest.(check int) "none ranks 0" 0 (Cert.rank None);
  Alcotest.(check int) "some ranks iter" 3 (Cert.rank (Some c));
  Alcotest.(check bool) "some > none" true (Cert.strictly_higher (Some c) ~than:None);
  Alcotest.(check bool) "equal not strict" false
    (Cert.strictly_higher (Some c) ~than:(Some c))

let test_cert_well_formed () =
  let c =
    Cert.make ~iter:1 ~bit:true
      ~endorsements:[ (0, "ok"); (1, "ok"); (2, "bad"); (3, "ok") ]
  in
  let check ~node:_ e = e = "ok" in
  Alcotest.(check bool) "3 valid ≥ quorum 3" true
    (Cert.well_formed c ~quorum:3 ~check);
  Alcotest.(check bool) "3 valid < quorum 4" false
    (Cert.well_formed c ~quorum:4 ~check)

let test_cert_iter_validation () =
  Alcotest.check_raises "iter 0 invalid"
    (Invalid_argument "Cert.make: iterations start at 1") (fun () ->
      ignore (Cert.make ~iter:0 ~bit:true ~endorsements:[]))

(* --- Warmup third (§3.1) -------------------------------------------------- *)

let warmup_params = Params.make ~lambda:10 ~max_epochs:12 ()

let warmup = Warmup_third.protocol ~params:warmup_params

let warmup_rounds = (2 * warmup_params.Params.max_epochs) + 2

let test_warmup_validity_unanimous () =
  List.iter
    (fun bit ->
      let agg, _ =
        trial_failures warmup ~n:7
          ~inputs_of:(fun _ -> Scenario.unanimous_inputs ~n:7 bit)
          ~max_rounds:warmup_rounds ~reps:10 ~base_seed:100L
      in
      check_rate "warmup validity" agg.Scenario.validity_failures 10 0;
      check_rate "warmup consistency" agg.Scenario.consistency_failures 10 0;
      check_rate "warmup termination" agg.Scenario.termination_failures 10 0)
    [ false; true ]

let test_warmup_agreement_split () =
  let agg, _ =
    trial_failures warmup ~n:7
      ~inputs_of:(fun _ -> Scenario.split_inputs ~n:7)
      ~max_rounds:warmup_rounds ~reps:20 ~base_seed:101L
  in
  check_rate "warmup split consistency" agg.Scenario.consistency_failures 20 0;
  check_rate "warmup split termination" agg.Scenario.termination_failures 20 0

let test_warmup_linear_multicasts () =
  (* Every node multicasts one ACK per epoch: the protocol is
     communication-inefficient by design. *)
  let inputs = Scenario.unanimous_inputs ~n:7 true in
  let result, _ =
    run_agreement warmup ~n:7 ~budget:0 ~inputs ~max_rounds:warmup_rounds ~seed:3L
  in
  let m = result.Engine.metrics in
  let epochs = warmup_params.Params.max_epochs in
  Alcotest.(check bool)
    (Printf.sprintf "%d multicasts >= n·R acks" (Metrics.honest_multicasts m))
    true
    (Metrics.honest_multicasts m >= 7 * epochs)

let test_warmup_fixed_duration () =
  let inputs = Scenario.split_inputs ~n:7 in
  let result, _ =
    run_agreement warmup ~n:7 ~budget:0 ~inputs ~max_rounds:warmup_rounds ~seed:4L
  in
  Alcotest.(check int) "runs exactly 2R+1 rounds"
    ((2 * warmup_params.Params.max_epochs) + 1)
    result.Engine.rounds_used

let test_warmup_leader_round_robin () =
  Alcotest.(check int) "epoch 0" 0 (Warmup_third.leader ~n:5 ~epoch:0);
  Alcotest.(check int) "epoch 7 of 5" 2 (Warmup_third.leader ~n:5 ~epoch:7)

(* --- Sub third (§3.2) ------------------------------------------------------ *)

let sub3_params = Params.make ~lambda:40 ~max_epochs:16 ()

let sub3 =
  Sub_third.protocol ~params:sub3_params ~world:`Hybrid ~mode:Sub_third.Bit_specific

let sub3_rounds = (2 * sub3_params.Params.max_epochs) + 2

let test_sub3_validity_unanimous () =
  let agg, _ =
    trial_failures sub3 ~n:120
      ~inputs_of:(fun _ -> Scenario.unanimous_inputs ~n:120 true)
      ~max_rounds:sub3_rounds ~reps:10 ~base_seed:200L
  in
  check_rate "sub3 validity" agg.Scenario.validity_failures 10 0;
  check_rate "sub3 consistency" agg.Scenario.consistency_failures 10 0

let test_sub3_agreement_split () =
  let agg, _ =
    trial_failures sub3 ~n:120
      ~inputs_of:(fun seed -> Scenario.random_inputs ~n:120 seed)
      ~max_rounds:sub3_rounds ~reps:10 ~base_seed:201L
  in
  check_rate "sub3 split consistency" agg.Scenario.consistency_failures 10 0;
  check_rate "sub3 split termination" agg.Scenario.termination_failures 10 0

let test_sub3_sublinear_multicasts () =
  (* Per epoch, roughly λ committee members speak — far fewer than n. *)
  let inputs = Scenario.unanimous_inputs ~n:120 true in
  let result, _ =
    run_agreement sub3 ~n:120 ~budget:0 ~inputs ~max_rounds:sub3_rounds ~seed:5L
  in
  let per_epoch =
    float_of_int (Metrics.honest_multicasts result.Engine.metrics)
    /. float_of_int sub3_params.Params.max_epochs
  in
  Alcotest.(check bool)
    (Printf.sprintf "%.1f multicasts/epoch << n=120" per_epoch)
    true (per_epoch < 70.0)

let test_sub3_real_world_agrees () =
  let real =
    Sub_third.protocol ~params:(Params.make ~lambda:30 ~max_epochs:10 ())
      ~world:`Real ~mode:Sub_third.Bit_specific
  in
  let inputs = Scenario.unanimous_inputs ~n:60 true in
  let result, verdict =
    run_agreement real ~n:60 ~budget:0 ~inputs ~max_rounds:24 ~seed:6L
  in
  Alcotest.(check bool) "real world ok" true (Properties.ok verdict);
  (* Real-world messages carry VRF credentials: strictly more bits than
     count · header. *)
  let m = result.Engine.metrics in
  Alcotest.(check bool) "credential overhead visible" true
    (Metrics.honest_multicast_bits m > 48 * Metrics.honest_multicasts m)

let test_sub3_mining_strings () =
  Alcotest.(check string) "bit-specific" "sub3:ACK:4:1"
    (Sub_third.ack_mining_string Sub_third.Bit_specific ~epoch:4 ~bit:true);
  Alcotest.(check string) "bit-agnostic" "sub3:ACK:4"
    (Sub_third.ack_mining_string Sub_third.Bit_agnostic ~epoch:4 ~bit:true);
  Alcotest.(check string) "propose" "sub3:Propose:4:0"
    (Sub_third.propose_mining_string ~epoch:4 ~bit:false)

(* --- Quadratic honest majority (App. C.1) ---------------------------------- *)

let qhm = Quadratic_hm.protocol ()

let test_qhm_phase_layout () =
  Alcotest.(check bool) "round 0 = vote 1" true
    (Quadratic_hm.phase_of_round 0 = Quadratic_hm.Phase_vote 1);
  Alcotest.(check bool) "round 1 = commit 1" true
    (Quadratic_hm.phase_of_round 1 = Quadratic_hm.Phase_commit 1);
  Alcotest.(check bool) "round 2 = status 2" true
    (Quadratic_hm.phase_of_round 2 = Quadratic_hm.Phase_status 2);
  Alcotest.(check bool) "round 5 = commit 2" true
    (Quadratic_hm.phase_of_round 5 = Quadratic_hm.Phase_commit 2);
  Alcotest.(check bool) "round 6 = status 3" true
    (Quadratic_hm.phase_of_round 6 = Quadratic_hm.Phase_status 3)

let test_qhm_validity_unanimous () =
  List.iter
    (fun bit ->
      let agg, _ =
        trial_failures qhm ~n:9
          ~inputs_of:(fun _ -> Scenario.unanimous_inputs ~n:9 bit)
          ~max_rounds:200 ~reps:10 ~base_seed:300L
      in
      check_rate "qhm validity" agg.Scenario.validity_failures 10 0;
      check_rate "qhm termination" agg.Scenario.termination_failures 10 0)
    [ false; true ]

let test_qhm_unanimous_terminates_first_iteration () =
  let inputs = Scenario.unanimous_inputs ~n:9 true in
  let result, _ = run_agreement qhm ~n:9 ~budget:0 ~inputs ~max_rounds:200 ~seed:7L in
  Alcotest.(check bool)
    (Printf.sprintf "%d rounds <= 5" result.Engine.rounds_used)
    true (result.Engine.rounds_used <= 5)

let test_qhm_agreement_split () =
  let agg, _ =
    trial_failures qhm ~n:9
      ~inputs_of:(fun seed -> Scenario.random_inputs ~n:9 seed)
      ~max_rounds:200 ~reps:20 ~base_seed:301L
  in
  check_rate "qhm split consistency" agg.Scenario.consistency_failures 20 0;
  check_rate "qhm split termination" agg.Scenario.termination_failures 20 0

let test_qhm_expected_constant_rounds () =
  let agg, _ =
    trial_failures qhm ~n:9
      ~inputs_of:(fun seed -> Scenario.random_inputs ~n:9 seed)
      ~max_rounds:200 ~reps:30 ~base_seed:302L
  in
  (* All-honest executions converge within a couple of iterations. *)
  Alcotest.(check bool)
    (Printf.sprintf "mean rounds %.1f < 16" agg.Scenario.mean_rounds)
    true
    (agg.Scenario.mean_rounds < 16.0)

let test_qhm_quadratic_communication () =
  let inputs = Scenario.unanimous_inputs ~n:9 true in
  let result, _ = run_agreement qhm ~n:9 ~budget:0 ~inputs ~max_rounds:200 ~seed:8L in
  (* Every node multicasts in (almost) every round: Θ(n) multicasts,
     hence Θ(n²) pairwise messages. *)
  Alcotest.(check bool) "≥ n multicasts per active round" true
    (Metrics.honest_multicasts result.Engine.metrics
    >= 9 * (result.Engine.rounds_used - 1))

let test_qhm_n_validation () =
  Alcotest.check_raises "even n rejected"
    (Invalid_argument "Quadratic_hm: n must be odd and at least 3 (n = 2f+1)")
    (fun () ->
      ignore
        (Engine.run qhm ~adversary:(passive ()) ~n:8 ~budget:0
           ~inputs:(Array.make 8 true) ~max_rounds:10 ~seed:1L))

(* --- Subquadratic honest majority (App. C.2) -------------------------------- *)

let shm_params = Params.make ~lambda:40 ~max_epochs:60 ()

let shm = Sub_hm.protocol ~params:shm_params ~world:`Hybrid

let shm_rounds = (4 * shm_params.Params.max_epochs) + 10

let test_shm_validity_unanimous () =
  List.iter
    (fun bit ->
      let agg, _ =
        trial_failures shm ~n:121
          ~inputs_of:(fun _ -> Scenario.unanimous_inputs ~n:121 bit)
          ~max_rounds:shm_rounds ~reps:8 ~base_seed:400L
      in
      check_rate "shm validity" agg.Scenario.validity_failures 8 0;
      check_rate "shm consistency" agg.Scenario.consistency_failures 8 0;
      check_rate "shm termination" agg.Scenario.termination_failures 8 0)
    [ false; true ]

let test_shm_agreement_split () =
  let agg, _ =
    trial_failures shm ~n:121
      ~inputs_of:(fun seed -> Scenario.random_inputs ~n:121 seed)
      ~max_rounds:shm_rounds ~reps:8 ~base_seed:401L
  in
  check_rate "shm split consistency" agg.Scenario.consistency_failures 8 0;
  check_rate "shm split termination" agg.Scenario.termination_failures 8 0

let test_shm_sublinear_multicasts () =
  let inputs = Scenario.unanimous_inputs ~n:121 true in
  let result, _ =
    run_agreement shm ~n:121 ~budget:0 ~inputs ~max_rounds:shm_rounds ~seed:9L
  in
  let m = Metrics.honest_multicasts result.Engine.metrics in
  (* Lemma 15: O(λ²) multicasts total; per round, ≈ λ committee members
     speak instead of all n nodes. *)
  let per_round = float_of_int m /. float_of_int result.Engine.rounds_used in
  Alcotest.(check bool)
    (Printf.sprintf "%.1f multicasts/round << n = 121" per_round)
    true (per_round < 60.0)

let test_shm_expected_constant_rounds () =
  let agg, _ =
    trial_failures shm ~n:121
      ~inputs_of:(fun seed -> Scenario.random_inputs ~n:121 seed)
      ~max_rounds:shm_rounds ~reps:10 ~base_seed:402L
  in
  Alcotest.(check bool)
    (Printf.sprintf "mean rounds %.1f < 60" agg.Scenario.mean_rounds)
    true
    (agg.Scenario.mean_rounds < 60.0)

let test_shm_real_world () =
  let params = Params.make ~lambda:24 ~max_epochs:40 () in
  let real = Sub_hm.protocol ~params ~world:`Real in
  let inputs = Scenario.unanimous_inputs ~n:61 true in
  let result, verdict =
    run_agreement real ~n:61 ~budget:0 ~inputs ~max_rounds:170 ~seed:10L
  in
  Alcotest.(check bool) "real world ok" true (Properties.ok verdict);
  Alcotest.(check bool) "proof overhead visible" true
    (Metrics.honest_multicast_bits result.Engine.metrics
    > 100 * Metrics.honest_multicasts result.Engine.metrics)

let test_shm_mining_strings () =
  Alcotest.(check string) "vote" "shm:Vote:3:1"
    (Sub_hm.mining_string `Vote ~iter:3 ~bit:true);
  Alcotest.(check string) "terminate per-bit" "shm:Terminate:0"
    (Sub_hm.terminate_mining_string ~bit:false)

(* --- Broadcast reduction (§1.1) --------------------------------------------- *)

let test_broadcast_honest_sender () =
  let bb = Broadcast.of_ba qhm ~sender:0 in
  List.iter
    (fun bit ->
      let inputs = Array.make 9 bit in
      let result =
        Engine.run bb ~adversary:(passive ()) ~n:9 ~budget:0 ~inputs ~max_rounds:200
          ~seed:11L
      in
      let verdict = Properties.broadcast ~sender:0 ~input:bit result in
      Alcotest.(check bool)
        (Printf.sprintf "broadcast of %b ok" bit)
        true (Properties.ok verdict))
    [ false; true ]

let test_broadcast_silent_corrupt_sender_consistent () =
  let bb = Broadcast.of_ba qhm ~sender:0 in
  let adversary =
    { Engine.adv_name = "silence-sender";
      model = Corruption.Static;
      caps = { Capability.caps = [ Capability.Setup_corruption ]; budget_bound = None };
      setup = (fun _ ~n:_ ~budget:_ ~rng:_ -> [ 0 ]);
      intervene = (fun _ -> []) }
  in
  let inputs = Array.make 9 true in
  let result =
    Engine.run bb ~adversary ~n:9 ~budget:1 ~inputs ~max_rounds:200 ~seed:12L
  in
  let verdict = Properties.broadcast ~sender:0 ~input:true result in
  Alcotest.(check bool) "consistent despite silent sender" true
    verdict.Properties.consistent;
  Alcotest.(check bool) "terminated" true verdict.Properties.terminated;
  (* Validity is vacuous: the sender is corrupt. *)
  Alcotest.(check bool) "validity vacuous" true verdict.Properties.valid

let test_broadcast_over_subquadratic () =
  let params = Params.make ~lambda:40 ~max_epochs:60 () in
  let bb = Broadcast.of_ba (Sub_hm.protocol ~params ~world:`Hybrid) ~sender:3 in
  let inputs = Array.make 121 false in
  inputs.(3) <- true;
  let result =
    Engine.run bb ~adversary:(passive ()) ~n:121 ~budget:0 ~inputs
      ~max_rounds:((4 * 60) + 12) ~seed:13L
  in
  let verdict = Properties.broadcast ~sender:3 ~input:true result in
  Alcotest.(check bool) "broadcast over sub-hm ok" true (Properties.ok verdict)

let test_broadcast_over_warmup () =
  let bb = Broadcast.of_ba warmup ~sender:2 in
  let inputs = Array.make 7 false in
  inputs.(2) <- true;
  let result =
    Engine.run bb ~adversary:(passive ()) ~n:7 ~budget:0 ~inputs
      ~max_rounds:(warmup_rounds + 2) ~seed:14L
  in
  let verdict = Properties.broadcast ~sender:2 ~input:true result in
  Alcotest.(check bool) "broadcast over warmup ok" true (Properties.ok verdict)

let test_warmup_state_accessors () =
  (* Drive one node by hand through init and a proposal round and check
     the exposed belief/sticky state. *)
  let proto = warmup in
  let rng = Bacrypto.Rng.create 1L in
  let env = proto.Engine.make_env ~n:7 rng in
  let st = proto.Engine.init env ~rng ~n:7 ~me:3 ~input:true in
  Alcotest.(check bool) "belief = input" true (Warmup_third.belief st);
  Alcotest.(check bool) "sticky initially set (footnote 4)" true
    (Warmup_third.sticky st);
  (* Round 0 (propose round, empty inbox): non-leader stays silent. *)
  let st, sends = proto.Engine.step env st ~round:0 ~inbox:[] in
  Alcotest.(check int) "non-leader silent" 0 (List.length sends);
  (* Round 1 (ACK round): the sticky node ACKs its input. *)
  let _, sends = proto.Engine.step env st ~round:1 ~inbox:[] in
  Alcotest.(check int) "one ACK" 1 (List.length sends)

let test_sub3_belief_accessor () =
  let proto = sub3 in
  let rng = Bacrypto.Rng.create 2L in
  let env = proto.Engine.make_env ~n:120 rng in
  let st = proto.Engine.init env ~rng ~n:120 ~me:5 ~input:false in
  Alcotest.(check bool) "belief = input" false (Sub_third.belief st)

let test_sub3_verify_msg_rejects_forgery () =
  let proto = sub3 in
  let rng = Bacrypto.Rng.create 3L in
  let env = proto.Engine.make_env ~n:120 rng in
  (* A made-up credential claim never verifies. *)
  Alcotest.(check bool) "forged ACK rejected" false
    (Sub_third.verify_msg env ~sender:7
       (Sub_third.make_ack ~epoch:0 ~bit:true
          ~cred:Bafmine.Eligibility.Ideal_ticket))

(* --- Golden regression transcripts --------------------------------------------
   Exact outcomes for fixed seeds: any unintended change to protocol logic,
   RNG derivation, or engine delivery order shows up here first. *)

let golden proto ~n ~seed ~rounds ~multicasts ~bits label =
  let inputs = Scenario.split_inputs ~n in
  let result =
    Engine.run proto ~adversary:(passive ()) ~n ~budget:0 ~inputs
      ~max_rounds:300 ~seed
  in
  Alcotest.(check int) (label ^ " rounds") rounds result.Engine.rounds_used;
  Alcotest.(check int)
    (label ^ " multicasts")
    multicasts
    (Metrics.honest_multicasts result.Engine.metrics);
  Alcotest.(check int)
    (label ^ " bits")
    bits
    (Metrics.honest_multicast_bits result.Engine.metrics)

let test_golden_sub_hm () =
  golden
    (Sub_hm.protocol ~params:(Params.make ~lambda:40 ~max_epochs:40 ()) ~world:`Hybrid)
    ~n:201 ~seed:7L ~rounds:11 ~multicasts:243 ~bits:155216
    "sub-hm n=201 seed=7"

let test_golden_quadratic () =
  golden (Quadratic_hm.protocol ()) ~n:41 ~seed:9L ~rounds:7 ~multicasts:206
    ~bits:1079288 "quadratic-hm n=41 seed=9"

let test_golden_warmup () =
  golden
    (Warmup_third.protocol ~params:(Params.make ~lambda:10 ~max_epochs:12 ()))
    ~n:7 ~seed:5L ~rounds:25 ~multicasts:96 ~bits:29184
    "warmup n=7 seed=5"

(* --- Cross-protocol QCheck property ------------------------------------------ *)

let qcheck_tests =
  let open QCheck in
  [ Test.make ~name:"qhm agreement on random inputs/seeds" ~count:15
      (pair int64 (list_of_size (Gen.return 9) bool))
      (fun (seed, input_list) ->
        assume (List.length input_list = 9);
        let inputs = Array.of_list input_list in
        let result, verdict =
          run_agreement qhm ~n:9 ~budget:0 ~inputs ~max_rounds:200 ~seed
        in
        ignore result;
        Properties.ok verdict);
    Test.make ~name:"warmup agreement on random inputs/seeds" ~count:15
      (pair int64 (list_of_size (Gen.return 7) bool))
      (fun (seed, input_list) ->
        assume (List.length input_list = 7);
        let inputs = Array.of_list input_list in
        let _, verdict =
          run_agreement warmup ~n:7 ~budget:0 ~inputs ~max_rounds:warmup_rounds
            ~seed
        in
        Properties.ok verdict);
  ]

let () =
  let qcheck =
    List.map
      (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xba003 |]))
      qcheck_tests
  in
  Alcotest.run "core"
    [ ( "params",
        [ Alcotest.test_case "quorums" `Quick test_params_quorums;
          Alcotest.test_case "probabilities" `Quick test_params_probabilities;
          Alcotest.test_case "validation" `Quick test_params_validation;
          Alcotest.test_case "faulty bounds" `Quick test_params_faulty_bounds ] );
      ( "cert",
        [ Alcotest.test_case "dedup" `Quick test_cert_dedup;
          Alcotest.test_case "rank" `Quick test_cert_rank;
          Alcotest.test_case "well-formed" `Quick test_cert_well_formed;
          Alcotest.test_case "iter validation" `Quick test_cert_iter_validation ] );
      ( "warmup-third",
        [ Alcotest.test_case "validity unanimous" `Quick test_warmup_validity_unanimous;
          Alcotest.test_case "agreement split" `Quick test_warmup_agreement_split;
          Alcotest.test_case "linear multicasts" `Quick test_warmup_linear_multicasts;
          Alcotest.test_case "fixed duration" `Quick test_warmup_fixed_duration;
          Alcotest.test_case "round-robin leader" `Quick test_warmup_leader_round_robin ] );
      ( "sub-third",
        [ Alcotest.test_case "validity unanimous" `Quick test_sub3_validity_unanimous;
          Alcotest.test_case "agreement split" `Quick test_sub3_agreement_split;
          Alcotest.test_case "sublinear multicasts" `Quick test_sub3_sublinear_multicasts;
          Alcotest.test_case "real world" `Slow test_sub3_real_world_agrees;
          Alcotest.test_case "mining strings" `Quick test_sub3_mining_strings ] );
      ( "quadratic-hm",
        [ Alcotest.test_case "phase layout" `Quick test_qhm_phase_layout;
          Alcotest.test_case "validity unanimous" `Quick test_qhm_validity_unanimous;
          Alcotest.test_case "fast unanimous decision" `Quick
            test_qhm_unanimous_terminates_first_iteration;
          Alcotest.test_case "agreement split" `Quick test_qhm_agreement_split;
          Alcotest.test_case "expected constant rounds" `Quick
            test_qhm_expected_constant_rounds;
          Alcotest.test_case "quadratic communication" `Quick
            test_qhm_quadratic_communication;
          Alcotest.test_case "n validation" `Quick test_qhm_n_validation ] );
      ( "sub-hm",
        [ Alcotest.test_case "validity unanimous" `Slow test_shm_validity_unanimous;
          Alcotest.test_case "agreement split" `Slow test_shm_agreement_split;
          Alcotest.test_case "sublinear multicasts" `Quick test_shm_sublinear_multicasts;
          Alcotest.test_case "expected constant rounds" `Slow
            test_shm_expected_constant_rounds;
          Alcotest.test_case "real world" `Slow test_shm_real_world;
          Alcotest.test_case "mining strings" `Quick test_shm_mining_strings ] );
      ( "broadcast",
        [ Alcotest.test_case "honest sender" `Quick test_broadcast_honest_sender;
          Alcotest.test_case "silent corrupt sender" `Quick
            test_broadcast_silent_corrupt_sender_consistent;
          Alcotest.test_case "over warmup" `Quick test_broadcast_over_warmup;
          Alcotest.test_case "over sub-hm" `Slow test_broadcast_over_subquadratic ] );
      ( "state-accessors",
        [ Alcotest.test_case "warmup belief/sticky" `Quick test_warmup_state_accessors;
          Alcotest.test_case "sub3 belief" `Quick test_sub3_belief_accessor;
          Alcotest.test_case "sub3 forgery rejected" `Quick
            test_sub3_verify_msg_rejects_forgery ] );
      ( "golden",
        [ Alcotest.test_case "sub-hm transcript" `Quick test_golden_sub_hm;
          Alcotest.test_case "quadratic transcript" `Quick test_golden_quadratic;
          Alcotest.test_case "warmup transcript" `Quick test_golden_warmup ] );
      ("properties", qcheck) ]
