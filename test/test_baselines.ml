(* Tests for the baseline/comparator protocols: Dolev–Strong, the static
   CRS committee, Nakamoto-style longest chain, and the sparse-relay
   Dolev–Reischuk victim. *)

open Basim
open Babaselines

let passive () = Engine.passive ~name:"passive" ~model:Corruption.Adaptive

(* --- Dolev–Strong ---------------------------------------------------- *)

let ds ~f = Dolev_strong.protocol ~sender:0 ~f

let test_ds_honest_sender () =
  List.iter
    (fun bit ->
      let inputs = Array.make 7 bit in
      let result =
        Engine.run (ds ~f:2) ~adversary:(passive ()) ~n:7 ~budget:0 ~inputs
          ~max_rounds:10 ~seed:1L
      in
      let verdict = Properties.broadcast ~sender:0 ~input:bit result in
      Alcotest.(check bool)
        (Printf.sprintf "broadcast of %b" bit)
        true (Properties.ok verdict))
    [ false; true ]

let test_ds_round_count () =
  let inputs = Array.make 7 true in
  let result =
    Engine.run (ds ~f:2) ~adversary:(passive ()) ~n:7 ~budget:0 ~inputs
      ~max_rounds:10 ~seed:2L
  in
  Alcotest.(check int) "f+3 rounds" 5 result.Engine.rounds_used

let test_ds_silent_sender_defaults () =
  let adversary =
    { Engine.adv_name = "silence-sender";
      model = Corruption.Static;
      caps = { Capability.caps = [ Capability.Setup_corruption ]; budget_bound = None };
      setup = (fun _ ~n:_ ~budget:_ ~rng:_ -> [ 0 ]);
      intervene = (fun _ -> []) }
  in
  let inputs = Array.make 7 true in
  let result =
    Engine.run (ds ~f:2) ~adversary ~n:7 ~budget:1 ~inputs ~max_rounds:10
      ~seed:3L
  in
  Array.iteri
    (fun i out ->
      if not result.Engine.corrupt.(i) then
        Alcotest.(check (option bool)) "default bit" (Some false) out)
    result.Engine.outputs

let test_ds_equivocating_sender_consistent () =
  (* A corrupt sender signs both bits and targets them at different
     halves; honest relaying makes everyone extract both bits by the end
     and fall back to the default — consistently. *)
  let adversary =
    { Engine.adv_name = "equivocating-sender";
      model = Corruption.Static;
      caps = { Capability.caps = [ Capability.Setup_corruption; Capability.Injection ]; budget_bound = None };
      setup = (fun _ ~n:_ ~budget:_ ~rng:_ -> [ 0 ]);
      intervene =
        (fun view ->
          if view.Engine.round = 0 then begin
            let env = view.Engine.env in
            let sign bit =
              Bacrypto.Signature.sign env.Dolev_strong.sigs ~signer:0
                (Dolev_strong.bit_stmt bit)
            in
            [ Engine.Inject
                { src = 0;
                  dst = Engine.Only [ 1; 2; 3 ];
                  payload = { Dolev_strong.bit = false; chain = [ (0, sign false) ] } };
              Engine.Inject
                { src = 0;
                  dst = Engine.Only [ 4; 5; 6 ];
                  payload = { Dolev_strong.bit = true; chain = [ (0, sign true) ] } } ]
          end
          else []) }
  in
  let inputs = Array.make 7 true in
  let result =
    Engine.run (ds ~f:2) ~adversary ~n:7 ~budget:1 ~inputs ~max_rounds:10
      ~seed:4L
  in
  let verdict = Properties.broadcast ~sender:0 ~input:true result in
  Alcotest.(check bool) "consistent despite equivocation" true
    verdict.Properties.consistent

let test_ds_forged_chain_rejected () =
  let rng = Bacrypto.Rng.create 5L in
  let sigs = Bacrypto.Signature.setup ~n:5 rng in
  let env = { Dolev_strong.n = 5; f = 2; sigs } in
  let good = Bacrypto.Signature.sign sigs ~signer:0 (Dolev_strong.bit_stmt true) in
  let forged = String.make 32 'x' in
  Alcotest.(check bool) "valid chain accepted" true
    (Dolev_strong.valid_msg env ~sender:0 ~round:1
       { Dolev_strong.bit = true; chain = [ (0, good) ] });
  Alcotest.(check bool) "forged signature rejected" false
    (Dolev_strong.valid_msg env ~sender:0 ~round:1
       { Dolev_strong.bit = true; chain = [ (0, forged) ] });
  Alcotest.(check bool) "chain not starting at sender rejected" false
    (Dolev_strong.valid_msg env ~sender:0 ~round:1
       { Dolev_strong.bit = true;
         chain = [ (1, Bacrypto.Signature.sign sigs ~signer:1 (Dolev_strong.bit_stmt true)) ] });
  Alcotest.(check bool) "short chain rejected at later round" false
    (Dolev_strong.valid_msg env ~sender:0 ~round:2
       { Dolev_strong.bit = true; chain = [ (0, good) ] })

let test_ds_quadratic_communication () =
  let inputs = Array.make 9 true in
  let result =
    Engine.run (ds ~f:4) ~adversary:(passive ()) ~n:9 ~budget:0 ~inputs
      ~max_rounds:12 ~seed:6L
  in
  (* Every node relays the extracted bit once: ≥ n multicasts total. *)
  Alcotest.(check bool) "n multicasts" true
    (Metrics.honest_multicasts result.Engine.metrics >= 9)

(* --- Static committee --------------------------------------------------- *)

let sc = Static_committee.protocol ~committee_size:5

let test_sc_honest () =
  List.iter
    (fun bit ->
      let inputs = Array.make 30 bit in
      let result =
        Engine.run sc ~adversary:(passive ()) ~n:30 ~budget:0 ~inputs
          ~max_rounds:5 ~seed:7L
      in
      let verdict = Properties.agreement ~inputs result in
      Alcotest.(check bool) "ok" true (Properties.ok verdict))
    [ false; true ]

let test_sc_sublinear_multicasts () =
  let inputs = Array.make 30 true in
  let result =
    Engine.run sc ~adversary:(passive ()) ~n:30 ~budget:0 ~inputs ~max_rounds:5
      ~seed:8L
  in
  (* Only committee members speak: 2 messages each. *)
  Alcotest.(check int) "2·committee multicasts" 10
    (Metrics.honest_multicasts result.Engine.metrics)

let test_sc_committee_is_public_and_sized () =
  let env, _ =
    Engine.run_env sc ~adversary:(passive ()) ~n:30 ~budget:0
      ~inputs:(Array.make 30 true) ~max_rounds:5 ~seed:9L
  in
  Alcotest.(check int) "committee size" 5
    (List.length env.Static_committee.committee);
  Alcotest.(check bool) "members in range" true
    (List.for_all (fun i -> i >= 0 && i < 30) env.Static_committee.committee)

(* --- Nakamoto ------------------------------------------------------------- *)

let test_nakamoto_agreement () =
  let proto = Nakamoto.protocol ~p:0.01 ~confirmations:5 in
  let trials =
    Scenario.run_trials ~reps:10 ~base_seed:10L (fun seed ->
        let inputs = Scenario.unanimous_inputs ~n:20 true in
        let result =
          Engine.run proto ~adversary:(passive ()) ~n:20 ~budget:0 ~inputs
            ~max_rounds:400 ~seed
        in
        (result, Properties.agreement ~inputs result))
  in
  let agg = Scenario.aggregate trials in
  Alcotest.(check int) "validity" 0 agg.Scenario.validity_failures;
  Alcotest.(check bool) "few consistency failures" true
    (agg.Scenario.consistency_failures <= 1);
  Alcotest.(check int) "termination" 0 agg.Scenario.termination_failures

let test_nakamoto_rounds_grow_with_confirmations () =
  let mean_rounds confirmations =
    let proto = Nakamoto.protocol ~p:0.01 ~confirmations in
    let trials =
      Scenario.run_trials ~reps:8 ~base_seed:11L (fun seed ->
          let inputs = Scenario.unanimous_inputs ~n:20 true in
          let result =
            Engine.run proto ~adversary:(passive ()) ~n:20 ~budget:0 ~inputs
              ~max_rounds:2000 ~seed
          in
          (result, Properties.agreement ~inputs result))
    in
    (Scenario.aggregate trials).Scenario.mean_rounds
  in
  let r3 = mean_rounds 3 and r12 = mean_rounds 12 in
  Alcotest.(check bool)
    (Printf.sprintf "rounds grow: %.0f @3 vs %.0f @12" r3 r12)
    true
    (r12 > 2.0 *. r3)

(* --- Chen-Micali -------------------------------------------------------------- *)

let cm_params = Bacore.Params.make ~lambda:40 ~max_epochs:14 ()

let test_cm_honest_agreement () =
  List.iter
    (fun erasure ->
      let proto = Chen_micali.protocol ~params:cm_params ~erasure in
      let trials =
        Scenario.run_trials ~reps:8 ~base_seed:60L (fun seed ->
            let inputs = Scenario.random_inputs ~n:120 seed in
            let result =
              Engine.run proto ~adversary:(passive ()) ~n:120 ~budget:0 ~inputs
                ~max_rounds:30 ~seed
            in
            (result, Properties.agreement ~inputs result))
      in
      let agg = Scenario.aggregate trials in
      Alcotest.(check int)
        (Printf.sprintf "no consistency failures (erasure=%b)" erasure)
        0 agg.Scenario.consistency_failures;
      Alcotest.(check int) "no validity failures" 0 agg.Scenario.validity_failures)
    [ true; false ]

let test_cm_sublinear_multicasts () =
  let proto = Chen_micali.protocol ~params:cm_params ~erasure:true in
  let inputs = Scenario.unanimous_inputs ~n:120 true in
  let result =
    Engine.run proto ~adversary:(passive ()) ~n:120 ~budget:0 ~inputs
      ~max_rounds:30 ~seed:61L
  in
  let per_epoch =
    float_of_int (Metrics.honest_multicasts result.Engine.metrics) /. 14.0
  in
  Alcotest.(check bool)
    (Printf.sprintf "%.1f multicasts/epoch << n" per_epoch)
    true (per_epoch < 70.0)

let test_cm_ack_requires_fs_signature () =
  (* Forged ACKs (wrong slot signature) must be dropped even with a valid
     eligibility ticket — verified via the protocol's message validator
     by running a corrupt injector that garbles the signature. *)
  let proto = Chen_micali.protocol ~params:cm_params ~erasure:true in
  let adversary =
    { Engine.adv_name = "garbled-sig";
      model = Corruption.Adaptive;
      caps = { Capability.caps = [ Capability.Midround_corruption; Capability.Injection ]; budget_bound = None };
      setup = (fun _ ~n:_ ~budget:_ ~rng:_ -> []);
      intervene =
        (fun view ->
          let actions = ref [] in
          let budget = ref (Corruption.budget_left view.Engine.tracker) in
          Array.iter
            (fun (node, intents) ->
              List.iter
                (fun { Engine.payload; _ } ->
                  match payload with
                  | Chen_micali.Ack { epoch; bit; cred; _ } when !budget > 0 ->
                      decr budget;
                      actions :=
                        Engine.Inject
                          { src = node;
                            dst = Engine.All;
                            payload =
                              Chen_micali.make_ack ~epoch ~bit:(not bit) ~cred
                                ~fs_sig:(String.make 32 'z') }
                        :: Engine.Corrupt node :: !actions
                  | Chen_micali.Ack _ | Chen_micali.Propose _ -> ())
                intents)
            view.Engine.intents;
          List.rev !actions) }
  in
  let inputs = Scenario.unanimous_inputs ~n:120 true in
  let env, result =
    Engine.run_env proto ~adversary ~n:120 ~budget:40 ~inputs ~max_rounds:30
      ~seed:62L
  in
  Alcotest.(check int) "garbled signatures never create conflicts" 0
    (Atomic.get env.Chen_micali.conflicts);
  let verdict = Properties.agreement ~inputs result in
  Alcotest.(check bool) "still valid" true verdict.Properties.valid

(* --- Sparse relay ------------------------------------------------------------ *)

let test_sparse_relay_delivers () =
  List.iter
    (fun bit ->
      let inputs = Array.make 12 bit in
      let result =
        Engine.run (Sparse_relay.protocol ~d:2) ~adversary:(passive ()) ~n:12
          ~budget:0 ~inputs ~max_rounds:20 ~seed:12L
      in
      let verdict = Properties.broadcast ~sender:0 ~input:bit result in
      Alcotest.(check bool) "everyone learns the bit" true (Properties.ok verdict))
    [ false; true ]

let test_sparse_relay_message_budget () =
  let inputs = Array.make 12 true in
  let result =
    Engine.run (Sparse_relay.protocol ~d:3) ~adversary:(passive ()) ~n:12
      ~budget:0 ~inputs ~max_rounds:20 ~seed:13L
  in
  let m = result.Engine.metrics in
  Alcotest.(check int) "no multicasts" 0 (Metrics.honest_multicasts m);
  Alcotest.(check bool)
    (Printf.sprintf "%d unicasts <= n·d = 36" (Metrics.honest_unicasts m))
    true
    (Metrics.honest_unicasts m <= 36)

let test_sparse_relay_successors () =
  Alcotest.(check (list int)) "interior" [ 5; 6 ]
    (Sparse_relay.successors ~n:10 ~d:2 4);
  Alcotest.(check (list int)) "wraps" [ 9; 0; 1 ]
    (Sparse_relay.successors ~n:10 ~d:3 8)

(* --- Pinned property tests ------------------------------------------------ *)

let baselines_qcheck_tests =
  (* The committee is CRS-derived: a function of the seed alone, always
     the declared size, duplicate-free, in range. *)
  [ QCheck.Test.make
      ~name:"static committee: sized, duplicate-free, seed-deterministic"
      ~count:20
      QCheck.(make ~print:string_of_int Gen.(0 -- 10_000))
      (fun seed ->
        let committee () =
          let env, _ =
            Engine.run_env sc ~adversary:(passive ()) ~n:30 ~budget:0
              ~inputs:(Array.make 30 true) ~max_rounds:5
              ~seed:(Int64.of_int seed)
          in
          env.Static_committee.committee
        in
        let c1 = committee () and c2 = committee () in
        c1 = c2
        && List.length c1 = 5
        && List.length (List.sort_uniq Int.compare c1) = 5
        && List.for_all (fun i -> i >= 0 && i < 30) c1) ]

let () =
  Alcotest.run "baselines"
    [ ( "dolev-strong",
        [ Alcotest.test_case "honest sender" `Quick test_ds_honest_sender;
          Alcotest.test_case "round count" `Quick test_ds_round_count;
          Alcotest.test_case "silent sender" `Quick test_ds_silent_sender_defaults;
          Alcotest.test_case "equivocating sender" `Quick
            test_ds_equivocating_sender_consistent;
          Alcotest.test_case "forged chains rejected" `Quick test_ds_forged_chain_rejected;
          Alcotest.test_case "quadratic communication" `Quick
            test_ds_quadratic_communication ] );
      ( "static-committee",
        [ Alcotest.test_case "honest" `Quick test_sc_honest;
          Alcotest.test_case "sublinear multicasts" `Quick test_sc_sublinear_multicasts;
          Alcotest.test_case "public committee" `Quick
            test_sc_committee_is_public_and_sized ] );
      ( "nakamoto",
        [ Alcotest.test_case "agreement" `Quick test_nakamoto_agreement;
          Alcotest.test_case "rounds grow with confirmations" `Slow
            test_nakamoto_rounds_grow_with_confirmations ] );
      ( "chen-micali",
        [ Alcotest.test_case "honest agreement" `Quick test_cm_honest_agreement;
          Alcotest.test_case "sublinear multicasts" `Quick test_cm_sublinear_multicasts;
          Alcotest.test_case "forged fs signature dropped" `Quick
            test_cm_ack_requires_fs_signature ] );
      ( "sparse-relay",
        [ Alcotest.test_case "delivers" `Quick test_sparse_relay_delivers;
          Alcotest.test_case "message budget" `Quick test_sparse_relay_message_budget;
          Alcotest.test_case "successors" `Quick test_sparse_relay_successors ] );
      ( "qcheck",
        List.map
          (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xba00b |]))
          baselines_qcheck_tests ) ]
