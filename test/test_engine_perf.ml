(* Equivalence of the structurally-shared delivery engine against a naive
   reference implementation.

   The engine delivers each multicast by consing it once onto a shared
   tail; the reference below rebuilds every inbox element-by-element (cons
   per recipient + reverse), which is the behavior the engine had before
   the sharing optimization. Random scripted scenarios — mixed
   multicast/unicast intents (including out-of-range and duplicate
   targets), halts, setup and mid-round corruptions, after-the-fact
   removals, and injections — must produce identical per-round inboxes,
   identical trace event streams, identical metrics, and identical result
   summaries under both. The real runs also pass [?series], so the
   engine's internal [Metrics.agrees_with_series] assertion is armed. *)

open Basim

(* ------------------------------------------------------------------ *)
(* Scripted scenarios                                                 *)
(* ------------------------------------------------------------------ *)

type plan = {
  n : int;
  max_rounds : int;
  setup_corrupt : int list;
  halts : int array;  (* round at which a node halts, or max_int *)
  sends : (Engine.dest * int) list array array;  (* sends.(round).(node) *)
  actions : int Engine.action list array;  (* per-round, pre-sanitized *)
}

let msg_bits m = 8 + (m land 31)

type state = { me : int; stopped : bool }

(* The protocol ignores its inputs and rng and replays the plan; every
   step records the inbox it was handed into its node's [log] slot.
   One slot per node (not one shared list) keeps the recording
   race-free and order-independent when phase 1 runs sharded; the
   harness flattens the slots into (round, node) order afterwards. *)
let scripted plan (log : ((int * int) * (int * int) list) list ref array) :
    (unit, state, int) Engine.protocol =
  { Engine.proto_name = "scripted";
    make_env = (fun ~n:_ _ -> ());
    init = (fun () ~rng:_ ~n:_ ~me ~input:_ -> { me; stopped = false });
    step =
      (fun () s ~round ~inbox ->
        log.(s.me) := ((round, s.me), inbox) :: !(log.(s.me));
        let sends =
          List.map
            (fun (dst, payload) -> { Engine.dst; payload })
            plan.sends.(round).(s.me)
        in
        let s' = if plan.halts.(s.me) = round then { s with stopped = true } else s in
        (s', sends));
    output = (fun s -> if s.stopped then Some true else None);
    halted = (fun s -> s.stopped);
    msg_bits = (fun () m -> msg_bits m) }

let script_adversary plan : (unit, int) Engine.adversary =
  { Engine.adv_name = "scripted";
    model = Corruption.Strongly_adaptive;
    caps = Capability.unrestricted;
    setup = (fun _ ~n:_ ~budget:_ ~rng:_ -> plan.setup_corrupt);
    intervene = (fun view -> plan.actions.(view.Engine.round)) }

(* ------------------------------------------------------------------ *)
(* Reference engine (naive delivery, as before structural sharing)    *)
(* ------------------------------------------------------------------ *)

type rwire = {
  r_src : int;
  r_dst : Engine.dest;
  r_payload : int;
  mutable r_erased : bool;
  r_honest : bool;
}

type run_summary = {
  logs : ((int * int) * (int * int) list) list;  (* ((round, node), inbox) *)
  events : Trace.event list;
  metrics_json : string;
  outputs : bool option array;
  corrupt : bool array;
  corruptions : int;
  rounds_used : int;
  all_honest_decided : bool;
  halt_rounds : int option array;
}

let recipients_of n = function
  | Engine.All -> n
  | Engine.Only targets -> List.length targets

let run_reference plan =
  let n = plan.n in
  let metrics = Metrics.create ~n in
  let events = ref [] and log = ref [] in
  let emit e = events := e :: !events in
  let corrupt = Array.make n false in
  let halted = Array.make n false in
  let halt_rounds = Array.make n None in
  let corruptions = ref 0 in
  List.iter
    (fun i ->
      if not corrupt.(i) then begin
        corrupt.(i) <- true;
        incr corruptions
      end;
      emit (Trace.Corrupted { round = -1; node = i }))
    plan.setup_corrupt;
  let inboxes = Array.make n [] in
  let round = ref 0 in
  let running = ref true in
  while !running && !round < plan.max_rounds do
    let r = !round in
    Metrics.note_round metrics r;
    emit (Trace.Round_started { round = r });
    (* Phase 1: steps, halts, and this round's honest wires (ascending). *)
    let wires = ref [] in
    for i = 0 to n - 1 do
      if (not corrupt.(i)) && not halted.(i) then begin
        log := ((r, i), inboxes.(i)) :: !log;
        List.iter
          (fun (dst, payload) ->
            wires :=
              { r_src = i; r_dst = dst; r_payload = payload; r_erased = false;
                r_honest = true }
              :: !wires)
          plan.sends.(r).(i);
        if plan.halts.(i) = r then begin
          halted.(i) <- true;
          halt_rounds.(i) <- Some r;
          emit (Trace.Halted { round = r; node = i; output = Some true })
        end
      end
    done;
    let wires = List.rev !wires in
    (* Phase 2: scripted adversary actions, in order. *)
    let injections = ref [] in
    List.iter
      (fun action ->
        match action with
        | Engine.Corrupt i ->
            if not corrupt.(i) then begin
              corrupt.(i) <- true;
              incr corruptions
            end;
            emit (Trace.Corrupted { round = r; node = i })
        | Engine.Remove { victim; index } ->
            let seen = ref 0 in
            List.iter
              (fun w ->
                if w.r_src = victim && w.r_honest then begin
                  if !seen = index then begin
                    assert (not w.r_erased);
                    w.r_erased <- true;
                    Metrics.record_removal metrics;
                    emit
                      (Trace.Removed
                         { round = r;
                           victim;
                           multicast = (w.r_dst = Engine.All);
                           recipients = recipients_of n w.r_dst;
                           bits = msg_bits w.r_payload;
                           id = Trace.no_id;
                           kind = Trace.no_kind;
                           targets = [] })
                  end;
                  incr seen
                end)
              wires
        | Engine.Inject { src; dst; payload } ->
            Metrics.record_injection metrics ~bits:(msg_bits payload);
            emit
              (Trace.Injected
                 { round = r; src; recipients = recipients_of n dst;
                   bits = -1; id = Trace.no_id; kind = Trace.no_kind;
                   targets = [] });
            injections :=
              { r_src = src; r_dst = dst; r_payload = payload; r_erased = false;
                r_honest = false }
              :: !injections)
      plan.actions.(r);
    (* Phase 3: account (honest wires, descending) and deliver naively. *)
    let all_wires = List.rev_append !injections (List.rev wires) in
    List.iter
      (fun w ->
        if w.r_honest then begin
          let bits = msg_bits w.r_payload in
          (match w.r_dst with
          | Engine.All -> Metrics.record_honest_multicast metrics ~bits
          | Engine.Only targets ->
              Metrics.record_honest_unicast metrics
                ~recipients:(List.length targets) ~bits);
          if not w.r_erased then
            emit
              (Trace.Sent
                 { round = r;
                   node = w.r_src;
                   multicast = (w.r_dst = Engine.All);
                   recipients = recipients_of n w.r_dst;
                   bits;
                   id = Trace.no_id;
                   kind = Trace.no_kind;
                   targets = [] })
        end)
      all_wires;
    let next = Array.make n [] in
    List.iter
      (fun w ->
        if not w.r_erased then
          match w.r_dst with
          | Engine.All ->
              for j = 0 to n - 1 do
                next.(j) <- (w.r_src, w.r_payload) :: next.(j)
              done
          | Engine.Only targets ->
              List.iter
                (fun j ->
                  if j >= 0 && j < n then
                    next.(j) <- (w.r_src, w.r_payload) :: next.(j))
                targets)
      all_wires;
    for j = 0 to n - 1 do
      inboxes.(j) <- List.rev next.(j)
    done;
    incr round;
    let any_active = ref false in
    for i = 0 to n - 1 do
      if (not corrupt.(i)) && not halted.(i) then any_active := true
    done;
    if not !any_active then running := false
  done;
  let outputs =
    Array.init n (fun i -> if halted.(i) then Some true else None)
  in
  let all_honest_decided =
    let ok = ref true in
    for i = 0 to n - 1 do
      if (not corrupt.(i)) && not halted.(i) then ok := false
    done;
    !ok
  in
  { logs = List.rev !log;
    events = List.rev !events;
    metrics_json = Baobs.Json.to_string (Metrics.to_json metrics);
    outputs;
    corrupt;
    corruptions = !corruptions;
    rounds_used = !round;
    all_honest_decided;
    halt_rounds }

(* [pool] defaults to a size-1 pool (the sequential engine); the
   cross-jobs differential suite below reruns the same plan on larger
   pools. The series JSON rides alongside the summary so sharding is
   also pinned to produce the identical per-round × per-node series. *)
let run_real ?pool plan =
  let log = Array.init plan.n (fun _ -> ref []) in
  let collector = Trace.collector () in
  let series = Baobs.Series.create ~n:plan.n in
  let result =
    Engine.run
      ~tracer:(Trace.observe collector)
      ~series ?pool
      (scripted plan log)
      ~adversary:(script_adversary plan)
      ~n:plan.n ~budget:plan.n
      ~inputs:(Array.make plan.n false)
      ~max_rounds:plan.max_rounds ~seed:11L
  in
  let logs =
    Array.to_list log
    |> List.concat_map (fun slot -> List.rev !slot)
    |> List.sort (fun (k1, _) (k2, _) -> compare (k1 : int * int) k2)
  in
  ( { logs;
      events = Trace.events collector;
      metrics_json = Baobs.Json.to_string (Metrics.to_json result.Engine.metrics);
      outputs = result.Engine.outputs;
      corrupt = result.Engine.corrupt;
      corruptions = result.Engine.corruptions;
      rounds_used = result.Engine.rounds_used;
      all_honest_decided = result.Engine.all_honest_decided;
      halt_rounds = result.Engine.halt_rounds },
    Baobs.Json.to_string (Baobs.Series.to_json series) )

(* ------------------------------------------------------------------ *)
(* Scenario generation                                                *)
(* ------------------------------------------------------------------ *)

type raw_action = C of int | R of int * int | I of int * Engine.dest * int

let gen_dest n =
  QCheck.Gen.(
    frequency
      [ (3, return Engine.All);
        (2,
         map
           (fun targets -> Engine.Only targets)
           (* Includes -1 and n: out-of-range targets are silently
              dropped by delivery; duplicates deliver twice. *)
           (list_size (0 -- 4) (int_range (-1) n))) ])

(* Turn raw candidates into a legal script by tracking who is corrupt,
   who halted, and how many wires each node put up this round; illegal
   candidates are dropped, Remove indices are folded into range, and
   double-erasures are skipped. *)
let sanitize ~n ~rounds ~setup ~halts ~sends raw =
  let corrupt = Array.make n false in
  List.iter (fun i -> corrupt.(i) <- true) setup;
  let halted = Array.make n false in
  let actions = Array.make rounds [] in
  for r = 0 to rounds - 1 do
    let wire_count = Array.make n 0 in
    for i = 0 to n - 1 do
      if (not corrupt.(i)) && not halted.(i) then begin
        wire_count.(i) <- List.length sends.(r).(i);
        if halts.(i) = r then halted.(i) <- true
      end
    done;
    let erased = Hashtbl.create 8 in
    actions.(r) <-
      List.filter_map
        (fun candidate ->
          match candidate with
          | C i ->
              corrupt.(i) <- true;
              Some (Engine.Corrupt i)
          | R (v, k) ->
              if corrupt.(v) && wire_count.(v) > 0 then begin
                let index = k mod wire_count.(v) in
                if Hashtbl.mem erased (v, index) then None
                else begin
                  Hashtbl.add erased (v, index) ();
                  Some (Engine.Remove { victim = v; index })
                end
              end
              else None
          | I (src, dst, payload) ->
              if corrupt.(src) then Some (Engine.Inject { src; dst; payload })
              else None)
        raw.(r)
  done;
  actions

let gen_plan =
  QCheck.Gen.(
    int_range 2 6 >>= fun n ->
    int_range 1 4 >>= fun rounds ->
    list_size (0 -- 2) (int_range 0 (n - 1)) >>= fun setup ->
    array_size (return n)
      (frequency [ (3, return max_int); (1, int_range 0 (rounds - 1)) ])
    >>= fun halts ->
    array_size (return rounds)
      (array_size (return n)
         (list_size (0 -- 3) (pair (gen_dest n) (int_range 0 100))))
    >>= fun sends ->
    array_size (return rounds)
      (list_size (0 -- 4)
         (frequency
            [ (2, map (fun i -> C i) (int_range 0 (n - 1)));
              (2, map2 (fun v k -> R (v, k)) (int_range 0 (n - 1)) small_nat);
              (2,
               map3
                 (fun s d p -> I (s, d, p))
                 (int_range 0 (n - 1))
                 (gen_dest n) (int_range 0 100)) ]))
    >>= fun raw ->
    let actions = sanitize ~n ~rounds ~setup ~halts ~sends raw in
    return { n; max_rounds = rounds; setup_corrupt = setup; halts; sends; actions })

let print_plan plan =
  Printf.sprintf "{n=%d; rounds=%d; setup=[%s]; actions/round=[%s]}" plan.n
    plan.max_rounds
    (String.concat ";" (List.map string_of_int plan.setup_corrupt))
    (String.concat ";"
       (Array.to_list
          (Array.map (fun acts -> string_of_int (List.length acts)) plan.actions)))

(* ------------------------------------------------------------------ *)
(* Properties                                                         *)
(* ------------------------------------------------------------------ *)

let equivalent plan =
  let real, _series = run_real plan and reference = run_reference plan in
  real.logs = reference.logs
  && real.events = reference.events
  && String.equal real.metrics_json reference.metrics_json
  && real.outputs = reference.outputs
  && real.corrupt = reference.corrupt
  && real.corruptions = reference.corruptions
  && real.rounds_used = reference.rounds_used
  && real.all_honest_decided = reference.all_honest_decided
  && real.halt_rounds = reference.halt_rounds

(* ------------------------------------------------------------------ *)
(* Cross-jobs differential: sharded phase 1 = sequential engine       *)
(* ------------------------------------------------------------------ *)

(* One pool per size under test, created once for the whole suite and
   leaked (process lifetime, same policy as the engine's own cached
   intra pool). Size 1 is exercised via [?pool:None], which IS the
   sequential engine, so the comparison is parallel-vs-baseline and
   not parallel-vs-parallel. *)
let intra_pools =
  lazy (List.map (fun jobs -> (jobs, Bapar.Pool.create ~jobs)) [ 2; 4; 8 ])

let summaries_equal (a, a_series) (b, b_series) =
  a.logs = b.logs
  && a.events = b.events
  && String.equal a.metrics_json b.metrics_json
  && a.outputs = b.outputs
  && a.corrupt = b.corrupt
  && a.corruptions = b.corruptions
  && a.rounds_used = b.rounds_used
  && a.all_honest_decided = b.all_honest_decided
  && a.halt_rounds = b.halt_rounds
  && String.equal a_series b_series

(* Every observable of the run — per-step inbox logs, the trace event
   stream, metrics JSON, series JSON, outputs, halt rounds — must be
   identical when phase 1 is sharded across 2/4/8 domains. The scripted
   protocol halts, corrupts, removes, and injects, so the differential
   also covers the halt post-pass and the phase-2/3 interaction. *)
let cross_jobs_equivalent plan =
  let sequential = run_real plan in
  List.for_all
    (fun (_jobs, pool) -> summaries_equal sequential (run_real ~pool plan))
    (Lazy.force intra_pools)

let qcheck_tests =
  [ QCheck.Test.make ~name:"shared delivery = naive reference" ~count:300
      (QCheck.make ~print:print_plan gen_plan)
      equivalent;
    QCheck.Test.make ~name:"intra-jobs {2,4,8} = sequential engine" ~count:150
      (QCheck.make ~print:print_plan gen_plan)
      cross_jobs_equivalent ]

(* A deterministic scenario dense in edge cases: multicasts interleaved
   with unicasts to the same node (exercises the splice path), duplicate
   and out-of-range unicast targets, removal of both a multicast and a
   unicast, injection ordering ahead of honest wires, and a corruption of
   a node that halted the same round. *)
let test_dense_scenario () =
  let n = 4 in
  let sends =
    [| [| [ (Engine.All, 7); (Engine.Only [ 2; 2; -1; 4 ], 9) ];
          [ (Engine.Only [ 0 ], 11); (Engine.All, 13) ];
          [ (Engine.All, 5) ];
          [ (Engine.Only [ 1; 0 ], 21) ]
       |];
       [| [ (Engine.All, 3) ];
          [];
          [ (Engine.Only [ 3; 3 ], 17) ];
          [ (Engine.All, 19) ]
       |]
    |]
  in
  let actions =
    [| [ Engine.Corrupt 3;
         Engine.Remove { victim = 3; index = 0 };
         Engine.Corrupt 2;
         Engine.Remove { victim = 2; index = 0 };
         Engine.Inject { src = 3; dst = Engine.Only [ 0; 0; 5 ]; payload = 42 };
         Engine.Inject { src = 3; dst = Engine.All; payload = 40 } ];
       [ Engine.Corrupt 1; Engine.Corrupt 0 ]
    |]
  in
  let plan =
    { n;
      max_rounds = 2;
      setup_corrupt = [];
      halts = [| max_int; 1; max_int; max_int |];
      sends;
      actions }
  in
  Alcotest.(check bool) "dense scenario equivalent" true (equivalent plan)

(* ------------------------------------------------------------------ *)
(* Real-protocol cross-jobs differentials                             *)
(* ------------------------------------------------------------------ *)

(* The scripted differential covers engine mechanics; these pin the
   claim for real protocols whose steps hit the shared crypto/mining
   layers (memo caches, Fmine counters) from parallel chunks. Each runs
   a seeded adversarial execution sequentially and on every pool, and
   every observable must match. *)
let protocol_differential (type env state msg) name
    (proto : (env, state, msg) Engine.protocol) ~make_adv ~n ~budget ~inputs
    ~max_rounds ~seed () =
  let execute ?pool () =
    let collector = Trace.collector () in
    let series = Baobs.Series.create ~n in
    let result =
      Engine.run
        ~tracer:(Trace.observe collector)
        ~series ?pool proto ~adversary:(make_adv ()) ~n ~budget ~inputs
        ~max_rounds ~seed
    in
    ( Trace.events collector,
      Baobs.Json.to_string (Metrics.to_json result.Engine.metrics),
      Baobs.Json.to_string (Baobs.Series.to_json series),
      result.Engine.outputs,
      result.Engine.halt_rounds,
      result.Engine.corrupt,
      result.Engine.rounds_used )
  in
  let sequential = execute () in
  List.iter
    (fun (jobs, pool) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s @ intra-jobs %d = sequential" name jobs)
        true
        (execute ~pool () = sequential))
    (Lazy.force intra_pools)

let test_sub_hm_differential =
  let params = Bacore.Params.make ~lambda:12 ~max_epochs:6 () in
  protocol_differential "sub-hm/split-vote"
    (Bacore.Sub_hm.protocol ~params ~world:`Hybrid)
    ~make_adv:(fun () -> Baattacks.Split_vote.sub_hm ())
    ~n:60 ~budget:18
    ~inputs:(Scenario.unanimous_inputs ~n:60 true)
    ~max_rounds:36 ~seed:5L

let test_sub_third_differential =
  let params = Bacore.Params.make ~lambda:12 ~max_epochs:4 () in
  protocol_differential "sub-third/equivocator"
    (Bacore.Sub_third.protocol ~params ~world:`Hybrid
       ~mode:Bacore.Sub_third.Bit_agnostic)
    ~make_adv:(fun () -> Baattacks.Equivocator.make ())
    ~n:60 ~budget:18
    ~inputs:(Scenario.split_inputs ~n:60)
    ~max_rounds:14 ~seed:6L

let test_takeover_differential =
  protocol_differential "static-committee/takeover"
    (Babaselines.Static_committee.protocol ~committee_size:8)
    ~make_adv:(fun () -> Baattacks.Takeover.make ~force:true ())
    ~n:60 ~budget:16
    ~inputs:(Scenario.unanimous_inputs ~n:60 false)
    ~max_rounds:6 ~seed:9L

let () =
  Alcotest.run "engine_perf"
    ([ ( "delivery",
         [ Alcotest.test_case "dense scripted scenario" `Quick
             test_dense_scenario ] ) ]
    @ [ ( "cross-jobs",
          [ Alcotest.test_case "sub-hm split-vote" `Quick
              test_sub_hm_differential;
            Alcotest.test_case "sub-third equivocator" `Quick
              test_sub_third_differential;
            Alcotest.test_case "static-committee takeover" `Quick
              test_takeover_differential ] ) ]
    @ [ ( "properties",
          List.map
            (QCheck_alcotest.to_alcotest
               ~rand:(Random.State.make [| 0xba51c |]))
            qcheck_tests ) ])
