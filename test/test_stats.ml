(* Tests for the statistics substrate. *)

open Bastats

let feq ?(eps = 1e-9) a b = abs_float (a -. b) < eps

(* --- Summary ---------------------------------------------------------- *)

let test_summary_basic () =
  let s = Summary.of_list [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  Alcotest.(check int) "count" 5 s.Summary.count;
  Alcotest.(check bool) "mean" true (feq s.Summary.mean 3.0);
  Alcotest.(check bool) "min" true (feq s.Summary.min 1.0);
  Alcotest.(check bool) "max" true (feq s.Summary.max 5.0);
  Alcotest.(check bool) "median" true (feq s.Summary.p50 3.0);
  Alcotest.(check bool) "stddev" true (feq s.Summary.stddev (sqrt 2.5))

let test_summary_single () =
  let s = Summary.of_list [ 7.0 ] in
  Alcotest.(check bool) "mean" true (feq s.Summary.mean 7.0);
  Alcotest.(check bool) "stddev zero" true (feq s.Summary.stddev 0.0);
  Alcotest.(check bool) "p95" true (feq s.Summary.p95 7.0)

let test_summary_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Summary.of_list: empty")
    (fun () -> ignore (Summary.of_list []))

let test_quantile_interpolation () =
  let sorted = [| 0.0; 10.0 |] in
  Alcotest.(check bool) "q=0.5 interpolates" true
    (feq (Summary.quantile sorted 0.5) 5.0);
  Alcotest.(check bool) "q=0" true (feq (Summary.quantile sorted 0.0) 0.0);
  Alcotest.(check bool) "q=1" true (feq (Summary.quantile sorted 1.0) 10.0)

let test_summary_of_ints () =
  let s = Summary.of_ints [ 2; 4; 6 ] in
  Alcotest.(check bool) "mean" true (feq s.Summary.mean 4.0)

(* --- Binomial --------------------------------------------------------- *)

let test_binomial_pmf_sums_to_one () =
  let n = 20 and p = 0.3 in
  let total = ref 0.0 in
  for k = 0 to n do
    total := !total +. Binomial.pmf ~n ~p k
  done;
  Alcotest.(check bool) "sums to 1" true (feq ~eps:1e-9 !total 1.0)

let test_binomial_pmf_known_value () =
  (* C(4,2) 0.5^4 = 6/16 *)
  Alcotest.(check bool) "pmf(4, .5, 2)" true
    (feq ~eps:1e-9 (Binomial.pmf ~n:4 ~p:0.5 2) 0.375)

let test_binomial_cdf_monotone () =
  let n = 30 and p = 0.4 in
  let prev = ref 0.0 in
  for k = 0 to n do
    let c = Binomial.cdf ~n ~p k in
    Alcotest.(check bool) "monotone" true (c >= !prev -. 1e-12);
    prev := c
  done;
  Alcotest.(check bool) "cdf(n) = 1" true (feq ~eps:1e-9 !prev 1.0)

let test_binomial_tails_complement () =
  let n = 25 and p = 0.2 in
  for k = 0 to n do
    let both = Binomial.cdf ~n ~p (k - 1) +. Binomial.upper_tail ~n ~p k in
    Alcotest.(check bool) "cdf + upper_tail = 1" true (feq ~eps:1e-9 both 1.0)
  done

let test_binomial_degenerate_p () =
  Alcotest.(check bool) "p=0 all mass at 0" true
    (feq (Binomial.pmf ~n:10 ~p:0.0 0) 1.0);
  Alcotest.(check bool) "p=1 all mass at n" true
    (feq (Binomial.pmf ~n:10 ~p:1.0 10) 1.0)

let test_wilson_contains_phat () =
  let lo, hi = Binomial.wilson_interval ~successes:30 ~trials:100 ~z:1.96 in
  Alcotest.(check bool) "contains phat" true (lo < 0.3 && 0.3 < hi);
  Alcotest.(check bool) "within [0,1]" true (lo >= 0.0 && hi <= 1.0)

let test_wilson_extremes () =
  let lo, hi = Binomial.wilson_interval ~successes:0 ~trials:50 ~z:1.96 in
  Alcotest.(check bool) "zero successes: lo = 0" true (feq lo 0.0);
  Alcotest.(check bool) "zero successes: hi > 0" true (hi > 0.0);
  let lo', hi' = Binomial.wilson_interval ~successes:50 ~trials:50 ~z:1.96 in
  Alcotest.(check bool) "all successes: hi = 1" true (feq hi' 1.0);
  Alcotest.(check bool) "all successes: lo < 1" true (lo' < 1.0)

(* --- Chernoff --------------------------------------------------------- *)

let test_chernoff_bounds_shrink_with_mu () =
  let b1 = Chernoff.lower_tail_bound ~mu:10.0 ~delta:0.5 in
  let b2 = Chernoff.lower_tail_bound ~mu:100.0 ~delta:0.5 in
  Alcotest.(check bool) "larger mu, smaller bound" true (b2 < b1)

let test_chernoff_band_contains_lambda () =
  let lo, hi = Chernoff.committee_size_band ~lambda:40.0 ~confidence:0.99 in
  Alcotest.(check bool) "band around λ" true (lo < 40.0 && 40.0 < hi);
  Alcotest.(check bool) "band nonneg" true (lo >= 0.0)

let test_chernoff_band_empirical () =
  (* 10k Binomial(1000, 40/1000) committees must fall inside the 99.9%
     band nearly always. *)
  let rng = Bacrypto.Rng.create 77L in
  let lo, hi = Chernoff.committee_size_band ~lambda:40.0 ~confidence:0.999 in
  let outside = ref 0 in
  for _ = 1 to 2000 do
    let size = ref 0 in
    for _ = 1 to 1000 do
      if Bacrypto.Rng.bernoulli rng 0.04 then incr size
    done;
    if float_of_int !size < lo || float_of_int !size > hi then incr outside
  done;
  Alcotest.(check bool)
    (Printf.sprintf "%d/2000 outside 99.9%% band" !outside)
    true (!outside <= 10)

(* --- Histogram -------------------------------------------------------- *)

let test_histogram_counts () =
  let h = Histogram.create () in
  Histogram.add_many h [ 1; 2; 2; 3; 3; 3 ];
  Alcotest.(check int) "count 1" 1 (Histogram.count h 1);
  Alcotest.(check int) "count 2" 2 (Histogram.count h 2);
  Alcotest.(check int) "count 3" 3 (Histogram.count h 3);
  Alcotest.(check int) "count missing" 0 (Histogram.count h 9);
  Alcotest.(check int) "total" 6 (Histogram.total h);
  Alcotest.(check (option int)) "mode" (Some 3) (Histogram.mode h)

let test_histogram_bins_sorted () =
  let h = Histogram.create () in
  Histogram.add_many h [ 5; 1; 3; 1 ];
  Alcotest.(check (list (pair int int))) "bins" [ (1, 2); (3, 1); (5, 1) ]
    (Histogram.bins h)

let test_histogram_render_nonempty () =
  let h = Histogram.create () in
  Histogram.add_many h [ 1; 1; 2 ];
  let s = Histogram.render h in
  Alcotest.(check bool) "contains bars" true (String.length s > 0)

(* --- Table ------------------------------------------------------------ *)

let test_table_render () =
  let t = Table.create ~title:"demo" ~columns:[ "n"; "value" ] in
  Table.add_row t [ "64"; "1.5" ];
  Table.add_row t [ "128"; "2.25" ];
  Table.add_note t "a note";
  let s = Table.render t in
  Alcotest.(check bool) "title present" true
    (String.length s > 0 && String.sub s 0 7 = "== demo");
  Alcotest.(check bool) "note present" true
    (let re = "a note" in
     let rec contains i =
       i + String.length re <= String.length s
       && (String.sub s i (String.length re) = re || contains (i + 1))
     in
     contains 0)

let test_table_arity_check () =
  let t = Table.create ~title:"demo" ~columns:[ "a"; "b" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch")
    (fun () -> Table.add_row t [ "only-one" ])

let test_table_fmt () =
  Alcotest.(check string) "int thousands" "1,234,567" (Table.fmt_int 1234567);
  Alcotest.(check string) "small int" "42" (Table.fmt_int 42);
  Alcotest.(check string) "negative" "-1,000" (Table.fmt_int (-1000));
  Alcotest.(check string) "float small" "0.500" (Table.fmt_float 0.5);
  Alcotest.(check string) "float int-like" "3" (Table.fmt_float 3.0)

(* --- Sketch ------------------------------------------------------------ *)

let exact_quantile xs q =
  let sorted = Array.of_list xs in
  Array.sort Float.compare sorted;
  Summary.quantile sorted q

let sketch_of xs =
  let s = Sketch.create () in
  List.iter (Sketch.add s) xs;
  s

(* P² is an approximation whose error depends on stream length and
   order. Empirical worst cases over random uniform streams: ~4% of the
   sample range at n >= 100, ~10% at 30 <= n < 100, ~34% just past the
   5-element exact buffer — and sorted/reversed feeds (markers only
   ever see new extremes on one side) reach ~27% even at large n. The
   bounds here add margin on top of those measurements; they are loose
   for short streams by the nature of the algorithm, not the tests. *)
let p2_close ?(adversarial = false) xs q est =
  let n = List.length xs in
  let tol =
    if adversarial then if n < 30 then 0.50 else 0.40
    else if n < 30 then 0.45
    else if n < 100 then 0.25
    else 0.12
  in
  let lo = List.fold_left min infinity xs
  and hi = List.fold_left max neg_infinity xs in
  abs_float (est -. exact_quantile xs q) <= (tol *. (hi -. lo)) +. 1e-9

let test_sketch_exact_first_five () =
  (* Fewer than five observations: the estimate is the interpolated
     order statistic, bit-for-bit what Summary.quantile computes. *)
  List.iter
    (fun xs ->
      List.iter
        (fun qv ->
          let q = Sketch.Quantile.create ~q:qv in
          List.iter (Sketch.Quantile.add q) xs;
          Alcotest.(check bool)
            (Printf.sprintf "q=%.2f exact on %d obs" qv (List.length xs))
            true
            (feq (Sketch.Quantile.estimate q) (exact_quantile xs qv)))
        [ 0.25; 0.5; 0.95 ])
    [ [ 7.0 ]; [ 3.0; 1.0 ]; [ 5.0; 1.0; 4.0; 2.0 ]; [ 9.0; 2.0; 7.0; 1.0; 5.0 ] ]

let test_sketch_welford_matches_summary () =
  let xs = List.init 100 (fun i -> float_of_int ((i * 37) mod 100) /. 3.0) in
  let s = sketch_of xs in
  let exact = Summary.of_list xs in
  Alcotest.(check int) "count" 100 (Sketch.count s);
  Alcotest.(check bool) "mean" true (feq ~eps:1e-6 (Sketch.mean s) exact.Summary.mean);
  Alcotest.(check bool) "stddev" true
    (feq ~eps:1e-6 (Sketch.stddev s) exact.Summary.stddev);
  Alcotest.(check bool) "min" true (feq (Sketch.min_value s) exact.Summary.min);
  Alcotest.(check bool) "max" true (feq (Sketch.max_value s) exact.Summary.max);
  let strm = Sketch.to_summary s in
  Alcotest.(check bool) "to_summary mean" true
    (feq ~eps:1e-6 strm.Summary.mean exact.Summary.mean);
  Alcotest.(check bool) "to_summary p50 close" true
    (p2_close xs 0.5 strm.Summary.p50)

let test_sketch_empty_and_errors () =
  let s = Sketch.create () in
  Alcotest.(check int) "count" 0 (Sketch.count s);
  Alcotest.(check bool) "mean 0 when empty" true (feq (Sketch.mean s) 0.0);
  Alcotest.(check bool) "variance 0 when empty" true (feq (Sketch.variance s) 0.0);
  Alcotest.check_raises "min_value empty"
    (Invalid_argument "Sketch.min_value: empty") (fun () ->
      ignore (Sketch.min_value s));
  Alcotest.check_raises "quantile q out of range"
    (Invalid_argument "Sketch.Quantile.create: q must be in (0, 1)") (fun () ->
      ignore (Sketch.Quantile.create ~q:1.0))

let test_sketch_constant_stream () =
  let xs = List.init 64 (fun _ -> 42.0) in
  let strm = Sketch.to_summary (sketch_of xs) in
  List.iter
    (fun (name, v) -> Alcotest.(check bool) name true (feq v 42.0))
    [ ("mean", strm.Summary.mean); ("p50", strm.Summary.p50);
      ("p95", strm.Summary.p95); ("p99", strm.Summary.p99);
      ("min", strm.Summary.min); ("max", strm.Summary.max) ];
  Alcotest.(check bool) "stddev 0" true (feq strm.Summary.stddev 0.0)

let sketch_qcheck_tests =
  let open QCheck in
  let sample_gen = list_of_size Gen.(8 -- 400) (float_range 0.0 1000.0) in
  let quantiles_close ?adversarial name order =
    Test.make ~name ~count:150 sample_gen (fun raw ->
        let xs = order raw in
        let strm = Sketch.to_summary (sketch_of xs) in
        p2_close ?adversarial xs 0.5 strm.Summary.p50
        && p2_close ?adversarial xs 0.95 strm.Summary.p95
        && p2_close ?adversarial xs 0.99 strm.Summary.p99)
  in
  [ quantiles_close "sketch quantiles close (random order)" Fun.id;
    quantiles_close ~adversarial:true "sketch quantiles close (sorted)"
      (List.sort Float.compare);
    quantiles_close ~adversarial:true "sketch quantiles close (reversed)"
      (fun xs -> List.rev (List.sort Float.compare xs));
    quantiles_close "sketch quantiles close (constant)" (fun xs ->
        List.map (fun _ -> 17.5) xs);
    Test.make ~name:"sketch mean/stddev match Summary" ~count:150 sample_gen
      (fun xs ->
        let strm = Sketch.to_summary (sketch_of xs) in
        let exact = Summary.of_list xs in
        feq ~eps:1e-6 strm.Summary.mean exact.Summary.mean
        && feq ~eps:1e-6 strm.Summary.stddev exact.Summary.stddev
        && feq strm.Summary.min exact.Summary.min
        && feq strm.Summary.max exact.Summary.max) ]

(* --- QCheck properties ------------------------------------------------- *)

let qcheck_tests =
  let open QCheck in
  [ Test.make ~name:"summary mean within [min,max]" ~count:200
      (list_of_size Gen.(1 -- 50) (float_range (-1000.0) 1000.0))
      (fun xs ->
        xs = []
        ||
        let s = Summary.of_list xs in
        s.Summary.mean >= s.Summary.min -. 1e-9
        && s.Summary.mean <= s.Summary.max +. 1e-9);
    Test.make ~name:"quantiles monotone" ~count:200
      (list_of_size Gen.(1 -- 50) (float_range 0.0 100.0))
      (fun xs ->
        xs = []
        ||
        let s = Summary.of_list xs in
        s.Summary.p50 <= s.Summary.p95 +. 1e-9
        && s.Summary.p95 <= s.Summary.p99 +. 1e-9);
    Test.make ~name:"wilson interval ordered" ~count:200
      (pair (int_range 0 100) (int_range 1 100))
      (fun (s, t) ->
        let s = min s t in
        let lo, hi = Binomial.wilson_interval ~successes:s ~trials:t ~z:1.96 in
        lo <= hi);
    Test.make ~name:"histogram total = additions" ~count:100
      (list_of_size Gen.(0 -- 100) (int_range 0 20))
      (fun xs ->
        let h = Histogram.create () in
        Histogram.add_many h xs;
        Histogram.total h = List.length xs);
  ]

let () =
  let qcheck =
    List.map
      (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xba008 |]))
      qcheck_tests
  in
  Alcotest.run "stats"
    [ ( "summary",
        [ Alcotest.test_case "basic" `Quick test_summary_basic;
          Alcotest.test_case "single" `Quick test_summary_single;
          Alcotest.test_case "empty" `Quick test_summary_empty;
          Alcotest.test_case "quantile interpolation" `Quick test_quantile_interpolation;
          Alcotest.test_case "of_ints" `Quick test_summary_of_ints ] );
      ( "binomial",
        [ Alcotest.test_case "pmf sums to one" `Quick test_binomial_pmf_sums_to_one;
          Alcotest.test_case "pmf known value" `Quick test_binomial_pmf_known_value;
          Alcotest.test_case "cdf monotone" `Quick test_binomial_cdf_monotone;
          Alcotest.test_case "tails complement" `Quick test_binomial_tails_complement;
          Alcotest.test_case "degenerate p" `Quick test_binomial_degenerate_p;
          Alcotest.test_case "wilson contains phat" `Quick test_wilson_contains_phat;
          Alcotest.test_case "wilson extremes" `Quick test_wilson_extremes ] );
      ( "chernoff",
        [ Alcotest.test_case "shrinks with mu" `Quick test_chernoff_bounds_shrink_with_mu;
          Alcotest.test_case "band contains lambda" `Quick test_chernoff_band_contains_lambda;
          Alcotest.test_case "band empirical" `Quick test_chernoff_band_empirical ] );
      ( "histogram",
        [ Alcotest.test_case "counts" `Quick test_histogram_counts;
          Alcotest.test_case "bins sorted" `Quick test_histogram_bins_sorted;
          Alcotest.test_case "render" `Quick test_histogram_render_nonempty ] );
      ( "table",
        [ Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "arity check" `Quick test_table_arity_check;
          Alcotest.test_case "formatting" `Quick test_table_fmt ] );
      ( "sketch",
        Alcotest.test_case "exact for first five" `Quick
          test_sketch_exact_first_five
        :: Alcotest.test_case "welford matches summary" `Quick
             test_sketch_welford_matches_summary
        :: Alcotest.test_case "empty and errors" `Quick
             test_sketch_empty_and_errors
        :: Alcotest.test_case "constant stream" `Quick
             test_sketch_constant_stream
           (* Fixed RNG: the P² tolerance bounds are empirical, and the
              extreme tail of random streams occasionally lands outside
              them. A pinned seed keeps the 150-case sweep meaningful
              without turning CI into a coin flip. *)
        :: List.map
             (QCheck_alcotest.to_alcotest
                ~rand:(Random.State.make [| 20260808 |]))
             sketch_qcheck_tests );
      ("properties", qcheck) ]
