(* Tests for the telemetry layer (Baobs) and its engine integration:
   JSON round-trips, metric series vs. Metrics aggregates, JSONL trace
   sinks, ring buffers, and probe spans. *)

open Basim
open Bacore

let passive () = Engine.passive ~name:"none" ~model:Corruption.Adaptive

(* --- Json ------------------------------------------------------------------ *)

let sample_json =
  Baobs.Json.(
    Obj
      [ ("null", Null);
        ("bool", Bool true);
        ("int", Int (-42));
        ("float", Float 3.25);
        ("mean", Float 117.09999999999991);
        ("string", String "quote \" backslash \\ newline \n tab \t");
        ("list", List [ Int 1; Float 2.5; String "x"; Obj [] ]);
        ("nested", Obj [ ("inner", List [ Bool false; Null ]) ]) ])

let test_json_roundtrip () =
  let s = Baobs.Json.to_string sample_json in
  let parsed = Baobs.Json.of_string s in
  Alcotest.(check bool) "roundtrip equal" true (parsed = sample_json);
  Alcotest.(check string) "stable reprint" s (Baobs.Json.to_string parsed)

let test_json_parse_whitespace () =
  let parsed =
    Baobs.Json.of_string "  { \"a\" : [ 1 , 2.0 ,\n \"b\" ] , \"c\": null } "
  in
  Baobs.Json.(
    Alcotest.(check bool) "parsed" true
      (parsed = Obj [ ("a", List [ Int 1; Float 2.0; String "b" ]); ("c", Null) ]))

let test_json_parse_errors () =
  let bad s =
    match Baobs.Json.of_string s with
    | exception Baobs.Json.Parse_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "trailing garbage" true (bad "{} x");
  Alcotest.(check bool) "unterminated string" true (bad "\"abc");
  Alcotest.(check bool) "bare word" true (bad "bogus")

let test_rates_json_roundtrip () =
  let rates =
    { Baexperiments.Common.trials = 10;
      consistency_fail = 1;
      validity_fail = 0;
      termination_fail = 2;
      total_rounds = 115;
      total_multicasts = 1171;
      total_multicast_bits = 62124;
      total_unicasts = 0;
      total_removals = 400;
      total_corruptions = 400 }
  in
  let json = Baexperiments.Common.rates_to_json rates in
  let parsed = Baobs.Json.of_string (Baobs.Json.to_string json) in
  Alcotest.(check bool) "rates roundtrip" true (parsed = json);
  Alcotest.(check int) "trials"
    10
    Baobs.Json.(as_int (member_exn "trials" parsed));
  Alcotest.(check (float 1e-9)) "mean_multicasts" 117.1
    Baobs.Json.(as_float (member_exn "mean_multicasts" parsed))

(* --- Ring ------------------------------------------------------------------ *)

let test_ring_drops_oldest () =
  let r = Baobs.Ring.create ~capacity:5 in
  for i = 1 to 8 do
    Baobs.Ring.add r i
  done;
  Alcotest.(check (list int)) "last five, oldest first" [ 4; 5; 6; 7; 8 ]
    (Baobs.Ring.to_list r);
  Alcotest.(check int) "length" 5 (Baobs.Ring.length r);
  Alcotest.(check int) "dropped" 3 (Baobs.Ring.dropped r)

let test_trace_ring () =
  let ring = Trace.ring ~capacity:3 in
  for round = 0 to 9 do
    Trace.observe_ring ring (Trace.Round_started { round })
  done;
  Alcotest.(check int) "dropped" 7 (Trace.ring_dropped ring);
  Alcotest.(check (list int)) "latest rounds retained" [ 7; 8; 9 ]
    (List.map Trace.round_of (Trace.ring_events ring))

(* --- Probe ----------------------------------------------------------------- *)

let test_probe_spans () =
  let p = Baobs.Probe.register "test.span" in
  Baobs.Probe.reset ();
  (* Disabled: nothing records. *)
  Baobs.Probe.disable ();
  Baobs.Probe.time p (fun () -> ignore (Sys.opaque_identity (1 + 1)));
  Alcotest.(check bool) "disabled records nothing" true
    (not (List.exists (fun (n, _, _) -> n = "test.span") (Baobs.Probe.snapshot ())));
  (* Enabled: counts and accumulates. *)
  Baobs.Probe.enable ();
  for _ = 1 to 3 do
    Baobs.Probe.time p (fun () -> ignore (Sys.opaque_identity (String.make 64 'x')))
  done;
  Baobs.Probe.disable ();
  (match List.find_opt (fun (n, _, _) -> n = "test.span") (Baobs.Probe.snapshot ()) with
  | Some (_, count, total_ns) ->
      Alcotest.(check int) "three spans" 3 count;
      Alcotest.(check bool) "nonnegative time" true (total_ns >= 0.0)
  | None -> Alcotest.fail "probe missing from snapshot");
  (* Snapshot survives a JSON round-trip. *)
  let json = Baobs.Probe.to_json () in
  Alcotest.(check bool) "span json roundtrip" true
    (Baobs.Json.of_string (Baobs.Json.to_string json) = json);
  Baobs.Probe.reset ()

(* Two domains hammering the same probe: the registry is mutex-guarded,
   so no tick and no span may be lost or torn — the totals after the
   join are exact. This is the data race trial-level parallelism would
   hit with the old unguarded registry. *)
let test_probe_two_domain_hammer () =
  let ticks_per_domain = 50_000 and spans_per_domain = 2_000 in
  let p = Baobs.Probe.register "test.hammer" in
  Baobs.Probe.reset ();
  Baobs.Probe.enable ();
  let hammer () =
    for _ = 1 to ticks_per_domain do
      Baobs.Probe.tick p
    done;
    for _ = 1 to spans_per_domain do
      Baobs.Probe.time p (fun () -> ignore (Sys.opaque_identity (1 + 1)))
    done
  in
  let d1 = Domain.spawn hammer and d2 = Domain.spawn hammer in
  (* The main domain hammers too, and concurrently registers fresh
     probes to exercise the registry lock alongside the counter locks. *)
  for i = 1 to 100 do
    ignore (Baobs.Probe.register (Printf.sprintf "test.hammer.aux%d" i))
  done;
  hammer ();
  Domain.join d1;
  Domain.join d2;
  Baobs.Probe.disable ();
  (match
     List.find_opt
       (fun (n, _, _) -> n = "test.hammer")
       (Baobs.Probe.snapshot ())
   with
  | Some (_, count, total_ns) ->
      Alcotest.(check int) "exact count, no torn updates"
        (3 * (ticks_per_domain + spans_per_domain))
        count;
      Alcotest.(check bool) "nonnegative time" true (total_ns >= 0.0)
  | None -> Alcotest.fail "hammered probe missing from snapshot");
  Baobs.Probe.reset ()

(* --- Series vs Metrics ----------------------------------------------------- *)

let run_sub_hm_with_series ~n ~lambda ~max_epochs ~budget ~adversary ~inputs
    ~seed =
  let params = Params.make ~lambda ~max_epochs () in
  let proto = Sub_hm.protocol ~params ~world:`Hybrid in
  let series = Baobs.Series.create ~n in
  let buf = Buffer.create 4096 in
  let sink = Baobs.Jsonl.to_buffer buf in
  let result =
    Engine.run
      ~tracer:(Trace.jsonl_tracer sink)
      ~series proto ~adversary ~n ~budget ~inputs
      ~max_rounds:((4 * max_epochs) + 12) ~seed
  in
  (result, series, Buffer.contents buf)

(* Rebuild Definition-7 aggregates from a JSONL trace: erased honest
   sends appear as [removed] events carrying their shape. *)
type replay = {
  mutable r_multicasts : int;
  mutable r_multicast_bits : int;
  mutable r_unicasts : int;
  mutable r_removals : int;
  mutable r_injections : int;
}

let replay_of_jsonl text =
  let totals =
    { r_multicasts = 0;
      r_multicast_bits = 0;
      r_unicasts = 0;
      r_removals = 0;
      r_injections = 0 }
  in
  let per_round : (int, int * int) Hashtbl.t = Hashtbl.create 64 in
  let lines = String.split_on_char '\n' text in
  List.iter
    (fun line ->
      if String.length line > 0 then begin
        let j = Baobs.Json.of_string line in
        let event = Baobs.Json.(as_string (member_exn "event" j)) in
        let round () = Baobs.Json.(as_int (member_exn "round" j)) in
        let honest_send () =
          let multicast = Baobs.Json.(as_bool (member_exn "multicast" j)) in
          let bits = Baobs.Json.(as_int (member_exn "bits" j)) in
          let recipients = Baobs.Json.(as_int (member_exn "recipients" j)) in
          if multicast then begin
            totals.r_multicasts <- totals.r_multicasts + 1;
            totals.r_multicast_bits <- totals.r_multicast_bits + bits;
            let mc, mb =
              match Hashtbl.find_opt per_round (round ()) with
              | Some x -> x
              | None -> (0, 0)
            in
            Hashtbl.replace per_round (round ()) (mc + 1, mb + bits)
          end
          else totals.r_unicasts <- totals.r_unicasts + recipients
        in
        match event with
        | "sent" -> honest_send ()
        | "removed" ->
            totals.r_removals <- totals.r_removals + 1;
            honest_send ()
        | "injected" -> totals.r_injections <- totals.r_injections + 1
        | _ -> ()
      end)
    lines;
  (totals, per_round)

let check_trace_matches_metrics name (result : Engine.result) series jsonl =
  let m = result.Engine.metrics in
  let totals, per_round = replay_of_jsonl jsonl in
  Alcotest.(check int) (name ^ ": multicasts") (Metrics.honest_multicasts m)
    totals.r_multicasts;
  Alcotest.(check int)
    (name ^ ": multicast bits")
    (Metrics.honest_multicast_bits m)
    totals.r_multicast_bits;
  Alcotest.(check int) (name ^ ": unicasts") (Metrics.honest_unicasts m)
    totals.r_unicasts;
  Alcotest.(check int) (name ^ ": removals") (Metrics.removals m)
    totals.r_removals;
  Alcotest.(check int) (name ^ ": injections") (Metrics.injections m)
    totals.r_injections;
  (* Each JSONL line must be an object tagged with an event kind; the
     per-round totals must agree with the metric series cell sums. *)
  for round = 0 to Metrics.rounds m - 1 do
    let mc, mb =
      match Hashtbl.find_opt per_round round with Some x -> x | None -> (0, 0)
    in
    Alcotest.(check int)
      (Printf.sprintf "%s: round %d multicasts" name round)
      (Baobs.Series.round_total series ~round Baobs.Series.Multicast)
      mc;
    Alcotest.(check int)
      (Printf.sprintf "%s: round %d multicast bits" name round)
      (Baobs.Series.round_total series ~round Baobs.Series.Multicast_bits)
      mb
  done;
  match Metrics.agrees_with_series m series with
  | Ok () -> ()
  | Error msg -> Alcotest.fail (name ^ ": series disagrees: " ^ msg)

let test_series_matches_metrics_e1 () =
  (* E1 scenario: strongly adaptive eraser vs sub-hm — exercises
     removals, dynamic corruptions, and the erased-send accounting. *)
  let result, series, jsonl =
    run_sub_hm_with_series ~n:101 ~lambda:20 ~max_epochs:5 ~budget:30
      ~adversary:(Baattacks.Eraser.make ())
      ~inputs:(Scenario.unanimous_inputs ~n:101 true)
      ~seed:7L
  in
  Alcotest.(check bool) "some removals happened" true
    (Metrics.removals result.Engine.metrics > 0);
  check_trace_matches_metrics "e1" result series jsonl;
  Alcotest.(check int) "series corruption total = tracker count"
    result.Engine.corruptions
    (Baobs.Series.total series Baobs.Series.Corruption)

let test_series_matches_metrics_e2 () =
  (* E2 scenario: passive multicast-scaling run. *)
  let result, series, jsonl =
    run_sub_hm_with_series ~n:201 ~lambda:20 ~max_epochs:10 ~budget:0
      ~adversary:(passive ())
      ~inputs:(Scenario.split_inputs ~n:201)
      ~seed:2L
  in
  Alcotest.(check bool) "decided" true result.Engine.all_honest_decided;
  check_trace_matches_metrics "e2" result series jsonl;
  (* Round sums across the whole series reproduce the aggregate. *)
  let sum = ref 0 in
  for round = -1 to Baobs.Series.max_round series do
    sum := !sum + Baobs.Series.round_total series ~round Baobs.Series.Multicast
  done;
  Alcotest.(check int) "per-round sums = aggregate"
    (Metrics.honest_multicasts result.Engine.metrics)
    !sum

let test_series_json_and_csv () =
  let result, series, _ =
    run_sub_hm_with_series ~n:101 ~lambda:20 ~max_epochs:5 ~budget:0
      ~adversary:(passive ())
      ~inputs:(Scenario.unanimous_inputs ~n:101 false)
      ~seed:3L
  in
  let json = Baobs.Series.to_json series in
  let parsed = Baobs.Json.of_string (Baobs.Json.to_string json) in
  Alcotest.(check bool) "series json roundtrip" true (parsed = json);
  let totals = Baobs.Json.member_exn "totals" parsed in
  Alcotest.(check int) "json totals match metrics"
    (Metrics.honest_multicasts result.Engine.metrics)
    Baobs.Json.(as_int (member_exn "multicasts" totals));
  (* CSV: header plus one row per (round, node) cell group, each row
     with the full kind column set. *)
  let csv = Baobs.Series.to_csv series in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' csv)
  in
  (match lines with
  | header :: rows ->
      Alcotest.(check int) "csv columns" 10
        (List.length (String.split_on_char ',' header));
      Alcotest.(check bool) "csv has rows" true (List.length rows > 0);
      List.iter
        (fun row ->
          Alcotest.(check int) "row arity" 10
            (List.length (String.split_on_char ',' row)))
        rows
  | [] -> Alcotest.fail "empty csv")

let test_jsonl_sink_valid_lines () =
  let _, _, jsonl =
    run_sub_hm_with_series ~n:101 ~lambda:20 ~max_epochs:5 ~budget:30
      ~adversary:(Baattacks.Eraser.make ())
      ~inputs:(Scenario.unanimous_inputs ~n:101 true)
      ~seed:7L
  in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' jsonl)
  in
  Alcotest.(check bool) "nonempty trace" true (List.length lines > 0);
  List.iter
    (fun line ->
      match Baobs.Json.of_string line with
      | Baobs.Json.Obj _ as j ->
          let kind = Baobs.Json.(as_string (member_exn "event" j)) in
          Alcotest.(check bool) ("known kind " ^ kind) true
            (List.mem kind
               [ "round_started"; "sent"; "corrupted"; "removed"; "injected";
                 "halted" ])
      | _ -> Alcotest.fail "JSONL line is not an object")
    lines

let test_jsonl_filters () =
  let buf = Buffer.create 256 in
  let sink = Baobs.Jsonl.to_buffer buf in
  let tracer =
    Trace.jsonl_tracer ~kinds:[ "sent" ] ~min_round:1 ~max_round:2 sink
  in
  tracer (Trace.Round_started { round = 1 });
  tracer (Trace.Sent { round = 0; node = 0; multicast = true; recipients = 5; bits = 8 });
  tracer (Trace.Sent { round = 1; node = 1; multicast = true; recipients = 5; bits = 8 });
  tracer (Trace.Sent { round = 2; node = 2; multicast = false; recipients = 1; bits = 8 });
  tracer (Trace.Sent { round = 3; node = 3; multicast = true; recipients = 5; bits = 8 });
  Alcotest.(check int) "two lines pass the filters" 2 (Baobs.Jsonl.emitted sink);
  let nodes =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
    |> List.map (fun l ->
           Baobs.Json.(as_int (member_exn "node" (of_string l))))
  in
  Alcotest.(check (list int)) "rounds 1-2 only" [ 1; 2 ] nodes

(* --- Trace collector fixes -------------------------------------------------- *)

let test_collector_memoized_events () =
  let c = Trace.collector () in
  for round = 0 to 99 do
    Trace.observe c (Trace.Round_started { round })
  done;
  let a = Trace.events c in
  let b = Trace.events c in
  Alcotest.(check bool) "memoized list reused" true (a == b);
  Alcotest.(check int) "count without events" 100
    (Trace.count c (function Trace.Round_started _ -> true | _ -> false));
  Trace.observe c (Trace.Round_started { round = 100 });
  Alcotest.(check int) "cache invalidated on observe" 101
    (List.length (Trace.events c));
  Alcotest.(check int) "length" 101 (Trace.length c)

let () =
  Alcotest.run "obs"
    [ ( "json",
        [ Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "whitespace" `Quick test_json_parse_whitespace;
          Alcotest.test_case "errors" `Quick test_json_parse_errors;
          Alcotest.test_case "rates" `Quick test_rates_json_roundtrip ] );
      ( "ring",
        [ Alcotest.test_case "drops oldest" `Quick test_ring_drops_oldest;
          Alcotest.test_case "trace ring" `Quick test_trace_ring ] );
      ( "probe",
        [ Alcotest.test_case "spans" `Quick test_probe_spans;
          Alcotest.test_case "two-domain hammer" `Quick
            test_probe_two_domain_hammer ] );
      ( "series",
        [ Alcotest.test_case "e1 eraser scenario" `Quick
            test_series_matches_metrics_e1;
          Alcotest.test_case "e2 passive scenario" `Quick
            test_series_matches_metrics_e2;
          Alcotest.test_case "json + csv export" `Quick test_series_json_and_csv ] );
      ( "jsonl",
        [ Alcotest.test_case "valid lines" `Quick test_jsonl_sink_valid_lines;
          Alcotest.test_case "filters" `Quick test_jsonl_filters ] );
      ( "collector",
        [ Alcotest.test_case "memoization" `Quick test_collector_memoized_events ] ) ]
