(* Tests for the telemetry layer (Baobs) and its engine integration:
   JSON round-trips, metric series vs. Metrics aggregates, JSONL trace
   sinks, ring buffers, and probe spans. *)

open Basim
open Bacore

let passive () = Engine.passive ~name:"none" ~model:Corruption.Adaptive

(* --- Json ------------------------------------------------------------------ *)

let sample_json =
  Baobs.Json.(
    Obj
      [ ("null", Null);
        ("bool", Bool true);
        ("int", Int (-42));
        ("float", Float 3.25);
        ("mean", Float 117.09999999999991);
        ("string", String "quote \" backslash \\ newline \n tab \t");
        ("list", List [ Int 1; Float 2.5; String "x"; Obj [] ]);
        ("nested", Obj [ ("inner", List [ Bool false; Null ]) ]) ])

let test_json_roundtrip () =
  let s = Baobs.Json.to_string sample_json in
  let parsed = Baobs.Json.of_string s in
  Alcotest.(check bool) "roundtrip equal" true (parsed = sample_json);
  Alcotest.(check string) "stable reprint" s (Baobs.Json.to_string parsed)

let test_json_parse_whitespace () =
  let parsed =
    Baobs.Json.of_string "  { \"a\" : [ 1 , 2.0 ,\n \"b\" ] , \"c\": null } "
  in
  Baobs.Json.(
    Alcotest.(check bool) "parsed" true
      (parsed = Obj [ ("a", List [ Int 1; Float 2.0; String "b" ]); ("c", Null) ]))

let test_json_parse_errors () =
  let bad s =
    match Baobs.Json.of_string s with
    | exception Baobs.Json.Parse_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "trailing garbage" true (bad "{} x");
  Alcotest.(check bool) "unterminated string" true (bad "\"abc");
  Alcotest.(check bool) "bare word" true (bad "bogus")

let test_rates_json_roundtrip () =
  let rates =
    { Baexperiments.Common.trials = 10;
      consistency_fail = 1;
      validity_fail = 0;
      termination_fail = 2;
      total_rounds = 115;
      total_multicasts = 1171;
      total_multicast_bits = 62124;
      total_unicasts = 0;
      total_removals = 400;
      total_corruptions = 400 }
  in
  let json = Baexperiments.Common.rates_to_json rates in
  let parsed = Baobs.Json.of_string (Baobs.Json.to_string json) in
  Alcotest.(check bool) "rates roundtrip" true (parsed = json);
  Alcotest.(check int) "trials"
    10
    Baobs.Json.(as_int (member_exn "trials" parsed));
  Alcotest.(check (float 1e-9)) "mean_multicasts" 117.1
    Baobs.Json.(as_float (member_exn "mean_multicasts" parsed))

(* --- Ring ------------------------------------------------------------------ *)

let test_ring_drops_oldest () =
  let r = Baobs.Ring.create ~capacity:5 in
  for i = 1 to 8 do
    Baobs.Ring.add r i
  done;
  Alcotest.(check (list int)) "last five, oldest first" [ 4; 5; 6; 7; 8 ]
    (Baobs.Ring.to_list r);
  Alcotest.(check int) "length" 5 (Baobs.Ring.length r);
  Alcotest.(check int) "dropped" 3 (Baobs.Ring.dropped r)

let test_trace_ring () =
  let ring = Trace.ring ~capacity:3 in
  for round = 0 to 9 do
    Trace.observe_ring ring (Trace.Round_started { round })
  done;
  Alcotest.(check int) "dropped" 7 (Trace.ring_dropped ring);
  Alcotest.(check (list int)) "latest rounds retained" [ 7; 8; 9 ]
    (List.map Trace.round_of (Trace.ring_events ring))

(* --- Probe ----------------------------------------------------------------- *)

let test_probe_spans () =
  let p = Baobs.Probe.register "test.span" in
  Baobs.Probe.reset ();
  (* Disabled: nothing records. *)
  Baobs.Probe.disable ();
  Baobs.Probe.time p (fun () -> ignore (Sys.opaque_identity (1 + 1)));
  Alcotest.(check bool) "disabled records nothing" true
    (not (List.exists (fun (n, _, _) -> n = "test.span") (Baobs.Probe.snapshot ())));
  (* Enabled: counts and accumulates. *)
  Baobs.Probe.enable ();
  for _ = 1 to 3 do
    Baobs.Probe.time p (fun () -> ignore (Sys.opaque_identity (String.make 64 'x')))
  done;
  Baobs.Probe.disable ();
  (match List.find_opt (fun (n, _, _) -> n = "test.span") (Baobs.Probe.snapshot ()) with
  | Some (_, count, total_ns) ->
      Alcotest.(check int) "three spans" 3 count;
      Alcotest.(check bool) "nonnegative time" true (total_ns >= 0.0)
  | None -> Alcotest.fail "probe missing from snapshot");
  (* Snapshot survives a JSON round-trip. *)
  let json = Baobs.Probe.to_json () in
  Alcotest.(check bool) "span json roundtrip" true
    (Baobs.Json.of_string (Baobs.Json.to_string json) = json);
  Baobs.Probe.reset ()

(* Two domains hammering the same probe: the registry is mutex-guarded,
   so no tick and no span may be lost or torn — the totals after the
   join are exact. This is the data race trial-level parallelism would
   hit with the old unguarded registry. *)
let test_probe_two_domain_hammer () =
  let ticks_per_domain = 50_000 and spans_per_domain = 2_000 in
  let p = Baobs.Probe.register "test.hammer" in
  Baobs.Probe.reset ();
  Baobs.Probe.enable ();
  let hammer () =
    for _ = 1 to ticks_per_domain do
      Baobs.Probe.tick p
    done;
    for _ = 1 to spans_per_domain do
      Baobs.Probe.time p (fun () -> ignore (Sys.opaque_identity (1 + 1)))
    done
  in
  let d1 = Domain.spawn hammer and d2 = Domain.spawn hammer in
  (* The main domain hammers too, and concurrently registers fresh
     probes to exercise the registry lock alongside the counter locks. *)
  for i = 1 to 100 do
    ignore (Baobs.Probe.register (Printf.sprintf "test.hammer.aux%d" i))
  done;
  hammer ();
  Domain.join d1;
  Domain.join d2;
  Baobs.Probe.disable ();
  (match
     List.find_opt
       (fun (n, _, _) -> n = "test.hammer")
       (Baobs.Probe.snapshot ())
   with
  | Some (_, count, total_ns) ->
      Alcotest.(check int) "exact count, no torn updates"
        (3 * (ticks_per_domain + spans_per_domain))
        count;
      Alcotest.(check bool) "nonnegative time" true (total_ns >= 0.0)
  | None -> Alcotest.fail "hammered probe missing from snapshot");
  Baobs.Probe.reset ()

(* --- Series vs Metrics ----------------------------------------------------- *)

let run_sub_hm_with_series ~n ~lambda ~max_epochs ~budget ~adversary ~inputs
    ~seed =
  let params = Params.make ~lambda ~max_epochs () in
  let proto = Sub_hm.protocol ~params ~world:`Hybrid in
  let series = Baobs.Series.create ~n in
  let buf = Buffer.create 4096 in
  let sink = Baobs.Jsonl.to_buffer buf in
  let result =
    Engine.run
      ~tracer:(Trace.jsonl_tracer sink)
      ~series proto ~adversary ~n ~budget ~inputs
      ~max_rounds:((4 * max_epochs) + 12) ~seed
  in
  (result, series, Buffer.contents buf)

(* Rebuild Definition-7 aggregates from a JSONL trace: erased honest
   sends appear as [removed] events carrying their shape. *)
type replay = {
  mutable r_multicasts : int;
  mutable r_multicast_bits : int;
  mutable r_unicasts : int;
  mutable r_removals : int;
  mutable r_injections : int;
}

let replay_of_jsonl text =
  let totals =
    { r_multicasts = 0;
      r_multicast_bits = 0;
      r_unicasts = 0;
      r_removals = 0;
      r_injections = 0 }
  in
  let per_round : (int, int * int) Hashtbl.t = Hashtbl.create 64 in
  let lines = String.split_on_char '\n' text in
  List.iter
    (fun line ->
      if String.length line > 0 then begin
        let j = Baobs.Json.of_string line in
        let event = Baobs.Json.(as_string (member_exn "event" j)) in
        let round () = Baobs.Json.(as_int (member_exn "round" j)) in
        let honest_send () =
          let multicast = Baobs.Json.(as_bool (member_exn "multicast" j)) in
          let bits = Baobs.Json.(as_int (member_exn "bits" j)) in
          let recipients = Baobs.Json.(as_int (member_exn "recipients" j)) in
          if multicast then begin
            totals.r_multicasts <- totals.r_multicasts + 1;
            totals.r_multicast_bits <- totals.r_multicast_bits + bits;
            let mc, mb =
              match Hashtbl.find_opt per_round (round ()) with
              | Some x -> x
              | None -> (0, 0)
            in
            Hashtbl.replace per_round (round ()) (mc + 1, mb + bits)
          end
          else totals.r_unicasts <- totals.r_unicasts + recipients
        in
        match event with
        | "sent" -> honest_send ()
        | "removed" ->
            totals.r_removals <- totals.r_removals + 1;
            honest_send ()
        | "injected" -> totals.r_injections <- totals.r_injections + 1
        | _ -> ()
      end)
    lines;
  (totals, per_round)

let check_trace_matches_metrics name (result : Engine.result) series jsonl =
  let m = result.Engine.metrics in
  let totals, per_round = replay_of_jsonl jsonl in
  Alcotest.(check int) (name ^ ": multicasts") (Metrics.honest_multicasts m)
    totals.r_multicasts;
  Alcotest.(check int)
    (name ^ ": multicast bits")
    (Metrics.honest_multicast_bits m)
    totals.r_multicast_bits;
  Alcotest.(check int) (name ^ ": unicasts") (Metrics.honest_unicasts m)
    totals.r_unicasts;
  Alcotest.(check int) (name ^ ": removals") (Metrics.removals m)
    totals.r_removals;
  Alcotest.(check int) (name ^ ": injections") (Metrics.injections m)
    totals.r_injections;
  (* Each JSONL line must be an object tagged with an event kind; the
     per-round totals must agree with the metric series cell sums. *)
  for round = 0 to Metrics.rounds m - 1 do
    let mc, mb =
      match Hashtbl.find_opt per_round round with Some x -> x | None -> (0, 0)
    in
    Alcotest.(check int)
      (Printf.sprintf "%s: round %d multicasts" name round)
      (Baobs.Series.round_total series ~round Baobs.Series.Multicast)
      mc;
    Alcotest.(check int)
      (Printf.sprintf "%s: round %d multicast bits" name round)
      (Baobs.Series.round_total series ~round Baobs.Series.Multicast_bits)
      mb
  done;
  match Metrics.agrees_with_series m series with
  | Ok () -> ()
  | Error msg -> Alcotest.fail (name ^ ": series disagrees: " ^ msg)

let test_series_matches_metrics_e1 () =
  (* E1 scenario: strongly adaptive eraser vs sub-hm — exercises
     removals, dynamic corruptions, and the erased-send accounting. *)
  let result, series, jsonl =
    run_sub_hm_with_series ~n:101 ~lambda:20 ~max_epochs:5 ~budget:30
      ~adversary:(Baattacks.Eraser.make ())
      ~inputs:(Scenario.unanimous_inputs ~n:101 true)
      ~seed:7L
  in
  Alcotest.(check bool) "some removals happened" true
    (Metrics.removals result.Engine.metrics > 0);
  check_trace_matches_metrics "e1" result series jsonl;
  Alcotest.(check int) "series corruption total = tracker count"
    result.Engine.corruptions
    (Baobs.Series.total series Baobs.Series.Corruption)

let test_series_matches_metrics_e2 () =
  (* E2 scenario: passive multicast-scaling run. *)
  let result, series, jsonl =
    run_sub_hm_with_series ~n:201 ~lambda:20 ~max_epochs:10 ~budget:0
      ~adversary:(passive ())
      ~inputs:(Scenario.split_inputs ~n:201)
      ~seed:2L
  in
  Alcotest.(check bool) "decided" true result.Engine.all_honest_decided;
  check_trace_matches_metrics "e2" result series jsonl;
  (* Round sums across the whole series reproduce the aggregate. *)
  let sum = ref 0 in
  for round = -1 to Baobs.Series.max_round series do
    sum := !sum + Baobs.Series.round_total series ~round Baobs.Series.Multicast
  done;
  Alcotest.(check int) "per-round sums = aggregate"
    (Metrics.honest_multicasts result.Engine.metrics)
    !sum

let test_series_json_and_csv () =
  let result, series, _ =
    run_sub_hm_with_series ~n:101 ~lambda:20 ~max_epochs:5 ~budget:0
      ~adversary:(passive ())
      ~inputs:(Scenario.unanimous_inputs ~n:101 false)
      ~seed:3L
  in
  let json = Baobs.Series.to_json series in
  let parsed = Baobs.Json.of_string (Baobs.Json.to_string json) in
  Alcotest.(check bool) "series json roundtrip" true (parsed = json);
  let totals = Baobs.Json.member_exn "totals" parsed in
  Alcotest.(check int) "json totals match metrics"
    (Metrics.honest_multicasts result.Engine.metrics)
    Baobs.Json.(as_int (member_exn "multicasts" totals));
  (* CSV: header plus one row per (round, node) cell group, each row
     with the full kind column set. *)
  let csv = Baobs.Series.to_csv series in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' csv)
  in
  (match lines with
  | header :: rows ->
      Alcotest.(check int) "csv columns" 10
        (List.length (String.split_on_char ',' header));
      Alcotest.(check bool) "csv has rows" true (List.length rows > 0);
      List.iter
        (fun row ->
          Alcotest.(check int) "row arity" 10
            (List.length (String.split_on_char ',' row)))
        rows
  | [] -> Alcotest.fail "empty csv")

let test_jsonl_sink_valid_lines () =
  let _, _, jsonl =
    run_sub_hm_with_series ~n:101 ~lambda:20 ~max_epochs:5 ~budget:30
      ~adversary:(Baattacks.Eraser.make ())
      ~inputs:(Scenario.unanimous_inputs ~n:101 true)
      ~seed:7L
  in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' jsonl)
  in
  Alcotest.(check bool) "nonempty trace" true (List.length lines > 0);
  List.iter
    (fun line ->
      match Baobs.Json.of_string line with
      | Baobs.Json.Obj _ as j ->
          let kind = Baobs.Json.(as_string (member_exn "event" j)) in
          Alcotest.(check bool) ("known kind " ^ kind) true
            (List.mem kind
               [ "round_started"; "sent"; "corrupted"; "removed"; "injected";
                 "halted" ])
      | _ -> Alcotest.fail "JSONL line is not an object")
    lines

(* An unlabeled Sent event (the sentinel causal fields of a run without
   causal recording). *)
let sent ~round ~node ~multicast ~recipients =
  Trace.Sent
    { round; node; multicast; recipients; bits = 8; id = Trace.no_id;
      kind = Trace.no_kind; targets = [] }

let test_jsonl_filters () =
  let buf = Buffer.create 256 in
  let sink = Baobs.Jsonl.to_buffer buf in
  let tracer =
    Trace.jsonl_tracer ~kinds:[ "sent" ] ~min_round:1 ~max_round:2 sink
  in
  tracer (Trace.Round_started { round = 1 });
  tracer (sent ~round:0 ~node:0 ~multicast:true ~recipients:5);
  tracer (sent ~round:1 ~node:1 ~multicast:true ~recipients:5);
  tracer (sent ~round:2 ~node:2 ~multicast:false ~recipients:1);
  tracer (sent ~round:3 ~node:3 ~multicast:true ~recipients:5);
  Alcotest.(check int) "two lines pass the filters" 2 (Baobs.Jsonl.emitted sink);
  let nodes =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
    |> List.map (fun l ->
           Baobs.Json.(as_int (member_exn "node" (of_string l))))
  in
  Alcotest.(check (list int)) "rounds 1-2 only" [ 1; 2 ] nodes

(* --- Ring / Csv edge cases -------------------------------------------------- *)

let test_ring_exact_capacity () =
  let r = Baobs.Ring.create ~capacity:4 in
  for i = 1 to 4 do
    Baobs.Ring.add r i
  done;
  Alcotest.(check int) "full, nothing dropped" 0 (Baobs.Ring.dropped r);
  Alcotest.(check int) "length = capacity" 4 (Baobs.Ring.length r);
  Alcotest.(check (list int)) "order preserved" [ 1; 2; 3; 4 ]
    (Baobs.Ring.to_list r);
  (* One past capacity: exactly the oldest is evicted. *)
  Baobs.Ring.add r 5;
  Alcotest.(check int) "first eviction" 1 (Baobs.Ring.dropped r);
  Alcotest.(check (list int)) "window slides" [ 2; 3; 4; 5 ]
    (Baobs.Ring.to_list r)

let test_ring_empty_and_invalid () =
  let r = Baobs.Ring.create ~capacity:3 in
  Alcotest.(check (list int)) "empty" [] (Baobs.Ring.to_list r);
  Alcotest.(check int) "empty length" 0 (Baobs.Ring.length r);
  Alcotest.(check bool) "capacity 0 rejected" true
    (match Baobs.Ring.create ~capacity:0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_csv_quoting () =
  Alcotest.(check string) "plain field untouched" "abc" (Baobs.Csv.field "abc");
  Alcotest.(check string) "comma quoted" "\"a,b\"" (Baobs.Csv.field "a,b");
  Alcotest.(check string) "newline quoted" "\"a\nb\"" (Baobs.Csv.field "a\nb");
  Alcotest.(check string) "quote doubled" "\"a\"\"b\"" (Baobs.Csv.field "a\"b");
  Alcotest.(check string) "row joins quoted cells" "x,\"y,z\",\"q\"\"\""
    (Baobs.Csv.row [ "x"; "y,z"; "q\"" ]);
  Alcotest.(check string) "no rows = header only" "a,b\n"
    (Baobs.Csv.to_string ~header:[ "a"; "b" ] [])

let test_series_empty_exports () =
  let series = Baobs.Series.create ~n:5 in
  let csv = Baobs.Series.to_csv series in
  Alcotest.(check int) "csv is header only" 1
    (List.length (List.filter (fun l -> l <> "") (String.split_on_char '\n' csv)));
  let json = Baobs.Series.to_json series in
  Alcotest.(check int) "zero total"
    0
    Baobs.Json.(
      as_int (member_exn "multicasts" (member_exn "totals" json)));
  Alcotest.(check int) "max_round of empty" (-2) (Baobs.Series.max_round series)

(* --- Probe spans / clamp ---------------------------------------------------- *)

(* Probe timestamps come from wall-clock [Unix.gettimeofday], which can
   step backwards under NTP; a span closed across a step must clamp to
   zero rather than subtract from the cumulative total. We simulate the
   backwards step by closing a span whose open token lies in the
   future. *)
let test_probe_negative_span_clamped () =
  let p = Baobs.Probe.register "test.clamp" in
  Baobs.Probe.reset ();
  Baobs.Probe.enable ();
  let future = (Unix.gettimeofday () *. 1e9) +. 3.6e12 (* one hour ahead *) in
  Baobs.Probe.stop p future;
  Baobs.Probe.disable ();
  (match
     List.find_opt (fun (n, _, _) -> n = "test.clamp") (Baobs.Probe.snapshot ())
   with
  | Some (_, count, total_ns) ->
      Alcotest.(check int) "span still counted" 1 count;
      Alcotest.(check (float 0.0)) "duration clamped to zero" 0.0 total_ns
  | None -> Alcotest.fail "clamped probe missing from snapshot");
  Baobs.Probe.reset ()

let test_probe_span_ring () =
  let p = Baobs.Probe.register "test.spanring" in
  Baobs.Probe.record_spans ~capacity:4;
  Baobs.Probe.reset ();
  Baobs.Probe.enable ();
  for _ = 1 to 6 do
    Baobs.Probe.time p (fun () -> ignore (Sys.opaque_identity (1 + 1)))
  done;
  Baobs.Probe.disable ();
  let spans = Baobs.Probe.spans () in
  Alcotest.(check int) "ring keeps the last capacity spans" 4
    (List.length spans);
  Alcotest.(check int) "two spans evicted" 2 (Baobs.Probe.spans_dropped ());
  List.iter
    (fun (s : Baobs.Probe.span) ->
      Alcotest.(check string) "span names the probe" "test.spanring"
        s.Baobs.Probe.probe;
      Alcotest.(check bool) "nonnegative duration" true
        (s.Baobs.Probe.dur_ns >= 0.0))
    spans;
  (* reset empties the ring but keeps it installed. *)
  Baobs.Probe.reset ();
  Alcotest.(check (list string)) "reset clears spans" []
    (List.map (fun (s : Baobs.Probe.span) -> s.Baobs.Probe.probe)
       (Baobs.Probe.spans ()));
  Alcotest.(check bool) "still recording" true (Baobs.Probe.recording_spans ())

(* --- Chrome trace ----------------------------------------------------------- *)

let required_keys = [ "name"; "ph"; "ts"; "pid"; "tid" ]

let check_trace_events json =
  let events =
    Baobs.Json.(as_list (member_exn "traceEvents" json))
  in
  Alcotest.(check bool) "has events" true (events <> []);
  List.iter
    (fun e ->
      List.iter
        (fun key ->
          match Baobs.Json.member key e with
          | Some _ -> ()
          | None -> Alcotest.fail (Printf.sprintf "event missing %S" key))
        required_keys)
    events;
  events

let test_chrome_trace_of_spans () =
  let spans =
    [ { Baobs.Probe.probe = "engine.honest_step"; start_ns = 5.0e9; dur_ns = 1.0e6 };
      { Baobs.Probe.probe = "vrf.eval"; start_ns = 5.001e9; dur_ns = 2.0e5 } ]
  in
  let json = Baobs.Chrome_trace.of_spans spans in
  let events = check_trace_events json in
  (* Timestamps are normalized to the earliest span and in µs. *)
  let xs =
    List.filter
      (fun e -> Baobs.Json.(as_string (member_exn "ph" e)) = "X")
      events
  in
  Alcotest.(check int) "one X event per span" 2 (List.length xs);
  let ts =
    List.map (fun e -> Baobs.Json.(as_float (member_exn "ts" e))) xs
  in
  Alcotest.(check bool) "earliest span at ts 0" true (List.mem 0.0 ts);
  Alcotest.(check bool) "all ts within run" true
    (List.for_all (fun t -> t >= 0.0 && t <= 1.0e4) ts);
  (* The whole document survives a JSON round-trip. *)
  Alcotest.(check bool) "chrome json roundtrip" true
    (Baobs.Json.of_string (Baobs.Json.to_string json) = json)

let test_chrome_trace_of_profile_totals_only () =
  (* A profile with probe totals but no recorded spans still converts:
     each probe becomes one bar carrying its call count. *)
  Baobs.Probe.reset ();
  Baobs.Probe.enable ();
  let p = Baobs.Probe.register "test.profile" in
  Baobs.Probe.stop p (Unix.gettimeofday () *. 1e9);
  Baobs.Probe.disable ();
  let profile =
    Baobs.Json.of_string
      (Baobs.Json.to_string
         (Baobs.Json.Obj
            [ ("schema", Baobs.Json.String "ba-profile/v1");
              ("probes", Baobs.Probe.to_json ());
              ("spans", Baobs.Json.List []) ]))
  in
  let events = check_trace_events (Baobs.Chrome_trace.of_profile profile) in
  Alcotest.(check bool) "aggregate bar present" true
    (List.exists
       (fun e -> Baobs.Json.(as_string (member_exn "name" e)) = "test.profile")
       events);
  Baobs.Probe.reset ()

(* --- Bench compare ---------------------------------------------------------- *)

let bench_json results =
  Baobs.Json.Obj
    [ ("schema", Baobs.Json.String "ba-bench/v1");
      ( "results",
        Baobs.Json.List
          (List.map
             (fun (name, ns) ->
               Baobs.Json.Obj
                 [ ("name", Baobs.Json.String name);
                   ( "ns_per_run",
                     match ns with
                     | Some v -> Baobs.Json.Float v
                     | None -> Baobs.Json.Null ) ])
             results) ) ]

let test_bench_compare_identical () =
  let report =
    bench_json [ ("a", Some 100.0); ("b", Some 2.0e6); ("c", None) ]
  in
  let cmp = Baobs.Bench_compare.diff ~base:report ~current:report () in
  Alcotest.(check bool) "no regressions" false
    (Baobs.Bench_compare.has_regressions cmp);
  Alcotest.(check int) "exit 0 on identical" 0
    (Baobs.Bench_compare.exit_code cmp)

let test_bench_compare_regression () =
  let base = bench_json [ ("a", Some 100.0); ("b", Some 2.0e6) ] in
  let current = bench_json [ ("a", Some 100.0); ("b", Some 4.0e6) ] in
  let cmp = Baobs.Bench_compare.diff ~base ~current () in
  Alcotest.(check int) "exit nonzero on a 2x regression" 1
    (Baobs.Bench_compare.exit_code cmp);
  (match Baobs.Bench_compare.regressions cmp with
  | [ r ] ->
      Alcotest.(check string) "the regressed benchmark" "b"
        r.Baobs.Bench_compare.name;
      Alcotest.(check (float 1e-9)) "ratio 2x" 2.0
        (match r.Baobs.Bench_compare.ratio with Some x -> x | None -> nan)
  | rows ->
      Alcotest.fail
        (Printf.sprintf "expected one regression, got %d" (List.length rows)));
  (* The comparison artifact is valid JSON and records the count. *)
  let json = Baobs.Bench_compare.to_json cmp in
  let parsed = Baobs.Json.of_string (Baobs.Json.to_string json) in
  Alcotest.(check int) "json regression count" 1
    Baobs.Json.(as_int (member_exn "regressions" parsed))

let test_bench_compare_statuses () =
  let base =
    bench_json
      [ ("gone", Some 10.0); ("same", Some 100.0); ("faster", Some 100.0);
        ("null", None) ]
  in
  let current =
    bench_json
      [ ("same", Some 105.0); ("faster", Some 50.0); ("new", Some 7.0);
        ("null", None) ]
  in
  let cmp = Baobs.Bench_compare.diff ~base ~current () in
  let status name =
    match
      List.find_opt
        (fun r -> r.Baobs.Bench_compare.name = name)
        cmp.Baobs.Bench_compare.rows
    with
    | Some r -> Baobs.Bench_compare.status_name r.Baobs.Bench_compare.status
    | None -> "absent"
  in
  Alcotest.(check string) "removed" "removed" (status "gone");
  Alcotest.(check string) "added" "added" (status "new");
  Alcotest.(check string) "unchanged" "unchanged" (status "same");
  Alcotest.(check string) "improvement" "improvement" (status "faster");
  Alcotest.(check string) "no estimate" "no-estimate" (status "null");
  Alcotest.(check int) "none of these gate" 0
    (Baobs.Bench_compare.exit_code cmp)

(* --- Report ----------------------------------------------------------------- *)

let totals_from_round_table report =
  (* Recompute the aggregates purely from the per-round table — the
     acceptance criterion: the table alone reproduces Metrics. *)
  List.fold_left
    (fun (m, mb, u, r) (_, c) ->
      ( m + c.Baobs_report.Report.multicasts,
        mb + c.Baobs_report.Report.multicast_bits,
        u + c.Baobs_report.Report.unicasts,
        r + c.Baobs_report.Report.removals ))
    (0, 0, 0, 0)
    (Baobs_report.Report.rounds report)

let test_report_reproduces_metrics_e1 () =
  (* Seeded E1: strongly adaptive eraser vs sub-hm, the run whose trace
     carries removals — Definition-7 accounting must survive the
     trace -> JSONL -> re-parse -> report pipeline exactly. *)
  let result, _, jsonl =
    run_sub_hm_with_series ~n:101 ~lambda:20 ~max_epochs:5 ~budget:30
      ~adversary:(Baattacks.Eraser.make ())
      ~inputs:(Scenario.unanimous_inputs ~n:101 true)
      ~seed:7L
  in
  let report = Baobs_report.Report.of_jsonl_string jsonl in
  let m = result.Engine.metrics in
  let multicasts, multicast_bits, unicasts, removals =
    totals_from_round_table report
  in
  Alcotest.(check bool) "scenario has removals" true (Metrics.removals m > 0);
  Alcotest.(check int) "per-round multicasts = Metrics"
    (Metrics.honest_multicasts m) multicasts;
  Alcotest.(check int) "per-round multicast bits = Metrics (Definition 7)"
    (Metrics.honest_multicast_bits m)
    multicast_bits;
  Alcotest.(check int) "per-round unicasts = Metrics"
    (Metrics.honest_unicasts m) unicasts;
  Alcotest.(check int) "per-round removals = Metrics" (Metrics.removals m)
    removals;
  (* The same aggregates via the totals record and per-node table. *)
  let t = Baobs_report.Report.totals report in
  Alcotest.(check int) "totals multicasts" (Metrics.honest_multicasts m)
    t.Baobs_report.Report.multicasts;
  Alcotest.(check int) "node-table multicasts"
    (Metrics.honest_multicasts m)
    (List.fold_left
       (fun acc (_, c) -> acc + c.Baobs_report.Report.multicasts)
       0
       (Baobs_report.Report.nodes report));
  Alcotest.(check int) "corruptions = engine count" result.Engine.corruptions
    t.Baobs_report.Report.corruptions;
  (* Internal consistency gate used by CI. *)
  match Baobs_report.Report.check report with
  | Ok () -> ()
  | Error errors -> Alcotest.fail (String.concat "; " errors)

let test_report_exports () =
  let _, _, jsonl =
    run_sub_hm_with_series ~n:101 ~lambda:20 ~max_epochs:5 ~budget:0
      ~adversary:(passive ())
      ~inputs:(Scenario.split_inputs ~n:101)
      ~seed:3L
  in
  let report = Baobs_report.Report.of_jsonl_string jsonl in
  (* JSON round-trips and its totals equal the accessors. *)
  let json = Baobs_report.Report.to_json ~k:3 report in
  let parsed = Baobs.Json.of_string (Baobs.Json.to_string json) in
  Alcotest.(check bool) "report json roundtrip" true (parsed = json);
  let t = Baobs_report.Report.totals report in
  Alcotest.(check int) "json totals multicasts"
    t.Baobs_report.Report.multicasts
    Baobs.Json.(as_int (member_exn "multicasts" (member_exn "totals" parsed)));
  Alcotest.(check bool) "top talkers truncated to k" true
    (List.length Baobs.Json.(as_list (member_exn "top_talkers" parsed)) <= 3);
  (* p50/p95/p99 summary present for multicast sizes. *)
  (match Baobs_report.Report.multicast_size_summary report with
  | Some s ->
      Alcotest.(check bool) "p50 <= p95 <= p99" true
        (s.Bastats.Summary.p50 <= s.Bastats.Summary.p95
        && s.Bastats.Summary.p95 <= s.Bastats.Summary.p99)
  | None -> Alcotest.fail "expected multicast sizes");
  (* CSV: header + one row per round, constant arity. *)
  let csv = Baobs_report.Report.to_csv report in
  (match List.filter (fun l -> l <> "") (String.split_on_char '\n' csv) with
  | header :: rows ->
      Alcotest.(check int) "csv rows = rounds with activity"
        (List.length (Baobs_report.Report.rounds report))
        (List.length rows);
      let arity l = List.length (String.split_on_char ',' l) in
      List.iter
        (fun row -> Alcotest.(check int) "csv row arity" (arity header) (arity row))
        rows
  | [] -> Alcotest.fail "empty report csv");
  (* Text rendering contains all three table titles. *)
  let text = Baobs_report.Report.to_text report in
  let contains needle =
    let nn = String.length needle and tn = String.length text in
    let rec scan i =
      i + nn <= tn && (String.sub text i nn = needle || scan (i + 1))
    in
    scan 0
  in
  List.iter
    (fun title ->
      Alcotest.(check bool) ("text mentions " ^ title) true (contains title))
    [ "Per-round timeline"; "Top talkers"; "Message sizes" ]

let test_report_empty_trace () =
  let report = Baobs_report.Report.of_events [] in
  Alcotest.(check int) "no events" 0 (Baobs_report.Report.event_count report);
  Alcotest.(check (list int)) "no rounds" []
    (List.map fst (Baobs_report.Report.rounds report));
  Alcotest.(check bool) "no sizes" true
    (Baobs_report.Report.multicast_size_summary report = None);
  (match Baobs_report.Report.check report with
  | Ok () -> ()
  | Error e -> Alcotest.fail (String.concat "; " e));
  (* Exporters cope with emptiness. *)
  Alcotest.(check bool) "csv is header only" true
    (List.length
       (List.filter
          (fun l -> l <> "")
          (String.split_on_char '\n' (Baobs_report.Report.to_csv report)))
    = 1);
  Alcotest.(check bool) "json still valid" true
    (Baobs.Json.of_string
       (Baobs.Json.to_string (Baobs_report.Report.to_json report))
    = Baobs_report.Report.to_json report)

(* --- Sink path validation --------------------------------------------------- *)

let test_validate_path () =
  Alcotest.(check bool) "missing parent rejected" true
    (match Baobs.Jsonl.validate_path "/nonexistent-xyz/trace.jsonl" with
    | Error _ -> true
    | Ok () -> false);
  Alcotest.(check bool) "existing directory as target rejected" true
    (match Baobs.Jsonl.validate_path "." with Error _ -> true | Ok () -> false);
  Alcotest.(check bool) "cwd-relative file accepted" true
    (Baobs.Jsonl.validate_path "some-new-file.jsonl" = Ok ());
  let tmp = Filename.temp_file "baobs" ".jsonl" in
  Alcotest.(check bool) "existing file accepted (overwrite)" true
    (Baobs.Jsonl.validate_path tmp = Ok ());
  Sys.remove tmp

(* --- Resource telemetry ----------------------------------------------------- *)

let test_resource_delta_nonnegative () =
  let before = Baobs.Resource.sample () in
  (* Allocate enough to move the minor counter for sure. *)
  let junk = ref [] in
  for i = 0 to 10_000 do
    junk := (i, string_of_int i) :: !junk
  done;
  ignore (List.length !junk);
  let after = Baobs.Resource.sample () in
  let d = Baobs.Resource.delta ~before ~after in
  Alcotest.(check bool) "allocated > 0" true
    (d.Baobs.Resource.allocated_words > 0.0);
  Alcotest.(check bool) "promoted >= 0" true
    (d.Baobs.Resource.promoted_words >= 0.0);
  Alcotest.(check bool) "minor gcs >= 0" true
    (d.Baobs.Resource.minor_collections >= 0);
  Alcotest.(check bool) "major gcs >= 0" true
    (d.Baobs.Resource.major_collections >= 0);
  Alcotest.(check bool) "compactions >= 0" true
    (d.Baobs.Resource.compactions >= 0);
  (* Degenerate window: a delta over one sample is all-zero. *)
  let z = Baobs.Resource.delta ~before ~after:before in
  Alcotest.(check bool) "self-delta zero" true
    (z.Baobs.Resource.allocated_words = 0.0
    && z.Baobs.Resource.minor_collections = 0)

let run_sub_hm_with_resource ~resource ~seed =
  let n = 101 in
  let params = Params.make ~lambda:20 ~max_epochs:5 () in
  let proto = Sub_hm.protocol ~params ~world:`Hybrid in
  let buf = Buffer.create 4096 in
  let result =
    Engine.run
      ~tracer:(Trace.jsonl_tracer (Baobs.Jsonl.to_buffer buf))
      ?resource proto
      ~adversary:(Baattacks.Eraser.make ())
      ~n ~budget:30
      ~inputs:(Scenario.unanimous_inputs ~n true)
      ~max_rounds:32 ~seed
  in
  (result, Buffer.contents buf)

let test_resource_recorder_rows () =
  Baobs.Resource.enable ();
  let r = Baobs.Resource.create () in
  let result, _ = run_sub_hm_with_resource ~resource:(Some r) ~seed:7L in
  Baobs.Resource.disable ();
  let rows = Baobs.Resource.rows r in
  (* One setup row (round -1) plus one row per executed round. *)
  Alcotest.(check int) "row count" (result.Engine.rounds_used + 1)
    (List.length rows);
  Alcotest.(check (list int)) "round numbering"
    (List.init (result.Engine.rounds_used + 1) (fun i -> i - 1))
    (List.map (fun row -> row.Baobs.Resource.round) rows);
  List.iter
    (fun row ->
      Alcotest.(check bool) "allocated >= 0" true
        (row.Baobs.Resource.row_allocated_words >= 0.0);
      Alcotest.(check bool) "heap > 0" true
        (row.Baobs.Resource.row_heap_words > 0))
    rows;
  (* The streaming summary covers exactly the executed rounds. *)
  match Baobs.Resource.allocation_summary r with
  | Some s ->
      Alcotest.(check int) "summary count" result.Engine.rounds_used
        s.Bastats.Summary.count
  | None -> Alcotest.fail "expected an allocation summary"

let test_resource_disabled_records_nothing () =
  Baobs.Resource.disable ();
  let r = Baobs.Resource.create () in
  let _ = run_sub_hm_with_resource ~resource:(Some r) ~seed:7L in
  Alcotest.(check int) "no rows while disabled" 0
    (List.length (Baobs.Resource.rows r));
  Alcotest.(check bool) "no summary" true
    (Baobs.Resource.allocation_summary r = None)

let test_resource_trace_byte_identical () =
  (* The determinism contract: recording reads GC counters only, so the
     same seeded run emits byte-for-byte the same trace with the
     recorder on, off, or absent. *)
  let _, plain = run_sub_hm_with_resource ~resource:None ~seed:11L in
  Baobs.Resource.enable ();
  let r = Baobs.Resource.create () in
  let _, recorded = run_sub_hm_with_resource ~resource:(Some r) ~seed:11L in
  Baobs.Resource.disable ();
  Alcotest.(check bool) "recorder saw the run" true
    (Baobs.Resource.rows r <> []);
  Alcotest.(check string) "traces byte-identical" plain recorded

let test_resource_json_roundtrip () =
  Baobs.Resource.enable ();
  let r = Baobs.Resource.create () in
  let _ = run_sub_hm_with_resource ~resource:(Some r) ~seed:3L in
  Baobs.Resource.disable ();
  let json =
    Baobs.Resource.to_json ~meta:[ ("protocol", Baobs.Json.String "sub-hm") ] r
  in
  (* Serialize → reparse → the analysis sees the recorder's rows. *)
  let report =
    Baobs.Resource.report_of_json
      (Baobs.Json.of_string (Baobs.Json.to_string json))
  in
  Alcotest.(check int) "rows survive the round-trip"
    (List.length (Baobs.Resource.rows r))
    (List.length (Baobs.Resource.report_rows report));
  List.iter2
    (fun a b ->
      Alcotest.(check int) "round" a.Baobs.Resource.round
        b.Baobs.Resource.round;
      Alcotest.(check bool) "allocated equal" true
        (a.Baobs.Resource.row_allocated_words
        = b.Baobs.Resource.row_allocated_words))
    (Baobs.Resource.rows r)
    (Baobs.Resource.report_rows report);
  (* CSV: header plus one line per row. *)
  let csv_lines =
    List.filter
      (fun l -> l <> "")
      (String.split_on_char '\n' (Baobs.Resource.to_csv r))
  in
  Alcotest.(check int) "csv lines"
    (1 + List.length (Baobs.Resource.rows r))
    (List.length csv_lines);
  (* Foreign schema refused. *)
  Alcotest.(check bool) "foreign schema refused" true
    (match
       Baobs.Resource.report_of_json
         (Baobs.Json.Obj [ ("schema", Baobs.Json.String "nope/v1") ])
     with
    | exception Baobs.Json.Parse_error _ -> true
    | _ -> false)

let synthetic_resource_json rows =
  Baobs.Json.Obj
    [ ("schema", Baobs.Json.String "ba-resource/v1");
      ( "rounds",
        Baobs.Json.List
          (List.mapi
             (fun i allocated ->
               Baobs.Json.Obj
                 [ ("round", Baobs.Json.Int i);
                   ("allocated_words", Baobs.Json.Float allocated);
                   ("promoted_words", Baobs.Json.Float 0.0);
                   ("minor_gcs", Baobs.Json.Int 0);
                   ("major_gcs", Baobs.Json.Int 0);
                   ("heap_words", Baobs.Json.Int 1000);
                   ("top_heap_words", Baobs.Json.Int 1000) ])
             rows) ) ]

let test_resource_flatness_verdicts () =
  (* Steady allocation with per-epoch bursts and a decision-round spike:
     the shape a healthy protocol run produces — flat. *)
  let healthy =
    [ 900_000.0; 250_000.0; 0.0; 0.0; 250_000.0; 0.0; 0.0; 250_000.0;
      0.0; 0.0; 250_000.0; 0.0; 0.0; 250_000.0; 1_000_000.0; 950_000.0 ]
  in
  let f =
    Baobs.Resource.flatness
      (Baobs.Resource.report_of_json (synthetic_resource_json healthy))
  in
  Alcotest.(check bool) "bursty-but-steady is flat" true
    f.Baobs.Resource.flat;
  (* Linear growth in most rounds — a leak — is not flat. *)
  let leaking = List.init 16 (fun i -> 100_000.0 +. (25_000.0 *. float_of_int i)) in
  let f =
    Baobs.Resource.flatness
      (Baobs.Resource.report_of_json (synthetic_resource_json leaking))
  in
  Alcotest.(check bool) "linear growth is not flat" false
    f.Baobs.Resource.flat;
  Alcotest.(check bool) "drift positive" true (f.Baobs.Resource.drift > 0.0);
  (* Too few rounds to fit: trivially flat. *)
  let f =
    Baobs.Resource.flatness
      (Baobs.Resource.report_of_json
         (synthetic_resource_json [ 1.0; 2.0; 3.0 ]))
  in
  Alcotest.(check bool) "short run trivially flat" true
    f.Baobs.Resource.flat

(* --- Report rounds window ---------------------------------------------------- *)

let test_report_rounds_window () =
  let _, _, jsonl =
    run_sub_hm_with_series ~n:101 ~lambda:20 ~max_epochs:5 ~budget:30
      ~adversary:(Baattacks.Eraser.make ())
      ~inputs:(Scenario.unanimous_inputs ~n:101 true)
      ~seed:7L
  in
  let full = Baobs_report.Report.of_jsonl_string jsonl in
  let lo, hi = (1, 2) in
  let windowed = Baobs_report.Report.of_jsonl_string ~rounds:(lo, hi) jsonl in
  (* The windowed totals equal the full report's per-round rows summed
     over the window — the --check sums recompute over the window. *)
  let expect field =
    List.fold_left
      (fun acc (round, c) -> if lo <= round && round <= hi then acc + field c else acc)
      0
      (Baobs_report.Report.rounds full)
  in
  let t = Baobs_report.Report.totals windowed in
  Alcotest.(check int) "windowed multicasts"
    (expect (fun c -> c.Baobs_report.Report.multicasts))
    t.Baobs_report.Report.multicasts;
  Alcotest.(check int) "windowed multicast bits"
    (expect (fun c -> c.Baobs_report.Report.multicast_bits))
    t.Baobs_report.Report.multicast_bits;
  Alcotest.(check int) "windowed removals"
    (expect (fun c -> c.Baobs_report.Report.removals))
    t.Baobs_report.Report.removals;
  Alcotest.(check bool) "only windowed rounds remain" true
    (List.for_all
       (fun (round, _) -> lo <= round && round <= hi)
       (Baobs_report.Report.rounds windowed));
  Alcotest.(check bool) "window shrinks the event list" true
    (Baobs_report.Report.event_count windowed
    < Baobs_report.Report.event_count full);
  (match Baobs_report.Report.check windowed with
  | Ok () -> ()
  | Error e -> Alcotest.fail (String.concat "; " e));
  (* An empty window is a usage error, not an empty report. *)
  Alcotest.check_raises "inverted window"
    (Invalid_argument "Report.of_events: empty rounds window") (fun () ->
      ignore (Baobs_report.Report.of_jsonl_string ~rounds:(3, 1) jsonl))

(* --- Trace collector fixes -------------------------------------------------- *)

let test_collector_memoized_events () =
  let c = Trace.collector () in
  for round = 0 to 99 do
    Trace.observe c (Trace.Round_started { round })
  done;
  let a = Trace.events c in
  let b = Trace.events c in
  Alcotest.(check bool) "memoized list reused" true (a == b);
  Alcotest.(check int) "count without events" 100
    (Trace.count c (function Trace.Round_started _ -> true | _ -> false));
  Trace.observe c (Trace.Round_started { round = 100 });
  Alcotest.(check int) "cache invalidated on observe" 101
    (List.length (Trace.events c));
  Alcotest.(check int) "length" 101 (Trace.length c)

(* --- Causal analysis --------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

(* A three-node execution whose happens-before DAG fits on paper:
     round 0: node 0 multicasts (kind "a"); node 2 is corrupted.
     round 1: corrupt 2 injects to node 1 (kind "x"); honest 1 sends to
              node 0; a second send of node 1 to node 0 is erased.
     round 2: nodes 0 and 1 halt.
   Taint sources: Corrupted(2,0) -> states (2,1),(2,2); the injection
   taints (1,2); the severed send taints its would-be recipient (0,2).
   Cones (memory + delivery edges, severed edge absent):
     node 0 @ 2: {(0,2),(0,1),(0,0),(1,1),(1,0)}   -> 5 states, 1 tainted
     node 1 @ 2: {(1,2),(1,1),(1,0),(2,1),(2,0),(0,0)} -> 6 states, 2 tainted *)
let hand_built_events =
  [ Trace.Round_started { round = 0 };
    Trace.Sent
      { round = 0; node = 0; multicast = true; recipients = 3; bits = 8;
        id = 0; kind = "a"; targets = [] };
    Trace.Corrupted { round = 0; node = 2 };
    Trace.Round_started { round = 1 };
    Trace.Injected
      { round = 1; src = 2; recipients = 1; bits = 4; id = 1; kind = "x";
        targets = [ 1 ] };
    Trace.Sent
      { round = 1; node = 1; multicast = false; recipients = 1; bits = 8;
        id = 2; kind = "a"; targets = [ 0 ] };
    Trace.Removed
      { round = 1; victim = 1; multicast = false; recipients = 1; bits = 8;
        id = 3; kind = "a"; targets = [ 0 ] };
    Trace.Round_started { round = 2 };
    Trace.Halted { round = 2; node = 0; output = Some true };
    Trace.Halted { round = 2; node = 1; output = Some true } ]

let causal_ok a =
  match Baobs_report.Causal.check a with
  | Ok () -> ()
  | Error e -> Alcotest.fail (String.concat "; " e)

let test_causal_hand_built_taint () =
  let a = Baobs_report.Causal.of_events hand_built_events in
  causal_ok a;
  Alcotest.(check int) "inferred n" 3 (Baobs_report.Causal.n a);
  Alcotest.(check int) "rounds" 3 (Baobs_report.Causal.rounds a);
  let s = Baobs_report.Causal.summary a in
  Alcotest.(check int) "delivered" 2 s.Baobs_report.Causal.s_delivered;
  Alcotest.(check int) "severed" 1 s.Baobs_report.Causal.s_severed;
  Alcotest.(check int) "injected" 1 s.Baobs_report.Causal.s_injected;
  Alcotest.(check int) "nothing approximated" 0 s.Baobs_report.Causal.s_approx;
  Alcotest.(check int) "states" 9 s.Baobs_report.Causal.s_states;
  (* 3 multicast edges + 1 unicast + 1 injection; the severed send
     contributes none. *)
  Alcotest.(check int) "delivery edges" 5 s.Baobs_report.Causal.s_edges;
  (match Baobs_report.Causal.decisions a with
  | [ d0; d1 ] ->
      Alcotest.(check int) "first decision is node 0" 0
        d0.Baobs_report.Causal.d_node;
      Alcotest.(check int) "node 0 cone" 5 d0.Baobs_report.Causal.d_cone_states;
      (* The erased send is the ONLY adversary influence on node 0: its
         absence taints the deciding state itself. *)
      Alcotest.(check int) "node 0 tainted = severed influence" 1
        d0.Baobs_report.Causal.d_tainted_states;
      Alcotest.(check int) "node 1 cone" 6 d1.Baobs_report.Causal.d_cone_states;
      Alcotest.(check int) "node 1 tainted = corrupt sender + injection" 2
        d1.Baobs_report.Causal.d_tainted_states;
      Alcotest.(check int) "node 0 critical path" 2
        d0.Baobs_report.Causal.d_critical_path;
      Alcotest.(check int) "node 1 critical path" 2
        d1.Baobs_report.Causal.d_critical_path;
      Alcotest.(check bool) "taint fractions" true
        (Baobs_report.Causal.taint_fraction d0 = 1.0 /. 5.0
        && Baobs_report.Causal.taint_fraction d1 = 2.0 /. 6.0)
  | ds ->
      Alcotest.fail
        (Printf.sprintf "expected 2 decisions, got %d" (List.length ds)));
  (* Definition-7 flow matrix: the severed round-1 send still counts in
     kind "a"'s unicast totals and as a removal. *)
  let flow round kind =
    match
      List.find_opt
        (fun f ->
          f.Baobs_report.Causal.f_round = round
          && f.Baobs_report.Causal.f_kind = kind)
        (Baobs_report.Causal.flows a)
    with
    | Some f -> f
    | None -> Alcotest.fail (Printf.sprintf "missing flow (%d, %s)" round kind)
  in
  let f0 = flow 0 "a" in
  Alcotest.(check int) "round-0 multicasts" 1 f0.Baobs_report.Causal.f_multicasts;
  Alcotest.(check int) "round-0 multicast bits" 8
    f0.Baobs_report.Causal.f_multicast_bits;
  let f1 = flow 1 "a" in
  Alcotest.(check int) "round-1 unicasts include the erased send" 2
    f1.Baobs_report.Causal.f_unicasts;
  Alcotest.(check int) "round-1 unicast bits" 16
    f1.Baobs_report.Causal.f_unicast_bits;
  Alcotest.(check int) "round-1 removals" 1 f1.Baobs_report.Causal.f_removals;
  let fx = flow 1 "x" in
  Alcotest.(check int) "round-1 injections" 1 fx.Baobs_report.Causal.f_injections;
  Alcotest.(check int) "round-1 injection bits" 4
    fx.Baobs_report.Causal.f_injection_bits

let test_causal_chrome_flow_shape () =
  let a = Baobs_report.Causal.of_events hand_built_events in
  let doc = Baobs_report.Causal.to_chrome a in
  let events = Baobs.Json.(as_list (member_exn "traceEvents" doc)) in
  let phase e = Baobs.Json.(as_string (member_exn "ph" e)) in
  let count p = List.length (List.filter (fun e -> phase e = p) events) in
  (* One flow start per message that found a consumer; one finish per
     delivery edge; every finish binds to the enclosing slice. *)
  Alcotest.(check int) "flow starts = delivered + injected" 3 (count "s");
  Alcotest.(check int) "flow finishes = delivery edges" 5 (count "f");
  Alcotest.(check bool) "finishes bind enclosing slice" true
    (List.for_all
       (fun e ->
         phase e <> "f"
         || Baobs.Json.(
              match member "bp" e with
              | Some (String "e") -> true
              | _ -> false))
       events);
  (* The removal surfaces as an instant on the victim's thread. *)
  Alcotest.(check bool) "removal instant present" true
    (List.exists
       (fun e ->
         phase e = "i"
         && Baobs.Json.(as_string (member_exn "name" e)) = "removed:a")
       events);
  (* One slice per (node, round) state. *)
  Alcotest.(check int) "state slices" 9 (count "X")

let run_sub_hm_causal ~n ~budget ~adversary ~inputs ~seed =
  let params = Params.make ~lambda:20 ~max_epochs:5 () in
  let proto = Sub_hm.protocol ~params ~world:`Hybrid in
  let c = Trace.collector () in
  let result =
    Engine.run ~tracer:(Trace.observe c) ~labeler:Sub_hm.msg_kind proto
      ~adversary ~n ~budget ~inputs ~max_rounds:32 ~seed
  in
  (result, Baobs_report.Causal.of_events ~n (Trace.events c))

let sum_flows field a =
  List.fold_left (fun acc f -> acc + field f) 0 (Baobs_report.Causal.flows a)

let test_causal_e1_eraser_all_decisions_tainted () =
  (* Seeded E1: every honest decision sits downstream of an erased
     message — nonzero taint across the board, with exact recipient
     sets (labeled run, nothing approximated). *)
  let result, a =
    run_sub_hm_causal ~n:101 ~budget:30
      ~adversary:(Baattacks.Eraser.make ())
      ~inputs:(Scenario.unanimous_inputs ~n:101 true)
      ~seed:7L
  in
  causal_ok a;
  Alcotest.(check int) "labeled run is exact" 0
    (Baobs_report.Causal.approx_messages a);
  let ds = Baobs_report.Causal.decisions a in
  Alcotest.(check bool) "decisions recorded" true (List.length ds > 0);
  Alcotest.(check bool) "every decision tainted" true
    (List.for_all (fun d -> d.Baobs_report.Causal.d_tainted_states > 0) ds);
  Alcotest.(check bool) "taint is a strict subset of each cone" true
    (List.for_all
       (fun d ->
         d.Baobs_report.Causal.d_tainted_states
         <= d.Baobs_report.Causal.d_cone_states)
       ds);
  (* Every flow row carries a protocol label. *)
  Alcotest.(check bool) "flow kinds labeled" true
    (List.for_all
       (fun f -> f.Baobs_report.Causal.f_kind <> "")
       (Baobs_report.Causal.flows a));
  (* Cone-independent cross-check: the flow matrix sums to Metrics. *)
  let m = result.Engine.metrics in
  Alcotest.(check int) "flow multicasts = Metrics"
    (Metrics.honest_multicasts m)
    (sum_flows (fun f -> f.Baobs_report.Causal.f_multicasts) a);
  Alcotest.(check int) "flow multicast bits = Metrics"
    (Metrics.honest_multicast_bits m)
    (sum_flows (fun f -> f.Baobs_report.Causal.f_multicast_bits) a);
  Alcotest.(check int) "flow removals = Metrics" (Metrics.removals m)
    (sum_flows (fun f -> f.Baobs_report.Causal.f_removals) a);
  Alcotest.(check bool) "scenario has removals" true (Metrics.removals m > 0)

let test_causal_e2_passive_zero_taint () =
  (* Seeded E2 shape: no adversary events, so taint must be zero at
     every decision — the attribution never invents influence. *)
  let _, a =
    run_sub_hm_causal ~n:201 ~budget:0 ~adversary:(passive ())
      ~inputs:(Scenario.split_inputs ~n:201)
      ~seed:3L
  in
  causal_ok a;
  let ds = Baobs_report.Causal.decisions a in
  Alcotest.(check int) "all nodes decide" 201 (List.length ds);
  Alcotest.(check bool) "zero taint everywhere" true
    (List.for_all (fun d -> d.Baobs_report.Causal.d_tainted_states = 0) ds);
  Alcotest.(check bool) "cones nonempty" true
    (List.for_all (fun d -> d.Baobs_report.Causal.d_cone_states > 0) ds)

let test_causal_e8_takeover_all_decisions_tainted () =
  (* Seeded E8: the takeover corrupts the public committee, so every
     honest decision flows through corrupted state. *)
  let proto = Babaselines.Static_committee.protocol ~committee_size:7 in
  let n = 60 in
  let c = Trace.collector () in
  let result =
    Engine.run ~tracer:(Trace.observe c)
      ~labeler:Babaselines.Static_committee.msg_kind proto
      ~adversary:(Baattacks.Takeover.make ~force:true ())
      ~n ~budget:10
      ~inputs:(Scenario.unanimous_inputs ~n false)
      ~max_rounds:5 ~seed:30L
  in
  let a = Baobs_report.Causal.of_events ~n (Trace.events c) in
  causal_ok a;
  let ds = Baobs_report.Causal.decisions a in
  Alcotest.(check int) "every honest node decides"
    (n - result.Engine.corruptions)
    (List.length ds);
  Alcotest.(check bool) "every decision tainted" true
    (List.for_all (fun d -> d.Baobs_report.Causal.d_tainted_states > 0) ds);
  Alcotest.(check bool) "injections visible in the flow matrix" true
    (sum_flows (fun f -> f.Baobs_report.Causal.f_injections) a > 0)

let test_causal_legacy_fixture_replay () =
  (* Committed pre-causal traces: every line reserializes byte for byte
     (of_json defaults the causal fields to sentinels, to_json omits
     them), and the analyses accept the legacy format. *)
  let check_lines fixture =
    List.iter
      (fun line ->
        if line <> "" then
          Alcotest.(check string) "legacy line reserializes byte-identically"
            line
            (Baobs.Json.to_string
               (Trace.to_json (Trace.of_json (Baobs.Json.of_string line)))))
      (String.split_on_char '\n' fixture)
  in
  let e1 = read_file "fixtures/legacy_e1_trace.jsonl" in
  check_lines e1;
  let a = Baobs_report.Causal.of_jsonl_string e1 in
  causal_ok a;
  Alcotest.(check bool) "legacy eraser trace shows taint" true
    (List.exists
       (fun d -> d.Baobs_report.Causal.d_tainted_states > 0)
       (Baobs_report.Causal.decisions a));
  (match Baobs_report.Report.check (Baobs_report.Report.of_jsonl_string e1) with
  | Ok () -> ()
  | Error e -> Alcotest.fail (String.concat "; " e));
  let split = read_file "fixtures/legacy_split_trace.jsonl" in
  check_lines split;
  let b = Baobs_report.Causal.of_jsonl_string split in
  causal_ok b;
  (* Targeted injections without recorded recipient lists are counted as
     over-approximated, not silently treated as exact. *)
  Alcotest.(check bool) "legacy targeted sends flagged approximate" true
    (Baobs_report.Causal.approx_messages b > 0)

let test_causal_off_byte_identity () =
  (* Re-run the committed fixture's exact configuration on today's
     engine with causal recording off: the JSONL must match the
     pre-causal bytes. *)
  let fixture = read_file "fixtures/legacy_e1_trace.jsonl" in
  let params = Params.make ~lambda:4 ~max_epochs:3 () in
  let proto =
    Sub_third.protocol ~params ~world:`Hybrid ~mode:Sub_third.Bit_specific
  in
  let regen ?labeler () =
    let buf = Buffer.create 1024 in
    let _ =
      Engine.run
        ~tracer:(Trace.jsonl_tracer (Baobs.Jsonl.to_buffer buf))
        ?labeler proto
        ~adversary:(Baattacks.Eraser.make ())
        ~n:9 ~budget:3
        ~inputs:(Scenario.unanimous_inputs ~n:9 true)
        ~max_rounds:24 ~seed:7L
    in
    Buffer.contents buf
  in
  Alcotest.(check string) "recording off = legacy bytes" fixture (regen ());
  (* The same run with a labeler must carry kind labels — proving the
     identity above is not vacuous. *)
  let labeled = regen ~labeler:Sub_third.msg_kind () in
  Alcotest.(check bool) "labeled run differs" true (labeled <> fixture);
  let contains s sub =
    let nn = String.length sub and tn = String.length s in
    let rec scan i = i + nn <= tn && (String.sub s i nn = sub || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "labeled run records kinds" true
    (contains labeled "\"kind\":")

let ba_run_exe = "../bin/ba_run.exe"

let test_ba_run_causal_json_end_to_end () =
  (* The CLI rejects a doomed --causal-json destination before running
     (same validate_path contract as --trace-jsonl)... *)
  let base =
    ba_run_exe
    ^ " -p sub-third -n 9 -a eraser -f 3 --lambda 4 --epochs 3 --inputs ones \
       --seed 7"
  in
  let run cmd = Sys.command (cmd ^ " >/dev/null 2>/dev/null") in
  Alcotest.(check int) "doomed path rejected up front" 1
    (run (base ^ " --causal-json /nonexistent-xyz/causal.json"));
  (* ...and a good path receives a parseable ba-causal/v1 document. *)
  let tmp = Filename.temp_file "ba_causal" ".json" in
  Alcotest.(check int) "run with --causal-json succeeds" 0
    (run (base ^ " --causal-json " ^ tmp));
  let s =
    Baobs_report.Causal.summary_of_json (Baobs.Json.of_string (read_file tmp))
  in
  Sys.remove tmp;
  Alcotest.(check int) "document matches the run" 9 s.Baobs_report.Causal.s_n;
  Alcotest.(check bool) "decisions recorded" true
    (List.length s.Baobs_report.Causal.s_decisions > 0)

(* qcheck: ba-causal/v1 is an exact codec — summary_of_json inverts
   summary_to_json on arbitrary (well-typed) summaries, not just ones an
   analysis produced. *)
let causal_summary_gen =
  let open QCheck.Gen in
  let decision =
    small_nat >>= fun d_node ->
    small_nat >>= fun d_round ->
    oneofl [ None; Some true; Some false ] >>= fun d_output ->
    small_nat >>= fun d_cone_states ->
    small_nat >>= fun d_tainted_states ->
    small_nat >>= fun d_critical_path ->
    return
      { Baobs_report.Causal.d_node; d_round; d_output; d_cone_states;
        d_tainted_states; d_critical_path }
  in
  let flow =
    small_nat >>= fun f_round ->
    oneofl [ ""; "propose"; "vote"; "status"; "commit" ] >>= fun f_kind ->
    small_nat >>= fun f_multicasts ->
    small_nat >>= fun f_multicast_bits ->
    small_nat >>= fun f_unicasts ->
    small_nat >>= fun f_unicast_bits ->
    small_nat >>= fun f_removals ->
    small_nat >>= fun f_injections ->
    small_nat >>= fun f_injection_bits ->
    return
      { Baobs_report.Causal.f_round; f_kind; f_multicasts; f_multicast_bits;
        f_unicasts; f_unicast_bits; f_removals; f_injections; f_injection_bits }
  in
  small_nat >>= fun s_n ->
  small_nat >>= fun s_rounds ->
  small_nat >>= fun s_delivered ->
  small_nat >>= fun s_severed ->
  small_nat >>= fun s_injected ->
  small_nat >>= fun s_approx ->
  small_nat >>= fun s_states ->
  small_nat >>= fun s_edges ->
  list_size (int_bound 5) decision >>= fun s_decisions ->
  list_size (int_bound 5) flow >>= fun s_flows ->
  return
    { Baobs_report.Causal.s_n; s_rounds; s_delivered; s_severed; s_injected;
      s_approx; s_states; s_edges; s_decisions; s_flows }

let causal_qcheck_tests =
  [ QCheck.Test.make ~name:"summary → ba-causal/v1 json → summary" ~count:200
      (QCheck.make
         ~print:(fun s ->
           Baobs.Json.to_string (Baobs_report.Causal.summary_to_json s))
         causal_summary_gen)
      (fun s ->
        Baobs_report.Causal.summary_of_json
          (Baobs.Json.of_string
             (Baobs.Json.to_string (Baobs_report.Causal.summary_to_json s)))
        = s) ]

let () =
  Alcotest.run "obs"
    [ ( "json",
        [ Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "whitespace" `Quick test_json_parse_whitespace;
          Alcotest.test_case "errors" `Quick test_json_parse_errors;
          Alcotest.test_case "rates" `Quick test_rates_json_roundtrip ] );
      ( "ring",
        [ Alcotest.test_case "drops oldest" `Quick test_ring_drops_oldest;
          Alcotest.test_case "trace ring" `Quick test_trace_ring;
          Alcotest.test_case "exact capacity boundary" `Quick
            test_ring_exact_capacity;
          Alcotest.test_case "empty and invalid" `Quick
            test_ring_empty_and_invalid ] );
      ( "csv",
        [ Alcotest.test_case "quoting" `Quick test_csv_quoting;
          Alcotest.test_case "empty series exports" `Quick
            test_series_empty_exports ] );
      ( "probe",
        [ Alcotest.test_case "spans" `Quick test_probe_spans;
          Alcotest.test_case "two-domain hammer" `Quick
            test_probe_two_domain_hammer;
          Alcotest.test_case "negative span clamped" `Quick
            test_probe_negative_span_clamped;
          Alcotest.test_case "span ring" `Quick test_probe_span_ring ] );
      ( "chrome-trace",
        [ Alcotest.test_case "required keys from spans" `Quick
            test_chrome_trace_of_spans;
          Alcotest.test_case "totals-only profile" `Quick
            test_chrome_trace_of_profile_totals_only ] );
      ( "bench-compare",
        [ Alcotest.test_case "identical inputs exit 0" `Quick
            test_bench_compare_identical;
          Alcotest.test_case "2x regression exits nonzero" `Quick
            test_bench_compare_regression;
          Alcotest.test_case "statuses" `Quick test_bench_compare_statuses ] );
      ( "report",
        [ Alcotest.test_case "e1 reproduces Metrics" `Quick
            test_report_reproduces_metrics_e1;
          Alcotest.test_case "exports" `Quick test_report_exports;
          Alcotest.test_case "empty trace" `Quick test_report_empty_trace;
          Alcotest.test_case "rounds window" `Quick test_report_rounds_window ]
      );
      ( "resource",
        [ Alcotest.test_case "delta nonnegative" `Quick
            test_resource_delta_nonnegative;
          Alcotest.test_case "recorder rows" `Quick test_resource_recorder_rows;
          Alcotest.test_case "disabled records nothing" `Quick
            test_resource_disabled_records_nothing;
          Alcotest.test_case "trace byte-identical" `Quick
            test_resource_trace_byte_identical;
          Alcotest.test_case "json roundtrip" `Quick
            test_resource_json_roundtrip;
          Alcotest.test_case "flatness verdicts" `Quick
            test_resource_flatness_verdicts ] );
      ( "sink-path",
        [ Alcotest.test_case "validate_path" `Quick test_validate_path ] );
      ( "series",
        [ Alcotest.test_case "e1 eraser scenario" `Quick
            test_series_matches_metrics_e1;
          Alcotest.test_case "e2 passive scenario" `Quick
            test_series_matches_metrics_e2;
          Alcotest.test_case "json + csv export" `Quick test_series_json_and_csv ] );
      ( "jsonl",
        [ Alcotest.test_case "valid lines" `Quick test_jsonl_sink_valid_lines;
          Alcotest.test_case "filters" `Quick test_jsonl_filters ] );
      ( "collector",
        [ Alcotest.test_case "memoization" `Quick test_collector_memoized_events ] );
      ( "causal",
        Alcotest.test_case "hand-built taint cone" `Quick
          test_causal_hand_built_taint
        :: Alcotest.test_case "chrome flow shape" `Quick
             test_causal_chrome_flow_shape
        :: Alcotest.test_case "e1 eraser: all decisions tainted" `Quick
             test_causal_e1_eraser_all_decisions_tainted
        :: Alcotest.test_case "e2 passive: zero taint" `Quick
             test_causal_e2_passive_zero_taint
        :: Alcotest.test_case "e8 takeover: all decisions tainted" `Quick
             test_causal_e8_takeover_all_decisions_tainted
        :: Alcotest.test_case "legacy fixture replay" `Quick
             test_causal_legacy_fixture_replay
        :: Alcotest.test_case "recording off is byte-identical" `Quick
             test_causal_off_byte_identity
        :: Alcotest.test_case "ba_run --causal-json end to end" `Quick
             test_ba_run_causal_json_end_to_end
        :: List.map
             (QCheck_alcotest.to_alcotest
                ~rand:(Random.State.make [| 0xba009 |]))
             causal_qcheck_tests ) ]
