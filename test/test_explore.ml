(* Tests for the bounded adversary-schedule model checker:
   schedule codec round-trips, interpreter-vs-handwritten equivalence,
   minimizer soundness, and the headline rediscovery results (DFS finds
   E1- and E8-class violations from the spec alone, deterministically). *)

open Basim
open Bacore

(* --- schedule JSON round-trip (qcheck) ----------------------------------- *)

let gen_name =
  QCheck.Gen.(
    map
      (fun l -> String.concat "" (List.map (String.make 1) l))
      (list_size (int_range 1 12)
         (oneofl
            [ 'a'; 'b'; 'z'; 'A'; 'Z'; '0'; '9'; '-'; '_'; '/'; ' '; '"'; '\\' ])))

let gen_dst =
  QCheck.Gen.(
    oneof
      [ return Schedule.Everyone;
        return Schedule.Lower_half;
        return Schedule.Upper_half;
        map (fun l -> Schedule.Nodes l) (list_size (int_range 0 4) (int_bound 9))
      ])

let gen_action =
  QCheck.Gen.(
    oneof
      [ map (fun i -> Schedule.Corrupt i) (int_bound 9);
        map2
          (fun victim index -> Schedule.Remove { victim; index })
          (int_bound 9) (int_bound 3);
        (let* src = int_bound 9 in
         let* kind = oneofl [ "propose"; "ack"; "vote"; "result" ] in
         let* bit = bool in
         let* dst = gen_dst in
         return (Schedule.Inject { src; kind; bit; dst }));
        return Schedule.Halt ])

let gen_schedule =
  QCheck.Gen.(
    let* name = gen_name in
    let* model =
      oneofl
        [ Corruption.Static; Corruption.Adaptive; Corruption.Strongly_adaptive ]
    in
    let* setup = list_size (int_bound 3) (int_bound 9) in
    let* steps =
      list_size (int_bound 4)
        (let* round = int_bound 7 in
         let* actions = list_size (int_range 1 4) gen_action in
         return (round, actions))
    in
    return { Schedule.name; model; setup; steps })

let arb_schedule =
  QCheck.make gen_schedule ~print:(fun s ->
      Baobs.Json.to_string (Schedule.to_json s))

let schedule_roundtrip =
  QCheck.Test.make ~name:"schedule JSON round-trip" ~count:300 arb_schedule
    (fun s -> Schedule.of_json (Schedule.to_json s) = s)

let schedule_string_roundtrip =
  QCheck.Test.make ~name:"schedule JSON round-trip via printer" ~count:300
    arb_schedule (fun s ->
      Schedule.of_json
        (Baobs.Json.of_string (Baobs.Json.to_string (Schedule.to_json s)))
      = s)

let roundtrip_tests = [ schedule_roundtrip; schedule_string_roundtrip ]

(* --- interpreter vs hand-written attack ---------------------------------- *)

(* The schedule transcription of Split_vote.sub_third must produce a
   byte-identical seeded trace: same engine, same seed, same actions in
   the same order. This anchors the interpreter's semantics to the
   hand-written attacks the repo already trusts. *)
let test_transcription_equivalence () =
  let n = 20 and budget = 6 in
  let params = Params.make ~lambda:10 ~max_epochs:4 () in
  let proto =
    Sub_third.protocol ~params ~world:`Hybrid ~mode:Sub_third.Bit_specific
  in
  let max_rounds = 10 in
  let inputs = Scenario.split_inputs ~n in
  let run adversary seed =
    let c = Trace.collector () in
    let result =
      Engine.run ~tracer:(Trace.observe c) proto ~adversary ~n ~budget ~inputs
        ~max_rounds ~seed
    in
    (Trace.events c, Properties.agreement ~inputs result)
  in
  let sched =
    Baattacks.Schedule_targets.split_vote_sub_third ~n ~budget ~max_rounds
  in
  let interp =
    Schedule.to_adversary ~compiler:Baattacks.Schedule_targets.sub_third sched
  in
  List.iter
    (fun seed ->
      let ev_hand, v_hand = run (Baattacks.Split_vote.sub_third ()) seed in
      let ev_sched, v_sched = run interp seed in
      Alcotest.(check int)
        (Printf.sprintf "same event count (seed %Ld)" seed)
        (List.length ev_hand) (List.length ev_sched);
      Alcotest.(check bool)
        (Printf.sprintf "byte-identical event streams (seed %Ld)" seed)
        true
        (List.map Trace.to_json ev_hand = List.map Trace.to_json ev_sched);
      Alcotest.(check bool)
        (Printf.sprintf "same verdict (seed %Ld)" seed)
        true (v_hand = v_sched))
    [ 11L; 42L; 1009L ]

(* --- search instances ----------------------------------------------------- *)

(* E1-class world: n = 3, λ = n so every ACK mining attempt succeeds
   (p = λ/n = 1), unanimous-true inputs, f = 2. The known break:
   corrupt two nodes in round 0, inject false ACKs from both in round 1;
   the honest node tallies an ample false committee against a lone true
   ACK and flips — validity gone. *)
let e1_instance () =
  let n = 3 in
  let params = Params.make ~lambda:3 ~max_epochs:2 () in
  { Bacheck.Explore.protocol =
      Sub_third.protocol ~params ~world:`Hybrid ~mode:Sub_third.Bit_specific;
    compiler = Baattacks.Schedule_targets.sub_third;
    model = Corruption.Adaptive;
    n;
    budget = 2;
    inputs = Scenario.unanimous_inputs ~n true;
    max_rounds = 6;
    exec_seed = 7L;
    check = Properties.agreement }

(* E8-class world: n = 5, committee of 3, all-false inputs, f = 2. The
   known break: corrupt two committee members, inject two signed
   Result(true) messages; every node adopts the forged majority. *)
let e8_instance () =
  let n = 5 in
  { Bacheck.Explore.protocol =
      Babaselines.Static_committee.protocol ~committee_size:3;
    compiler = Baattacks.Schedule_targets.static_committee;
    model = Corruption.Adaptive;
    n;
    budget = 2;
    inputs = Scenario.unanimous_inputs ~n false;
    max_rounds = 4;
    exec_seed = 7L;
    check = Properties.agreement }

let violation_names f =
  List.map Bacheck.Explore.violation_name f.Bacheck.Explore.violations

let schedule_size (s : Schedule.t) =
  List.length s.Schedule.setup
  + List.fold_left (fun acc (_, acts) -> acc + List.length acts) 0 s.Schedule.steps

(* --- DFS rediscovery ------------------------------------------------------ *)

let test_dfs_rediscovers_e1 () =
  let inst = e1_instance () in
  let findings, stats =
    Bacheck.Explore.dfs ~space:(Bacheck.Explore.default_space ~max_round:1) inst
  in
  match findings with
  | [] -> Alcotest.failf "no violation found in %d schedules" stats.explored
  | f :: _ ->
      Alcotest.(check (list string))
        "validity violated" [ "validity" ] (violation_names f);
      Alcotest.(check int)
        "minimized to the 4-action needle" 4
        (schedule_size f.Bacheck.Explore.minimized);
      Alcotest.(check bool)
        "no trace-lint findings on the counterexample" true
        (f.Bacheck.Explore.lint = []);
      (* The needle's shape: two round-0 corruptions, two round-1 false
         ACK injections. *)
      let o = Bacheck.Explore.run_schedule inst f.Bacheck.Explore.minimized in
      Alcotest.(check bool)
        "minimized schedule still violates" true (Bacheck.Explore.violates o)

let test_dfs_rediscovers_e8 () =
  let inst = e8_instance () in
  let findings, stats =
    Bacheck.Explore.dfs ~space:(Bacheck.Explore.default_space ~max_round:1) inst
  in
  match findings with
  | [] -> Alcotest.failf "no violation found in %d schedules" stats.explored
  | f :: _ ->
      Alcotest.(check (list string))
        "validity violated" [ "validity" ] (violation_names f);
      let o = Bacheck.Explore.run_schedule inst f.Bacheck.Explore.minimized in
      Alcotest.(check bool)
        "minimized schedule still violates" true (Bacheck.Explore.violates o)

(* --- negative: trivial budgets find nothing ------------------------------- *)

let test_exhaustive_trivial_budgets_clean () =
  (* Searching only round 0 (the ACK tally needs round-1 injections)
     must exhaust the space and find nothing. *)
  let inst = e1_instance () in
  let findings, stats =
    Bacheck.Explore.dfs ~space:(Bacheck.Explore.default_space ~max_round:0) inst
  in
  Alcotest.(check int) "no findings" 0 (List.length findings);
  Alcotest.(check bool) "searched something" true (stats.explored > 0);
  Alcotest.(check bool) "space exhausted" true (not stats.node_cap_hit);
  (* Zero corruption budget: injections need corrupt sources, so the
     whole space is honest-equivalent. *)
  let inst0 = { inst with Bacheck.Explore.budget = 0 } in
  let findings0, _ =
    Bacheck.Explore.dfs
      ~space:(Bacheck.Explore.default_space ~max_round:1)
      inst0
  in
  Alcotest.(check int) "budget 0: no findings" 0 (List.length findings0)

(* --- minimizer ------------------------------------------------------------ *)

let test_minimizer_preserves_violation () =
  let inst = e1_instance () in
  (* The E1 needle padded with junk: a redundant third corruption
     attempt (over budget, skipped by the interpreter), a duplicate
     false ACK aimed at the lower half (which never reaches the honest
     node), and an inert late-round halt marker. Minimization must
     strip the junk and keep a violating core. *)
  let padded =
    { Schedule.name = "padded-e1";
      model = Corruption.Adaptive;
      setup = [];
      steps =
        [ (0, [ Schedule.Corrupt 0; Schedule.Corrupt 1; Schedule.Corrupt 2 ]);
          ( 1,
            [ Schedule.Inject
                { src = 0; kind = "ack"; bit = false; dst = Schedule.Everyone };
              Schedule.Inject
                { src = 1; kind = "ack"; bit = false; dst = Schedule.Everyone };
              Schedule.Inject
                { src = 0;
                  kind = "ack";
                  bit = false;
                  dst = Schedule.Lower_half }
            ] );
          (3, [ Schedule.Halt ]) ] }
  in
  Alcotest.(check bool)
    "padded schedule violates" true
    (Bacheck.Explore.violates (Bacheck.Explore.run_schedule inst padded));
  let min_sched = Bacheck.Explore.minimize inst padded in
  Alcotest.(check bool)
    "minimized still violates" true
    (Bacheck.Explore.violates (Bacheck.Explore.run_schedule inst min_sched));
  Alcotest.(check bool)
    (Printf.sprintf "minimized is smaller: %d < %d" (schedule_size min_sched)
       (schedule_size padded))
    true
    (schedule_size min_sched < schedule_size padded);
  (* A non-violating schedule comes back unchanged. *)
  let benign =
    { Schedule.name = "benign";
      model = Corruption.Adaptive;
      setup = [];
      steps = [ (0, [ Schedule.Corrupt 0 ]) ] }
  in
  Alcotest.(check bool)
    "benign schedule untouched" true
    (Bacheck.Explore.minimize inst benign = benign)

(* --- determinism ----------------------------------------------------------- *)

let findings_fingerprint (findings, stats) =
  Baobs.Json.to_string
    (Baobs.Json.Obj
       [ ("findings",
          Baobs.Json.List (List.map Bacheck.Explore.finding_to_json findings));
         ("stats", Bacheck.Explore.stats_to_json stats) ])

let test_dfs_deterministic () =
  let space = Bacheck.Explore.default_space ~max_round:1 in
  let run () = Bacheck.Explore.dfs ~space (e1_instance ()) in
  Alcotest.(check string)
    "two DFS runs, identical findings JSON"
    (findings_fingerprint (run ()))
    (findings_fingerprint (run ()))

let test_random_search_deterministic_and_finds () =
  (* A 2-action needle random search can realistically hit: one
     committee member, corrupt it, inject one forged Result. *)
  let inst =
    { (e8_instance ()) with
      Bacheck.Explore.protocol =
        Babaselines.Static_committee.protocol ~committee_size:1;
      n = 3;
      budget = 1;
      inputs = Scenario.unanimous_inputs ~n:3 false;
      exec_seed = 5L }
  in
  let space = Bacheck.Explore.default_space ~max_round:1 in
  let run () =
    Bacheck.Explore.random_search ~space ~samples:3000 ~seed:5L inst
  in
  let (findings, _) as first = run () in
  Alcotest.(check bool) "random search finds the 2-action needle" true
    (findings <> []);
  Alcotest.(check string)
    "two random runs, identical findings JSON" (findings_fingerprint first)
    (findings_fingerprint (run ()))

(* --- report items ---------------------------------------------------------- *)

let test_report_items_shape () =
  let inst = e1_instance () in
  let findings, _ =
    Bacheck.Explore.dfs ~space:(Bacheck.Explore.default_space ~max_round:1) inst
  in
  let items = Bacheck.Explore.to_report_items findings in
  Alcotest.(check int) "one item per finding" (List.length findings)
    (List.length items);
  List.iter
    (fun item ->
      Alcotest.(check string) "label" "validity" item.Bacheck.Report.label)
    items;
  let json = Bacheck.Report.to_json ~tool:"test" items in
  Alcotest.(check string)
    "findings schema" "ba-findings/v1"
    (Baobs.Json.as_string (Baobs.Json.member_exn "schema" json))

(* --- harness --------------------------------------------------------------- *)

let () =
  Alcotest.run "explore"
    [ ( "schedule-codec",
        List.map
          (QCheck_alcotest.to_alcotest
             ~rand:(Random.State.make [| 0xba004 |]))
          roundtrip_tests );
      ( "interpreter",
        [ Alcotest.test_case "transcribed split-vote is byte-identical" `Slow
            test_transcription_equivalence ] );
      ( "rediscovery",
        [ Alcotest.test_case "DFS rediscovers E1-class break" `Slow
            test_dfs_rediscovers_e1;
          Alcotest.test_case "DFS rediscovers E8-class break" `Slow
            test_dfs_rediscovers_e8;
          Alcotest.test_case "trivial budgets: clean" `Quick
            test_exhaustive_trivial_budgets_clean ] );
      ( "minimizer",
        [ Alcotest.test_case "preserves violation, shrinks" `Quick
            test_minimizer_preserves_violation ] );
      ( "determinism",
        [ Alcotest.test_case "DFS deterministic" `Slow test_dfs_deterministic;
          Alcotest.test_case "random search deterministic and productive"
            `Slow test_random_search_deterministic_and_finds ] );
      ( "report",
        [ Alcotest.test_case "report items and JSON shape" `Quick
            test_report_items_shape ] ) ]
