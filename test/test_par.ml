(* Bapar.Pool: determinism under parallelism.

   The load-bearing property: for ANY job list and ANY pool size,
   map_reduce equals the plain sequential fold — so flipping --jobs can
   never change an experiment aggregate. Checked with a merge that is
   deliberately NOT commutative (string concatenation), which fails the
   moment results are merged in completion order instead of job-index
   order. Alongside it, the monoid laws of Common.merge_rates that the
   parallel trial runner relies on, and exception/reuse behaviour. *)

let with_pool = Bapar.Pool.with_pool

(* --- map_reduce ≡ sequential fold ---------------------------------------- *)

let seq_fold ~merge ~init jobs =
  List.fold_left (fun acc job -> merge acc (job ())) init jobs

let qcheck_sum_determinism =
  QCheck.Test.make ~name:"map_reduce sum = sequential fold (pool 1-8)"
    ~count:60
    QCheck.(pair (list small_int) (int_range 1 8))
    (fun (xs, jobs) ->
      let thunks = List.map (fun x () -> (2 * x) + 1) xs in
      let expected = seq_fold ~merge:( + ) ~init:0 thunks in
      with_pool ~jobs (fun pool ->
          Bapar.Pool.map_reduce ~pool ~merge:( + ) ~init:0 thunks = expected))

let qcheck_order_determinism =
  (* Non-commutative merge: catches completion-order merging. *)
  QCheck.Test.make
    ~name:"map_reduce merges in job-index order (non-commutative merge)"
    ~count:60
    QCheck.(pair (list small_int) (int_range 1 8))
    (fun (xs, jobs) ->
      let thunks = List.map (fun x () -> string_of_int x ^ ";") xs in
      let expected = seq_fold ~merge:( ^ ) ~init:"" thunks in
      with_pool ~jobs (fun pool ->
          Bapar.Pool.map_reduce ~pool ~merge:( ^ ) ~init:"" thunks = expected))

let qcheck_map_order =
  QCheck.Test.make ~name:"map preserves input order" ~count:60
    QCheck.(pair (list small_int) (int_range 1 8))
    (fun (xs, jobs) ->
      with_pool ~jobs (fun pool ->
          Bapar.Pool.map ~pool (fun x -> x * x) xs
          = List.map (fun x -> x * x) xs))

(* --- merge_rates monoid laws --------------------------------------------- *)

let rates_gen =
  let open QCheck.Gen in
  let nat = int_bound 1000 in
  map
    (fun ((a, b, c, d, e), (f, g, h, i, j)) ->
      { Baexperiments.Common.trials = a;
        consistency_fail = b;
        validity_fail = c;
        termination_fail = d;
        total_rounds = e;
        total_multicasts = f;
        total_multicast_bits = g;
        total_unicasts = h;
        total_removals = i;
        total_corruptions = j })
    (pair (tup5 nat nat nat nat nat) (tup5 nat nat nat nat nat))

let rates_arb = QCheck.make rates_gen

let qcheck_merge_associative =
  QCheck.Test.make ~name:"merge_rates associative" ~count:200
    (QCheck.triple rates_arb rates_arb rates_arb)
    (fun (a, b, c) ->
      let open Baexperiments.Common in
      merge_rates a (merge_rates b c) = merge_rates (merge_rates a b) c)

let qcheck_merge_commutative =
  (* Reindexing trials permutes the singleton aggregates; commutativity
     of the merge is what makes the reindexed fold agree. *)
  QCheck.Test.make ~name:"merge_rates commutative" ~count:200
    (QCheck.pair rates_arb rates_arb)
    (fun (a, b) ->
      let open Baexperiments.Common in
      merge_rates a b = merge_rates b a)

let qcheck_merge_identity =
  QCheck.Test.make ~name:"merge_rates identity empty_rates" ~count:100
    rates_arb
    (fun a ->
      let open Baexperiments.Common in
      merge_rates empty_rates a = a && merge_rates a empty_rates = a)

(* --- unit tests ----------------------------------------------------------- *)

let test_empty_jobs () =
  with_pool ~jobs:4 (fun pool ->
      Alcotest.(check int) "empty list yields init" 42
        (Bapar.Pool.map_reduce ~pool ~merge:( + ) ~init:42 []);
      Alcotest.(check (list int)) "empty map" []
        (Bapar.Pool.map ~pool (fun x -> x) []))

let test_pool_reuse () =
  (* One pool, many batches of different shapes — workers must survive
     between batches and the queue must come back empty. *)
  with_pool ~jobs:3 (fun pool ->
      for batch = 1 to 20 do
        let thunks = List.init batch (fun i () -> i + batch) in
        let expected = List.fold_left ( + ) 0 (List.init batch (fun i -> i + batch)) in
        Alcotest.(check int)
          (Printf.sprintf "batch %d" batch)
          expected
          (Bapar.Pool.map_reduce ~pool ~merge:( + ) ~init:0 thunks)
      done)

exception Boom of int

let test_exception_propagation () =
  with_pool ~jobs:4 (fun pool ->
      (* The smallest-index failure wins, deterministically, and later
         jobs still ran to completion before the raise. *)
      let ran = Array.make 6 false in
      let thunks =
        List.init 6 (fun i () ->
            ran.(i) <- true;
            if i = 2 || i = 4 then raise (Boom i);
            i)
      in
      (match Bapar.Pool.map_reduce ~pool ~merge:( + ) ~init:0 thunks with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i -> Alcotest.(check int) "first failing index" 2 i);
      Alcotest.(check bool) "all jobs executed" true
        (Array.for_all (fun b -> b) ran);
      (* The pool survives a raising batch. *)
      Alcotest.(check int) "pool still works" 6
        (Bapar.Pool.map_reduce ~pool ~merge:( + ) ~init:0
           (List.init 4 (fun i () -> i))))

let test_size_and_clamp () =
  with_pool ~jobs:3 (fun pool ->
      Alcotest.(check int) "size" 3 (Bapar.Pool.size pool));
  with_pool ~jobs:(-5) (fun pool ->
      Alcotest.(check int) "clamped to 1" 1 (Bapar.Pool.size pool))

let test_sequential_pool_spawns_nothing () =
  (* jobs:1 must run in the calling domain: observable via Domain.self
     equality inside the job. *)
  let self = Domain.self () in
  with_pool ~jobs:1 (fun pool ->
      let ran_on =
        Bapar.Pool.map ~pool (fun () -> Domain.self ()) [ (); (); () ]
      in
      Alcotest.(check bool) "all on caller" true
        (List.for_all (fun d -> d = self) ran_on))

let test_parallel_actually_uses_domains () =
  (* With enough jobs, at least one job lands off the calling domain —
     the pool is not secretly sequential. 64 sleeps make starvation of
     every worker vanishingly unlikely. *)
  let self = Domain.self () in
  with_pool ~jobs:4 (fun pool ->
      let ran_on =
        Bapar.Pool.map ~pool
          (fun () ->
            Unix.sleepf 0.001;
            Domain.self ())
          (List.init 64 (fun _ -> ()))
      in
      Alcotest.(check bool) "some job ran on a worker domain" true
        (List.exists (fun d -> not (d = self)) ran_on))

let test_shutdown_idempotent () =
  let pool = Bapar.Pool.create ~jobs:4 in
  ignore (Bapar.Pool.map_reduce ~pool ~merge:( + ) ~init:0
            (List.init 8 (fun i () -> i)));
  Bapar.Pool.shutdown pool;
  Bapar.Pool.shutdown pool

let test_default_jobs_positive () =
  let j = Bapar.Pool.default_jobs () in
  Alcotest.(check bool) "within clamp" true (j >= 1 && j <= 64)

(* Replacing the engine's intra-round pool must shut the displaced pool
   down (its worker domains would otherwise leak and keep the process
   alive); dropping to jobs:1 must release the pool entirely. *)
let test_engine_intra_pool_lifecycle () =
  let restore =
    match Basim.Engine.current_intra_pool () with
    | Some p -> Bapar.Pool.size p
    | None -> 1
  in
  Fun.protect
    ~finally:(fun () -> Basim.Engine.set_intra_jobs restore)
    (fun () ->
      Basim.Engine.set_intra_jobs 2;
      let first =
        match Basim.Engine.current_intra_pool () with
        | Some p -> p
        | None -> Alcotest.fail "set_intra_jobs 2 installed no pool"
      in
      Alcotest.(check bool) "fresh pool live" true (Bapar.Pool.is_live first);
      Basim.Engine.set_intra_jobs 3;
      Alcotest.(check bool)
        "displaced pool shut down" false (Bapar.Pool.is_live first);
      let second =
        match Basim.Engine.current_intra_pool () with
        | Some p -> p
        | None -> Alcotest.fail "set_intra_jobs 3 installed no pool"
      in
      Alcotest.(check bool) "replacement live" true (Bapar.Pool.is_live second);
      Basim.Engine.set_intra_jobs 1;
      Alcotest.(check bool)
        "jobs:1 shuts the pool down" false
        (Bapar.Pool.is_live second);
      Alcotest.(check bool)
        "jobs:1 keeps no pool" true
        (Basim.Engine.current_intra_pool () = None))

(* --- worker stats --------------------------------------------------------- *)

let test_pool_stats_sum_to_submitted () =
  (* The domain-pool utilization contract: every job is charged to
     exactly one executor slot, at every pool size. *)
  List.iter
    (fun jobs ->
      Bapar.Pool.with_pool ~jobs (fun pool ->
          let submitted = 37 in
          let results =
            Bapar.Pool.map ~pool
              (fun i ->
                ignore (Sys.opaque_identity (List.init 100 (fun j -> i + j)));
                i * 2)
              (List.init submitted (fun i -> i))
          in
          Alcotest.(check int) "results intact" submitted
            (List.length results);
          let stats = Bapar.Pool.stats pool in
          Alcotest.(check int)
            (Printf.sprintf "jobs %d: one stats row per executor" jobs)
            (Bapar.Pool.size pool) (List.length stats);
          Alcotest.(check (list int))
            (Printf.sprintf "jobs %d: slots in order" jobs)
            (List.init (Bapar.Pool.size pool) (fun i -> i))
            (List.map (fun s -> s.Bapar.Pool.worker) stats);
          Alcotest.(check int)
            (Printf.sprintf "jobs %d: jobs_run sums to submitted" jobs)
            submitted
            (List.fold_left (fun acc s -> acc + s.Bapar.Pool.jobs_run) 0 stats);
          List.iter
            (fun s ->
              Alcotest.(check bool) "busy_ns nonneg" true
                (s.Bapar.Pool.busy_ns >= 0.0);
              Alcotest.(check bool) "queue_wait_ns nonneg" true
                (s.Bapar.Pool.queue_wait_ns >= 0.0);
              Alcotest.(check bool) "minor_words nonneg" true
                (s.Bapar.Pool.minor_words >= 0.0))
            stats;
          (* A second batch accumulates on top of the first. *)
          ignore (Bapar.Pool.map ~pool (fun i -> i) (List.init 5 (fun i -> i)));
          Alcotest.(check int)
            (Printf.sprintf "jobs %d: stats accumulate" jobs)
            (submitted + 5)
            (List.fold_left
               (fun acc s -> acc + s.Bapar.Pool.jobs_run)
               0 (Bapar.Pool.stats pool))))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let test_pool_stats_sequential_stays_on_caller () =
  Bapar.Pool.with_pool ~jobs:1 (fun pool ->
      ignore (Bapar.Pool.map ~pool (fun i -> i) (List.init 9 (fun i -> i)));
      match Bapar.Pool.stats pool with
      | [ s ] ->
          Alcotest.(check int) "slot 0" 0 s.Bapar.Pool.worker;
          Alcotest.(check int) "all jobs on the caller" 9 s.Bapar.Pool.jobs_run;
          Alcotest.(check bool) "no queue wait on the direct path" true
            (s.Bapar.Pool.queue_wait_ns = 0.0)
      | stats ->
          Alcotest.fail
            (Printf.sprintf "expected 1 stats row, got %d" (List.length stats)))

(* --- shard ---------------------------------------------------------------- *)

let test_shard_covers_range_exactly_once () =
  (* Chunk boundaries must partition [0, n): every index hit exactly
     once, for every pool size, including n = 0/1 and n < size. The
     per-chunk writes land in disjoint slots, so the array needs no
     synchronisation — the same discipline the engine's phase-1 shard
     relies on. *)
  List.iter
    (fun jobs ->
      Bapar.Pool.with_pool ~jobs (fun pool ->
          List.iter
            (fun n ->
              let hits = Array.make (max n 1) 0 in
              Bapar.Pool.shard ~pool ~n (fun ~lo ~hi ->
                  for i = lo to hi - 1 do
                    hits.(i) <- hits.(i) + 1
                  done);
              Alcotest.(check bool)
                (Printf.sprintf "jobs %d n %d: each index exactly once" jobs n)
                true
                (Array.for_all (( = ) 1) (Array.sub hits 0 n)
                && (n > 0 || hits.(0) = 0)))
            [ 0; 1; 2; 3; 7; 64; 65 ]))
    [ 1; 2; 3; 4; 8 ]

let test_shard_exception_smallest_chunk () =
  Bapar.Pool.with_pool ~jobs:4 (fun pool ->
      match
        Bapar.Pool.shard ~pool ~n:40 (fun ~lo ~hi ->
            ignore hi;
            raise (Boom lo))
      with
      | () -> Alcotest.fail "expected Boom"
      | exception Boom lo ->
          Alcotest.(check int) "smallest-index chunk's exception wins" 0 lo)

(* --- concurrent batch submission ------------------------------------------ *)

let test_concurrent_batch_submission () =
  (* Several driver domains submit batches to ONE shared pool at once —
     the trial-pool-workers-sharding-onto-the-intra-pool topology. Each
     driver must get exactly its own results back, in its own order,
     across many differently-shaped batches. *)
  Bapar.Pool.with_pool ~jobs:4 (fun pool ->
      let drivers =
        Array.init 4 (fun d ->
            Domain.spawn (fun () ->
                let ok = ref true in
                for batch = 1 to 25 do
                  let xs =
                    List.init
                      (1 + ((d + batch) mod 7))
                      (fun i -> (d * 1000) + (batch * 10) + i)
                  in
                  let got = Bapar.Pool.map ~pool (fun x -> x * 3) xs in
                  if got <> List.map (fun x -> x * 3) xs then ok := false
                done;
                !ok))
      in
      Array.iteri
        (fun d domain ->
          Alcotest.(check bool)
            (Printf.sprintf "driver %d saw only its own batch results" d)
            true (Domain.join domain))
        drivers)

(* --- measure determinism at the Common level ------------------------------ *)

let kernel s =
  let proto =
    Bacore.Warmup_third.protocol
      ~params:(Bacore.Params.make ~lambda:10 ~max_epochs:6 ())
  in
  let inputs = Basim.Scenario.unanimous_inputs ~n:7 true in
  let result =
    Basim.Engine.run proto
      ~adversary:(Basim.Engine.passive ~name:"p" ~model:Basim.Corruption.Adaptive)
      ~n:7 ~budget:0 ~inputs ~max_rounds:20 ~seed:s
  in
  (result, Basim.Properties.agreement ~inputs result)

let test_measure_jobs_equivalence () =
  let base = Baexperiments.Common.measure ~jobs:1 ~reps:12 ~seed:5L kernel in
  List.iter
    (fun jobs ->
      let r = Baexperiments.Common.measure ~jobs ~reps:12 ~seed:5L kernel in
      Alcotest.(check bool)
        (Printf.sprintf "jobs %d record equal" jobs)
        true (r = base);
      Alcotest.(check string)
        (Printf.sprintf "jobs %d json equal" jobs)
        (Baobs.Json.to_string (Baexperiments.Common.rates_to_json base))
        (Baobs.Json.to_string (Baexperiments.Common.rates_to_json r)))
    [ 2; 3; 4; 8 ]

let () =
  let qcheck =
    List.map
      (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xba006 |]))
  in
  Alcotest.run "par"
    [ ( "determinism",
        qcheck
          [ qcheck_sum_determinism; qcheck_order_determinism; qcheck_map_order ]
      );
      ( "merge-laws",
        qcheck
          [ qcheck_merge_associative; qcheck_merge_commutative;
            qcheck_merge_identity ] );
      ( "pool",
        [ Alcotest.test_case "empty jobs" `Quick test_empty_jobs;
          Alcotest.test_case "reuse across batches" `Quick test_pool_reuse;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagation;
          Alcotest.test_case "size and clamp" `Quick test_size_and_clamp;
          Alcotest.test_case "jobs:1 stays on caller" `Quick
            test_sequential_pool_spawns_nothing;
          Alcotest.test_case "jobs:4 uses worker domains" `Quick
            test_parallel_actually_uses_domains;
          Alcotest.test_case "shutdown idempotent" `Quick
            test_shutdown_idempotent;
          Alcotest.test_case "default_jobs in range" `Quick
            test_default_jobs_positive;
          Alcotest.test_case "engine intra-pool lifecycle" `Quick
            test_engine_intra_pool_lifecycle;
          Alcotest.test_case "stats sum to submitted (sizes 1-8)" `Quick
            test_pool_stats_sum_to_submitted;
          Alcotest.test_case "stats sequential on caller" `Quick
            test_pool_stats_sequential_stays_on_caller ] );
      ( "shard",
        [ Alcotest.test_case "chunks cover [0,n) exactly once" `Quick
            test_shard_covers_range_exactly_once;
          Alcotest.test_case "smallest-chunk exception wins" `Quick
            test_shard_exception_smallest_chunk ] );
      ( "concurrent-drivers",
        [ Alcotest.test_case "4 domains share one pool" `Quick
            test_concurrent_batch_submission ] );
      ( "measure",
        [ Alcotest.test_case "measure identical across jobs" `Quick
            test_measure_jobs_equivalence ] ) ]
