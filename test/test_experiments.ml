(* Smoke tests for the experiment suite: every experiment must execute at
   low repetitions, produce non-empty tables, and — where the claim is
   sharp enough to assert — reproduce the paper's direction. *)

let tables_of entry = entry.Baexperiments.All.run ~reps:2 ()

let test_all_experiments_execute () =
  List.iter
    (fun entry ->
      let tables = tables_of entry in
      Alcotest.(check bool)
        (entry.Baexperiments.All.id ^ " produces tables")
        true
        (tables <> []);
      List.iter
        (fun t ->
          let rendered = Bastats.Table.render t in
          Alcotest.(check bool)
            (entry.Baexperiments.All.id ^ " table non-empty")
            true
            (String.length rendered > 40))
        tables)
    Baexperiments.All.experiments

let test_experiment_ids_unique () =
  let ids =
    List.map (fun e -> e.Baexperiments.All.id) Baexperiments.All.experiments
  in
  Alcotest.(check int) "ids unique" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_run_one_dispatch () =
  (* run_one must find experiments case-insensitively and reject unknowns.
     Use E6, the cheapest. *)
  Alcotest.(check bool) "e6 found" true (Baexperiments.All.run_one ~quick:true "e6");
  Alcotest.(check bool) "unknown rejected" false
    (Baexperiments.All.run_one ~quick:true "E42")

let test_common_measure_counts () =
  let rates =
    Baexperiments.Common.measure ~reps:4 ~seed:1L (fun seed ->
        let inputs = Basim.Scenario.unanimous_inputs ~n:7 true in
        let proto = Bacore.Warmup_third.protocol ~params:(Bacore.Params.make ~lambda:10 ~max_epochs:6 ()) in
        let result =
          Basim.Engine.run proto
            ~adversary:(Basim.Engine.passive ~name:"p" ~model:Basim.Corruption.Adaptive)
            ~n:7 ~budget:0 ~inputs ~max_rounds:20 ~seed
        in
        (result, Basim.Properties.agreement ~inputs result))
  in
  Alcotest.(check int) "trials" 4 rates.Baexperiments.Common.trials;
  Alcotest.(check int) "no failures" 0 rates.Baexperiments.Common.consistency_fail;
  Alcotest.(check bool) "rounds positive" true
    (Baexperiments.Common.mean_rounds rates > 0.0)

let test_common_seed_derivation () =
  let a = Baexperiments.Common.seed_of 1L 0 in
  let b = Baexperiments.Common.seed_of 1L 1 in
  let a' = Baexperiments.Common.seed_of 1L 0 in
  Alcotest.(check int64) "stable" a a';
  Alcotest.(check bool) "distinct" true (a <> b)

(* Every aggregate in EXPERIMENTS.md is a function of these derived
   seeds, so their exact values are part of the reproduction: pin a
   sample so a silent change to the derivation (Rng.split_named, the
   label scheme, …) fails loudly rather than shifting every table. *)
let test_seed_of_regression_pins () =
  List.iter
    (fun (base, k, expected) ->
      Alcotest.(check int64)
        (Printf.sprintf "seed_of %Ld %d" base k)
        expected
        (Baexperiments.Common.seed_of base k))
    [ (101L, 0, -4890805870649240105L);
      (101L, 1, -4432694470564943428L);
      (101L, 9, -7475388173511984057L);
      (103L, 0, 2979518030656827812L);
      (103L, 5, -3530997928206117773L);
      (109L, 2, 4789723745784372894L);
      (1L, 0, -5978117107769374440L);
      (2L, 11, -7529093808955307694L) ]

let test_seed_of_pairwise_distinct () =
  (* 10k trials per base, plus cross-base: one collision would silently
     correlate two Monte-Carlo trials. *)
  let module S = Set.Make (Int64) in
  let reps = 10_000 in
  let all = ref S.empty in
  List.iter
    (fun base ->
      let seen = ref S.empty in
      for k = 0 to reps - 1 do
        seen := S.add (Baexperiments.Common.seed_of base k) !seen
      done;
      Alcotest.(check int)
        (Printf.sprintf "base %Ld: %d distinct" base reps)
        reps (S.cardinal !seen);
      all := S.union !all !seen)
    [ 101L; 103L ];
  Alcotest.(check int) "no cross-base collisions" (2 * reps)
    (S.cardinal !all)

(* --- Parallel/sequential golden equivalence ------------------------------- *)

(* E1, E2 and E8 rendered end-to-end with ~jobs:1 and ~jobs:4 on the
   same base seed: every table must be byte-identical — the determinism
   guarantee README documents for --jobs, asserted at the level users
   see. *)
let run_rendered ~jobs id =
  Baexperiments.Common.set_jobs jobs;
  match
    List.find_opt
      (fun e -> e.Baexperiments.All.id = id)
      Baexperiments.All.experiments
  with
  | None -> Alcotest.fail ("no experiment " ^ id)
  | Some entry ->
      let tables = entry.Baexperiments.All.run ~reps:2 () in
      Baexperiments.Common.set_jobs 1;
      List.map Bastats.Table.render tables

let test_golden_parallel_tables () =
  List.iter
    (fun id ->
      let seq = run_rendered ~jobs:1 id in
      let par = run_rendered ~jobs:4 id in
      Alcotest.(check (list string)) (id ^ " tables identical") seq par)
    [ "E1"; "E2"; "E8" ]

(* The same equivalence one level down, on the rates records and their
   JSON, for an E8-style kernel (takeover of a static committee). *)
let test_golden_parallel_rates () =
  let kernel s =
    let proto =
      Babaselines.Static_committee.protocol ~committee_size:12
    in
    let inputs = Basim.Scenario.unanimous_inputs ~n:60 false in
    let result =
      Basim.Engine.run proto
        ~adversary:(Baattacks.Takeover.make ~force:true ())
        ~n:60 ~budget:24 ~inputs ~max_rounds:6 ~seed:s
    in
    (result, Basim.Properties.agreement ~inputs result)
  in
  let seq = Baexperiments.Common.measure ~jobs:1 ~reps:6 ~seed:109L kernel in
  let par = Baexperiments.Common.measure ~jobs:4 ~reps:6 ~seed:109L kernel in
  Alcotest.(check bool) "rates records identical" true (seq = par);
  Alcotest.(check string) "rates_to_json identical"
    (Baobs.Json.to_string (Baexperiments.Common.rates_to_json seq))
    (Baobs.Json.to_string (Baexperiments.Common.rates_to_json par))

let test_rate_formatting () =
  Alcotest.(check string) "rate" "1/4 (25.0%)" (Baexperiments.Common.rate 1 4);
  Alcotest.(check string) "pct" "50.0%" (Baexperiments.Common.pct 0.5)

(* --- Pinned property tests ------------------------------------------------ *)

let experiments_qcheck_tests =
  (* Trial-seed derivation backs every experiment's reproducibility:
     it must be a pure function of (base, index) and collision-free
     across the indices one sweep uses. *)
  [ QCheck.Test.make
      ~name:"seed_of: deterministic and injective over trial indices"
      ~count:200
      QCheck.(
        make
          ~print:(fun (b, i, j) -> Printf.sprintf "(%d, %d, %d)" b i j)
          Gen.(tup3 (0 -- 1_000) (0 -- 500) (0 -- 500)))
      (fun (base, i, j) ->
        let base = Int64.of_int base in
        let si = Baexperiments.Common.seed_of base i in
        Baexperiments.Common.seed_of base i = si
        && (i = j || si <> Baexperiments.Common.seed_of base j)) ]

let () =
  Alcotest.run "experiments"
    [ ( "suite",
        [ Alcotest.test_case "all execute" `Slow test_all_experiments_execute;
          Alcotest.test_case "ids unique" `Quick test_experiment_ids_unique;
          Alcotest.test_case "run_one dispatch" `Quick test_run_one_dispatch ] );
      ( "common",
        [ Alcotest.test_case "measure" `Quick test_common_measure_counts;
          Alcotest.test_case "seed derivation" `Quick test_common_seed_derivation;
          Alcotest.test_case "seed_of regression pins" `Quick
            test_seed_of_regression_pins;
          Alcotest.test_case "seed_of pairwise distinct" `Quick
            test_seed_of_pairwise_distinct;
          Alcotest.test_case "formatting" `Quick test_rate_formatting ] );
      ( "golden-parallel",
        [ Alcotest.test_case "E1/E2/E8 tables jobs 1 = jobs 4" `Slow
            test_golden_parallel_tables;
          Alcotest.test_case "rates and json jobs 1 = jobs 4" `Quick
            test_golden_parallel_rates ] );
      ( "qcheck",
        List.map
          (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xba00c |]))
          experiments_qcheck_tests ) ]
