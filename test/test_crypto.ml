(* Unit and property tests for the cryptographic substrate. *)

open Bacrypto

let hex = Sha256.to_hex

(* --- SHA-256: NIST / well-known vectors ----------------------------- *)

let test_sha256_empty () =
  Alcotest.(check string) "sha256(\"\")"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (hex (Sha256.digest_string ""))

let test_sha256_abc () =
  Alcotest.(check string) "sha256(\"abc\")"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (hex (Sha256.digest_string "abc"))

let test_sha256_two_blocks () =
  Alcotest.(check string) "sha256 of 448-bit message"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (hex (Sha256.digest_string
            "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))

let test_sha256_million_a () =
  Alcotest.(check string) "sha256 of one million 'a'"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (hex (Sha256.digest_string (String.make 1_000_000 'a')))

let test_sha256_exact_block_boundaries () =
  (* Lengths chosen to straddle the 55/56/63/64-byte padding boundaries. *)
  let reference = [
    (55, "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318");
    (56, "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a");
    (63, "7d3e74a05d7db15bce4ad9ec0658ea98e3f06eeecf16b4c6fff2da457ddc2f34");
    (64, "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb");
    (65, "635361c48bb9eab14198e76ea8ab7f1a41685d6ad62aa9146d301d4f17eb0ae0");
  ] in
  List.iter
    (fun (len, expect) ->
      Alcotest.(check string)
        (Printf.sprintf "sha256 of %d 'a's" len)
        expect
        (hex (Sha256.digest_string (String.make len 'a'))))
    reference

let test_sha256_incremental_matches_oneshot () =
  let msg = String.init 1000 (fun i -> Char.chr (i mod 251)) in
  let oneshot = Sha256.digest_string msg in
  (* Feed in irregular chunks. *)
  let ctx = Sha256.init () in
  let chunks = [ 0; 1; 3; 7; 64; 65; 128; 200; 531; 1 ] in
  let pos = ref 0 in
  List.iter
    (fun len ->
      let len = min len (String.length msg - !pos) in
      Sha256.feed_bytes ctx (Bytes.of_string msg) ~pos:!pos ~len;
      pos := !pos + len)
    chunks;
  Sha256.feed_bytes ctx (Bytes.of_string msg) ~pos:!pos
    ~len:(String.length msg - !pos);
  Alcotest.(check string) "incremental = one-shot" (hex oneshot)
    (hex (Sha256.finalize ctx))

let test_sha256_concat_injective () =
  let d1 = Sha256.digest_concat [ "ab"; "c" ] in
  let d2 = Sha256.digest_concat [ "a"; "bc" ] in
  let d3 = Sha256.digest_concat [ "abc" ] in
  Alcotest.(check bool) "boundary shift changes digest" false
    (String.equal d1 d2);
  Alcotest.(check bool) "arity change changes digest" false
    (String.equal d1 d3)

let test_sha256_feed_bounds () =
  let ctx = Sha256.init () in
  Alcotest.check_raises "negative pos"
    (Invalid_argument "Sha256.feed_bytes: range out of bounds") (fun () ->
      Sha256.feed_bytes ctx (Bytes.create 4) ~pos:(-1) ~len:2);
  Alcotest.check_raises "overlong len"
    (Invalid_argument "Sha256.feed_bytes: range out of bounds") (fun () ->
      Sha256.feed_bytes ctx (Bytes.create 4) ~pos:2 ~len:3)

(* --- HMAC: RFC 4231 vectors ------------------------------------------ *)

let test_hmac_rfc4231_case1 () =
  Alcotest.(check string) "rfc4231 #1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (hex (Hmac.mac ~key:(String.make 20 '\x0b') "Hi There"))

let test_hmac_rfc4231_case2 () =
  Alcotest.(check string) "rfc4231 #2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (hex (Hmac.mac ~key:"Jefe" "what do ya want for nothing?"))

let test_hmac_rfc4231_case3 () =
  Alcotest.(check string) "rfc4231 #3"
    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
    (hex (Hmac.mac ~key:(String.make 20 '\xaa') (String.make 50 '\xdd')))

let test_hmac_long_key () =
  (* RFC 4231 #6: 131-byte key (longer than the block size). *)
  Alcotest.(check string) "rfc4231 #6"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (hex
       (Hmac.mac
          ~key:(String.make 131 '\xaa')
          "Test Using Larger Than Block-Size Key - Hash Key First"))

let test_hmac_equal () =
  Alcotest.(check bool) "equal tags" true (Hmac.equal "abcd" "abcd");
  Alcotest.(check bool) "different tags" false (Hmac.equal "abcd" "abce");
  Alcotest.(check bool) "length mismatch" false (Hmac.equal "abc" "abcd")

(* --- RNG -------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_split_independent () =
  let parent = Rng.create 7L in
  let child = Rng.split parent in
  let xs = List.init 50 (fun _ -> Rng.next_int64 parent) in
  let ys = List.init 50 (fun _ -> Rng.next_int64 child) in
  Alcotest.(check bool) "streams differ" false (xs = ys)

let test_rng_split_named_stable () =
  let mk () = Rng.create 9L in
  let a = Rng.split_named (mk ()) "alpha" in
  let a' = Rng.split_named (mk ()) "alpha" in
  let b = Rng.split_named (mk ()) "beta" in
  Alcotest.(check int64) "same label, same stream" (Rng.next_int64 a)
    (Rng.next_int64 a');
  Alcotest.(check bool) "different label, different stream" false
    (Rng.next_int64 (Rng.split_named (mk ()) "alpha") = Rng.next_int64 b)

let test_rng_int_bounds () =
  let rng = Rng.create 3L in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done;
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_float_range () =
  let rng = Rng.create 4L in
  for _ = 1 to 1000 do
    let v = Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_rng_bernoulli_extremes () =
  let rng = Rng.create 5L in
  Alcotest.(check bool) "p=0 never" false (Rng.bernoulli rng 0.0);
  Alcotest.(check bool) "p=1 always" true (Rng.bernoulli rng 1.0)

let test_rng_bernoulli_mean () =
  let rng = Rng.create 6L in
  let n = 20_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let mean = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.3f within 0.03 of 0.3" mean)
    true
    (abs_float (mean -. 0.3) < 0.03)

let test_rng_sample_without_replacement () =
  let rng = Rng.create 8L in
  for _ = 1 to 100 do
    let k = Rng.int rng 10 and n = 10 + Rng.int rng 20 in
    let s = Rng.sample_without_replacement rng k n in
    Alcotest.(check int) "size k" k (List.length s);
    Alcotest.(check bool) "sorted distinct in range" true
      (List.for_all (fun x -> x >= 0 && x < n) s
      && List.sort_uniq compare s = s)
  done

let test_rng_shuffle_permutation () =
  let rng = Rng.create 11L in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

(* --- PRF -------------------------------------------------------------- *)

let test_prf_deterministic () =
  let rng = Rng.create 21L in
  let key = Prf.gen rng in
  Alcotest.(check string) "same (k,m) same output"
    (hex (Prf.eval key "mine:ACK:3:1"))
    (hex (Prf.eval key "mine:ACK:3:1"))

let test_prf_distinct_messages () =
  let rng = Rng.create 22L in
  let key = Prf.gen rng in
  Alcotest.(check bool) "distinct messages differ" false
    (String.equal (Prf.eval key "a") (Prf.eval key "b"))

let test_prf_output_fraction_range () =
  let rng = Rng.create 23L in
  let key = Prf.gen rng in
  for i = 0 to 999 do
    let f = Prf.output_fraction (Prf.eval key (string_of_int i)) in
    Alcotest.(check bool) "fraction in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_prf_below_difficulty_rate () =
  (* Empirical success rate of the eligibility lottery should match the
     difficulty parameter — this is the statistical heart of Fmine. *)
  let rng = Rng.create 24L in
  let key = Prf.gen rng in
  let p = 0.05 and n = 20_000 in
  let hits = ref 0 in
  for i = 0 to n - 1 do
    if Prf.below_difficulty (Prf.eval key (string_of_int i)) ~p then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "rate %.4f close to %.2f" rate p)
    true
    (abs_float (rate -. p) < 0.01)

(* --- Commitments ------------------------------------------------------ *)

let test_commitment_roundtrip () =
  let rng = Rng.create 31L in
  let crs = Commitment.gen rng in
  let salt = Commitment.fresh_salt rng in
  let c = Commitment.commit crs ~value:"secret" ~salt in
  Alcotest.(check bool) "opens correctly" true
    (Commitment.verify crs c ~value:"secret" ~salt)

let test_commitment_binding () =
  let rng = Rng.create 32L in
  let crs = Commitment.gen rng in
  let salt = Commitment.fresh_salt rng in
  let c = Commitment.commit crs ~value:"secret" ~salt in
  Alcotest.(check bool) "wrong value rejected" false
    (Commitment.verify crs c ~value:"other" ~salt);
  Alcotest.(check bool) "wrong salt rejected" false
    (Commitment.verify crs c ~value:"secret" ~salt:(Commitment.fresh_salt rng))

let test_commitment_crs_separation () =
  let rng = Rng.create 33L in
  let crs1 = Commitment.gen rng and crs2 = Commitment.gen rng in
  let salt = Commitment.fresh_salt rng in
  let c = Commitment.commit crs1 ~value:"v" ~salt in
  Alcotest.(check bool) "commitment bound to its CRS" false
    (Commitment.verify crs2 c ~value:"v" ~salt)

(* --- NIZK ------------------------------------------------------------- *)

let nizk_setting () =
  let rng = Rng.create 41L in
  let crs_comm = Commitment.gen rng in
  let crs_nizk = Nizk.gen rng in
  let sk = Prf.gen rng in
  let salt = Commitment.fresh_salt rng in
  let com = Commitment.commit crs_comm ~value:sk ~salt in
  (rng, crs_comm, crs_nizk, sk, salt, com)

let statement crs_comm com sk msg =
  { Nizk.rho = Prf.eval sk msg;
    com;
    crs_comm = Commitment.crs_to_string crs_comm;
    msg }

let test_nizk_completeness () =
  let _, crs_comm, crs_nizk, sk, salt, com = nizk_setting () in
  let stmt = statement crs_comm com sk "propose:7:0" in
  let proof = Nizk.prove crs_nizk crs_comm stmt { Nizk.sk; salt } in
  Alcotest.(check bool) "honest proof verifies" true
    (Nizk.verify crs_nizk stmt proof)

let test_nizk_rejects_false_statement () =
  let _, crs_comm, crs_nizk, sk, salt, com = nizk_setting () in
  let bad = { (statement crs_comm com sk "m") with Nizk.rho = String.make 32 'x' } in
  Alcotest.check_raises "prove refuses false statement"
    (Invalid_argument "Nizk.prove: statement not in the language") (fun () ->
      ignore (Nizk.prove crs_nizk crs_comm bad { Nizk.sk; salt }))

let test_nizk_soundness_message_binding () =
  let _, crs_comm, crs_nizk, sk, salt, com = nizk_setting () in
  let stmt = statement crs_comm com sk "m1" in
  let proof = Nizk.prove crs_nizk crs_comm stmt { Nizk.sk; salt } in
  (* Replaying the proof on a different statement must fail. *)
  let stmt2 = statement crs_comm com sk "m2" in
  Alcotest.(check bool) "proof bound to statement" false
    (Nizk.verify crs_nizk stmt2 proof)

let test_nizk_wrong_key_witness () =
  let rng, crs_comm, crs_nizk, sk, _salt, _com = nizk_setting () in
  (* A witness whose key does not match the commitment is rejected. *)
  let other_sk = Prf.gen rng in
  let other_salt = Commitment.fresh_salt rng in
  let com2 = Commitment.commit crs_comm ~value:other_sk ~salt:other_salt in
  let stmt = statement crs_comm com2 sk "m" in
  Alcotest.check_raises "mismatched witness"
    (Invalid_argument "Nizk.prove: statement not in the language") (fun () ->
      ignore (Nizk.prove crs_nizk crs_comm stmt { Nizk.sk; salt = other_salt }))

(* --- Signatures -------------------------------------------------------- *)

let test_signature_roundtrip () =
  let rng = Rng.create 51L in
  let scheme = Signature.setup ~n:5 rng in
  let tag = Signature.sign scheme ~signer:3 "vote:1:0" in
  Alcotest.(check bool) "verifies" true
    (Signature.verify scheme ~signer:3 "vote:1:0" tag)

let test_signature_wrong_signer () =
  let rng = Rng.create 52L in
  let scheme = Signature.setup ~n:5 rng in
  let tag = Signature.sign scheme ~signer:3 "vote:1:0" in
  Alcotest.(check bool) "other signer rejected" false
    (Signature.verify scheme ~signer:2 "vote:1:0" tag)

let test_signature_wrong_message () =
  let rng = Rng.create 53L in
  let scheme = Signature.setup ~n:5 rng in
  let tag = Signature.sign scheme ~signer:1 "vote:1:0" in
  Alcotest.(check bool) "other message rejected" false
    (Signature.verify scheme ~signer:1 "vote:1:1" tag)

let test_signature_corrupt_key_signs () =
  let rng = Rng.create 54L in
  let scheme = Signature.setup ~n:4 rng in
  let key = Signature.corrupt_key scheme 2 in
  (* An adversary holding the key can produce valid tags for that node —
     and only that node. *)
  let forged = Hmac.mac_concat ~key [ "sig"; "equivocate" ] in
  Alcotest.(check bool) "corrupt key signs for its node" true
    (Signature.verify scheme ~signer:2 "equivocate" forged);
  Alcotest.(check bool) "corrupt key cannot sign for others" false
    (Signature.verify scheme ~signer:1 "equivocate" forged)

let test_signature_out_of_range () =
  let rng = Rng.create 55L in
  let scheme = Signature.setup ~n:3 rng in
  Alcotest.check_raises "signer out of range"
    (Invalid_argument "Signature: signer out of range") (fun () ->
      ignore (Signature.sign scheme ~signer:3 "m"))

(* --- VRF ---------------------------------------------------------------- *)

let vrf_setting () =
  let rng = Rng.create 61L in
  let params = { Vrf.crs_comm = Commitment.gen rng; crs_nizk = Nizk.gen rng } in
  (rng, params)

let test_vrf_completeness () =
  let rng, params = vrf_setting () in
  let sk, pk = Vrf.keygen params rng ~index:0 in
  let ev = Vrf.eval params sk "ACK:3:1" in
  Alcotest.(check bool) "eval verifies under own pk" true
    (Vrf.verify params pk "ACK:3:1" ev)

let test_vrf_uniqueness () =
  let rng, params = vrf_setting () in
  let sk, _pk = Vrf.keygen params rng ~index:0 in
  let ev1 = Vrf.eval params sk "m" and ev2 = Vrf.eval params sk "m" in
  Alcotest.(check string) "output deterministic" (hex ev1.Vrf.rho) (hex ev2.Vrf.rho)

let test_vrf_wrong_pk () =
  let rng, params = vrf_setting () in
  let sk0, _ = Vrf.keygen params rng ~index:0 in
  let _, pk1 = Vrf.keygen params rng ~index:1 in
  let ev = Vrf.eval params sk0 "m" in
  Alcotest.(check bool) "rejected under another pk" false
    (Vrf.verify params pk1 "m" ev)

let test_vrf_wrong_message () =
  let rng, params = vrf_setting () in
  let sk, pk = Vrf.keygen params rng ~index:0 in
  let ev = Vrf.eval params sk "m1" in
  Alcotest.(check bool) "rejected for another message" false
    (Vrf.verify params pk "m2" ev)

let test_vrf_bit_specific_independence () =
  (* The paper's key insight: eligibility for (ACK, r, 0) says nothing
     about eligibility for (ACK, r, 1): they are independent PRF points. *)
  let rng, params = vrf_setting () in
  let sk, _ = Vrf.keygen params rng ~index:0 in
  let e0 = Vrf.eval params sk "ACK:5:0" and e1 = Vrf.eval params sk "ACK:5:1" in
  Alcotest.(check bool) "outputs differ across bits" false
    (String.equal e0.Vrf.rho e1.Vrf.rho)

let test_vrf_output_uniformity () =
  let rng, params = vrf_setting () in
  let sk, _ = Vrf.keygen params rng ~index:0 in
  let n = 5000 in
  let below = ref 0 in
  for i = 0 to n - 1 do
    let ev = Vrf.eval params sk (Printf.sprintf "ACK:%d:0" i) in
    if Vrf.output_fraction ev < 0.25 then incr below
  done;
  let rate = float_of_int !below /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "P[f < .25] = %.3f within .03" rate)
    true
    (abs_float (rate -. 0.25) < 0.03)

(* --- PKI ---------------------------------------------------------------- *)

let test_pki_setup_consistency () =
  let rng = Rng.create 71L in
  let pki = Pki.setup ~n:10 rng in
  Alcotest.(check int) "n" 10 (Pki.n pki);
  (* Every secret key matches its published public key. *)
  for i = 0 to 9 do
    let sk = Pki.secret_key pki i and pk = Pki.public_key pki i in
    let ev = Vrf.eval (Pki.params pki) sk "check" in
    Alcotest.(check bool)
      (Printf.sprintf "node %d key pair coherent" i)
      true
      (Vrf.verify (Pki.params pki) pk "check" ev)
  done

let test_pki_corrupt_reveals_matching_state () =
  let rng = Rng.create 72L in
  let pki = Pki.setup ~n:4 rng in
  let state = Pki.corrupt pki 2 in
  let ev = Vrf.eval (Pki.params pki) state.Pki.vrf_sk "after-corruption" in
  Alcotest.(check bool) "revealed sk works under public pk" true
    (Vrf.verify (Pki.params pki) (Pki.public_key pki 2) "after-corruption" ev);
  let tag = Hmac.mac_concat ~key:state.Pki.sig_key [ "sig"; "m" ] in
  Alcotest.(check bool) "revealed sig key works" true
    (Signature.verify (Pki.signatures pki) ~signer:2 "m" tag)

let test_pki_out_of_range () =
  let rng = Rng.create 73L in
  let pki = Pki.setup ~n:3 rng in
  Alcotest.check_raises "bad index"
    (Invalid_argument "Pki: node index out of range") (fun () ->
      ignore (Pki.public_key pki 5))

(* --- Forward-secure signatures -------------------------------------------- *)

let fs_setup () = Forward_secure.setup ~n:4 (Rng.create 81L)

let test_fs_sign_verify () =
  let fs = fs_setup () in
  let tag = Forward_secure.sign fs ~signer:1 ~slot:3 "ack:3:1" in
  Alcotest.(check bool) "verifies" true
    (Forward_secure.verify fs ~signer:1 ~slot:3 "ack:3:1" tag);
  Alcotest.(check bool) "wrong slot rejected" false
    (Forward_secure.verify fs ~signer:1 ~slot:4 "ack:3:1" tag);
  Alcotest.(check bool) "wrong signer rejected" false
    (Forward_secure.verify fs ~signer:2 ~slot:3 "ack:3:1" tag)

let test_fs_erasure_blocks_old_slots () =
  let fs = fs_setup () in
  ignore (Forward_secure.sign fs ~signer:0 ~slot:2 "m");
  Forward_secure.update fs ~signer:0 ~slot:3;
  Alcotest.(check int) "current slot" 3 (Forward_secure.current_slot fs 0);
  Alcotest.check_raises "erased slot unusable"
    (Invalid_argument "Forward_secure.sign: slot key erased") (fun () ->
      ignore (Forward_secure.sign fs ~signer:0 ~slot:2 "m2"));
  (* Future slots remain signable, and updates never go backwards. *)
  ignore (Forward_secure.sign fs ~signer:0 ~slot:5 "m3");
  Forward_secure.update fs ~signer:0 ~slot:1;
  Alcotest.(check int) "monotone" 3 (Forward_secure.current_slot fs 0)

let test_fs_corrupt_erasure_model () =
  let fs = fs_setup () in
  Forward_secure.update fs ~signer:2 ~slot:4;
  (match Forward_secure.corrupt fs ~erasure:true 2 with
  | Forward_secure.From_slot s -> Alcotest.(check int) "from current" 4 s
  | Forward_secure.Master -> Alcotest.fail "erasure model must not leak master");
  let capability = Forward_secure.corrupt fs ~erasure:true 2 in
  Alcotest.(check bool) "past slot forgery impossible" true
    (Forward_secure.adversary_sign fs ~capability ~signer:2 ~slot:3 "m" = None);
  (match Forward_secure.adversary_sign fs ~capability ~signer:2 ~slot:4 "m" with
  | Some tag ->
      Alcotest.(check bool) "current slot signable" true
        (Forward_secure.verify fs ~signer:2 ~slot:4 "m" tag)
  | None -> Alcotest.fail "current slot should be signable")

let test_fs_corrupt_no_erasure_model () =
  let fs = fs_setup () in
  Forward_secure.update fs ~signer:1 ~slot:7;
  let capability = Forward_secure.corrupt fs ~erasure:false 1 in
  Alcotest.(check bool) "master leaked" true (capability = Forward_secure.Master);
  (match Forward_secure.adversary_sign fs ~capability ~signer:1 ~slot:2 "m" with
  | Some tag ->
      Alcotest.(check bool) "past slot forgeable without erasure" true
        (Forward_secure.verify fs ~signer:1 ~slot:2 "m" tag)
  | None -> Alcotest.fail "master must sign any slot")

(* --- Selective-opening PRF game (Appendix E.1) ---------------------------- *)

let test_so_compliance_enforced () =
  let game = Selective_opening.start ~b:true (Rng.create 91L) in
  let i = Selective_opening.create_instance game in
  ignore (Selective_opening.challenge game ~instance:i "point");
  Alcotest.check_raises "corrupt after challenge"
    (Selective_opening.Non_compliant "corrupting a challenged instance")
    (fun () -> ignore (Selective_opening.corrupt game ~instance:i));
  Alcotest.check_raises "evaluate a challenged point"
    (Selective_opening.Non_compliant "evaluate on a challenged point")
    (fun () -> ignore (Selective_opening.evaluate game ~instance:i "point"));
  let j = Selective_opening.create_instance game in
  ignore (Selective_opening.evaluate game ~instance:j "m");
  Alcotest.check_raises "challenge an evaluated point"
    (Selective_opening.Non_compliant "challenging an evaluated point")
    (fun () -> ignore (Selective_opening.challenge game ~instance:j "m"));
  ignore (Selective_opening.corrupt game ~instance:j);
  Alcotest.check_raises "challenge a corrupted instance"
    (Selective_opening.Non_compliant "challenging a corrupted instance")
    (fun () -> ignore (Selective_opening.challenge game ~instance:j "m2"))

let test_so_real_world_consistent () =
  (* In Expt_1 the challenge answers must be genuine PRF evaluations:
     corrupt a *different* instance, recompute with its key. *)
  let game = Selective_opening.start ~b:true (Rng.create 92L) in
  let i = Selective_opening.create_instance game in
  let key = Selective_opening.corrupt game ~instance:i in
  let direct = Prf.eval key "msg" in
  let j = Selective_opening.create_instance game in
  let answer = Selective_opening.challenge game ~instance:j "msg" in
  Alcotest.(check bool) "distinct instances have distinct keys" false
    (String.equal direct answer);
  (* Challenges are memoized. *)
  Alcotest.(check string) "challenge memoized" (hex answer)
    (hex (Selective_opening.challenge game ~instance:j "msg"))

let test_so_natural_distinguisher_fails () =
  (* A compliant adversary that looks for structure in challenge answers
     (parity bias, repeated prefixes across messages) has ~0 advantage
     against HMAC-SHA256 — this is the statistical face of Theorem 21. *)
  let play game =
    let i = Selective_opening.create_instance game in
    let ones = ref 0 and total = 64 in
    for k = 0 to total - 1 do
      let answer =
        Selective_opening.challenge game ~instance:i (string_of_int k)
      in
      if Char.code answer.[0] land 1 = 1 then incr ones
    done;
    (* Guess "real" iff the low bits look biased — they never do. *)
    abs (2 * !ones - total) > total / 4
  in
  let adv = Selective_opening.advantage ~trials:300 ~seed:93L ~play in
  Alcotest.(check bool)
    (Printf.sprintf "advantage %.3f below 0.08" adv)
    true (adv < 0.08)

let test_so_corrupt_keys_win_noncompliantly () =
  (* Sanity: the game is non-trivial — an adversary allowed to corrupt
     the challenged instance (i.e., non-compliant) would win every time.
     We simulate it by corrupting FIRST, then challenging a different
     instance whose key we predict cannot match; instead, verify that with
     the key in hand the real world is identifiable on a fresh instance
     we never challenge. *)
  let play game =
    let i = Selective_opening.create_instance game in
    (* Evaluate on m1 via the oracle, corrupt, recompute locally: always
       consistent — in both worlds evaluations are real. Then challenge a
       *fresh* instance on m2 and compare nothing: the only legal signal
       is the challenge itself, so flip a fair coin based on it being
       equal to a locally computed PRF under the corrupted key (never
       equal). This adversary is compliant and has no advantage. *)
    let e = Selective_opening.evaluate game ~instance:i "m1" in
    let key = Selective_opening.corrupt game ~instance:i in
    let local = Prf.eval key "m1" in
    Alcotest.(check string) "oracle evaluation is genuine" (hex local) (hex e);
    let j = Selective_opening.create_instance game in
    let c = Selective_opening.challenge game ~instance:j "m2" in
    String.equal c (Prf.eval key "m2")
  in
  let adv = Selective_opening.advantage ~trials:100 ~seed:94L ~play in
  Alcotest.(check bool) "compliant corruption gives no advantage" true
    (adv < 0.1)

(* --- Property-based tests (QCheck) -------------------------------------- *)

let qcheck_tests =
  let open QCheck in
  [ Test.make ~name:"sha256 determinism" ~count:200 (string_of_size Gen.(0 -- 300))
      (fun s -> String.equal (Sha256.digest_string s) (Sha256.digest_string s));
    Test.make ~name:"sha256 no collisions observed" ~count:200
      (pair (string_of_size Gen.(0 -- 100)) (string_of_size Gen.(0 -- 100)))
      (fun (a, b) ->
        String.equal a b
        || not (String.equal (Sha256.digest_string a) (Sha256.digest_string b)));
    Test.make ~name:"incremental sha256 = one-shot on random splits" ~count:100
      (pair (string_of_size Gen.(0 -- 500)) small_nat)
      (fun (s, cut) ->
        let cut = if String.length s = 0 then 0 else cut mod (String.length s + 1) in
        let ctx = Sha256.init () in
        Sha256.feed_string ctx (String.sub s 0 cut);
        Sha256.feed_string ctx (String.sub s cut (String.length s - cut));
        String.equal (Sha256.finalize ctx) (Sha256.digest_string s));
    Test.make ~name:"multi-chunk feed_bytes = one-shot on random splits" ~count:100
      (pair (string_of_size Gen.(0 -- 600)) (list_of_size Gen.(0 -- 8) small_nat))
      (fun (s, cuts) ->
        (* Interpret [cuts] as successive chunk lengths; whatever remains
           after the last cut is fed in one final call. Exercises every
           path through the buffered/direct block dispatch in feed_bytes. *)
        let b = Bytes.of_string s in
        let ctx = Sha256.init () in
        let pos = ref 0 in
        List.iter
          (fun c ->
            let len = min c (String.length s - !pos) in
            Sha256.feed_bytes ctx b ~pos:!pos ~len;
            pos := !pos + len)
          cuts;
        Sha256.feed_bytes ctx b ~pos:!pos ~len:(String.length s - !pos);
        String.equal (Sha256.finalize ctx) (Sha256.digest_string s));
    Test.make ~name:"hmac precomputed key = one-shot" ~count:150
      (pair (string_of_size Gen.(0 -- 100)) (string_of_size Gen.(0 -- 300)))
      (fun (key, m) ->
        String.equal (Hmac.mac ~key m) (Hmac.mac_with (Hmac.precompute ~key) m));
    Test.make ~name:"hmac_concat precomputed key = one-shot" ~count:100
      (pair (string_of_size Gen.(0 -- 100))
         (list_of_size Gen.(0 -- 5) (string_of_size Gen.(0 -- 60))))
      (fun (key, parts) ->
        String.equal (Hmac.mac_concat ~key parts)
          (Hmac.mac_concat_with (Hmac.precompute ~key) parts));
    Test.make ~name:"prf cached key = direct eval" ~count:150
      (pair (string_of_size Gen.(1 -- 64)) (string_of_size Gen.(0 -- 200)))
      (fun (key, m) ->
        String.equal (Prf.eval key m) (Prf.eval_cached (Prf.cache key) m));
    Test.make ~name:"hmac key separation" ~count:100
      (triple (string_of_size Gen.(1 -- 64)) (string_of_size Gen.(1 -- 64)) (string_of_size Gen.(0 -- 100)))
      (fun (k1, k2, m) ->
        String.equal k1 k2 || not (String.equal (Hmac.mac ~key:k1 m) (Hmac.mac ~key:k2 m)));
    Test.make ~name:"rng int bounded" ~count:200 (pair int64 (int_range 1 1000))
      (fun (seed, bound) ->
        let rng = Rng.create seed in
        let v = Rng.int rng bound in
        v >= 0 && v < bound);
    Test.make ~name:"commitment roundtrip" ~count:100
      (pair (string_of_size Gen.(0 -- 64)) int64)
      (fun (v, seed) ->
        let rng = Rng.create seed in
        let crs = Commitment.gen rng in
        let salt = Commitment.fresh_salt rng in
        Commitment.verify crs (Commitment.commit crs ~value:v ~salt) ~value:v ~salt);
    Test.make ~name:"vrf completeness on random messages" ~count:60
      (pair (string_of_size Gen.(0 -- 80)) int64)
      (fun (m, seed) ->
        let rng = Rng.create seed in
        let params = { Vrf.crs_comm = Commitment.gen rng; crs_nizk = Nizk.gen rng } in
        let sk, pk = Vrf.keygen params rng ~index:0 in
        Vrf.verify params pk m (Vrf.eval params sk m));
  ]

(* --- Batched sweeps ≡ singleton maps ------------------------------------ *)

(* The engine's batched-verify layer must be observably equivalent to
   mapping the singleton verifier — including empty and singleton
   batches (which take dedicated code paths) and batches mixing valid
   and forged entries (so the scratch-context reuse is shown not to
   leak state between entries). *)
let batch_qcheck_tests =
  let open QCheck in
  (* Flip one bit of a tag: a minimally forged entry. *)
  let tamper tag =
    String.mapi
      (fun i c -> if i = 0 then Char.chr (Char.code c lxor 1) else c)
      tag
  in
  let gen_msgs = list_of_size Gen.(0 -- 8) (string_of_size Gen.(0 -- 80)) in
  [ Test.make ~name:"hmac mac_batch = map mac" ~count:150
      (pair (string_of_size Gen.(1 -- 64)) gen_msgs)
      (fun (key, msgs) ->
        let kctx = Hmac.precompute ~key in
        Hmac.mac_batch kctx msgs = List.map (Hmac.mac_with kctx) msgs);
    Test.make ~name:"hmac mac_concat_batch = map mac_concat" ~count:100
      (pair
         (string_of_size Gen.(1 -- 64))
         (list_of_size
            Gen.(0 -- 6)
            (list_of_size Gen.(0 -- 4) (string_of_size Gen.(0 -- 40)))))
      (fun (key, batches) ->
        let kctx = Hmac.precompute ~key in
        Hmac.mac_concat_batch (List.map (fun parts -> (kctx, parts)) batches)
        = List.map (Hmac.mac_concat_with kctx) batches);
    Test.make ~name:"hmac verify_batch = map verify (mixed forged)" ~count:150
      (pair
         (string_of_size Gen.(1 -- 64))
         (list_of_size
            Gen.(0 -- 8)
            (pair (string_of_size Gen.(0 -- 80)) bool)))
      (fun (key, entries) ->
        let kctx = Hmac.precompute ~key in
        let tagged =
          List.map
            (fun (msg, good) ->
              let tag = Hmac.mac_with kctx msg in
              (msg, if good then tag else tamper tag))
            entries
        in
        Hmac.verify_batch kctx tagged
        = List.map
            (fun (msg, tag) -> Hmac.equal tag (Hmac.mac_with kctx msg))
            tagged);
    Test.make ~name:"hmac first_invalid finds the poisoned index" ~count:150
      (triple (string_of_size Gen.(1 -- 64)) gen_msgs small_nat)
      (fun (key, msgs, k) ->
        let kctx = Hmac.precompute ~key in
        let tagged = List.map (fun m -> (m, Hmac.mac_with kctx m)) msgs in
        Hmac.first_invalid kctx tagged = None
        && (match tagged with
           | [] -> true
           | _ ->
               let poison = k mod List.length tagged in
               let poisoned =
                 List.mapi
                   (fun i (m, tag) ->
                     if i = poison then (m, tamper tag) else (m, tag))
                   tagged
               in
               Hmac.first_invalid kctx poisoned = Some poison));
    Test.make ~name:"signature verify_batch = map verify (mixed forged)"
      ~count:60
      (pair int64
         (list_of_size
            Gen.(0 -- 8)
            (triple (int_range 0 4) (string_of_size Gen.(0 -- 40)) bool)))
      (fun (seed, entries) ->
        let scheme = Signature.setup ~n:5 (Rng.create seed) in
        let batch =
          List.map
            (fun (signer, msg, good) ->
              let tag = Signature.sign scheme ~signer msg in
              (signer, msg, if good then tag else tamper tag))
            entries
        in
        Signature.verify_batch scheme batch
        = List.map
            (fun (signer, msg, tag) -> Signature.verify scheme ~signer msg tag)
            batch);
    Test.make ~name:"vrf verify_batch = map verify (mixed forged)" ~count:25
      (pair int64
         (list_of_size
            Gen.(0 -- 5)
            (pair (string_of_size Gen.(0 -- 40)) bool)))
      (fun (seed, entries) ->
        let rng = Rng.create seed in
        let params =
          { Vrf.crs_comm = Commitment.gen rng; crs_nizk = Nizk.gen rng }
        in
        let sk0, pk0 = Vrf.keygen params rng ~index:0 in
        let sk1, _ = Vrf.keygen params rng ~index:1 in
        (* A forged entry pairs node 0's pk with node 1's evaluation. *)
        let batch =
          List.map
            (fun (m, good) ->
              (pk0, m, Vrf.eval params (if good then sk0 else sk1) m))
            entries
        in
        Vrf.verify_batch params batch
        = List.map (fun (pk, m, ev) -> Vrf.verify params pk m ev) batch);
    Test.make ~name:"fmine verify_batch = map verify (mixed unmined)"
      ~count:60
      (pair int64
         (list_of_size
            Gen.(0 -- 8)
            (triple (int_range 0 9) (string_of_size Gen.(0 -- 20)) bool)))
      (fun (seed, entries) ->
        let fmine = Bafmine.Fmine.create (Rng.create seed) in
        let batch =
          List.map
            (fun (node, msg, mine_it) ->
              if mine_it then ignore (Bafmine.Fmine.mine fmine ~node ~msg ~p:0.8);
              (node, msg))
            entries
        in
        Bafmine.Fmine.verify_batch fmine batch
        = List.map
            (fun (node, msg) -> Bafmine.Fmine.verify fmine ~node ~msg)
            batch) ]

let () =
  let rand = Random.State.make [| 0xba001 |] in
  let qcheck = List.map (QCheck_alcotest.to_alcotest ~rand) qcheck_tests in
  let batch =
    List.map (QCheck_alcotest.to_alcotest ~rand) batch_qcheck_tests
  in
  Alcotest.run "crypto"
    [ ( "sha256",
        [ Alcotest.test_case "empty" `Quick test_sha256_empty;
          Alcotest.test_case "abc" `Quick test_sha256_abc;
          Alcotest.test_case "two blocks" `Quick test_sha256_two_blocks;
          Alcotest.test_case "million a" `Slow test_sha256_million_a;
          Alcotest.test_case "padding boundaries" `Quick test_sha256_exact_block_boundaries;
          Alcotest.test_case "incremental" `Quick test_sha256_incremental_matches_oneshot;
          Alcotest.test_case "concat injective" `Quick test_sha256_concat_injective;
          Alcotest.test_case "feed bounds" `Quick test_sha256_feed_bounds ] );
      ( "hmac",
        [ Alcotest.test_case "rfc4231 #1" `Quick test_hmac_rfc4231_case1;
          Alcotest.test_case "rfc4231 #2" `Quick test_hmac_rfc4231_case2;
          Alcotest.test_case "rfc4231 #3" `Quick test_hmac_rfc4231_case3;
          Alcotest.test_case "long key" `Quick test_hmac_long_key;
          Alcotest.test_case "constant-time equal" `Quick test_hmac_equal ] );
      ( "rng",
        [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "split_named stable" `Quick test_rng_split_named_stable;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "bernoulli extremes" `Quick test_rng_bernoulli_extremes;
          Alcotest.test_case "bernoulli mean" `Quick test_rng_bernoulli_mean;
          Alcotest.test_case "sample w/o replacement" `Quick test_rng_sample_without_replacement;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutation ] );
      ( "prf",
        [ Alcotest.test_case "deterministic" `Quick test_prf_deterministic;
          Alcotest.test_case "message separation" `Quick test_prf_distinct_messages;
          Alcotest.test_case "fraction range" `Quick test_prf_output_fraction_range;
          Alcotest.test_case "difficulty rate" `Quick test_prf_below_difficulty_rate ] );
      ( "commitment",
        [ Alcotest.test_case "roundtrip" `Quick test_commitment_roundtrip;
          Alcotest.test_case "binding" `Quick test_commitment_binding;
          Alcotest.test_case "crs separation" `Quick test_commitment_crs_separation ] );
      ( "nizk",
        [ Alcotest.test_case "completeness" `Quick test_nizk_completeness;
          Alcotest.test_case "rejects false statement" `Quick test_nizk_rejects_false_statement;
          Alcotest.test_case "proof bound to statement" `Quick test_nizk_soundness_message_binding;
          Alcotest.test_case "mismatched witness" `Quick test_nizk_wrong_key_witness ] );
      ( "signature",
        [ Alcotest.test_case "roundtrip" `Quick test_signature_roundtrip;
          Alcotest.test_case "wrong signer" `Quick test_signature_wrong_signer;
          Alcotest.test_case "wrong message" `Quick test_signature_wrong_message;
          Alcotest.test_case "corrupt key" `Quick test_signature_corrupt_key_signs;
          Alcotest.test_case "out of range" `Quick test_signature_out_of_range ] );
      ( "vrf",
        [ Alcotest.test_case "completeness" `Quick test_vrf_completeness;
          Alcotest.test_case "uniqueness" `Quick test_vrf_uniqueness;
          Alcotest.test_case "wrong pk" `Quick test_vrf_wrong_pk;
          Alcotest.test_case "wrong message" `Quick test_vrf_wrong_message;
          Alcotest.test_case "bit-specific independence" `Quick test_vrf_bit_specific_independence;
          Alcotest.test_case "output uniformity" `Quick test_vrf_output_uniformity ] );
      ( "selective-opening",
        [ Alcotest.test_case "compliance enforced" `Quick test_so_compliance_enforced;
          Alcotest.test_case "real world consistent" `Quick test_so_real_world_consistent;
          Alcotest.test_case "natural distinguisher fails" `Quick
            test_so_natural_distinguisher_fails;
          Alcotest.test_case "compliant corruption useless" `Quick
            test_so_corrupt_keys_win_noncompliantly ] );
      ( "forward-secure",
        [ Alcotest.test_case "sign/verify" `Quick test_fs_sign_verify;
          Alcotest.test_case "erasure blocks old slots" `Quick
            test_fs_erasure_blocks_old_slots;
          Alcotest.test_case "corrupt under erasure" `Quick
            test_fs_corrupt_erasure_model;
          Alcotest.test_case "corrupt without erasure" `Quick
            test_fs_corrupt_no_erasure_model ] );
      ( "pki",
        [ Alcotest.test_case "setup consistency" `Quick test_pki_setup_consistency;
          Alcotest.test_case "corrupt reveals state" `Quick test_pki_corrupt_reveals_matching_state;
          Alcotest.test_case "out of range" `Quick test_pki_out_of_range ] );
      ("properties", qcheck);
      ("batch-properties", batch) ]
