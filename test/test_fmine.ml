(* Tests for the Fmine ideal functionality, the eligibility interface, and
   the Appendix-D compiler. *)

open Bafmine

let fresh_fmine seed = Fmine.create (Bacrypto.Rng.create seed)

(* --- Fmine (Figure 1) -------------------------------------------------- *)

let test_mine_memoized () =
  let f = fresh_fmine 1L in
  let first = Fmine.mine f ~node:3 ~msg:"Vote:1:0" ~p:0.5 in
  for _ = 1 to 10 do
    Alcotest.(check bool) "same answer" first (Fmine.mine f ~node:3 ~msg:"Vote:1:0" ~p:0.5)
  done;
  Alcotest.(check int) "one attempt recorded" 1 (Fmine.attempts f)

let test_mine_probability_consistency () =
  let f = fresh_fmine 2L in
  ignore (Fmine.mine f ~node:0 ~msg:"m" ~p:0.5);
  Alcotest.check_raises "changing p rejected"
    (Invalid_argument "Fmine.mine: same (node, msg) mined with a different p")
    (fun () -> ignore (Fmine.mine f ~node:0 ~msg:"m" ~p:0.25))

let test_verify_unmined_is_false () =
  let f = fresh_fmine 3L in
  Alcotest.(check bool) "unattempted mine verifies false" false
    (Fmine.verify f ~node:7 ~msg:"never-mined")

let test_verify_matches_mine () =
  let f = fresh_fmine 4L in
  for node = 0 to 20 do
    let outcome = Fmine.mine f ~node ~msg:"Commit:2:1" ~p:0.4 in
    Alcotest.(check bool) "verify = mine" outcome
      (Fmine.verify f ~node ~msg:"Commit:2:1")
  done

let test_mine_rate () =
  let f = fresh_fmine 5L in
  let n = 20_000 in
  let hits = ref 0 in
  for i = 0 to n - 1 do
    if Fmine.mine f ~node:i ~msg:"rate-test" ~p:0.1 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "rate %.4f near 0.1" rate)
    true
    (abs_float (rate -. 0.1) < 0.01);
  Alcotest.(check int) "successes tracked" !hits (Fmine.successes f)

let test_mine_independent_across_messages () =
  (* The coins for (node, m) and (node, m') are independent — this is the
     bit-specific-eligibility property at the Fmine level: node 3's coin
     for ACK of bit 0 says nothing about its coin for bit 1. *)
  let f = fresh_fmine 6L in
  let agree = ref 0 and n = 2000 in
  for node = 0 to n - 1 do
    let a = Fmine.mine f ~node ~msg:"ACK:1:0" ~p:0.5 in
    let b = Fmine.mine f ~node ~msg:"ACK:1:1" ~p:0.5 in
    if a = b then incr agree
  done;
  let rate = float_of_int !agree /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "agreement rate %.3f near 0.5" rate)
    true
    (abs_float (rate -. 0.5) < 0.05)

(* --- Eligibility (hybrid world) ---------------------------------------- *)

let test_hybrid_mine_verify_roundtrip () =
  let elig = Eligibility.hybrid (fresh_fmine 7L) in
  let found = ref false in
  for node = 0 to 50 do
    match elig.Eligibility.mine ~node ~msg:"Vote:1:1" ~p:0.3 with
    | Some cred ->
        found := true;
        Alcotest.(check bool) "credential verifies" true
          (elig.Eligibility.verify ~node ~msg:"Vote:1:1" ~p:0.3 cred);
        Alcotest.(check int) "zero wire bits" 0
          (elig.Eligibility.credential_bits cred)
    | None ->
        Alcotest.(check bool) "ineligible node cannot claim" false
          (elig.Eligibility.verify ~node ~msg:"Vote:1:1" ~p:0.3
             Eligibility.Ideal_ticket)
  done;
  Alcotest.(check bool) "some node won with p=0.3 over 51 nodes" true !found

let test_hybrid_rejects_unmined_claim () =
  let elig = Eligibility.hybrid (fresh_fmine 8L) in
  Alcotest.(check bool) "claim without mine rejected" false
    (elig.Eligibility.verify ~node:5 ~msg:"Vote:9:0" ~p:0.9
       Eligibility.Ideal_ticket)

let test_mining_msg_encoding () =
  Alcotest.(check string) "bit-specific" "ACK:3:1"
    (Eligibility.mining_msg ~tag:"ACK" ~iter:3 ~bit:(Some true));
  Alcotest.(check string) "bit 0" "ACK:3:0"
    (Eligibility.mining_msg ~tag:"ACK" ~iter:3 ~bit:(Some false));
  Alcotest.(check string) "bit-agnostic" "ACK:3"
    (Eligibility.mining_msg ~tag:"ACK" ~iter:3 ~bit:None)

(* --- Compiler (Appendix D) --------------------------------------------- *)

let fresh_pki ~n seed = Bacrypto.Pki.setup ~n (Bacrypto.Rng.create seed)

let test_real_world_roundtrip () =
  let pki = fresh_pki ~n:30 9L in
  let elig = Compiler.real_world pki in
  let wins = ref 0 in
  for node = 0 to 29 do
    match elig.Eligibility.mine ~node ~msg:"Vote:2:0" ~p:0.5 with
    | Some cred ->
        incr wins;
        Alcotest.(check bool) "vrf credential verifies" true
          (elig.Eligibility.verify ~node ~msg:"Vote:2:0" ~p:0.5 cred);
        Alcotest.(check bool) "credential has wire cost" true
          (elig.Eligibility.credential_bits cred > 0)
    | None -> ()
  done;
  Alcotest.(check bool) "roughly half win at p=0.5" true (!wins > 5 && !wins < 25)

let test_real_world_rejects_stolen_credential () =
  let pki = fresh_pki ~n:4 10L in
  let elig = Compiler.real_world pki in
  (* Find a winning node and try to replay its credential as another node. *)
  let rec find node =
    if node >= 4 then None
    else
      match elig.Eligibility.mine ~node ~msg:"Vote:1:1" ~p:0.99 with
      | Some cred -> Some (node, cred)
      | None -> find (node + 1)
  in
  match find 0 with
  | None -> Alcotest.fail "no winner at p=0.99"
  | Some (node, cred) ->
      let thief = (node + 1) mod 4 in
      Alcotest.(check bool) "replay under other identity rejected" false
        (elig.Eligibility.verify ~node:thief ~msg:"Vote:1:1" ~p:0.99 cred)

let test_real_world_rejects_wrong_message () =
  let pki = fresh_pki ~n:4 11L in
  let elig = Compiler.real_world pki in
  match elig.Eligibility.mine ~node:0 ~msg:"Vote:1:1" ~p:0.99 with
  | None -> Alcotest.fail "should win at p=0.99"
  | Some cred ->
      Alcotest.(check bool) "credential bound to message" false
        (elig.Eligibility.verify ~node:0 ~msg:"Vote:2:1" ~p:0.99 cred)

let test_real_world_rejects_above_difficulty () =
  let pki = fresh_pki ~n:4 12L in
  let elig = Compiler.real_world pki in
  match elig.Eligibility.mine ~node:0 ~msg:"m" ~p:1.0 with
  | None -> Alcotest.fail "p=1 always wins"
  | Some cred ->
      (* The same credential claimed at a (much) harder difficulty fails
         unless the output also clears that difficulty. *)
      let accepted = elig.Eligibility.verify ~node:0 ~msg:"m" ~p:1e-12 cred in
      Alcotest.(check bool) "tiny difficulty rejects" false accepted

let test_paired_worlds_agree () =
  (* The E9 coupling: same lottery in both worlds. *)
  let pki = fresh_pki ~n:50 13L in
  let hybrid, real = Compiler.paired pki in
  for node = 0 to 49 do
    let msgs = [ "Vote:1:0"; "Vote:1:1"; "Status:2:0"; "Terminate:1" ] in
    List.iter
      (fun msg ->
        let h = hybrid.Eligibility.mine ~node ~msg ~p:0.3 <> None in
        let r = real.Eligibility.mine ~node ~msg ~p:0.3 <> None in
        Alcotest.(check bool) (Printf.sprintf "node %d %s" node msg) h r)
      msgs
  done

let test_cross_world_credentials_rejected () =
  let pki = fresh_pki ~n:4 14L in
  let hybrid, real = Compiler.paired pki in
  (* An ideal ticket means nothing in the real world and vice versa. *)
  (match hybrid.Eligibility.mine ~node:0 ~msg:"m" ~p:1.0 with
  | Some cred ->
      Alcotest.(check bool) "ideal ticket rejected by real verifier" false
        (real.Eligibility.verify ~node:0 ~msg:"m" ~p:1.0 cred)
  | None -> Alcotest.fail "p=1 wins");
  match real.Eligibility.mine ~node:0 ~msg:"m" ~p:1.0 with
  | Some cred ->
      Alcotest.(check bool) "vrf credential rejected by hybrid verifier" false
        (hybrid.Eligibility.verify ~node:0 ~msg:"m" ~p:1.0 cred)
  | None -> Alcotest.fail "p=1 wins"

(* --- QCheck properties --------------------------------------------------- *)

let qcheck_tests =
  let open QCheck in
  [ Test.make ~name:"fmine deterministic per (node,msg)" ~count:200
      (triple int64 (int_range 0 100) (string_of_size Gen.(1 -- 30)))
      (fun (seed, node, msg) ->
        let f = fresh_fmine seed in
        let a = Fmine.mine f ~node ~msg ~p:0.5 in
        let b = Fmine.mine f ~node ~msg ~p:0.5 in
        a = b);
    Test.make ~name:"hybrid verify iff mined successfully" ~count:100
      (pair int64 (int_range 0 50))
      (fun (seed, node) ->
        let elig = Eligibility.hybrid (fresh_fmine seed) in
        let won = elig.Eligibility.mine ~node ~msg:"m" ~p:0.5 <> None in
        let verified =
          elig.Eligibility.verify ~node ~msg:"m" ~p:0.5 Eligibility.Ideal_ticket
        in
        won = verified);
    Test.make ~name:"real-world completeness" ~count:40
      (pair int64 (string_of_size Gen.(1 -- 30)))
      (fun (seed, msg) ->
        let pki = fresh_pki ~n:3 seed in
        let elig = Compiler.real_world pki in
        match elig.Eligibility.mine ~node:1 ~msg ~p:1.0 with
        | Some cred -> elig.Eligibility.verify ~node:1 ~msg ~p:1.0 cred
        | None -> false);
  ]

let () =
  let qcheck =
    List.map
      (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xba005 |]))
      qcheck_tests
  in
  Alcotest.run "fmine"
    [ ( "fmine",
        [ Alcotest.test_case "memoized" `Quick test_mine_memoized;
          Alcotest.test_case "p consistency" `Quick test_mine_probability_consistency;
          Alcotest.test_case "verify unmined false" `Quick test_verify_unmined_is_false;
          Alcotest.test_case "verify matches mine" `Quick test_verify_matches_mine;
          Alcotest.test_case "success rate" `Quick test_mine_rate;
          Alcotest.test_case "independent across messages" `Quick
            test_mine_independent_across_messages ] );
      ( "eligibility",
        [ Alcotest.test_case "hybrid roundtrip" `Quick test_hybrid_mine_verify_roundtrip;
          Alcotest.test_case "unmined claim rejected" `Quick test_hybrid_rejects_unmined_claim;
          Alcotest.test_case "mining msg encoding" `Quick test_mining_msg_encoding ] );
      ( "compiler",
        [ Alcotest.test_case "real-world roundtrip" `Quick test_real_world_roundtrip;
          Alcotest.test_case "stolen credential" `Quick test_real_world_rejects_stolen_credential;
          Alcotest.test_case "wrong message" `Quick test_real_world_rejects_wrong_message;
          Alcotest.test_case "difficulty enforced" `Quick test_real_world_rejects_above_difficulty;
          Alcotest.test_case "paired worlds agree" `Quick test_paired_worlds_agree;
          Alcotest.test_case "cross-world rejected" `Quick test_cross_world_credentials_rejected ] );
      ("properties", qcheck) ]
