(* Sparse rounds: the active-set invariant and crowd equivalence.

   Three claims pin the engine's O(active) round machinery:

   1. The dense engine steps exactly the nodes a naive reference says it
      must — {un-corrupted, un-halted} at the start of the round —
      observed through [?step_audit] and checked against the trace's own
      corruption/halt record, across randomized adversary schedules.

   2. The Sub_hm crowd hook is execution-equivalent to the dense step:
      same trace, same metrics, same series, same outputs, for every
      shipped adversary and both worlds.

   3. In a passive sparse run the audited per-node work is exactly
      {sample winners} ∪ {halters} — the O(committee) footprint that
      makes n = 100000 rounds cheap. *)

open Basim
open Bacore

let params = Params.make ~lambda:20 ~max_epochs:12 ()

(* --- 1. dense step_audit = {un-corrupted, un-halted} ------------------- *)

(* Random oblivious schedules for sub-third: setup corruptions plus
   mid-round corrupt/inject/remove actions. Legality is irrelevant —
   the interpreter's skip semantics make every schedule executable, and
   the reference below reads what actually happened from the trace. *)
let schedule_gen ~n ~budget ~max_rounds =
  let open QCheck.Gen in
  let node = int_range 0 (n - 1) in
  let action =
    frequency
      [ (2, map (fun i -> Schedule.Corrupt i) node);
        ( 2,
          map3
            (fun src bit lower ->
              Schedule.Inject
                { src;
                  kind = (if bit then "propose" else "ack");
                  bit = lower;
                  dst = (if lower then Schedule.Lower_half else Schedule.Everyone) })
            node bool bool );
        ( 1,
          map2
            (fun victim index -> Schedule.Remove { victim; index })
            node (int_range 0 2) ) ]
  in
  let step = pair (int_range 0 (max_rounds - 1)) (list_size (int_range 1 3) action) in
  map2
    (fun setup steps ->
      (* strongly adaptive: the only model in which every generated
         action kind (including removal) is declarable *)
      { Schedule.name = "qcheck-sparse-active";
        model = Corruption.Strongly_adaptive;
        setup;
        steps = List.sort (fun (r1, _) (r2, _) -> compare r1 r2) steps })
    (list_size (int_range 0 (budget / 2)) node)
    (list_size (int_range 0 6) step)

let qcheck_dense_audit_matches_reference =
  let n = 21 and budget = 9 and max_rounds = 14 in
  QCheck.Test.make ~name:"dense step audit = {un-corrupted, un-halted}"
    ~count:40
    (QCheck.make
       ~print:(fun s -> Format.asprintf "%a" Schedule.pp s)
       (schedule_gen ~n ~budget ~max_rounds))
    (fun schedule ->
      let proto =
        Sub_third.protocol ~params ~world:`Hybrid ~mode:Sub_third.Bit_specific
      in
      let adversary =
        Schedule.to_adversary ~compiler:Baattacks.Schedule_targets.sub_third
          schedule
      in
      let collector = Trace.collector () in
      let audits = Hashtbl.create 16 in
      let result =
        Engine.run
          ~tracer:(Trace.observe collector)
          ~step_audit:(fun ~round stepped -> Hashtbl.replace audits round stepped)
          proto ~adversary ~n ~budget
          ~inputs:(Scenario.split_inputs ~n)
          ~max_rounds ~seed:77L
      in
      (* Ground truth from the run's own record: first corruption round
         per node (setup = -1) and the engine's halt rounds. *)
      let corrupt_round = Array.make n None in
      List.iter
        (function
          | Trace.Corrupted { round; node } ->
              if corrupt_round.(node) = None then
                corrupt_round.(node) <- Some round
          | _ -> ())
        (Trace.events collector);
      let expected r =
        List.filter
          (fun i ->
            (match corrupt_round.(i) with None -> true | Some c -> c >= r)
            && match result.Engine.halt_rounds.(i) with
               | None -> true
               | Some h -> h >= r)
          (List.init n Fun.id)
      in
      let ok = ref true in
      for r = 0 to result.Engine.rounds_used - 1 do
        let audited =
          match Hashtbl.find_opt audits r with Some l -> l | None -> []
        in
        if audited <> expected r then ok := false
      done;
      !ok && Hashtbl.length audits = result.Engine.rounds_used)

(* --- 2. crowd hook ≡ dense step ---------------------------------------- *)

type observation = {
  o_trace : string;
  o_metrics : string;
  o_series : string;
  o_outputs : bool option array;
  o_halts : int option array;
  o_corruptions : int;
}

let observe_run ~world ~sparse ~adversary ~n ~budget ~seed =
  let proto = Sub_hm.protocol ~params ~world in
  let collector = Trace.collector () in
  let series = Baobs.Series.create ~n in
  let sparse = if sparse then Some (Sub_hm.sparse_step ()) else None in
  let result =
    Engine.run
      ~tracer:(Trace.observe collector)
      ~series ?sparse proto ~adversary ~n ~budget
      ~inputs:(Scenario.split_inputs ~n)
      ~max_rounds:60 ~seed
  in
  { o_trace = Trace.render collector;
    o_metrics = Baobs.Json.to_string (Metrics.to_json result.Engine.metrics);
    o_series = Baobs.Json.to_string (Baobs.Series.to_json series);
    o_outputs = result.Engine.outputs;
    o_halts = result.Engine.halt_rounds;
    o_corruptions = result.Engine.corruptions }

let check_equivalent ~world ~adversary ~label ~n ~budget ~seed =
  let dense = observe_run ~world ~sparse:false ~adversary:(adversary ()) ~n ~budget ~seed in
  let sparse = observe_run ~world ~sparse:true ~adversary:(adversary ()) ~n ~budget ~seed in
  Alcotest.(check string) (label ^ ": trace") dense.o_trace sparse.o_trace;
  Alcotest.(check string) (label ^ ": metrics") dense.o_metrics sparse.o_metrics;
  Alcotest.(check string) (label ^ ": series") dense.o_series sparse.o_series;
  Alcotest.(check bool) (label ^ ": outputs") true (dense.o_outputs = sparse.o_outputs);
  Alcotest.(check bool) (label ^ ": halt rounds") true (dense.o_halts = sparse.o_halts);
  Alcotest.(check int) (label ^ ": corruptions") dense.o_corruptions
    sparse.o_corruptions

let passive () = Engine.passive ~name:"none" ~model:Corruption.Adaptive

let test_crowd_equivalence_adversaries () =
  List.iter
    (fun seed ->
      check_equivalent ~world:`Hybrid ~adversary:passive ~label:"passive" ~n:101
        ~budget:0 ~seed;
      check_equivalent ~world:`Hybrid
        ~adversary:(fun () -> Baattacks.Eraser.make ())
        ~label:"eraser" ~n:101 ~budget:33 ~seed;
      check_equivalent ~world:`Hybrid
        ~adversary:(fun () -> Baattacks.Eraser.silencer ())
        ~label:"silencer" ~n:101 ~budget:33 ~seed;
      check_equivalent ~world:`Hybrid
        ~adversary:(fun () -> Baattacks.Split_vote.sub_hm ())
        ~label:"split-vote" ~n:101 ~budget:33 ~seed)
    [ 7L; 19L ]

let test_crowd_equivalence_real_world () =
  check_equivalent ~world:`Real ~adversary:passive ~label:"real passive" ~n:61
    ~budget:0 ~seed:5L;
  check_equivalent ~world:`Real
    ~adversary:(fun () -> Baattacks.Eraser.silencer ())
    ~label:"real silencer" ~n:61 ~budget:20 ~seed:5L

(* One hook serves repeated trials: it must reset its crowd whenever a
   fresh run begins (the engine restarts rounds at 0). *)
let test_crowd_hook_reusable_across_runs () =
  let proto = Sub_hm.protocol ~params ~world:`Hybrid in
  let hook = Sub_hm.sparse_step () in
  let run seed sparse =
    let collector = Trace.collector () in
    let result =
      Engine.run
        ~tracer:(Trace.observe collector)
        ?sparse proto ~adversary:(passive ()) ~n:101 ~budget:0
        ~inputs:(Scenario.split_inputs ~n:101)
        ~max_rounds:60 ~seed
    in
    (Trace.render collector, result.Engine.outputs)
  in
  List.iter
    (fun seed ->
      let dense = run seed None and sparse = run seed (Some hook) in
      Alcotest.(check string) "reused hook trace" (fst dense) (fst sparse);
      Alcotest.(check bool) "reused hook outputs" true (snd dense = snd sparse))
    [ 3L; 4L; 5L ]

(* --- 3. passive sparse audit = winners ∪ halters ----------------------- *)

let test_passive_sparse_audit_is_winners_and_halters () =
  let n = 201 in
  let proto = Sub_hm.protocol ~params ~world:`Hybrid in
  let collector = Trace.collector () in
  let audits = Hashtbl.create 16 in
  let result =
    Engine.run
      ~tracer:(Trace.observe collector)
      ~sparse:(Sub_hm.sparse_step ())
      ~step_audit:(fun ~round stepped -> Hashtbl.replace audits round stepped)
      proto ~adversary:(passive ()) ~n ~budget:0
      ~inputs:(Scenario.split_inputs ~n)
      ~max_rounds:60 ~seed:13L
  in
  let module Iset = Set.Make (Int) in
  let senders = Hashtbl.create 16 and halters = Hashtbl.create 16 in
  let add tbl r i =
    Hashtbl.replace tbl r
      (Iset.add i (Option.value (Hashtbl.find_opt tbl r) ~default:Iset.empty))
  in
  List.iter
    (function
      | Trace.Sent { round; node; _ } -> add senders round node
      | Trace.Halted { round; node; _ } -> add halters round node
      | _ -> ())
    (Trace.events collector);
  Alcotest.(check bool) "run decided" true result.Engine.all_honest_decided;
  let some_round_was_sparse = ref false in
  for r = 0 to result.Engine.rounds_used - 1 do
    let audited =
      match Hashtbl.find_opt audits r with Some l -> l | None -> []
    in
    let expected =
      Iset.union
        (Option.value (Hashtbl.find_opt senders r) ~default:Iset.empty)
        (Option.value (Hashtbl.find_opt halters r) ~default:Iset.empty)
    in
    Alcotest.(check (list int))
      (Printf.sprintf "round %d audit" r)
      (Iset.elements expected) audited;
    if List.length audited < n / 2 then some_round_was_sparse := true
  done;
  Alcotest.(check bool) "some round did sub-linear work" true
    !some_round_was_sparse

let () =
  let qcheck =
    List.map
      (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xba007 |]))
  in
  Alcotest.run "sparse"
    [ ("active-set", qcheck [ qcheck_dense_audit_matches_reference ]);
      ( "crowd-equivalence",
        [ Alcotest.test_case "all adversaries, hybrid world" `Quick
            test_crowd_equivalence_adversaries;
          Alcotest.test_case "real world" `Quick
            test_crowd_equivalence_real_world;
          Alcotest.test_case "hook reusable across runs" `Quick
            test_crowd_hook_reusable_across_runs ] );
      ( "audit-footprint",
        [ Alcotest.test_case "passive audit = winners ∪ halters" `Quick
            test_passive_sparse_audit_is_winners_and_halters ] ) ]
