(* Tests for the synchronous engine: delivery discipline, the three
   corruption models, budget enforcement, metrics, and property checking.
   Uses a tiny two-round "flood majority" protocol: round 0 every node
   multicasts its input; round 1 every node outputs the majority bit. *)

open Basim

type flood_msg = Bit of bool

type flood_state = {
  input : bool;
  mutable received : (int * bool) list;
  mutable out : bool option;
  mutable stopped : bool;
}

let flood : (unit, flood_state, flood_msg) Engine.protocol =
  { Engine.proto_name = "flood";
    make_env = (fun ~n:_ _ -> ());
    init =
      (fun () ~rng:_ ~n:_ ~me:_ ~input ->
        { input; received = []; out = None; stopped = false });
    step =
      (fun () state ~round ~inbox ->
        if round = 0 then (state, [ Engine.multicast (Bit state.input) ])
        else begin
          state.received <-
            List.map (fun (src, Bit b) -> (src, b)) inbox;
          let ones = List.length (List.filter (fun (_, b) -> b) state.received) in
          let zeros = List.length state.received - ones in
          state.out <- Some (ones > zeros);
          state.stopped <- true;
          (state, [])
        end);
    output = (fun s -> s.out);
    halted = (fun s -> s.stopped);
    msg_bits = (fun () _ -> 1) }

let run_flood ?(n = 5) ?(budget = 0) ?(inputs = [| true; true; true; false; false |])
    adversary =
  Engine.run flood ~adversary ~n ~budget ~inputs ~max_rounds:10 ~seed:1L

let passive model = Engine.passive ~name:"passive" ~model

(* --- Basic delivery ----------------------------------------------------- *)

let test_passive_majority () =
  let result = run_flood (passive Corruption.Adaptive) in
  Array.iter
    (fun out -> Alcotest.(check (option bool)) "majority true" (Some true) out)
    result.Engine.outputs;
  Alcotest.(check bool) "all decided" true result.Engine.all_honest_decided;
  Alcotest.(check int) "two rounds" 2 result.Engine.rounds_used

let test_metrics_counts () =
  let result = run_flood (passive Corruption.Adaptive) in
  let m = result.Engine.metrics in
  Alcotest.(check int) "five multicasts" 5 (Metrics.honest_multicasts m);
  Alcotest.(check int) "five bits" 5 (Metrics.honest_multicast_bits m);
  Alcotest.(check int) "classical msgs = 25" 25 (Metrics.classical_messages m);
  Alcotest.(check int) "no removals" 0 (Metrics.removals m);
  Alcotest.(check int) "no injections" 0 (Metrics.injections m)

let test_self_delivery () =
  (* Multicasts are delivered to everyone including the sender. *)
  let result = run_flood (passive Corruption.Adaptive) in
  Alcotest.(check bool) "decided from 5 inputs incl. self" true
    result.Engine.all_honest_decided

let test_deterministic_in_seed () =
  let r1 = run_flood (passive Corruption.Adaptive) in
  let r2 = run_flood (passive Corruption.Adaptive) in
  Alcotest.(check bool) "same outputs" true (r1.Engine.outputs = r2.Engine.outputs)

(* --- Corruption models --------------------------------------------------- *)

let corrupt_then_remove_adversary model =
  { Engine.adv_name = "remove-0";
    model;
    caps =
      { Capability.caps =
          (Capability.Midround_corruption
          :: (if Corruption.allows_removal model then
                [ Capability.After_fact_removal ]
              else []));
        budget_bound = None };
    setup = (fun _ ~n:_ ~budget:_ ~rng:_ -> []);
    intervene =
      (fun view ->
        if view.Engine.round = 0 then
          [ Engine.Corrupt 0; Engine.Remove { victim = 0; index = 0 } ]
        else []) }

let test_adaptive_cannot_remove () =
  Alcotest.check_raises "removal rejected"
    (Engine.Illegal_action
       "after-the-fact removal requires a strongly adaptive adversary")
    (fun () ->
      ignore
        (run_flood ~budget:1 (corrupt_then_remove_adversary Corruption.Adaptive)))

let test_strongly_adaptive_removes () =
  (* Node 0 (input true) is erased: remaining votes 2 true / 2 false →
     majority strictly-greater fails → everyone outputs false. *)
  let result =
    run_flood ~budget:1 (corrupt_then_remove_adversary Corruption.Strongly_adaptive)
  in
  Alcotest.(check int) "one removal" 1 (Metrics.removals result.Engine.metrics);
  Array.iteri
    (fun i out ->
      if not result.Engine.corrupt.(i) then
        Alcotest.(check (option bool)) "flipped majority" (Some false) out)
    result.Engine.outputs

let test_adaptive_corruption_keeps_intent () =
  (* Merely adaptive corruption of node 0 mid-round 0: its multicast still
     goes out, so the majority stays true. *)
  let adversary =
    { Engine.adv_name = "corrupt-only";
      model = Corruption.Adaptive;
      caps = { Capability.caps = [ Capability.Midround_corruption ]; budget_bound = None };
      setup = (fun _ ~n:_ ~budget:_ ~rng:_ -> []);
      intervene =
        (fun view ->
          if view.Engine.round = 0 then [ Engine.Corrupt 0 ] else []) }
  in
  let result = run_flood ~budget:1 adversary in
  Array.iteri
    (fun i out ->
      if not result.Engine.corrupt.(i) then
        Alcotest.(check (option bool)) "majority intact" (Some true) out)
    result.Engine.outputs

let test_remove_requires_corrupt_victim () =
  let adversary =
    { Engine.adv_name = "remove-honest";
      model = Corruption.Strongly_adaptive;
      caps = { Capability.caps = [ Capability.After_fact_removal ]; budget_bound = None };
      setup = (fun _ ~n:_ ~budget:_ ~rng:_ -> []);
      intervene =
        (fun view ->
          if view.Engine.round = 0 then
            [ Engine.Remove { victim = 0; index = 0 } ]
          else []) }
  in
  Alcotest.check_raises "honest victim rejected"
    (Engine.Illegal_action
       "cannot remove messages of an honest node (corrupt it first)")
    (fun () -> ignore (run_flood ~budget:1 adversary))

let test_budget_enforced () =
  let adversary =
    { Engine.adv_name = "over-budget";
      model = Corruption.Adaptive;
      caps = { Capability.caps = [ Capability.Midround_corruption ]; budget_bound = None };
      setup = (fun _ ~n:_ ~budget:_ ~rng:_ -> []);
      intervene =
        (fun view ->
          if view.Engine.round = 0 then [ Engine.Corrupt 0; Engine.Corrupt 1 ]
          else []) }
  in
  Alcotest.check_raises "budget" (Engine.Illegal_action "corruption budget exhausted")
    (fun () -> ignore (run_flood ~budget:1 adversary))

let test_static_cannot_corrupt_midway () =
  let adversary =
    { Engine.adv_name = "static-late";
      model = Corruption.Static;
      caps = { Capability.caps = []; budget_bound = None };
      setup = (fun _ ~n:_ ~budget:_ ~rng:_ -> []);
      intervene =
        (fun view -> if view.Engine.round = 0 then [ Engine.Corrupt 0 ] else []) }
  in
  Alcotest.check_raises "static mid-run corruption rejected"
    (Engine.Illegal_action "static adversary cannot corrupt mid-execution")
    (fun () -> ignore (run_flood ~budget:1 adversary))

let test_static_setup_corruption_silences_node () =
  let adversary =
    { Engine.adv_name = "static-setup";
      model = Corruption.Static;
      caps = { Capability.caps = [ Capability.Setup_corruption ]; budget_bound = None };
      setup = (fun _ ~n:_ ~budget:_ ~rng:_ -> [ 0 ]);
      intervene = (fun _ -> []) }
  in
  let result = run_flood ~budget:1 adversary in
  (* Node 0 (input true) never spoke: 2 true vs 2 false → false. *)
  Array.iteri
    (fun i out ->
      if not result.Engine.corrupt.(i) then
        Alcotest.(check (option bool)) "node 0 silenced" (Some false) out)
    result.Engine.outputs;
  Alcotest.(check int) "four multicasts" 4
    (Metrics.honest_multicasts result.Engine.metrics)

let test_injection_requires_corrupt_source () =
  let adversary =
    { Engine.adv_name = "spoof";
      model = Corruption.Adaptive;
      caps = { Capability.caps = [ Capability.Injection ]; budget_bound = None };
      setup = (fun _ ~n:_ ~budget:_ ~rng:_ -> []);
      intervene =
        (fun view ->
          if view.Engine.round = 0 then
            [ Engine.Inject { src = 0; dst = Engine.All; payload = Bit false } ]
          else []) }
  in
  Alcotest.check_raises "spoofing rejected"
    (Engine.Illegal_action "only corrupt nodes can be driven by the adversary")
    (fun () -> ignore (run_flood ~budget:1 adversary))

let test_equivocation_via_targeted_injection () =
  (* Corrupt node 0 tells half the nodes true, the other half false,
     splitting the 2-2 remainder: outputs disagree → consistency fails. *)
  let adversary =
    { Engine.adv_name = "equivocator";
      model = Corruption.Adaptive;
      caps = { Capability.caps = [ Capability.Setup_corruption; Capability.Injection ]; budget_bound = None };
      setup = (fun _ ~n:_ ~budget:_ ~rng:_ -> [ 0 ]);
      intervene =
        (fun view ->
          if view.Engine.round = 0 then
            [ Engine.Inject { src = 0; dst = Engine.Only [ 1; 2 ]; payload = Bit true };
              Engine.Inject { src = 0; dst = Engine.Only [ 3; 4 ]; payload = Bit false } ]
          else []) }
  in
  let result = run_flood ~budget:1 ~inputs:[| true; true; true; false; false |] adversary in
  Alcotest.(check (option bool)) "node 1 sees 3 true" (Some true)
    result.Engine.outputs.(1);
  Alcotest.(check (option bool)) "node 3 sees 2-3" (Some false)
    result.Engine.outputs.(3);
  let verdict =
    Properties.agreement ~inputs:[| true; true; true; false; false |] result
  in
  Alcotest.(check bool) "consistency violated" false verdict.Properties.consistent

(* --- Properties ---------------------------------------------------------- *)

let test_agreement_validity_unanimous () =
  let inputs = Array.make 5 true in
  let result = run_flood ~inputs (passive Corruption.Adaptive) in
  let verdict = Properties.agreement ~inputs result in
  Alcotest.(check bool) "ok" true (Properties.ok verdict)

let test_agreement_validity_vacuous_on_mixed () =
  let inputs = [| true; true; true; false; false |] in
  let result = run_flood ~inputs (passive Corruption.Adaptive) in
  let verdict = Properties.agreement ~inputs result in
  Alcotest.(check bool) "valid (vacuous)" true verdict.Properties.valid

let test_broadcast_validity () =
  let inputs = [| true; true; true; false; false |] in
  let result = run_flood ~inputs (passive Corruption.Adaptive) in
  (* Sender 0 input true; flood outputs true → broadcast-valid. *)
  let verdict = Properties.broadcast ~sender:0 ~input:true result in
  Alcotest.(check bool) "valid" true verdict.Properties.valid;
  let verdict' = Properties.broadcast ~sender:3 ~input:false result in
  Alcotest.(check bool) "invalid for sender 3" false verdict'.Properties.valid

let test_validity_ignores_corrupt_inputs () =
  (* Corrupt node 4 holds the only 'false' input: remaining honest inputs
     are unanimous true, outputs are true → valid. *)
  let inputs = [| true; true; true; true; false |] in
  let adversary =
    { Engine.adv_name = "corrupt-4";
      model = Corruption.Static;
      caps = { Capability.caps = [ Capability.Setup_corruption ]; budget_bound = None };
      setup = (fun _ ~n:_ ~budget:_ ~rng:_ -> [ 4 ]);
      intervene = (fun _ -> []) }
  in
  let result = run_flood ~budget:1 ~inputs adversary in
  let verdict = Properties.agreement ~inputs result in
  Alcotest.(check bool) "valid over honest inputs" true verdict.Properties.valid;
  Alcotest.(check bool) "consistent" true verdict.Properties.consistent

(* --- Trace ------------------------------------------------------------------ *)

let test_trace_passive_run () =
  let c = Trace.collector () in
  let inputs = [| true; true; true; false; false |] in
  let _ =
    Engine.run ~tracer:(Trace.observe c) flood
      ~adversary:(passive Corruption.Adaptive) ~n:5 ~budget:0 ~inputs
      ~max_rounds:10 ~seed:1L
  in
  let is_sent = function Trace.Sent _ -> true | _ -> false in
  let is_halt = function Trace.Halted _ -> true | _ -> false in
  let is_round = function Trace.Round_started _ -> true | _ -> false in
  Alcotest.(check int) "five sends" 5 (Trace.count c is_sent);
  Alcotest.(check int) "five halts" 5 (Trace.count c is_halt);
  Alcotest.(check int) "two rounds" 2 (Trace.count c is_round);
  Alcotest.(check bool) "render non-empty" true
    (String.length (Trace.render c) > 0)

let test_trace_attack_events () =
  let c = Trace.collector () in
  let inputs = [| true; true; true; false; false |] in
  let _ =
    Engine.run ~tracer:(Trace.observe c) flood
      ~adversary:(corrupt_then_remove_adversary Corruption.Strongly_adaptive)
      ~n:5 ~budget:1 ~inputs ~max_rounds:10 ~seed:1L
  in
  Alcotest.(check int) "one corruption" 1
    (Trace.count c (function Trace.Corrupted _ -> true | _ -> false));
  Alcotest.(check int) "one removal" 1
    (Trace.count c (function Trace.Removed _ -> true | _ -> false));
  (* The erased send must NOT appear as a Sent event. *)
  Alcotest.(check int) "four surviving sends" 4
    (Trace.count c (function Trace.Sent _ -> true | _ -> false))

let test_trace_injection_events () =
  let adversary =
    { Engine.adv_name = "injector";
      model = Corruption.Adaptive;
      caps = { Capability.caps = [ Capability.Setup_corruption; Capability.Injection ]; budget_bound = None };
      setup = (fun _ ~n:_ ~budget:_ ~rng:_ -> [ 0 ]);
      intervene =
        (fun view ->
          if view.Engine.round = 0 then
            [ Engine.Inject { src = 0; dst = Engine.Only [ 1 ]; payload = Bit true } ]
          else []) }
  in
  let c = Trace.collector () in
  let inputs = [| true; true; true; false; false |] in
  let _ =
    Engine.run ~tracer:(Trace.observe c) flood ~adversary ~n:5 ~budget:1
      ~inputs ~max_rounds:10 ~seed:1L
  in
  let injections =
    List.filter_map
      (function
        | Trace.Injected { recipients; _ } -> Some recipients
        | _ -> None)
      (Trace.events c)
  in
  Alcotest.(check (list int)) "one targeted injection" [ 1 ] injections;
  Alcotest.(check int) "setup corruption traced" 1
    (Trace.count c (function
      | Trace.Corrupted { round = -1; _ } -> true
      | _ -> false))

let test_metrics_pp_and_rounds () =
  let m = Metrics.create ~n:4 in
  Metrics.record_honest_multicast m ~bits:10;
  Metrics.record_honest_unicast m ~recipients:2 ~bits:5;
  Metrics.note_round m 3;
  Alcotest.(check int) "rounds = max+1" 4 (Metrics.rounds m);
  Alcotest.(check int) "classical msgs: 1·4 + 2" 6 (Metrics.classical_messages m);
  Alcotest.(check int) "classical bits: 10·4 + 10" 50 (Metrics.classical_bits m);
  let rendered = Format.asprintf "%a" Metrics.pp m in
  Alcotest.(check bool) "pp mentions multicasts" true
    (String.length rendered > 0)

let test_trace_render_caps_rounds () =
  let c = Trace.collector () in
  for r = 0 to 59 do
    Trace.observe c (Trace.Round_started { round = r })
  done;
  let rendered = Trace.render ~max_rounds:10 c in
  Alcotest.(check bool) "elision notice present" true
    (let needle = "elided" in
     let rec contains i =
       i + String.length needle <= String.length rendered
       && (String.sub rendered i (String.length needle) = needle
          || contains (i + 1))
     in
     contains 0)

(* --- Corruption tracker --------------------------------------------------- *)

let test_tracker_budget () =
  let t = Corruption.create ~n:5 ~budget:2 in
  Alcotest.(check int) "budget" 2 (Corruption.budget t);
  Alcotest.(check bool) "first" true (Corruption.corrupt_now t ~round:0 1);
  Alcotest.(check bool) "second" true (Corruption.corrupt_now t ~round:1 2);
  Alcotest.(check bool) "third fails" false (Corruption.corrupt_now t ~round:2 3);
  Alcotest.(check bool) "idempotent re-corrupt" true
    (Corruption.corrupt_now t ~round:3 1);
  Alcotest.(check int) "count" 2 (Corruption.count t);
  Alcotest.(check (list int)) "list" [ 1; 2 ] (Corruption.corrupt_list t);
  Alcotest.(check (option int)) "round recorded" (Some 1)
    (Corruption.corrupt_round t 2)

let test_tracker_models () =
  Alcotest.(check bool) "static no removal" false
    (Corruption.allows_removal Corruption.Static);
  Alcotest.(check bool) "adaptive no removal" false
    (Corruption.allows_removal Corruption.Adaptive);
  Alcotest.(check bool) "strongly adaptive removal" true
    (Corruption.allows_removal Corruption.Strongly_adaptive);
  Alcotest.(check bool) "static no dynamic" false
    (Corruption.allows_dynamic_corruption Corruption.Static)

(* --- Scenario -------------------------------------------------------------- *)

let test_scenario_aggregate () =
  let trials =
    Scenario.run_trials ~reps:10 ~base_seed:5L (fun seed ->
        let inputs = Array.make 5 true in
        let result =
          Engine.run flood
            ~adversary:(passive Corruption.Adaptive)
            ~n:5 ~budget:0 ~inputs ~max_rounds:10 ~seed
        in
        (result, Properties.agreement ~inputs result))
  in
  let agg = Scenario.aggregate trials in
  Alcotest.(check int) "10 trials" 10 agg.Scenario.trials;
  Alcotest.(check int) "no failures" 0 agg.Scenario.consistency_failures;
  Alcotest.(check bool) "rounds mean = 2" true (agg.Scenario.mean_rounds = 2.0);
  Alcotest.(check bool) "failure rate 0" true (Scenario.failure_rate agg = 0.0)

let test_scenario_distinct_seeds () =
  let trials =
    Scenario.run_trials ~reps:20 ~base_seed:6L (fun seed ->
        let inputs = Scenario.random_inputs ~n:5 seed in
        let result =
          Engine.run flood
            ~adversary:(passive Corruption.Adaptive)
            ~n:5 ~budget:0 ~inputs ~max_rounds:10 ~seed
        in
        (result, Properties.agreement ~inputs result))
  in
  let seeds = List.map (fun t -> t.Scenario.seed) trials in
  Alcotest.(check int) "seeds distinct" 20
    (List.length (List.sort_uniq compare seeds))

let test_input_generators () =
  Alcotest.(check (array bool)) "unanimous" [| true; true; true |]
    (Scenario.unanimous_inputs ~n:3 true);
  let split = Scenario.split_inputs ~n:4 in
  Alcotest.(check (array bool)) "split" [| false; false; true; true |] split

(* --- Randomized adversary fuzz (QCheck) ------------------------------------- *)

(* A random-but-legal adversary: each round it may corrupt a random node,
   inject from an already-corrupt node, and (in the strongly adaptive
   model) erase a fresh intent of a just-corrupted node.  The engine must
   never raise on legal schedules and must keep its accounting invariants. *)
let fuzz_adversary ~plan ~model =
  { Engine.adv_name = "fuzz";
    model;
    caps =
      { Capability.caps =
          (Capability.Midround_corruption :: Capability.Injection
          :: (if Corruption.allows_removal model then
                [ Capability.After_fact_removal ]
              else []));
        budget_bound = None };
    setup = (fun _ ~n:_ ~budget:_ ~rng:_ -> []);
    intervene =
      (fun view ->
        let actions = ref [] in
        (* Local accounting: corruptions planned within this intervention
           also consume budget, and a node planned twice is planned once. *)
        let planned = ref [] in
        let removed = ref [] in
        let corruptable node =
          (not (Corruption.is_corrupt view.Engine.tracker node))
          && (not (List.mem node !planned))
          && Corruption.budget_left view.Engine.tracker > List.length !planned
        in
        let is_ours node =
          Corruption.is_corrupt view.Engine.tracker node || List.mem node !planned
        in
        List.iter
          (fun (round, node, kind) ->
            if round = view.Engine.round then begin
              match kind with
              | `Corrupt ->
                  if corruptable node then begin
                    planned := node :: !planned;
                    actions := Engine.Corrupt node :: !actions
                  end
              | `Inject ->
                  if is_ours node then
                    actions :=
                      Engine.Inject
                        { src = node; dst = Engine.All; payload = Bit false }
                      :: !actions
              | `Corrupt_and_remove ->
                  if
                    corruptable node
                    && Corruption.allows_removal model
                    && not (List.mem node !removed)
                  then begin
                    let _, intents = view.Engine.intents.(node) in
                    if intents <> [] then begin
                      planned := node :: !planned;
                      removed := node :: !removed;
                      actions :=
                        Engine.Remove { victim = node; index = 0 }
                        :: Engine.Corrupt node :: !actions
                    end
                  end
            end)
          plan;
        List.rev !actions) }

let qcheck_fuzz =
  let open QCheck in
  let action_gen =
    Gen.(
      triple (0 -- 2) (0 -- 4)
        (oneofl [ `Corrupt; `Inject; `Corrupt_and_remove ]))
  in
  [ Test.make ~name:"engine invariants under random legal adversaries" ~count:150
      (pair (make Gen.(list_size (0 -- 12) action_gen)) (int_range 0 3))
      (fun (plan, budget) ->
        let inputs = [| true; true; true; false; false |] in
        let result =
          Engine.run flood
            ~adversary:(fuzz_adversary ~plan ~model:Corruption.Strongly_adaptive)
            ~n:5 ~budget ~inputs ~max_rounds:10 ~seed:1L
        in
        result.Engine.corruptions <= budget
        && Metrics.removals result.Engine.metrics <= result.Engine.corruptions
        && result.Engine.rounds_used <= 10);
    Test.make ~name:"adaptive fuzz never removes" ~count:150
      (make Gen.(list_size (0 -- 12) action_gen))
      (fun plan ->
        let inputs = [| true; true; true; false; false |] in
        let result =
          Engine.run flood
            ~adversary:(fuzz_adversary ~plan ~model:Corruption.Adaptive)
            ~n:5 ~budget:3 ~inputs ~max_rounds:10 ~seed:1L
        in
        Metrics.removals result.Engine.metrics = 0);
  ]

let () =
  Alcotest.run "sim"
    [ ( "delivery",
        [ Alcotest.test_case "passive majority" `Quick test_passive_majority;
          Alcotest.test_case "metrics" `Quick test_metrics_counts;
          Alcotest.test_case "self delivery" `Quick test_self_delivery;
          Alcotest.test_case "deterministic" `Quick test_deterministic_in_seed ] );
      ( "corruption-models",
        [ Alcotest.test_case "adaptive cannot remove" `Quick test_adaptive_cannot_remove;
          Alcotest.test_case "strongly adaptive removes" `Quick test_strongly_adaptive_removes;
          Alcotest.test_case "adaptive keeps intent" `Quick test_adaptive_corruption_keeps_intent;
          Alcotest.test_case "remove needs corrupt victim" `Quick test_remove_requires_corrupt_victim;
          Alcotest.test_case "budget enforced" `Quick test_budget_enforced;
          Alcotest.test_case "static cannot corrupt midway" `Quick test_static_cannot_corrupt_midway;
          Alcotest.test_case "static setup corruption" `Quick test_static_setup_corruption_silences_node;
          Alcotest.test_case "injection needs corrupt src" `Quick test_injection_requires_corrupt_source;
          Alcotest.test_case "targeted equivocation" `Quick test_equivocation_via_targeted_injection ] );
      ( "properties",
        [ Alcotest.test_case "unanimous validity" `Quick test_agreement_validity_unanimous;
          Alcotest.test_case "mixed vacuous validity" `Quick test_agreement_validity_vacuous_on_mixed;
          Alcotest.test_case "broadcast validity" `Quick test_broadcast_validity;
          Alcotest.test_case "corrupt inputs excluded" `Quick test_validity_ignores_corrupt_inputs ] );
      ( "trace",
        [ Alcotest.test_case "metrics pp/rounds" `Quick test_metrics_pp_and_rounds;
          Alcotest.test_case "render caps rounds" `Quick test_trace_render_caps_rounds;
          Alcotest.test_case "passive run" `Quick test_trace_passive_run;
          Alcotest.test_case "attack events" `Quick test_trace_attack_events;
          Alcotest.test_case "injection events" `Quick test_trace_injection_events ] );
      ( "tracker",
        [ Alcotest.test_case "budget" `Quick test_tracker_budget;
          Alcotest.test_case "models" `Quick test_tracker_models ] );
      ( "scenario",
        [ Alcotest.test_case "aggregate" `Quick test_scenario_aggregate;
          Alcotest.test_case "distinct seeds" `Quick test_scenario_distinct_seeds;
          Alcotest.test_case "input generators" `Quick test_input_generators ] );
      ( "fuzz",
        List.map
          (QCheck_alcotest.to_alcotest
             ~rand:(Random.State.make [| 0xba007 |]))
          qcheck_fuzz ) ]
