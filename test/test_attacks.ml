(* Tests for the adversary implementations: each attack must break exactly
   the protocol/configuration the paper says it breaks, and nothing else. *)

open Basim
open Bacore
open Baattacks


(* --- Eraser (Theorem 1/4, experiment E1) ------------------------------- *)

let shm_small = Params.make ~lambda:20 ~max_epochs:5 ()

let test_eraser_kills_sub_hm () =
  (* Budget 150 exceeds the protocol's total number of speakers under
     attack (≈ λ per live round), so every honest message is erased and
     no honest node can ever decide. *)
  let proto = Sub_hm.protocol ~params:shm_small ~world:`Hybrid in
  let inputs = Scenario.unanimous_inputs ~n:301 true in
  let result =
    Engine.run proto ~adversary:(Eraser.make ()) ~n:301 ~budget:150 ~inputs
      ~max_rounds:40 ~seed:20L
  in
  let verdict = Properties.agreement ~inputs result in
  Alcotest.(check bool) "termination broken" false verdict.Properties.terminated;
  (* Everything honest nodes sent was erased. *)
  Alcotest.(check int) "all multicasts erased"
    (Metrics.honest_multicasts result.Engine.metrics)
    (Metrics.removals result.Engine.metrics);
  Alcotest.(check bool) "erasures well below (εf/2)² for f=150" true
    (let f = 150.0 and eps = 0.5 in
     float_of_int (Metrics.removals result.Engine.metrics)
     < (eps *. f /. 2.0) ** 2.0)

let test_silencer_control_harmless () =
  (* Same corruption schedule without after-the-fact removal: the already
     -sent messages survive, quorums form, the protocol decides.  This is
     the modeling point of the whole paper. *)
  let params = Params.make ~lambda:20 ~max_epochs:12 () in
  let proto = Sub_hm.protocol ~params ~world:`Hybrid in
  let inputs = Scenario.unanimous_inputs ~n:301 true in
  let result =
    Engine.run proto ~adversary:(Eraser.silencer ()) ~n:301 ~budget:90 ~inputs
      ~max_rounds:60 ~seed:21L
  in
  let verdict = Properties.agreement ~inputs result in
  Alcotest.(check bool) "protocol survives mere corruption" true
    (Properties.ok verdict)

let test_eraser_cannot_kill_quadratic () =
  (* n = 2f+1 speakers per round: the budget f is exhausted in round 0
     with f+1 honest voters left — exactly a quorum. *)
  let proto = Quadratic_hm.protocol () in
  let inputs = Scenario.unanimous_inputs ~n:41 true in
  let result =
    Engine.run proto ~adversary:(Eraser.make ()) ~n:41 ~budget:20 ~inputs
      ~max_rounds:200 ~seed:22L
  in
  let verdict = Properties.agreement ~inputs result in
  Alcotest.(check bool) "quadratic protocol survives the eraser" true
    (Properties.ok verdict)

let test_eraser_respects_budget () =
  let proto = Sub_hm.protocol ~params:shm_small ~world:`Hybrid in
  let inputs = Scenario.unanimous_inputs ~n:301 true in
  let result =
    Engine.run proto ~adversary:(Eraser.make ()) ~n:301 ~budget:10 ~inputs
      ~max_rounds:40 ~seed:23L
  in
  Alcotest.(check bool) "corruptions ≤ budget" true (result.Engine.corruptions <= 10)

(* --- Equivocator (§3.3 Remark, experiment E5) ---------------------------- *)

let equivocator_conflicts ~mode ~reps =
  (* Unanimous inputs: in the bit-specific protocol the opposite-bit ACK
     committee is empty up to rare fresh-mining wins, so "ample ACKs for
     both bits" is impossible; in the bit-agnostic protocol the mirrored
     committee reaches the quorum every epoch. *)
  let params = Params.make ~lambda:20 ~max_epochs:5 () in
  let proto = Sub_third.protocol ~params ~world:`Hybrid ~mode in
  let trials =
    List.init reps (fun k ->
        let seed = Int64.of_int (3000 + k) in
        let inputs = Scenario.unanimous_inputs ~n:360 true in
        let env, result =
          Engine.run_env proto
            ~adversary:(Equivocator.make ())
            ~n:360 ~budget:110 ~inputs ~max_rounds:14 ~seed
        in
        (Atomic.get env.Sub_third.conflicts > 0, Properties.agreement ~inputs result))
  in
  let conflict_trials = List.length (List.filter fst trials) in
  let inconsistent =
    List.length (List.filter (fun (_, v) -> not v.Properties.consistent) trials)
  in
  (conflict_trials, inconsistent)

let test_equivocator_breaks_bit_agnostic () =
  let conflicts, _ = equivocator_conflicts ~mode:Sub_third.Bit_agnostic ~reps:10 in
  Alcotest.(check bool)
    (Printf.sprintf "within-epoch conflicts in %d/10 trials" conflicts)
    true (conflicts >= 8)

let test_equivocator_impotent_against_bit_specific () =
  let conflicts, inconsistent =
    equivocator_conflicts ~mode:Sub_third.Bit_specific ~reps:10
  in
  Alcotest.(check int) "no within-epoch conflicts" 0 conflicts;
  Alcotest.(check int) "no inconsistent outputs" 0 inconsistent

(* --- Chen-Micali equivocator (experiment E5b) -------------------------------- *)

let cm_attack ~erasure ~reps =
  let params = Params.make ~lambda:20 ~max_epochs:5 () in
  let proto = Babaselines.Chen_micali.protocol ~params ~erasure in
  let outcomes =
    List.init reps (fun k ->
        let seed = Int64.of_int (8000 + k) in
        let inputs = Scenario.split_inputs ~n:360 in
        let env, result =
          Engine.run_env proto
            ~adversary:(Cm_equivocator.make ())
            ~n:360 ~budget:110 ~inputs ~max_rounds:14 ~seed
        in
        ( Atomic.get env.Babaselines.Chen_micali.conflicts > 0,
          Properties.agreement ~inputs result ))
  in
  ( List.length (List.filter fst outcomes),
    List.length (List.filter (fun (_, v) -> not v.Properties.consistent) outcomes) )

let test_cm_equivocator_blocked_by_erasure () =
  let conflicts, _ = cm_attack ~erasure:true ~reps:8 in
  Alcotest.(check int) "erased keys: no mirrored committees" 0 conflicts

let test_cm_equivocator_wins_without_erasure () =
  let conflicts, inconsistent = cm_attack ~erasure:false ~reps:8 in
  Alcotest.(check bool)
    (Printf.sprintf "conflicts in %d/8 trials" conflicts)
    true (conflicts >= 7);
  Alcotest.(check bool)
    (Printf.sprintf "inconsistent in %d/8 trials" inconsistent)
    true (inconsistent >= 6)

(* --- Split vote (experiment E4) -------------------------------------------- *)

let test_split_vote_sub_hm_below_half_safe () =
  (* λ must be large enough that the corrupt coalition's lone-vote
     committee stays below the λ/2 quorum except with probability
     exp(-Ω(ε²λ)) — at λ = 30 that "negligible" term is ≈ 2% per trial,
     so we test at λ = 40. *)
  let params = Params.make ~lambda:40 ~max_epochs:40 () in
  let proto = Sub_hm.protocol ~params ~world:`Hybrid in
  let failures = ref 0 in
  for k = 0 to 5 do
    let seed = Int64.of_int (4000 + k) in
    let inputs = Scenario.unanimous_inputs ~n:200 true in
    let result =
      Engine.run proto ~adversary:(Split_vote.sub_hm ()) ~n:200 ~budget:60
        ~inputs ~max_rounds:170 ~seed
    in
    let verdict = Properties.agreement ~inputs result in
    if not (verdict.Properties.consistent && verdict.Properties.valid) then
      incr failures
  done;
  Alcotest.(check int) "safety holds below n/2" 0 !failures

let test_split_vote_sub_hm_above_half_breaks () =
  let params = Params.make ~lambda:40 ~max_epochs:40 () in
  let proto = Sub_hm.protocol ~params ~world:`Hybrid in
  let failures = ref 0 in
  for k = 0 to 5 do
    let seed = Int64.of_int (5000 + k) in
    let inputs = Scenario.unanimous_inputs ~n:200 true in
    let result =
      Engine.run proto ~adversary:(Split_vote.sub_hm ()) ~n:200 ~budget:130
        ~inputs ~max_rounds:170 ~seed
    in
    let verdict = Properties.agreement ~inputs result in
    if not (Properties.ok verdict) then incr failures
  done;
  Alcotest.(check bool)
    (Printf.sprintf "broken in %d/6 trials past n/2" !failures)
    true (!failures >= 4)

let test_split_vote_sub_third_below_third_safe () =
  (* Split honest beliefs + corrupt double-ACKs: the per-bit committee is
     ((n−f)/2 + f)·λ/n, which crosses the 2λ/3 quorum exactly at f = n/3.
     Below it, good epochs converge and outputs agree. *)
  let params = Params.make ~lambda:60 ~max_epochs:14 () in
  let proto =
    Sub_third.protocol ~params ~world:`Hybrid ~mode:Sub_third.Bit_specific
  in
  let failures = ref 0 in
  for k = 0 to 5 do
    let seed = Int64.of_int (6000 + k) in
    let inputs = Scenario.split_inputs ~n:200 in
    let result =
      Engine.run proto ~adversary:(Split_vote.sub_third ()) ~n:200 ~budget:20
        ~inputs ~max_rounds:32 ~seed
    in
    let verdict = Properties.agreement ~inputs result in
    if not verdict.Properties.consistent then incr failures
  done;
  Alcotest.(check bool)
    (Printf.sprintf "%d/6 consistency failures below n/3" !failures)
    true (!failures <= 1)

let test_split_vote_sub_third_above_third_breaks () =
  (* Past n/3, "ample ACKs" appear for both bits epoch after epoch, the
     split never heals, and outputs disagree in a large fraction of
     trials. *)
  let params = Params.make ~lambda:60 ~max_epochs:14 () in
  let proto =
    Sub_third.protocol ~params ~world:`Hybrid ~mode:Sub_third.Bit_specific
  in
  let failures = ref 0 in
  for k = 0 to 5 do
    let seed = Int64.of_int (7000 + k) in
    let inputs = Scenario.split_inputs ~n:200 in
    let result =
      Engine.run proto ~adversary:(Split_vote.sub_third ()) ~n:200 ~budget:95
        ~inputs ~max_rounds:32 ~seed
    in
    let verdict = Properties.agreement ~inputs result in
    if not verdict.Properties.consistent then incr failures
  done;
  Alcotest.(check bool)
    (Printf.sprintf "broken in %d/6 trials past n/3" !failures)
    true (!failures >= 2)

(* --- Attacks against the compiled (real) world -------------------------------- *)

let test_real_world_safe_under_split_vote () =
  (* The Appendix-E claim, adversarially: the compiled protocol keeps its
     safety under the same double-voting attack as the hybrid one. *)
  let params = Params.make ~lambda:24 ~max_epochs:40 () in
  let proto = Sub_hm.protocol ~params ~world:`Real in
  let inputs = Scenario.unanimous_inputs ~n:61 true in
  let result =
    Engine.run proto ~adversary:(Split_vote.sub_hm ()) ~n:61 ~budget:18
      ~inputs ~max_rounds:170 ~seed:60L
  in
  let verdict = Properties.agreement ~inputs result in
  Alcotest.(check bool) "real world safe below n/2" true (Properties.ok verdict)

let test_real_world_eraser_still_lethal () =
  (* ... and the lower bound does not care about the crypto either: the
     strongly adaptive eraser kills the compiled protocol just the same. *)
  let params = Params.make ~lambda:16 ~max_epochs:4 () in
  let proto = Sub_hm.protocol ~params ~world:`Real in
  let inputs = Scenario.unanimous_inputs ~n:121 true in
  let result =
    Engine.run proto ~adversary:(Eraser.make ()) ~n:121 ~budget:60 ~inputs
      ~max_rounds:30 ~seed:61L
  in
  let verdict = Properties.agreement ~inputs result in
  Alcotest.(check bool) "termination broken" false verdict.Properties.terminated

(* --- Takeover (experiment E8) ------------------------------------------------ *)

let test_takeover_flips_static_committee () =
  let proto = Babaselines.Static_committee.protocol ~committee_size:7 in
  let inputs = Scenario.unanimous_inputs ~n:60 false in
  let result =
    Engine.run proto ~adversary:(Takeover.make ~force:true ()) ~n:60 ~budget:10
      ~inputs ~max_rounds:5 ~seed:30L
  in
  let verdict = Properties.agreement ~inputs result in
  Alcotest.(check bool) "validity violated" false verdict.Properties.valid;
  (* Every honest node ends up with the adversary's bit. *)
  Array.iteri
    (fun i out ->
      if not result.Engine.corrupt.(i) then
        Alcotest.(check (option bool)) "forced output" (Some true) out)
    result.Engine.outputs

let test_same_budget_cannot_take_over_sub_hm () =
  (* The identical budget aimed at the sub-hm protocol: no public
     committee to corrupt, and double-voting with 10 nodes is noise. *)
  let params = Params.make ~lambda:30 ~max_epochs:40 () in
  let proto = Sub_hm.protocol ~params ~world:`Hybrid in
  let inputs = Scenario.unanimous_inputs ~n:60 false in
  let result =
    Engine.run proto ~adversary:(Split_vote.sub_hm ()) ~n:60 ~budget:10 ~inputs
      ~max_rounds:170 ~seed:31L
  in
  let verdict = Properties.agreement ~inputs result in
  Alcotest.(check bool) "sub-hm unaffected" true (Properties.ok verdict)

(* --- Dolev–Reischuk isolation (experiment E1b) -------------------------------- *)

let test_dr_isolation_violates_consistency () =
  let proto = Babaselines.Sparse_relay.protocol ~d:3 in
  let inputs = Array.make 20 true in
  let result =
    Engine.run proto ~adversary:(Dolev_reischuk.make ~victim:19 ()) ~n:20
      ~budget:3 ~inputs ~max_rounds:20 ~seed:40L
  in
  let verdict = Properties.broadcast ~sender:0 ~input:true result in
  Alcotest.(check bool) "consistency violated" false verdict.Properties.consistent;
  Alcotest.(check (option bool)) "victim defaults to 0" (Some false)
    result.Engine.outputs.(19)

let test_dr_fails_with_insufficient_budget () =
  (* d = 3 predecessors but only budget 2: one honest predecessor still
     reaches the victim. *)
  let proto = Babaselines.Sparse_relay.protocol ~d:3 in
  let inputs = Array.make 20 true in
  let result =
    Engine.run proto ~adversary:(Dolev_reischuk.make ~victim:19 ()) ~n:20
      ~budget:2 ~inputs ~max_rounds:20 ~seed:41L
  in
  let verdict = Properties.broadcast ~sender:0 ~input:true result in
  Alcotest.(check bool) "redundancy above budget defeats the attack" true
    (Properties.ok verdict)

let test_dr_other_nodes_unaffected () =
  let proto = Babaselines.Sparse_relay.protocol ~d:2 in
  let inputs = Array.make 15 true in
  let result =
    Engine.run proto ~adversary:(Dolev_reischuk.make ~victim:14 ()) ~n:15
      ~budget:2 ~inputs ~max_rounds:20 ~seed:42L
  in
  (* Every honest node other than the victim still gets the bit. *)
  Array.iteri
    (fun i out ->
      if (not result.Engine.corrupt.(i)) && i <> 14 then
        Alcotest.(check (option bool))
          (Printf.sprintf "node %d learned" i)
          (Some true) out)
    result.Engine.outputs

(* --- Setup necessity (Theorem 3, experiment E6) ------------------------------- *)

let test_setup_necessity_contradiction () =
  let o = Setup_necessity.run ~n:50 ~committee_size:8 ~seed:50L in
  Alcotest.(check (option bool)) "Q decides 0" (Some false) o.Setup_necessity.q_output;
  Alcotest.(check (option bool)) "Q' decides 1" (Some true) o.Setup_necessity.q'_output;
  Alcotest.(check bool) "contradiction" true o.Setup_necessity.contradiction;
  Alcotest.(check bool) "node 1 disagrees with one side" true
    (Some o.Setup_necessity.node1_output <> o.Setup_necessity.q_output
    || Some o.Setup_necessity.node1_output <> o.Setup_necessity.q'_output)

let test_setup_necessity_corruptions_bounded () =
  let o = Setup_necessity.run ~n:200 ~committee_size:12 ~seed:51L in
  Alcotest.(check bool)
    (Printf.sprintf "corruptions %d ≤ multicast complexity %d"
       o.Setup_necessity.corruptions_needed o.Setup_necessity.multicast_complexity)
    true
    (o.Setup_necessity.corruptions_needed <= o.Setup_necessity.multicast_complexity);
  Alcotest.(check bool) "sublinear in n" true
    (o.Setup_necessity.corruptions_needed < 200 / 4)

let test_setup_necessity_validation () =
  Alcotest.check_raises "committee too large"
    (Invalid_argument "Setup_necessity.run: committee larger than {2..n}")
    (fun () -> ignore (Setup_necessity.run ~n:5 ~committee_size:5 ~seed:1L))

(* --- Pinned property tests ---------------------------------------------------- *)

let attacks_qcheck_tests =
  (* The takeover's guarantee is seed-independent: whatever committee
     the CRS selects, forcing it flips every honest output. *)
  [ QCheck.Test.make ~name:"takeover forces the adversary's bit (any seed)"
      ~count:12
      QCheck.(make ~print:string_of_int Gen.(0 -- 10_000))
      (fun seed ->
        let proto = Babaselines.Static_committee.protocol ~committee_size:7 in
        let inputs = Scenario.unanimous_inputs ~n:60 false in
        let result =
          Engine.run proto
            ~adversary:(Takeover.make ~force:true ())
            ~n:60 ~budget:10 ~inputs ~max_rounds:5 ~seed:(Int64.of_int seed)
        in
        let forced = ref true in
        Array.iteri
          (fun i out ->
            if (not result.Engine.corrupt.(i)) && out <> Some true then
              forced := false)
          result.Engine.outputs;
        !forced) ]

let () =
  Alcotest.run "attacks"
    [ ( "eraser",
        [ Alcotest.test_case "kills sub-hm" `Quick test_eraser_kills_sub_hm;
          Alcotest.test_case "silencer control" `Quick test_silencer_control_harmless;
          Alcotest.test_case "quadratic survives" `Quick test_eraser_cannot_kill_quadratic;
          Alcotest.test_case "budget respected" `Quick test_eraser_respects_budget ] );
      ( "equivocator",
        [ Alcotest.test_case "breaks bit-agnostic" `Quick
            test_equivocator_breaks_bit_agnostic;
          Alcotest.test_case "impotent vs bit-specific" `Quick
            test_equivocator_impotent_against_bit_specific ] );
      ( "cm-equivocator",
        [ Alcotest.test_case "blocked by erasure" `Quick
            test_cm_equivocator_blocked_by_erasure;
          Alcotest.test_case "wins without erasure" `Quick
            test_cm_equivocator_wins_without_erasure ] );
      ( "split-vote",
        [ Alcotest.test_case "sub-hm safe below 1/2" `Slow
            test_split_vote_sub_hm_below_half_safe;
          Alcotest.test_case "sub-hm breaks above 1/2" `Slow
            test_split_vote_sub_hm_above_half_breaks;
          Alcotest.test_case "sub-third safe below 1/3" `Slow
            test_split_vote_sub_third_below_third_safe;
          Alcotest.test_case "sub-third breaks above 1/3" `Slow
            test_split_vote_sub_third_above_third_breaks ] );
      ( "real-world",
        [ Alcotest.test_case "safe under split-vote" `Slow
            test_real_world_safe_under_split_vote;
          Alcotest.test_case "eraser still lethal" `Slow
            test_real_world_eraser_still_lethal ] );
      ( "takeover",
        [ Alcotest.test_case "flips static committee" `Quick
            test_takeover_flips_static_committee;
          Alcotest.test_case "sub-hm immune at same budget" `Quick
            test_same_budget_cannot_take_over_sub_hm ] );
      ( "dolev-reischuk",
        [ Alcotest.test_case "isolation violates consistency" `Quick
            test_dr_isolation_violates_consistency;
          Alcotest.test_case "insufficient budget fails" `Quick
            test_dr_fails_with_insufficient_budget;
          Alcotest.test_case "others unaffected" `Quick test_dr_other_nodes_unaffected ] );
      ( "setup-necessity",
        [ Alcotest.test_case "contradiction" `Quick test_setup_necessity_contradiction;
          Alcotest.test_case "corruptions bounded" `Quick
            test_setup_necessity_corruptions_bounded;
          Alcotest.test_case "validation" `Quick test_setup_necessity_validation ] );
      ( "qcheck",
        List.map
          (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xba00a |]))
          attacks_qcheck_tests ) ]
