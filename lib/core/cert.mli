(** Certificates for the honest-majority protocols (Appendix C).

    An iteration-[r] certificate for bit [b] is a collection of [f+1]
    (quadratic protocol) or [λ/2] (subquadratic protocol) iteration-[r]
    Vote endorsements for [b] from distinct nodes. The endorsement type is
    a signature tag in the quadratic protocol and an eligibility
    credential in the subquadratic one, so the type is polymorphic.

    Ranking (Appendix C.1): certificates are ranked by iteration; "a bit
    without any certificate has an iteration-0 certificate", represented
    here as [None]. *)

type 'a t = {
  iter : int;                       (** iteration the votes are from *)
  bit : bool;                       (** the certified bit *)
  endorsements : (int * 'a) list;   (** (voter, endorsement) pairs *)
}

val make : iter:int -> bit:bool -> endorsements:(int * 'a) list -> 'a t
(** Deduplicates endorsements by voter. @raise Invalid_argument if
    [iter < 1]. *)

val rank : 'a t option -> int
(** Iteration number; [None] ranks as 0 (the iteration-0 certificate). *)

val strictly_higher : 'a t option -> than:'a t option -> bool
(** [strictly_higher a ~than:b] iff [rank a > rank b]. *)

val distinct_endorsers : 'a t -> int

val well_formed :
  'a t -> quorum:int -> check:(node:int -> 'a -> bool) -> bool
(** [well_formed c ~quorum ~check] holds iff [c] carries at least
    [quorum] endorsements from distinct nodes, each accepted by [check]
    (signature verification or credential verification for the statement
    "Vote, c.iter, c.bit"). *)

val well_formed_batch :
  'a t -> quorum:int -> check_all:((int * 'a) list -> bool list) -> bool
(** Batched {!well_formed}: [check_all] receives every endorsement at
    once (one amortized crypto sweep, e.g. {!Eligibility.t.verify_many}
    or {!Bacrypto.Signature.verify_batch}) and returns one verdict per
    entry, in order. Equivalent to [well_formed] whenever [check_all]
    agrees pointwise with [check] — checks here are pure, so evaluating
    them for duplicate endorsers that [well_formed] would short-circuit
    past cannot change the verdict. *)

val size_bits : 'a t option -> endorsement_bits:('a -> int) -> int
(** Wire size: per endorsement, a 32-bit node id plus the endorsement
    itself; plus a 48-bit header. [None] costs 8 bits (a tag saying
    "no certificate"). *)
