type 'a t = { iter : int; bit : bool; endorsements : (int * 'a) list }

module Iset = Set.Make (Int)

let make ~iter ~bit ~endorsements =
  if iter < 1 then invalid_arg "Cert.make: iterations start at 1";
  let _, deduped =
    List.fold_left
      (fun (seen, acc) (node, e) ->
        if Iset.mem node seen then (seen, acc)
        else (Iset.add node seen, (node, e) :: acc))
      (Iset.empty, []) endorsements
  in
  { iter; bit; endorsements = List.rev deduped }

let rank = function None -> 0 | Some c -> c.iter

let strictly_higher a ~than = rank a > rank than

let distinct_endorsers c =
  Iset.cardinal (Iset.of_list (List.map fst c.endorsements))

let well_formed c ~quorum ~check =
  let distinct =
    List.fold_left
      (fun seen (node, e) ->
        if Iset.mem node seen then seen
        else if check ~node e then Iset.add node seen
        else seen)
      Iset.empty c.endorsements
  in
  Iset.cardinal distinct >= quorum

let well_formed_batch c ~quorum ~check_all =
  let oks = check_all c.endorsements in
  let distinct =
    List.fold_left2
      (fun seen (node, _) ok ->
        if Iset.mem node seen then seen
        else if ok then Iset.add node seen
        else seen)
      Iset.empty c.endorsements oks
  in
  Iset.cardinal distinct >= quorum

let size_bits c ~endorsement_bits =
  match c with
  | None -> 8
  | Some c ->
      48
      + List.fold_left
          (fun acc (_, e) -> acc + 32 + endorsement_bits e)
          0 c.endorsements
