(** The §3.2 protocol: the {!Warmup_third} epoch structure made
    communication-efficient through {e vote-specific eligibility}, and with
    the idealized leader-election oracle removed.

    Every multicast of the warmup protocol becomes a {e conditional}
    multicast: a node first mines an eligibility ticket through the
    {!Bafmine.Eligibility} oracle and only speaks when the ticket wins.

    - ACK committees: eligibility probability [λ/n] per node, so each
      (epoch, bit) committee has expected size [λ]; the "ample ACKs"
      threshold becomes [2λ/3].
    - Proposals: eligibility probability [1/(2n)] per (node, bit), so a
      single proposer emerges every two epochs on average — this replaces
      the leader oracle.

    The paper's key insight (and this module's {!mode} switch): with
    {b bit-specific} eligibility the committee allowed to ACK bit [b] in
    epoch [r] is independent of the committee for [1−b], so corrupting a
    node that just ACKed [b] gives the adversary nothing toward forging
    ACKs for [1−b]. The {b bit-agnostic} mode implements the broken
    variant of the §3.3 Remark — one ticket per (ACK, epoch) reusable for
    either bit — which the {!Baattacks.Equivocator} adversary exploits to
    violate within-epoch consistency (experiment E5).

    Tolerates [f < (1/3 − ε)n] adaptive corruptions (without
    after-the-fact removal); completes in [2R + 1] rounds. *)

type mode =
  | Bit_specific  (** the paper's protocol: tickets name (type, epoch, bit) *)
  | Bit_agnostic  (** the §3.3-Remark strawman: tickets name (type, epoch) *)

type world = [ `Hybrid | `Real ]
(** Run over the [Fmine] ideal functionality or over the Appendix-D
    VRF compilation. *)

type env = {
  n : int;
  params : Params.t;
  elig : Bafmine.Eligibility.t;
  mode : mode;
  pki : Bacrypto.Pki.t option;  (** [Some] in the real world *)
  fmine : Bafmine.Fmine.t option;
      (** [Some] in the hybrid world — inspectable mining statistics *)
  conflicts : int Atomic.t;
      (** count of within-epoch consistency violations observed — an
          honest node seeing "ample ACKs" for {e both} bits in one epoch
          (the §3.3-Remark event; one increment per observing node per
          epoch). Zero in every tolerated execution of the bit-specific
          protocol. *)
}

type msg =
  | Propose of { epoch : int; bit : bool; cred : Bafmine.Eligibility.credential }
  | Ack of { epoch : int; bit : bool; cred : Bafmine.Eligibility.credential }

val msg_kind : msg -> string
(** Stable kind label for causal tracing ({!Basim.Engine.run}'s
    [?labeler]): ["propose"] or ["ack"]. *)

type state

val protocol :
  params:Params.t -> world:world -> mode:mode ->
  (env, state, msg) Basim.Engine.protocol
(** The protocol record for the engine. *)

val ack_mining_string : mode -> epoch:int -> bit:bool -> string
(** The string a node mines to ACK — includes the bit only in
    [Bit_specific] mode. *)

val propose_mining_string : epoch:int -> bit:bool -> string
(** The string mined for proposals (always bit-specific, as in §3.2). *)

val ack_probability : env -> float
(** [λ/n]. *)

val propose_probability : env -> float
(** [1/(2n)]. *)

val make_ack : epoch:int -> bit:bool -> cred:Bafmine.Eligibility.credential -> msg
(** Assemble an ACK message — used by adversaries for corrupt nodes. *)

val make_propose :
  epoch:int -> bit:bool -> cred:Bafmine.Eligibility.credential -> msg
(** Assemble a proposal — used by adversaries for corrupt nodes. *)

val verify_msg : env -> sender:int -> msg -> bool
(** The receiver-side validity check (credential verification). *)

val belief : state -> bool
(** The node's current belief (inspectable for tests). *)
