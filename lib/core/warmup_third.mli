(** The warmup BA protocol of §3.1: simple, communication-{e inefficient}
    (every node multicasts every epoch), tolerating [f < n/3] corruptions.

    Epochs [r = 0, 1, …, R−1] of two synchronous rounds each:

    + the epoch leader — node [r mod n], per the paper's "(i.e., node
      r)" round-robin oracle — flips a fair coin [b] and multicasts
      [(propose, r, b)];
    + every node ACKs either its current belief (if its sticky flag [F]
      is set, or it heard no valid proposal) or the leader's bit, and
      multicasts an [(ACK, r, b∗)] message;
    + a node seeing "ample ACKs" — at least [2n/3] ACKs from distinct
      nodes for the same bit — adopts that bit and sets [F := 1], else
      sets [F := 0].

    After [R] epochs each node outputs the bit it last ACKed. All
    messages are signed; invalidly signed messages are dropped.

    This module exists as the baseline the §3.2 subquadratic protocol
    ({!Sub_third}) is derived from; experiment E2 contrasts their
    multicast complexities. *)

type env = {
  n : int;
  params : Params.t;
  sigs : Bacrypto.Signature.scheme;
}

type msg =
  | Propose of { epoch : int; bit : bool; tag : Bacrypto.Signature.tag }
  | Ack of { epoch : int; bit : bool; tag : Bacrypto.Signature.tag }

val msg_kind : msg -> string
(** Stable kind label for causal tracing: ["propose"] or ["ack"]. *)

type state

val protocol : params:Params.t -> (env, state, msg) Basim.Engine.protocol
(** The protocol record for the engine. Runs exactly
    [2 · params.max_epochs + 1] rounds. *)

val leader : n:int -> epoch:int -> int
(** The round-robin epoch leader, [epoch mod n]. *)

val sign_propose : env -> signer:int -> epoch:int -> bit:bool -> msg
(** Build a validly signed proposal — used by adversaries driving corrupt
    nodes (including corrupt leaders). *)

val sign_ack : env -> signer:int -> epoch:int -> bit:bool -> msg
(** Build a validly signed ACK for a corrupt node. *)

val belief : state -> bool
(** The node's current belief bit [b_i] (inspectable for tests). *)

val sticky : state -> bool
(** The node's sticky flag [F] (inspectable for tests). *)
