open Bafmine

type elig_cert = Eligibility.credential Cert.t

type proposal = {
  p_iter : int;
  p_bit : bool;
  p_cert : elig_cert option;
  p_node : int;
  p_cred : Eligibility.credential;
}

type msg =
  | Status of {
      iter : int;
      bit : bool;
      cert : elig_cert option;
      cred : Eligibility.credential;
    }
  | Propose of proposal
  | Vote of {
      iter : int;
      bit : bool;
      proposal : proposal option;
      cred : Eligibility.credential;
    }
  | Commit of {
      iter : int;
      bit : bool;
      cert : elig_cert;
      cred : Eligibility.credential;
    }
  | Terminate of {
      iter : int;
      bit : bool;
      commits : (int * Eligibility.credential) list;
      cred : Eligibility.credential;
    }

let msg_kind = function
  | Status _ -> "status"
  | Propose _ -> "propose"
  | Vote _ -> "vote"
  | Commit _ -> "commit"
  | Terminate _ -> "terminate"

type env = {
  n : int;
  params : Params.t;
  elig : Eligibility.t;
  pki : Bacrypto.Pki.t option;
  fmine : Fmine.t option;
  cert_cache : (elig_cert, unit) Hashtbl.t;
      (* positive verification results, shared across receivers: sound
         because Fmine coins are memoized and VRF verification is
         deterministic, so a certificate that verified once verifies
         forever *)
  proposal_cache : (proposal, unit) Hashtbl.t;  (* same, for proposals *)
  cache_lock : Mutex.t;
      (* guards both caches when the engine shards the step phase across
         domains; verification itself runs outside the lock (results are
         deterministic, so a racing duplicate check is harmless) *)
}

module Iset = Set.Make (Int)

let phase_of_round = Quadratic_hm.phase_of_round

let bit_int b = if b then 1 else 0

let mining_string kind ~iter ~bit =
  let tag =
    match kind with
    | `Status -> "shm:Status"
    | `Propose -> "shm:Propose"
    | `Vote -> "shm:Vote"
    | `Commit -> "shm:Commit"
  in
  Printf.sprintf "%s:%d:%d" tag iter (bit_int bit)

let terminate_mining_string ~bit = Printf.sprintf "shm:Terminate:%d" (bit_int bit)

let committee_probability env = Params.ack_probability env.params ~n:env.n

let propose_probability env = Params.propose_probability ~n:env.n

let quorum env = Params.hm_quorum env.params

let verify_ticket env ~node ~msg ~p cred =
  env.elig.Eligibility.verify ~node ~msg ~p cred

(* Certificate validity: λ/2 distinct verifying vote credentials.  Positive
   results are cached in the env — every receiver checks the same
   certificate value, and validity is monotone. *)
let valid_cert env (cert : elig_cert) =
  Mutex.protect env.cache_lock (fun () -> Hashtbl.mem env.cert_cache cert)
  ||
  let ok =
    (* all endorsements share one mining string and difficulty, so the
       whole quorum check is a single amortized sweep *)
    Cert.well_formed_batch cert ~quorum:(quorum env)
      ~check_all:
        (env.elig.Eligibility.verify_many
           ~msg:(mining_string `Vote ~iter:cert.Cert.iter ~bit:cert.Cert.bit)
           ~p:(committee_probability env))
  in
  if ok then
    Mutex.protect env.cache_lock (fun () ->
        Hashtbl.replace env.cert_cache cert ());
  ok

let valid_cert_opt env = function None -> true | Some c -> valid_cert env c

let valid_proposal env ~iter (p : proposal) =
  p.p_iter = iter
  && (Mutex.protect env.cache_lock (fun () -> Hashtbl.mem env.proposal_cache p)
     ||
     let ok =
       verify_ticket env ~node:p.p_node
         ~msg:(mining_string `Propose ~iter ~bit:p.p_bit)
         ~p:(propose_probability env) p.p_cred
       && valid_cert_opt env p.p_cert
       && (match p.p_cert with
          | None -> true
          | Some c -> c.Cert.bit = p.p_bit && c.Cert.iter < iter)
     in
     if ok then
       Mutex.protect env.cache_lock (fun () ->
           Hashtbl.replace env.proposal_cache p ());
     ok)

let valid_vote env ~sender ~iter ~bit ~proposal ~cred =
  verify_ticket env ~node:sender
    ~msg:(mining_string `Vote ~iter ~bit)
    ~p:(committee_probability env) cred
  && (if iter = 1 then true
      else
        match proposal with
        | None -> false
        | Some p -> valid_proposal env ~iter p && p.p_bit = bit)

let valid_commit env ~sender ~iter ~bit ~cert ~cred =
  verify_ticket env ~node:sender
    ~msg:(mining_string `Commit ~iter ~bit)
    ~p:(committee_probability env) cred
  && valid_cert env cert
  && cert.Cert.iter = iter && cert.Cert.bit = bit

let valid_terminate env ~sender ~iter ~bit ~commits ~cred =
  verify_ticket env ~node:sender ~msg:(terminate_mining_string ~bit)
    ~p:(committee_probability env) cred
  &&
  let oks =
    env.elig.Eligibility.verify_many
      ~msg:(mining_string `Commit ~iter ~bit)
      ~p:(committee_probability env) commits
  in
  let distinct =
    List.fold_left2
      (fun seen (node, _) ok ->
        if Iset.mem node seen then seen
        else if ok then Iset.add node seen
        else seen)
      Iset.empty commits oks
  in
  Iset.cardinal distinct >= quorum env

let make_vote ~iter ~bit ~proposal ~cred = Vote { iter; bit; proposal; cred }

let make_propose ~iter ~bit ~cert ~node ~cred =
  Propose { p_iter = iter; p_bit = bit; p_cert = cert; p_node = node; p_cred = cred }

(* The {e listener} half of a node's state: everything a node learns
   purely by verifying and absorbing received messages. Listener
   evolution is a deterministic function of (env, round, inbox) — it
   never reads [me], [input], or the node's rng — which is what lets the
   sparse execution path below share ONE listener among every node that
   received exactly the multicast traffic. *)
type listener = {
  mutable best0 : elig_cert option;
  mutable best1 : elig_cert option;
  votes : (int * bool, (int * Eligibility.credential) list) Hashtbl.t;
  commits : (int * bool, (int * Eligibility.credential) list) Hashtbl.t;
  mutable proposals : proposal list;
  mutable pending : (int * bool * (int * Eligibility.credential) list) option;
}

type state = {
  me : int;
  input : bool;
  rng : Bacrypto.Rng.t;
  mutable lst : listener option;
      (* [None] while the node is riding a shared listener (sparse mode)
         or before its first step; allocated lazily on first use *)
  mutable out : bool option;
  mutable stopped : bool;
}

let fresh_listener () =
  { best0 = None;
    best1 = None;
    votes = Hashtbl.create 64;
    commits = Hashtbl.create 64;
    proposals = [];
    pending = None }

let listener_of state =
  match state.lst with
  | Some l -> l
  | None ->
      let l = fresh_listener () in
      state.lst <- Some l;
      l

let copy_listener l =
  { l with votes = Hashtbl.copy l.votes; commits = Hashtbl.copy l.commits }

let best_for l bit = if bit then l.best1 else l.best0

let set_best l bit c = if bit then l.best1 <- c else l.best0 <- c

let absorb_cert l = function
  | None -> ()
  | Some c ->
      if Cert.strictly_higher (Some c) ~than:(best_for l c.Cert.bit) then
        set_best l c.Cert.bit (Some c)

let overall_best l =
  if Cert.strictly_higher l.best1 ~than:l.best0 then l.best1 else l.best0

let add_endorsement table key entry =
  let existing = Option.value (Hashtbl.find_opt table key) ~default:[] in
  if List.mem_assoc (fst entry) existing then ()
  else Hashtbl.replace table key (entry :: existing)

let absorb env l ~iter_of_round ~sender msg =
  match msg with
  | Status { cert; _ } -> if valid_cert_opt env cert then absorb_cert l cert
  | Propose p ->
      if valid_proposal env ~iter:iter_of_round p then
        l.proposals <- p :: l.proposals;
      if valid_cert_opt env p.p_cert then absorb_cert l p.p_cert
  | Vote { iter; bit; proposal; cred } ->
      if valid_vote env ~sender ~iter ~bit ~proposal ~cred then begin
        add_endorsement l.votes (iter, bit) (sender, cred);
        (* build the certificate once, when the quorum is first reached *)
        let endorsements = Hashtbl.find l.votes (iter, bit) in
        if List.length endorsements = Params.hm_quorum env.params then
          absorb_cert l (Some (Cert.make ~iter ~bit ~endorsements))
      end
  | Commit { iter; bit; cert; cred } ->
      if valid_commit env ~sender ~iter ~bit ~cert ~cred then begin
        add_endorsement l.commits (iter, bit) (sender, cred);
        absorb_cert l (Some cert);
        let endorsements = Hashtbl.find l.commits (iter, bit) in
        if List.length endorsements >= Params.hm_quorum env.params
           && l.pending = None
        then l.pending <- Some (iter, bit, endorsements)
      end
  | Terminate { iter; bit; commits; cred } ->
      if valid_terminate env ~sender ~iter ~bit ~commits ~cred
         && l.pending = None
      then l.pending <- Some (iter, bit, commits)

(* Conditional multicast: mine the ticket; emit the message on success. *)
let conditionally env state ~kind ~iter ~bit ~build =
  let msg_str, p =
    match kind with
    | `Propose -> (mining_string `Propose ~iter ~bit, propose_probability env)
    | `Terminate -> (terminate_mining_string ~bit, committee_probability env)
    | (`Status | `Vote | `Commit) as k ->
        (mining_string k ~iter ~bit, committee_probability env)
  in
  match env.elig.Eligibility.mine ~node:state.me ~msg:msg_str ~p with
  | Some cred -> [ Basim.Engine.multicast (build cred) ]
  | None -> []

let iter_of_phase = function
  | Quadratic_hm.Phase_status i | Quadratic_hm.Phase_propose i
  | Quadratic_hm.Phase_vote i | Quadratic_hm.Phase_commit i ->
      i

let init _env ~rng ~n:_ ~me ~input =
  { me; input; rng; lst = None; out = None; stopped = false }

let step env state ~round ~inbox =
  let l = listener_of state in
  let phase = phase_of_round round in
  let iter = iter_of_phase phase in
  (match phase with
  | Quadratic_hm.Phase_status _ -> l.proposals <- []
  | Quadratic_hm.Phase_propose _ | Quadratic_hm.Phase_vote _
  | Quadratic_hm.Phase_commit _ ->
      ());
  List.iter
    (fun (sender, m) -> absorb env l ~iter_of_round:iter ~sender m)
    inbox;
  match l.pending with
  | Some (t_iter, bit, commits) ->
      state.out <- Some bit;
      state.stopped <- true;
      let sends =
        conditionally env state ~kind:`Terminate ~iter:t_iter ~bit
          ~build:(fun cred -> Terminate { iter = t_iter; bit; commits; cred })
      in
      (state, sends)
  | None ->
      if iter > env.params.Params.max_epochs then begin
        state.stopped <- true;
        (state, [])
      end
      else begin
        let sends =
          match phase with
          | Quadratic_hm.Phase_status _ ->
              let best = overall_best l in
              let bit =
                match best with Some c -> c.Cert.bit | None -> state.input
              in
              conditionally env state ~kind:`Status ~iter ~bit
                ~build:(fun cred -> Status { iter; bit; cert = best; cred })
          | Quadratic_hm.Phase_propose _ ->
              (* One propose mining attempt per iteration, for the bit
                 carrying the node's highest certificate (coin on tie). *)
              let r0 = Cert.rank l.best0 and r1 = Cert.rank l.best1 in
              let bit =
                if r0 > r1 then false
                else if r1 > r0 then true
                else Bacrypto.Rng.bool state.rng
              in
              conditionally env state ~kind:`Propose ~iter ~bit
                ~build:(fun cred ->
                  make_propose ~iter ~bit ~cert:(best_for l bit)
                    ~node:state.me ~cred)
          | Quadratic_hm.Phase_vote _ ->
              if iter = 1 then
                conditionally env state ~kind:`Vote ~iter ~bit:state.input
                  ~build:(fun cred ->
                    make_vote ~iter ~bit:state.input ~proposal:None ~cred)
              else begin
                let bits =
                  List.sort_uniq Bool.compare
                    (List.filter_map
                       (fun p -> if p.p_iter = iter then Some p.p_bit else None)
                       l.proposals)
                in
                match bits with
                | [ b ] ->
                    let p =
                      List.find (fun p -> p.p_iter = iter && p.p_bit = b)
                        l.proposals
                    in
                    if Cert.rank (best_for l (not b)) <= Cert.rank p.p_cert
                    then
                      conditionally env state ~kind:`Vote ~iter ~bit:b
                        ~build:(fun cred ->
                          make_vote ~iter ~bit:b ~proposal:(Some p) ~cred)
                    else []
                | [] | _ :: _ :: _ -> []
              end
          | Quadratic_hm.Phase_commit _ ->
              let votes_for b =
                Option.value (Hashtbl.find_opt l.votes (iter, b)) ~default:[]
              in
              let v0 = votes_for false and v1 = votes_for true in
              let try_commit b vs opposite =
                if List.length vs >= quorum env && opposite = [] then
                  (* a certificate is exactly λ/2 votes; don't ship more *)
                  let vs = List.filteri (fun i _ -> i < quorum env) vs in
                  let cert = Cert.make ~iter ~bit:b ~endorsements:vs in
                  Some
                    (conditionally env state ~kind:`Commit ~iter ~bit:b
                       ~build:(fun cred -> Commit { iter; bit = b; cert; cred }))
                else None
              in
              (match try_commit false v0 v1 with
              | Some sends -> sends
              | None -> (
                  match try_commit true v1 v0 with
                  | Some sends -> sends
                  | None -> []))
        in
        (state, sends)
      end

let protocol ~params ~world =
  let make_env ~n rng =
    match world with
    | `Hybrid ->
        let fmine = Fmine.create rng in
        { n;
          params;
          elig = Eligibility.hybrid fmine;
          pki = None;
          fmine = Some fmine;
          cert_cache = Hashtbl.create 256;
          proposal_cache = Hashtbl.create 64;
          cache_lock = Mutex.create () }
    | `Real ->
        let pki = Bacrypto.Pki.setup ~n rng in
        { n;
          params;
          elig = Compiler.real_world pki;
          pki = Some pki;
          fmine = None;
          cert_cache = Hashtbl.create 256;
          proposal_cache = Hashtbl.create 64;
          cache_lock = Mutex.create () }
  in
  let cred_bits env c = env.elig.Eligibility.credential_bits c in
  let cert_bits env c =
    Cert.size_bits c ~endorsement_bits:(fun cr -> cred_bits env cr)
  in
  let proposal_bits env = function
    | None -> 8
    | Some p -> 48 + 32 + cred_bits env p.p_cred + cert_bits env p.p_cert
  in
  let msg_bits env = function
    | Status { cert; cred; _ } -> 48 + cred_bits env cred + cert_bits env cert
    | Propose p -> 48 + 32 + cred_bits env p.p_cred + cert_bits env p.p_cert
    | Vote { proposal; cred; _ } ->
        48 + cred_bits env cred + proposal_bits env proposal
    | Commit { cert; cred; _ } ->
        48 + cred_bits env cred + cert_bits env (Some cert)
    | Terminate { commits; cred; _ } ->
        48 + cred_bits env cred
        + List.fold_left
            (fun acc (_, c) -> acc + 32 + cred_bits env c)
            0 commits
  in
  { Basim.Engine.proto_name =
      (match world with `Hybrid -> "sub-hm" | `Real -> "sub-hm-real");
    make_env;
    init;
    step;
    output = (fun s -> s.out);
    halted = (fun s -> s.stopped);
    msg_bits }

let best_certificate state =
  match state.lst with None -> None | Some l -> overall_best l

(* -------------------------------------------------------------------- *)
(* Sparse crowd execution.

   Every message in this protocol is a multicast, so in a round without
   targeted injections all [n] honest nodes receive the {e same} inbox —
   the engine's shared delivery tail. Since listener evolution never
   reads a node's identity, one [absorb] pass over that tail stands in
   for all of them, and the per-node remainder of a step (an input bit,
   at most one rng coin, one eligibility sample) is O(1) allocation-free
   work. A node leaves the crowd — forking a private listener from the
   round-start snapshot — the first time its inbox differs from the
   shared tail, and then runs full dense steps forever after; adversary
   injections are rare (O(corrupt) per round), so the crowd stays
   near-[n] and a round costs O(active) instead of O(n · inbox). *)

type crowd = {
  cl : listener;  (* the listener every undiverged node shares *)
  mutable snapshot : listener;
      (* deep copy of [cl] at the start of the current round: exactly the
         listener a member must privately own if it diverges this round *)
  member : Bytes.t;  (* ['\001'] while node [i] still rides [cl] *)
}

let sparse_step () : (env, state, msg) Basim.Engine.sparse_step =
  let crowd = ref None in
  fun env ~states (rv : msg Basim.Engine.round_view) ->
    let open Basim.Engine in
    let c =
      match !crowd with
      | Some c when rv.rv_round > 0 -> c
      | _ ->
          (* round 0 of a (possibly repeated) run: fresh crowd *)
          let c =
            { cl = fresh_listener ();
              snapshot = fresh_listener ();
              member = Bytes.make rv.rv_n '\001' }
          in
          crowd := Some c;
          c
    in
    c.snapshot <- copy_listener c.cl;
    let phase = phase_of_round rv.rv_round in
    let iter = iter_of_phase phase in
    (* One absorb pass over the shared tail, in delivery order — the same
       sequence every member's private absorb loop would run. *)
    (match phase with
    | Quadratic_hm.Phase_status _ -> c.cl.proposals <- []
    | Quadratic_hm.Phase_propose _ | Quadratic_hm.Phase_vote _
    | Quadratic_hm.Phase_commit _ ->
        ());
    List.iter
      (fun (sender, m) -> absorb env c.cl ~iter_of_round:iter ~sender m)
      rv.rv_shared_inbox;
    let p_committee = committee_probability env in
    let sample st msg_str p build =
      match env.elig.Eligibility.sample ~node:st.me ~msg:msg_str ~p with
      | Some cred -> [ Basim.Engine.multicast (build cred) ]
      | None -> []
    in
    (* The crowd-uniform part of this round's step, decided once; [act]
       finishes the per-member part: input bit, tie coin, eligibility
       sample. Mining strings are hoisted so losing samples allocate
       nothing per member. *)
    let halting =
      match c.cl.pending with
      | Some _ -> true
      | None -> iter > env.params.Params.max_epochs
    in
    let act =
      match c.cl.pending with
      | Some (t_iter, bit, commits) ->
          let ms = terminate_mining_string ~bit in
          fun st ->
            st.out <- Some bit;
            st.stopped <- true;
            sample st ms p_committee (fun cred ->
                Terminate { iter = t_iter; bit; commits; cred })
      | None ->
          if halting then
            fun st ->
              begin
                st.stopped <- true;
                []
              end
          else begin
            match phase with
            | Quadratic_hm.Phase_status _ -> (
                let best = overall_best c.cl in
                match best with
                | Some cc ->
                    let bit = cc.Cert.bit in
                    let ms = mining_string `Status ~iter ~bit in
                    fun st ->
                      sample st ms p_committee (fun cred ->
                          Status { iter; bit; cert = best; cred })
                | None ->
                    let ms0 = mining_string `Status ~iter ~bit:false in
                    let ms1 = mining_string `Status ~iter ~bit:true in
                    fun st ->
                      let bit = st.input in
                      sample st (if bit then ms1 else ms0) p_committee
                        (fun cred -> Status { iter; bit; cert = None; cred }))
            | Quadratic_hm.Phase_propose _ ->
                let r0 = Cert.rank c.cl.best0 and r1 = Cert.rank c.cl.best1 in
                let p_prop = propose_probability env in
                let for_bit bit st =
                  sample st (mining_string `Propose ~iter ~bit) p_prop
                    (fun cred ->
                      make_propose ~iter ~bit ~cert:(best_for c.cl bit)
                        ~node:st.me ~cred)
                in
                if r0 > r1 then for_bit false
                else if r1 > r0 then for_bit true
                else
                  (* rank tie: each member flips its own coin, exactly as
                     in the dense step — member rng streams stay aligned *)
                  fun st ->
                  for_bit (Bacrypto.Rng.bool st.rng) st
            | Quadratic_hm.Phase_vote _ ->
                if iter = 1 then begin
                  let ms0 = mining_string `Vote ~iter ~bit:false in
                  let ms1 = mining_string `Vote ~iter ~bit:true in
                  fun st ->
                    let bit = st.input in
                    sample st (if bit then ms1 else ms0) p_committee
                      (fun cred -> make_vote ~iter ~bit ~proposal:None ~cred)
                end
                else begin
                  let bits =
                    List.sort_uniq Bool.compare
                      (List.filter_map
                         (fun p -> if p.p_iter = iter then Some p.p_bit else None)
                         c.cl.proposals)
                  in
                  match bits with
                  | [ b ] ->
                      let p =
                        List.find (fun p -> p.p_iter = iter && p.p_bit = b)
                          c.cl.proposals
                      in
                      if Cert.rank (best_for c.cl (not b)) <= Cert.rank p.p_cert
                      then
                        let ms = mining_string `Vote ~iter ~bit:b in
                        fun st ->
                          sample st ms p_committee (fun cred ->
                              make_vote ~iter ~bit:b ~proposal:(Some p) ~cred)
                      else fun _ -> []
                  | [] | _ :: _ :: _ -> fun _ -> []
                end
            | Quadratic_hm.Phase_commit _ -> (
                let votes_for b =
                  Option.value
                    (Hashtbl.find_opt c.cl.votes (iter, b))
                    ~default:[]
                in
                let v0 = votes_for false and v1 = votes_for true in
                let plan b vs opposite =
                  if List.length vs >= quorum env && opposite = [] then begin
                    let vs = List.filteri (fun i _ -> i < quorum env) vs in
                    let cert = Cert.make ~iter ~bit:b ~endorsements:vs in
                    let ms = mining_string `Commit ~iter ~bit:b in
                    Some
                      (fun st ->
                        sample st ms p_committee (fun cred ->
                            Commit { iter; bit = b; cert; cred }))
                  end
                  else None
                in
                match plan false v0 v1 with
                | Some f -> f
                | None -> (
                    match plan true v1 v0 with
                    | Some f -> f
                    | None -> fun _ -> []))
          end
    in
    for k = 0 to rv.rv_n_active - 1 do
      let i = rv.rv_active.(k) in
      let st = states.(i) in
      if Bytes.get c.member i = '\001' && rv.rv_is_shared i then begin
        if not st.stopped then begin
          let sends = act st in
          (* Winners and halters announce themselves; a losing sample is
             silent, which is what keeps the round O(emitters + halters)
             on the engine side. *)
          if halting || sends <> [] then rv.rv_emit i sends
        end
      end
      else begin
        if Bytes.get c.member i = '\001' then begin
          (* First delivery that differs from the shared tail: fork a
             private listener from the round-start snapshot and leave the
             crowd for good. *)
          st.lst <- Some (copy_listener c.snapshot);
          Bytes.set c.member i '\000'
        end;
        if not st.stopped then begin
          let st', sends =
            step env st ~round:rv.rv_round ~inbox:(rv.rv_inbox i)
          in
          states.(i) <- st';
          rv.rv_emit i sends
        end
      end
    done
