open Bafmine

type elig_cert = Eligibility.credential Cert.t

type proposal = {
  p_iter : int;
  p_bit : bool;
  p_cert : elig_cert option;
  p_node : int;
  p_cred : Eligibility.credential;
}

type msg =
  | Status of {
      iter : int;
      bit : bool;
      cert : elig_cert option;
      cred : Eligibility.credential;
    }
  | Propose of proposal
  | Vote of {
      iter : int;
      bit : bool;
      proposal : proposal option;
      cred : Eligibility.credential;
    }
  | Commit of {
      iter : int;
      bit : bool;
      cert : elig_cert;
      cred : Eligibility.credential;
    }
  | Terminate of {
      iter : int;
      bit : bool;
      commits : (int * Eligibility.credential) list;
      cred : Eligibility.credential;
    }

let msg_kind = function
  | Status _ -> "status"
  | Propose _ -> "propose"
  | Vote _ -> "vote"
  | Commit _ -> "commit"
  | Terminate _ -> "terminate"

type env = {
  n : int;
  params : Params.t;
  elig : Eligibility.t;
  pki : Bacrypto.Pki.t option;
  fmine : Fmine.t option;
  cert_cache : (elig_cert, unit) Hashtbl.t;
      (* positive verification results, shared across receivers: sound
         because Fmine coins are memoized and VRF verification is
         deterministic, so a certificate that verified once verifies
         forever *)
  proposal_cache : (proposal, unit) Hashtbl.t;  (* same, for proposals *)
  cache_lock : Mutex.t;
      (* guards both caches when the engine shards the step phase across
         domains; verification itself runs outside the lock (results are
         deterministic, so a racing duplicate check is harmless) *)
}

module Iset = Set.Make (Int)

let phase_of_round = Quadratic_hm.phase_of_round

let bit_int b = if b then 1 else 0

let mining_string kind ~iter ~bit =
  let tag =
    match kind with
    | `Status -> "shm:Status"
    | `Propose -> "shm:Propose"
    | `Vote -> "shm:Vote"
    | `Commit -> "shm:Commit"
  in
  Printf.sprintf "%s:%d:%d" tag iter (bit_int bit)

let terminate_mining_string ~bit = Printf.sprintf "shm:Terminate:%d" (bit_int bit)

let committee_probability env = Params.ack_probability env.params ~n:env.n

let propose_probability env = Params.propose_probability ~n:env.n

let quorum env = Params.hm_quorum env.params

let verify_ticket env ~node ~msg ~p cred =
  env.elig.Eligibility.verify ~node ~msg ~p cred

(* Certificate validity: λ/2 distinct verifying vote credentials.  Positive
   results are cached in the env — every receiver checks the same
   certificate value, and validity is monotone. *)
let valid_cert env (cert : elig_cert) =
  Mutex.protect env.cache_lock (fun () -> Hashtbl.mem env.cert_cache cert)
  ||
  let ok =
    (* all endorsements share one mining string and difficulty, so the
       whole quorum check is a single amortized sweep *)
    Cert.well_formed_batch cert ~quorum:(quorum env)
      ~check_all:
        (env.elig.Eligibility.verify_many
           ~msg:(mining_string `Vote ~iter:cert.Cert.iter ~bit:cert.Cert.bit)
           ~p:(committee_probability env))
  in
  if ok then
    Mutex.protect env.cache_lock (fun () ->
        Hashtbl.replace env.cert_cache cert ());
  ok

let valid_cert_opt env = function None -> true | Some c -> valid_cert env c

let valid_proposal env ~iter (p : proposal) =
  p.p_iter = iter
  && (Mutex.protect env.cache_lock (fun () -> Hashtbl.mem env.proposal_cache p)
     ||
     let ok =
       verify_ticket env ~node:p.p_node
         ~msg:(mining_string `Propose ~iter ~bit:p.p_bit)
         ~p:(propose_probability env) p.p_cred
       && valid_cert_opt env p.p_cert
       && (match p.p_cert with
          | None -> true
          | Some c -> c.Cert.bit = p.p_bit && c.Cert.iter < iter)
     in
     if ok then
       Mutex.protect env.cache_lock (fun () ->
           Hashtbl.replace env.proposal_cache p ());
     ok)

let valid_vote env ~sender ~iter ~bit ~proposal ~cred =
  verify_ticket env ~node:sender
    ~msg:(mining_string `Vote ~iter ~bit)
    ~p:(committee_probability env) cred
  && (if iter = 1 then true
      else
        match proposal with
        | None -> false
        | Some p -> valid_proposal env ~iter p && p.p_bit = bit)

let valid_commit env ~sender ~iter ~bit ~cert ~cred =
  verify_ticket env ~node:sender
    ~msg:(mining_string `Commit ~iter ~bit)
    ~p:(committee_probability env) cred
  && valid_cert env cert
  && cert.Cert.iter = iter && cert.Cert.bit = bit

let valid_terminate env ~sender ~iter ~bit ~commits ~cred =
  verify_ticket env ~node:sender ~msg:(terminate_mining_string ~bit)
    ~p:(committee_probability env) cred
  &&
  let oks =
    env.elig.Eligibility.verify_many
      ~msg:(mining_string `Commit ~iter ~bit)
      ~p:(committee_probability env) commits
  in
  let distinct =
    List.fold_left2
      (fun seen (node, _) ok ->
        if Iset.mem node seen then seen
        else if ok then Iset.add node seen
        else seen)
      Iset.empty commits oks
  in
  Iset.cardinal distinct >= quorum env

let make_vote ~iter ~bit ~proposal ~cred = Vote { iter; bit; proposal; cred }

let make_propose ~iter ~bit ~cert ~node ~cred =
  Propose { p_iter = iter; p_bit = bit; p_cert = cert; p_node = node; p_cred = cred }

type state = {
  me : int;
  input : bool;
  rng : Bacrypto.Rng.t;
  mutable best0 : elig_cert option;
  mutable best1 : elig_cert option;
  votes : (int * bool, (int * Eligibility.credential) list) Hashtbl.t;
  commits : (int * bool, (int * Eligibility.credential) list) Hashtbl.t;
  mutable proposals : proposal list;
  mutable pending : (int * bool * (int * Eligibility.credential) list) option;
  mutable out : bool option;
  mutable stopped : bool;
}

let best_for state bit = if bit then state.best1 else state.best0

let set_best state bit c = if bit then state.best1 <- c else state.best0 <- c

let absorb_cert state = function
  | None -> ()
  | Some c ->
      if Cert.strictly_higher (Some c) ~than:(best_for state c.Cert.bit) then
        set_best state c.Cert.bit (Some c)

let overall_best state =
  if Cert.strictly_higher state.best1 ~than:state.best0 then state.best1
  else state.best0

let add_endorsement table key entry =
  let existing = Option.value (Hashtbl.find_opt table key) ~default:[] in
  if List.mem_assoc (fst entry) existing then ()
  else Hashtbl.replace table key (entry :: existing)

let absorb env state ~iter_of_round ~sender msg =
  match msg with
  | Status { cert; _ } -> if valid_cert_opt env cert then absorb_cert state cert
  | Propose p ->
      if valid_proposal env ~iter:iter_of_round p then
        state.proposals <- p :: state.proposals;
      if valid_cert_opt env p.p_cert then absorb_cert state p.p_cert
  | Vote { iter; bit; proposal; cred } ->
      if valid_vote env ~sender ~iter ~bit ~proposal ~cred then begin
        add_endorsement state.votes (iter, bit) (sender, cred);
        (* build the certificate once, when the quorum is first reached *)
        let endorsements = Hashtbl.find state.votes (iter, bit) in
        if List.length endorsements = Params.hm_quorum env.params then
          absorb_cert state (Some (Cert.make ~iter ~bit ~endorsements))
      end
  | Commit { iter; bit; cert; cred } ->
      if valid_commit env ~sender ~iter ~bit ~cert ~cred then begin
        add_endorsement state.commits (iter, bit) (sender, cred);
        absorb_cert state (Some cert);
        let endorsements = Hashtbl.find state.commits (iter, bit) in
        if List.length endorsements >= Params.hm_quorum env.params
           && state.pending = None
        then state.pending <- Some (iter, bit, endorsements)
      end
  | Terminate { iter; bit; commits; cred } ->
      if valid_terminate env ~sender ~iter ~bit ~commits ~cred
         && state.pending = None
      then state.pending <- Some (iter, bit, commits)

(* Conditional multicast: mine the ticket; emit the message on success. *)
let conditionally env state ~kind ~iter ~bit ~build =
  let msg_str, p =
    match kind with
    | `Propose -> (mining_string `Propose ~iter ~bit, propose_probability env)
    | `Terminate -> (terminate_mining_string ~bit, committee_probability env)
    | (`Status | `Vote | `Commit) as k ->
        (mining_string k ~iter ~bit, committee_probability env)
  in
  match env.elig.Eligibility.mine ~node:state.me ~msg:msg_str ~p with
  | Some cred -> [ Basim.Engine.multicast (build cred) ]
  | None -> []

let protocol ~params ~world =
  let make_env ~n rng =
    match world with
    | `Hybrid ->
        let fmine = Fmine.create rng in
        { n;
          params;
          elig = Eligibility.hybrid fmine;
          pki = None;
          fmine = Some fmine;
          cert_cache = Hashtbl.create 256;
          proposal_cache = Hashtbl.create 64;
          cache_lock = Mutex.create () }
    | `Real ->
        let pki = Bacrypto.Pki.setup ~n rng in
        { n;
          params;
          elig = Compiler.real_world pki;
          pki = Some pki;
          fmine = None;
          cert_cache = Hashtbl.create 256;
          proposal_cache = Hashtbl.create 64;
          cache_lock = Mutex.create () }
  in
  let init _env ~rng ~n:_ ~me ~input =
    { me;
      input;
      rng;
      best0 = None;
      best1 = None;
      votes = Hashtbl.create 64;
      commits = Hashtbl.create 64;
      proposals = [];
      pending = None;
      out = None;
      stopped = false }
  in
  let step env state ~round ~inbox =
    let phase = phase_of_round round in
    let iter =
      match phase with
      | Quadratic_hm.Phase_status i | Quadratic_hm.Phase_propose i
      | Quadratic_hm.Phase_vote i | Quadratic_hm.Phase_commit i ->
          i
    in
    (match phase with
    | Quadratic_hm.Phase_status _ -> state.proposals <- []
    | Quadratic_hm.Phase_propose _ | Quadratic_hm.Phase_vote _
    | Quadratic_hm.Phase_commit _ ->
        ());
    List.iter
      (fun (sender, m) -> absorb env state ~iter_of_round:iter ~sender m)
      inbox;
    match state.pending with
    | Some (t_iter, bit, commits) ->
        state.out <- Some bit;
        state.stopped <- true;
        let sends =
          conditionally env state ~kind:`Terminate ~iter:t_iter ~bit
            ~build:(fun cred -> Terminate { iter = t_iter; bit; commits; cred })
        in
        (state, sends)
    | None ->
        if iter > env.params.Params.max_epochs then begin
          state.stopped <- true;
          (state, [])
        end
        else begin
          let sends =
            match phase with
            | Quadratic_hm.Phase_status _ ->
                let best = overall_best state in
                let bit =
                  match best with Some c -> c.Cert.bit | None -> state.input
                in
                conditionally env state ~kind:`Status ~iter ~bit
                  ~build:(fun cred -> Status { iter; bit; cert = best; cred })
            | Quadratic_hm.Phase_propose _ ->
                (* One propose mining attempt per iteration, for the bit
                   carrying the node's highest certificate (coin on tie). *)
                let r0 = Cert.rank state.best0 and r1 = Cert.rank state.best1 in
                let bit =
                  if r0 > r1 then false
                  else if r1 > r0 then true
                  else Bacrypto.Rng.bool state.rng
                in
                conditionally env state ~kind:`Propose ~iter ~bit
                  ~build:(fun cred ->
                    make_propose ~iter ~bit ~cert:(best_for state bit)
                      ~node:state.me ~cred)
            | Quadratic_hm.Phase_vote _ ->
                if iter = 1 then
                  conditionally env state ~kind:`Vote ~iter ~bit:state.input
                    ~build:(fun cred ->
                      make_vote ~iter ~bit:state.input ~proposal:None ~cred)
                else begin
                  let bits =
                    List.sort_uniq Bool.compare
                      (List.filter_map
                         (fun p -> if p.p_iter = iter then Some p.p_bit else None)
                         state.proposals)
                  in
                  match bits with
                  | [ b ] ->
                      let p =
                        List.find (fun p -> p.p_iter = iter && p.p_bit = b)
                          state.proposals
                      in
                      if Cert.rank (best_for state (not b)) <= Cert.rank p.p_cert
                      then
                        conditionally env state ~kind:`Vote ~iter ~bit:b
                          ~build:(fun cred ->
                            make_vote ~iter ~bit:b ~proposal:(Some p) ~cred)
                      else []
                  | [] | _ :: _ :: _ -> []
                end
            | Quadratic_hm.Phase_commit _ ->
                let votes_for b =
                  Option.value (Hashtbl.find_opt state.votes (iter, b)) ~default:[]
                in
                let v0 = votes_for false and v1 = votes_for true in
                let try_commit b vs opposite =
                  if List.length vs >= quorum env && opposite = [] then
                    (* a certificate is exactly λ/2 votes; don't ship more *)
                    let vs = List.filteri (fun i _ -> i < quorum env) vs in
                    let cert = Cert.make ~iter ~bit:b ~endorsements:vs in
                    Some
                      (conditionally env state ~kind:`Commit ~iter ~bit:b
                         ~build:(fun cred -> Commit { iter; bit = b; cert; cred }))
                  else None
                in
                (match try_commit false v0 v1 with
                | Some sends -> sends
                | None -> (
                    match try_commit true v1 v0 with
                    | Some sends -> sends
                    | None -> []))
          in
          (state, sends)
        end
  in
  let cred_bits env c = env.elig.Eligibility.credential_bits c in
  let cert_bits env c =
    Cert.size_bits c ~endorsement_bits:(fun cr -> cred_bits env cr)
  in
  let proposal_bits env = function
    | None -> 8
    | Some p -> 48 + 32 + cred_bits env p.p_cred + cert_bits env p.p_cert
  in
  let msg_bits env = function
    | Status { cert; cred; _ } -> 48 + cred_bits env cred + cert_bits env cert
    | Propose p -> 48 + 32 + cred_bits env p.p_cred + cert_bits env p.p_cert
    | Vote { proposal; cred; _ } ->
        48 + cred_bits env cred + proposal_bits env proposal
    | Commit { cert; cred; _ } ->
        48 + cred_bits env cred + cert_bits env (Some cert)
    | Terminate { commits; cred; _ } ->
        48 + cred_bits env cred
        + List.fold_left
            (fun acc (_, c) -> acc + 32 + cred_bits env c)
            0 commits
  in
  { Basim.Engine.proto_name =
      (match world with `Hybrid -> "sub-hm" | `Real -> "sub-hm-real");
    make_env;
    init;
    step;
    output = (fun s -> s.out);
    halted = (fun s -> s.stopped);
    msg_bits }

let best_certificate state = overall_best state
