type mode = Bit_specific | Bit_agnostic

type world = [ `Hybrid | `Real ]

type env = {
  n : int;
  params : Params.t;
  elig : Bafmine.Eligibility.t;
  mode : mode;
  pki : Bacrypto.Pki.t option;
  fmine : Bafmine.Fmine.t option;
  conflicts : int Atomic.t;
}

type msg =
  | Propose of { epoch : int; bit : bool; cred : Bafmine.Eligibility.credential }
  | Ack of { epoch : int; bit : bool; cred : Bafmine.Eligibility.credential }

let msg_kind = function Propose _ -> "propose" | Ack _ -> "ack"

module Iset = Set.Make (Int)

type state = {
  me : int;
  rng : Bacrypto.Rng.t;
  mutable belief : bool;
  mutable sticky : bool;
  mutable out : bool option;
  mutable stopped : bool;
}

let ack_mining_string mode ~epoch ~bit =
  match mode with
  | Bit_specific ->
      Bafmine.Eligibility.mining_msg ~tag:"sub3:ACK" ~iter:epoch ~bit:(Some bit)
  | Bit_agnostic ->
      Bafmine.Eligibility.mining_msg ~tag:"sub3:ACK" ~iter:epoch ~bit:None

let propose_mining_string ~epoch ~bit =
  Bafmine.Eligibility.mining_msg ~tag:"sub3:Propose" ~iter:epoch ~bit:(Some bit)

let ack_probability env = Params.ack_probability env.params ~n:env.n

let propose_probability env = Params.propose_probability ~n:env.n

let make_ack ~epoch ~bit ~cred = Ack { epoch; bit; cred }

let make_propose ~epoch ~bit ~cred = Propose { epoch; bit; cred }

let verify_msg env ~sender = function
  | Propose { epoch; bit; cred } ->
      env.elig.Bafmine.Eligibility.verify ~node:sender
        ~msg:(propose_mining_string ~epoch ~bit)
        ~p:(propose_probability env) cred
  | Ack { epoch; bit; cred } ->
      env.elig.Bafmine.Eligibility.verify ~node:sender
        ~msg:(ack_mining_string env.mode ~epoch ~bit)
        ~p:(ack_probability env) cred

(* Tally the previous epoch's ACKs: "ample ACKs" = 2λ/3 valid ACKs from
   distinct nodes for the same bit. *)
let tally (env : env) (state : state) ~prev_epoch ~inbox =
  let quorum = Params.third_quorum env.params in
  let ackers_for target =
    List.fold_left
      (fun acc (sender, m) ->
        match m with
        | Ack { epoch; bit; _ }
          when epoch = prev_epoch && bit = target && verify_msg env ~sender m ->
            Iset.add sender acc
        | Ack _ | Propose _ -> acc)
      Iset.empty inbox
  in
  let ample b = Iset.cardinal (ackers_for b) >= quorum in
  match (ample false, ample true) with
  | true, false ->
      state.belief <- false;
      state.sticky <- true
  | false, true ->
      state.belief <- true;
      state.sticky <- true
  | true, true ->
      (* Within-epoch consistency broken (possible only past the
         resilience bound or in Bit_agnostic mode under attack) — the
         event the §3.3 Remark describes.  Counted once per observing
         node per epoch. *)
      Atomic.incr env.conflicts;
      state.sticky <- true
  | false, false -> state.sticky <- false

let choose_ack (env : env) (state : state) ~epoch ~inbox =
  let proposals =
    List.filter_map
      (fun (sender, m) ->
        match m with
        | Propose { epoch = e; bit; _ } when e = epoch && verify_msg env ~sender m ->
            Some bit
        | Propose _ | Ack _ -> None)
      inbox
  in
  if state.sticky then state.belief
  else
    match List.sort_uniq Bool.compare proposals with
    | [] -> state.belief
    | [ b ] -> b
    | _ :: _ -> false (* conflicting proposals: arbitrary bit *)

let protocol ~params ~world ~mode =
  let make_env ~n rng =
    match world with
    | `Hybrid ->
        let fmine = Bafmine.Fmine.create rng in
        { n;
          params;
          elig = Bafmine.Eligibility.hybrid fmine;
          mode;
          pki = None;
          fmine = Some fmine;
          conflicts = Atomic.make 0 }
    | `Real ->
        let pki = Bacrypto.Pki.setup ~n rng in
        { n;
          params;
          elig = Bafmine.Compiler.real_world pki;
          mode;
          pki = Some pki;
          fmine = None;
          conflicts = Atomic.make 0 }
  in
  let init _env ~rng ~n:_ ~me ~input =
    { me; rng; belief = input; sticky = true; out = None; stopped = false }
  in
  let step env state ~round ~inbox =
    let epoch = round / 2 in
    if epoch >= env.params.Params.max_epochs then begin
      (* Output the converged belief.  (The §3.1 text says "the bit last
         ACKed"; in the subsampled protocol most nodes never win an ACK
         ticket, so the belief — which every node updates on ample ACKs —
         is the meaningful generalization.  After a good epoch the two
         coincide for committee members.) *)
      state.out <- Some state.belief;
      state.stopped <- true;
      (state, [])
    end
    else if round mod 2 = 0 then begin
      if epoch > 0 then tally env state ~prev_epoch:(epoch - 1) ~inbox;
      (* One propose mining attempt per epoch: flip a coin, mine for it. *)
      let coin = Bacrypto.Rng.bool state.rng in
      let sends =
        match
          env.elig.Bafmine.Eligibility.mine ~node:state.me
            ~msg:(propose_mining_string ~epoch ~bit:coin)
            ~p:(propose_probability env)
        with
        | Some cred ->
            [ Basim.Engine.multicast (make_propose ~epoch ~bit:coin ~cred) ]
        | None -> []
      in
      (state, sends)
    end
    else begin
      let bit = choose_ack env state ~epoch ~inbox in
      let sends =
        match
          env.elig.Bafmine.Eligibility.mine ~node:state.me
            ~msg:(ack_mining_string env.mode ~epoch ~bit)
            ~p:(ack_probability env)
        with
        | Some cred -> [ Basim.Engine.multicast (make_ack ~epoch ~bit ~cred) ]
        | None -> []
      in
      (state, sends)
    end
  in
  let msg_bits env m =
    let cred_bits =
      match m with
      | Propose { cred; _ } | Ack { cred; _ } ->
          env.elig.Bafmine.Eligibility.credential_bits cred
    in
    48 + cred_bits
  in
  { Basim.Engine.proto_name =
      (match mode with
      | Bit_specific -> "sub-third"
      | Bit_agnostic -> "sub-third-bit-agnostic");
    make_env;
    init;
    step;
    output = (fun s -> s.out);
    halted = (fun s -> s.stopped);
    msg_bits }

let belief s = s.belief
