(** The quadratic honest-majority BA of Appendix C.1 — the protocol of
    Abraham et al. (Financial Crypto 2019, reference [1] of the paper) that
    the flagship subquadratic protocol ({!Sub_hm}) is derived from.

    [n = 2f + 1] nodes; iterations of four synchronous rounds — {b Status},
    {b Propose}, {b Vote}, {b Commit} — plus an any-time {b Terminate}
    rule; a public random leader per iteration (the leader-election
    oracle, which {!Sub_hm} later removes):

    - {b Status}: every node multicasts its highest certificate.
    - {b Propose}: the leader multicasts the bit carrying the highest
      certificate it knows (ties broken by coin; no certificate at all is
      the "iteration-0 certificate").
    - {b Vote}: a node votes for the leader's bit [b] — with the
      proposal attached, so votes are useless without a matching
      proposal — unless it knows a {e strictly} higher certificate for
      [1−b] (an equal-rank opposite certificate does {e not} block the
      vote).
    - {b Commit}: on [f+1] iteration-[r] votes for [b] and {e no}
      iteration-[r] vote for [1−b], multicast a Commit carrying the
      freshly formed certificate.
    - {b Terminate} (any time): on [f+1] Commits for the same [(r, b)],
      multicast [(Terminate, b)] with the Commits attached, output [b]
      and halt; receiving a valid Terminate makes a node re-multicast it,
      output and halt one round later.

    Iteration 1 skips Status and Propose: every node votes its input.

    All messages carry idealized signatures; certificates are
    transferable. Expected-constant iterations: each iteration's leader
    is honest with probability ≥ 1/2, and an honest-leader iteration
    terminates everyone. *)

type vote_cert = Bacrypto.Signature.tag Cert.t

type proposal = {
  p_iter : int;
  p_bit : bool;
  p_cert : vote_cert option;
  p_tag : Bacrypto.Signature.tag;
}

type msg =
  | Status of {
      iter : int;
      bit : bool;
      cert : vote_cert option;
      tag : Bacrypto.Signature.tag;
    }
  | Propose of proposal
  | Vote of {
      iter : int;
      bit : bool;
      proposal : proposal option;  (** [None] only in iteration 1 *)
      tag : Bacrypto.Signature.tag;
    }
  | Commit of {
      iter : int;
      bit : bool;
      cert : vote_cert;
      tag : Bacrypto.Signature.tag;
    }
  | Terminate of {
      iter : int;
      bit : bool;
      commits : (int * Bacrypto.Signature.tag) list;
      tag : Bacrypto.Signature.tag;
    }

val msg_kind : msg -> string
(** Stable kind label for causal tracing: ["status"], ["propose"],
    ["vote"], ["commit"], or ["terminate"]. *)

type env = {
  n : int;
  f : int;                      (** (n−1)/2 *)
  sigs : Bacrypto.Signature.scheme;
  leaders : int array;          (** public random leader per iteration *)
  max_iters : int;
  cert_cache : (vote_cert, unit) Hashtbl.t;
      (** cache of positively verified certificates (sound: verification
          is deterministic; purely a simulation speedup) *)
  proposal_cache : (proposal, unit) Hashtbl.t;
      (** same, for leader proposals *)
  cache_lock : Mutex.t;
      (** guards both caches under the engine's sharded step phase *)
}

type state

val protocol :
  ?max_iters:int -> unit -> (env, state, msg) Basim.Engine.protocol
(** The protocol record. [max_iters] (default 40) caps the execution: a
    node reaching the cap without deciding halts {e without} output,
    surfacing a termination failure to the property checker. *)

type phase =
  | Phase_status of int
  | Phase_propose of int
  | Phase_vote of int
  | Phase_commit of int

val phase_of_round : int -> phase
(** Round-to-phase layout: iteration 1 occupies rounds 0–1 (Vote,
    Commit); iteration [r ≥ 2] occupies the four rounds starting at
    [2 + 4(r−2)]. *)

val leader : env -> iter:int -> int
(** The public random leader of an iteration. *)

val vote_stmt : iter:int -> bit:bool -> string
(** The signed statement of a vote; exposed so adversaries can produce
    corrupt votes and so tests can check certificate validity. *)

val commit_stmt : iter:int -> bit:bool -> string

val propose_stmt : iter:int -> bit:bool -> string

val sign_vote :
  env -> signer:int -> iter:int -> bit:bool -> proposal option -> msg
(** Build a validly signed vote for a corrupt node. *)

val sign_propose :
  env -> signer:int -> iter:int -> bit:bool -> vote_cert option -> msg
(** Build a signed proposal (meaningful when [signer] is the iteration's
    leader). *)

val valid_cert : env -> vote_cert -> bool
(** [f+1] distinct valid vote signatures for the certificate's
    (iteration, bit). *)

val best_certificate : state -> vote_cert option
(** The node's highest-ranked certificate (inspectable for tests). *)
