(** The paper's flagship protocol (Theorem 2, Appendix C.2): synchronous
    BA with {e polylogarithmic multicast complexity}, resilience
    [f < (1/2 − ε)n], and expected constant rounds — assuming only a PKI
    and standard cryptography, against an adaptive adversary that cannot
    perform after-the-fact removal.

    It is the {!Quadratic_hm} protocol of Appendix C.1 transformed by
    {e vote-specific eligibility}:

    - every multicast becomes a {b conditional} multicast: the node mines
      an eligibility ticket for the exact (type, iteration, bit) triple it
      wants to send, with probability [λ/n]
      (Status/Vote/Commit/Terminate) or [1/(2n)] (Propose), and only
      speaks on success, attaching the credential;
    - every [f+1] threshold becomes [λ/2];
    - the leader-election oracle disappears: whoever mines a Propose
      ticket is a proposer (several proposers in an iteration are treated
      like a corrupt proposer — nodes simply don't vote; a fresh
      iteration follows).

    Because eligibility is {e bit-specific}, corrupting a node that just
    voted [b] gives the adversary no advantage toward votes for [1−b]
    (§3.2's key insight), and because votes carry the proposal that
    justified them, corrupt nodes cannot vote without a proposer either.

    Stochastic guarantees reproduced in experiment E7: per-message
    committees concentrate around [λ] (Lemma 11); a unique-honest-
    proposer iteration occurs with probability [> 1/(2e)] per iteration
    (Lemma 12); once [εn/2] honest nodes terminate, everyone terminates
    the next round (Lemma 10). Lemma 15: [O(λ²)] multicasts of
    [O((log κ + log n)·λ)] bits each. *)

type elig_cert = Bafmine.Eligibility.credential Cert.t
(** A certificate: [λ/2] vote credentials from distinct nodes. *)

type proposal = {
  p_iter : int;
  p_bit : bool;
  p_cert : elig_cert option;
  p_node : int;                              (** the proposer *)
  p_cred : Bafmine.Eligibility.credential;   (** its Propose ticket *)
}

type msg =
  | Status of {
      iter : int;
      bit : bool;
      cert : elig_cert option;
      cred : Bafmine.Eligibility.credential;
    }
  | Propose of proposal
  | Vote of {
      iter : int;
      bit : bool;
      proposal : proposal option;  (** [None] only in iteration 1 *)
      cred : Bafmine.Eligibility.credential;
    }
  | Commit of {
      iter : int;
      bit : bool;
      cert : elig_cert;
      cred : Bafmine.Eligibility.credential;
    }
  | Terminate of {
      iter : int;
      bit : bool;
      commits : (int * Bafmine.Eligibility.credential) list;
      cred : Bafmine.Eligibility.credential;
    }

val msg_kind : msg -> string
(** Stable kind label for causal tracing: ["status"], ["propose"],
    ["vote"], ["commit"], or ["terminate"]. *)

type env = {
  n : int;
  params : Params.t;
  elig : Bafmine.Eligibility.t;
  pki : Bacrypto.Pki.t option;  (** [Some] in the real world *)
  fmine : Bafmine.Fmine.t option;
      (** [Some] in the hybrid world — inspectable mining statistics *)
  cert_cache : (elig_cert, unit) Hashtbl.t;
      (** cache of positively verified certificates (sound: verification
          is deterministic and monotone; purely a simulation speedup) *)
  proposal_cache : (proposal, unit) Hashtbl.t;
      (** same, for proposals *)
  cache_lock : Mutex.t;
      (** guards both caches under the engine's sharded step phase *)
}

type state

val protocol :
  params:Params.t ->
  world:[ `Hybrid | `Real ] ->
  (env, state, msg) Basim.Engine.protocol
(** The protocol record. Uses [params.max_epochs] as the iteration cap;
    a node reaching the cap undecided halts without output. *)

val phase_of_round : int -> Quadratic_hm.phase
(** Same round layout as the quadratic protocol. *)

val mining_string : [ `Status | `Propose | `Vote | `Commit ] -> iter:int -> bit:bool -> string
(** The string mined for each conditional multicast (bit-specific). *)

val terminate_mining_string : bit:bool -> string
(** Terminate tickets are per-bit, not per-iteration. *)

val committee_probability : env -> float
(** [λ/n] — Status/Vote/Commit/Terminate difficulty. *)

val propose_probability : env -> float
(** [1/(2n)] — Propose difficulty. *)

val quorum : env -> int
(** [⌈λ/2⌉]. *)

val make_vote :
  iter:int -> bit:bool -> proposal:proposal option ->
  cred:Bafmine.Eligibility.credential -> msg
(** Assemble a vote — used by adversaries for corrupt nodes. *)

val make_propose :
  iter:int -> bit:bool -> cert:elig_cert option -> node:int ->
  cred:Bafmine.Eligibility.credential -> msg

val valid_cert : env -> elig_cert -> bool
(** [λ/2] distinct verifying vote credentials. *)

val best_certificate : state -> elig_cert option
(** Inspectable for tests. [None] for a node that has absorbed nothing —
    including a node still riding the shared crowd listener of
    {!sparse_step}. *)

val sparse_step : unit -> (env, state, msg) Basim.Engine.sparse_step
(** A crowd-sparse round hook for {!Basim.Engine.run}'s [?sparse]
    argument, trace-equivalent to the dense [step] but O(active) per
    round instead of O(n · inbox).

    Every message here is a multicast, so nodes whose inbox equals the
    engine's shared delivery tail have — inductively — identical
    listener halves; the hook keeps ONE shared listener for that crowd,
    absorbs the tail once, and finishes each member's step with its O(1)
    private part (input bit, at most one rng coin, one
    {!Bafmine.Eligibility.t.sample} probe). A member whose inbox ever
    differs (a targeted adversary injection) forks a private listener
    from the round-start snapshot and runs dense steps from then on.

    [sparse_step ()] allocates the crowd state; the returned hook resets
    it whenever the engine starts a round-0, so one hook may serve
    repeated trials. Use with the protocols of {!protocol} only — the
    hook encodes this module's step logic. *)
