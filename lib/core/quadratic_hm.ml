open Bacrypto

type vote_cert = Signature.tag Cert.t

type proposal = {
  p_iter : int;
  p_bit : bool;
  p_cert : vote_cert option;
  p_tag : Signature.tag;
}

type msg =
  | Status of {
      iter : int;
      bit : bool;
      cert : vote_cert option;
      tag : Signature.tag;
    }
  | Propose of proposal
  | Vote of {
      iter : int;
      bit : bool;
      proposal : proposal option;
      tag : Signature.tag;
    }
  | Commit of { iter : int; bit : bool; cert : vote_cert; tag : Signature.tag }
  | Terminate of {
      iter : int;
      bit : bool;
      commits : (int * Signature.tag) list;
      tag : Signature.tag;
    }

let msg_kind = function
  | Status _ -> "status"
  | Propose _ -> "propose"
  | Vote _ -> "vote"
  | Commit _ -> "commit"
  | Terminate _ -> "terminate"

type env = {
  n : int;
  f : int;
  sigs : Signature.scheme;
  leaders : int array;
  max_iters : int;
  cert_cache : (vote_cert, unit) Hashtbl.t;
      (* positive verification results, shared across receivers (sound:
         signature verification is deterministic) *)
  proposal_cache : (proposal, unit) Hashtbl.t;  (* same, for proposals *)
  cache_lock : Mutex.t;
      (* guards both caches when the engine shards the step phase across
         domains; verification runs outside the lock *)
}

module Iset = Set.Make (Int)

type phase =
  | Phase_status of int
  | Phase_propose of int
  | Phase_vote of int
  | Phase_commit of int

let phase_of_round round =
  if round = 0 then Phase_vote 1
  else if round = 1 then Phase_commit 1
  else begin
    let k = round - 2 in
    let iter = 2 + (k / 4) in
    match k mod 4 with
    | 0 -> Phase_status iter
    | 1 -> Phase_propose iter
    | 2 -> Phase_vote iter
    | _ -> Phase_commit iter
  end

let leader env ~iter = env.leaders.(iter mod Array.length env.leaders)

(* Signed statements. *)
let bit_int b = if b then 1 else 0

let status_stmt ~iter ~bit = Printf.sprintf "qhm:Status:%d:%d" iter (bit_int bit)

let propose_stmt ~iter ~bit = Printf.sprintf "qhm:Propose:%d:%d" iter (bit_int bit)

let vote_stmt ~iter ~bit = Printf.sprintf "qhm:Vote:%d:%d" iter (bit_int bit)

let commit_stmt ~iter ~bit = Printf.sprintf "qhm:Commit:%d:%d" iter (bit_int bit)

let terminate_stmt ~iter ~bit =
  Printf.sprintf "qhm:Terminate:%d:%d" iter (bit_int bit)

(* Certificate validity: f+1 distinct valid iteration-r vote signatures.
   Positive results are cached in the env — deterministic and monotone. *)
let valid_cert env (cert : vote_cert) =
  Mutex.protect env.cache_lock (fun () -> Hashtbl.mem env.cert_cache cert)
  ||
  let stmt = vote_stmt ~iter:cert.Cert.iter ~bit:cert.Cert.bit in
  let ok =
    (* one amortized HMAC sweep over the endorsement signatures *)
    Cert.well_formed_batch cert ~quorum:(env.f + 1) ~check_all:(fun entries ->
        Signature.verify_batch env.sigs
          (List.map (fun (node, tag) -> (node, stmt, tag)) entries))
  in
  if ok then
    Mutex.protect env.cache_lock (fun () ->
        Hashtbl.replace env.cert_cache cert ());
  ok

let valid_cert_opt env = function None -> true | Some c -> valid_cert env c

(* A proposal is valid for iteration r iff signed by the iteration-r
   leader and its attached certificate (if any) is a valid certificate for
   the proposed bit, from an earlier iteration. *)
let valid_proposal env ~iter (p : proposal) =
  p.p_iter = iter
  && (Mutex.protect env.cache_lock (fun () -> Hashtbl.mem env.proposal_cache p)
     ||
     let ok =
       Signature.verify env.sigs
         ~signer:(leader env ~iter)
         (propose_stmt ~iter ~bit:p.p_bit)
         p.p_tag
       && valid_cert_opt env p.p_cert
       && (match p.p_cert with
          | None -> true
          | Some c -> c.Cert.bit = p.p_bit && c.Cert.iter < iter)
     in
     if ok then
       Mutex.protect env.cache_lock (fun () ->
           Hashtbl.replace env.proposal_cache p ());
     ok)

(* Vote validity: properly signed by its sender and — from iteration 2 on —
   accompanied by a valid matching leader proposal ("with the leader's
   proposal attached"), which is what stops already-corrupt nodes from
   voting both ways in honest-leader iterations. *)
let valid_vote env ~sender ~iter ~bit ~proposal ~tag =
  Signature.verify env.sigs ~signer:sender (vote_stmt ~iter ~bit) tag
  && (if iter = 1 then true
      else
        match proposal with
        | None -> false
        | Some p -> valid_proposal env ~iter p && p.p_bit = bit)

let valid_commit env ~sender ~iter ~bit ~cert ~tag =
  Signature.verify env.sigs ~signer:sender (commit_stmt ~iter ~bit) tag
  && valid_cert env cert
  && cert.Cert.iter = iter && cert.Cert.bit = bit

let valid_terminate env ~sender ~iter ~bit ~commits ~tag =
  Signature.verify env.sigs ~signer:sender (terminate_stmt ~iter ~bit) tag
  &&
  let stmt = commit_stmt ~iter ~bit in
  let oks =
    Signature.verify_batch env.sigs
      (List.map (fun (node, ctag) -> (node, stmt, ctag)) commits)
  in
  let distinct =
    List.fold_left2
      (fun seen (node, _) ok ->
        if Iset.mem node seen then seen
        else if ok then Iset.add node seen
        else seen)
      Iset.empty commits oks
  in
  Iset.cardinal distinct >= env.f + 1

(* Message constructors (also used by adversaries for corrupt nodes). *)
let sign_status env ~signer ~iter ~bit cert =
  Status { iter; bit; cert; tag = Signature.sign env.sigs ~signer (status_stmt ~iter ~bit) }

let sign_propose env ~signer ~iter ~bit cert =
  Propose
    { p_iter = iter;
      p_bit = bit;
      p_cert = cert;
      p_tag = Signature.sign env.sigs ~signer (propose_stmt ~iter ~bit) }

let sign_vote env ~signer ~iter ~bit proposal =
  Vote { iter; bit; proposal; tag = Signature.sign env.sigs ~signer (vote_stmt ~iter ~bit) }

let sign_commit env ~signer ~iter ~bit cert =
  Commit { iter; bit; cert; tag = Signature.sign env.sigs ~signer (commit_stmt ~iter ~bit) }

let sign_terminate env ~signer ~iter ~bit commits =
  Terminate
    { iter; bit; commits;
      tag = Signature.sign env.sigs ~signer (terminate_stmt ~iter ~bit) }

type state = {
  me : int;
  input : bool;
  rng : Rng.t;
  mutable best0 : vote_cert option;  (* highest certificate for bit 0 *)
  mutable best1 : vote_cert option;  (* highest certificate for bit 1 *)
  votes : (int * bool, (int * Signature.tag) list) Hashtbl.t;
  commits : (int * bool, (int * Signature.tag) list) Hashtbl.t;
  mutable proposals : proposal list;  (* valid proposals, current iter *)
  mutable pending : (int * bool * (int * Signature.tag) list) option;
  mutable voted_iter : int;           (* highest iteration voted in *)
  mutable out : bool option;
  mutable stopped : bool;
}

let best_for state bit = if bit then state.best1 else state.best0

let set_best state bit c = if bit then state.best1 <- c else state.best0 <- c

let absorb_cert state = function
  | None -> ()
  | Some c ->
      if Cert.strictly_higher (Some c) ~than:(best_for state c.Cert.bit) then
        set_best state c.Cert.bit (Some c)

let overall_best state =
  if Cert.strictly_higher state.best1 ~than:state.best0 then state.best1
  else state.best0

let add_endorsement table key entry =
  let existing = Option.value (Hashtbl.find_opt table key) ~default:[] in
  if List.mem_assoc (fst entry) existing then ()
  else Hashtbl.replace table key (entry :: existing)

(* Absorb one inbox message (validation included). *)
let absorb env state ~iter_of_round ~sender msg =
  match msg with
  | Status { iter = _; bit = _; cert; tag = _ } ->
      if valid_cert_opt env cert then absorb_cert state cert
  | Propose p ->
      if valid_proposal env ~iter:iter_of_round p then
        state.proposals <- p :: state.proposals;
      if valid_cert_opt env p.p_cert then absorb_cert state p.p_cert
  | Vote { iter; bit; proposal; tag } ->
      if valid_vote env ~sender ~iter ~bit ~proposal ~tag then begin
        add_endorsement state.votes (iter, bit) (sender, tag);
        (* f+1 matching votes are themselves a certificate; build it once,
           when the quorum is first reached. *)
        let endorsements = Hashtbl.find state.votes (iter, bit) in
        if List.length endorsements = env.f + 1 then
          absorb_cert state (Some (Cert.make ~iter ~bit ~endorsements))
      end
  | Commit { iter; bit; cert; tag } ->
      if valid_commit env ~sender ~iter ~bit ~cert ~tag then begin
        add_endorsement state.commits (iter, bit) (sender, tag);
        absorb_cert state (Some cert);
        let endorsements = Hashtbl.find state.commits (iter, bit) in
        if List.length endorsements >= env.f + 1 && state.pending = None then
          state.pending <- Some (iter, bit, endorsements)
      end
  | Terminate { iter; bit; commits; tag } ->
      if valid_terminate env ~sender ~iter ~bit ~commits ~tag
         && state.pending = None
      then state.pending <- Some (iter, bit, commits)

let protocol ?(max_iters = 40) () =
  let make_env ~n rng =
    if n < 3 || n mod 2 = 0 then
      invalid_arg "Quadratic_hm: n must be odd and at least 3 (n = 2f+1)";
    let f = (n - 1) / 2 in
    (* Public random leader schedule — the leader-election oracle. *)
    let leaders = Array.init (max_iters + 2) (fun _ -> Rng.int rng n) in
    { n;
      f;
      sigs = Signature.setup ~n rng;
      leaders;
      max_iters;
      cert_cache = Hashtbl.create 256;
      proposal_cache = Hashtbl.create 64;
      cache_lock = Mutex.create () }
  in
  let init _env ~rng ~n:_ ~me ~input =
    { me;
      input;
      rng;
      best0 = None;
      best1 = None;
      votes = Hashtbl.create 64;
      commits = Hashtbl.create 64;
      proposals = [];
      pending = None;
      voted_iter = 0;
      out = None;
      stopped = false }
  in
  let step env state ~round ~inbox =
    let phase = phase_of_round round in
    let iter =
      match phase with
      | Phase_status i | Phase_propose i | Phase_vote i | Phase_commit i -> i
    in
    (* New iteration: proposals from earlier iterations are stale. *)
    (match phase with
    | Phase_status _ -> state.proposals <- []
    | Phase_propose _ | Phase_vote _ | Phase_commit _ -> ());
    List.iter (fun (sender, m) -> absorb env state ~iter_of_round:iter ~sender m) inbox;
    match state.pending with
    | Some (t_iter, bit, commits) ->
        (* Terminate rule (any time): relay and halt. *)
        state.out <- Some bit;
        state.stopped <- true;
        (state, [ Basim.Engine.multicast
                    (sign_terminate env ~signer:state.me ~iter:t_iter ~bit commits) ])
    | None ->
        if iter > env.max_iters then begin
          (* Cap reached without a decision: halt without output so the
             property checker records a termination failure. *)
          state.stopped <- true;
          (state, [])
        end
        else begin
          let sends =
            match phase with
            | Phase_status _ ->
                let best = overall_best state in
                let bit =
                  match best with Some c -> c.Cert.bit | None -> state.input
                in
                [ Basim.Engine.multicast
                    (sign_status env ~signer:state.me ~iter ~bit best) ]
            | Phase_propose _ ->
                if leader env ~iter = state.me then begin
                  let r0 = Cert.rank state.best0 and r1 = Cert.rank state.best1 in
                  let bit =
                    if r0 > r1 then false
                    else if r1 > r0 then true
                    else Rng.bool state.rng
                  in
                  [ Basim.Engine.multicast
                      (sign_propose env ~signer:state.me ~iter ~bit
                         (best_for state bit)) ]
                end
                else []
            | Phase_vote _ ->
                if iter = 1 then begin
                  state.voted_iter <- 1;
                  [ Basim.Engine.multicast
                      (sign_vote env ~signer:state.me ~iter ~bit:state.input None) ]
                end
                else begin
                  let bits =
                    List.sort_uniq Bool.compare
                      (List.filter_map
                         (fun p -> if p.p_iter = iter then Some p.p_bit else None)
                         state.proposals)
                  in
                  match bits with
                  | [ b ] ->
                      let p =
                        List.find (fun p -> p.p_iter = iter && p.p_bit = b)
                          state.proposals
                      in
                      (* Vote unless a strictly higher certificate exists
                         for the opposite bit (an equal-rank one does not
                         block the vote). *)
                      if Cert.rank (best_for state (not b)) <= Cert.rank p.p_cert
                      then begin
                        state.voted_iter <- iter;
                        [ Basim.Engine.multicast
                            (sign_vote env ~signer:state.me ~iter ~bit:b (Some p)) ]
                      end
                      else []
                  | [] | _ :: _ :: _ ->
                      (* No proposal, or an equivocating leader: skip. *)
                      []
                end
            | Phase_commit _ ->
                let votes_for b =
                  Option.value (Hashtbl.find_opt state.votes (iter, b)) ~default:[]
                in
                let v0 = votes_for false and v1 = votes_for true in
                let try_commit b vs opposite =
                  if List.length vs >= env.f + 1 && opposite = [] then
                    (* a certificate is exactly f+1 votes; don't ship more *)
                    let vs = List.filteri (fun i _ -> i <= env.f) vs in
                    let cert = Cert.make ~iter ~bit:b ~endorsements:vs in
                    Some
                      (Basim.Engine.multicast
                         (sign_commit env ~signer:state.me ~iter ~bit:b cert))
                  else None
                in
                (match try_commit false v0 v1 with
                | Some send -> [ send ]
                | None -> (
                    match try_commit true v1 v0 with
                    | Some send -> [ send ]
                    | None -> []))
          in
          (state, sends)
        end
  in
  let tag_bits = Signature.tag_bits in
  let cert_bits c = Cert.size_bits c ~endorsement_bits:(fun _ -> tag_bits) in
  let proposal_bits = function
    | None -> 8
    | Some p -> 48 + tag_bits + cert_bits p.p_cert
  in
  let msg_bits _env = function
    | Status { cert; _ } -> 48 + tag_bits + cert_bits cert
    | Propose p -> 48 + tag_bits + cert_bits p.p_cert
    | Vote { proposal; _ } -> 48 + tag_bits + proposal_bits proposal
    | Commit { cert; _ } -> 48 + tag_bits + cert_bits (Some cert)
    | Terminate { commits; _ } ->
        48 + tag_bits + List.length commits * (32 + tag_bits)
  in
  { Basim.Engine.proto_name = "quadratic-hm";
    make_env;
    init;
    step;
    output = (fun s -> s.out);
    halted = (fun s -> s.stopped);
    msg_bits }

let best_certificate state = overall_best state
