open Bacrypto

type env = { n : int; params : Params.t; sigs : Signature.scheme }

type msg =
  | Propose of { epoch : int; bit : bool; tag : Signature.tag }
  | Ack of { epoch : int; bit : bool; tag : Signature.tag }

let msg_kind = function Propose _ -> "propose" | Ack _ -> "ack"

module Iset = Set.Make (Int)

type state = {
  me : int;
  n : int;
  rng : Rng.t;
  mutable belief : bool;       (* b_i *)
  mutable sticky : bool;       (* F: initially 1 (footnote 4) *)
  mutable last_ack : bool option;
  mutable out : bool option;
  mutable stopped : bool;
}

let leader ~n ~epoch = epoch mod n

let propose_stmt ~epoch ~bit =
  Printf.sprintf "warmup:Propose:%d:%d" epoch (if bit then 1 else 0)

let ack_stmt ~epoch ~bit =
  Printf.sprintf "warmup:Ack:%d:%d" epoch (if bit then 1 else 0)

let sign_propose env ~signer ~epoch ~bit =
  Propose
    { epoch; bit; tag = Signature.sign env.sigs ~signer (propose_stmt ~epoch ~bit) }

let sign_ack env ~signer ~epoch ~bit =
  Ack { epoch; bit; tag = Signature.sign env.sigs ~signer (ack_stmt ~epoch ~bit) }

let verify env ~sender = function
  | Propose { epoch; bit; tag } ->
      Signature.verify env.sigs ~signer:sender (propose_stmt ~epoch ~bit) tag
  | Ack { epoch; bit; tag } ->
      Signature.verify env.sigs ~signer:sender (ack_stmt ~epoch ~bit) tag

(* Step 3 of the epoch: tally the previous epoch's ACKs.  "Ample ACKs" =
   2n/3 distinct nodes vouching for the same bit. *)
let tally (env : env) (state : state) ~prev_epoch ~inbox =
  let quorum = (2 * env.n + 2) / 3 in
  let ackers_for target =
    List.fold_left
      (fun acc (sender, m) ->
        match m with
        | Ack { epoch; bit; _ }
          when epoch = prev_epoch && bit = target && verify env ~sender m ->
            Iset.add sender acc
        | Ack _ | Propose _ -> acc)
      Iset.empty inbox
  in
  let ample b = Iset.cardinal (ackers_for b) >= quorum in
  match (ample false, ample true) with
  | true, false ->
      state.belief <- false;
      state.sticky <- true
  | false, true ->
      state.belief <- true;
      state.sticky <- true
  | true, true ->
      (* Only reachable past the resilience bound; adopt an arbitrary bit. *)
      state.sticky <- true
  | false, false -> state.sticky <- false

(* Step 2: pick the bit to ACK in epoch [epoch], given this epoch's valid
   leader proposals. *)
let choose_ack (env : env) (state : state) ~epoch ~inbox =
  let this_leader = leader ~n:env.n ~epoch in
  let proposals =
    List.filter_map
      (fun (sender, m) ->
        match m with
        | Propose { epoch = e; bit; _ }
          when e = epoch && sender = this_leader && verify env ~sender m ->
            Some bit
        | Propose _ | Ack _ -> None)
      inbox
  in
  if state.sticky then state.belief
  else
    match List.sort_uniq Bool.compare proposals with
    | [] -> state.belief
    | [ b ] -> b
    | _ :: _ ->
        (* Equivocating leader: "choose an arbitrary bit". *)
        false

let protocol ~params =
  let make_env ~n rng =
    { n; params; sigs = Signature.setup ~n rng }
  in
  let init _env ~rng ~n ~me ~input =
    { me;
      n;
      rng;
      belief = input;
      sticky = true;
      last_ack = None;
      out = None;
      stopped = false }
  in
  let step env state ~round ~inbox =
    let epoch = round / 2 in
    if epoch >= env.params.Params.max_epochs then begin
      (* Output the bit last ACKed (0 if the node never ACKed). *)
      state.out <- Some (Option.value state.last_ack ~default:false);
      state.stopped <- true;
      (state, [])
    end
    else if round mod 2 = 0 then begin
      (* Tally the previous epoch's ACKs, then the leader proposes. *)
      if epoch > 0 then tally env state ~prev_epoch:(epoch - 1) ~inbox;
      let sends =
        if leader ~n:env.n ~epoch = state.me then
          let coin = Rng.bool state.rng in
          [ Basim.Engine.multicast
              (sign_propose env ~signer:state.me ~epoch ~bit:coin) ]
        else []
      in
      (state, sends)
    end
    else begin
      (* ACK round. *)
      let bit = choose_ack env state ~epoch ~inbox in
      state.last_ack <- Some bit;
      (state, [ Basim.Engine.multicast (sign_ack env ~signer:state.me ~epoch ~bit) ])
    end
  in
  { Basim.Engine.proto_name = "warmup-third";
    make_env;
    init;
    step;
    output = (fun s -> s.out);
    halted = (fun s -> s.stopped);
    msg_bits = (fun _ _ -> 48 + Signature.tag_bits) }

let belief s = s.belief

let sticky s = s.sticky
