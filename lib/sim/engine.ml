type dest = All | Only of int list

type 'msg send = { dst : dest; payload : 'msg }

let multicast payload = { dst = All; payload }

type ('env, 'state, 'msg) protocol = {
  proto_name : string;
  make_env : n:int -> Bacrypto.Rng.t -> 'env;
  init : 'env -> rng:Bacrypto.Rng.t -> n:int -> me:int -> input:bool -> 'state;
  step :
    'env ->
    'state ->
    round:int ->
    inbox:(int * 'msg) list ->
    'state * 'msg send list;
  output : 'state -> bool option;
  halted : 'state -> bool;
  msg_bits : 'env -> 'msg -> int;
}

type ('env, 'msg) view = {
  round : int;
  n : int;
  env : 'env;
  intents : (int * 'msg send list) array;
  inboxes : (int * 'msg) list array;
  tracker : Corruption.tracker;
  adv_rng : Bacrypto.Rng.t;
}

type 'msg action =
  | Corrupt of int
  | Remove of { victim : int; index : int }
  | Inject of { src : int; dst : dest; payload : 'msg }

exception Illegal_action of string

type ('env, 'msg) adversary = {
  adv_name : string;
  model : Corruption.model;
  caps : Capability.decl;
  setup : 'env -> n:int -> budget:int -> rng:Bacrypto.Rng.t -> int list;
  intervene : ('env, 'msg) view -> 'msg action list;
}

let passive ~name ~model =
  { adv_name = name;
    model;
    caps = Capability.none;
    setup = (fun _ ~n:_ ~budget:_ ~rng:_ -> []);
    intervene = (fun _ -> []) }

type result = {
  outputs : bool option array;
  corrupt : bool array;
  corruptions : int;
  rounds_used : int;
  metrics : Metrics.t;
  all_honest_decided : bool;
  halt_rounds : int option array;
}

(* An interned wire: ONE immutable descriptor per send, however many
   nodes observe it. It carries everything accounting, tracing and
   delivery will ever ask — the wire size ([msg_bits] is evaluated once,
   at creation), the recipient count ([w_nrecip], so `List.length
   targets` is not recomputed per trace event), and the delivery cell
   [w_cell]: the [(src, payload)] pair every recipient's inbox list
   points at. A multicast therefore costs one descriptor + one cell +
   one shared cons, and a [k]-target unicast one descriptor + one cell +
   [k] conses — never a fresh pair per observer. The only mutable field
   is the adversary's erasure mark; the refcount of a wire is implicit
   (inbox lists alias [w_cell]; the GC retires the descriptor when the
   last inbox drops it). Under causal recording wires also get a per-run
   id and protocol kind label ([-1]/[""] when the run has no labeler, so
   unlabeled traces stay byte-identical). *)
type 'msg wire = {
  w_src : int;
  w_dst : dest;
  w_payload : 'msg;
  w_bits : int;
  w_nrecip : int;
  w_cell : int * 'msg;
  w_id : int;
  w_kind : string;
  mutable erased : bool;
  honest_origin : bool;
}

(* Growable array of this round's honest wires, reused across rounds
   (OCaml 5.1 has no stdlib Dynarray). Resetting only rewinds [len]; slots
   beyond it keep stale wires alive until overwritten, which is fine — they
   are bounded by the busiest round seen so far. *)
type 'msg wirebuf = { mutable wb_arr : 'msg wire array; mutable wb_len : int }

let wirebuf_push b w =
  let cap = Array.length b.wb_arr in
  if b.wb_len = cap then begin
    let grown = Array.make (if cap = 0 then 16 else 2 * cap) w in
    Array.blit b.wb_arr 0 grown 0 b.wb_len;
    b.wb_arr <- grown
  end;
  Array.unsafe_set b.wb_arr b.wb_len w;
  b.wb_len <- b.wb_len + 1

(* [splice lst d tail] is the first [d] elements of [lst], in order, consed
   onto [tail]. Delivery uses it to graft the multicasts that arrived since
   a node's last unicast onto that node's private inbox prefix. [lst] is
   always long enough by construction. *)
let rec splice lst d tail =
  if d = 0 then tail
  else
    match lst with
    | [] -> assert false
    | x :: rest -> x :: splice rest (d - 1) tail

(* ------------------------------------------------------------------ *)
(* Sparse rounds: a protocol that knows which nodes can possibly act in
   a round (committee sampling, shared-listener crowds) can drive phase
   1 itself through a [sparse_step] hook instead of having the engine
   call [step] on every active node. The engine still owns membership
   of the active set, halt detection, wire buffering, adversary
   refereeing and delivery, so traces/metrics/series stay byte-identical
   whenever the hook emits exactly the sends the dense [step] would. *)

type 'msg round_view = {
  rv_round : int;
  rv_n : int;
  rv_active : int array;
  rv_n_active : int;
  rv_shared_inbox : (int * 'msg) list;
  rv_is_shared : int -> bool;
  rv_inbox : int -> (int * 'msg) list;
  rv_emit : int -> 'msg send list -> unit;
}

type ('env, 'state, 'msg) sparse_step =
  'env -> states:'state array -> 'msg round_view -> unit

(* The compatibility shim: any legacy dense protocol as a sparse step.
   Iterating the active prefix in ascending order and emitting every
   step's sends reproduces the dense phase 1 exactly (the engine's own
   dense path is this same loop, sharded). *)
let sparse_of_step (proto : ('env, 'state, 'msg) protocol) :
    ('env, 'state, 'msg) sparse_step =
 fun env ~states rv ->
  for k = 0 to rv.rv_n_active - 1 do
    let i = rv.rv_active.(k) in
    if not (proto.halted states.(i)) then begin
      let state', sends =
        proto.step env states.(i) ~round:rv.rv_round ~inbox:(rv.rv_inbox i)
      in
      states.(i) <- state';
      rv.rv_emit i sends
    end
  done

let illegal fmt = Format.kasprintf (fun s -> raise (Illegal_action s)) fmt

(* Phase timers: disabled (one ref read per span) unless the caller
   turns the probe registry on. *)
let p_step = Baobs.Probe.register "engine.honest_step"
let p_adversary = Baobs.Probe.register "engine.adversary"
let p_delivery = Baobs.Probe.register "engine.delivery"

(* ------------------------------------------------------------------ *)
(* Intra-trial parallelism: a process-wide pool for sharding the
   honest-step phase of a round across domains. Defaults to 1 (fully
   sequential); resolved from BA_INTRA_JOBS on first use, overridable
   by [set_intra_jobs] (the CLIs' --intra-jobs flag) or per-run via
   [run ~pool]. The pool is created lazily and cached per jobs value;
   replacing the degree shuts the displaced pool down (joining its
   worker domains) instead of leaking sleepers until process exit.
   Shutting down under a concurrent trial is safe: [Pool.shutdown]
   drains outstanding work, and a driver mid-batch on the old pool
   drains its own queue, so its batch still completes — worst case its
   remaining rounds shard sequentially. *)

let intra_lock = Mutex.create ()

let intra_jobs_ref : int option ref = ref None

let intra_pool_ref : Bapar.Pool.t option ref = ref None

let resolve_intra_jobs_locked () =
  match !intra_jobs_ref with
  | Some j -> j
  | None ->
      let j =
        match Sys.getenv_opt "BA_INTRA_JOBS" with
        | None -> 1
        | Some s -> (
            match int_of_string_opt (String.trim s) with
            | Some j when j >= 1 -> j
            | Some _ | None -> 1)
      in
      intra_jobs_ref := Some j;
      j

let intra_jobs () = Mutex.protect intra_lock resolve_intra_jobs_locked

let set_intra_jobs j =
  if j < 1 then invalid_arg "Engine.set_intra_jobs: jobs must be >= 1";
  let displaced =
    Mutex.protect intra_lock (fun () ->
        match !intra_jobs_ref with
        | Some cur when cur = j -> None
        | Some _ | None ->
            intra_jobs_ref := Some j;
            let old = !intra_pool_ref in
            intra_pool_ref := None;
            old)
  in
  (* Join the displaced workers outside the lock: [Pool.shutdown] blocks
     on Domain.join, and workers never take [intra_lock], but a caller
     racing [intra_pool] must not wait behind the join. *)
  match displaced with None -> () | Some p -> Bapar.Pool.shutdown p

let intra_pool () =
  Mutex.protect intra_lock (fun () ->
      let j = resolve_intra_jobs_locked () in
      if j <= 1 then None
      else
        match !intra_pool_ref with
        | Some p -> Some p
        | None ->
            let p = Bapar.Pool.create ~jobs:j in
            intra_pool_ref := Some p;
            Some p)

let current_intra_pool () = intra_pool ()

let run_env ?(tracer = fun (_ : Trace.event) -> ()) ?series ?resource
    ?(on_caps_mismatch = `Refuse) ?labeler ?pool ?sparse ?step_audit proto
    ~adversary ~n ~budget ~inputs ~max_rounds ~seed =
  if Array.length inputs <> n then
    invalid_arg "Engine.run: inputs length must equal n";
  (* Causal recording: with a labeler, every wire gets a fresh per-run id
     (creation order: a round's honest wires in ascending node order,
     then its injections in application order) and a protocol kind
     label, and targeted sends record their recipient lists. Without
     one, the sentinels keep traces byte-identical to the legacy
     format. *)
  let next_msg_id = ref 0 in
  let fresh_id () =
    match labeler with
    | None -> Trace.no_id
    | Some _ ->
        let id = !next_msg_id in
        incr next_msg_id;
        id
  in
  let kind_of_msg m =
    match labeler with None -> Trace.no_kind | Some f -> f m
  in
  let targets_of dst =
    match (labeler, dst) with
    | None, _ | Some _, All -> []
    | Some _, Only targets -> targets
  in
  (* Resource rows bracket whole phases and read only GC counters, so
     they can never perturb the execution or its trace. *)
  let res_begin () =
    match resource with
    | Some r -> Baobs.Resource.round_begin r
    | None -> ()
  in
  let res_end ~round =
    match resource with
    | Some r -> Baobs.Resource.round_end r ~round
    | None -> ()
  in
  res_begin ();
  (* Declaration-vs-model consistency, checked before a single round
     runs: an adversary whose declared capability set exceeds what its
     model grants is refused outright (or warned about, behind the
     flag). *)
  (match Capability.validate adversary.caps ~model:adversary.model ~budget with
  | [] -> ()
  | mismatches -> (
      let msg =
        Printf.sprintf "adversary %s: %s" adversary.adv_name
          (String.concat "; "
             (List.map Capability.mismatch_to_string mismatches))
      in
      match on_caps_mismatch with
      | `Refuse -> raise (Illegal_action msg)
      | `Warn -> Printf.eprintf "warning: %s\n%!" msg));
  let require_cap cap =
    if not (Capability.has adversary.caps cap) then
      illegal "adversary %s did not declare the %s capability"
        adversary.adv_name (Capability.name cap)
  in
  let srec ~round ~node kind by =
    match series with
    | Some s -> Baobs.Series.record ~by s ~round ~node kind
    | None -> ()
  in
  let root = Bacrypto.Rng.create seed in
  let env_rng = Bacrypto.Rng.split_named root "env" in
  let adv_rng = Bacrypto.Rng.split_named root "adversary" in
  let env = proto.make_env ~n env_rng in
  let tracker = Corruption.create ~n ~budget in
  let check_budget_bound () =
    match adversary.caps.Capability.budget_bound with
    | Some bound when Corruption.count tracker > bound ->
        illegal "adversary %s exceeded its declared budget bound %d"
          adversary.adv_name bound
    | Some _ | None -> ()
  in
  (* Setup-time (static) corruptions happen before any node runs. *)
  let initial = adversary.setup env ~n ~budget ~rng:adv_rng in
  if initial <> [] then require_cap Capability.Setup_corruption;
  List.iter
    (fun i ->
      if i < 0 || i >= n then illegal "setup corruption out of range: %d" i;
      if not (Corruption.corrupt_now tracker ~round:(-1) i) then
        illegal "setup corruptions exceed budget";
      check_budget_bound ();
      srec ~round:(-1) ~node:i Baobs.Series.Corruption 1;
      tracer (Trace.Corrupted { round = -1; node = i }))
    initial;
  let states =
    Array.init n (fun me ->
        let rng = Bacrypto.Rng.split_named root (Printf.sprintf "node-%d" me) in
        proto.init env ~rng ~n ~me ~input:inputs.(me))
  in
  res_end ~round:(-1);
  let metrics = Metrics.create ~n in
  (* Struct-of-arrays node bookkeeping: flat parallel arrays instead of
     per-node boxes. [halt_rounds_a] holds the halt round with -1 for
     "never" (the public [int option array] is materialized once, at the
     end); halt/membership/privacy flags are single bytes. *)
  let halt_rounds_a = Array.make n (-1) in
  let new_halt = Bytes.make n '\000' in
  let stepped_b = Bytes.make n '\000' in
  let priv_b = Bytes.make n '\000' in
  let inboxes = Array.make n [] in
  let round = ref 0 in
  let running = ref true in
  (* The active set — so-far-honest, not-yet-halted nodes — as an
     ascending id array (the live prefix [0, n_active)), mirrored by the
     [active_b] membership bytes. Phase 1 iterates (and shards) over
     this prefix, so per-round stepping is O(active), not O(n).
     Removals (a halt in phase 1, a corruption in phase 2) clear the
     byte; the prefix is compacted once at the end of a round that
     dropped someone, keeping it ascending. *)
  let active_b = Bytes.make n '\000' in
  let active_ids = Array.make (max n 1) 0 in
  let n_active = ref 0 in
  for i = 0 to n - 1 do
    if (not (Corruption.is_corrupt tracker i)) && not (proto.halted states.(i))
    then begin
      Bytes.unsafe_set active_b i '\001';
      active_ids.(!n_active) <- i;
      incr n_active
    end
  done;
  let compact_needed = ref false in
  let deactivate i =
    Bytes.unsafe_set active_b i '\000';
    compact_needed := true
  in
  (* Per-round structures, allocated once and reset by rewinding (the
     wire buffer) or by clearing exactly the slots the previous round
     dirtied (intents, the adversary-view pairs, the delivery
     accumulators) — per-round reset work is O(touched), not O(n). *)
  let wires = { wb_arr = [||]; wb_len = 0 } in
  let intents = Array.make n [] in
  let dirty = Array.make (max n 1) 0 in
  let n_dirty = ref 0 in
  let touched = ref (Array.make (max n 1) 0) in
  let n_touched = ref 0 in
  let prev_touched = ref (Array.make (max n 1) 0) in
  let n_prev_touched = ref 0 in
  let prev_shared = ref [] in
  (* Intra-round parallelism: [None] is the sequential engine; [Some p]
     shards phase 1 across [p] in fixed chunks of the active prefix. An
     explicit [~pool] argument wins over the process-wide [intra_pool];
     a pool of size 1 is normalized away so the sequential path stays
     the baseline itself, not a one-chunk simulation of it. A
     [?sparse] hook runs phase 1 itself (sequentially); [pool] then
     only matters to whatever parallelism the hook uses internally. *)
  let pool =
    match pool with
    | Some p -> if Bapar.Pool.size p <= 1 then None else Some p
    | None -> intra_pool ()
  in
  let empty_pairs = Array.init n (fun i -> (i, [])) in
  let view_intents = Array.init n (fun i -> (i, [])) in
  let acc = Array.make n [] in
  let mark = Array.make n (-1) in
  let audit_on = step_audit <> None in
  (* Sends registered by a [?sparse] hook for node [i]. Registering for
     a node outside the active set is refused — the engine's wire pass
     only scans the active prefix, and a silent miss there would be a
     protocol bug; this check is also what the sparse-active qcheck
     invariant leans on. *)
  let emit i sends =
    if i < 0 || i >= n || Bytes.get active_b i <> '\001' then
      invalid_arg "Engine: sparse emit for an inactive node";
    Bytes.unsafe_set stepped_b i '\001';
    intents.(i) <- sends
  in
  while !running && !round < max_rounds do
    let r = !round in
    res_begin ();
    Metrics.note_round metrics r;
    tracer (Trace.Round_started { round = r });
    (* Phase 1: honest nodes compute intents. *)
    let t_step = Baobs.Probe.start () in
    wires.wb_len <- 0;
    (* Clear only the slots last round's senders dirtied. *)
    for k = 0 to !n_dirty - 1 do
      let i = Array.unsafe_get dirty k in
      intents.(i) <- [];
      view_intents.(i) <- Array.unsafe_get empty_pairs i
    done;
    n_dirty := 0;
    let ids = active_ids in
    (match sparse with
    | Some hook ->
        let rv =
          { rv_round = r;
            rv_n = n;
            rv_active = ids;
            rv_n_active = !n_active;
            rv_shared_inbox = !prev_shared;
            rv_is_shared = (fun i -> Bytes.get priv_b i = '\000');
            rv_inbox = (fun i -> inboxes.(i));
            rv_emit = emit }
        in
        hook env ~states rv;
        (* The hook may halt nodes it never individually stepped (a
           shared crowd listener deciding wholesale), so halt detection
           is a scan of the active prefix rather than a per-step check. *)
        for k = 0 to !n_active - 1 do
          let i = Array.unsafe_get ids k in
          if proto.halted states.(i) && halt_rounds_a.(i) < 0 then
            Bytes.unsafe_set new_halt i '\001'
        done
    | None ->
        (* Each node's step writes only its own [states]/[intents]/
           [new_halt]/[stepped_b] slots, so disjoint chunks of the
           active prefix are data-race-free. Corruption and halt status
           of other nodes are only read, and phase 2 (the sole writer of
           [tracker]) has not run yet this round. *)
        let step_range ~lo ~hi =
          for k = lo to hi - 1 do
            let i = Array.unsafe_get ids k in
            if not (proto.halted states.(i)) then begin
              let state', sends =
                proto.step env states.(i) ~round:r ~inbox:inboxes.(i)
              in
              states.(i) <- state';
              intents.(i) <- sends;
              if audit_on then Bytes.unsafe_set stepped_b i '\001';
              if proto.halted state' && halt_rounds_a.(i) < 0 then
                Bytes.unsafe_set new_halt i '\001'
            end
          done
        in
        (match pool with
        | Some p -> Bapar.Pool.shard ~pool:p ~n:!n_active step_range
        | None -> step_range ~lo:0 ~hi:!n_active));
    (* Report which nodes did per-node protocol work this round (full
       steps, sparse emissions, halts), ascending — the observable the
       sparse-active invariant tests assert on. *)
    (match step_audit with
    | None -> ()
    | Some audit ->
        let stepped = ref [] in
        for k = !n_active - 1 downto 0 do
          let i = Array.unsafe_get ids k in
          if
            Bytes.unsafe_get stepped_b i = '\001'
            || Bytes.unsafe_get new_halt i = '\001'
          then stepped := i :: !stepped;
          Bytes.unsafe_set stepped_b i '\000'
        done;
        audit ~round:r !stepped);
    (* Sequential node-ascending post-pass: the only events phase 1 emits
       are Halted, and the sequential engine emits them in ascending node
       order, so replaying them here makes the trace byte-identical for
       every pool size. *)
    for k = 0 to !n_active - 1 do
      let i = Array.unsafe_get ids k in
      if Bytes.unsafe_get new_halt i = '\001' then begin
        Bytes.unsafe_set new_halt i '\000';
        halt_rounds_a.(i) <- r;
        deactivate i;
        tracer
          (Trace.Halted { round = r; node = i; output = proto.output states.(i) })
      end
    done;
    (* Wires are buffered in ascending (node, send) order — the same order
       the old cons-list construction produced — in a second pass over the
       active prefix (which still includes this round's halters; the
       prefix is compacted only at the end of the round), after every step
       has run, so [msg_bits] (evaluated once per wire, here) never
       interleaves with protocol steps. Senders are recorded in [dirty]
       for next round's O(senders) reset, and the adversary-view pairs
       are refreshed in the same pass. *)
    for k = 0 to !n_active - 1 do
      let i = Array.unsafe_get ids k in
      match intents.(i) with
      | [] -> ()
      | sends ->
          dirty.(!n_dirty) <- i;
          incr n_dirty;
          view_intents.(i) <- (i, sends);
          List.iter
            (fun send ->
              let payload = send.payload in
              wirebuf_push wires
                { w_src = i;
                  w_dst = send.dst;
                  w_payload = payload;
                  w_bits = proto.msg_bits env payload;
                  w_nrecip =
                    (match send.dst with
                    | All -> n
                    | Only targets -> List.length targets);
                  w_cell = (i, payload);
                  w_id = fresh_id ();
                  w_kind = kind_of_msg payload;
                  erased = false;
                  honest_origin = true })
            sends
    done;
    Baobs.Probe.stop p_step t_step;
    (* Phase 2: adversary intervention. The view shares the engine's
       arrays instead of deep-copying them every round: adversaries only
       read their view (API discipline, checked by the capability lint),
       and the engine does not touch [view_intents]/[inboxes] again until
       delivery, after [intervene] has returned. *)
    let t_adv = Baobs.Probe.start () in
    let view =
      { round = r;
        n;
        env;
        intents = view_intents;
        inboxes;
        tracker;
        adv_rng }
    in
    let injections = ref [] in
    (* Positions in [wires] of each victim's intents, built lazily on the
       first removal that targets the victim this round, so a burst of
       removals (Eraser at scale) costs O(wires + removals), not
       O(wires × removals). *)
    let victim_slots = lazy (Array.make n None) in
    let victim_positions victim =
      let slots = Lazy.force victim_slots in
      match slots.(victim) with
      | Some positions -> positions
      | None ->
          let count = ref 0 in
          for p = 0 to wires.wb_len - 1 do
            if (Array.unsafe_get wires.wb_arr p).w_src = victim then incr count
          done;
          let positions = Array.make !count 0 in
          let fill = ref 0 in
          for p = 0 to wires.wb_len - 1 do
            if (Array.unsafe_get wires.wb_arr p).w_src = victim then begin
              positions.(!fill) <- p;
              incr fill
            end
          done;
          slots.(victim) <- Some positions;
          positions
    in
    let apply = function
      | Corrupt i ->
          if i < 0 || i >= n then illegal "corrupt out of range: %d" i;
          if not (Corruption.allows_dynamic_corruption adversary.model) then
            illegal "static adversary cannot corrupt mid-execution";
          require_cap Capability.Midround_corruption;
          if not (Corruption.corrupt_now tracker ~round:r i) then
            illegal "corruption budget exhausted";
          if Bytes.get active_b i = '\001' then deactivate i;
          check_budget_bound ();
          srec ~round:r ~node:i Baobs.Series.Corruption 1;
          tracer (Trace.Corrupted { round = r; node = i })
      | Remove { victim; index } ->
          if not (Corruption.allows_removal adversary.model) then
            illegal "after-the-fact removal requires a strongly adaptive adversary";
          require_cap Capability.After_fact_removal;
          if not (Corruption.is_corrupt tracker victim) then
            illegal "cannot remove messages of an honest node (corrupt it first)";
          let positions = victim_positions victim in
          if index < 0 || index >= Array.length positions then
            illegal "no intent %d for node %d in round %d" index victim r;
          let w = wires.wb_arr.(positions.(index)) in
          if w.erased then illegal "intent already erased";
          w.erased <- true;
          Metrics.record_removal metrics;
          srec ~round:r ~node:victim Baobs.Series.Removal 1;
          tracer
            (Trace.Removed
               { round = r;
                 victim;
                 multicast = (w.w_dst = All);
                 recipients = w.w_nrecip;
                 bits = w.w_bits;
                 id = w.w_id;
                 kind = w.w_kind;
                 targets = targets_of w.w_dst })
      | Inject { src; dst; payload } ->
          if src < 0 || src >= n then illegal "inject src out of range: %d" src;
          if not (Corruption.is_corrupt tracker src) then
            illegal "only corrupt nodes can be driven by the adversary";
          require_cap Capability.Injection;
          let bits = proto.msg_bits env payload in
          Metrics.record_injection metrics ~bits;
          srec ~round:r ~node:src Baobs.Series.Injection 1;
          srec ~round:r ~node:src Baobs.Series.Injection_bits bits;
          let id = fresh_id () in
          let kind = kind_of_msg payload in
          let nrecip =
            match dst with All -> n | Only targets -> List.length targets
          in
          tracer
            (Trace.Injected
               { round = r;
                 src;
                 recipients = nrecip;
                 bits = (match labeler with None -> -1 | Some _ -> bits);
                 id;
                 kind;
                 targets = targets_of dst });
          injections :=
            { w_src = src; w_dst = dst; w_payload = payload; w_bits = bits;
              w_nrecip = nrecip; w_cell = (src, payload);
              w_id = id; w_kind = kind; erased = false; honest_origin = false }
            :: !injections
    in
    List.iter apply (adversary.intervene view);
    Baobs.Probe.stop p_adversary t_adv;
    (* Phase 3: account and deliver. Honest sends are counted per
       Definition 7 even when erased: the node was honest when it sent
       the message, so it counts toward honest communication — erasure
       only affects delivery. *)
    let t_deliver = Baobs.Probe.start () in
    (* Accounting order is unchanged: the old all-wires list put injections
       (which contribute nothing here) first and honest wires in
       descending order after them, so walking the buffer backwards visits
       the honest wires exactly as before. *)
    for p = wires.wb_len - 1 downto 0 do
      let w = Array.unsafe_get wires.wb_arr p in
      if w.honest_origin then begin
        let bits = w.w_bits in
        (match w.w_dst with
        | All ->
            Metrics.record_honest_multicast metrics ~bits;
            srec ~round:r ~node:w.w_src Baobs.Series.Multicast 1;
            srec ~round:r ~node:w.w_src Baobs.Series.Multicast_bits bits
        | Only _ ->
            let recipients = w.w_nrecip in
            Metrics.record_honest_unicast metrics ~recipients ~bits;
            srec ~round:r ~node:w.w_src Baobs.Series.Unicast recipients;
            srec ~round:r ~node:w.w_src Baobs.Series.Unicast_bits
              (recipients * bits));
        if not w.erased then
          tracer
            (Trace.Sent
               { round = r;
                 node = w.w_src;
                 multicast = (w.w_dst = All);
                 recipients = w.w_nrecip;
                 bits;
                 id = w.w_id;
                 kind = w.w_kind;
                 targets = targets_of w.w_dst })
      end
    done;
    (* Delivery with structural sharing. Inbox order is [injections in
       application order] then [honest wires in descending order]; we
       build it back-to-front (honest wires ascending, then the reversed
       injection list), consing each multicast's interned [w_cell] ONCE
       onto a single shared tail instead of once per recipient. A node
       that also receives unicasts keeps a private prefix in [acc];
       [mark] remembers how much of the shared list that prefix has
       already absorbed, and [splice] grafts the multicasts that arrived
       in between. Total allocation is O(wires + unicast deliveries),
       not O(n × wires), and the privately-targeted nodes are recorded
       in [touched] so the accumulators (and next round's privacy flags
       for the sparse path) reset in O(touched). *)
    let shared = ref [] and shared_len = ref 0 in
    let tch = !touched in
    let deliver w =
      if not w.erased then
        match w.w_dst with
        | All ->
            shared := w.w_cell :: !shared;
            incr shared_len
        | Only targets ->
            List.iter
              (fun j ->
                if j >= 0 && j < n then begin
                  let m = mark.(j) in
                  let tail =
                    if m < 0 then begin
                      tch.(!n_touched) <- j;
                      incr n_touched;
                      !shared
                    end
                    else splice !shared (!shared_len - m) acc.(j)
                  in
                  acc.(j) <- w.w_cell :: tail;
                  mark.(j) <- !shared_len
                end)
              targets
    in
    for p = 0 to wires.wb_len - 1 do
      deliver (Array.unsafe_get wires.wb_arr p)
    done;
    List.iter deliver !injections;
    for j = 0 to n - 1 do
      inboxes.(j) <-
        (let m = mark.(j) in
         if m < 0 then !shared else splice !shared (!shared_len - m) acc.(j))
    done;
    (* Privacy flags: last round's are cleared, this round's targeted
       nodes are flagged (their inbox diverges from the shared tail) and
       the accumulators reset — all O(touched). The shared tail itself
       is kept for the sparse hook's next-round crowd absorb. *)
    for k = 0 to !n_prev_touched - 1 do
      Bytes.unsafe_set priv_b (Array.unsafe_get !prev_touched k) '\000'
    done;
    for k = 0 to !n_touched - 1 do
      let j = Array.unsafe_get tch k in
      acc.(j) <- [];
      mark.(j) <- -1;
      Bytes.unsafe_set priv_b j '\001'
    done;
    let swap = !prev_touched in
    prev_touched := tch;
    touched := swap;
    n_prev_touched := !n_touched;
    n_touched := 0;
    prev_shared := !shared;
    Baobs.Probe.stop p_delivery t_deliver;
    res_end ~round:r;
    incr round;
    (* Compact the active prefix if this round dropped anyone (halts in
       phase 1, corruptions in phase 2), preserving ascending order. *)
    if !compact_needed then begin
      let w = ref 0 in
      for k = 0 to !n_active - 1 do
        let i = Array.unsafe_get active_ids k in
        if Bytes.unsafe_get active_b i = '\001' then begin
          active_ids.(!w) <- i;
          incr w
        end
      done;
      n_active := !w;
      compact_needed := false
    end;
    if !n_active = 0 then running := false
  done;
  (match series with
  | Some s -> (
      (* The aggregates must be derivable from the series: divergence
         means an accounting bug in this very function. *)
      match Metrics.agrees_with_series metrics s with
      | Ok () -> ()
      | Error msg ->
          failwith ("Engine.run: metric series diverged from aggregates: " ^ msg))
  | None -> ());
  let outputs = Array.map proto.output states in
  let corrupt = Array.init n (Corruption.is_corrupt tracker) in
  let halt_rounds =
    Array.init n (fun i ->
        let hr = halt_rounds_a.(i) in
        if hr < 0 then None else Some hr)
  in
  let all_honest_decided =
    let ok = ref true in
    for i = 0 to n - 1 do
      if not corrupt.(i) then
        if not (proto.halted states.(i)) || outputs.(i) = None then ok := false
    done;
    !ok
  in
  ( env,
    { outputs;
      corrupt;
      corruptions = Corruption.count tracker;
      rounds_used = !round;
      metrics;
      all_honest_decided;
      halt_rounds } )

let run ?tracer ?series ?resource ?on_caps_mismatch ?labeler ?pool ?sparse
    ?step_audit proto ~adversary ~n ~budget ~inputs ~max_rounds ~seed =
  snd
    (run_env ?tracer ?series ?resource ?on_caps_mismatch ?labeler ?pool ?sparse
       ?step_audit proto ~adversary ~n ~budget ~inputs ~max_rounds ~seed)
