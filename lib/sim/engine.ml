type dest = All | Only of int list

type 'msg send = { dst : dest; payload : 'msg }

let multicast payload = { dst = All; payload }

type ('env, 'state, 'msg) protocol = {
  proto_name : string;
  make_env : n:int -> Bacrypto.Rng.t -> 'env;
  init : 'env -> rng:Bacrypto.Rng.t -> n:int -> me:int -> input:bool -> 'state;
  step :
    'env ->
    'state ->
    round:int ->
    inbox:(int * 'msg) list ->
    'state * 'msg send list;
  output : 'state -> bool option;
  halted : 'state -> bool;
  msg_bits : 'env -> 'msg -> int;
}

type ('env, 'msg) view = {
  round : int;
  n : int;
  env : 'env;
  intents : (int * 'msg send list) array;
  inboxes : (int * 'msg) list array;
  tracker : Corruption.tracker;
  adv_rng : Bacrypto.Rng.t;
}

type 'msg action =
  | Corrupt of int
  | Remove of { victim : int; index : int }
  | Inject of { src : int; dst : dest; payload : 'msg }

exception Illegal_action of string

type ('env, 'msg) adversary = {
  adv_name : string;
  model : Corruption.model;
  caps : Capability.decl;
  setup : 'env -> n:int -> budget:int -> rng:Bacrypto.Rng.t -> int list;
  intervene : ('env, 'msg) view -> 'msg action list;
}

let passive ~name ~model =
  { adv_name = name;
    model;
    caps = Capability.none;
    setup = (fun _ ~n:_ ~budget:_ ~rng:_ -> []);
    intervene = (fun _ -> []) }

type result = {
  outputs : bool option array;
  corrupt : bool array;
  corruptions : int;
  rounds_used : int;
  metrics : Metrics.t;
  all_honest_decided : bool;
  halt_rounds : int option array;
}

(* A pending delivery: sender, destination, payload, and whether the
   adversary has erased it. *)
type 'msg wire = {
  w_src : int;
  mutable w_dst : dest;
  w_payload : 'msg;
  mutable erased : bool;
  honest_origin : bool;
}

let illegal fmt = Format.kasprintf (fun s -> raise (Illegal_action s)) fmt

(* Phase timers: disabled (one ref read per span) unless the caller
   turns the probe registry on. *)
let p_step = Baobs.Probe.register "engine.honest_step"
let p_adversary = Baobs.Probe.register "engine.adversary"
let p_delivery = Baobs.Probe.register "engine.delivery"

let run_env ?(tracer = fun (_ : Trace.event) -> ()) ?series
    ?(on_caps_mismatch = `Refuse) proto ~adversary ~n ~budget ~inputs
    ~max_rounds ~seed =
  if Array.length inputs <> n then
    invalid_arg "Engine.run: inputs length must equal n";
  (* Declaration-vs-model consistency, checked before a single round
     runs: an adversary whose declared capability set exceeds what its
     model grants is refused outright (or warned about, behind the
     flag). *)
  (match Capability.validate adversary.caps ~model:adversary.model ~budget with
  | [] -> ()
  | mismatches -> (
      let msg =
        Printf.sprintf "adversary %s: %s" adversary.adv_name
          (String.concat "; "
             (List.map Capability.mismatch_to_string mismatches))
      in
      match on_caps_mismatch with
      | `Refuse -> raise (Illegal_action msg)
      | `Warn -> Printf.eprintf "warning: %s\n%!" msg));
  let require_cap cap =
    if not (Capability.has adversary.caps cap) then
      illegal "adversary %s did not declare the %s capability"
        adversary.adv_name (Capability.name cap)
  in
  let srec ~round ~node kind by =
    match series with
    | Some s -> Baobs.Series.record ~by s ~round ~node kind
    | None -> ()
  in
  let root = Bacrypto.Rng.create seed in
  let env_rng = Bacrypto.Rng.split_named root "env" in
  let adv_rng = Bacrypto.Rng.split_named root "adversary" in
  let env = proto.make_env ~n env_rng in
  let tracker = Corruption.create ~n ~budget in
  let check_budget_bound () =
    match adversary.caps.Capability.budget_bound with
    | Some bound when Corruption.count tracker > bound ->
        illegal "adversary %s exceeded its declared budget bound %d"
          adversary.adv_name bound
    | Some _ | None -> ()
  in
  (* Setup-time (static) corruptions happen before any node runs. *)
  let initial = adversary.setup env ~n ~budget ~rng:adv_rng in
  if initial <> [] then require_cap Capability.Setup_corruption;
  List.iter
    (fun i ->
      if i < 0 || i >= n then illegal "setup corruption out of range: %d" i;
      if not (Corruption.corrupt_now tracker ~round:(-1) i) then
        illegal "setup corruptions exceed budget";
      check_budget_bound ();
      srec ~round:(-1) ~node:i Baobs.Series.Corruption 1;
      tracer (Trace.Corrupted { round = -1; node = i }))
    initial;
  let states =
    Array.init n (fun me ->
        let rng = Bacrypto.Rng.split_named root (Printf.sprintf "node-%d" me) in
        proto.init env ~rng ~n ~me ~input:inputs.(me))
  in
  let metrics = Metrics.create ~n in
  let halt_rounds = Array.make n None in
  let inboxes = Array.make n [] in
  let round = ref 0 in
  let running = ref true in
  let honest_active () =
    (* Is any forever-so-far honest node still running? *)
    let active = ref false in
    for i = 0 to n - 1 do
      if (not (Corruption.is_corrupt tracker i)) && not (proto.halted states.(i))
      then active := true
    done;
    !active
  in
  while !running && !round < max_rounds do
    let r = !round in
    Metrics.note_round metrics r;
    tracer (Trace.Round_started { round = r });
    (* Phase 1: honest nodes compute intents. *)
    let t_step = Baobs.Probe.start () in
    let wires = ref [] in
    let intents = Array.make n [] in
    for i = 0 to n - 1 do
      if (not (Corruption.is_corrupt tracker i)) && not (proto.halted states.(i))
      then begin
        let state', sends = proto.step env states.(i) ~round:r ~inbox:inboxes.(i) in
        states.(i) <- state';
        intents.(i) <- sends;
        if proto.halted state' && halt_rounds.(i) = None then begin
          halt_rounds.(i) <- Some r;
          tracer (Trace.Halted { round = r; node = i; output = proto.output state' })
        end
      end
    done;
    for i = n - 1 downto 0 do
      List.iter
        (fun send ->
          wires :=
            { w_src = i;
              w_dst = send.dst;
              w_payload = send.payload;
              erased = false;
              honest_origin = true }
            :: !wires)
        (List.rev intents.(i))
    done;
    Baobs.Probe.stop p_step t_step;
    (* Phase 2: adversary intervention. *)
    let t_adv = Baobs.Probe.start () in
    let view =
      { round = r;
        n;
        env;
        intents = Array.init n (fun i -> (i, intents.(i)));
        inboxes = Array.copy inboxes;
        tracker;
        adv_rng }
    in
    let injections = ref [] in
    let apply = function
      | Corrupt i ->
          if i < 0 || i >= n then illegal "corrupt out of range: %d" i;
          if not (Corruption.allows_dynamic_corruption adversary.model) then
            illegal "static adversary cannot corrupt mid-execution";
          require_cap Capability.Midround_corruption;
          if not (Corruption.corrupt_now tracker ~round:r i) then
            illegal "corruption budget exhausted";
          check_budget_bound ();
          srec ~round:r ~node:i Baobs.Series.Corruption 1;
          tracer (Trace.Corrupted { round = r; node = i })
      | Remove { victim; index } ->
          if not (Corruption.allows_removal adversary.model) then
            illegal "after-the-fact removal requires a strongly adaptive adversary";
          require_cap Capability.After_fact_removal;
          if not (Corruption.is_corrupt tracker victim) then
            illegal "cannot remove messages of an honest node (corrupt it first)";
          let found = ref false and seen = ref 0 in
          List.iter
            (fun w ->
              if w.w_src = victim && w.honest_origin then begin
                if !seen = index && not !found then begin
                  if w.erased then illegal "intent already erased";
                  w.erased <- true;
                  Metrics.record_removal metrics;
                  srec ~round:r ~node:victim Baobs.Series.Removal 1;
                  tracer
                    (Trace.Removed
                       { round = r;
                         victim;
                         multicast = (w.w_dst = All);
                         recipients =
                           (match w.w_dst with
                           | All -> n
                           | Only targets -> List.length targets);
                         bits = proto.msg_bits env w.w_payload });
                  found := true
                end;
                incr seen
              end)
            !wires;
          if not !found then
            illegal "no intent %d for node %d in round %d" index victim r
      | Inject { src; dst; payload } ->
          if src < 0 || src >= n then illegal "inject src out of range: %d" src;
          if not (Corruption.is_corrupt tracker src) then
            illegal "only corrupt nodes can be driven by the adversary";
          require_cap Capability.Injection;
          let bits = proto.msg_bits env payload in
          Metrics.record_injection metrics ~bits;
          srec ~round:r ~node:src Baobs.Series.Injection 1;
          srec ~round:r ~node:src Baobs.Series.Injection_bits bits;
          tracer
            (Trace.Injected
               { round = r;
                 src;
                 recipients =
                   (match dst with All -> n | Only targets -> List.length targets) });
          injections :=
            { w_src = src; w_dst = dst; w_payload = payload; erased = false;
              honest_origin = false }
            :: !injections
    in
    List.iter apply (adversary.intervene view);
    Baobs.Probe.stop p_adversary t_adv;
    (* Phase 3: account and deliver. Honest sends are counted per
       Definition 7 even when erased: the node was honest when it sent
       the message, so it counts toward honest communication — erasure
       only affects delivery. *)
    let t_deliver = Baobs.Probe.start () in
    let all_wires = List.rev_append !injections (List.rev !wires) in
    List.iter
      (fun w ->
        if w.honest_origin then begin
          let bits = proto.msg_bits env w.w_payload in
          (match w.w_dst with
          | All ->
              Metrics.record_honest_multicast metrics ~bits;
              srec ~round:r ~node:w.w_src Baobs.Series.Multicast 1;
              srec ~round:r ~node:w.w_src Baobs.Series.Multicast_bits bits
          | Only targets ->
              let recipients = List.length targets in
              Metrics.record_honest_unicast metrics ~recipients ~bits;
              srec ~round:r ~node:w.w_src Baobs.Series.Unicast recipients;
              srec ~round:r ~node:w.w_src Baobs.Series.Unicast_bits
                (recipients * bits));
          if not w.erased then
            tracer
              (Trace.Sent
                 { round = r;
                   node = w.w_src;
                   multicast = (w.w_dst = All);
                   recipients =
                     (match w.w_dst with
                     | All -> n
                     | Only targets -> List.length targets);
                   bits })
        end)
      all_wires;
    let next = Array.make n [] in
    List.iter
      (fun w ->
        if not w.erased then
          match w.w_dst with
          | All ->
              for j = 0 to n - 1 do
                next.(j) <- (w.w_src, w.w_payload) :: next.(j)
              done
          | Only targets ->
              List.iter
                (fun j ->
                  if j >= 0 && j < n then
                    next.(j) <- (w.w_src, w.w_payload) :: next.(j))
                targets)
      all_wires;
    for j = 0 to n - 1 do
      inboxes.(j) <- List.rev next.(j)
    done;
    Baobs.Probe.stop p_delivery t_deliver;
    incr round;
    if not (honest_active ()) then running := false
  done;
  (match series with
  | Some s -> (
      (* The aggregates must be derivable from the series: divergence
         means an accounting bug in this very function. *)
      match Metrics.agrees_with_series metrics s with
      | Ok () -> ()
      | Error msg ->
          failwith ("Engine.run: metric series diverged from aggregates: " ^ msg))
  | None -> ());
  let outputs = Array.map proto.output states in
  let corrupt = Array.init n (Corruption.is_corrupt tracker) in
  let all_honest_decided =
    let ok = ref true in
    for i = 0 to n - 1 do
      if not corrupt.(i) then
        if not (proto.halted states.(i)) || outputs.(i) = None then ok := false
    done;
    !ok
  in
  ( env,
    { outputs;
      corrupt;
      corruptions = Corruption.count tracker;
      rounds_used = !round;
      metrics;
      all_honest_decided;
      halt_rounds } )

let run ?tracer ?series ?on_caps_mismatch proto ~adversary ~n ~budget ~inputs
    ~max_rounds ~seed =
  snd
    (run_env ?tracer ?series ?on_caps_mismatch proto ~adversary ~n ~budget
       ~inputs ~max_rounds ~seed)
