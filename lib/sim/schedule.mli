(** First-class, serializable adversary schedules.

    A schedule is an {e oblivious} adversary strategy: a finite,
    per-round list of actions — corrupt a node, remove a wire, inject a
    protocol message, halt — fixed before the execution starts, drawn
    from the same vocabulary the {!Capability} layer declares. Unlike a
    hand-written {!Engine.adversary}, a schedule is plain data: it
    serializes to JSON ([ba-schedule/v1]), round-trips, diffs, and
    minimizes, which is what makes bounded model checking over the
    adversary decision tree ([Bacheck.Explore], [ba_explore]) possible.

    The {!to_adversary} interpreter compiles a schedule into a real
    {!Engine.adversary}, so every explored schedule runs through the
    production engine and is judged by the production property checker —
    there is no separate "model" semantics to drift out of sync.

    {b Skip semantics.} The interpreter is total: actions that would be
    illegal at runtime (corrupting past the budget, removing a wire of a
    node not corrupted this round, injecting from an honest node, or a
    message the {!compiler} cannot realize — e.g. a failed eligibility
    mine) are {e skipped}, not raised. A schedule therefore denotes the
    legal sub-sequence of its actions, and every schedule yields a trace
    that passes [Bacheck.Trace_lint.verify]. Search strategies rely on
    this totality; they additionally prune infeasible actions up front
    so skips stay rare.

    {b Message vocabulary.} Schedules are protocol-agnostic: an
    injection names a message {e kind} (a short protocol-specific tag
    such as ["ack"] or ["result"]) and a bit, and a per-protocol
    {!compiler} turns [(round, src, kind, bit)] into an actual message —
    mining real eligibility credentials, producing real signatures — or
    reports that the message is unrealizable. Compilers for the shipped
    protocols live in [Baattacks.Schedule_targets]. *)

type dst =
  | Everyone  (** multicast ({!Engine.All}) *)
  | Lower_half  (** nodes [0 .. n/2 - 1] — the split-vote targeting idiom *)
  | Upper_half  (** nodes [n/2 .. n - 1] *)
  | Nodes of int list  (** explicit recipient list *)

type action =
  | Corrupt of int  (** corrupt a node mid-round (setup when round = -1) *)
  | Remove of { victim : int; index : int }
      (** erase the [victim]'s [index]-th intent of this round
          (after-the-fact removal; victim must have been corrupted this
          round) *)
  | Inject of { src : int; kind : string; bit : bool; dst : dst }
      (** make corrupt [src] send the protocol message the compiler
          builds for [(kind, bit)] to [dst] *)
  | Halt  (** stop executing the rest of the schedule *)

type t = {
  name : string;
  model : Corruption.model;
  setup : int list;  (** setup-time (static) corruptions, in order *)
  steps : (int * action list) list;
      (** per-round action lists, rounds ascending, actions applied in
          list order *)
}

val schema : string
(** ["ba-schedule/v1"]. *)

val action_count : t -> int
(** Setup corruptions plus mid-round actions. *)

val to_json : t -> Baobs.Json.t

val of_json : Baobs.Json.t -> t
(** Inverse of {!to_json}: [of_json (to_json s) = s] for every [s].
    @raise Baobs.Json.Parse_error on a malformed or foreign document. *)

val pp : Format.formatter -> t -> unit
(** Compact human-readable rendering, one round per [;]-separated
    group. *)

val derived_caps : t -> Capability.decl
(** The minimal {!Capability.decl} covering the schedule's content:
    [Setup_corruption] iff [setup] is non-empty, [Midround_corruption]
    iff any {!Corrupt} step, [After_fact_removal] iff any {!Remove},
    [Injection] iff any {!Inject}. The interpreter declares exactly
    this, so the engine's capability referee sees schedules the same way
    it sees hand-written attacks. *)

val resolve_dst : n:int -> dst -> Engine.dest
(** [Everyone] is {!Engine.All}; the halves are the same recipient
    lists the split-vote attacks use. *)

type ('env, 'msg) compiler = {
  kinds : string list;
      (** the injectable message kinds, in canonical (search) order *)
  compile :
    'env -> round:int -> src:int -> kind:string -> bit:bool -> 'msg option;
      (** realize one injected message, or [None] if unrealizable (failed
          eligibility mine, src outside the relevant committee, unknown
          kind) *)
}

val to_adversary : compiler:('env, 'msg) compiler -> t -> ('env, 'msg) Engine.adversary
(** Compile the schedule into an engine adversary (named
    ["schedule:<name>"]) with the skip semantics described above. The
    returned adversary is reusable: its internal bookkeeping resets on
    [setup], which the engine calls once per run. *)
