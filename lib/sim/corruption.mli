(** Adversary corruption models.

    The paper's central modeling distinction (Section 1) is between three
    strengths of adversary:

    - {b Static}: the corrupt set is fixed before the execution starts.
    - {b Adaptive} (the paper's default): the adversary may observe the
      messages honest nodes are about to send in a round and corrupt nodes
      mid-round; a newly corrupted node can be made to send {e additional}
      messages in the same round, but messages it already multicast
      {e cannot be retracted} ("no after-the-fact removal").
    - {b Strongly adaptive}: in addition, the adversary can erase
      ("after-the-fact remove") messages that a node sent in the round in
      which it was corrupted. Theorem 1 shows this power forces Ω(f²)
      communication. *)

type model =
  | Static
      (** Corruptions only before the execution begins. *)
  | Adaptive
      (** Mid-round corruption; cannot retract already-sent messages. *)
  | Strongly_adaptive
      (** Mid-round corruption with after-the-fact message removal. *)

val to_string : model -> string

val of_string : string -> model option
(** Inverse of {!to_string} on its stable tags ([static], [adaptive],
    [strongly-adaptive]); [None] on anything else. Used by the
    serializable adversary-schedule codec ({!Schedule}). *)

val allows_removal : model -> bool
(** Only [Strongly_adaptive] may erase already-sent messages. *)

val allows_dynamic_corruption : model -> bool
(** [Static] may corrupt only at setup; the others at any round. *)

type tracker
(** Bookkeeping of who is corrupt, since when, and budget left. *)

val create : n:int -> budget:int -> tracker

val budget : tracker -> int
(** Total corruption budget [f]. *)

val budget_left : tracker -> int

val is_corrupt : tracker -> int -> bool

val corrupt_round : tracker -> int -> int option
(** Round in which a node was corrupted ([Some (-1)] for setup-time),
    [None] if honest. *)

val corrupt_now : tracker -> round:int -> int -> bool
(** [corrupt_now t ~round i] marks [i] corrupt at [round] ([-1] denotes
    setup time). Returns [false] (and does nothing) if the budget is
    exhausted; idempotent on already-corrupt nodes (returns [true] without
    consuming budget). *)

val corrupt_list : tracker -> int list
(** All currently corrupt nodes, ascending. *)

val count : tracker -> int
(** Number of corrupt nodes. *)
