type dst = Everyone | Lower_half | Upper_half | Nodes of int list

type action =
  | Corrupt of int
  | Remove of { victim : int; index : int }
  | Inject of { src : int; kind : string; bit : bool; dst : dst }
  | Halt

type t = {
  name : string;
  model : Corruption.model;
  setup : int list;
  steps : (int * action list) list;
}

let schema = "ba-schedule/v1"

let action_count t =
  List.length t.setup
  + List.fold_left (fun acc (_, acts) -> acc + List.length acts) 0 t.steps

(* {2 JSON codec} *)

let parse_error fmt =
  Format.kasprintf (fun s -> raise (Baobs.Json.Parse_error s)) fmt

let dst_to_json = function
  | Everyone -> Baobs.Json.String "everyone"
  | Lower_half -> Baobs.Json.String "lower-half"
  | Upper_half -> Baobs.Json.String "upper-half"
  | Nodes l -> Baobs.Json.List (List.map (fun i -> Baobs.Json.Int i) l)

let dst_of_json = function
  | Baobs.Json.String "everyone" -> Everyone
  | Baobs.Json.String "lower-half" -> Lower_half
  | Baobs.Json.String "upper-half" -> Upper_half
  | Baobs.Json.String s -> parse_error "schedule: unknown dst %S" s
  | Baobs.Json.List l -> Nodes (List.map Baobs.Json.as_int l)
  | Baobs.Json.Null | Baobs.Json.Bool _ | Baobs.Json.Int _
  | Baobs.Json.Float _ | Baobs.Json.Obj _ ->
      parse_error "schedule: dst must be a tag string or a node list"

let action_to_json = function
  | Corrupt i ->
      Baobs.Json.Obj
        [ ("op", Baobs.Json.String "corrupt"); ("node", Baobs.Json.Int i) ]
  | Remove { victim; index } ->
      Baobs.Json.Obj
        [ ("op", Baobs.Json.String "remove");
          ("victim", Baobs.Json.Int victim);
          ("index", Baobs.Json.Int index) ]
  | Inject { src; kind; bit; dst } ->
      Baobs.Json.Obj
        [ ("op", Baobs.Json.String "inject");
          ("src", Baobs.Json.Int src);
          ("kind", Baobs.Json.String kind);
          ("bit", Baobs.Json.Bool bit);
          ("dst", dst_to_json dst) ]
  | Halt -> Baobs.Json.Obj [ ("op", Baobs.Json.String "halt") ]

let action_of_json j =
  match Baobs.Json.as_string (Baobs.Json.member_exn "op" j) with
  | "corrupt" -> Corrupt (Baobs.Json.as_int (Baobs.Json.member_exn "node" j))
  | "remove" ->
      Remove
        { victim = Baobs.Json.as_int (Baobs.Json.member_exn "victim" j);
          index = Baobs.Json.as_int (Baobs.Json.member_exn "index" j) }
  | "inject" ->
      Inject
        { src = Baobs.Json.as_int (Baobs.Json.member_exn "src" j);
          kind = Baobs.Json.as_string (Baobs.Json.member_exn "kind" j);
          bit = Baobs.Json.as_bool (Baobs.Json.member_exn "bit" j);
          dst = dst_of_json (Baobs.Json.member_exn "dst" j) }
  | "halt" -> Halt
  | op -> parse_error "schedule: unknown op %S" op

let to_json t =
  Baobs.Json.Obj
    [ ("schema", Baobs.Json.String schema);
      ("name", Baobs.Json.String t.name);
      ("model", Baobs.Json.String (Corruption.to_string t.model));
      ("setup", Baobs.Json.List (List.map (fun i -> Baobs.Json.Int i) t.setup));
      ( "rounds",
        Baobs.Json.List
          (List.map
             (fun (round, acts) ->
               Baobs.Json.Obj
                 [ ("round", Baobs.Json.Int round);
                   ("actions", Baobs.Json.List (List.map action_to_json acts)) ])
             t.steps) ) ]

let of_json j =
  let s = Baobs.Json.as_string (Baobs.Json.member_exn "schema" j) in
  if s <> schema then parse_error "schedule: schema %S, want %S" s schema;
  let model_tag = Baobs.Json.as_string (Baobs.Json.member_exn "model" j) in
  let model =
    match Corruption.of_string model_tag with
    | Some m -> m
    | None -> parse_error "schedule: unknown model %S" model_tag
  in
  { name = Baobs.Json.as_string (Baobs.Json.member_exn "name" j);
    model;
    setup =
      List.map Baobs.Json.as_int
        (Baobs.Json.as_list (Baobs.Json.member_exn "setup" j));
    steps =
      List.map
        (fun rj ->
          ( Baobs.Json.as_int (Baobs.Json.member_exn "round" rj),
            List.map action_of_json
              (Baobs.Json.as_list (Baobs.Json.member_exn "actions" rj)) ))
        (Baobs.Json.as_list (Baobs.Json.member_exn "rounds" j)) }

(* {2 Rendering} *)

let pp_dst fmt = function
  | Everyone -> Format.pp_print_string fmt "all"
  | Lower_half -> Format.pp_print_string fmt "lo"
  | Upper_half -> Format.pp_print_string fmt "hi"
  | Nodes l ->
      Format.fprintf fmt "{%s}"
        (String.concat "," (List.map string_of_int l))

let pp_action fmt = function
  | Corrupt i -> Format.fprintf fmt "corrupt %d" i
  | Remove { victim; index } -> Format.fprintf fmt "remove %d#%d" victim index
  | Inject { src; kind; bit; dst } ->
      Format.fprintf fmt "inject %d:%s/%d->%a" src kind
        (if bit then 1 else 0)
        pp_dst dst
  | Halt -> Format.pp_print_string fmt "halt"

let pp fmt t =
  Format.fprintf fmt "%s [%s]" t.name (Corruption.to_string t.model);
  if t.setup <> [] then
    Format.fprintf fmt " setup={%s}"
      (String.concat "," (List.map string_of_int t.setup));
  List.iter
    (fun (round, acts) ->
      Format.fprintf fmt " | r%d:" round;
      List.iteri
        (fun i a ->
          if i > 0 then Format.pp_print_string fmt ";";
          Format.fprintf fmt " %a" pp_action a)
        acts)
    t.steps

(* {2 Derived capabilities} *)

let derived_caps t =
  let acts = List.concat_map snd t.steps in
  let has p = List.exists p acts in
  let caps = [] in
  let caps =
    if has (function Inject _ -> true | Corrupt _ | Remove _ | Halt -> false)
    then Capability.Injection :: caps
    else caps
  in
  let caps =
    if has (function Remove _ -> true | Corrupt _ | Inject _ | Halt -> false)
    then Capability.After_fact_removal :: caps
    else caps
  in
  let caps =
    if has (function Corrupt _ -> true | Remove _ | Inject _ | Halt -> false)
    then Capability.Midround_corruption :: caps
    else caps
  in
  let caps =
    if t.setup <> [] then Capability.Setup_corruption :: caps else caps
  in
  { Capability.caps; budget_bound = None }

(* {2 Interpreter} *)

let resolve_dst ~n = function
  | Everyone -> Engine.All
  | Lower_half -> Engine.Only (List.init (n / 2) (fun i -> i))
  | Upper_half -> Engine.Only (List.init (n - (n / 2)) (fun i -> (n / 2) + i))
  | Nodes l -> Engine.Only l

type ('env, 'msg) compiler = {
  kinds : string list;
  compile :
    'env -> round:int -> src:int -> kind:string -> bit:bool -> 'msg option;
}

let to_adversary ~compiler t =
  (* Local bookkeeping mirroring what the engine will accept: the engine
     applies the action list only after [intervene] returns, so the
     interpreter cannot consult [view.tracker] for corruptions performed
     earlier in the same list — it tracks them itself. *)
  let corrupted : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let remaining = ref 0 in
  let stopped = ref false in
  { Engine.adv_name = "schedule:" ^ t.name;
    model = t.model;
    caps = derived_caps t;
    setup =
      (fun _ ~n ~budget ~rng:_ ->
        Hashtbl.reset corrupted;
        stopped := false;
        remaining := budget;
        let picked = ref [] in
        List.iter
          (fun i ->
            if
              i >= 0 && i < n
              && (not (Hashtbl.mem corrupted i))
              && !remaining > 0
            then begin
              Hashtbl.replace corrupted i (-1);
              decr remaining;
              picked := i :: !picked
            end)
          t.setup;
        List.rev !picked);
    intervene =
      (fun view ->
        if !stopped then []
        else
          match List.assoc_opt view.Engine.round t.steps with
          | None -> []
          | Some acts ->
              let r = view.Engine.round in
              let n = view.Engine.n in
              let removed : (int * int, unit) Hashtbl.t = Hashtbl.create 4 in
              let out = ref [] in
              List.iter
                (fun a ->
                  if not !stopped then
                    match a with
                    | Corrupt i ->
                        if
                          i >= 0 && i < n
                          && (not (Hashtbl.mem corrupted i))
                          && !remaining > 0
                          && Corruption.allows_dynamic_corruption t.model
                        then begin
                          Hashtbl.replace corrupted i r;
                          decr remaining;
                          out := Engine.Corrupt i :: !out
                        end
                    | Remove { victim; index } ->
                        (* Legal only against a victim corrupted in this
                           round (the Theorem-1 discipline Trace_lint
                           enforces), targeting one of its surviving
                           this-round intents. *)
                        let same_round_victim =
                          victim >= 0 && victim < n
                          &&
                          match Hashtbl.find_opt corrupted victim with
                          | Some cr -> cr = r
                          | None -> false
                        in
                        let intent_count =
                          if same_round_victim then
                            List.length (snd view.Engine.intents.(victim))
                          else 0
                        in
                        if
                          Corruption.allows_removal t.model
                          && same_round_victim && index >= 0
                          && index < intent_count
                          && not (Hashtbl.mem removed (victim, index))
                        then begin
                          Hashtbl.replace removed (victim, index) ();
                          out := Engine.Remove { victim; index } :: !out
                        end
                    | Inject { src; kind; bit; dst } ->
                        if src >= 0 && src < n && Hashtbl.mem corrupted src
                        then (
                          match
                            compiler.compile view.Engine.env ~round:r ~src
                              ~kind ~bit
                          with
                          | Some payload ->
                              out :=
                                Engine.Inject
                                  { src; dst = resolve_dst ~n dst; payload }
                                :: !out
                          | None -> ())
                    | Halt -> stopped := true)
                acts;
              List.rev !out) }
