type model = Static | Adaptive | Strongly_adaptive

let to_string = function
  | Static -> "static"
  | Adaptive -> "adaptive"
  | Strongly_adaptive -> "strongly-adaptive"

let of_string = function
  | "static" -> Some Static
  | "adaptive" -> Some Adaptive
  | "strongly-adaptive" -> Some Strongly_adaptive
  | _ -> None

let allows_removal = function
  | Strongly_adaptive -> true
  | Static | Adaptive -> false

let allows_dynamic_corruption = function
  | Static -> false
  | Adaptive | Strongly_adaptive -> true

type tracker = {
  total_budget : int;
  when_corrupted : int option array; (* None = honest *)
  mutable used : int;
}

let create ~n ~budget =
  if budget < 0 || budget > n then invalid_arg "Corruption.create: bad budget";
  { total_budget = budget; when_corrupted = Array.make n None; used = 0 }

let budget t = t.total_budget

let budget_left t = t.total_budget - t.used

let is_corrupt t i = t.when_corrupted.(i) <> None

let corrupt_round t i = t.when_corrupted.(i)

let corrupt_now t ~round i =
  match t.when_corrupted.(i) with
  | Some _ -> true
  | None ->
      if t.used >= t.total_budget then false
      else begin
        t.when_corrupted.(i) <- Some round;
        t.used <- t.used + 1;
        true
      end

let corrupt_list t =
  let acc = ref [] in
  for i = Array.length t.when_corrupted - 1 downto 0 do
    if t.when_corrupted.(i) <> None then acc := i :: !acc
  done;
  !acc

let count t = t.used
