type model = Static | Adaptive | Strongly_adaptive

let to_string = function
  | Static -> "static"
  | Adaptive -> "adaptive"
  | Strongly_adaptive -> "strongly-adaptive"

let of_string = function
  | "static" -> Some Static
  | "adaptive" -> Some Adaptive
  | "strongly-adaptive" -> Some Strongly_adaptive
  | _ -> None

let allows_removal = function
  | Strongly_adaptive -> true
  | Static | Adaptive -> false

let allows_dynamic_corruption = function
  | Static -> false
  | Adaptive | Strongly_adaptive -> true

(* Struct-of-arrays: one flat int array instead of n boxed [int option]
   cells. [honest_sentinel] marks honest nodes; any value >= -1 is the
   corruption round (-1 = setup time), so [corrupt_round] can still
   present the option interface without the per-node allocation. *)
let honest_sentinel = min_int

type tracker = {
  total_budget : int;
  when_corrupted : int array; (* [honest_sentinel] = honest *)
  mutable used : int;
}

let create ~n ~budget =
  if budget < 0 || budget > n then invalid_arg "Corruption.create: bad budget";
  { total_budget = budget;
    when_corrupted = Array.make n honest_sentinel;
    used = 0 }

let budget t = t.total_budget

let budget_left t = t.total_budget - t.used

let is_corrupt t i = t.when_corrupted.(i) <> honest_sentinel

let corrupt_round t i =
  let r = t.when_corrupted.(i) in
  if r = honest_sentinel then None else Some r

let corrupt_now t ~round i =
  if round < -1 then invalid_arg "Corruption.corrupt_now: round < -1";
  if t.when_corrupted.(i) <> honest_sentinel then true
  else if t.used >= t.total_budget then false
  else begin
    t.when_corrupted.(i) <- round;
    t.used <- t.used + 1;
    true
  end

let corrupt_list t =
  let acc = ref [] in
  for i = Array.length t.when_corrupted - 1 downto 0 do
    if t.when_corrupted.(i) <> honest_sentinel then acc := i :: !acc
  done;
  !acc

let count t = t.used
