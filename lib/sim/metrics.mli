(** Communication metrics for one protocol execution.

    Two notions from Appendix A.1:

    - {b multicast complexity} (Definition 7): total number of bits
      multicast by {e honest} nodes — the figure of merit for the paper's
      upper bound (Theorem 2);
    - {b classical communication complexity} (Definition 6): total
      pairwise messages; for a multicast of [b] bits to [n] nodes this is
      [n·b] bits.

    We additionally track message {e counts} (multicasts and pairwise),
    adversarial removals (after-the-fact erasures), and corrupt
    injections, which the experiments report alongside bits. *)

type t

val create : n:int -> t

val record_honest_multicast : t -> bits:int -> unit
(** One honest multicast of [bits] bits. *)

val record_honest_unicast : t -> recipients:int -> bits:int -> unit
(** One honest targeted send to [recipients] nodes (pairwise-channel
    protocols only; not counted as a multicast). *)

val record_removal : t -> unit
(** The adversary erased an honest send after the fact. *)

val record_injection : t -> bits:int -> unit
(** A corrupt node sent a message. *)

val note_round : t -> int -> unit
(** Record that round [r] executed (keeps the max). *)

val honest_multicasts : t -> int
(** Number of honest multicasts. *)

val honest_multicast_bits : t -> int
(** Multicast complexity in bits (Definition 7). *)

val honest_unicasts : t -> int
(** Number of honest pairwise messages (targeted sends × recipients). *)

val classical_messages : t -> int
(** Honest pairwise message count: multicasts × n + unicasts. *)

val classical_bits : t -> int
(** Honest pairwise bits: each multicast charged n× its size. *)

val removals : t -> int

val injections : t -> int

val rounds : t -> int
(** Highest executed round + 1. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> Baobs.Json.t

val agrees_with_series : t -> Baobs.Series.t -> (unit, string) result
(** Check that every aggregate equals the corresponding
    {!Baobs.Series} total — the series must be from the same run. The
    engine asserts this at the end of every run that records a series. *)
