(** Static adversary-capability declarations.

    The paper's separations hinge on {e exact} adversary-capability
    boundaries: after-the-fact removal is legal only for the strongly
    adaptive adversary (Theorem 1), and the Ω(f²)-vs-polylog gap
    dissolves if an attack silently uses power its model does not grant.
    Every {!Engine.adversary} therefore carries a {!decl} stating, up
    front, which powers its [intervene]/[setup] functions may exercise.
    {!validate} checks a declaration against a {!Corruption.model}
    before a single round runs, and the engine additionally referees
    every action against the declaration at runtime — an adversary can
    do strictly less than it declared, never more. *)

type t =
  | Setup_corruption
      (** Corrupts nodes before the execution starts (legal under every
          model — a static corruption is within all three). *)
  | Midround_corruption
      (** Corrupts nodes mid-execution; requires
          {!Corruption.allows_dynamic_corruption}. *)
  | After_fact_removal
      (** Erases already-sent intents of freshly corrupted nodes;
          requires {!Corruption.allows_removal}. *)
  | Injection
      (** Makes corrupt nodes send adversary-chosen messages. *)

val all : t list
(** Every capability, in declaration order. *)

val name : t -> string
(** Stable kebab-case tag: [setup-corruption], [midround-corruption],
    [after-fact-removal], [injection]. *)

val of_name : string -> t option

type decl = {
  caps : t list;  (** powers the adversary may exercise *)
  budget_bound : int option;
      (** self-imposed cap on total corruptions; [None] means "up to the
          granted budget [f]". The engine refuses corruptions beyond
          [min f bound]. *)
}

val has : decl -> t -> bool

val none : decl
(** The passive declaration: no capabilities, budget bound 0. *)

val unrestricted : decl
(** Everything, unbounded — for harness-internal adversaries whose
    power set is decided elsewhere (e.g. model-parametric fuzzers). *)

type mismatch =
  | Removal_not_allowed of Corruption.model
      (** [After_fact_removal] declared under a model without removal. *)
  | Midround_not_allowed of Corruption.model
      (** [Midround_corruption] declared under [Static]. *)
  | Bound_exceeds_budget of { bound : int; budget : int }
      (** The declared budget bound exceeds the granted budget [f]. *)

val validate : decl -> model:Corruption.model -> budget:int -> mismatch list
(** All declaration-vs-model mismatches, using
    {!Corruption.allows_removal} and
    {!Corruption.allows_dynamic_corruption}; [[]] means the declaration
    is consistent with the model. *)

val mismatch_to_string : mismatch -> string

val pp_mismatch : Format.formatter -> mismatch -> unit

val decl_to_string : decl -> string
(** E.g. ["{midround-corruption, after-fact-removal; bound=f}"]. *)
