type t = {
  n : int;
  mutable multicasts : int;
  mutable multicast_bits : int;
  mutable unicasts : int;
  mutable unicast_bits : int;
  mutable removals : int;
  mutable injections : int;
  mutable injection_bits : int;
  mutable max_round : int;
}

let create ~n =
  { n;
    multicasts = 0;
    multicast_bits = 0;
    unicasts = 0;
    unicast_bits = 0;
    removals = 0;
    injections = 0;
    injection_bits = 0;
    max_round = -1 }

let record_honest_multicast t ~bits =
  t.multicasts <- t.multicasts + 1;
  t.multicast_bits <- t.multicast_bits + bits

let record_honest_unicast t ~recipients ~bits =
  t.unicasts <- t.unicasts + recipients;
  t.unicast_bits <- t.unicast_bits + (recipients * bits)

let record_removal t = t.removals <- t.removals + 1

let record_injection t ~bits =
  t.injections <- t.injections + 1;
  t.injection_bits <- t.injection_bits + bits

let note_round t r = if r > t.max_round then t.max_round <- r

let honest_multicasts t = t.multicasts

let honest_multicast_bits t = t.multicast_bits

let honest_unicasts t = t.unicasts

let classical_messages t = (t.multicasts * t.n) + t.unicasts

let classical_bits t = (t.multicast_bits * t.n) + t.unicast_bits

let removals t = t.removals

let injections t = t.injections

let rounds t = t.max_round + 1

let pp fmt t =
  Format.fprintf fmt
    "rounds=%d multicasts=%d (%d bits) unicasts=%d removals=%d injections=%d"
    (rounds t) t.multicasts t.multicast_bits t.unicasts t.removals t.injections

let to_json t =
  let open Baobs.Json in
  Obj
    [ ("n", Int t.n);
      ("rounds", Int (rounds t));
      ("multicasts", Int t.multicasts);
      ("multicast_bits", Int t.multicast_bits);
      ("unicasts", Int t.unicasts);
      ("unicast_bits", Int t.unicast_bits);
      ("removals", Int t.removals);
      ("injections", Int t.injections);
      ("injection_bits", Int t.injection_bits);
      ("classical_messages", Int (classical_messages t));
      ("classical_bits", Int (classical_bits t)) ]

let agrees_with_series t series =
  let open Baobs.Series in
  let checks =
    [ ("multicasts", t.multicasts, total series Multicast);
      ("multicast_bits", t.multicast_bits, total series Multicast_bits);
      ("unicasts", t.unicasts, total series Unicast);
      ("unicast_bits", t.unicast_bits, total series Unicast_bits);
      ("removals", t.removals, total series Removal);
      ("injections", t.injections, total series Injection);
      ("injection_bits", t.injection_bits, total series Injection_bits) ]
  in
  match List.find_opt (fun (_, a, b) -> a <> b) checks with
  | None -> Ok ()
  | Some (name, a, b) ->
      Error (Printf.sprintf "%s: metrics=%d series=%d" name a b)
