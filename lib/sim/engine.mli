(** Synchronous round-based execution engine — a direct implementation of
    the protocol-execution model of the paper's Appendix A.1.

    One execution runs [n] Interactive-Turing-Machine-style nodes in
    lockstep rounds over a synchronous network (Δ = 1: anything an honest
    node sends in round [r] is delivered to every honest recipient at the
    beginning of round [r+1]). Channels are authenticated: the engine
    stamps the true sender on every delivery, so corrupt nodes cannot
    spoof honest identities — but they {e can} equivocate by targeting
    different messages at different recipient sets.

    Each round:

    + every so-far-honest, not-yet-halted node computes its {b intents}
      (the sends it wants to perform) from its state and inbox;
    + the {b adversary intervenes}: it observes all intents and may
      (subject to its {!Corruption.model} and budget) corrupt nodes,
      erase intents (strongly-adaptive only, and only intents of nodes
      corrupt by the end of the intervention — "after-the-fact removal"),
      and inject messages from corrupt nodes;
    + surviving sends are delivered at the start of the next round.

    A node corrupted in round [r] keeps its round-[r] intents on the wire
    (unless the adversary is strongly adaptive and erases them), stops
    executing the honest protocol from round [r+1] on, and is henceforth
    driven entirely by adversary injections — exactly the
    "cannot retract, but can send additional messages" rule of the paper.

    Protocols and adversaries are plain records of functions, polymorphic
    in the protocol's environment ([_ env]), per-node state, and message
    type, so one engine runs every protocol in the repository. *)

type dest =
  | All                (** multicast to everyone (including the sender) *)
  | Only of int list   (** targeted send (pairwise-channel protocols and
                           corrupt equivocation) *)

type 'msg send = { dst : dest; payload : 'msg }

val multicast : 'msg -> 'msg send
(** [multicast m] is [{ dst = All; payload = m }]. *)

(** A protocol, as run by honest nodes. *)
type ('env, 'state, 'msg) protocol = {
  proto_name : string;
  make_env : n:int -> Bacrypto.Rng.t -> 'env;
      (** Trusted setup (PKI, CRSs, public coins). Runs once per
          execution, before the adversary acts. *)
  init : 'env -> rng:Bacrypto.Rng.t -> n:int -> me:int -> input:bool -> 'state;
      (** Per-node initialization with the node's input bit. *)
  step :
    'env ->
    'state ->
    round:int ->
    inbox:(int * 'msg) list ->
    'state * 'msg send list;
      (** One synchronous round: consume the inbox (pairs of authenticated
          sender and message), update state, emit sends. *)
  output : 'state -> bool option;
      (** The node's decision, if any. *)
  halted : 'state -> bool;
      (** [true] once the node has terminated (no further [step] calls). *)
  msg_bits : 'env -> 'msg -> int;
      (** Wire size of a message, for the metrics. Must be pure: the
          engine evaluates it once per wire (at creation) and caches the
          result for accounting, removal traces, and delivery. *)
}

(** What the adversary is shown when it intervenes in a round.

    Both arrays are {e shared} with the engine for the duration of the
    [intervene] call rather than deep-copied per round: adversaries must
    treat the view as read-only (enforced by review discipline and the
    capability lint, as with inbox access below). *)
type ('env, 'msg) view = {
  round : int;
  n : int;
  env : 'env;
  intents : (int * 'msg send list) array;
      (** This round's honest sends, by node, before delivery. *)
  inboxes : (int * 'msg) list array;
      (** What was delivered to each node at the start of this round. The
          adversary may read only corrupt nodes' inboxes plus the public
          content of honest multicasts — enforced by review discipline in
          the attack implementations (everything here was multicast, so in
          the multicast model the adversary sees it all anyway). *)
  tracker : Corruption.tracker;
  adv_rng : Bacrypto.Rng.t;
}

type 'msg action =
  | Corrupt of int
      (** Corrupt a node now. Illegal for [Static] after setup; consumes
          budget. *)
  | Remove of { victim : int; index : int }
      (** Erase intent [index] of node [victim] ("after-the-fact
          removal"). Legal only for [Strongly_adaptive] adversaries and
          only if [victim] is corrupt at the time this action is
          processed (so [Corrupt v; Remove …] in one intervention works). *)
  | Inject of { src : int; dst : dest; payload : 'msg }
      (** Make corrupt node [src] send a message (possibly targeted —
          equivocation). Legal only if [src] is corrupt. *)

exception Illegal_action of string
(** Raised when an adversary attempts something its model forbids: the
    engine is the referee of the corruption model. *)

type ('env, 'msg) adversary = {
  adv_name : string;
  model : Corruption.model;
  caps : Capability.decl;
      (** Declared capability set. Checked against [model] before the
          first round (see [on_caps_mismatch] on {!run}); every runtime
          action additionally requires its capability to be declared, so
          an adversary can exercise strictly less power than declared —
          never more. *)
  setup : 'env -> n:int -> budget:int -> rng:Bacrypto.Rng.t -> int list;
      (** Pre-execution (static) corruptions; the only corruption chance
          for a [Static] adversary. Requires
          {!Capability.Setup_corruption} when non-empty. *)
  intervene : ('env, 'msg) view -> 'msg action list;
      (** Mid-round intervention; actions are applied in order. *)
}

val passive : name:string -> model:Corruption.model -> ('env, 'msg) adversary
(** An adversary that corrupts no one and does nothing. *)

type result = {
  outputs : bool option array;
  corrupt : bool array;
  corruptions : int;            (** number of corrupted nodes *)
  rounds_used : int;
  metrics : Metrics.t;
  all_honest_decided : bool;    (** every forever-honest node halted with
                                    an output within [max_rounds] *)
  halt_rounds : int option array;
      (** per node, the round in which it halted — the Lemma-10
          terminate-cascade experiment measures the spread of these *)
}

val set_intra_jobs : int -> unit
(** Set the process-wide intra-trial parallelism degree — how many
    domains {!run} shards each round's honest-step phase across. [1]
    (the default) is the fully sequential engine. The backing pool is
    created lazily on the next run; replacing the degree shuts the
    displaced pool down (joining its worker domains) so repeated
    reconfiguration cannot leak sleeping domains. The shutdown is safe
    under a concurrent trial: {!Bapar.Pool.shutdown} drains outstanding
    work and a mid-batch driver drains its own queue, so in-flight
    rounds complete (worst case sequentially on the driver). This is
    the programmatic form of the CLIs' [--intra-jobs] flag; the initial
    value is read from the [BA_INTRA_JOBS] environment variable
    (invalid or unset → 1).
    @raise Invalid_argument if the argument is [< 1]. *)

val intra_jobs : unit -> int
(** The current process-wide intra-trial parallelism degree. *)

val current_intra_pool : unit -> Bapar.Pool.t option
(** The process-wide pool {!run} would shard onto right now, creating it
    lazily if the configured degree is [> 1]; [None] when the degree is
    [1]. Exposed for pool-lifecycle tests and diagnostics — treat it as
    read-only. *)

(** {2 Sparse rounds}

    A protocol that can bound which nodes act in a round — committee
    sampling, shared-listener crowds — may drive phase 1 itself through
    a {!sparse_step} hook ({!run}'s [?sparse]) instead of having the
    engine call [step] on all active nodes. The engine retains
    everything else: it owns the active set, detects halts by scanning
    it (so a hook may halt nodes wholesale, e.g. a crowd deciding),
    buffers wires from the registered sends in ascending node order,
    referees the adversary, and delivers. A hook that registers exactly
    the sends the dense [step] would produce therefore yields
    byte-identical traces, metrics, series and outputs — asserted
    differentially in test/test_sparse.ml and by the CI [scale] job's
    dense-vs-sparse [cmp]. {!sparse_of_step} is the compatibility shim:
    it runs any legacy dense protocol under the hook interface,
    trivially correctly. *)

type 'msg round_view = {
  rv_round : int;
  rv_n : int;
  rv_active : int array;
      (** Ascending ids of so-far-honest, not-yet-halted nodes; read
          only the prefix [\[0, rv_n_active)]. Shared with the engine —
          do not mutate. *)
  rv_n_active : int;
  rv_shared_inbox : (int * 'msg) list;
      (** The inbox every node {e without} private deliveries received
          this round (injections in application order, then honest
          wires in descending node order) — physically the engine's
          shared multicast tail. *)
  rv_is_shared : int -> bool;
      (** [true] iff the node's inbox this round {e is}
          [rv_shared_inbox] (no targeted deliveries reached it). *)
  rv_inbox : int -> (int * 'msg) list;
      (** The node's full inbox (equals [rv_shared_inbox] when
          [rv_is_shared]). *)
  rv_emit : int -> 'msg send list -> unit;
      (** Register a node's sends for this round (callable in any
          order, last write wins; an empty list records that the node
          did per-node work without sending — the step-audit
          observable). @raise Invalid_argument for a node outside the
          active set. *)
}

type ('env, 'state, 'msg) sparse_step =
  'env -> states:'state array -> 'msg round_view -> unit
(** One sparse phase 1: absorb [rv_shared_inbox] once for the crowd
    and per-node inboxes for divergent nodes, mutate [states] in place,
    and [rv_emit] every send the dense protocol would have produced.
    Runs sequentially (the engine does not shard it). *)

val sparse_of_step :
  ('env, 'state, 'msg) protocol -> ('env, 'state, 'msg) sparse_step
(** The compatibility shim: step every active node through
    [proto.step], exactly as the engine's dense phase 1 does. Useful as
    a reference implementation and for differential tests. *)

val run :
  ?tracer:(Trace.event -> unit) ->
  ?series:Baobs.Series.t ->
  ?resource:Baobs.Resource.t ->
  ?on_caps_mismatch:[ `Refuse | `Warn ] ->
  ?labeler:('msg -> string) ->
  ?pool:Bapar.Pool.t ->
  ?sparse:('env, 'state, 'msg) sparse_step ->
  ?step_audit:(round:int -> int list -> unit) ->
  ('env, 'state, 'msg) protocol ->
  adversary:('env, 'msg) adversary ->
  n:int ->
  budget:int ->
  inputs:bool array ->
  max_rounds:int ->
  seed:int64 ->
  result
(** Execute one run. Deterministic in [seed]. [tracer] receives one
    {!Trace.event} per send/corruption/removal/injection/halt. [series],
    when given, is filled with per-round × per-node counters recorded at
    the same accounting points as {!Metrics} (and checked against the
    aggregates at the end of the run). The engine's three phases are
    additionally timed under the [engine.*] {!Baobs.Probe}s when the
    probe registry is enabled.

    {b Intra-trial parallelism.} [pool] (default: the process-wide pool
    configured by {!set_intra_jobs} / [BA_INTRA_JOBS]) shards phase 1 —
    the honest-step computations of a round — across the pool's domains
    in fixed contiguous node-index chunks ({!Bapar.Pool.shard}). The
    execution is {e observably identical} to the sequential engine for
    every pool size: per-node RNG streams are split off the root by node
    name at init (never shared across nodes), each step writes only its
    own node's slots, wire buffering / adversary intervention / delivery
    stay sequential, and halts detected by parallel chunks are replayed
    by a sequential node-ascending post-pass — so traces, metrics,
    series, and outputs are byte-identical, not merely equivalent. A
    pool of size 1 (or [None] after normalization) {e is} the
    sequential engine, not a one-chunk simulation of it.

    The contract assumes what every protocol in the repository
    satisfies: [step] does not mutate state shared across nodes except
    through the crypto/mining layers, which serialize internally (memo
    caches, [Fmine] counters) with results independent of arrival
    order. A hypothetical adversary that injects a message referencing
    a (node, mining-string) pair honest nodes first mine {e in the
    delivery round itself} would make even the sequential semantics
    verifier-order-dependent; that is outside the contract (all in-tree
    adversaries mine only in sequential phase 2 and reference only
    earlier-round mines).

    [resource], when given (and {!Baobs.Resource.enabled}), receives
    one GC/memory row per round — allocated words, promotions,
    collection counts, heap size — with setup (env, static corruptions,
    node init) recorded as round [-1], matching the trace convention.
    Sampling only reads GC counters, so enabling it cannot perturb the
    execution: the trace is byte-identical with recording on or off.

    {b Causal recording.} [labeler], when given, switches the trace into
    causal-recording mode: every wire (honest send, injection) is
    assigned a stable per-run message id in creation order, labeled with
    [labeler payload], and targeted sends record their explicit recipient
    list — filling the [id]/[kind]/[targets] fields of
    {!Trace.Sent}/[Removed]/[Injected] that {!Baobs_report.Causal} needs
    for exact happens-before reconstruction. Without a labeler those
    fields hold the {!Trace.no_id}/{!Trace.no_kind}/[[]] sentinels and
    are omitted from the JSON codec, so the emitted trace is
    byte-identical to the legacy format: causal recording off has zero
    observable effect. The labeler must be pure (evaluated once per
    wire).

    {b Sparse rounds.} [sparse], when given, replaces the engine's dense
    phase 1 with the hook (see {!sparse_step}); [pool] then does not
    shard phase 1 (the hook runs sequentially). [step_audit], when
    given, is called once per round with the ascending list of active
    nodes that did per-node protocol work that round — every stepped
    node on the dense path; emitters, halters and individually-stepped
    divergent nodes under a sparse hook. Auditing allocates one list
    per round but touches no protocol-visible state, so traces are
    unchanged by it.

    [on_caps_mismatch] (default [`Refuse]) governs what happens when the
    adversary's declared {!Capability.decl} is inconsistent with its
    model ({!Capability.validate}): [`Refuse] raises {!Illegal_action}
    before any round runs, [`Warn] prints the mismatches to stderr and
    proceeds (runtime refereeing still applies).
    @raise Invalid_argument if [Array.length inputs <> n].
    @raise Illegal_action if the adversary violates its model or exceeds
    its declared capabilities. *)

val run_env :
  ?tracer:(Trace.event -> unit) ->
  ?series:Baobs.Series.t ->
  ?resource:Baobs.Resource.t ->
  ?on_caps_mismatch:[ `Refuse | `Warn ] ->
  ?labeler:('msg -> string) ->
  ?pool:Bapar.Pool.t ->
  ?sparse:('env, 'state, 'msg) sparse_step ->
  ?step_audit:(round:int -> int list -> unit) ->
  ('env, 'state, 'msg) protocol ->
  adversary:('env, 'msg) adversary ->
  n:int ->
  budget:int ->
  inputs:bool array ->
  max_rounds:int ->
  seed:int64 ->
  'env * result
(** Like {!run} but also returns the protocol environment, so experiments
    can inspect shared state after the fact (e.g. [Fmine] mining
    statistics for the committee-concentration experiment E7). *)
