type t =
  | Setup_corruption
  | Midround_corruption
  | After_fact_removal
  | Injection

let all = [ Setup_corruption; Midround_corruption; After_fact_removal; Injection ]

let name = function
  | Setup_corruption -> "setup-corruption"
  | Midround_corruption -> "midround-corruption"
  | After_fact_removal -> "after-fact-removal"
  | Injection -> "injection"

let of_name s = List.find_opt (fun c -> name c = s) all

type decl = { caps : t list; budget_bound : int option }

let has decl cap = List.mem cap decl.caps

let none = { caps = []; budget_bound = Some 0 }

let unrestricted = { caps = all; budget_bound = None }

type mismatch =
  | Removal_not_allowed of Corruption.model
  | Midround_not_allowed of Corruption.model
  | Bound_exceeds_budget of { bound : int; budget : int }

let validate decl ~model ~budget =
  let mismatches = ref [] in
  let add m = mismatches := m :: !mismatches in
  if has decl After_fact_removal && not (Corruption.allows_removal model) then
    add (Removal_not_allowed model);
  if
    has decl Midround_corruption
    && not (Corruption.allows_dynamic_corruption model)
  then add (Midround_not_allowed model);
  (match decl.budget_bound with
  | Some bound when bound > budget -> add (Bound_exceeds_budget { bound; budget })
  | Some _ | None -> ());
  List.rev !mismatches

let mismatch_to_string = function
  | Removal_not_allowed model ->
      Printf.sprintf
        "declares after-fact-removal but the %s model forbids removal"
        (Corruption.to_string model)
  | Midround_not_allowed model ->
      Printf.sprintf
        "declares midround-corruption but the %s model corrupts only at setup"
        (Corruption.to_string model)
  | Bound_exceeds_budget { bound; budget } ->
      Printf.sprintf "declared budget bound %d exceeds the granted budget %d"
        bound budget

let pp_mismatch fmt m = Format.pp_print_string fmt (mismatch_to_string m)

let decl_to_string decl =
  Printf.sprintf "{%s; bound=%s}"
    (String.concat ", " (List.map name decl.caps))
    (match decl.budget_bound with
    | None -> "f"
    | Some b -> string_of_int b)
