(** Structured execution traces.

    The engine can emit one {!event} per noteworthy occurrence — sends,
    corruptions, after-the-fact removals, injections, halts — to an
    observer callback. Observers on offer: a {!collector} that gathers
    everything (tests, the CLI's [--trace] mode), a bounded {!ring} that
    keeps only the latest events, and a streaming {!jsonl_tracer} that
    writes one JSON object per event with optional kind/round filters.
    Rendering is message-agnostic so one tracer serves every protocol. *)

type event =
  | Round_started of { round : int }
  | Sent of
      { round : int; node : int; multicast : bool; recipients : int; bits : int }
      (** an honest send survived to delivery ([recipients] = n for a
          multicast) *)
  | Corrupted of { round : int; node : int }
      (** [round = -1] for setup-time (static) corruption *)
  | Removed of
      { round : int;
        victim : int;
        multicast : bool;
        recipients : int;
        bits : int }
      (** an after-the-fact removal of one of [victim]'s sends; carries
          the erased send's shape so traces reconstruct the Definition-7
          accounting (erased honest sends still count) *)
  | Injected of { round : int; src : int; recipients : int }
      (** the adversary made corrupt [src] send a message *)
  | Halted of { round : int; node : int; output : bool option }

val pp_event : Format.formatter -> event -> unit

val round_of : event -> int

val kind_of : event -> string
(** Stable tag used as the ["event"] field of {!to_json}: one of
    [round_started], [sent], [corrupted], [removed], [injected],
    [halted]. *)

val to_json : event -> Baobs.Json.t

val of_json : Baobs.Json.t -> event
(** Inverse of {!to_json} — the contract {!Bacheck.Trace_lint}'s file
    mode relies on: [of_json (to_json e) = e] for every event, so a
    [--trace-jsonl] file re-parses into the exact trace that was
    recorded.
    @raise Baobs.Json.Parse_error on missing fields, wrong field types,
    or an unknown ["event"] tag. *)

type collector

val collector : unit -> collector

val observe : collector -> event -> unit
(** The callback to hand to {!Engine.run} via [?tracer]. *)

val events : collector -> event list
(** All observed events, in order (memoized; O(1) after the first call
    until the next {!observe}). *)

val count : collector -> (event -> bool) -> int
(** Streaming count — never materializes the event list. *)

val length : collector -> int
(** Total events observed. *)

type ring
(** Bounded collector: keeps the last [capacity] events, dropping the
    oldest — constant memory on arbitrarily long runs. *)

val ring : capacity:int -> ring

val observe_ring : ring -> event -> unit

val ring_events : ring -> event list
(** Retained events, oldest first. *)

val ring_dropped : ring -> int

val jsonl_tracer :
  ?kinds:string list ->
  ?min_round:int ->
  ?max_round:int ->
  Baobs.Jsonl.t ->
  event ->
  unit
(** Streaming tracer: each event passing the filters is written to the
    sink as one JSON line. [kinds] filters on {!kind_of} tags. *)

val render : ?max_rounds:int -> collector -> string
(** Human-readable, per-round digest of the trace (rounds beyond
    [max_rounds] are summarized). *)
