(** Structured execution traces.

    The engine can emit one {!event} per noteworthy occurrence — sends,
    corruptions, after-the-fact removals, injections, halts — to an
    observer callback. Observers on offer: a {!collector} that gathers
    everything (tests, the CLI's [--trace] mode), a bounded {!ring} that
    keeps only the latest events, and a streaming {!jsonl_tracer} that
    writes one JSON object per event with optional kind/round filters.
    Rendering is message-agnostic so one tracer serves every protocol.

    {b Causal recording.} The message-bearing events ([Sent], [Removed],
    [Injected]) carry three extra fields filled only when the engine runs
    with a kind labeler ({!Engine.run}'s [?labeler]): a stable per-run
    message [id] (creation order, shared between a wire's [Sent]-or-
    [Removed] record), a protocol-supplied [kind] label, and the explicit
    [targets] list of a non-multicast send. Without a labeler they hold
    the sentinels [id = -1], [kind = ""], [targets = \[\]] and are
    {e omitted} from the JSON, so unlabeled traces serialize
    byte-identically to the legacy format. *)

type event =
  | Round_started of { round : int }
  | Sent of
      { round : int;
        node : int;
        multicast : bool;
        recipients : int;
        bits : int;
        id : int;        (** per-run wire id; [-1] without causal recording *)
        kind : string;   (** protocol kind label; [""] without recording *)
        targets : int list
            (** recipient ids of a targeted send; [[]] for multicasts and
                without recording *) }
      (** an honest send survived to delivery ([recipients] = n for a
          multicast) *)
  | Corrupted of { round : int; node : int }
      (** [round = -1] for setup-time (static) corruption *)
  | Removed of
      { round : int;
        victim : int;
        multicast : bool;
        recipients : int;
        bits : int;
        id : int;
        kind : string;
        targets : int list }
      (** an after-the-fact removal of one of [victim]'s sends; carries
          the erased send's shape so traces reconstruct the Definition-7
          accounting (erased honest sends still count). The [id] is the
          erased wire's — a removed wire emits {e no} [Sent] event, so
          ids partition into delivered and severed. *)
  | Injected of
      { round : int;
        src : int;
        recipients : int;
        bits : int;  (** wire size; [-1] without causal recording *)
        id : int;
        kind : string;
        targets : int list }
      (** the adversary made corrupt [src] send a message *)
  | Halted of { round : int; node : int; output : bool option }

val no_id : int
(** The [-1] sentinel of an unlabeled event's [id]. *)

val no_kind : string
(** The [""] sentinel of an unlabeled event's [kind]. *)

val pp_event : Format.formatter -> event -> unit

val round_of : event -> int

val kind_of : event -> string
(** Stable tag used as the ["event"] field of {!to_json}: one of
    [round_started], [sent], [corrupted], [removed], [injected],
    [halted]. *)

val message_id : event -> int option
(** The wire id of a message-bearing event ([Sent]/[Removed]/[Injected]);
    [None] for the others. May be [Some no_id] on unlabeled traces. *)

val message_kind : event -> string option
(** The kind label of a message-bearing event; [None] for the others. *)

val to_json : event -> Baobs.Json.t
(** Causal fields ([id]/[kind]/[targets], and [Injected]'s [bits]) are
    emitted only when they differ from the unlabeled sentinels, so
    unlabeled traces keep the legacy wire format byte for byte. *)

val of_json : Baobs.Json.t -> event
(** Inverse of {!to_json} — the contract {!Bacheck.Trace_lint}'s file
    mode relies on: [of_json (to_json e) = e] for every event, so a
    [--trace-jsonl] file re-parses into the exact trace that was
    recorded. Legacy traces lacking the causal fields parse with the
    sentinel defaults ([id = -1], [kind = ""], [targets = []]).
    @raise Baobs.Json.Parse_error on missing fields, wrong field types,
    or an unknown ["event"] tag. *)

type collector

val collector : unit -> collector

val observe : collector -> event -> unit
(** The callback to hand to {!Engine.run} via [?tracer]. *)

val events : collector -> event list
(** All observed events, in order (memoized; O(1) after the first call
    until the next {!observe}). *)

val count : collector -> (event -> bool) -> int
(** Streaming count — never materializes the event list. *)

val length : collector -> int
(** Total events observed. *)

type ring
(** Bounded collector: keeps the last [capacity] events, dropping the
    oldest — constant memory on arbitrarily long runs. *)

val ring : capacity:int -> ring

val observe_ring : ring -> event -> unit

val ring_events : ring -> event list
(** Retained events, oldest first. *)

val ring_dropped : ring -> int

val jsonl_tracer :
  ?kinds:string list ->
  ?min_round:int ->
  ?max_round:int ->
  Baobs.Jsonl.t ->
  event ->
  unit
(** Streaming tracer: each event passing the filters is written to the
    sink as one JSON line. [kinds] filters on {!kind_of} tags. *)

val render : ?max_rounds:int -> collector -> string
(** Human-readable, per-round digest of the trace (rounds beyond
    [max_rounds] are summarized; kind labels are shown when present). *)
