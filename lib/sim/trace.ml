type event =
  | Round_started of { round : int }
  | Sent of
      { round : int;
        node : int;
        multicast : bool;
        recipients : int;
        bits : int;
        id : int;
        kind : string;
        targets : int list }
  | Corrupted of { round : int; node : int }
  | Removed of
      { round : int;
        victim : int;
        multicast : bool;
        recipients : int;
        bits : int;
        id : int;
        kind : string;
        targets : int list }
  | Injected of
      { round : int;
        src : int;
        recipients : int;
        bits : int;
        id : int;
        kind : string;
        targets : int list }
  | Halted of { round : int; node : int; output : bool option }

let no_id = -1

let no_kind = ""

let pp_kind fmt kind =
  if kind <> no_kind then Format.fprintf fmt " [%s]" kind

let pp_event fmt = function
  | Round_started { round } -> Format.fprintf fmt "-- round %d --" round
  | Sent { node; multicast; recipients; bits; kind; _ } ->
      if multicast then
        Format.fprintf fmt "node %d multicasts%a (%d bits)" node pp_kind kind
          bits
      else
        Format.fprintf fmt "node %d sends%a to %d nodes (%d bits)" node pp_kind
          kind recipients bits
  | Corrupted { round; node } ->
      if round < 0 then Format.fprintf fmt "node %d corrupted at setup" node
      else Format.fprintf fmt "node %d corrupted" node
  | Removed { victim; multicast; recipients; bits; kind; _ } ->
      Format.fprintf fmt
        "a %s%a of node %d to %d nodes (%d bits) erased after the fact"
        (if multicast then "multicast" else "message")
        pp_kind kind victim recipients bits
  | Injected { src; recipients; kind; _ } ->
      Format.fprintf fmt "adversary sends%a as node %d to %d nodes" pp_kind
        kind src recipients
  | Halted { node; output; _ } ->
      Format.fprintf fmt "node %d halts with output %s" node
        (match output with
        | Some true -> "1"
        | Some false -> "0"
        | None -> "none")

let round_of = function
  | Round_started { round }
  | Sent { round; _ }
  | Corrupted { round; _ }
  | Removed { round; _ }
  | Injected { round; _ }
  | Halted { round; _ } ->
      round

let kind_of = function
  | Round_started _ -> "round_started"
  | Sent _ -> "sent"
  | Corrupted _ -> "corrupted"
  | Removed _ -> "removed"
  | Injected _ -> "injected"
  | Halted _ -> "halted"

let message_id = function
  | Sent { id; _ } | Removed { id; _ } | Injected { id; _ } -> Some id
  | Round_started _ | Corrupted _ | Halted _ -> None

let message_kind = function
  | Sent { kind; _ } | Removed { kind; _ } | Injected { kind; _ } -> Some kind
  | Round_started _ | Corrupted _ | Halted _ -> None

(* Causal fields are appended only when present, so a run without causal
   recording serializes byte-identically to the legacy (pre-causal)
   format — the contract CI pins with cmp. *)
let causal_fields ~id ~kind ~targets =
  let open Baobs.Json in
  (if id = no_id then [] else [ ("id", Int id) ])
  @ (if kind = no_kind then [] else [ ("kind", String kind) ])
  @
  match targets with
  | [] -> []
  | ts -> [ ("targets", List (List.map (fun t -> Int t) ts)) ]

let to_json event =
  let open Baobs.Json in
  let tagged fields = Obj (("event", String (kind_of event)) :: fields) in
  match event with
  | Round_started { round } -> tagged [ ("round", Int round) ]
  | Sent { round; node; multicast; recipients; bits; id; kind; targets } ->
      tagged
        ([ ("round", Int round);
           ("node", Int node);
           ("multicast", Bool multicast);
           ("recipients", Int recipients);
           ("bits", Int bits) ]
        @ causal_fields ~id ~kind ~targets)
  | Corrupted { round; node } ->
      tagged [ ("round", Int round); ("node", Int node) ]
  | Removed { round; victim; multicast; recipients; bits; id; kind; targets }
    ->
      tagged
        ([ ("round", Int round);
           ("victim", Int victim);
           ("multicast", Bool multicast);
           ("recipients", Int recipients);
           ("bits", Int bits) ]
        @ causal_fields ~id ~kind ~targets)
  | Injected { round; src; recipients; bits; id; kind; targets } ->
      tagged
        ([ ("round", Int round);
           ("src", Int src);
           ("recipients", Int recipients) ]
        @ (if bits < 0 then [] else [ ("bits", Baobs.Json.Int bits) ])
        @ causal_fields ~id ~kind ~targets)
  | Halted { round; node; output } ->
      tagged
        [ ("round", Int round);
          ("node", Int node);
          ( "output",
            match output with Some b -> Bool b | None -> Null ) ]

let of_json json =
  let open Baobs.Json in
  let fail msg = raise (Parse_error ("Trace.of_json: " ^ msg)) in
  let int k = as_int (member_exn k json) in
  let bool k = as_bool (member_exn k json) in
  (* Legacy traces predate the causal fields; default them to the
     "unlabeled" sentinels so old [--trace-jsonl] artifacts re-parse. *)
  let id = match member "id" json with Some j -> as_int j | None -> no_id in
  let kind =
    match member "kind" json with Some j -> as_string j | None -> no_kind
  in
  let targets =
    match member "targets" json with
    | Some j -> List.map as_int (as_list j)
    | None -> []
  in
  match as_string (member_exn "event" json) with
  | "round_started" -> Round_started { round = int "round" }
  | "sent" ->
      Sent
        { round = int "round";
          node = int "node";
          multicast = bool "multicast";
          recipients = int "recipients";
          bits = int "bits";
          id;
          kind;
          targets }
  | "corrupted" -> Corrupted { round = int "round"; node = int "node" }
  | "removed" ->
      Removed
        { round = int "round";
          victim = int "victim";
          multicast = bool "multicast";
          recipients = int "recipients";
          bits = int "bits";
          id;
          kind;
          targets }
  | "injected" ->
      Injected
        { round = int "round";
          src = int "src";
          recipients = int "recipients";
          bits = (match member "bits" json with Some j -> as_int j | None -> -1);
          id;
          kind;
          targets }
  | "halted" ->
      Halted
        { round = int "round";
          node = int "node";
          output =
            (match member_exn "output" json with
            | Null -> None
            | Bool b -> Some b
            | Int _ | Float _ | String _ | List _ | Obj _ ->
                fail "halted output must be a bool or null") }
  | kind -> fail (Printf.sprintf "unknown event kind %S" kind)

(* ---------- collectors -------------------------------------------------- *)

type collector = {
  mutable rev_events : event list;
  mutable total : int;
  mutable cache : event list option;
      (* memoized [List.rev rev_events]; invalidated on observe so k
         queries over an m-event trace cost one reversal, not k *)
}

let collector () = { rev_events = []; total = 0; cache = None }

let observe c event =
  c.rev_events <- event :: c.rev_events;
  c.total <- c.total + 1;
  c.cache <- None

let events c =
  match c.cache with
  | Some evs -> evs
  | None ->
      let evs = List.rev c.rev_events in
      c.cache <- Some evs;
      evs

let length c = c.total

(* Counting is order-independent: fold the raw reversed list without
   materializing anything. *)
let count c p =
  List.fold_left (fun acc e -> if p e then acc + 1 else acc) 0 c.rev_events

type ring = event Baobs.Ring.t

let ring ~capacity = Baobs.Ring.create ~capacity

let observe_ring = Baobs.Ring.add

let ring_events = Baobs.Ring.to_list

let ring_dropped = Baobs.Ring.dropped

(* ---------- sinks ------------------------------------------------------- *)

let jsonl_tracer ?kinds ?min_round ?max_round sink =
  let keep e =
    (match kinds with
    | None -> true
    | Some ks -> List.mem (kind_of e) ks)
    && (match min_round with None -> true | Some lo -> round_of e >= lo)
    && match max_round with None -> true | Some hi -> round_of e <= hi
  in
  fun e -> if keep e then Baobs.Jsonl.emit sink (to_json e)

let render ?(max_rounds = 30) c =
  let buf = Buffer.create 1024 in
  let skipped = ref 0 in
  List.iter
    (fun e ->
      if round_of e < max_rounds then
        Buffer.add_string buf (Format.asprintf "%a\n" pp_event e)
      else incr skipped)
    (events c);
  if !skipped > 0 then
    Buffer.add_string buf
      (Printf.sprintf "... %d further events beyond round %d elided\n" !skipped
         max_rounds);
  Buffer.contents buf
