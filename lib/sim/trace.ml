type event =
  | Round_started of { round : int }
  | Sent of
      { round : int; node : int; multicast : bool; recipients : int; bits : int }
  | Corrupted of { round : int; node : int }
  | Removed of
      { round : int;
        victim : int;
        multicast : bool;
        recipients : int;
        bits : int }
  | Injected of { round : int; src : int; recipients : int }
  | Halted of { round : int; node : int; output : bool option }

let pp_event fmt = function
  | Round_started { round } -> Format.fprintf fmt "-- round %d --" round
  | Sent { node; multicast; recipients; bits; _ } ->
      if multicast then Format.fprintf fmt "node %d multicasts (%d bits)" node bits
      else Format.fprintf fmt "node %d sends to %d nodes (%d bits)" node recipients bits
  | Corrupted { round; node } ->
      if round < 0 then Format.fprintf fmt "node %d corrupted at setup" node
      else Format.fprintf fmt "node %d corrupted" node
  | Removed { victim; multicast; recipients; bits; _ } ->
      Format.fprintf fmt
        "a %s of node %d to %d nodes (%d bits) erased after the fact"
        (if multicast then "multicast" else "message")
        victim recipients bits
  | Injected { src; recipients; _ } ->
      Format.fprintf fmt "adversary sends as node %d to %d nodes" src recipients
  | Halted { node; output; _ } ->
      Format.fprintf fmt "node %d halts with output %s" node
        (match output with
        | Some true -> "1"
        | Some false -> "0"
        | None -> "none")

let round_of = function
  | Round_started { round }
  | Sent { round; _ }
  | Corrupted { round; _ }
  | Removed { round; _ }
  | Injected { round; _ }
  | Halted { round; _ } ->
      round

let kind_of = function
  | Round_started _ -> "round_started"
  | Sent _ -> "sent"
  | Corrupted _ -> "corrupted"
  | Removed _ -> "removed"
  | Injected _ -> "injected"
  | Halted _ -> "halted"

let to_json event =
  let open Baobs.Json in
  let tagged fields = Obj (("event", String (kind_of event)) :: fields) in
  match event with
  | Round_started { round } -> tagged [ ("round", Int round) ]
  | Sent { round; node; multicast; recipients; bits } ->
      tagged
        [ ("round", Int round);
          ("node", Int node);
          ("multicast", Bool multicast);
          ("recipients", Int recipients);
          ("bits", Int bits) ]
  | Corrupted { round; node } ->
      tagged [ ("round", Int round); ("node", Int node) ]
  | Removed { round; victim; multicast; recipients; bits } ->
      tagged
        [ ("round", Int round);
          ("victim", Int victim);
          ("multicast", Bool multicast);
          ("recipients", Int recipients);
          ("bits", Int bits) ]
  | Injected { round; src; recipients } ->
      tagged
        [ ("round", Int round); ("src", Int src); ("recipients", Int recipients) ]
  | Halted { round; node; output } ->
      tagged
        [ ("round", Int round);
          ("node", Int node);
          ( "output",
            match output with Some b -> Bool b | None -> Null ) ]

let of_json json =
  let open Baobs.Json in
  let fail msg = raise (Parse_error ("Trace.of_json: " ^ msg)) in
  let int k = as_int (member_exn k json) in
  let bool k = as_bool (member_exn k json) in
  match as_string (member_exn "event" json) with
  | "round_started" -> Round_started { round = int "round" }
  | "sent" ->
      Sent
        { round = int "round";
          node = int "node";
          multicast = bool "multicast";
          recipients = int "recipients";
          bits = int "bits" }
  | "corrupted" -> Corrupted { round = int "round"; node = int "node" }
  | "removed" ->
      Removed
        { round = int "round";
          victim = int "victim";
          multicast = bool "multicast";
          recipients = int "recipients";
          bits = int "bits" }
  | "injected" ->
      Injected
        { round = int "round"; src = int "src"; recipients = int "recipients" }
  | "halted" ->
      Halted
        { round = int "round";
          node = int "node";
          output =
            (match member_exn "output" json with
            | Null -> None
            | Bool b -> Some b
            | Int _ | Float _ | String _ | List _ | Obj _ ->
                fail "halted output must be a bool or null") }
  | kind -> fail (Printf.sprintf "unknown event kind %S" kind)

(* ---------- collectors -------------------------------------------------- *)

type collector = {
  mutable rev_events : event list;
  mutable total : int;
  mutable cache : event list option;
      (* memoized [List.rev rev_events]; invalidated on observe so k
         queries over an m-event trace cost one reversal, not k *)
}

let collector () = { rev_events = []; total = 0; cache = None }

let observe c event =
  c.rev_events <- event :: c.rev_events;
  c.total <- c.total + 1;
  c.cache <- None

let events c =
  match c.cache with
  | Some evs -> evs
  | None ->
      let evs = List.rev c.rev_events in
      c.cache <- Some evs;
      evs

let length c = c.total

(* Counting is order-independent: fold the raw reversed list without
   materializing anything. *)
let count c p =
  List.fold_left (fun acc e -> if p e then acc + 1 else acc) 0 c.rev_events

type ring = event Baobs.Ring.t

let ring ~capacity = Baobs.Ring.create ~capacity

let observe_ring = Baobs.Ring.add

let ring_events = Baobs.Ring.to_list

let ring_dropped = Baobs.Ring.dropped

(* ---------- sinks ------------------------------------------------------- *)

let jsonl_tracer ?kinds ?min_round ?max_round sink =
  let keep e =
    (match kinds with
    | None -> true
    | Some ks -> List.mem (kind_of e) ks)
    && (match min_round with None -> true | Some lo -> round_of e >= lo)
    && match max_round with None -> true | Some hi -> round_of e <= hi
  in
  fun e -> if keep e then Baobs.Jsonl.emit sink (to_json e)

let render ?(max_rounds = 30) c =
  let buf = Buffer.create 1024 in
  let skipped = ref 0 in
  List.iter
    (fun e ->
      if round_of e < max_rounds then
        Buffer.add_string buf (Format.asprintf "%a\n" pp_event e)
      else incr skipped)
    (events c);
  if !skipped > 0 then
    Buffer.add_string buf
      (Printf.sprintf "... %d further events beyond round %d elided\n" !skipped
         max_rounds);
  Buffer.contents buf
