(** One findings-rendering path for every checking tool.

    [ba_run --check-trace] and [ba_explore] both end in "print typed
    findings, exit non-zero if any"; this module is the shared tail, so
    the text format and the JSON shape ([ba-findings/v1]) stay
    consistent across tools. Exit codes remain each tool's own contract
    (ba_run exits 3 on trace findings; ba_explore exits 2 on a
    discovered violation). *)

type item = {
  label : string;  (** stable machine tag, e.g. ["over-budget"], ["validity"] *)
  detail : string;  (** one-line human rendering *)
  data : Baobs.Json.t;  (** tool-specific structured payload *)
}

val schema : string
(** ["ba-findings/v1"]. *)

val of_trace_findings : Trace_lint.finding list -> item list
(** Trace-lint findings as report items: label = {!Trace_lint.kind_name},
    detail = {!Trace_lint.pp_finding}, data = the finding's JSON. *)

val to_json : tool:string -> item list -> Baobs.Json.t
(** [{ schema; tool; count; findings = [{label; detail; data}] }]. *)

val emit_text :
  tool:string ->
  ?clean_out:out_channel ->
  ?findings_out:out_channel ->
  item list ->
  bool
(** Print the canonical text rendering and return whether there were
    findings: ["<tool>: clean"] to [clean_out] (default [stdout]) when
    the list is empty; otherwise one ["<tool>: <detail>"] line per item
    plus a ["<tool>: N finding(s)"] summary to [findings_out] (default
    [stderr]). *)
