(** Source-level lint for the repository's OCaml code.

    A small, dependency-free scanner (no compiler-libs, no ppx) that
    walks [lib/**/*.ml] and flags banned patterns. Comments and string
    literals are blanked before matching, so prose never trips a rule.

    Rules:

    - {!Obj_magic}: any use of [Obj.magic] — type-safety escape hatch;
    - {!Poly_compare}: bare polymorphic [compare] (or
      [Stdlib.compare]) — on abstract key types (credentials,
      signatures, RNG states) structural comparison silently depends on
      representation; use the type's own [compare];
    - {!Stdlib_exit}: [exit] calls inside libraries — only executables
      may decide the process's fate;
    - {!Failwith_hot_path}: [failwith] inside the engine's per-round
      loop ([while !running … done] in [engine.ml]) — the hot path must
      referee via {!Basim.Engine.Illegal_action}, not anonymous
      failures;
    - {!Missing_mli}: a library [.ml] without a sibling [.mli] — every
      library module ships an explicit interface;
    - {!Unused_capability}: an attack module (under [lib/attacks])
      whose literal [Capability.caps = [ ... ]] declaration includes a
      capability its action code never exercises — injection without an
      [Inject], midround corruption without a [Corrupt], after-fact
      removal without a [Remove], or setup corruption with a no-op
      [setup] body. Overstated declarations make experiments attribute
      damage to a stronger adversary model than the attack needs. *)

type rule =
  | Obj_magic
  | Poly_compare
  | Stdlib_exit
  | Failwith_hot_path
  | Missing_mli
  | Unused_capability

type finding = {
  rule : rule;
  file : string;  (** path relative to the scan root *)
  line : int;  (** 1-based *)
  excerpt : string;  (** the offending line, trimmed *)
}

val rule_name : rule -> string
(** Stable kebab-case tag, e.g. ["poly-compare"]. *)

val blank_comments_and_strings : string -> string
(** The pre-matching pass: comment bodies (nested, with
    strings-in-comments), string literals, and character literals are
    replaced by spaces; line structure is preserved. Exposed for
    testing. *)

val scan_source : path:string -> string -> finding list
(** Lint one file's contents. [path] is used for reporting and to
    decide file-specific rules (the hot-path rule applies to
    [engine.ml]). The {!Missing_mli} rule needs the file system and
    only fires from {!scan_tree}. *)

val scan_tree : root:string -> finding list
(** Walk [root/lib] recursively, lint every [.ml], and check every
    library module for a sibling [.mli]. Findings are sorted by file
    and line. *)

val findings_to_json : finding list -> Baobs.Json.t

val pp_finding : Format.formatter -> finding -> unit
