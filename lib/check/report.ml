type item = { label : string; detail : string; data : Baobs.Json.t }

let schema = "ba-findings/v1"

let of_trace_findings findings =
  List.map
    (fun f ->
      let data =
        match Trace_lint.findings_to_json [ f ] with
        | Baobs.Json.List [ j ] -> j
        | Baobs.Json.List _ | Baobs.Json.Null | Baobs.Json.Bool _
        | Baobs.Json.Int _ | Baobs.Json.Float _ | Baobs.Json.String _
        | Baobs.Json.Obj _ ->
            Baobs.Json.Null
      in
      { label = Trace_lint.kind_name f.Trace_lint.kind;
        detail = Format.asprintf "%a" Trace_lint.pp_finding f;
        data })
    findings

let to_json ~tool items =
  Baobs.Json.Obj
    [ ("schema", Baobs.Json.String schema);
      ("tool", Baobs.Json.String tool);
      ("count", Baobs.Json.Int (List.length items));
      ( "findings",
        Baobs.Json.List
          (List.map
             (fun it ->
               Baobs.Json.Obj
                 [ ("label", Baobs.Json.String it.label);
                   ("detail", Baobs.Json.String it.detail);
                   ("data", it.data) ])
             items) ) ]

let emit_text ~tool ?(clean_out = stdout) ?(findings_out = stderr) items =
  match items with
  | [] ->
      Printf.fprintf clean_out "%s: clean\n%!" tool;
      false
  | _ :: _ ->
      List.iter
        (fun it -> Printf.fprintf findings_out "%s: %s\n" tool it.detail)
        items;
      Printf.fprintf findings_out "%s: %d finding(s)\n%!" tool
        (List.length items);
      true
