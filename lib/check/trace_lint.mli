(** Trace-invariant verifier.

    Consumes a {!Basim.Trace} event stream — live from a collector, or
    re-parsed from a [--trace-jsonl] file via {!Baobs.Json} — and checks
    the structural invariants that the paper's adversary models impose
    on any legal execution. Each violation is a typed {!finding}; an
    empty result certifies the trace.

    The invariants, and the paper rule each enforces:

    - {b round monotonicity} ({!Non_monotonic_round},
      {!Round_mismatch}): the synchronous model of Appendix A.1 —
      rounds advance strictly and every event belongs to the round in
      progress;
    - {b removal discipline} ({!Removal_without_model},
      {!Removal_of_uncorrupted}): after-the-fact removal exists only for
      the strongly adaptive adversary (Theorem 1), and only against a
      victim corrupted in that same round — the "cannot retract, except
      in the corruption round" rule;
    - {b budget} ({!Over_budget}): at most [f] nodes ever corrupted;
    - {b corruption semantics} ({!Static_midround_corruption},
      {!Sent_while_corrupt}, {!Injection_from_honest}): static
      adversaries corrupt only at setup; a corrupt node stops running
      the honest protocol, so its traffic must appear as [Injected],
      never [Sent]; only corrupt nodes can be injected from;
    - {b halting} ({!Event_after_halt}): a halted node sends nothing in
      later rounds;
    - {b Definition-7 accounting} ({!Accounting_mismatch}): honest
      multicasts/bits reconstructed from [Sent] {e plus} [Removed]
      events (erased honest sends still count) must equal the
      {!Basim.Metrics} aggregates of the same run. *)

type kind =
  | Non_monotonic_round  (** [Round_started] rounds not strictly increasing *)
  | Round_mismatch  (** event's round field differs from the round in progress *)
  | Static_midround_corruption  (** [Corrupted] at round ≥ 0 under [Static] *)
  | Over_budget  (** more than [budget] distinct nodes corrupted *)
  | Removal_without_model  (** [Removed] under a model without removal *)
  | Removal_of_uncorrupted
      (** victim honest, or corrupted in a different round *)
  | Sent_while_corrupt  (** [Sent] by a node corrupted in an earlier round *)
  | Injection_from_honest  (** [Injected] from a never-corrupted source *)
  | Event_after_halt  (** [Sent] after the node halted, or a duplicate halt *)
  | Accounting_mismatch
      (** trace-reconstructed Definition-6/7 totals disagree with
          {!Basim.Metrics} *)

type finding = {
  kind : kind;
  round : int;  (** round of the offending event ([-1] = pre-execution) *)
  node : int option;  (** offending node, when one is identifiable *)
  detail : string;
}

val kind_name : kind -> string
(** Stable kebab-case tag, e.g. ["removal-without-model"]. *)

val kind_of_name : string -> kind option

val pp_finding : Format.formatter -> finding -> unit

val findings_to_json : finding list -> Baobs.Json.t

val verify :
  ?metrics:Basim.Metrics.t ->
  model:Basim.Corruption.model ->
  budget:int ->
  Basim.Trace.event list ->
  finding list
(** Check every invariant over a full (unfiltered) event stream; [[]]
    means the trace is clean. [metrics], when given, must come from the
    same run — enables the Definition-7 accounting cross-check. *)

val verify_collector :
  ?metrics:Basim.Metrics.t ->
  model:Basim.Corruption.model ->
  budget:int ->
  Basim.Trace.collector ->
  finding list

val events_of_jsonl : string -> Basim.Trace.event list
(** Parse the contents of a [--trace-jsonl] dump (one JSON object per
    line, blank lines ignored) back into events.
    @raise Baobs.Json.Parse_error on a malformed line. *)

val load_jsonl : string -> Basim.Trace.event list
(** {!events_of_jsonl} over a file path.
    @raise Sys_error when unreadable. *)
