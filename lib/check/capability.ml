type cap = Basim.Capability.t =
  | Setup_corruption
  | Midround_corruption
  | After_fact_removal
  | Injection

type decl = Basim.Capability.decl = {
  caps : cap list;
  budget_bound : int option;
}

type finding = {
  adversary : string;
  mismatch : Basim.Capability.mismatch;
  message : string;
}

let check ?(adversary = "<decl>") decl ~model ~budget =
  List.map
    (fun mismatch ->
      { adversary;
        mismatch;
        message =
          Printf.sprintf "adversary %s: %s" adversary
            (Basim.Capability.mismatch_to_string mismatch) })
    (Basim.Capability.validate decl ~model ~budget)

let check_adversary adv ~budget =
  check ~adversary:adv.Basim.Engine.adv_name adv.Basim.Engine.caps
    ~model:adv.Basim.Engine.model ~budget

let pp_finding fmt f = Format.pp_print_string fmt f.message

let mismatch_kind = function
  | Basim.Capability.Removal_not_allowed _ -> "removal-not-allowed"
  | Basim.Capability.Midround_not_allowed _ -> "midround-not-allowed"
  | Basim.Capability.Bound_exceeds_budget _ -> "bound-exceeds-budget"

let finding_to_json f =
  Baobs.Json.Obj
    [ ("adversary", Baobs.Json.String f.adversary);
      ("kind", Baobs.Json.String (mismatch_kind f.mismatch));
      ("message", Baobs.Json.String f.message) ]

let decl_fields decl =
  [ ( "caps",
      Baobs.Json.List
        (List.map
           (fun c -> Baobs.Json.String (Basim.Capability.name c))
           decl.caps) );
    ( "budget_bound",
      match decl.budget_bound with
      | None -> Baobs.Json.Null
      | Some b -> Baobs.Json.Int b ) ]

let decl_to_json decl = Baobs.Json.Obj (decl_fields decl)

let table rows =
  Baobs.Json.List
    (List.map
       (fun (name, decl) ->
         Baobs.Json.Obj
           (("adversary", Baobs.Json.String name) :: decl_fields decl))
       rows)
