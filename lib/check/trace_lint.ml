open Basim

type kind =
  | Non_monotonic_round
  | Round_mismatch
  | Static_midround_corruption
  | Over_budget
  | Removal_without_model
  | Removal_of_uncorrupted
  | Sent_while_corrupt
  | Injection_from_honest
  | Event_after_halt
  | Accounting_mismatch

type finding = {
  kind : kind;
  round : int;
  node : int option;
  detail : string;
}

let kinds =
  [ Non_monotonic_round;
    Round_mismatch;
    Static_midround_corruption;
    Over_budget;
    Removal_without_model;
    Removal_of_uncorrupted;
    Sent_while_corrupt;
    Injection_from_honest;
    Event_after_halt;
    Accounting_mismatch ]

let kind_name = function
  | Non_monotonic_round -> "non-monotonic-round"
  | Round_mismatch -> "round-mismatch"
  | Static_midround_corruption -> "static-midround-corruption"
  | Over_budget -> "over-budget"
  | Removal_without_model -> "removal-without-model"
  | Removal_of_uncorrupted -> "removal-of-uncorrupted"
  | Sent_while_corrupt -> "sent-while-corrupt"
  | Injection_from_honest -> "injection-from-honest"
  | Event_after_halt -> "event-after-halt"
  | Accounting_mismatch -> "accounting-mismatch"

let kind_of_name s = List.find_opt (fun k -> kind_name k = s) kinds

let pp_finding fmt f =
  Format.fprintf fmt "[%s] round %d%s: %s" (kind_name f.kind) f.round
    (match f.node with
    | Some i -> Printf.sprintf " node %d" i
    | None -> "")
    f.detail

let findings_to_json findings =
  Baobs.Json.List
    (List.map
       (fun f ->
         Baobs.Json.Obj
           [ ("kind", Baobs.Json.String (kind_name f.kind));
             ("round", Baobs.Json.Int f.round);
             ( "node",
               match f.node with
               | Some i -> Baobs.Json.Int i
               | None -> Baobs.Json.Null );
             ("detail", Baobs.Json.String f.detail) ])
       findings)

(* Verification walks the stream once, tracking who is corrupt (and
   since when), who halted (and when), the round in progress, and the
   Definition-6/7 accounting totals. *)
type state = {
  mutable current : int;  (* round in progress; -1 = pre-execution *)
  mutable started : bool;  (* a Round_started has been seen *)
  corrupt : (int, int) Hashtbl.t;  (* node -> corruption round *)
  halted : (int, int) Hashtbl.t;  (* node -> halt round *)
  mutable corruptions : int;  (* distinct corrupted nodes *)
  mutable multicasts : int;
  mutable multicast_bits : int;
  mutable unicasts : int;
  mutable removals : int;
  mutable injections : int;
  mutable findings : finding list;  (* reversed *)
}

let report st kind ~round ~node detail =
  st.findings <- { kind; round; node; detail } :: st.findings

let check_event_round st ~round ~node detail =
  if round <> st.current then
    report st Round_mismatch ~round ~node
      (Printf.sprintf "%s carries round %d while round %d is in progress"
         detail round st.current)

(* An honest send's accounting footprint — shared by Sent and Removed,
   because Definition 7 charges erased honest sends too. *)
let account st ~multicast ~recipients ~bits =
  if multicast then begin
    st.multicasts <- st.multicasts + 1;
    st.multicast_bits <- st.multicast_bits + bits
  end
  else st.unicasts <- st.unicasts + recipients

let check_send st ~round ~node ~label =
  (match Hashtbl.find_opt st.corrupt node with
  | Some rc when rc < round ->
      report st Sent_while_corrupt ~round ~node:(Some node)
        (Printf.sprintf
           "%s by node %d, corrupt since round %d — corrupt traffic must be \
            Injected"
           label node rc)
  | Some _ | None -> ());
  match Hashtbl.find_opt st.halted node with
  | Some rh when rh < round ->
      report st Event_after_halt ~round ~node:(Some node)
        (Printf.sprintf "%s by node %d, halted in round %d" label node rh)
  | Some _ | None -> ()

let observe st ~model ~budget event =
  match event with
  | Trace.Round_started { round } ->
      if round <= st.current then
        report st Non_monotonic_round ~round ~node:None
          (Printf.sprintf "round %d started after round %d" round st.current);
      st.current <- round;
      st.started <- true
  | Trace.Corrupted { round; node } ->
      if round = -1 then begin
        if st.started then
          report st Round_mismatch ~round ~node:(Some node)
            "setup-time corruption after the execution started"
      end
      else begin
        check_event_round st ~round ~node:(Some node) "corruption";
        if not (Corruption.allows_dynamic_corruption model) then
          report st Static_midround_corruption ~round ~node:(Some node)
            (Printf.sprintf
               "node %d corrupted mid-execution under the %s model" node
               (Corruption.to_string model))
      end;
      if not (Hashtbl.mem st.corrupt node) then begin
        Hashtbl.replace st.corrupt node round;
        st.corruptions <- st.corruptions + 1;
        if st.corruptions > budget then
          report st Over_budget ~round ~node:(Some node)
            (Printf.sprintf "%d nodes corrupted, budget is %d" st.corruptions
               budget)
      end
  | Trace.Removed { round; victim; multicast; recipients; bits; _ } ->
      check_event_round st ~round ~node:(Some victim) "removal";
      if not (Corruption.allows_removal model) then
        report st Removal_without_model ~round ~node:(Some victim)
          (Printf.sprintf
             "after-the-fact removal under the %s model (strongly adaptive \
              only)"
             (Corruption.to_string model));
      (match Hashtbl.find_opt st.corrupt victim with
      | Some rc when rc = round -> ()
      | Some rc ->
          report st Removal_of_uncorrupted ~round ~node:(Some victim)
            (Printf.sprintf
               "victim %d was corrupted in round %d, not in the removal round"
               victim rc)
      | None ->
          report st Removal_of_uncorrupted ~round ~node:(Some victim)
            (Printf.sprintf "victim %d is honest" victim));
      st.removals <- st.removals + 1;
      account st ~multicast ~recipients ~bits
  | Trace.Sent { round; node; multicast; recipients; bits; _ } ->
      check_event_round st ~round ~node:(Some node) "send";
      check_send st ~round ~node ~label:"send";
      account st ~multicast ~recipients ~bits
  | Trace.Injected { round; src; _ } ->
      check_event_round st ~round ~node:(Some src) "injection";
      (match Hashtbl.find_opt st.corrupt src with
      | Some rc when rc <= round -> ()
      | Some rc ->
          report st Injection_from_honest ~round ~node:(Some src)
            (Printf.sprintf
               "injection from node %d before its corruption in round %d" src
               rc)
      | None ->
          report st Injection_from_honest ~round ~node:(Some src)
            (Printf.sprintf "injection from honest node %d" src));
      st.injections <- st.injections + 1
  | Trace.Halted { round; node; output = _ } ->
      check_event_round st ~round ~node:(Some node) "halt";
      (match Hashtbl.find_opt st.halted node with
      | Some rh ->
          report st Event_after_halt ~round ~node:(Some node)
            (Printf.sprintf "node %d halted again (first halt in round %d)"
               node rh)
      | None -> Hashtbl.replace st.halted node round)

let check_metrics st metrics =
  let expect label got want =
    if got <> want then
      report st Accounting_mismatch ~round:st.current ~node:None
        (Printf.sprintf "%s: trace reconstructs %d, metrics say %d" label got
           want)
  in
  expect "honest multicasts (sent + removed)" st.multicasts
    (Metrics.honest_multicasts metrics);
  expect "multicast bits (Definition 7)" st.multicast_bits
    (Metrics.honest_multicast_bits metrics);
  expect "honest unicasts" st.unicasts (Metrics.honest_unicasts metrics);
  expect "removals" st.removals (Metrics.removals metrics);
  expect "injections" st.injections (Metrics.injections metrics);
  expect "rounds" (st.current + 1) (Metrics.rounds metrics)

let verify ?metrics ~model ~budget events =
  let st =
    { current = -1;
      started = false;
      corrupt = Hashtbl.create 64;
      halted = Hashtbl.create 64;
      corruptions = 0;
      multicasts = 0;
      multicast_bits = 0;
      unicasts = 0;
      removals = 0;
      injections = 0;
      findings = [] }
  in
  List.iter (observe st ~model ~budget) events;
  (match metrics with Some m -> check_metrics st m | None -> ());
  List.rev st.findings

let verify_collector ?metrics ~model ~budget collector =
  verify ?metrics ~model ~budget (Trace.events collector)

let events_of_jsonl contents =
  String.split_on_char '\n' contents
  |> List.filter_map (fun line ->
         if String.trim line = "" then None
         else Some (Trace.of_json (Baobs.Json.of_string line)))

let load_jsonl path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let len = in_channel_length ic in
      events_of_jsonl (really_input_string ic len))
