type rule =
  | Obj_magic
  | Poly_compare
  | Stdlib_exit
  | Failwith_hot_path
  | Missing_mli

type finding = {
  rule : rule;
  file : string;
  line : int;
  excerpt : string;
}

let rule_name = function
  | Obj_magic -> "obj-magic"
  | Poly_compare -> "poly-compare"
  | Stdlib_exit -> "stdlib-exit"
  | Failwith_hot_path -> "failwith-hot-path"
  | Missing_mli -> "missing-mli"

let pp_finding fmt f =
  Format.fprintf fmt "%s:%d: [%s] %s" f.file f.line (rule_name f.rule)
    f.excerpt

let findings_to_json findings =
  Baobs.Json.List
    (List.map
       (fun f ->
         Baobs.Json.Obj
           [ ("rule", Baobs.Json.String (rule_name f.rule));
             ("file", Baobs.Json.String f.file);
             ("line", Baobs.Json.Int f.line);
             ("excerpt", Baobs.Json.String f.excerpt) ])
       findings)

(* {2 Blanking pass}

   Replace comment bodies, string literals and character literals by
   spaces so the token search below never matches inside prose. Newlines
   are preserved: line numbers in the blanked text equal those of the
   source. This is a lexer-grade approximation — it understands nested
   [(* *)] comments, strings inside comments, backslash escapes, and
   distinguishes char literals from type variables — which is all the
   code in this repository needs. *)

let blank_comments_and_strings src =
  let n = String.length src in
  let out = Bytes.of_string src in
  let blank j = if Bytes.get out j <> '\n' then Bytes.set out j ' ' in
  let i = ref 0 in
  let depth = ref 0 in
  (* Skip a string literal starting at the opening quote, blanking it
     (quotes included); returns the index just past the closing quote. *)
  let skip_string start =
    let j = ref start in
    blank !j;
    incr j;
    let closed = ref false in
    while (not !closed) && !j < n do
      (match src.[!j] with
      | '\\' when !j + 1 < n ->
          blank !j;
          blank (!j + 1);
          incr j
      | '"' -> closed := true
      | _ -> blank !j);
      incr j
    done;
    !j
  in
  while !i < n do
    let c = src.[!i] in
    if !depth > 0 then
      if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
        incr depth;
        blank !i;
        blank (!i + 1);
        i := !i + 2
      end
      else if c = '*' && !i + 1 < n && src.[!i + 1] = ')' then begin
        decr depth;
        blank !i;
        blank (!i + 1);
        i := !i + 2
      end
      else if c = '"' then i := skip_string !i
      else begin
        blank !i;
        incr i
      end
    else if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      depth := 1;
      blank !i;
      blank (!i + 1);
      i := !i + 2
    end
    else if c = '"' then i := skip_string !i
    else if c = '\'' then begin
      (* Char literal or type variable? ['x'] and escapes are literals;
         ['a] (no closing quote in range) is a type variable. *)
      if !i + 2 < n && src.[!i + 1] = '\\' then begin
        (* Escaped char: blank up to and including the closing quote,
           which sits within the next handful of characters. *)
        let j = ref (!i + 2) in
        let stop = min n (!i + 6) in
        while !j < stop && src.[!j] <> '\'' do
          incr j
        done;
        if !j < stop && src.[!j] = '\'' then begin
          for k = !i to !j do
            blank k
          done;
          i := !j + 1
        end
        else incr i
      end
      else if !i + 2 < n && src.[!i + 2] = '\'' && src.[!i + 1] <> '\'' then begin
        blank !i;
        blank (!i + 1);
        blank (!i + 2);
        i := !i + 3
      end
      else incr i
    end
    else incr i
  done;
  Bytes.to_string out

(* {2 Token search} *)

let is_ident_char c =
  match c with
  | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '_' | '\'' -> true
  | _ -> false

(* Whether [token] occurs in [line] at a word boundary. [qualified]
   controls occurrences preceded (after skipping spaces) by a ['.']:
   [`Forbid] rejects them (so [Int.compare] does not match [compare]),
   [`Allow] accepts them. *)
let has_token ?(qualified = `Forbid) token line =
  let tn = String.length token in
  let ln = String.length line in
  let prev_nonspace upto =
    let j = ref (upto - 1) in
    while !j >= 0 && line.[!j] = ' ' do
      decr j
    done;
    if !j >= 0 then Some line.[!j] else None
  in
  let rec search from =
    if from + tn > ln then false
    else
      match String.index_from_opt line from token.[0] with
      | None -> false
      | Some at ->
          if
            at + tn <= ln
            && String.sub line at tn = token
            && (at = 0 || not (is_ident_char line.[at - 1]))
            && (at = 0 || line.[at - 1] <> '.')
            && (at + tn = ln || not (is_ident_char line.[at + tn]))
            && (match qualified with
               | `Allow -> true
               | `Forbid -> (
                   match prev_nonspace at with
                   | Some '.' -> false
                   | Some _ | None -> true))
          then true
          else search (at + 1)
  in
  search 0

(* [let compare], [and compare] and [~compare:] introduce or name a
   module-specific comparison — those are definitions/labels, not uses
   of the polymorphic one. *)
let defines_token token line =
  let ln = String.length line in
  let tn = String.length token in
  let rec scan at =
    match String.index_from_opt line at token.[0] with
    | None -> false
    | Some at when at + tn > ln -> scan (at + 1)
    | Some at ->
        if
          String.sub line at tn = token
          && (at = 0 || not (is_ident_char line.[at - 1]))
          && (at + tn = ln || not (is_ident_char line.[at + tn]))
        then begin
          let before = String.trim (String.sub line 0 at) in
          let ends_with suf =
            let sn = String.length suf in
            String.length before >= sn
            && String.sub before (String.length before - sn) sn = suf
            && (String.length before = sn
               || not (is_ident_char before.[String.length before - sn - 1]))
          in
          if
            ends_with "let" || ends_with "and" || ends_with "~"
            || ends_with "val"
            || at + tn < ln
               && line.[at + tn] = ':'
               && at > 0
               && line.[at - 1] = '~'
          then true
          else scan (at + 1)
        end
        else scan (at + 1)
  in
  scan 0

(* {2 Hot-path region}

   The engine's per-round loop is the [while !running … done] block in
   [engine.ml]. Returns [Some (first, last)] line numbers (1-based,
   exclusive of the [while]/[done] lines themselves). *)
let hot_path_region lines =
  let indent_of s =
    let j = ref 0 in
    while !j < String.length s && s.[!j] = ' ' do
      incr j
    done;
    !j
  in
  let arr = Array.of_list lines in
  let start = ref None in
  Array.iteri
    (fun idx line ->
      match !start with
      | None ->
          if has_token ~qualified:`Allow "while" line && has_token "running" line
          then start := Some (idx, indent_of line)
      | Some _ -> ())
    arr;
  match !start with
  | None -> None
  | Some (widx, windent) ->
      let stop = ref None in
      Array.iteri
        (fun idx line ->
          if idx > widx && !stop = None then
            let t = String.trim line in
            if
              (t = "done" || t = "done;"
              || String.length t > 4
                 && String.sub t 0 4 = "done"
                 && not (is_ident_char t.[4]))
              && indent_of line <= windent
            then stop := Some idx)
        arr;
      let last =
        match !stop with Some idx -> idx (* exclusive *) | None -> Array.length arr
      in
      Some (widx + 2, last) (* 1-based, body only *)

let is_engine path = Filename.basename path = "engine.ml"

let scan_source ~path contents =
  let blanked = blank_comments_and_strings contents in
  let lines = String.split_on_char '\n' blanked in
  let raw_lines = String.split_on_char '\n' contents in
  let excerpt lineno =
    match List.nth_opt raw_lines (lineno - 1) with
    | Some l -> String.trim l
    | None -> ""
  in
  let hot =
    if is_engine path then hot_path_region lines else None
  in
  let in_hot_path lineno =
    match hot with
    | Some (first, last) -> lineno >= first && lineno <= last
    | None -> false
  in
  let findings = ref [] in
  let add rule lineno =
    findings := { rule; file = path; line = lineno; excerpt = excerpt lineno }
                :: !findings
  in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      if has_token ~qualified:`Allow "Obj.magic" line then add Obj_magic lineno;
      if
        (has_token "compare" line || has_token ~qualified:`Allow "Stdlib.compare" line)
        && not (defines_token "compare" line)
      then add Poly_compare lineno;
      if
        (has_token "exit" line || has_token ~qualified:`Allow "Stdlib.exit" line)
        && not (defines_token "exit" line)
      then add Stdlib_exit lineno;
      if in_hot_path lineno && has_token "failwith" line then
        add Failwith_hot_path lineno)
    lines;
  List.rev !findings

(* {2 Tree walk} *)

let rec walk_dir dir =
  if Sys.is_directory dir then
    Sys.readdir dir |> Array.to_list |> List.sort String.compare
    |> List.concat_map (fun entry -> walk_dir (Filename.concat dir entry))
  else [ dir ]

let relativize ~root path =
  let prefix = root ^ Filename.dir_sep in
  let pn = String.length prefix in
  if String.length path > pn && String.sub path 0 pn = prefix then
    String.sub path pn (String.length path - pn)
  else path

let scan_tree ~root =
  let lib = Filename.concat root "lib" in
  let files = if Sys.file_exists lib then walk_dir lib else [] in
  let findings =
    List.concat_map
      (fun path ->
        if Filename.check_suffix path ".ml" then begin
          let rel = relativize ~root path in
          let contents =
            let ic = open_in_bin path in
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          in
          let source_findings = scan_source ~path:rel contents in
          let mli = Filename.remove_extension path ^ ".mli" in
          if Sys.file_exists mli then source_findings
          else
            source_findings
            @ [ { rule = Missing_mli;
                  file = rel;
                  line = 1;
                  excerpt =
                    Printf.sprintf "no interface %s.mli"
                      (Filename.basename (Filename.remove_extension path)) } ]
        end
        else [])
      files
  in
  List.sort
    (fun a b ->
      match String.compare a.file b.file with
      | 0 -> Int.compare a.line b.line
      | c -> c)
    findings
