type rule =
  | Obj_magic
  | Poly_compare
  | Stdlib_exit
  | Failwith_hot_path
  | Missing_mli
  | Unused_capability

type finding = {
  rule : rule;
  file : string;
  line : int;
  excerpt : string;
}

let rule_name = function
  | Obj_magic -> "obj-magic"
  | Poly_compare -> "poly-compare"
  | Stdlib_exit -> "stdlib-exit"
  | Failwith_hot_path -> "failwith-hot-path"
  | Missing_mli -> "missing-mli"
  | Unused_capability -> "unused-capability"

let pp_finding fmt f =
  Format.fprintf fmt "%s:%d: [%s] %s" f.file f.line (rule_name f.rule)
    f.excerpt

let findings_to_json findings =
  Baobs.Json.List
    (List.map
       (fun f ->
         Baobs.Json.Obj
           [ ("rule", Baobs.Json.String (rule_name f.rule));
             ("file", Baobs.Json.String f.file);
             ("line", Baobs.Json.Int f.line);
             ("excerpt", Baobs.Json.String f.excerpt) ])
       findings)

(* {2 Blanking pass}

   Replace comment bodies, string literals and character literals by
   spaces so the token search below never matches inside prose. Newlines
   are preserved: line numbers in the blanked text equal those of the
   source. This is a lexer-grade approximation — it understands nested
   [(* *)] comments, strings inside comments, backslash escapes, and
   distinguishes char literals from type variables — which is all the
   code in this repository needs. *)

let blank_comments_and_strings src =
  let n = String.length src in
  let out = Bytes.of_string src in
  let blank j = if Bytes.get out j <> '\n' then Bytes.set out j ' ' in
  let i = ref 0 in
  let depth = ref 0 in
  (* Skip a string literal starting at the opening quote, blanking it
     (quotes included); returns the index just past the closing quote. *)
  let skip_string start =
    let j = ref start in
    blank !j;
    incr j;
    let closed = ref false in
    while (not !closed) && !j < n do
      (match src.[!j] with
      | '\\' when !j + 1 < n ->
          blank !j;
          blank (!j + 1);
          incr j
      | '"' -> closed := true
      | _ -> blank !j);
      incr j
    done;
    !j
  in
  while !i < n do
    let c = src.[!i] in
    if !depth > 0 then
      if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
        incr depth;
        blank !i;
        blank (!i + 1);
        i := !i + 2
      end
      else if c = '*' && !i + 1 < n && src.[!i + 1] = ')' then begin
        decr depth;
        blank !i;
        blank (!i + 1);
        i := !i + 2
      end
      else if c = '"' then i := skip_string !i
      else begin
        blank !i;
        incr i
      end
    else if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      depth := 1;
      blank !i;
      blank (!i + 1);
      i := !i + 2
    end
    else if c = '"' then i := skip_string !i
    else if c = '\'' then begin
      (* Char literal or type variable? ['x'] and escapes are literals;
         ['a] (no closing quote in range) is a type variable. *)
      if !i + 2 < n && src.[!i + 1] = '\\' then begin
        (* Escaped char: blank up to and including the closing quote,
           which sits within the next handful of characters. *)
        let j = ref (!i + 2) in
        let stop = min n (!i + 6) in
        while !j < stop && src.[!j] <> '\'' do
          incr j
        done;
        if !j < stop && src.[!j] = '\'' then begin
          for k = !i to !j do
            blank k
          done;
          i := !j + 1
        end
        else incr i
      end
      else if !i + 2 < n && src.[!i + 2] = '\'' && src.[!i + 1] <> '\'' then begin
        blank !i;
        blank (!i + 1);
        blank (!i + 2);
        i := !i + 3
      end
      else incr i
    end
    else incr i
  done;
  Bytes.to_string out

(* {2 Token search} *)

let is_ident_char c =
  match c with
  | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '_' | '\'' -> true
  | _ -> false

(* Whether [token] occurs in [line] at a word boundary. [qualified]
   controls occurrences preceded (after skipping spaces) by a ['.']:
   [`Forbid] rejects them (so [Int.compare] does not match [compare]),
   [`Allow] accepts them. *)
let has_token ?(qualified = `Forbid) token line =
  let tn = String.length token in
  let ln = String.length line in
  let prev_nonspace upto =
    let j = ref (upto - 1) in
    while !j >= 0 && line.[!j] = ' ' do
      decr j
    done;
    if !j >= 0 then Some line.[!j] else None
  in
  let rec search from =
    if from + tn > ln then false
    else
      match String.index_from_opt line from token.[0] with
      | None -> false
      | Some at ->
          if
            at + tn <= ln
            && String.sub line at tn = token
            && (at = 0 || not (is_ident_char line.[at - 1]))
            && (at = 0 || line.[at - 1] <> '.')
            && (at + tn = ln || not (is_ident_char line.[at + tn]))
            && (match qualified with
               | `Allow -> true
               | `Forbid -> (
                   match prev_nonspace at with
                   | Some '.' -> false
                   | Some _ | None -> true))
          then true
          else search (at + 1)
  in
  search 0

(* [let compare], [and compare] and [~compare:] introduce or name a
   module-specific comparison — those are definitions/labels, not uses
   of the polymorphic one. *)
let defines_token token line =
  let ln = String.length line in
  let tn = String.length token in
  let rec scan at =
    match String.index_from_opt line at token.[0] with
    | None -> false
    | Some at when at + tn > ln -> scan (at + 1)
    | Some at ->
        if
          String.sub line at tn = token
          && (at = 0 || not (is_ident_char line.[at - 1]))
          && (at + tn = ln || not (is_ident_char line.[at + tn]))
        then begin
          let before = String.trim (String.sub line 0 at) in
          let ends_with suf =
            let sn = String.length suf in
            String.length before >= sn
            && String.sub before (String.length before - sn) sn = suf
            && (String.length before = sn
               || not (is_ident_char before.[String.length before - sn - 1]))
          in
          if
            ends_with "let" || ends_with "and" || ends_with "~"
            || ends_with "val"
            || at + tn < ln
               && line.[at + tn] = ':'
               && at > 0
               && line.[at - 1] = '~'
          then true
          else scan (at + 1)
        end
        else scan (at + 1)
  in
  scan 0

(* {2 Hot-path region}

   The engine's per-round loop is the [while !running … done] block in
   [engine.ml]. Returns [Some (first, last)] line numbers (1-based,
   exclusive of the [while]/[done] lines themselves). *)
let hot_path_region lines =
  let indent_of s =
    let j = ref 0 in
    while !j < String.length s && s.[!j] = ' ' do
      incr j
    done;
    !j
  in
  let arr = Array.of_list lines in
  let start = ref None in
  Array.iteri
    (fun idx line ->
      match !start with
      | None ->
          if has_token ~qualified:`Allow "while" line && has_token "running" line
          then start := Some (idx, indent_of line)
      | Some _ -> ())
    arr;
  match !start with
  | None -> None
  | Some (widx, windent) ->
      let stop = ref None in
      Array.iteri
        (fun idx line ->
          if idx > widx && !stop = None then
            let t = String.trim line in
            if
              (t = "done" || t = "done;"
              || String.length t > 4
                 && String.sub t 0 4 = "done"
                 && not (is_ident_char t.[4]))
              && indent_of line <= windent
            then stop := Some idx)
        arr;
      let last =
        match !stop with Some idx -> idx (* exclusive *) | None -> Array.length arr
      in
      Some (widx + 2, last) (* 1-based, body only *)

let is_engine path = Filename.basename path = "engine.ml"

(* {2 Unused capability}

   An attack module declaring a capability it never exercises overstates
   its adversary's power — the separations reported by experiments then
   attribute damage to a stronger model than the code actually needs.
   Scoped to [lib/attacks]: declarations there are literal
   [Capability.caps = [ ... ]] lists, and usage is visible as
   [Engine.Corrupt]/[Remove]/[Inject] constructors (or a non-empty
   [setup] body for setup-time corruption). The schedule interpreter in
   [lib/sim] derives its declaration from data, so it is out of scope by
   construction. *)

let is_attack path =
  List.exists
    (fun seg -> seg = "attacks")
    (String.split_on_char '/' (String.concat "/" (String.split_on_char '\\' path)))

let line_of_offset text off =
  let count = ref 1 in
  String.iteri (fun i c -> if i < off && c = '\n' then incr count) text;
  !count

(* All [Capability.caps = [ ... ]] declaration regions in the blanked
   text: [(start_line, list_contents)]. *)
let caps_decl_regions blanked =
  let needle = "Capability.caps" in
  let nn = String.length needle in
  let tn = String.length blanked in
  let rec scan from acc =
    if from + nn > tn then List.rev acc
    else
      match String.index_from_opt blanked from needle.[0] with
      | None -> List.rev acc
      | Some at when at + nn > tn -> List.rev acc
      | Some at ->
          if
            String.sub blanked at nn = needle
            && (at = 0 || not (is_ident_char blanked.[at - 1]))
            && (at + nn = tn || not (is_ident_char blanked.[at + nn]))
          then begin
            (* Expect [= [ ... ]] next (whitespace between tokens). *)
            let j = ref (at + nn) in
            while
              !j < tn && (blanked.[!j] = ' ' || blanked.[!j] = '\n')
            do
              incr j
            done;
            if !j < tn && blanked.[!j] = '=' then begin
              incr j;
              while
                !j < tn && (blanked.[!j] = ' ' || blanked.[!j] = '\n')
              do
                incr j
              done;
              if !j < tn && blanked.[!j] = '[' then begin
                let start = !j + 1 in
                let depth = ref 1 in
                let k = ref start in
                while !depth > 0 && !k < tn do
                  (match blanked.[!k] with
                  | '[' -> incr depth
                  | ']' -> decr depth
                  | _ -> ());
                  incr k
                done;
                let contents = String.sub blanked start (!k - 1 - start) in
                scan !k ((line_of_offset blanked at, contents) :: acc)
              end
              else scan (at + nn) acc
            end
            else scan (at + nn) acc
          end
          else scan (at + 1) acc
  in
  scan 0 []

(* Whether any [setup] body in the blanked text does real work. The
   no-op idiom is [setup = (fun _ ~n:_ ~budget:_ ~rng:_ -> []);] — after
   compacting whitespace, a trivial body ends in ["->[])"]. The body is
   taken as the span from [setup =] to the following [intervene]
   field. *)
let has_nontrivial_setup blanked =
  let lines = String.split_on_char '\n' blanked in
  let compact s =
    String.to_seq s
    |> Seq.filter (fun c -> c <> ' ' && c <> '\n' && c <> '\t')
    |> String.of_seq
  in
  let rec spans acc cur = function
    | [] -> List.rev (match cur with None -> acc | Some b -> b :: acc)
    | line :: rest ->
        let starts = has_token "setup" line && String.contains line '=' in
        let stops = has_token "intervene" line in
        if starts then spans acc (Some [ line ]) rest
        else
          (match cur with
          | Some body when stops -> spans (body :: acc) None rest
          | Some body -> spans acc (Some (line :: body)) rest
          | None -> spans acc None rest)
  in
  let bodies = spans [] None lines in
  List.exists
    (fun body ->
      let text = compact (String.concat "" (List.rev body)) in
      not
        (let suffixes = [ "->[])"; "->[]);" ] in
         List.exists
           (fun suf ->
             let sn = String.length suf in
             String.length text >= sn
             && String.sub text (String.length text - sn) sn = suf)
           suffixes))
    bodies

let unused_capability_findings ~path blanked =
  match caps_decl_regions blanked with
  | [] -> []
  | (first_line, _) :: _ as regions ->
      (* Constructors appear either bare (under a local open) or
         module-qualified; [has_token] treats [M.X] as one unit, so
         probe both spellings. *)
      let declared token =
        List.exists
          (fun (_, contents) ->
            has_token ("Capability." ^ token) contents
            || has_token token contents)
          regions
      in
      let used token =
        List.exists
          (fun line ->
            has_token ("Engine." ^ token) line || has_token token line)
          (String.split_on_char '\n' blanked)
      in
      let checks =
        [ ("setup-corruption", declared "Setup_corruption",
           has_nontrivial_setup blanked, "a setup body that corrupts no one");
          ("midround-corruption", declared "Midround_corruption",
           used "Corrupt", "no Corrupt action in its code");
          ("after-fact-removal", declared "After_fact_removal",
           used "Remove", "no Remove action in its code");
          ("injection", declared "Injection", used "Inject",
           "no Inject action in its code") ]
      in
      List.filter_map
        (fun (cap, is_declared, is_used, why) ->
          if is_declared && not is_used then
            Some
              { rule = Unused_capability;
                file = path;
                line = first_line;
                excerpt =
                  Printf.sprintf "declares %s but has %s" cap why }
          else None)
        checks

let scan_source ~path contents =
  let blanked = blank_comments_and_strings contents in
  let lines = String.split_on_char '\n' blanked in
  let raw_lines = String.split_on_char '\n' contents in
  let excerpt lineno =
    match List.nth_opt raw_lines (lineno - 1) with
    | Some l -> String.trim l
    | None -> ""
  in
  let hot =
    if is_engine path then hot_path_region lines else None
  in
  let in_hot_path lineno =
    match hot with
    | Some (first, last) -> lineno >= first && lineno <= last
    | None -> false
  in
  let findings = ref [] in
  let add rule lineno =
    findings := { rule; file = path; line = lineno; excerpt = excerpt lineno }
                :: !findings
  in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      if has_token ~qualified:`Allow "Obj.magic" line then add Obj_magic lineno;
      if
        (has_token "compare" line || has_token ~qualified:`Allow "Stdlib.compare" line)
        && not (defines_token "compare" line)
      then add Poly_compare lineno;
      if
        (has_token "exit" line || has_token ~qualified:`Allow "Stdlib.exit" line)
        && not (defines_token "exit" line)
      then add Stdlib_exit lineno;
      if in_hot_path lineno && has_token "failwith" line then
        add Failwith_hot_path lineno)
    lines;
  let unused =
    if is_attack path then unused_capability_findings ~path blanked else []
  in
  List.rev !findings @ unused

(* {2 Tree walk} *)

let rec walk_dir dir =
  if Sys.is_directory dir then
    Sys.readdir dir |> Array.to_list |> List.sort String.compare
    |> List.concat_map (fun entry -> walk_dir (Filename.concat dir entry))
  else [ dir ]

let relativize ~root path =
  let prefix = root ^ Filename.dir_sep in
  let pn = String.length prefix in
  if String.length path > pn && String.sub path 0 pn = prefix then
    String.sub path pn (String.length path - pn)
  else path

let scan_tree ~root =
  let lib = Filename.concat root "lib" in
  let files = if Sys.file_exists lib then walk_dir lib else [] in
  let findings =
    List.concat_map
      (fun path ->
        if Filename.check_suffix path ".ml" then begin
          let rel = relativize ~root path in
          let contents =
            let ic = open_in_bin path in
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          in
          let source_findings = scan_source ~path:rel contents in
          let mli = Filename.remove_extension path ^ ".mli" in
          if Sys.file_exists mli then source_findings
          else
            source_findings
            @ [ { rule = Missing_mli;
                  file = rel;
                  line = 1;
                  excerpt =
                    Printf.sprintf "no interface %s.mli"
                      (Filename.basename (Filename.remove_extension path)) } ]
        end
        else [])
      files
  in
  List.sort
    (fun a b ->
      match String.compare a.file b.file with
      | 0 -> Int.compare a.line b.line
      | c -> c)
    findings
