(** Bounded model checking over adversary schedules.

    ROADMAP item 4: instead of trusting that the eight hand-written
    attacks are the only interesting adversaries, search the adversary
    decision tree. A search {!instance} fixes the honest world — a
    protocol, a corruption model, [n], the budget [f], the inputs, one
    execution seed — and a per-protocol {!Basim.Schedule.compiler}
    fixes the injectable message vocabulary. The strategies then
    enumerate {!Basim.Schedule.t} values, compile each into a real
    {!Basim.Engine.adversary}, run it through the production engine,
    and judge the leaf with the production property checker
    ({!Basim.Properties}) {e and} {!Trace_lint.verify} — a schedule
    "wins" when consistency, validity or termination breaks, and a
    trace-lint finding on an interpreter-produced trace is itself a
    reportable bug ({!Trace_invariant}).

    Everything is deterministic: the engine seed is fixed per instance,
    DFS order is canonical, and random search draws from its own seeded
    SplitMix64 stream — same inputs, same findings, byte for byte. *)

type ('env, 'state, 'msg) instance = {
  protocol : ('env, 'state, 'msg) Basim.Engine.protocol;
  compiler : ('env, 'msg) Basim.Schedule.compiler;
  model : Basim.Corruption.model;
  n : int;
  budget : int;
  inputs : bool array;
  max_rounds : int;  (** engine round cap per leaf execution *)
  exec_seed : int64;  (** seed of every leaf execution *)
  check : inputs:bool array -> Basim.Engine.result -> Basim.Properties.verdict;
      (** the property checker judging each leaf (usually
          {!Basim.Properties.agreement}) *)
}

type outcome = {
  verdict : Basim.Properties.verdict;
  lint : Trace_lint.finding list;
      (** non-empty means the interpreter/engine pair broke a trace
          invariant — an internal error, not an adversary discovery *)
  rounds_used : int;
  corruptions : int;
}

val run_schedule : ('env, 'state, 'msg) instance -> Basim.Schedule.t -> outcome
(** Execute one schedule through the real engine and judge it. *)

type violation = Consistency | Validity | Termination | Trace_invariant

val violation_name : violation -> string
(** Stable tags: [consistency], [validity], [termination],
    [trace-invariant]. *)

val violations_of : outcome -> violation list

val violates : outcome -> bool

val minimize :
  ('env, 'state, 'msg) instance -> Basim.Schedule.t -> Basim.Schedule.t
(** Greedy delta-debugging: drop one setup corruption or one action at a
    time, keeping any drop after which the schedule still violates
    {e some} property, until no single drop survives. Returns the input
    unchanged if it does not violate anything. *)

type finding = {
  schedule : Basim.Schedule.t;  (** as discovered *)
  minimized : Basim.Schedule.t;  (** after {!minimize} (or [schedule]) *)
  violations : violation list;  (** of the minimized schedule *)
  verdict : Basim.Properties.verdict;  (** of the minimized schedule *)
  lint : Trace_lint.finding list;
}

type stats = {
  explored : int;  (** schedules executed *)
  violating : int;  (** violations found (before deduplication) *)
  node_cap_hit : bool;  (** DFS stopped at [max_nodes] *)
}

val finding_to_json : finding -> Baobs.Json.t

val stats_to_json : stats -> Baobs.Json.t

val to_report_items : finding list -> Report.item list
(** Findings as {!Report} items (label = the violated properties joined
    with [+]). *)

type space = {
  max_round : int;  (** actions allowed in rounds [0 .. max_round] *)
  max_actions : int;  (** total actions (setup included) per schedule *)
  actions_per_round : int;
  dsts : Basim.Schedule.dst list;  (** injection-target vocabulary *)
  remove_indices : int list;  (** wire indices removal may target *)
  allow_setup : bool;  (** enumerate setup-time corruptions too *)
}

val default_space : max_round:int -> space
(** [max_actions = 4], [actions_per_round = 4],
    [dsts = [Everyone]], [remove_indices = [0]],
    [allow_setup = false]. *)

val dfs :
  space:space ->
  ?stop_at_first:bool ->
  ?max_nodes:int ->
  ?shrink:bool ->
  ('env, 'state, 'msg) instance ->
  finding list * stats
(** Exhaustive enumeration of canonical schedules, smallest first along
    each branch. Pruning (all symmetry-safe): within a round actions
    are strictly rank-ordered (corruptions, removals, injections);
    infeasible actions — over-budget or duplicate corruptions,
    removals from nodes not corrupted this round, injections from
    honest nodes — are never generated (the interpreter would skip
    them, so those schedules are equivalent to already-enumerated
    ones); [Halt] and empty rounds are never generated (truncation
    equivalence); violating schedules are not extended. [max_nodes]
    (default 200_000) caps executed schedules; [stop_at_first]
    (default true) stops at the first violation; [shrink] (default
    true) runs {!minimize} on each discovery. *)

val random_search :
  space:space ->
  ?samples:int ->
  ?stop_at_first:bool ->
  ?shrink:bool ->
  seed:int64 ->
  ('env, 'state, 'msg) instance ->
  finding list * stats
(** Budgeted random search for spaces too large to exhaust: [samples]
    (default 1000) uniform schedules over the same vocabulary, legality
    left to the interpreter's skip semantics. Deterministic in
    [seed]. *)
