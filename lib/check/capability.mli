(** Adversary-capability checking with typed findings.

    Re-exports {!Basim.Capability} (the declaration vocabulary lives in
    the simulator so adversary records can carry it) and layers the
    static-analysis entry points on top: {!check} turns a declaration ×
    model × budget triple into findings, and {!table} renders the
    capability matrix of a set of named adversaries as JSON for reports
    and docs. *)

type cap = Basim.Capability.t =
  | Setup_corruption
  | Midround_corruption
  | After_fact_removal
  | Injection

type decl = Basim.Capability.decl = {
  caps : cap list;
  budget_bound : int option;
}

type finding = {
  adversary : string;  (** adversary name, or ["<decl>"] when unnamed *)
  mismatch : Basim.Capability.mismatch;
  message : string;
}

val check :
  ?adversary:string ->
  decl ->
  model:Basim.Corruption.model ->
  budget:int ->
  finding list
(** Validate a declared capability set against a corruption model (via
    {!Basim.Corruption.allows_removal} /
    {!Basim.Corruption.allows_dynamic_corruption}) and the granted
    budget. [[]] means consistent. *)

val check_adversary :
  ('env, 'msg) Basim.Engine.adversary -> budget:int -> finding list
(** {!check} applied to an adversary record's own declaration, name and
    model. *)

val pp_finding : Format.formatter -> finding -> unit

val finding_to_json : finding -> Baobs.Json.t

val decl_to_json : decl -> Baobs.Json.t
(** [{"caps": ["midround-corruption", ...], "budget_bound": n|null}]. *)

val table : (string * decl) list -> Baobs.Json.t
(** Capability matrix of named adversaries, one object per row. *)
