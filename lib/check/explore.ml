open Basim

type ('env, 'state, 'msg) instance = {
  protocol : ('env, 'state, 'msg) Engine.protocol;
  compiler : ('env, 'msg) Schedule.compiler;
  model : Corruption.model;
  n : int;
  budget : int;
  inputs : bool array;
  max_rounds : int;
  exec_seed : int64;
  check : inputs:bool array -> Engine.result -> Properties.verdict;
}

type outcome = {
  verdict : Properties.verdict;
  lint : Trace_lint.finding list;
  rounds_used : int;
  corruptions : int;
}

let run_schedule inst sched =
  let adversary = Schedule.to_adversary ~compiler:inst.compiler sched in
  let collector = Trace.collector () in
  let result =
    Engine.run ~tracer:(Trace.observe collector) inst.protocol ~adversary
      ~n:inst.n ~budget:inst.budget ~inputs:inst.inputs
      ~max_rounds:inst.max_rounds ~seed:inst.exec_seed
  in
  { verdict = inst.check ~inputs:inst.inputs result;
    lint =
      Trace_lint.verify ~metrics:result.Engine.metrics
        ~model:sched.Schedule.model ~budget:inst.budget
        (Trace.events collector);
    rounds_used = result.Engine.rounds_used;
    corruptions = result.Engine.corruptions }

type violation = Consistency | Validity | Termination | Trace_invariant

let violation_name = function
  | Consistency -> "consistency"
  | Validity -> "validity"
  | Termination -> "termination"
  | Trace_invariant -> "trace-invariant"

let violations_of o =
  (if o.verdict.Properties.consistent then [] else [ Consistency ])
  @ (if o.verdict.Properties.valid then [] else [ Validity ])
  @ (if o.verdict.Properties.terminated then [] else [ Termination ])
  @ if o.lint = [] then [] else [ Trace_invariant ]

let violates o = violations_of o <> []

(* {2 Minimization}

   Greedy delta-debugging: flatten the schedule into atomic items (one
   setup corruption or one (round, action) pair each), repeatedly try
   dropping a single item, keep any drop that preserves "the schedule
   still violates some property", restart until no single drop
   survives. Deterministic, and O(k^2) schedule executions for a k-item
   schedule — tiny for the bounded schedules search produces. *)

type mini_item = I_setup of int | I_step of int * Schedule.action

let flatten (s : Schedule.t) =
  List.map (fun i -> I_setup i) s.setup
  @ List.concat_map
      (fun (r, acts) -> List.map (fun a -> I_step (r, a)) acts)
      s.steps

let rebuild ~name ~model items =
  let setup =
    List.filter_map
      (function I_setup i -> Some i | I_step _ -> None)
      items
  in
  let steps =
    List.fold_right
      (fun it acc ->
        match it with
        | I_setup _ -> acc
        | I_step (r, a) -> (
            match acc with
            | (r', acts) :: tl when r' = r -> (r, a :: acts) :: tl
            | [] | _ :: _ -> (r, [ a ]) :: acc))
      items []
  in
  { Schedule.name; model; setup; steps }

let minimize inst (sched : Schedule.t) =
  let viol s = violates (run_schedule inst s) in
  if not (viol sched) then sched
  else begin
    let current = ref (flatten sched) in
    let progress = ref true in
    while !progress do
      progress := false;
      let k = List.length !current in
      let i = ref 0 in
      while (not !progress) && !i < k do
        let without = List.filteri (fun j _ -> j <> !i) !current in
        let candidate =
          rebuild ~name:sched.Schedule.name ~model:sched.Schedule.model without
        in
        if viol candidate then begin
          current := without;
          progress := true
        end;
        incr i
      done
    done;
    rebuild ~name:sched.Schedule.name ~model:sched.Schedule.model !current
  end

(* {2 Findings} *)

type finding = {
  schedule : Schedule.t;
  minimized : Schedule.t;
  violations : violation list;
  verdict : Properties.verdict;
  lint : Trace_lint.finding list;
}

type stats = { explored : int; violating : int; node_cap_hit : bool }

let finding_of inst ~shrink sched =
  let minimized = if shrink then minimize inst sched else sched in
  let o = run_schedule inst minimized in
  { schedule = sched;
    minimized;
    violations = violations_of o;
    verdict = o.verdict;
    lint = o.lint }

let verdict_to_json (v : Properties.verdict) =
  Baobs.Json.Obj
    [ ("consistent", Baobs.Json.Bool v.Properties.consistent);
      ("valid", Baobs.Json.Bool v.Properties.valid);
      ("terminated", Baobs.Json.Bool v.Properties.terminated) ]

let finding_to_json f =
  Baobs.Json.Obj
    [ ( "violations",
        Baobs.Json.List
          (List.map
             (fun v -> Baobs.Json.String (violation_name v))
             f.violations) );
      ("verdict", verdict_to_json f.verdict);
      ("schedule", Schedule.to_json f.schedule);
      ("minimized", Schedule.to_json f.minimized);
      ("trace_lint", Trace_lint.findings_to_json f.lint) ]

let stats_to_json s =
  Baobs.Json.Obj
    [ ("explored", Baobs.Json.Int s.explored);
      ("violating", Baobs.Json.Int s.violating);
      ("node_cap_hit", Baobs.Json.Bool s.node_cap_hit) ]

let to_report_items findings =
  List.map
    (fun f ->
      let label =
        match f.violations with
        | [] -> "none"
        | vs -> String.concat "+" (List.map violation_name vs)
      in
      { Report.label;
        detail =
          Format.asprintf "%s violated by %a (%d action(s))" label Schedule.pp
            f.minimized
            (Schedule.action_count f.minimized);
        data = finding_to_json f })
    findings

(* {2 Search space} *)

type space = {
  max_round : int;
  max_actions : int;
  actions_per_round : int;
  dsts : Schedule.dst list;
  remove_indices : int list;
  allow_setup : bool;
}

let default_space ~max_round =
  { max_round;
    max_actions = 4;
    actions_per_round = 4;
    dsts = [ Schedule.Everyone ];
    remove_indices = [ 0 ];
    allow_setup = false }

(* {2 Exhaustive DFS}

   Schedules are enumerated in a canonical form that quotients away
   order symmetries without losing adversary behaviours:

   - within a round, actions appear in strictly increasing rank —
     corruptions (by node), then removals (by victim, index), then
     injections (by src, kind, bit, dst). Reordering actions within a
     round never changes semantics beyond legality, and corruptions
     first maximizes legality, so one order per set suffices — and
     strict monotonicity also drops duplicate actions, which are no-ops;
   - only feasible actions are generated: corrupting an already-corrupt
     node or past the budget, removing from a node not corrupted this
     round, and injecting from an honest node are all skipped by the
     interpreter, so schedules containing them are equivalent to
     schedules already enumerated without them;
   - [Halt] is never generated: a schedule with a [Halt] is equivalent
     to the truncated schedule, which is enumerated on its own;
   - rounds with no actions are never represented, and a violating
     schedule is not extended further (its extensions would rediscover
     the same violation).

   Every node of the tree IS a schedule and is executed when first
   reached, so search order is by construction deterministic: same
   instance, same space, same seed, same findings. *)

let dfs ~space ?(stop_at_first = true) ?(max_nodes = 200_000)
    ?(shrink = true) inst =
  let kinds = Array.of_list inst.compiler.Schedule.kinds in
  let dsts = Array.of_list space.dsts in
  let nkinds = Array.length kinds in
  let ndsts = Array.length dsts in
  let explored = ref 0 in
  let violating = ref 0 in
  let cap_hit = ref false in
  let findings = ref [] in
  let budget_cap = min inst.budget inst.n in
  let exception Stop in
  (* State-independent canonical rank; classes are spaced far apart so
     component encodings never collide across classes. *)
  let rank_of = function
    | Schedule.Corrupt i -> i
    | Schedule.Remove { victim; index } ->
        (1 lsl 20) + (victim * 1024) + index
    | Schedule.Inject { src; kind; bit; dst } ->
        let kidx =
          let rec find i =
            if i >= nkinds then 0 else if kinds.(i) = kind then i else find (i + 1)
          in
          find 0
        in
        let didx =
          let rec find i =
            if i >= ndsts then 0
            else if dsts.(i) = dst then i
            else find (i + 1)
          in
          find 0
        in
        (2 lsl 20)
        + (((((src * nkinds) + kidx) * 2) + if bit then 1 else 0) * ndsts)
        + didx
    | Schedule.Halt -> 3 lsl 20
  in
  (* All feasible actions for [round], in canonical (ascending-rank)
     order. [corrupt] is everyone corrupted so far (ascending);
     [this_round] is the subset corrupted in this very round. *)
  let candidates ~round ~corrupt ~this_round ~used =
    let acc = ref [] in
    let add a = acc := a :: !acc in
    if
      used < budget_cap
      && (round < 0 || Corruption.allows_dynamic_corruption inst.model)
    then
      for i = 0 to inst.n - 1 do
        if not (List.mem i corrupt) then add (Schedule.Corrupt i)
      done;
    if round >= 0 && Corruption.allows_removal inst.model then
      List.iter
        (fun victim ->
          List.iter
            (fun index -> add (Schedule.Remove { victim; index }))
            space.remove_indices)
        this_round;
    if round >= 0 then
      List.iter
        (fun src ->
          Array.iter
            (fun kind ->
              List.iter
                (fun bit ->
                  Array.iter
                    (fun dst -> add (Schedule.Inject { src; kind; bit; dst }))
                    dsts)
                [ false; true ])
            kinds)
        corrupt;
    List.rev !acc
  in
  let corrupts_in acts =
    List.filter_map
      (function
        | Schedule.Corrupt i -> Some i
        | Schedule.Remove _ | Schedule.Inject _ | Schedule.Halt -> None)
      acts
  in
  (* [steps_rev]: rounds in reverse order, each with actions in forward
     order. [corrupt]: ascending. *)
  let rec explore ~setup ~steps_rev ~corrupt ~used ~total =
    if !explored >= max_nodes then begin
      cap_hit := true;
      raise Stop
    end;
    incr explored;
    let sched =
      { Schedule.name = Printf.sprintf "dfs-%d" !explored;
        model = inst.model;
        setup;
        steps = List.rev steps_rev }
    in
    let o = run_schedule inst sched in
    if violates o then begin
      incr violating;
      findings := finding_of inst ~shrink sched :: !findings;
      if stop_at_first then raise Stop
      (* pruning: extensions of a violating schedule are not explored *)
    end
    else if total < space.max_actions then begin
      (* Extend the setup set (canonical: ascending, and only before any
         mid-round step exists). *)
      if space.allow_setup && steps_rev = [] && used < budget_cap then begin
        let last = match List.rev setup with [] -> -1 | i :: _ -> i in
        for i = last + 1 to inst.n - 1 do
          explore ~setup:(setup @ [ i ])
            ~steps_rev:[]
            ~corrupt:(List.sort Int.compare (i :: corrupt))
            ~used:(used + 1) ~total:(total + 1)
        done
      end;
      (* Extend the current round (strictly increasing rank). *)
      (match steps_rev with
      | (r, acts) :: tl when List.length acts < space.actions_per_round ->
          let last_rank =
            match List.rev acts with [] -> -1 | a :: _ -> rank_of a
          in
          let this_round = corrupts_in acts in
          List.iter
            (fun a ->
              if rank_of a > last_rank then begin
                let corrupt', used' =
                  match a with
                  | Schedule.Corrupt i ->
                      (List.sort Int.compare (i :: corrupt), used + 1)
                  | Schedule.Remove _ | Schedule.Inject _ | Schedule.Halt ->
                      (corrupt, used)
                in
                explore ~setup
                  ~steps_rev:((r, acts @ [ a ]) :: tl)
                  ~corrupt:corrupt' ~used:used' ~total:(total + 1)
              end)
            (candidates ~round:r ~corrupt ~this_round ~used)
      | (_, _) :: _ | [] -> ());
      (* Open a later round. *)
      let first_round =
        match steps_rev with (r, _) :: _ -> r + 1 | [] -> 0
      in
      for r = first_round to space.max_round do
        List.iter
          (fun a ->
            let corrupt', used' =
              match a with
              | Schedule.Corrupt i ->
                  (List.sort Int.compare (i :: corrupt), used + 1)
              | Schedule.Remove _ | Schedule.Inject _ | Schedule.Halt ->
                  (corrupt, used)
            in
            explore ~setup
              ~steps_rev:((r, [ a ]) :: steps_rev)
              ~corrupt:corrupt' ~used:used' ~total:(total + 1))
          (candidates ~round:r ~corrupt ~this_round:[] ~used)
      done
    end
  in
  (try explore ~setup:[] ~steps_rev:[] ~corrupt:[] ~used:0 ~total:0
   with Stop -> ());
  ( List.rev !findings,
    { explored = !explored; violating = !violating; node_cap_hit = !cap_hit }
  )

(* {2 Budgeted random search}

   Uniform schedules over the same vocabulary, relying on the
   interpreter's skip semantics for legality. Deterministic in [seed]
   (a dedicated SplitMix64 stream; the engine seed stays [exec_seed]). *)

let random_search ~space ?(samples = 1_000) ?(stop_at_first = true)
    ?(shrink = true) ~seed inst =
  let rng = Bacrypto.Rng.create seed in
  let kinds = Array.of_list inst.compiler.Schedule.kinds in
  let dsts = Array.of_list space.dsts in
  let remove_indices = Array.of_list space.remove_indices in
  let explored = ref 0 in
  let violating = ref 0 in
  let findings = ref [] in
  let budget_cap = min inst.budget inst.n in
  (* Only draw action classes the corruption model permits: a schedule
     containing e.g. a [Remove] declares after-fact-removal, which the
     engine rejects outright under a non-strongly-adaptive model. *)
  let gen_corrupt () = Schedule.Corrupt (Bacrypto.Rng.int rng inst.n) in
  let gen_remove () =
    Schedule.Remove
      { victim = Bacrypto.Rng.int rng inst.n;
        index = Bacrypto.Rng.choose rng remove_indices }
  in
  let gen_inject () =
    Schedule.Inject
      { src = Bacrypto.Rng.int rng inst.n;
        kind = Bacrypto.Rng.choose rng kinds;
        bit = Bacrypto.Rng.bool rng;
        dst = Bacrypto.Rng.choose rng dsts }
  in
  let gen_halt () = Schedule.Halt in
  let action_gens =
    Array.of_list
      (List.concat
         [ (if Corruption.allows_dynamic_corruption inst.model then
              [ gen_corrupt ]
            else []);
           (if Corruption.allows_removal inst.model then [ gen_remove ]
            else []);
           [ gen_inject; gen_halt ] ])
  in
  let random_action () = (Bacrypto.Rng.choose rng action_gens) () in
  let random_schedule i =
    let setup =
      if space.allow_setup && budget_cap > 0 then
        Bacrypto.Rng.sample_without_replacement rng
          (Bacrypto.Rng.int rng (budget_cap + 1))
          inst.n
      else []
    in
    let total = 1 + Bacrypto.Rng.int rng space.max_actions in
    let acts =
      List.init total (fun _ ->
          (Bacrypto.Rng.int rng (space.max_round + 1), random_action ()))
    in
    let sorted =
      List.stable_sort (fun (r1, _) (r2, _) -> Int.compare r1 r2) acts
    in
    let steps =
      List.fold_right
        (fun (r, a) acc ->
          match acc with
          | (r', acts') :: tl when r' = r -> (r, a :: acts') :: tl
          | [] | _ :: _ -> (r, [ a ]) :: acc)
        sorted []
    in
    { Schedule.name = Printf.sprintf "random-%d" i;
      model = inst.model;
      setup;
      steps }
  in
  (try
     for i = 1 to samples do
       let sched = random_schedule i in
       incr explored;
       let o = run_schedule inst sched in
       if violates o then begin
         incr violating;
         findings := finding_of inst ~shrink sched :: !findings;
         if stop_at_first then raise Exit
       end
     done
   with Exit -> ());
  ( List.rev !findings,
    { explored = !explored; violating = !violating; node_cap_hit = false } )
