type block = { height : int; miner : int; bit : bool; id : string }

type env = { n : int; p : float; confirmations : int }

type msg = Chain of block list

let msg_kind (Chain _) = "chain"

type state = {
  me : int;
  input : bool;
  rng : Bacrypto.Rng.t;
  mutable chain : block list;  (* highest first; [] = genesis only *)
  mutable out : bool option;
  mutable stopped : bool;
}

let chain_bit chain =
  (* The decided bit travels in every block; genesis-only chains have
     no bit yet. *)
  match List.rev chain with [] -> None | first :: _ -> Some first.bit

(* Longest chain wins; ties by lexicographically smallest tip id. *)
let better_than candidate current =
  let lc = List.length candidate and lk = List.length current in
  if lc <> lk then lc > lk
  else
    match (candidate, current) with
    | [], _ -> false
    | _ :: _, [] -> true
    | tip_c :: _, tip_k :: _ -> String.compare tip_c.id tip_k.id < 0

let valid_chain chain =
  (* Heights must descend from the tip to 1. *)
  let rec check expected = function
    | [] -> expected = 0
    | b :: rest -> b.height = expected && check (expected - 1) rest
  in
  check (List.length chain) chain
  &&
  (* A chain's bit is constant from block 1 upward. *)
  match chain_bit chain with
  | None -> true
  | Some bit -> List.for_all (fun b -> b.bit = bit) chain

let protocol ~p ~confirmations =
  let make_env ~n _rng = { n; p; confirmations } in
  let init _env ~rng ~n:_ ~me ~input =
    { me; input; rng; chain = []; out = None; stopped = false }
  in
  let step env state ~round ~inbox =
    ignore round;
    (* Adopt the best valid chain seen. *)
    List.iter
      (fun (_src, Chain c) ->
        if valid_chain c && better_than c state.chain then state.chain <- c)
      inbox;
    (* Decide at the confirmation depth. *)
    if List.length state.chain >= env.confirmations then begin
      state.out <- chain_bit state.chain;
      state.stopped <- true;
      (state, [])
    end
    else begin
      (* Mining lottery. *)
      if Bacrypto.Rng.bernoulli state.rng env.p then begin
        let height = List.length state.chain + 1 in
        let bit =
          match chain_bit state.chain with
          | Some b -> b
          | None -> state.input
        in
        let id =
          Bacrypto.Sha256.digest_concat
            [ "block"; string_of_int height; string_of_int state.me;
              string_of_int (Bacrypto.Rng.int state.rng 1_000_000) ]
        in
        let block = { height; miner = state.me; bit; id } in
        state.chain <- block :: state.chain;
        (state, [ Basim.Engine.multicast (Chain state.chain) ])
      end
      else (state, [])
    end
  in
  { Basim.Engine.proto_name = "nakamoto";
    make_env;
    init;
    step;
    output = (fun s -> s.out);
    halted = (fun s -> s.stopped);
    msg_bits = (fun _ (Chain c) -> 8 + (List.length c * (32 + 32 + 1 + 256))) }

let chain_length s = List.length s.chain
