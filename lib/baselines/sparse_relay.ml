type env = { n : int; d : int; deadline : int }

type msg = Payload of bool

let msg_kind (Payload _) = "payload"

type state = {
  me : int;
  input : bool;
  mutable learned : bool option;
  mutable forwarded : bool;
  mutable out : bool option;
  mutable stopped : bool;
}

let successors ~n ~d i = List.init d (fun k -> (i + k + 1) mod n)

let protocol ~d =
  let make_env ~n _rng =
    if d <= 0 || d >= n then invalid_arg "Sparse_relay: need 0 < d < n";
    { n; d; deadline = ((n + d - 1) / d) + 2 }
  in
  let init _env ~rng:_ ~n:_ ~me ~input =
    { me;
      input;
      learned = (if me = 0 then Some input else None);
      forwarded = false;
      out = None;
      stopped = false }
  in
  let step env state ~round ~inbox =
    (* Learn the bit from the first copy received. *)
    (if state.learned = None then
       match inbox with
       | (_src, Payload b) :: _ -> state.learned <- Some b
       | [] -> ());
    if round >= env.deadline then begin
      state.out <- Some (Option.value state.learned ~default:false);
      state.stopped <- true;
      (state, [])
    end
    else begin
      match state.learned with
      | Some b when not state.forwarded ->
          state.forwarded <- true;
          ( state,
            [ { Basim.Engine.dst =
                  Basim.Engine.Only (successors ~n:env.n ~d:env.d state.me);
                payload = Payload b } ] )
      | Some _ | None -> (state, [])
    end
  in
  { Basim.Engine.proto_name = "sparse-relay";
    make_env;
    init;
    step;
    output = (fun s -> s.out);
    halted = (fun s -> s.stopped);
    msg_bits = (fun _ _ -> 1) }

let knows s = s.learned
