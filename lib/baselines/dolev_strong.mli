(** Dolev–Strong authenticated Byzantine Broadcast (1983) — the classic
    [f+1]-round, signature-chain protocol the paper cites ([13]) as the
    archetypal protocol that {e is} secure against a strongly adaptive
    adversary, at quadratic-plus communication cost.

    Round 0: the designated sender signs its bit and multicasts it.
    Rounds 1…f+1: on receiving a bit [b] carried by a chain of [r]
    signatures from distinct nodes, the first of them the sender's, a node
    that has not yet extracted [b] adds [b] to its extracted set, appends
    its own signature, and relays. After round [f+1]: output the unique
    extracted bit, or the default bit 0 if zero or two bits were
    extracted.

    Because the protocol is deterministic and every honest node relays,
    erasing messages after the fact merely mimics corrupting the sender —
    it cannot create disagreement. The paper's Theorem 1 explains the
    price: its communication is [Ω(n²·f)] bits. Experiment E1 runs this
    protocol against the same strongly adaptive eraser that destroys the
    subquadratic protocol. *)

type env = {
  n : int;
  f : int;  (** tolerated corruptions: rounds = f + 2 *)
  sigs : Bacrypto.Signature.scheme;
}

type msg = {
  bit : bool;
  chain : (int * Bacrypto.Signature.tag) list;
      (** signature chain, sender first *)
}

val msg_kind : msg -> string
(** Stable kind label for causal tracing: ["propose"] for the designated
    sender's chain-of-one opener, ["relay"] for longer chains. *)

type state

val protocol :
  sender:int -> f:int -> (env, state, msg) Basim.Engine.protocol
(** Byzantine Broadcast with designated [sender], tolerating up to [f]
    corruptions. The engine's inputs array is read only at [sender]. *)

val bit_stmt : bool -> string
(** The statement every chain signature covers — exposed for adversaries
    forging corrupt-node links. *)

val valid_msg : env -> sender:int -> round:int -> msg -> bool
(** Chain validity at a given round: at least [round] distinct valid
    signatures, the first from the designated sender. *)
