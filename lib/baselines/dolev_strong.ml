open Bacrypto

type env = { n : int; f : int; sigs : Signature.scheme }

type msg = { bit : bool; chain : (int * Signature.tag) list }

(* Every Dolev-Strong message is a signature-chain relay; the chain
   length distinguishes the designated sender's opener from forwards. *)
let msg_kind m = if List.length m.chain <= 1 then "propose" else "relay"

module Iset = Set.Make (Int)

type state = {
  me : int;
  designated : int;
  input : bool;
  mutable extracted : (bool * (int * Signature.tag) list) list;
      (* extracted bits with a witnessing chain *)
  mutable relayed : bool list;  (* bits already relayed *)
  mutable out : bool option;
  mutable stopped : bool;
}

let bit_stmt bit = Printf.sprintf "ds:bit:%d" (if bit then 1 else 0)

(* A chain is valid at round r iff it has >= r distinct valid signatures
   on the bit and the first signer is the designated sender. *)
let valid_chain env ~designated ~round { bit; chain } =
  match chain with
  | [] -> false
  | (first, _) :: _ ->
      first = designated
      &&
      let distinct =
        List.fold_left
          (fun seen (node, tag) ->
            if Iset.mem node seen then seen
            else if Signature.verify env.sigs ~signer:node (bit_stmt bit) tag
            then Iset.add node seen
            else seen)
          Iset.empty chain
      in
      Iset.cardinal distinct >= round

let protocol ~sender ~f =
  let make_env ~n rng =
    if f >= n then invalid_arg "Dolev_strong: f must be below n";
    { n; f; sigs = Signature.setup ~n rng }
  in
  let init _env ~rng:_ ~n:_ ~me ~input =
    { me;
      designated = sender;
      input;
      extracted = [];
      relayed = [];
      out = None;
      stopped = false }
  in
  let step env state ~round ~inbox =
    if round = 0 then begin
      let sends =
        if state.me = sender then begin
          let tag = Signature.sign env.sigs ~signer:sender (bit_stmt state.input) in
          state.extracted <- [ (state.input, [ (sender, tag) ]) ];
          state.relayed <- [ state.input ];
          [ Basim.Engine.multicast { bit = state.input; chain = [ (sender, tag) ] } ]
        end
        else []
      in
      (state, sends)
    end
    else if round <= env.f + 1 then begin
      (* Extract newly certified bits and relay them with our signature. *)
      let sends = ref [] in
      List.iter
        (fun (_src, m) ->
          if
            valid_chain env ~designated:state.designated ~round m
            && not (List.mem_assoc m.bit state.extracted)
          then begin
            state.extracted <- (m.bit, m.chain) :: state.extracted;
            if (not (List.mem m.bit state.relayed)) && round <= env.f then begin
              state.relayed <- m.bit :: state.relayed;
              let tag = Signature.sign env.sigs ~signer:state.me (bit_stmt m.bit) in
              sends :=
                Basim.Engine.multicast
                  { bit = m.bit; chain = m.chain @ [ (state.me, tag) ] }
                :: !sends
            end
          end)
        inbox;
      (state, !sends)
    end
    else begin
      (* Round f+2: decide. *)
      (match state.extracted with
      | [ (b, _) ] -> state.out <- Some b
      | [] | _ :: _ :: _ -> state.out <- Some false);
      state.stopped <- true;
      (state, [])
    end
  in
  let msg_bits _env m =
    8 + (List.length m.chain * (32 + Signature.tag_bits))
  in
  { Basim.Engine.proto_name = "dolev-strong";
    make_env;
    init;
    step;
    output = (fun s -> s.out);
    halted = (fun s -> s.stopped);
    msg_bits }

let valid_msg env ~sender ~round m = valid_chain env ~designated:sender ~round m
