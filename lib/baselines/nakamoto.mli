(** A synchronous, round-based Nakamoto-style longest-chain protocol —
    the paper's comparator for round complexity (§1: "Nakamoto style
    protocols, either proof-of-work or proof-of-stake-based, {e cannot}
    achieve expected constant round").

    Per round, each node wins the block lottery independently with
    probability [p] (abstracting proof-of-work/stake); a winner extends
    its current chain with a block carrying the chain's {e decided bit} —
    the bit of the genesis-successor block, set from the miner's input
    when it mines height 1 — and multicasts the new chain. Nodes adopt
    the longest chain they see (ties broken by block hash).

    A node outputs once its chain reaches [confirmations] blocks: it
    outputs the bit of block 1. Expected rounds to confirmation is
    [≈ confirmations / (n·p)] — {e linear} in the security parameter
    [confirmations], which is exactly the contrast experiment E3 draws
    against {!Bacore.Sub_hm}'s expected-constant rounds. Chains are
    transmitted whole, so late blocks also cost more bits: the protocol
    is communication-expensive at high confirmation depths. *)

type block = {
  height : int;
  miner : int;
  bit : bool;      (** the chain's decided bit, fixed at height 1 *)
  id : string;     (** block hash (ties) *)
}

type env = {
  n : int;
  p : float;             (** per-node per-round mining probability *)
  confirmations : int;   (** depth at which a node decides *)
}

type msg = Chain of block list
(** Highest block first. *)

val msg_kind : msg -> string
(** Stable kind label for causal tracing: always ["chain"]. *)

type state

val protocol :
  p:float -> confirmations:int -> (env, state, msg) Basim.Engine.protocol

val chain_length : state -> int
(** Inspectable for tests. *)
