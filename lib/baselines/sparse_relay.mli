(** A deterministic low-message broadcast strawman — the Dolev–Reischuk
    victim of experiment E1b.

    The designated sender (node 0) knows the bit; in every round, every
    node that learned the bit in the previous round forwards it by
    {e unicast} to its [d] ring successors (node [i] sends to
    [i+1 … i+d mod n]). A node outputs the first bit it receives; after
    [⌈n/d⌉ + 2] rounds, a node that received nothing outputs the default
    bit 0.

    Total messages: at most [n·d] — subquadratic whenever
    [d < (f/2)²/n]. Dolev–Reischuk (and the paper's Theorem 4) says any
    such protocol is breakable: the {!Baattacks.Dolev_reischuk} adversary
    isolates a victim by corrupting its [d] in-ring predecessors and
    suppressing exactly the copies addressed to the victim, producing a
    consistency violation with [d ≤ f] corruptions. Redundancy [d > f]
    defeats the attack — at which point the protocol sends [> n·f]
    messages, i.e. [Ω(f²)] when [n = Θ(f)]: the lower bound's shape,
    observed experimentally. *)

type env = {
  n : int;
  d : int;              (** redundancy: each knower feeds d successors *)
  deadline : int;       (** round at which silent nodes give up *)
}

type msg = Payload of bool

val msg_kind : msg -> string
(** Stable kind label for causal tracing: always ["payload"]. *)

type state

val protocol : d:int -> (env, state, msg) Basim.Engine.protocol
(** Broadcast from node 0 with redundancy [d]. *)

val successors : n:int -> d:int -> int -> int list
(** [successors ~n ~d i] — the ring successors [i] forwards to. *)

val knows : state -> bool option
(** What the node has learned so far (inspectable for attacks/tests). *)
