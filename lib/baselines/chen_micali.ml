open Bacore

type env = {
  n : int;
  params : Params.t;
  elig : Bafmine.Eligibility.t;
  fs : Bacrypto.Forward_secure.scheme;
  erasure : bool;
  fmine : Bafmine.Fmine.t option;
  conflicts : int Atomic.t;
}

type msg =
  | Propose of { epoch : int; bit : bool; cred : Bafmine.Eligibility.credential }
  | Ack of {
      epoch : int;
      bit : bool;
      cred : Bafmine.Eligibility.credential;
      fs_sig : Bacrypto.Forward_secure.tag;
    }

let msg_kind = function Propose _ -> "propose" | Ack _ -> "ack"

module Iset = Set.Make (Int)

type state = {
  me : int;
  rng : Bacrypto.Rng.t;
  mutable belief : bool;
  mutable sticky : bool;
  mutable out : bool option;
  mutable stopped : bool;
}

let ack_mining_string ~epoch = Printf.sprintf "cm:ACK:%d" epoch

let propose_mining_string ~epoch ~bit =
  Printf.sprintf "cm:Propose:%d:%d" epoch (if bit then 1 else 0)

let ack_bit_stmt ~epoch ~bit =
  Printf.sprintf "cm:ackbit:%d:%d" epoch (if bit then 1 else 0)

let ack_probability env = Params.ack_probability env.params ~n:env.n

let propose_probability env = Params.propose_probability ~n:env.n

let make_ack ~epoch ~bit ~cred ~fs_sig = Ack { epoch; bit; cred; fs_sig }

let verify_msg (env : env) ~sender = function
  | Propose { epoch; bit; cred } ->
      env.elig.Bafmine.Eligibility.verify ~node:sender
        ~msg:(propose_mining_string ~epoch ~bit)
        ~p:(propose_probability env) cred
  | Ack { epoch; bit; cred; fs_sig } ->
      (* Round-specific ticket plus a slot signature binding the bit. *)
      env.elig.Bafmine.Eligibility.verify ~node:sender
        ~msg:(ack_mining_string ~epoch) ~p:(ack_probability env) cred
      && Bacrypto.Forward_secure.verify env.fs ~signer:sender ~slot:epoch
           (ack_bit_stmt ~epoch ~bit) fs_sig

let tally (env : env) (state : state) ~prev_epoch ~inbox =
  let quorum = Params.third_quorum env.params in
  let ackers_for target =
    List.fold_left
      (fun acc (sender, m) ->
        match m with
        | Ack { epoch; bit; _ }
          when epoch = prev_epoch && bit = target && verify_msg env ~sender m ->
            Iset.add sender acc
        | Ack _ | Propose _ -> acc)
      Iset.empty inbox
  in
  let ample b = Iset.cardinal (ackers_for b) >= quorum in
  match (ample false, ample true) with
  | true, false ->
      state.belief <- false;
      state.sticky <- true
  | false, true ->
      state.belief <- true;
      state.sticky <- true
  | true, true ->
      Atomic.incr env.conflicts;
      state.sticky <- true
  | false, false -> state.sticky <- false

let choose_ack (env : env) (state : state) ~epoch ~inbox =
  let proposals =
    List.filter_map
      (fun (sender, m) ->
        match m with
        | Propose { epoch = e; bit; _ } when e = epoch && verify_msg env ~sender m ->
            Some bit
        | Propose _ | Ack _ -> None)
      inbox
  in
  if state.sticky then state.belief
  else
    match List.sort_uniq Bool.compare proposals with
    | [] -> state.belief
    | [ b ] -> b
    | _ :: _ -> false

let protocol ~params ~erasure =
  let make_env ~n rng =
    let fmine = Bafmine.Fmine.create rng in
    { n;
      params;
      elig = Bafmine.Eligibility.hybrid fmine;
      fs = Bacrypto.Forward_secure.setup ~n rng;
      erasure;
      fmine = Some fmine;
      conflicts = Atomic.make 0 }
  in
  let init _env ~rng ~n:_ ~me ~input =
    { me; rng; belief = input; sticky = true; out = None; stopped = false }
  in
  let step env state ~round ~inbox =
    let epoch = round / 2 in
    if epoch >= env.params.Params.max_epochs then begin
      state.out <- Some state.belief;
      state.stopped <- true;
      (state, [])
    end
    else if round mod 2 = 0 then begin
      if epoch > 0 then tally env state ~prev_epoch:(epoch - 1) ~inbox;
      let coin = Bacrypto.Rng.bool state.rng in
      let sends =
        match
          env.elig.Bafmine.Eligibility.mine ~node:state.me
            ~msg:(propose_mining_string ~epoch ~bit:coin)
            ~p:(propose_probability env)
        with
        | Some cred -> [ Basim.Engine.multicast (Propose { epoch; bit = coin; cred }) ]
        | None -> []
      in
      (state, sends)
    end
    else begin
      let bit = choose_ack env state ~epoch ~inbox in
      let sends =
        match
          env.elig.Bafmine.Eligibility.mine ~node:state.me
            ~msg:(ack_mining_string ~epoch) ~p:(ack_probability env)
        with
        | Some cred ->
            let fs_sig =
              Bacrypto.Forward_secure.sign env.fs ~signer:state.me ~slot:epoch
                (ack_bit_stmt ~epoch ~bit)
            in
            [ Basim.Engine.multicast (make_ack ~epoch ~bit ~cred ~fs_sig) ]
        | None -> []
      in
      (* The ephemeral-key discipline: erase the slot key atomically with
         the send, before the adversary can corrupt us this round. *)
      if env.erasure then
        Bacrypto.Forward_secure.update env.fs ~signer:state.me ~slot:(epoch + 1);
      (state, sends)
    end
  in
  let msg_bits env m =
    let cred_bits c = env.elig.Bafmine.Eligibility.credential_bits c in
    match m with
    | Propose { cred; _ } -> 48 + cred_bits cred
    | Ack { cred; _ } -> 48 + cred_bits cred + 256
  in
  { Basim.Engine.proto_name =
      (if erasure then "chen-micali" else "chen-micali-no-erasure");
    make_env;
    init;
    step;
    output = (fun s -> s.out);
    halted = (fun s -> s.stopped);
    msg_bits }
