(** The §1 strawman: committee election from a common random string.

    With a trusted CRS chosen independently of the adversary's corruption
    choices, a [λ]-sized public committee runs agreement and announces the
    result; everyone else adopts the committee majority. This is
    communication-efficient and perfectly fine against a {e static}
    adversary — and hopeless against an adaptive one, which "can simply
    observe what nodes are on the committee, then corrupt them, and
    thereby control the whole committee" (§1). Experiment E8 stages
    exactly that takeover and contrasts it with {!Bacore.Sub_hm}, whose
    secret, vote-specific committees the adversary cannot find in time.

    Protocol: round 0 — committee members multicast signed votes for
    their inputs; round 1 — committee members multicast signed Result
    messages carrying the majority of round-0 committee votes; round 2 —
    every node outputs the majority of Result announcements and halts. *)

type env = {
  n : int;
  committee : int list;  (** the CRS-selected committee — public *)
  sigs : Bacrypto.Signature.scheme;
}

type msg =
  | Committee_vote of { bit : bool; tag : Bacrypto.Signature.tag }
  | Result of { bit : bool; tag : Bacrypto.Signature.tag }

val msg_kind : msg -> string
(** Stable kind label for causal tracing: ["committee_vote"] or
    ["result"]. *)

type state

val protocol :
  committee_size:int -> (env, state, msg) Basim.Engine.protocol

val vote_stmt : bool -> string
(** Signed statement of a committee vote (for adversarial forgeries from
    corrupt committee members). *)

val result_stmt : bool -> string

val sign_result : env -> signer:int -> bit:bool -> msg
(** Build a signed Result announcement for a corrupt committee member. *)
