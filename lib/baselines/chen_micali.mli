(** A Chen–Micali-style subquadratic BA — the approach the paper's §3.2
    describes and improves on.

    Like {!Bacore.Sub_third}, every epoch a committee ACKs a bit. But the
    eligibility ticket here names only [(ACK, epoch)] — {e round-specific,
    not bit-specific} — and the protection against the §3.3 equivocation
    attack comes from somewhere else: the ACK's bit is signed with a
    {b round-specific forward-secure key} that the node {e erases
    immediately after sending} (Chen–Micali's "ephemeral keys", the
    memory-erasure model). An adversary that corrupts the node right
    after its ACK can reuse the eligibility ticket for the opposite bit —
    but cannot produce the slot signature, because the key is gone.

    The [erasure] switch turns the memory-erasure assumption off: honest
    nodes never update their keys, corruption reveals the master key, and
    the §3.3 attack succeeds — which is the paper's argument that
    Chen–Micali {e needs} the erasure model, while bit-specific
    eligibility (the paper's protocol) needs nothing. Experiment E5b runs
    the three designs side by side.

    Tolerates [f < (1/3 − ε)n] like the §3 protocols; hybrid
    ([Fmine]-based) eligibility. *)

type env = {
  n : int;
  params : Bacore.Params.t;
  elig : Bafmine.Eligibility.t;
  fs : Bacrypto.Forward_secure.scheme;
  erasure : bool;            (** the memory-erasure assumption *)
  fmine : Bafmine.Fmine.t option;
  conflicts : int Atomic.t;
      (** within-epoch ample-ACKs-for-both-bits observations, as in
          {!Bacore.Sub_third} *)
}

type msg =
  | Propose of {
      epoch : int;
      bit : bool;
      cred : Bafmine.Eligibility.credential;
    }
  | Ack of {
      epoch : int;
      bit : bool;
      cred : Bafmine.Eligibility.credential;  (** round-specific ticket *)
      fs_sig : Bacrypto.Forward_secure.tag;   (** slot-[epoch] signature on the bit *)
    }

val msg_kind : msg -> string
(** Stable kind label for causal tracing: ["propose"] or ["ack"]. *)

type state

val protocol :
  params:Bacore.Params.t -> erasure:bool ->
  (env, state, msg) Basim.Engine.protocol

val ack_mining_string : epoch:int -> string
(** The (bit-agnostic) ticket string, ["cm:ACK:<epoch>"]. *)

val ack_bit_stmt : epoch:int -> bit:bool -> string
(** The statement the forward-secure slot signature covers. *)

val make_ack :
  epoch:int -> bit:bool -> cred:Bafmine.Eligibility.credential ->
  fs_sig:Bacrypto.Forward_secure.tag -> msg
(** Assemble an ACK — used by the adversary for corrupt nodes. *)

val ack_probability : env -> float
(** [λ/n]. *)
