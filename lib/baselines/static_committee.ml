open Bacrypto

type env = { n : int; committee : int list; sigs : Signature.scheme }

type msg =
  | Committee_vote of { bit : bool; tag : Signature.tag }
  | Result of { bit : bool; tag : Signature.tag }

let msg_kind = function
  | Committee_vote _ -> "committee_vote"
  | Result _ -> "result"

type state = {
  me : int;
  input : bool;
  mutable out : bool option;
  mutable stopped : bool;
}

let vote_stmt bit = Printf.sprintf "sc:vote:%d" (if bit then 1 else 0)

let result_stmt bit = Printf.sprintf "sc:result:%d" (if bit then 1 else 0)

let sign_result env ~signer ~bit =
  Result { bit; tag = Signature.sign env.sigs ~signer (result_stmt bit) }

let compare_vote (a, x) (b, y) =
  match Int.compare a b with 0 -> Bool.compare x y | c -> c

let majority pairs =
  let ones = List.length (List.filter snd pairs) in
  let zeros = List.length pairs - ones in
  ones > zeros

let protocol ~committee_size =
  let make_env ~n rng =
    if committee_size <= 0 || committee_size > n then
      invalid_arg "Static_committee: bad committee size";
    let committee = Rng.sample_without_replacement rng committee_size n in
    { n; committee; sigs = Signature.setup ~n rng }
  in
  let init _env ~rng:_ ~n:_ ~me ~input = { me; input; out = None; stopped = false } in
  let on_committee env me = List.mem me env.committee in
  let step env state ~round ~inbox =
    match round with
    | 0 ->
        let sends =
          if on_committee env state.me then
            [ Basim.Engine.multicast
                (Committee_vote
                   { bit = state.input;
                     tag = Signature.sign env.sigs ~signer:state.me (vote_stmt state.input) }) ]
          else []
        in
        (state, sends)
    | 1 ->
        let sends =
          if on_committee env state.me then begin
            let votes =
              List.filter_map
                (fun (src, m) ->
                  match m with
                  | Committee_vote { bit; tag }
                    when List.mem src env.committee
                         && Signature.verify env.sigs ~signer:src (vote_stmt bit) tag ->
                      Some (src, bit)
                  | Committee_vote _ | Result _ -> None)
                inbox
            in
            let dedup = List.sort_uniq compare_vote votes in
            let bit = majority dedup in
            [ Basim.Engine.multicast
                (Result
                   { bit; tag = Signature.sign env.sigs ~signer:state.me (result_stmt bit) }) ]
          end
          else []
        in
        (state, sends)
    | _ ->
        let results =
          List.filter_map
            (fun (src, m) ->
              match m with
              | Result { bit; tag }
                when List.mem src env.committee
                     && Signature.verify env.sigs ~signer:src (result_stmt bit) tag ->
                  Some (src, bit)
              | Result _ | Committee_vote _ -> None)
            inbox
        in
        state.out <- Some (majority (List.sort_uniq compare_vote results));
        state.stopped <- true;
        (state, [])
  in
  { Basim.Engine.proto_name = "static-committee";
    make_env;
    init;
    step;
    output = (fun s -> s.out);
    halted = (fun s -> s.stopped);
    msg_bits = (fun _ _ -> 9 + Signature.tag_bits) }
