(** Fixed-size domain pool with a deterministic map-reduce.

    Monte-Carlo aggregates (E1–E11, the bench sweeps) are sums over
    independent seeded trials, so the trials can run on OCaml 5 domains
    in parallel — but the paper-fidelity story requires that turning
    parallelism on cannot change a single reported number. The contract
    here is therefore stronger than "a thread pool":

    - jobs are dispatched to workers in whatever order scheduling allows,
      but {!map} returns results in job-index order and {!map_reduce}
      merges them in job-index order — the output of both is a pure
      function of the job list, independent of pool size and of how the
      domains interleave;
    - a pool of size 1 spawns no domains at all and runs every job in
      the calling domain, so [~jobs:1] {e is} the sequential baseline,
      not a simulation of it.

    Each job must be self-contained (own RNG, own collectors, no writes
    to state shared with other jobs); the pool adds no synchronisation
    around job bodies beyond the dispatch itself. Stdlib-only:
    [Domain] + [Mutex]/[Condition], no [domainslib].

    Completion is tracked per submitted batch, so {e several driver
    domains may submit to one pool concurrently} — e.g. trial-level
    jobs running on one pool while each trial shards its intra-round
    work onto a second, process-wide pool. A submitting driver helps
    drain the shared queue while it waits, so it may execute jobs of
    another in-flight batch on its own stack; job bodies must therefore
    never block on the completion of other pool jobs.

    Pools are still not reentrant: calling {!map}/{!map_reduce}/{!shard}
    from inside a job of the {e same} pool is undefined (it can execute
    unrelated queued jobs on the caller's stack and deadlock on its own
    batch). Nesting across {e distinct} pools is fine. *)

type t

val create : jobs:int -> t
(** [create ~jobs] starts a pool of [jobs] executors: the calling domain
    plus [jobs - 1] worker domains ([jobs] is clamped to [1, 64]).
    Workers idle on a condition variable between batches. *)

val size : t -> int
(** Number of executors (including the calling domain). *)

val shutdown : t -> unit
(** Drain outstanding work, stop and join every worker domain.
    Idempotent. The pool must not be used afterwards. *)

val is_live : t -> bool
(** [false] once {!shutdown} has run. Pool-lifecycle bookkeeping (e.g.
    that {!Basim.Engine.set_intra_jobs} really retires a displaced
    pool) is asserted through this in test/test_par.ml. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] on a fresh pool and shuts it down when
    [f] returns or raises. *)

val default_jobs : unit -> int
(** The [BA_JOBS] environment variable when set to a positive integer,
    otherwise [Domain.recommended_domain_count ()]; clamped to [1, 64].
    This is the default parallelism for every [--jobs] flag in the
    repository, and the env knob CI uses to exercise the parallel path. *)

type worker_stats = {
  worker : int;          (** executor slot; 0 is the calling domain *)
  jobs_run : int;
  busy_ns : float;       (** wall-clock time spent inside job bodies *)
  queue_wait_ns : float; (** enqueue → dequeue latency, summed over jobs *)
  minor_words : float;   (** words the slot's jobs allocated in its
                             domain's minor heap ([Gc.minor_words] is
                             per-domain in OCaml 5) *)
}

val stats : t -> worker_stats list
(** Per-executor counters accumulated since {!create}, in slot order
    (caller first). Jobs are charged to the slot that executed them, so
    the [jobs_run] fields sum to the number of jobs submitted — the
    domain-pool utilization view resource telemetry reports. Counters
    are updated under the pool lock at job completion; a snapshot taken
    after {!map}/{!map_reduce} returns sees every job of that batch. *)

val map : pool:t -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~pool f xs] applies [f] to every element on the pool and
    returns the results in input order. If any application raised, the
    exception of the smallest-index failing element is re-raised (with
    its backtrace) after all jobs have finished. *)

val map_reduce :
  pool:t -> merge:('acc -> 'b -> 'acc) -> init:'acc -> (unit -> 'b) list -> 'acc
(** [map_reduce ~pool ~merge ~init jobs] runs every thunk on the pool
    and folds the results {e in job-index order}:
    [merge (… (merge (merge init r0) r1) …) r(k-1)]. For a pure [merge]
    this equals [List.fold_left (fun acc j -> merge acc (j ())) init jobs]
    for every pool size — determinism under parallelism. Exceptions are
    re-raised as in {!map}. *)

val shard : pool:t -> n:int -> (lo:int -> hi:int -> unit) -> unit
(** [shard ~pool ~n f] partitions the index range [\[0, n)] into
    [min (size pool) n] contiguous ascending chunks — chunk [c] is
    [\[n*c/chunks, n*(c+1)/chunks)] — and runs [f ~lo ~hi] for each
    chunk on the pool. The chunk boundaries depend only on [n] and the
    pool size, never on scheduling. If several chunks raise, the
    exception re-raised is the one from the smallest-index chunk, which
    for an [f] that scans its range in ascending order is the exception
    a sequential [f ~lo:0 ~hi:n] would have raised first. With a pool
    of size 1 (or [n <= 1]), [f ~lo:0 ~hi:n] runs directly on the
    caller — the sequential baseline itself, not a simulation of it. *)
