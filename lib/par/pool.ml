(* Fixed-size domain pool. One shared FIFO of closures, guarded by a
   mutex; workers sleep on [work] between batches, the driver sleeps on
   [idle] while the last in-flight jobs finish. Determinism does not
   live here — jobs complete in arbitrary order — it lives in
   [run_thunks], which gives every job a dedicated result slot and lets
   [map]/[map_reduce] read the slots in index order. *)

type job = unit -> unit

type t = {
  lock : Mutex.t;
  work : Condition.t;      (* signalled when the queue gains work / on shutdown *)
  idle : Condition.t;      (* signalled when [pending] returns to 0 *)
  queue : job Queue.t;
  mutable pending : int;   (* queued + currently running jobs *)
  mutable live : bool;
  mutable workers : unit Domain.t array;
  jobs : int;
}

let max_jobs = 64

let clamp_jobs j = if j < 1 then 1 else if j > max_jobs then max_jobs else j

let default_jobs () =
  let from_env =
    match Sys.getenv_opt "BA_JOBS" with
    | None -> None
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some j when j >= 1 -> Some j
        | Some _ | None -> None)
  in
  match from_env with
  | Some j -> clamp_jobs j
  | None -> clamp_jobs (Domain.recommended_domain_count ())

(* Run queued jobs until the queue is empty; expects [t.lock] held on
   entry and leaves it held on exit. Jobs never raise ([run_thunks]
   wraps them), so no Fun.protect is needed around the unlocked call. *)
let drain_queue t =
  while not (Queue.is_empty t.queue) do
    let job = Queue.pop t.queue in
    Mutex.unlock t.lock;
    job ();
    Mutex.lock t.lock;
    t.pending <- t.pending - 1;
    if t.pending = 0 then Condition.broadcast t.idle
  done

let worker t =
  Mutex.lock t.lock;
  let running = ref true in
  while !running do
    drain_queue t;
    if t.live then Condition.wait t.work t.lock else running := false
  done;
  Mutex.unlock t.lock

let create ~jobs =
  let jobs = clamp_jobs jobs in
  let t =
    { lock = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      queue = Queue.create ();
      pending = 0;
      live = true;
      workers = [||];
      jobs }
  in
  if jobs > 1 then
    t.workers <- Array.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let size t = t.jobs

let shutdown t =
  Mutex.lock t.lock;
  if t.live then begin
    t.live <- false;
    Condition.broadcast t.work;
    Mutex.unlock t.lock;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end
  else Mutex.unlock t.lock

let with_pool ~jobs f =
  let pool = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* Execute the thunks and return their outcomes in index order. The
   driver domain participates: it drains the queue alongside the
   workers, then waits for the stragglers. Slot [i] is written by
   exactly one executor and read only after [pending] has returned to 0
   under [lock], which orders the write before the read. *)
let run_thunks pool thunks =
  let arr = Array.of_list thunks in
  let count = Array.length arr in
  let results = Array.make count None in
  let cell i thunk () =
    results.(i) <-
      Some
        (try Ok (thunk ())
         with e -> Error (e, Printexc.get_raw_backtrace ()))
  in
  if Array.length pool.workers = 0 then
    Array.iteri (fun i thunk -> cell i thunk ()) arr
  else begin
    Mutex.lock pool.lock;
    Array.iteri (fun i thunk -> Queue.push (cell i thunk) pool.queue) arr;
    pool.pending <- pool.pending + count;
    Condition.broadcast pool.work;
    drain_queue pool;
    while pool.pending > 0 do
      Condition.wait pool.idle pool.lock
    done;
    Mutex.unlock pool.lock
  end;
  Array.map
    (function
      | Some outcome -> outcome
      | None -> invalid_arg "Bapar.Pool: missing result slot")
    results

let join_outcome = function
  | Ok v -> v
  | Error (e, bt) -> Printexc.raise_with_backtrace e bt

let map ~pool f xs =
  run_thunks pool (List.map (fun x () -> f x) xs)
  |> Array.to_list
  |> List.map join_outcome

let map_reduce ~pool ~merge ~init jobs =
  Array.fold_left
    (fun acc outcome -> merge acc (join_outcome outcome))
    init (run_thunks pool jobs)
