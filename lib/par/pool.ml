(* Fixed-size domain pool. One shared FIFO of closures, guarded by a
   mutex; workers sleep on [work] between batches, each submitting
   driver sleeps on its batch's [finished] condition while the batch's
   last in-flight jobs run. Determinism does not live here — jobs
   complete in arbitrary order — it lives in [run_thunks], which gives
   every job a dedicated result slot and lets [map]/[map_reduce] read
   the slots in index order.

   Completion is tracked per batch (not with a global pending counter)
   so that several driver domains may submit batches to one pool
   concurrently: the trial-level pool's workers can themselves shard
   intra-trial work onto a second pool without their waits entangling.

   Each executor slot additionally keeps utilization counters (jobs
   run, queue-wait, busy time, per-domain minor words) for the
   resource-telemetry layer. They are updated under [lock] in the same
   critical section that decrements the batch counter, so a [stats]
   snapshot taken after a batch returns sees every job of that batch;
   the counters observe the jobs without feeding anything back into
   them, so they cannot perturb the deterministic-merge contract. *)

type batch = {
  mutable remaining : int;   (* queued + running jobs of this batch *)
  finished : Condition.t;    (* signalled when [remaining] reaches 0 *)
}

type job = { enqueued_ns : float; body : unit -> unit; batch : batch }

type slot_stats = {
  mutable s_jobs : int;
  mutable s_busy_ns : float;
  mutable s_wait_ns : float;
  mutable s_minor_words : float;
}

type t = {
  lock : Mutex.t;
  work : Condition.t;      (* signalled when the queue gains work / on shutdown *)
  queue : job Queue.t;
  mutable live : bool;
  mutable workers : unit Domain.t array;
  slots : slot_stats array;  (* slot 0 = caller, 1.. = workers *)
  jobs : int;
}

let max_jobs = 64

let clamp_jobs j = if j < 1 then 1 else if j > max_jobs then max_jobs else j

let default_jobs () =
  let from_env =
    match Sys.getenv_opt "BA_JOBS" with
    | None -> None
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some j when j >= 1 -> Some j
        | Some _ | None -> None)
  in
  match from_env with
  | Some j -> clamp_jobs j
  | None -> clamp_jobs (Domain.recommended_domain_count ())

let now_ns () = Unix.gettimeofday () *. 1e9

(* Run one job body unlocked and return what the stats need: wall time
   inside the body and the minor words its execution allocated on this
   domain. Bodies never raise ([run_thunks] wraps them). *)
let execute body =
  let w0 = Gc.minor_words () in
  let t0 = now_ns () in
  body ();
  let busy = Float.max 0.0 (now_ns () -. t0) in
  let words = Float.max 0.0 (Gc.minor_words () -. w0) in
  (busy, words)

let charge slot ~wait ~busy ~words =
  slot.s_jobs <- slot.s_jobs + 1;
  slot.s_wait_ns <- slot.s_wait_ns +. wait;
  slot.s_busy_ns <- slot.s_busy_ns +. busy;
  slot.s_minor_words <- slot.s_minor_words +. words

(* Run queued jobs until the queue is empty; expects [t.lock] held on
   entry and leaves it held on exit. [slot] is the executor's stats
   slot (0 for a driver, worker index + 1 otherwise). A draining driver
   takes jobs in FIFO order regardless of batch, so it may execute jobs
   of a concurrently submitted batch — harmless, since job bodies never
   block on other jobs. *)
let drain_queue t slot =
  while not (Queue.is_empty t.queue) do
    let job = Queue.pop t.queue in
    let wait = Float.max 0.0 (now_ns () -. job.enqueued_ns) in
    Mutex.unlock t.lock;
    let busy, words = execute job.body in
    Mutex.lock t.lock;
    charge t.slots.(slot) ~wait ~busy ~words;
    job.batch.remaining <- job.batch.remaining - 1;
    if job.batch.remaining = 0 then Condition.broadcast job.batch.finished
  done

let worker t slot =
  Mutex.lock t.lock;
  let running = ref true in
  while !running do
    drain_queue t slot;
    if t.live then Condition.wait t.work t.lock else running := false
  done;
  Mutex.unlock t.lock

let create ~jobs =
  let jobs = clamp_jobs jobs in
  let t =
    { lock = Mutex.create ();
      work = Condition.create ();
      queue = Queue.create ();
      live = true;
      workers = [||];
      slots =
        Array.init jobs (fun _ ->
            { s_jobs = 0; s_busy_ns = 0.0; s_wait_ns = 0.0;
              s_minor_words = 0.0 });
      jobs }
  in
  if jobs > 1 then
    t.workers <-
      Array.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker t (i + 1)));
  t

let size t = t.jobs

let is_live t =
  Mutex.lock t.lock;
  let live = t.live in
  Mutex.unlock t.lock;
  live

type worker_stats = {
  worker : int;
  jobs_run : int;
  busy_ns : float;
  queue_wait_ns : float;
  minor_words : float;
}

let stats t =
  Mutex.lock t.lock;
  let snapshot =
    Array.to_list
      (Array.mapi
         (fun i s ->
           { worker = i;
             jobs_run = s.s_jobs;
             busy_ns = s.s_busy_ns;
             queue_wait_ns = s.s_wait_ns;
             minor_words = s.s_minor_words })
         t.slots)
  in
  Mutex.unlock t.lock;
  snapshot

let shutdown t =
  Mutex.lock t.lock;
  if t.live then begin
    t.live <- false;
    Condition.broadcast t.work;
    Mutex.unlock t.lock;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end
  else Mutex.unlock t.lock

let with_pool ~jobs f =
  let pool = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* Execute the thunks and return their outcomes in index order. The
   driver domain participates: it drains the queue alongside the
   workers, then waits for its batch's stragglers. Slot [i] is written
   by exactly one executor and read only after the batch counter has
   returned to 0 under [lock], which orders the write before the
   read. *)
let run_thunks pool thunks =
  let arr = Array.of_list thunks in
  let count = Array.length arr in
  let results = Array.make count None in
  let cell i thunk () =
    results.(i) <-
      Some
        (try Ok (thunk ())
         with e -> Error (e, Printexc.get_raw_backtrace ()))
  in
  if Array.length pool.workers = 0 then
    Array.iteri
      (fun i thunk ->
        (* Never queued: zero wait, all work charged to the caller. *)
        let busy, words = execute (cell i thunk) in
        Mutex.lock pool.lock;
        charge pool.slots.(0) ~wait:0.0 ~busy ~words;
        Mutex.unlock pool.lock)
      arr
  else begin
    let batch = { remaining = count; finished = Condition.create () } in
    Mutex.lock pool.lock;
    let enqueued_ns = now_ns () in
    Array.iteri
      (fun i thunk ->
        Queue.push { enqueued_ns; body = cell i thunk; batch } pool.queue)
      arr;
    Condition.broadcast pool.work;
    drain_queue pool 0;
    while batch.remaining > 0 do
      Condition.wait batch.finished pool.lock
    done;
    Mutex.unlock pool.lock
  end;
  Array.map
    (function
      | Some outcome -> outcome
      | None -> invalid_arg "Bapar.Pool: missing result slot")
    results

let join_outcome = function
  | Ok v -> v
  | Error (e, bt) -> Printexc.raise_with_backtrace e bt

let map ~pool f xs =
  run_thunks pool (List.map (fun x () -> f x) xs)
  |> Array.to_list
  |> List.map join_outcome

let map_reduce ~pool ~merge ~init jobs =
  Array.fold_left
    (fun acc outcome -> merge acc (join_outcome outcome))
    init (run_thunks pool jobs)

(* Contiguous ascending chunks: chunk [c] of [chunks] covers
   [n*c/chunks, n*(c+1)/chunks). Outcomes are joined in chunk-index
   order, so the exception that surfaces is the one raised at the
   globally smallest index — exactly what a sequential [f ~lo:0 ~hi:n]
   would raise first. *)
let shard ~pool ~n f =
  if n > 0 then begin
    let chunks = min (size pool) n in
    if chunks <= 1 then f ~lo:0 ~hi:n
    else
      let thunks =
        List.init chunks (fun c ->
            let lo = n * c / chunks and hi = n * (c + 1) / chunks in
            fun () -> f ~lo ~hi)
      in
      Array.iter join_outcome (run_thunks pool thunks)
  end
