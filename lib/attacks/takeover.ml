open Basim
open Babaselines

let make ~force () =
  let taken = ref [] in
  { Engine.adv_name = "committee-takeover";
    model = Corruption.Adaptive;
    caps =
      { Capability.caps =
          [ Capability.Midround_corruption; Capability.Injection ];
        budget_bound = None };
    setup = (fun _ ~n:_ ~budget:_ ~rng:_ -> []);
    intervene =
      (fun view ->
        let env = view.Engine.env in
        match view.Engine.round with
        | 0 ->
            (* The committee is public: grab as much of it as the budget
               allows, before its Result round. *)
            let budget = ref (Corruption.budget_left view.Engine.tracker) in
            taken :=
              List.filter
                (fun _c ->
                  if !budget > 0 then begin
                    decr budget;
                    true
                  end
                  else false)
                env.Static_committee.committee;
            List.map (fun c -> Engine.Corrupt c) !taken
        | 1 ->
            List.map
              (fun c ->
                Engine.Inject
                  { src = c;
                    dst = Engine.All;
                    payload =
                      Static_committee.sign_result env ~signer:c ~bit:force })
              !taken
        | _ -> []) }
