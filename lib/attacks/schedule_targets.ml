open Bacore

let sub_third : (Sub_third.env, Sub_third.msg) Basim.Schedule.compiler =
  { Basim.Schedule.kinds = [ "propose"; "ack" ];
    compile =
      (fun env ~round ~src ~kind ~bit ->
        let epoch = round / 2 in
        match kind with
        | "propose" -> (
            match
              env.Sub_third.elig.Bafmine.Eligibility.mine ~node:src
                ~msg:(Sub_third.propose_mining_string ~epoch ~bit)
                ~p:(Sub_third.propose_probability env)
            with
            | Some cred -> Some (Sub_third.make_propose ~epoch ~bit ~cred)
            | None -> None)
        | "ack" -> (
            match
              env.Sub_third.elig.Bafmine.Eligibility.mine ~node:src
                ~msg:(Sub_third.ack_mining_string env.Sub_third.mode ~epoch ~bit)
                ~p:(Sub_third.ack_probability env)
            with
            | Some cred -> Some (Sub_third.make_ack ~epoch ~bit ~cred)
            | None -> None)
        | _ -> None) }

let static_committee :
    (Babaselines.Static_committee.env, Babaselines.Static_committee.msg)
    Basim.Schedule.compiler =
  let open Babaselines in
  { Basim.Schedule.kinds = [ "vote"; "result" ];
    compile =
      (fun env ~round:_ ~src ~kind ~bit ->
        (* Honest nodes discard votes/results from outside the public
           committee, so such injections are unrealizable by
           construction — report them as infeasible rather than wasting
           search nodes on no-ops. *)
        if not (List.mem src env.Static_committee.committee) then None
        else
          match kind with
          | "vote" ->
              Some
                (Static_committee.Committee_vote
                   { bit;
                     tag =
                       Bacrypto.Signature.sign env.Static_committee.sigs
                         ~signer:src
                         (Static_committee.vote_stmt bit) })
          | "result" -> Some (Static_committee.sign_result env ~signer:src ~bit)
          | _ -> None) }

let split_vote_sub_third ~n ~budget ~max_rounds : Basim.Schedule.t =
  let corrupt = Split_vote.top_ids ~n ~budget in
  let round_actions r =
    let kind = if r mod 2 = 0 then "propose" else "ack" in
    List.concat_map
      (fun c ->
        List.map
          (fun bit ->
            Basim.Schedule.Inject
              { src = c;
                kind;
                bit;
                dst =
                  (if bit then Basim.Schedule.Upper_half
                   else Basim.Schedule.Lower_half) })
          [ false; true ])
      corrupt
  in
  { Basim.Schedule.name = "split-vote-sub3-transcript";
    model = Basim.Corruption.Adaptive;
    setup = corrupt;
    steps = List.init max_rounds (fun r -> (r, round_actions r)) }
