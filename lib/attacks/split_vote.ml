open Basim
open Bacore

let both_bits = [ false; true ]

(* Corrupt `budget` evenly spread node ids at setup, so the honest
   remainder keeps the same input mix in both network halves. *)
let top_ids ~n ~budget =
  if budget = 0 then []
  else List.sort_uniq Int.compare (List.init budget (fun k -> k * n / budget))

let lower_half n = Engine.Only (List.init (n / 2) (fun i -> i))

let upper_half n = Engine.Only (List.init (n - (n / 2)) (fun i -> (n / 2) + i))

let sub_third () =
  let corrupt_set = ref [] in
  { Engine.adv_name = "split-vote-sub3";
    model = Corruption.Adaptive;
    caps =
      { Capability.caps = [ Capability.Setup_corruption; Capability.Injection ];
        budget_bound = None };
    setup =
      (fun _ ~n ~budget ~rng:_ ->
        corrupt_set := top_ids ~n ~budget;
        !corrupt_set);
    intervene =
      (fun view ->
        let env = view.Engine.env in
        let epoch = view.Engine.round / 2 in
        let actions = ref [] in
        let inject src dst payload =
          actions := Engine.Inject { src; dst; payload } :: !actions
        in
        if view.Engine.round mod 2 = 0 then
          (* Propose round: targeted conflicting proposals. *)
          List.iter
            (fun c ->
              List.iter
                (fun bit ->
                  match
                    env.Sub_third.elig.Bafmine.Eligibility.mine ~node:c
                      ~msg:(Sub_third.propose_mining_string ~epoch ~bit)
                      ~p:(Sub_third.propose_probability env)
                  with
                  | Some cred ->
                      let dst =
                        if bit then upper_half env.Sub_third.n
                        else lower_half env.Sub_third.n
                      in
                      inject c dst (Sub_third.make_propose ~epoch ~bit ~cred)
                  | None -> ())
                both_bits)
            !corrupt_set
        else
          (* ACK round: double ACKs, each bit targeted at the half of the
             network already leaning that way, so each half keeps seeing
             "ample ACKs" for its own bit only and the split never heals. *)
          List.iter
            (fun c ->
              List.iter
                (fun bit ->
                  match
                    env.Sub_third.elig.Bafmine.Eligibility.mine ~node:c
                      ~msg:
                        (Sub_third.ack_mining_string env.Sub_third.mode ~epoch
                           ~bit)
                      ~p:(Sub_third.ack_probability env)
                  with
                  | Some cred ->
                      let dst =
                        if bit then upper_half env.Sub_third.n
                        else lower_half env.Sub_third.n
                      in
                      inject c dst (Sub_third.make_ack ~epoch ~bit ~cred)
                  | None -> ())
                both_bits)
            !corrupt_set;
        List.rev !actions) }

let sub_hm () =
  let corrupt_set = ref [] in
  (* Corrupt votes/commits assembled so far, per (iter, bit). *)
  let votes : (int * bool, (int * Bafmine.Eligibility.credential) list) Hashtbl.t =
    Hashtbl.create 16
  in
  let committed : (int * bool, bool) Hashtbl.t = Hashtbl.create 16 in
  let record table key entry =
    let existing = Option.value (Hashtbl.find_opt table key) ~default:[] in
    if not (List.mem_assoc (fst entry) existing) then
      Hashtbl.replace table key (entry :: existing)
  in
  { Engine.adv_name = "split-vote-shm";
    model = Corruption.Adaptive;
    caps =
      { Capability.caps = [ Capability.Setup_corruption; Capability.Injection ];
        budget_bound = None };
    setup =
      (fun _ ~n ~budget ~rng:_ ->
        corrupt_set := top_ids ~n ~budget;
        !corrupt_set);
    intervene =
      (fun view ->
        let env = view.Engine.env in
        let n = env.Sub_hm.n in
        let actions = ref [] in
        let inject src dst payload =
          actions := Engine.Inject { src; dst; payload } :: !actions
        in
        let mine node msg p = env.Sub_hm.elig.Bafmine.Eligibility.mine ~node ~msg ~p in
        let committee_p = Sub_hm.committee_probability env in
        let phase = Sub_hm.phase_of_round view.Engine.round in
        (match phase with
        | Quadratic_hm.Phase_vote 1 ->
            (* Iteration 1: votes need no proposal — double-vote. *)
            List.iter
              (fun c ->
                List.iter
                  (fun bit ->
                    match
                      mine c (Sub_hm.mining_string `Vote ~iter:1 ~bit) committee_p
                    with
                    | Some cred ->
                        record votes (1, bit) (c, cred);
                        inject c Engine.All
                          (Sub_hm.make_vote ~iter:1 ~bit ~proposal:None ~cred)
                    | None -> ())
                  both_bits)
              !corrupt_set
        | Quadratic_hm.Phase_propose iter ->
            (* Conflicting bare proposals to blockade honest voting. *)
            List.iter
              (fun c ->
                List.iter
                  (fun bit ->
                    match
                      mine c
                        (Sub_hm.mining_string `Propose ~iter ~bit)
                        (Sub_hm.propose_probability env)
                    with
                    | Some cred ->
                        inject c Engine.All
                          (Sub_hm.make_propose ~iter ~bit ~cert:None ~node:c ~cred)
                    | None -> ())
                  both_bits)
              !corrupt_set
        | Quadratic_hm.Phase_commit iter | Quadratic_hm.Phase_status iter ->
            (* Whenever the corrupt votes alone form a certificate, mine
               commits for it and storm the two halves with conflicting
               Commit messages. *)
            List.iter
              (fun bit ->
                let key = (iter, bit) in
                let vs = Option.value (Hashtbl.find_opt votes key) ~default:[] in
                if
                  List.length vs >= Sub_hm.quorum env
                  && not (Hashtbl.mem committed key)
                then begin
                  Hashtbl.replace committed key true;
                  let cert = Cert.make ~iter ~bit ~endorsements:vs in
                  let dst = if bit then upper_half n else lower_half n in
                  List.iter
                    (fun c ->
                      match
                        mine c (Sub_hm.mining_string `Commit ~iter ~bit) committee_p
                      with
                      | Some cred ->
                          inject c dst (Sub_hm.Commit { iter; bit; cert; cred })
                      | None -> ())
                    !corrupt_set
                end)
              both_bits
        | Quadratic_hm.Phase_vote _ -> ());
        List.rev !actions) }
