open Basim

let speakers view =
  Array.to_list view.Engine.intents
  |> List.filter_map (fun (node, intents) ->
         if intents = [] then None else Some (node, List.length intents))

let make () =
  { Engine.adv_name = "eraser";
    model = Corruption.Strongly_adaptive;
    caps =
      { Capability.caps =
          [ Capability.Midround_corruption; Capability.After_fact_removal ];
        budget_bound = None };
    setup = (fun _ ~n:_ ~budget:_ ~rng:_ -> []);
    intervene =
      (fun view ->
        let budget = ref (Corruption.budget_left view.Engine.tracker) in
        List.concat_map
          (fun (node, count) ->
            if !budget > 0 then begin
              decr budget;
              Engine.Corrupt node
              :: List.init count (fun index ->
                     Engine.Remove { victim = node; index })
            end
            else [])
          (speakers view)) }

let silencer () =
  { Engine.adv_name = "silencer";
    model = Corruption.Adaptive;
    caps =
      { Capability.caps = [ Capability.Midround_corruption ];
        budget_bound = None };
    setup = (fun _ ~n:_ ~budget:_ ~rng:_ -> []);
    intervene =
      (fun view ->
        let budget = ref (Corruption.budget_left view.Engine.tracker) in
        List.filter_map
          (fun (node, _) ->
            if !budget > 0 then begin
              decr budget;
              Some (Engine.Corrupt node)
            end
            else None)
          (speakers view)) }
