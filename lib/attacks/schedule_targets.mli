(** Per-protocol {!Basim.Schedule.compiler}s, plus hand-written attacks
    transcribed as schedules.

    A schedule names injected messages abstractly — [(kind, bit)] — and
    a compiler realizes them against a concrete protocol: mining real
    eligibility credentials, producing real signatures, or reporting the
    message unrealizable ([None]). These compilers are what
    [Bacheck.Explore] and [ba_explore] search over; the transcriptions
    pin the interpreter to the hand-written attacks (a schedule
    transcribing {!Split_vote.sub_third} must produce a byte-identical
    seeded trace). *)

val sub_third :
  (Bacore.Sub_third.env, Bacore.Sub_third.msg) Basim.Schedule.compiler
(** Kinds ["propose"] and ["ack"]: epoch is [round / 2] (matching the
    protocol's round layout — proposals land on even rounds, ACKs on odd
    rounds), the bit picks the mining string, and realization requires
    winning the corresponding eligibility ticket for [src]. *)

val static_committee :
  (Babaselines.Static_committee.env, Babaselines.Static_committee.msg)
  Basim.Schedule.compiler
(** Kinds ["vote"] and ["result"]: validly signed committee messages
    from [src]; unrealizable when [src] is not on the public committee
    (honest nodes would discard them anyway). *)

val split_vote_sub_third :
  n:int -> budget:int -> max_rounds:int -> Basim.Schedule.t
(** {!Split_vote.sub_third} as data: the same setup corrupt set
    ({!Split_vote.top_ids}) and, every round, the same
    per-corrupt-node × per-bit targeted injections (bit 0 to the lower
    half, bit 1 to the upper half; proposals on even rounds, ACKs on
    odd). Interpreting this schedule against {!sub_third} reproduces the
    hand-written attack's seeded trace byte for byte — the equivalence
    test that anchors the interpreter's semantics. *)
