open Basim
open Babaselines

let make () =
  { Engine.adv_name = "cm-equivocator";
    model = Corruption.Adaptive;
    caps =
      { Capability.caps =
          [ Capability.Midround_corruption; Capability.Injection ];
        budget_bound = None };
    setup = (fun _ ~n:_ ~budget:_ ~rng:_ -> []);
    intervene =
      (fun view ->
        let env = view.Engine.env in
        let budget = ref (Corruption.budget_left view.Engine.tracker) in
        let actions = ref [] in
        Array.iter
          (fun (node, intents) ->
            List.iter
              (fun { Engine.payload; _ } ->
                match payload with
                | Chen_micali.Ack { epoch; bit; cred; fs_sig = _ }
                  when !budget > 0 ->
                    decr budget;
                    actions := Engine.Corrupt node :: !actions;
                    (* The ticket is round-specific: it replays for free.
                       The forgery stands or falls with the slot key. *)
                    let capability =
                      Bacrypto.Forward_secure.corrupt env.Chen_micali.fs
                        ~erasure:env.Chen_micali.erasure node
                    in
                    (match
                       Bacrypto.Forward_secure.adversary_sign
                         env.Chen_micali.fs ~capability ~signer:node
                         ~slot:epoch
                         (Chen_micali.ack_bit_stmt ~epoch ~bit:(not bit))
                     with
                    | Some forged ->
                        actions :=
                          Engine.Inject
                            { src = node;
                              dst = Engine.All;
                              payload =
                                Chen_micali.make_ack ~epoch ~bit:(not bit)
                                  ~cred ~fs_sig:forged }
                          :: !actions
                    | None ->
                        (* Memory-erasure model: the slot key is gone;
                           corrupting the node bought nothing. *)
                        ())
                | Chen_micali.Ack _ | Chen_micali.Propose _ -> ())
              intents)
          view.Engine.intents;
        List.rev !actions) }
