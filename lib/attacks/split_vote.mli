(** Double-voting Byzantine strategies for the resilience sweep (E4).

    Corrupt nodes are taken over at setup and thereafter mine and send
    protocol messages for {e both} bits wherever the rules allow,
    targeting conflicting messages at the two halves of the network to
    maximize divergence. Everything the adversary sends is {e legitimate}
    — real mined credentials of corrupt nodes, real corrupt-node
    signatures — so the failure rates measured under this adversary trace
    each protocol's genuine resilience threshold:

    - {!sub_third}: corrupt nodes ACK both bits each epoch and send
      targeted proposals (bit 0 to the lower half of the network, bit 1
      to the upper half). The ⅓ protocol's honest ACK committee drops
      below the [2λ/3] quorum once [f > n/3], honest nodes un-stick, and
      the targeted proposals split them.
    - {!sub_hm}: corrupt nodes double-vote in iteration 1 (votes need no
      proposal there), blockade later iterations with conflicting
      proposals, and assemble their own certificates, commits, and
      targeted Commit storms. Corrupt committees reach the [λ/2] quorum
      only once [f ≥ n/2] — the honest-majority protocol's threshold. *)

val top_ids : n:int -> budget:int -> int list
(** The setup corrupt set both strategies use: [budget] node ids spread
    evenly over [0 .. n-1], so the honest remainder keeps the same input
    mix in both network halves. Exposed so {!Schedule_targets} can
    transcribe these attacks as data without duplicating the formula. *)

val sub_third :
  unit -> (Bacore.Sub_third.env, Bacore.Sub_third.msg) Basim.Engine.adversary

val sub_hm :
  unit -> (Bacore.Sub_hm.env, Bacore.Sub_hm.msg) Basim.Engine.adversary
