open Basim
open Bacore

let make () =
  { Engine.adv_name = "equivocator";
    model = Corruption.Adaptive;
    caps =
      { Capability.caps =
          [ Capability.Midround_corruption; Capability.Injection ];
        budget_bound = None };
    setup = (fun _ ~n:_ ~budget:_ ~rng:_ -> []);
    intervene =
      (fun view ->
        let env = view.Engine.env in
        let budget = ref (Corruption.budget_left view.Engine.tracker) in
        let actions = ref [] in
        Array.iter
          (fun (node, intents) ->
            List.iter
              (fun { Engine.payload; _ } ->
                match payload with
                | Sub_third.Ack { epoch; bit; cred } when !budget > 0 ->
                    decr budget;
                    actions := Engine.Corrupt node :: !actions;
                    (* Avenue 1: replay the revealed credential on the
                       opposite bit (works only with bit-agnostic
                       eligibility). *)
                    actions :=
                      Engine.Inject
                        { src = node;
                          dst = Engine.All;
                          payload =
                            Sub_third.make_ack ~epoch ~bit:(not bit) ~cred }
                      :: !actions;
                    (* Avenue 2: legitimate fresh mining with the stolen
                       key — rarely eligible, by design. *)
                    (match
                       env.Sub_third.elig.Bafmine.Eligibility.mine ~node
                         ~msg:
                           (Sub_third.ack_mining_string env.Sub_third.mode
                              ~epoch ~bit:(not bit))
                         ~p:(Sub_third.ack_probability env)
                     with
                    | Some fresh ->
                        actions :=
                          Engine.Inject
                            { src = node;
                              dst = Engine.All;
                              payload =
                                Sub_third.make_ack ~epoch ~bit:(not bit)
                                  ~cred:fresh }
                          :: !actions
                    | None -> ())
                | Sub_third.Ack _ | Sub_third.Propose _ -> ())
              intents)
          view.Engine.intents;
        List.rev !actions) }
