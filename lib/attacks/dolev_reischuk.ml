open Basim
open Babaselines

let predecessors ~n ~d victim =
  List.init d (fun k -> (victim - 1 - k + n) mod n)

let make ~victim () =
  let corrupt_set = ref [] in
  let forwarded : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  { Engine.adv_name = "dolev-reischuk-isolate";
    model = Corruption.Static;
    caps =
      { Capability.caps = [ Capability.Setup_corruption; Capability.Injection ];
        budget_bound = None };
    setup =
      (fun env ~n:_ ~budget ~rng:_ ->
        (* Corrupt the victim's d ring predecessors — the only nodes that
           ever address it — as far as the budget allows. *)
        let n = env.Sparse_relay.n and d = env.Sparse_relay.d in
        let preds = predecessors ~n ~d victim in
        let take = min budget (List.length preds) in
        corrupt_set := List.filteri (fun i _ -> i < take) preds;
        !corrupt_set);
    intervene =
      (fun view ->
        let env = view.Engine.env in
        let n = env.Sparse_relay.n and d = env.Sparse_relay.d in
        (* Simulate each corrupted predecessor honestly, minus the victim:
           once it has received the bit and not yet forwarded, send to all
           its successors except the victim. *)
        let actions = ref [] in
        List.iter
          (fun c ->
            if not (Hashtbl.mem forwarded c) then
              match
                List.find_map
                  (fun (_src, m) ->
                    match m with Sparse_relay.Payload b -> Some b)
                  view.Engine.inboxes.(c)
              with
              | Some bit ->
                  Hashtbl.replace forwarded c ();
                  let targets =
                    List.filter
                      (fun j -> j <> victim)
                      (Sparse_relay.successors ~n ~d c)
                  in
                  if targets <> [] then
                    actions :=
                      Engine.Inject
                        { src = c;
                          dst = Engine.Only targets;
                          payload = Sparse_relay.Payload bit }
                      :: !actions
              | None -> ())
          !corrupt_set;
        List.rev !actions) }
