(* Trace analytics: fold a (re-parsed) execution trace into per-round,
   per-node, and per-size views with Definition-7 accounting — erased
   honest sends ([Removed] events, which carry the erased send's shape)
   still count toward honest multicasts/unicasts, exactly as
   [Basim.Metrics] counts them, so a report's totals reproduce the
   engine's aggregates for the same run. *)

open Basim

type counts = {
  mutable multicasts : int;
  mutable multicast_bits : int;
  mutable unicasts : int;        (* targeted sends × recipients *)
  mutable unicast_bits : int;    (* recipients × bits per targeted send *)
  mutable removals : int;
  mutable injections : int;
  mutable corruptions : int;
  mutable halts : int;
}

let zero_counts () =
  { multicasts = 0;
    multicast_bits = 0;
    unicasts = 0;
    unicast_bits = 0;
    removals = 0;
    injections = 0;
    corruptions = 0;
    halts = 0 }

type t = {
  events : Trace.event list;
  totals : counts;
  per_round : (int, counts) Hashtbl.t;
  per_node : (int, counts) Hashtbl.t;
  multicast_sizes : Bastats.Histogram.t;  (* bits per honest multicast *)
  unicast_sizes : Bastats.Histogram.t;    (* bits per honest targeted send *)
}

let bucket table key =
  match Hashtbl.find_opt table key with
  | Some c -> c
  | None ->
      let c = zero_counts () in
      Hashtbl.add table key c;
      c

let of_events ?rounds events =
  let events =
    match rounds with
    | None -> events
    | Some (lo, hi) ->
        if lo > hi then invalid_arg "Report.of_events: empty rounds window";
        List.filter
          (fun e ->
            let r = Trace.round_of e in
            lo <= r && r <= hi)
          events
  in
  let t =
    { events;
      totals = zero_counts ();
      per_round = Hashtbl.create 64;
      per_node = Hashtbl.create 64;
      multicast_sizes = Bastats.Histogram.create ();
      unicast_sizes = Bastats.Histogram.create () }
  in
  let record event =
    let tally round node f =
      f t.totals;
      f (bucket t.per_round round);
      match node with None -> () | Some i -> f (bucket t.per_node i)
    in
    let honest_send ~round ~node ~multicast ~recipients ~bits =
      if multicast then begin
        tally round node (fun c ->
            c.multicasts <- c.multicasts + 1;
            c.multicast_bits <- c.multicast_bits + bits);
        Bastats.Histogram.add t.multicast_sizes bits
      end
      else begin
        tally round node (fun c ->
            c.unicasts <- c.unicasts + recipients;
            c.unicast_bits <- c.unicast_bits + (recipients * bits));
        Bastats.Histogram.add t.unicast_sizes bits
      end
    in
    match event with
    | Trace.Round_started _ -> ()
    | Trace.Sent { round; node; multicast; recipients; bits; _ } ->
        honest_send ~round ~node:(Some node) ~multicast ~recipients ~bits
    | Trace.Removed { round; victim; multicast; recipients; bits; _ } ->
        (* Definition 7: the erased send still counts for its sender. *)
        honest_send ~round ~node:(Some victim) ~multicast ~recipients ~bits;
        tally round (Some victim) (fun c -> c.removals <- c.removals + 1)
    | Trace.Injected { round; src; _ } ->
        tally round (Some src) (fun c -> c.injections <- c.injections + 1)
    | Trace.Corrupted { round; node } ->
        tally round (Some node) (fun c -> c.corruptions <- c.corruptions + 1)
    | Trace.Halted { round; node; output = _ } ->
        tally round (Some node) (fun c -> c.halts <- c.halts + 1)
  in
  List.iter record events;
  t

let parse_jsonl text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         if String.trim line = "" then None
         else Some (Trace.of_json (Baobs.Json.of_string line)))

let of_jsonl_string ?rounds text = of_events ?rounds (parse_jsonl text)

let of_jsonl_channel ?rounds ic =
  let rec read acc =
    match input_line ic with
    | line -> read (if String.trim line = "" then acc else line :: acc)
    | exception End_of_file -> List.rev acc
  in
  of_events ?rounds
    (List.map
       (fun line -> Trace.of_json (Baobs.Json.of_string line))
       (read []))

(* ---------- accessors --------------------------------------------------- *)

let events t = t.events

let event_count t = List.length t.events

let totals t = t.totals

let sorted_bindings table =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let rounds t = sorted_bindings t.per_round

let nodes t = sorted_bindings t.per_node

let top_talkers ?(k = 10) t =
  let by_load (i1, c1) (i2, c2) =
    (* Heaviest multicast bit-load first (the paper's figure of merit),
       unicast bits then node id as tie-breaks. *)
    match Int.compare c2.multicast_bits c1.multicast_bits with
    | 0 -> (
        match Int.compare c2.unicast_bits c1.unicast_bits with
        | 0 -> Int.compare i1 i2
        | c -> c)
    | c -> c
  in
  List.filteri (fun i _ -> i < k) (List.sort by_load (nodes t))

let size_summary histogram =
  match
    List.concat_map
      (fun (v, c) -> List.init c (fun _ -> v))
      (Bastats.Histogram.bins histogram)
  with
  | [] -> None
  | samples -> Some (Bastats.Summary.of_ints samples)

let multicast_size_summary t = size_summary t.multicast_sizes

let unicast_size_summary t = size_summary t.unicast_sizes

let multicast_sizes t = t.multicast_sizes

let unicast_sizes t = t.unicast_sizes

(* ---------- consistency check ------------------------------------------- *)

(* The produce→analyze round-trip CI gates on: every event re-serializes
   to the JSON it was parsed from (to_json/of_json inverses), and the
   per-round and per-node tables sum back to the totals. *)
let check t =
  let sum field =
    List.fold_left (fun acc (_, c) -> acc + field c) 0
  in
  let mismatch name total per_round per_node =
    if total <> per_round then
      Some
        (Printf.sprintf "%s: totals=%d per-round sum=%d" name total per_round)
    else if total <> per_node then
      Some (Printf.sprintf "%s: totals=%d per-node sum=%d" name total per_node)
    else None
  in
  let fields =
    [ ("multicasts", (fun c -> c.multicasts));
      ("multicast_bits", (fun c -> c.multicast_bits));
      ("unicasts", (fun c -> c.unicasts));
      ("unicast_bits", (fun c -> c.unicast_bits));
      ("removals", (fun c -> c.removals));
      ("injections", (fun c -> c.injections));
      ("corruptions", (fun c -> c.corruptions));
      ("halts", (fun c -> c.halts)) ]
  in
  let table_errors =
    List.filter_map
      (fun (name, field) ->
        mismatch name (field t.totals)
          (sum field (rounds t))
          (sum field (nodes t)))
      fields
  in
  let roundtrip_errors =
    List.filter_map
      (fun e ->
        let j = Trace.to_json e in
        if Trace.of_json j = e then None
        else
          Some
            (Printf.sprintf "event does not round-trip: %s"
               (Baobs.Json.to_string j)))
      t.events
  in
  match table_errors @ roundtrip_errors with
  | [] -> Ok ()
  | errors -> Error errors

(* ---------- exporters --------------------------------------------------- *)

let counts_cells c =
  [ string_of_int c.multicasts;
    string_of_int c.multicast_bits;
    string_of_int c.unicasts;
    string_of_int c.unicast_bits;
    string_of_int c.removals;
    string_of_int c.injections;
    string_of_int c.corruptions;
    string_of_int c.halts ]

let counts_columns =
  [ "multicasts"; "multicast_bits"; "unicasts"; "unicast_bits"; "removals";
    "injections"; "corruptions"; "halts" ]

let round_table t =
  let table =
    Bastats.Table.create ~title:"Per-round timeline"
      ~columns:("round" :: counts_columns)
  in
  List.iter
    (fun (round, c) ->
      Bastats.Table.add_row table (string_of_int round :: counts_cells c))
    (rounds t);
  Bastats.Table.add_row table ("total" :: counts_cells t.totals);
  table

let talkers_table ?k t =
  let table =
    Bastats.Table.create ~title:"Top talkers (by multicast bits)"
      ~columns:("node" :: counts_columns)
  in
  List.iter
    (fun (node, c) ->
      Bastats.Table.add_row table (string_of_int node :: counts_cells c))
    (top_talkers ?k t);
  table

let sizes_table t =
  let table =
    Bastats.Table.create ~title:"Message sizes (bits)"
      ~columns:[ "kind"; "count"; "mean"; "min"; "p50"; "p95"; "p99"; "max" ]
  in
  let row kind summary =
    match summary with
    | None -> ()
    | Some (s : Bastats.Summary.t) ->
        Bastats.Table.add_row table
          [ kind;
            string_of_int s.Bastats.Summary.count;
            Bastats.Table.fmt_float s.Bastats.Summary.mean;
            Bastats.Table.fmt_float s.Bastats.Summary.min;
            Bastats.Table.fmt_float s.Bastats.Summary.p50;
            Bastats.Table.fmt_float s.Bastats.Summary.p95;
            Bastats.Table.fmt_float s.Bastats.Summary.p99;
            Bastats.Table.fmt_float s.Bastats.Summary.max ]
  in
  row "multicast" (multicast_size_summary t);
  row "unicast" (unicast_size_summary t);
  table

let to_text ?k t =
  String.concat "\n"
    [ Printf.sprintf "events: %d" (event_count t);
      Bastats.Table.render (round_table t);
      Bastats.Table.render (talkers_table ?k t);
      Bastats.Table.render (sizes_table t) ]

let counts_json c =
  Baobs.Json.Obj
    (List.map2
       (fun name cell -> (name, Baobs.Json.Int (int_of_string cell)))
       counts_columns (counts_cells c))

let summary_json = function
  | None -> Baobs.Json.Null
  | Some (s : Bastats.Summary.t) ->
      Baobs.Json.Obj
        [ ("count", Baobs.Json.Int s.Bastats.Summary.count);
          ("mean", Baobs.Json.Float s.Bastats.Summary.mean);
          ("min", Baobs.Json.Float s.Bastats.Summary.min);
          ("p50", Baobs.Json.Float s.Bastats.Summary.p50);
          ("p95", Baobs.Json.Float s.Bastats.Summary.p95);
          ("p99", Baobs.Json.Float s.Bastats.Summary.p99);
          ("max", Baobs.Json.Float s.Bastats.Summary.max) ]

let to_json ?k t =
  let keyed name bindings =
    Baobs.Json.List
      (List.map
         (fun (key, c) ->
           match counts_json c with
           | Baobs.Json.Obj fields ->
               Baobs.Json.Obj ((name, Baobs.Json.Int key) :: fields)
           | Baobs.Json.Null | Baobs.Json.Bool _ | Baobs.Json.Int _
           | Baobs.Json.Float _ | Baobs.Json.String _ | Baobs.Json.List _ ->
               assert false)
         bindings)
  in
  Baobs.Json.Obj
    [ ("schema", Baobs.Json.String "ba-report/v1");
      ("events", Baobs.Json.Int (event_count t));
      ("totals", counts_json t.totals);
      ("rounds", keyed "round" (rounds t));
      ("nodes", keyed "node" (nodes t));
      ("top_talkers", keyed "node" (top_talkers ?k t));
      ( "sizes",
        Baobs.Json.Obj
          [ ("multicast", summary_json (multicast_size_summary t));
            ("unicast", summary_json (unicast_size_summary t)) ] ) ]

let to_csv t =
  Baobs.Csv.to_string
    ~header:("round" :: counts_columns)
    (List.map
       (fun (round, c) -> string_of_int round :: counts_cells c)
       (rounds t))
