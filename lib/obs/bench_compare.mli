(** Bench-regression detection: diff two [ba-bench/v1] reports
    (the [BENCH_*.json] files [bench/main.exe] writes) by ns/run.

    A benchmark counts as a {e regression} when its current estimate
    exceeds the base by more than the threshold (default 20%); the
    symmetric improvement, unchanged, added, removed, and
    missing-estimate cases are reported but never gate. Consumed by
    [ba_obs compare] and [bench/main.exe --against FILE]. *)

type status = Regression | Improvement | Unchanged | Added | Removed | No_estimate

type row = {
  name : string;
  base_ns : float option;
  cur_ns : float option;
  ratio : float option;  (** current / base, when both estimates exist *)
  status : status;
}

type t = {
  threshold : float;
  rows : row list;  (** union of both reports' benchmarks, sorted by name *)
}

val status_name : status -> string

val results_of_json : Json.t -> (string * float option) list
(** The [(name, ns_per_run)] pairs of a report's [results] section.
    @raise Json.Parse_error on a malformed report. *)

val diff :
  ?threshold:float -> ?only:string -> base:Json.t -> current:Json.t -> unit -> t
(** Compare two parsed reports. [threshold] is a fraction (0.2 = 20%).
    [only] restricts the comparison to benchmarks whose name starts with
    the given prefix (e.g. ["ba/crypto/"] to gate on the low-noise
    microbenches while the experiment benches stay informational).
    @raise Invalid_argument if [threshold <= 0]. *)

val regressions : t -> row list

val has_regressions : t -> bool

val exit_code : t -> int
(** [1] when any row regressed, else [0] — the CLI's exit status. *)

val render : t -> string
(** Plain-text regression table. *)

val to_json : t -> Json.t
(** Machine-readable comparison ([ba-bench-compare/v1]) — the artifact
    CI uploads. *)
