type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ---------- printing --------------------------------------------------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  (* %.17g survives a parse round-trip bit-exactly; make sure the result
     still reads back as a float, not an int. *)
  let s = Printf.sprintf "%.17g" f in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
  else s ^ ".0"

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (float_repr f)
      else Buffer.add_string buf "null"
  | String s -> escape_to buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

(* ---------- parsing ---------------------------------------------------- *)

type parser_state = { src : string; mutable pos : int }

let fail st fmt =
  Format.kasprintf (fun m -> raise (Parse_error (Printf.sprintf "at %d: %s" st.pos m))) fmt

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  while
    st.pos < String.length st.src
    && match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    advance st
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> fail st "expected %c, found %c" c c'
  | None -> fail st "expected %c, found end of input" c

let parse_literal st word value =
  let len = String.length word in
  if
    st.pos + len <= String.length st.src
    && String.sub st.src st.pos len = word
  then begin
    st.pos <- st.pos + len;
    value
  end
  else fail st "invalid literal"

let parse_string_raw st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some '"' -> advance st; Buffer.add_char buf '"'; loop ()
        | Some '\\' -> advance st; Buffer.add_char buf '\\'; loop ()
        | Some '/' -> advance st; Buffer.add_char buf '/'; loop ()
        | Some 'b' -> advance st; Buffer.add_char buf '\b'; loop ()
        | Some 'f' -> advance st; Buffer.add_char buf '\012'; loop ()
        | Some 'n' -> advance st; Buffer.add_char buf '\n'; loop ()
        | Some 'r' -> advance st; Buffer.add_char buf '\r'; loop ()
        | Some 't' -> advance st; Buffer.add_char buf '\t'; loop ()
        | Some 'u' ->
            advance st;
            if st.pos + 4 > String.length st.src then
              fail st "truncated \\u escape";
            let hex = String.sub st.src st.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail st "bad \\u escape %S" hex
            in
            st.pos <- st.pos + 4;
            (* Encode the code point as UTF-8 (we only ever emit ASCII,
               but accept the full basic multilingual plane). *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
            end;
            loop ()
        | _ -> fail st "bad escape")
    | Some c -> advance st; Buffer.add_char buf c; loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    st.pos < String.length st.src && is_num_char st.src.[st.pos]
  do
    advance st
  done;
  let s = String.sub st.src start (st.pos - start) in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail st "bad number %S" s
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> fail st "bad number %S" s)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some 'n' -> parse_literal st "null" Null
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some '"' -> String (parse_string_raw st)
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        List []
      end
      else begin
        let items = ref [ parse_value st ] in
        skip_ws st;
        while peek st = Some ',' do
          advance st;
          items := parse_value st :: !items;
          skip_ws st
        done;
        expect st ']';
        List (List.rev !items)
      end
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let field () =
          skip_ws st;
          let k = parse_string_raw st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws st;
        while peek st = Some ',' do
          advance st;
          fields := field () :: !fields;
          skip_ws st
        done;
        expect st '}';
        Obj (List.rev !fields)
      end
  | Some c -> (
      match c with
      | '0' .. '9' | '-' -> parse_number st
      | _ -> fail st "unexpected character %c" c)

let of_string s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v

(* ---------- accessors -------------------------------------------------- *)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | Null | Bool _ | Int _ | Float _ | String _ | List _ -> None

let member_exn name j =
  match member name j with
  | Some v -> v
  | None -> raise (Parse_error (Printf.sprintf "missing member %S" name))

let as_int = function
  | Int i -> i
  | (Null | Bool _ | Float _ | String _ | List _ | Obj _) as j ->
      raise (Parse_error ("expected int, got " ^ to_string j))

let as_float = function
  | Float f -> f
  | Int i -> float_of_int i
  | (Null | Bool _ | String _ | List _ | Obj _) as j ->
      raise (Parse_error ("expected number, got " ^ to_string j))

let as_string = function
  | String s -> s
  | (Null | Bool _ | Int _ | Float _ | List _ | Obj _) as j ->
      raise (Parse_error ("expected string, got " ^ to_string j))

let as_bool = function
  | Bool b -> b
  | (Null | Int _ | Float _ | String _ | List _ | Obj _) as j ->
      raise (Parse_error ("expected bool, got " ^ to_string j))

let as_list = function
  | List l -> l
  | (Null | Bool _ | Int _ | Float _ | String _ | Obj _) as j ->
      raise (Parse_error ("expected list, got " ^ to_string j))
