(** Streaming JSON-Lines sink: one compact JSON document per line,
    written as events arrive (no in-memory accumulation). *)

type t

val to_channel : out_channel -> t

val to_buffer : Buffer.t -> t

val emit : t -> Json.t -> unit

val emitted : t -> int
(** Number of lines written so far. *)

val flush : t -> unit
(** Flush the underlying channel (no-op for buffers). *)
