(** Streaming JSON-Lines sink: one compact JSON document per line,
    written as events arrive (no in-memory accumulation). *)

type t

val to_channel : out_channel -> t

val to_buffer : Buffer.t -> t

val emit : t -> Json.t -> unit

val emitted : t -> int
(** Number of lines written so far. *)

val flush : t -> unit
(** Flush the underlying channel (no-op for buffers). *)

val validate_path : string -> (unit, string) result
(** Check that [path] is writable in principle — its parent directory
    exists and [path] is not itself a directory — so CLIs can reject a
    doomed output destination before a long run instead of after it.
    A race with concurrent filesystem changes is still possible; this
    is an early, best-effort check, not a guarantee. *)
