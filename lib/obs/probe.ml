(* Domain-safe: trials now run on Bapar domains, and the engine's phase
   probes are global, so every mutation of a probe's counters happens
   under its own mutex and the registry table under [registry_lock].
   The enabled flag is an [Atomic.t] so the disabled-path read stays a
   single load. When probes are disabled — the default — [start]/[stop]
   and [tick] still short-circuit without touching any lock. *)

type t = {
  name : string;
  lock : Mutex.t;
  mutable count : int;
  mutable total_ns : float;
}

let registry : (string, t) Hashtbl.t = Hashtbl.create 32

let registry_lock = Mutex.create ()

let on = Atomic.make false

let enable () = Atomic.set on true

let disable () = Atomic.set on false

let enabled () = Atomic.get on

let with_lock lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let register name =
  with_lock registry_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some p -> p
      | None ->
          let p = { name; lock = Mutex.create (); count = 0; total_ns = 0.0 } in
          Hashtbl.add registry name p;
          p)

let probes () =
  with_lock registry_lock (fun () ->
      Hashtbl.fold (fun _ p acc -> p :: acc) registry [])

(* [reset] is defined after the span machinery so it can clear the span
   ring alongside the counters — see below. *)

let now_ns () = Unix.gettimeofday () *. 1e9

(* ---------- per-span event recording ------------------------------------ *)

type span = { probe : string; start_ns : float; dur_ns : float }

let span_ring : span Ring.t option ref = ref None

let span_lock = Mutex.create ()

let record_spans ~capacity =
  with_lock span_lock (fun () -> span_ring := Some (Ring.create ~capacity))

let recording_spans () = with_lock span_lock (fun () -> !span_ring <> None)

let spans () =
  with_lock span_lock (fun () ->
      match !span_ring with None -> [] | Some r -> Ring.to_list r)

let spans_dropped () =
  with_lock span_lock (fun () ->
      match !span_ring with None -> 0 | Some r -> Ring.dropped r)

let record_span probe start_ns dur_ns =
  with_lock span_lock (fun () ->
      match !span_ring with
      | None -> ()
      | Some r -> Ring.add r { probe; start_ns; dur_ns })

let reset () =
  List.iter
    (fun p ->
      with_lock p.lock (fun () ->
          p.count <- 0;
          p.total_ns <- 0.0))
    (probes ());
  with_lock span_lock (fun () ->
      match !span_ring with
      | None -> ()
      | Some r -> span_ring := Some (Ring.create ~capacity:(Ring.capacity r)))

let start () = if Atomic.get on then now_ns () else 0.0

let stop p t0 =
  if t0 > 0.0 then begin
    (* Wall-clock can step backwards (NTP); a negative span would poison
       the cumulative total, so clamp to zero. *)
    let dt = Float.max 0.0 (now_ns () -. t0) in
    with_lock p.lock (fun () ->
        p.count <- p.count + 1;
        p.total_ns <- p.total_ns +. dt);
    record_span p.name t0 dt
  end

let time p f =
  if Atomic.get on then begin
    let t0 = now_ns () in
    Fun.protect ~finally:(fun () -> stop p t0) f
  end
  else f ()

let tick p =
  if Atomic.get on then
    with_lock p.lock (fun () -> p.count <- p.count + 1)

let snapshot () =
  List.filter_map
    (fun p ->
      let count, total_ns =
        with_lock p.lock (fun () -> (p.count, p.total_ns))
      in
      if count > 0 then Some (p.name, count, total_ns) else None)
    (probes ())
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let to_json () =
  Json.List
    (List.map
       (fun (name, count, total_ns) ->
         let mean = if count = 0 then 0.0 else total_ns /. float_of_int count in
         Json.Obj
           [ ("name", Json.String name);
             ("count", Json.Int count);
             ("total_ns", Json.Float total_ns);
             ("mean_ns", Json.Float mean) ])
       (snapshot ()))

let spans_to_json () =
  Json.List
    (List.map
       (fun s ->
         Json.Obj
           [ ("name", Json.String s.probe);
             ("start_ns", Json.Float s.start_ns);
             ("dur_ns", Json.Float s.dur_ns) ])
       (spans ()))

let profile_to_json () =
  Json.Obj
    [ ("schema", Json.String "ba-profile/v1");
      ("probes", to_json ());
      ("spans", spans_to_json ());
      ("spans_dropped", Json.Int (spans_dropped ())) ]

let report () =
  let buf = Buffer.create 256 in
  List.iter
    (fun (name, count, total_ns) ->
      Buffer.add_string buf
        (Printf.sprintf "%-24s %10d calls %14.0f ns total %12.1f ns/call\n"
           name count total_ns
           (total_ns /. float_of_int count)))
    (snapshot ());
  Buffer.contents buf
