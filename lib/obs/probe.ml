type t = {
  name : string;
  mutable count : int;
  mutable total_ns : float;
}

let registry : (string, t) Hashtbl.t = Hashtbl.create 32

let on = ref false

let enable () = on := true

let disable () = on := false

let enabled () = !on

let register name =
  match Hashtbl.find_opt registry name with
  | Some p -> p
  | None ->
      let p = { name; count = 0; total_ns = 0.0 } in
      Hashtbl.add registry name p;
      p

let reset () =
  Hashtbl.iter
    (fun _ p ->
      p.count <- 0;
      p.total_ns <- 0.0)
    registry

let now_ns () = Unix.gettimeofday () *. 1e9

let start () = if !on then now_ns () else 0.0

let stop p t0 =
  if t0 > 0.0 then begin
    p.count <- p.count + 1;
    p.total_ns <- p.total_ns +. (now_ns () -. t0)
  end

let time p f =
  if !on then begin
    let t0 = now_ns () in
    Fun.protect ~finally:(fun () -> stop p t0) f
  end
  else f ()

let tick p = if !on then p.count <- p.count + 1

let snapshot () =
  Hashtbl.fold
    (fun _ p acc ->
      if p.count > 0 then (p.name, p.count, p.total_ns) :: acc else acc)
    registry []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let to_json () =
  Json.List
    (List.map
       (fun (name, count, total_ns) ->
         let mean = if count = 0 then 0.0 else total_ns /. float_of_int count in
         Json.Obj
           [ ("name", Json.String name);
             ("count", Json.Int count);
             ("total_ns", Json.Float total_ns);
             ("mean_ns", Json.Float mean) ])
       (snapshot ()))

let report () =
  let buf = Buffer.create 256 in
  List.iter
    (fun (name, count, total_ns) ->
      Buffer.add_string buf
        (Printf.sprintf "%-24s %10d calls %14.0f ns total %12.1f ns/call\n"
           name count total_ns
           (total_ns /. float_of_int count)))
    (snapshot ());
  Buffer.contents buf
