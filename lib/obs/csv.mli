(** RFC-4180-ish CSV writing for metric-series and table exports. *)

val field : string -> string
(** Quote a cell if it contains a comma, quote, or newline. *)

val row : string list -> string

val to_string : header:string list -> string list list -> string
(** Header line plus one line per row, each newline-terminated. *)
