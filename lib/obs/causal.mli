(** Causal flow analysis: the happens-before DAG of one execution.

    The synchronous model makes causality {e exact}, not sampled: a
    message sent in round [r] is delivered at the start of round [r+1],
    and a node's round-[r] actions are a function of its input, its own
    earlier states, and everything it received by round [r]. The
    happens-before DAG therefore has one {b state} per (node, round)
    pair, a {b memory edge} [(i, r) -> (i, r+1)] per node, and a
    {b delivery edge} [(src, r) -> (dst, r+1)] per recipient of every
    delivered message (honest sends and adversary injections alike).

    Definition-7 removals appear as {b severed edges}: the erased send
    is accounted (it still counts toward the sender's word totals) but
    delivers nothing, so its would-be edges are absent from every
    backward cone — and {e present} as adversary influence, because the
    absence of an expected message is itself information the adversary
    chose. Taint attribution therefore seeds from three sources:
    [Corrupted(i, r)] taints node [i]'s states from round [r+1] on
    (round 0 for setup corruption, [r = -1]); [Injected] messages taint
    their recipients; [Removed] messages taint their would-be
    recipients. Taint then propagates forward along memory and delivery
    edges. A decision's {b tainted fraction} is
    [tainted ∩ cone / cone] over its backward causal cone.

    Traces recorded {e without} causal recording ({!Basim.Engine.run}
    without [?labeler] — including every legacy trace) lack the
    recipient lists of targeted sends; those messages are
    over-approximated as reaching everyone and counted in
    {!approx_messages}, making cones and taint upper bounds. Multicasts
    (the common case in this repository) are always exact. *)

type t

type decision = {
  d_node : int;
  d_round : int;  (** the round the node halted in *)
  d_output : bool option;
  d_cone_states : int;
      (** states in the decision's backward causal cone, including the
          deciding state itself *)
  d_tainted_states : int;  (** cone states reachable from adversary events *)
  d_critical_path : int;
      (** longest message chain (delivery-edge count) ending at the
          deciding state — the decision's causal depth *)
}

(** One row of the per-kind × per-round flow matrix, with Definition-7
    accounting: severed sends still count toward their sender's
    multicast/unicast totals, so summing the matrix reproduces
    {!Basim.Metrics}. The empty kind [""] covers unlabeled (legacy)
    traces. *)
type flow = {
  f_round : int;
  f_kind : string;
  f_multicasts : int;
  f_multicast_bits : int;
  f_unicasts : int;  (** targeted sends × recipients *)
  f_unicast_bits : int;
  f_removals : int;
  f_injections : int;
  f_injection_bits : int;  (** 0 on unlabeled traces (bits unrecorded) *)
}

(** The serializable digest of an analysis — the [ba-causal/v1]
    document. All fields are integers, so {!summary_to_json} and
    {!summary_of_json} are exact inverses. *)
type summary = {
  s_n : int;
  s_rounds : int;  (** state grid spans rounds [0 .. s_rounds - 1] *)
  s_delivered : int;  (** honest sends that survived to delivery *)
  s_severed : int;  (** Definition-7 removals *)
  s_injected : int;
  s_approx : int;  (** messages with over-approximated recipient sets *)
  s_states : int;  (** [s_n * s_rounds] *)
  s_edges : int;
      (** materialized delivery edges (sends in the final round have no
          consumer and contribute none); memory edges are implicit *)
  s_decisions : decision list;  (** sorted by (round, node) *)
  s_flows : flow list;  (** sorted by (round, kind) *)
}

val of_events : ?n:int -> Basim.Trace.event list -> t
(** Build the DAG and run every analysis. [n] defaults to the smallest
    node count consistent with the trace (max node index + 1, and any
    multicast's recipient count). *)

val of_jsonl_string : ?n:int -> string -> t
(** Parse a JSONL trace ({!Basim.Trace.of_json} per line, blank lines
    skipped) and analyze it.
    @raise Baobs.Json.Parse_error on a malformed line. *)

val n : t -> int

val rounds : t -> int

val decisions : t -> decision list

val flows : t -> flow list

val approx_messages : t -> int

val summary : t -> summary

val taint_fraction : decision -> float
(** [d_tainted_states / d_cone_states] ([0.] for an empty cone —
    impossible for a real decision, whose cone holds its own memory
    chain). *)

val check : t -> (unit, string list) result
(** Self-verification, the [ba_obs causal --check] gate:
    - every delivery edge advances the round by exactly one (the DAG is
      acyclic by round-stratification — verified over the materialized
      adjacency, not assumed);
    - the flow matrix sums to the Definition-7 totals of an
      independently computed {!Report} over the same events
      (multicasts, multicast bits, unicasts, unicast bits, removals,
      injections — the engine's {!Basim.Metrics} accounting);
    - per decision: [0 <= tainted <= cone <= states], the cone contains
      at least the decider's own memory chain, and the critical path
      fits in the decision round;
    - a trace with no adversarial events has zero taint everywhere. *)

val to_text : ?top:int -> t -> string
(** Human-readable summary: message counts, the flow matrix, and the
    decision table ([top] rows, default 10, highest tainted fraction
    first). *)

val summary_to_json : summary -> Baobs.Json.t
(** The [ba-causal/v1] document. *)

val to_json : t -> Baobs.Json.t
(** [summary_to_json (summary t)]. *)

val summary_of_json : Baobs.Json.t -> summary
(** Exact inverse of {!summary_to_json}.
    @raise Baobs.Json.Parse_error on schema mismatch or malformed
    fields. *)

val to_csv : t -> string
(** The flow matrix as CSV (one row per (round, kind), the
    {!flow} fields as columns; unlabeled kinds rendered as ["?"]). *)

val to_dot : t -> string
(** Graphviz digraph of the happens-before DAG. States are [s<node>_<round>]
    nodes arranged round by round (tainted states filled red); each
    multicast routes through one per-(sender, round) fan-out point to
    keep the edge count linear; severed sends are dashed red edges to a
    fan-out point with no outgoing edges — visible missing influence. *)

val to_chrome : t -> Baobs.Json.t
(** Chrome trace_event document for Perfetto: one slice per (node,
    round) state on thread [node], flow-event arrows ([s]/[f] phases,
    message id as flow id) for every delivery edge, and an instant
    marker per removal on the victim's thread. Timestamps are synthetic
    (1 ms per round). *)
