(* GC/memory telemetry. Sampling is counter reads over [Gc.quick_stat]
   — it never triggers a collection and never touches protocol-visible
   state, which is why a run recorded with [Engine.run ?resource] emits
   a byte-identical trace to an unrecorded one (asserted in
   test/test_obs.ml). The recorder keeps one row per round plus a
   Bastats.Sketch of allocated-words-per-round, so the summary stays
   O(1) memory on arbitrarily long runs. *)

type sample = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
  heap_words : int;
  top_heap_words : int;
}

let sample () =
  let s = Gc.quick_stat () in
  { minor_words = s.Gc.minor_words;
    promoted_words = s.Gc.promoted_words;
    major_words = s.Gc.major_words;
    minor_collections = s.Gc.minor_collections;
    major_collections = s.Gc.major_collections;
    compactions = s.Gc.compactions;
    heap_words = s.Gc.heap_words;
    top_heap_words = s.Gc.top_heap_words }

let live_words () = (Gc.stat ()).Gc.live_words

type delta = {
  allocated_words : float;
  promoted_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
  heap_growth_words : int;
}

let delta ~before ~after =
  { allocated_words =
      after.minor_words -. before.minor_words
      +. (after.major_words -. before.major_words)
      -. (after.promoted_words -. before.promoted_words);
    promoted_words = after.promoted_words -. before.promoted_words;
    minor_collections = after.minor_collections - before.minor_collections;
    major_collections = after.major_collections - before.major_collections;
    compactions = after.compactions - before.compactions;
    heap_growth_words = after.heap_words - before.heap_words }

(* ---------- global switch (mirrors Probe) ------------------------------- *)

let on = Atomic.make false

let enable () = Atomic.set on true

let disable () = Atomic.set on false

let enabled () = Atomic.get on

(* ---------- per-round recorder ------------------------------------------ *)

type row = {
  round : int;
  row_allocated_words : float;
  row_promoted_words : float;
  minor_gcs : int;
  major_gcs : int;
  row_heap_words : int;
  row_top_heap_words : int;
}

type t = {
  mutable pending : sample option;
  mutable rows_rev : row list;
  sketch : Bastats.Sketch.t;  (* allocated words per round, rounds >= 0 *)
}

let create () =
  { pending = None; rows_rev = []; sketch = Bastats.Sketch.create () }

let round_begin t = if Atomic.get on then t.pending <- Some (sample ())

let round_end t ~round =
  match t.pending with
  | None -> ()
  | Some before ->
      t.pending <- None;
      let after = sample () in
      let d = delta ~before ~after in
      t.rows_rev <-
        { round;
          row_allocated_words = d.allocated_words;
          row_promoted_words = d.promoted_words;
          minor_gcs = d.minor_collections;
          major_gcs = d.major_collections;
          row_heap_words = after.heap_words;
          row_top_heap_words = after.top_heap_words }
        :: t.rows_rev;
      if round >= 0 then Bastats.Sketch.add t.sketch d.allocated_words

let rows t = List.rev t.rows_rev

let allocation_summary t =
  if Bastats.Sketch.count t.sketch = 0 then None
  else Some (Bastats.Sketch.to_summary t.sketch)

(* ---------- encoders ---------------------------------------------------- *)

let summary_json = function
  | None -> Json.Null
  | Some (s : Bastats.Summary.t) ->
      Json.Obj
        [ ("count", Json.Int s.Bastats.Summary.count);
          ("mean", Json.Float s.Bastats.Summary.mean);
          ("stddev", Json.Float s.Bastats.Summary.stddev);
          ("min", Json.Float s.Bastats.Summary.min);
          ("p50", Json.Float s.Bastats.Summary.p50);
          ("p95", Json.Float s.Bastats.Summary.p95);
          ("p99", Json.Float s.Bastats.Summary.p99);
          ("max", Json.Float s.Bastats.Summary.max) ]

let row_json r =
  Json.Obj
    [ ("round", Json.Int r.round);
      ("allocated_words", Json.Float r.row_allocated_words);
      ("promoted_words", Json.Float r.row_promoted_words);
      ("minor_gcs", Json.Int r.minor_gcs);
      ("major_gcs", Json.Int r.major_gcs);
      ("heap_words", Json.Int r.row_heap_words);
      ("top_heap_words", Json.Int r.row_top_heap_words) ]

let totals_of_rows rows =
  let allocated = ref 0.0
  and promoted = ref 0.0
  and minor = ref 0
  and major = ref 0
  and peak_heap = ref 0
  and top_heap = ref 0
  and measured = ref 0 in
  List.iter
    (fun r ->
      allocated := !allocated +. r.row_allocated_words;
      promoted := !promoted +. r.row_promoted_words;
      minor := !minor + r.minor_gcs;
      major := !major + r.major_gcs;
      if r.row_heap_words > !peak_heap then peak_heap := r.row_heap_words;
      if r.row_top_heap_words > !top_heap then top_heap := r.row_top_heap_words;
      if r.round >= 0 then incr measured)
    rows;
  (!allocated, !promoted, !minor, !major, !peak_heap, !top_heap, !measured)

let totals_json rows =
  let allocated, promoted, minor, major, peak_heap, top_heap, measured =
    totals_of_rows rows
  in
  Json.Obj
    [ ("allocated_words", Json.Float allocated);
      ("promoted_words", Json.Float promoted);
      ("minor_gcs", Json.Int minor);
      ("major_gcs", Json.Int major);
      ("peak_heap_words", Json.Int peak_heap);
      ("top_heap_words", Json.Int top_heap);
      ("rounds", Json.Int measured) ]

let to_json ?(meta = []) t =
  let rows = rows t in
  Json.Obj
    (("schema", Json.String "ba-resource/v1")
    :: meta
    @ [ ("totals", totals_json rows);
        ("per_round", summary_json (allocation_summary t));
        ("rounds", Json.List (List.map row_json rows)) ])

let csv_header =
  [ "round"; "allocated_words"; "promoted_words"; "minor_gcs"; "major_gcs";
    "heap_words"; "top_heap_words" ]

let rows_to_csv rows =
  Csv.to_string ~header:csv_header
    (List.map
       (fun r ->
         [ string_of_int r.round;
           Printf.sprintf "%.0f" r.row_allocated_words;
           Printf.sprintf "%.0f" r.row_promoted_words;
           string_of_int r.minor_gcs;
           string_of_int r.major_gcs;
           string_of_int r.row_heap_words;
           string_of_int r.row_top_heap_words ])
       rows)

let to_csv t = rows_to_csv (rows t)

(* ---------- analysis ([ba_obs mem]) ------------------------------------- *)

type report = { rep_rows : row list }

let parse_error fmt =
  Format.kasprintf (fun s -> raise (Json.Parse_error s)) fmt

let report_of_json json =
  (match Json.member "schema" json with
  | Some (Json.String "ba-resource/v1") -> ()
  | Some (Json.String other) ->
      parse_error "expected schema ba-resource/v1, got %s" other
  | Some (Json.Null | Json.Bool _ | Json.Int _ | Json.Float _ | Json.List _
         | Json.Obj _)
  | None ->
      parse_error "missing ba-resource/v1 schema tag");
  let row_of_json j =
    { round = Json.as_int (Json.member_exn "round" j);
      row_allocated_words = Json.as_float (Json.member_exn "allocated_words" j);
      row_promoted_words = Json.as_float (Json.member_exn "promoted_words" j);
      minor_gcs = Json.as_int (Json.member_exn "minor_gcs" j);
      major_gcs = Json.as_int (Json.member_exn "major_gcs" j);
      row_heap_words = Json.as_int (Json.member_exn "heap_words" j);
      row_top_heap_words = Json.as_int (Json.member_exn "top_heap_words" j) }
  in
  { rep_rows =
      List.map row_of_json (Json.as_list (Json.member_exn "rounds" json)) }

let report_rows r = r.rep_rows

type flatness = {
  warmup : int;
  cooldown : int;
  measured : int;
  mean_words : float;
  slope_words : float;
  drift : float;
  tolerance : float;
  flat : bool;
}

let flatness ?warmup ?cooldown ?(tolerance = 0.25) report =
  let executed = List.filter (fun r -> r.round >= 0) report.rep_rows in
  let total = List.length executed in
  let default_trim = max 1 (total / 5) in
  let clamp = function Some w -> max w 0 | None -> default_trim in
  let warmup = clamp warmup in
  (* The last rounds are the decide/halt phase — a one-off allocation
     spike several times the steady-state mean, not a leak — so the
     steady-state fit trims the tail symmetrically with the head. *)
  let cooldown = clamp cooldown in
  let window =
    List.filteri (fun i _ -> i >= warmup && i < total - cooldown) executed
  in
  let m = List.length window in
  if m < 3 then
    { warmup;
      cooldown;
      measured = m;
      mean_words =
        (if m = 0 then 0.0
         else
           List.fold_left (fun acc r -> acc +. r.row_allocated_words) 0.0 window
           /. float_of_int m);
      slope_words = 0.0;
      drift = 0.0;
      tolerance;
      flat = true }
  else begin
    (* Theil–Sen: the median of all pairwise slopes
       (y_j − y_i) / (j − i). Healthy runs are bursty — per-epoch
       allocation spikes over a mostly-quiet baseline, plus heavy final
       decision rounds — which drags a least-squares fit far from zero;
       the median slope shrugs those off while a genuine leak (growth
       in most rounds) still moves it. O(m²) pairs is fine at run
       scale (≤ a few hundred rounds). *)
    let fm = float_of_int m in
    let sum_y =
      List.fold_left (fun acc r -> acc +. r.row_allocated_words) 0.0 window
    in
    let mean_y = sum_y /. fm in
    let ys =
      Array.of_list (List.map (fun r -> r.row_allocated_words) window)
    in
    let slopes = Array.make (m * (m - 1) / 2) 0.0 in
    let k = ref 0 in
    for i = 0 to m - 2 do
      for j = i + 1 to m - 1 do
        slopes.(!k) <- (ys.(j) -. ys.(i)) /. float_of_int (j - i);
        incr k
      done
    done;
    Array.sort Float.compare slopes;
    let len = Array.length slopes in
    let slope =
      if len mod 2 = 1 then slopes.(len / 2)
      else (slopes.((len / 2) - 1) +. slopes.(len / 2)) /. 2.0
    in
    let drift =
      if mean_y <= 0.0 then 0.0 else slope *. (fm -. 1.0) /. mean_y
    in
    { warmup;
      cooldown;
      measured = m;
      mean_words = mean_y;
      slope_words = slope;
      drift;
      tolerance;
      flat = Float.abs drift <= tolerance }
  end

let flatness_json f =
  Json.Obj
    [ ("warmup", Json.Int f.warmup);
      ("cooldown", Json.Int f.cooldown);
      ("measured", Json.Int f.measured);
      ("mean_words_per_round", Json.Float f.mean_words);
      ("slope_words_per_round", Json.Float f.slope_words);
      ("drift", Json.Float f.drift);
      ("tolerance", Json.Float f.tolerance);
      ("flat", Json.Bool f.flat) ]

let report_to_text report f =
  let table =
    Bastats.Table.create ~title:"Per-round resource usage" ~columns:csv_header
  in
  List.iter
    (fun r ->
      Bastats.Table.add_row table
        [ string_of_int r.round;
          Bastats.Table.fmt_int (int_of_float r.row_allocated_words);
          Bastats.Table.fmt_int (int_of_float r.row_promoted_words);
          string_of_int r.minor_gcs;
          string_of_int r.major_gcs;
          Bastats.Table.fmt_int r.row_heap_words;
          Bastats.Table.fmt_int r.row_top_heap_words ])
    report.rep_rows;
  let allocated, promoted, minor, major, peak_heap, top_heap, measured =
    totals_of_rows report.rep_rows
  in
  String.concat "\n"
    [ Bastats.Table.render table;
      Printf.sprintf
        "totals: %s words allocated (%s promoted) over %d rounds, %d minor / \
         %d major GCs, peak heap %s words (top %s)"
        (Bastats.Table.fmt_int (int_of_float allocated))
        (Bastats.Table.fmt_int (int_of_float promoted))
        measured minor major
        (Bastats.Table.fmt_int peak_heap)
        (Bastats.Table.fmt_int top_heap);
      Printf.sprintf
        "flatness: %s (warmup %d, cooldown %d, %d rounds fitted, mean %.0f \
         words/round, slope %+.1f words/round^2, drift %+.4f, tolerance %.2f)"
        (if f.flat then "FLAT" else "NOT FLAT")
        f.warmup f.cooldown f.measured f.mean_words f.slope_words f.drift
        f.tolerance ]

let report_to_json report f =
  Json.Obj
    [ ("schema", Json.String "ba-mem-report/v1");
      ("totals", totals_json report.rep_rows);
      ("flatness", flatness_json f);
      ("rounds", Json.List (List.map row_json report.rep_rows)) ]

let report_to_csv report = rows_to_csv report.rep_rows
