(** Lightweight span/counter registry for phase timers.

    A probe is a named (count, cumulative-ns) pair in a global registry.
    Instrumented code registers its probes once at module init and wraps
    hot sections in {!start}/{!stop} (or {!time}); when the registry is
    disabled — the default — every operation short-circuits on one
    atomic load, so instrumentation left in place costs nothing
    measurable.

    Domain-safe: the registry table and each probe's counters are
    mutex-guarded (the enabled flag is atomic), so probes fired from
    parallel [Bapar] trials never tear or lose updates — {!snapshot}
    after a join sees the exact totals. Timing overhead when enabled is
    one uncontended lock per span, which disappears into the
    [Unix.gettimeofday] call on either side.

    Timestamps come from [Unix.gettimeofday] (the best clock available
    without C stubs); spans are wall-clock durations. *)

type t

val register : string -> t
(** Idempotent by name: registering twice returns the same probe. *)

val enable : unit -> unit

val disable : unit -> unit

val enabled : unit -> bool

val reset : unit -> unit
(** Zero every probe's count and accumulated time, and empty the span
    ring if one is installed (its capacity is kept). *)

val start : unit -> float
(** Span-open timestamp, or [0.] when disabled. *)

val stop : t -> float -> unit
(** Close a span opened by {!start}; a [0.] token is ignored, so a span
    opened while disabled never records. Durations are clamped to zero
    if the wall clock stepped backwards mid-span, so a probe's
    accumulated total is never decreased by an NTP adjustment. *)

val time : t -> (unit -> 'a) -> 'a
(** [time p f] runs [f] inside a span (records even if [f] raises). *)

val tick : t -> unit
(** Bump the count without timing. *)

val snapshot : unit -> (string * int * float) list
(** [(name, count, total_ns)] for every probe with a nonzero count,
    sorted by name. *)

val to_json : unit -> Json.t

val report : unit -> string
(** Human-readable table of {!snapshot}. *)

(** {2 Per-span event recording}

    Beyond the aggregate counters, each closed span can optionally be
    recorded as an individual event into a bounded {!Ring} — the raw
    material for Chrome-trace / Perfetto profiles ({!Chrome_trace}).
    Off unless {!record_spans} was called; bounded, so arbitrarily long
    runs cost constant memory (oldest spans are evicted first). *)

type span = { probe : string; start_ns : float; dur_ns : float }

val record_spans : capacity:int -> unit
(** Install (or replace) the span ring. Recording still requires the
    registry to be {!enable}d. *)

val recording_spans : unit -> bool

val spans : unit -> span list
(** Retained spans, oldest first ([[]] when no ring is installed). *)

val spans_dropped : unit -> int
(** Spans evicted from the ring so far. *)

val spans_to_json : unit -> Json.t

val profile_to_json : unit -> Json.t
(** [{schema: "ba-profile/v1"; probes; spans; spans_dropped}] — the
    snapshot-plus-spans document [ba_run --profile-json] writes and
    [ba_obs profile] converts to Chrome [trace_event] JSON. *)
