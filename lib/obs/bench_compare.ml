(* Diff two ba-bench/v1 reports (BENCH_*.json) by ns/run. A benchmark
   regresses when current/base exceeds 1 + threshold; only regressions
   make {!exit_code} nonzero, so the CLI can serve as a CI gate while
   additions, removals and missing estimates stay informational. *)

type status = Regression | Improvement | Unchanged | Added | Removed | No_estimate

type row = {
  name : string;
  base_ns : float option;
  cur_ns : float option;
  ratio : float option;  (* cur / base when both present and base > 0 *)
  status : status;
}

type t = {
  threshold : float;
  rows : row list;
}

let status_name = function
  | Regression -> "regression"
  | Improvement -> "improvement"
  | Unchanged -> "unchanged"
  | Added -> "added"
  | Removed -> "removed"
  | No_estimate -> "no-estimate"

let results_of_json json =
  let open Json in
  List.map
    (fun r ->
      let ns =
        match member_exn "ns_per_run" r with
        | Null -> None
        | (Bool _ | Int _ | Float _ | String _ | List _ | Obj _) as v ->
            Some (as_float v)
      in
      (as_string (member_exn "name" r), ns))
    (as_list (member_exn "results" json))

let classify ~threshold base cur =
  match (base, cur) with
  | None, None -> (None, No_estimate)
  | None, Some _ -> (None, Added)
  | Some _, None -> (None, Removed)
  | Some b, Some c ->
      if b <= 0.0 then (None, No_estimate)
      else
        let ratio = c /. b in
        let status =
          if ratio >= 1.0 +. threshold then Regression
          else if ratio <= 1.0 -. threshold then Improvement
          else Unchanged
        in
        (Some ratio, status)

let diff ?(threshold = 0.2) ?only ~base ~current () =
  if threshold <= 0.0 then invalid_arg "Bench_compare.diff: threshold <= 0";
  let keep name =
    match only with
    | None -> true
    | Some prefix -> String.starts_with ~prefix name
  in
  let base_results = List.filter (fun (name, _) -> keep name) (results_of_json base) in
  let cur_results = List.filter (fun (name, _) -> keep name) (results_of_json current) in
  let names =
    List.sort_uniq String.compare
      (List.map fst base_results @ List.map fst cur_results)
  in
  let rows =
    List.map
      (fun name ->
        (* [results] may list a name once with a null estimate; absence
           and a null estimate both surface as [None]. *)
        let find results =
          Option.join (List.assoc_opt name results)
        in
        let base_ns = find base_results and cur_ns = find cur_results in
        let present results = List.mem_assoc name results in
        let ratio, status =
          if not (present base_results) then (None, Added)
          else if not (present cur_results) then (None, Removed)
          else classify ~threshold base_ns cur_ns
        in
        { name; base_ns; cur_ns; ratio; status })
      names
  in
  { threshold; rows }

let regressions t =
  List.filter (fun r -> r.status = Regression) t.rows

let has_regressions t = regressions t <> []

let exit_code t = if has_regressions t then 1 else 0

let fmt_ns = function
  | None -> "-"
  | Some ns -> Printf.sprintf "%.0f" ns

let fmt_ratio = function
  | None -> "-"
  | Some r -> Printf.sprintf "%.2fx" r

let render t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "benchmark comparison (threshold %.0f%%)\n"
       (100.0 *. t.threshold));
  let name_w =
    List.fold_left (fun w r -> max w (String.length r.name)) 9 t.rows
  in
  Buffer.add_string buf
    (Printf.sprintf "%-*s %14s %14s %8s %s\n" name_w "benchmark" "base ns/run"
       "cur ns/run" "ratio" "status");
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%-*s %14s %14s %8s %s\n" name_w r.name
           (fmt_ns r.base_ns) (fmt_ns r.cur_ns) (fmt_ratio r.ratio)
           (status_name r.status)))
    t.rows;
  let n_reg = List.length (regressions t) in
  Buffer.add_string buf
    (if n_reg = 0 then "no regressions\n"
     else Printf.sprintf "%d regression(s)\n" n_reg);
  Buffer.contents buf

let to_json t =
  let opt_float = function None -> Json.Null | Some f -> Json.Float f in
  Json.Obj
    [ ("schema", Json.String "ba-bench-compare/v1");
      ("threshold", Json.Float t.threshold);
      ("regressions", Json.Int (List.length (regressions t)));
      ( "rows",
        Json.List
          (List.map
             (fun r ->
               Json.Obj
                 [ ("name", Json.String r.name);
                   ("base_ns", opt_float r.base_ns);
                   ("cur_ns", opt_float r.cur_ns);
                   ("ratio", opt_float r.ratio);
                   ("status", Json.String (status_name r.status)) ])
             t.rows) ) ]
