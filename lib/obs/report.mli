(** Trace analytics: turn an execution trace (a live
    [Basim.Trace.collector] event list or a re-parsed [--trace-jsonl]
    file) into readable artifacts — a per-round timeline, a per-node
    communication table with top-k talkers, and per-kind message-size
    summaries (p50/p95/p99 over {!Bastats.Histogram} bins).

    Accounting follows Definition 7 exactly as [Basim.Metrics] does:
    erased honest sends ([Removed] events, which carry the erased
    send's shape) count toward honest multicasts/unicasts {e and} as
    removals, so a report's totals reproduce the engine's aggregates
    for the same run — asserted in [test/test_obs.ml] and by the
    [ba_obs report --check] CI round-trip. *)

type counts = {
  mutable multicasts : int;
  mutable multicast_bits : int;  (** Definition-7 bits *)
  mutable unicasts : int;        (** targeted sends × recipients *)
  mutable unicast_bits : int;
  mutable removals : int;
  mutable injections : int;
  mutable corruptions : int;
  mutable halts : int;
}

type t

val of_events : ?rounds:int * int -> Basim.Trace.event list -> t
(** [rounds], when given, is an inclusive [(lo, hi)] window applied
    before any table is built: events outside it (by
    [Basim.Trace.round_of]; setup events are round [-1]) are dropped,
    so the timeline, matrix, histograms — and the sums {!check}
    verifies — all cover exactly the window.
    @raise Invalid_argument if [lo > hi]. *)

val of_jsonl_string : ?rounds:int * int -> string -> t
(** Parse one [Basim.Trace.of_json] event per nonempty line.
    @raise Baobs.Json.Parse_error on a malformed line. *)

val of_jsonl_channel : ?rounds:int * int -> in_channel -> t

val events : t -> Basim.Trace.event list

val event_count : t -> int

val totals : t -> counts

val rounds : t -> (int * counts) list
(** Per-round timeline, rounds ascending (round [-1] = setup). *)

val nodes : t -> (int * counts) list
(** Per-node communication matrix, node ids ascending. Removals are
    charged to the victim, injections to the corrupt source. *)

val top_talkers : ?k:int -> t -> (int * counts) list
(** The [k] (default 10) heaviest nodes by multicast bits (unicast bits,
    then node id, break ties). *)

val multicast_size_summary : t -> Bastats.Summary.t option
(** [None] when no multicast was observed. *)

val unicast_size_summary : t -> Bastats.Summary.t option

val multicast_sizes : t -> Bastats.Histogram.t
(** Bits-per-multicast histogram (erased sends included). *)

val unicast_sizes : t -> Bastats.Histogram.t

val check : t -> (unit, string list) result
(** Internal consistency: every event round-trips through
    [Trace.to_json]/[of_json], and the per-round and per-node tables
    sum back to the totals. [ba_obs report --check] exits nonzero on
    [Error]. *)

val round_table : t -> Bastats.Table.t

val talkers_table : ?k:int -> t -> Bastats.Table.t

val sizes_table : t -> Bastats.Table.t

val to_text : ?k:int -> t -> string
(** The three tables rendered for terminals. *)

val to_json : ?k:int -> t -> Baobs.Json.t
(** [ba-report/v1]: totals, per-round rows, per-node rows, top talkers,
    size summaries. *)

val to_csv : t -> string
(** The per-round timeline as CSV. *)
