(** Chrome [trace_event] JSON emission (the format Perfetto and
    chrome://tracing load). A {!Probe} profile — individual spans when
    the span ring was recording, aggregate totals otherwise — becomes a
    [{traceEvents: [...]}] document of complete events (ph ["X"]), each
    carrying the required [name]/[ph]/[ts]/[pid]/[tid] keys with
    timestamps in microseconds. *)

val of_spans : ?pid:int -> ?tid:int -> Probe.span list -> Json.t
(** One complete event per span, timestamps normalized so the earliest
    span starts at ts 0. Includes process/thread-name metadata events. *)

val of_totals : ?pid:int -> ?tid:int -> (string * int * float) list -> Json.t
(** Aggregate fallback for a {!Probe.snapshot}-shaped
    [(name, count, total_ns)] list: one bar per probe, laid end to end,
    [count] carried in [args]. *)

val of_profile : ?pid:int -> ?tid:int -> Json.t -> Json.t
(** Convert a [ba-profile/v1] document ({!Probe.profile_to_json}):
    spans if present, otherwise the probe totals.
    @raise Json.Parse_error on a malformed profile. *)

val spans_of_profile : Json.t -> Probe.span list
(** The parsed [spans] section of a profile document ([[]] if absent). *)
