(** Chrome [trace_event] JSON emission (the format Perfetto and
    chrome://tracing load). A {!Probe} profile — individual spans when
    the span ring was recording, aggregate totals otherwise — becomes a
    [{traceEvents: [...]}] document of complete events (ph ["X"]), each
    carrying the required [name]/[ph]/[ts]/[pid]/[tid] keys with
    timestamps in microseconds. *)

val metadata : pid:int -> tid:int -> name:string -> value:string -> Json.t
(** A ph ["M"] metadata event, e.g. [~name:"thread_name"] to label a
    tid. *)

val complete_event :
  pid:int ->
  tid:int ->
  name:string ->
  ts_us:float ->
  dur_us:float ->
  args:(string * Json.t) list ->
  Json.t
(** A ph ["X"] complete event (one slice). *)

val flow_event :
  pid:int ->
  tid:int ->
  name:string ->
  id:int ->
  ts_us:float ->
  [ `Start | `Step | `Finish ] ->
  Json.t
(** A flow event — ph ["s"], ["t"], or ["f"] — used in start/finish
    pairs sharing an [id] to draw an arrow between the slices enclosing
    the two timestamps. The finish carries ["bp":"e"] (bind to enclosing
    slice), the binding Perfetto expects for message-arrival arrows. *)

val instant_event :
  pid:int ->
  tid:int ->
  name:string ->
  ts_us:float ->
  args:(string * Json.t) list ->
  Json.t
(** A thread-scoped ph ["i"] instant event (zero-duration marker). *)

val document : Json.t list -> Json.t
(** Wrap events as a [{traceEvents: [...]}] trace document. *)

val of_spans : ?pid:int -> ?tid:int -> Probe.span list -> Json.t
(** One complete event per span, timestamps normalized so the earliest
    span starts at ts 0. Includes process/thread-name metadata events. *)

val of_totals : ?pid:int -> ?tid:int -> (string * int * float) list -> Json.t
(** Aggregate fallback for a {!Probe.snapshot}-shaped
    [(name, count, total_ns)] list: one bar per probe, laid end to end,
    [count] carried in [args]. *)

val of_profile : ?pid:int -> ?tid:int -> Json.t -> Json.t
(** Convert a [ba-profile/v1] document ({!Probe.profile_to_json}):
    spans if present, otherwise the probe totals.
    @raise Json.Parse_error on a malformed profile. *)

val spans_of_profile : Json.t -> Probe.span list
(** The parsed [spans] section of a profile document ([[]] if absent). *)
