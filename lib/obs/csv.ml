let field s =
  if
    String.exists
      (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r')
      s
  then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let row cells = String.concat "," (List.map field cells)

let to_string ~header rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (row header);
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      Buffer.add_string buf (row r);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf
