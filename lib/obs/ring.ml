type 'a t = {
  slots : 'a option array;
  mutable next : int;       (* index of the slot the next add overwrites *)
  mutable stored : int;     (* number of occupied slots *)
  mutable dropped : int;    (* adds that evicted an older element *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { slots = Array.make capacity None; next = 0; stored = 0; dropped = 0 }

let capacity t = Array.length t.slots

let length t = t.stored

let dropped t = t.dropped

let add t x =
  (match t.slots.(t.next) with
  | Some _ -> t.dropped <- t.dropped + 1
  | None -> t.stored <- t.stored + 1);
  t.slots.(t.next) <- Some x;
  t.next <- (t.next + 1) mod Array.length t.slots

let to_list t =
  (* Oldest first: scan [next .. next + capacity) mod capacity. *)
  let cap = Array.length t.slots in
  let acc = ref [] in
  for i = cap - 1 downto 0 do
    match t.slots.((t.next + i) mod cap) with
    | Some x -> acc := x :: !acc
    | None -> ()
  done;
  !acc
