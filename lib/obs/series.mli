(** Per-round × per-node × per-kind counter series.

    Where [Basim.Metrics] keeps run-level aggregates, a series records
    {e when} and {e by whom} each unit of communication happened — the
    granularity at which the paper's claims are stated (per-round
    multicast budgets, Ω(f²) removal counts). The engine fills one in
    when handed via [?series]; aggregate totals are then derivable from
    (and asserted against) the [Metrics] of the same run.

    Rounds start at [-1]: setup-time corruptions use round [-1],
    matching the trace convention. Storage is sparse (hash buckets per
    round), so large-n committee protocols pay for speakers, not for
    [n × rounds]. *)

type kind =
  | Multicast        (** honest multicasts (count) *)
  | Multicast_bits   (** bits of honest multicasts — Definition 7 *)
  | Unicast          (** honest pairwise messages (targeted sends × recipients) *)
  | Unicast_bits     (** bits of honest pairwise messages *)
  | Removal          (** after-the-fact erasures of honest sends *)
  | Injection        (** adversary-driven sends from corrupt nodes *)
  | Injection_bits
  | Corruption       (** corruption events *)

val all_kinds : kind list

val kind_name : kind -> string
(** Stable snake_case name used in JSON and CSV output. *)

type t

val create : n:int -> t

val n_nodes : t -> int

val record : ?by:int -> t -> round:int -> node:int -> kind -> unit
(** Add [by] (default 1) to one cell.
    @raise Invalid_argument if [round < -1] or [node] out of range. *)

val total : t -> kind -> int

val round_total : t -> round:int -> kind -> int

val node_total : t -> node:int -> kind -> int

val max_round : t -> int
(** Highest round with a bucket, or [-2] when empty. *)

val fold :
  t -> ('a -> round:int -> node:int -> kind -> int -> 'a) -> 'a -> 'a
(** Iterate nonzero cells, rounds ascending, deterministic order. *)

val to_json : t -> Json.t
(** [{ n; totals; rounds: [{round; nodes: [{node; <kind>: count}]}] }] —
    zero cells omitted. *)

val to_csv : t -> string
(** One row per (round, node) with all kind columns. *)
