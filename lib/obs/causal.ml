(* Happens-before reconstruction. The synchronous engine's semantics
   pin causality exactly: a send in round r is delivered at the start
   of round r+1, and a node's round-r behaviour is a function of its
   own round-(r-1) state plus everything delivered to it at r. The DAG
   is therefore round-stratified by construction — states (node, round)
   on a grid, memory edges (i,r)->(i,r+1), delivery edges
   (src,r)->(dst,r+1) — which makes every analysis here a linear pass:
   backward cones by BFS, taint by one forward sweep, critical paths by
   DP over rounds.

   Definition-7 removals are *severed* edges: accounted for the sender,
   absent from cones (no information flowed), and a taint source for
   the would-be recipients (the adversary chose the absence). *)

open Basim

type dst = D_all | D_targets of int list

type status = S_delivered | S_severed | S_injected

type msg = {
  m_id : int;
  m_round : int;  (* send round; delivery round is m_round + 1 *)
  m_src : int;
  m_kind : string;
  m_bits : int;  (* -1 on unlabeled injections *)
  m_multicast : bool;
  m_recipients : int;  (* as recorded in the trace *)
  m_dst : dst;
  m_status : status;
  m_approx : bool;  (* recipient set over-approximated (legacy trace) *)
}

type decision = {
  d_node : int;
  d_round : int;
  d_output : bool option;
  d_cone_states : int;
  d_tainted_states : int;
  d_critical_path : int;
}

type flow = {
  f_round : int;
  f_kind : string;
  f_multicasts : int;
  f_multicast_bits : int;
  f_unicasts : int;
  f_unicast_bits : int;
  f_removals : int;
  f_injections : int;
  f_injection_bits : int;
}

type summary = {
  s_n : int;
  s_rounds : int;
  s_delivered : int;
  s_severed : int;
  s_injected : int;
  s_approx : int;
  s_states : int;
  s_edges : int;
  s_decisions : decision list;
  s_flows : flow list;
}

type t = {
  events : Trace.event list;  (* the analyzed trace, for [check] *)
  c_n : int;
  c_rounds : int;  (* state grid spans rounds 0 .. c_rounds - 1 *)
  msgs : msg list;  (* trace order *)
  edges : int;
  tainted : bool array;  (* per state, r * n + i *)
  c_decisions : decision list;
  c_flows : flow list;
  adversarial : bool;  (* any Corrupted/Removed/Injected event *)
}

(* ---------- construction ------------------------------------------------ *)

(* Recipient resolution for a message-bearing event. With causal
   recording the engine wrote the explicit target list (or the event is
   a multicast); legacy traces only kept the recipient *count*, so a
   targeted send with 0 < recipients < n must be over-approximated as
   reaching everyone — cones and taint become upper bounds, flagged via
   [m_approx]. *)
let resolve_dst ~n ~multicast ~recipients ~targets =
  if multicast then (D_all, false)
  else
    match targets with
    | _ :: _ -> (D_targets targets, false)
    | [] ->
        if recipients <= 0 then (D_targets [], false)
        else if recipients >= n then (D_all, false)
        else (D_all, true)

let infer_n events =
  List.fold_left
    (fun acc e ->
      let node_bound =
        match e with
        | Trace.Round_started _ -> 0
        | Trace.Sent { node; multicast; recipients; targets; _ } ->
            let t = List.fold_left (fun a j -> max a (j + 1)) 0 targets in
            max (node + 1) (max t (if multicast then recipients else 0))
        | Trace.Removed { victim; multicast; recipients; targets; _ } ->
            let t = List.fold_left (fun a j -> max a (j + 1)) 0 targets in
            max (victim + 1) (max t (if multicast then recipients else 0))
        | Trace.Injected { src; recipients; targets; _ } ->
            let t = List.fold_left (fun a j -> max a (j + 1)) 0 targets in
            max (src + 1) (max t recipients)
        | Trace.Corrupted { node; _ } -> node + 1
        | Trace.Halted { node; _ } -> node + 1
      in
      max acc node_bound)
    1 events

let iter_targets ~n m f =
  match m.m_dst with
  | D_all ->
      for j = 0 to n - 1 do
        f j
      done
  | D_targets ts -> List.iter f ts

let of_events ?n events =
  let n = match n with Some n -> max 1 n | None -> infer_n events in
  let max_round =
    List.fold_left (fun acc e -> max acc (Trace.round_of e)) (-1) events
  in
  let rounds = max_round + 1 in
  let states = n * rounds in
  let state r i = (r * n) + i in
  (* Messages, with stable ids: recorded ids when present, fresh ids
     past the recorded maximum for unlabeled events (so labeled and
     synthetic ids never collide). *)
  let max_recorded_id =
    List.fold_left
      (fun acc e ->
        match Trace.message_id e with Some id -> max acc id | None -> acc)
      Trace.no_id events
  in
  let next_synthetic = ref (max_recorded_id + 1) in
  let fresh id =
    if id <> Trace.no_id then id
    else begin
      let id = !next_synthetic in
      incr next_synthetic;
      id
    end
  in
  let msgs =
    List.filter_map
      (fun e ->
        match e with
        | Trace.Sent { round; node; multicast; recipients; bits; id; kind; targets }
          ->
            let m_dst, m_approx =
              resolve_dst ~n ~multicast ~recipients ~targets
            in
            Some
              { m_id = fresh id; m_round = round; m_src = node; m_kind = kind;
                m_bits = bits; m_multicast = multicast;
                m_recipients = recipients; m_dst; m_status = S_delivered;
                m_approx }
        | Trace.Removed
            { round; victim; multicast; recipients; bits; id; kind; targets } ->
            let m_dst, m_approx =
              resolve_dst ~n ~multicast ~recipients ~targets
            in
            Some
              { m_id = fresh id; m_round = round; m_src = victim;
                m_kind = kind; m_bits = bits; m_multicast = multicast;
                m_recipients = recipients; m_dst; m_status = S_severed;
                m_approx }
        | Trace.Injected { round; src; recipients; bits; id; kind; targets } ->
            let multicast = targets = [] && recipients >= n in
            let m_dst, m_approx =
              resolve_dst ~n ~multicast ~recipients ~targets
            in
            Some
              { m_id = fresh id; m_round = round; m_src = src; m_kind = kind;
                m_bits = bits; m_multicast = multicast;
                m_recipients = recipients; m_dst; m_status = S_injected;
                m_approx }
        | Trace.Round_started _ | Trace.Corrupted _ | Trace.Halted _ -> None)
      events
  in
  (* Delivery adjacency: per state, the source nodes of the messages
     delivered there. Senders in the final round have no consumer. *)
  let in_srcs = Array.make (max states 1) [] in
  let edges = ref 0 in
  List.iter
    (fun m ->
      match m.m_status with
      | S_severed -> ()
      | S_delivered | S_injected ->
          let r = m.m_round + 1 in
          if r < rounds then
            iter_targets ~n m (fun j ->
                in_srcs.(state r j) <- m.m_src :: in_srcs.(state r j);
                incr edges))
    msgs;
  (* Taint: one forward sweep. Corruption of node i in round r taints
     i's states from r+1 on (round-r intents were computed honestly;
     setup corruption r = -1 taints from round 0); injections and
     severed sends taint their (would-be) recipients at the delivery
     round; delivered messages propagate the sender's taint. *)
  let corrupt_from = Array.make n max_int in
  let adversarial = ref false in
  List.iter
    (fun e ->
      match e with
      | Trace.Corrupted { round; node } ->
          adversarial := true;
          if node >= 0 && node < n then
            corrupt_from.(node) <- min corrupt_from.(node) (max 0 (round + 1))
      | Trace.Removed _ | Trace.Injected _ -> adversarial := true
      | Trace.Round_started _ | Trace.Sent _ | Trace.Halted _ -> ())
    events;
  let by_send_round = Array.make (max rounds 1) [] in
  List.iter
    (fun m ->
      if m.m_round >= 0 && m.m_round < rounds then
        by_send_round.(m.m_round) <- m :: by_send_round.(m.m_round))
    msgs;
  let tainted = Array.make (max states 1) false in
  for r = 0 to rounds - 1 do
    for i = 0 to n - 1 do
      if
        corrupt_from.(i) <= r || (r > 0 && tainted.(state (r - 1) i))
      then tainted.(state r i) <- true
    done;
    if r > 0 then
      List.iter
        (fun m ->
          let source_tainted =
            match m.m_status with
            | S_injected | S_severed -> true
            | S_delivered -> tainted.(state (r - 1) m.m_src)
          in
          if source_tainted then
            iter_targets ~n m (fun j -> tainted.(state r j) <- true))
        by_send_round.(r - 1)
  done;
  (* Critical path: longest delivery-edge chain into each state. *)
  let depth = Array.make (max states 1) 0 in
  for r = 1 to rounds - 1 do
    for i = 0 to n - 1 do
      let d =
        List.fold_left
          (fun acc src -> max acc (depth.(state (r - 1) src) + 1))
          depth.(state (r - 1) i)
          in_srcs.(state r i)
      in
      depth.(state r i) <- d
    done
  done;
  (* Backward cones, one BFS per decision. The [mark] stamp array makes
     re-use O(1) — no clearing between decisions. *)
  let mark = Array.make (max states 1) (-1) in
  let cone_of stamp node round =
    let cone = ref 0 and cone_tainted = ref 0 in
    let stack = ref [ state round node ] in
    mark.(state round node) <- stamp;
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | s :: rest ->
          stack := rest;
          incr cone;
          if tainted.(s) then incr cone_tainted;
          let r = s / n and i = s mod n in
          if r > 0 then begin
            let visit j =
              let s' = state (r - 1) j in
              if mark.(s') <> stamp then begin
                mark.(s') <- stamp;
                stack := s' :: !stack
              end
            in
            visit i;
            List.iter visit in_srcs.(s)
          end
    done;
    (!cone, !cone_tainted)
  in
  let decisions =
    List.filter_map
      (fun e ->
        match e with
        | Trace.Halted { round; node; output } when round >= 0 && round < rounds
          ->
            Some (round, node, output)
        | Trace.Halted _ | Trace.Round_started _ | Trace.Sent _
        | Trace.Corrupted _ | Trace.Removed _ | Trace.Injected _ -> None)
      events
    |> List.sort (fun (r1, n1, _) (r2, n2, _) ->
           match Int.compare r1 r2 with 0 -> Int.compare n1 n2 | c -> c)
    |> List.mapi (fun stamp (round, node, output) ->
           let cone, cone_tainted = cone_of stamp node round in
           { d_node = node;
             d_round = round;
             d_output = output;
             d_cone_states = cone;
             d_tainted_states = cone_tainted;
             d_critical_path = depth.(state round node) })
  in
  (* Per-kind × per-round flow matrix, Definition-7 accounting: severed
     sends count toward the sender's multicast/unicast totals *and* as
     removals, matching [Basim.Metrics] / [Report]. *)
  let flow_tbl : (int * string, flow ref) Hashtbl.t = Hashtbl.create 32 in
  let flow_slot round kind =
    match Hashtbl.find_opt flow_tbl (round, kind) with
    | Some f -> f
    | None ->
        let f =
          ref
            { f_round = round; f_kind = kind; f_multicasts = 0;
              f_multicast_bits = 0; f_unicasts = 0; f_unicast_bits = 0;
              f_removals = 0; f_injections = 0; f_injection_bits = 0 }
        in
        Hashtbl.add flow_tbl (round, kind) f;
        f
  in
  List.iter
    (fun m ->
      let f = flow_slot m.m_round m.m_kind in
      (match m.m_status with
      | S_delivered | S_severed ->
          if m.m_multicast then
            f :=
              { !f with
                f_multicasts = !f.f_multicasts + 1;
                f_multicast_bits = !f.f_multicast_bits + m.m_bits }
          else
            f :=
              { !f with
                f_unicasts = !f.f_unicasts + m.m_recipients;
                f_unicast_bits =
                  !f.f_unicast_bits + (m.m_recipients * m.m_bits) }
      | S_injected ->
          f :=
            { !f with
              f_injections = !f.f_injections + 1;
              f_injection_bits = !f.f_injection_bits + max 0 m.m_bits });
      match m.m_status with
      | S_severed -> f := { !f with f_removals = !f.f_removals + 1 }
      | S_delivered | S_injected -> ())
    msgs;
  let flows =
    Hashtbl.fold (fun _ f acc -> !f :: acc) flow_tbl []
    |> List.sort (fun a b ->
           match Int.compare a.f_round b.f_round with
           | 0 -> String.compare a.f_kind b.f_kind
           | c -> c)
  in
  { events;
    c_n = n;
    c_rounds = rounds;
    msgs;
    edges = !edges;
    tainted;
    c_decisions = decisions;
    c_flows = flows;
    adversarial = !adversarial }

let of_jsonl_string ?n text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         if String.trim line = "" then None
         else Some (Trace.of_json (Baobs.Json.of_string line)))
  |> of_events ?n

(* ---------- accessors --------------------------------------------------- *)

let n t = t.c_n

let rounds t = t.c_rounds

let decisions t = t.c_decisions

let flows t = t.c_flows

let count_status t status =
  List.length (List.filter (fun m -> m.m_status = status) t.msgs)

let approx_messages t =
  List.length (List.filter (fun m -> m.m_approx) t.msgs)

let summary t =
  { s_n = t.c_n;
    s_rounds = t.c_rounds;
    s_delivered = count_status t S_delivered;
    s_severed = count_status t S_severed;
    s_injected = count_status t S_injected;
    s_approx = approx_messages t;
    s_states = t.c_n * t.c_rounds;
    s_edges = t.edges;
    s_decisions = t.c_decisions;
    s_flows = t.c_flows }

let taint_fraction d =
  if d.d_cone_states = 0 then 0.
  else float_of_int d.d_tainted_states /. float_of_int d.d_cone_states

(* ---------- self-verification ------------------------------------------- *)

let check t =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  (* Round-stratification (acyclicity): every delivery edge advances the
     round by exactly one and stays on the grid. *)
  List.iter
    (fun m ->
      (match m.m_status with
      | S_severed -> ()
      | S_delivered | S_injected ->
          if m.m_round + 1 >= t.c_rounds then ()
          else
            iter_targets ~n:t.c_n m (fun j ->
                if j < 0 || j >= t.c_n then
                  err "message %d: recipient %d outside 0..%d" m.m_id j
                    (t.c_n - 1)));
      if m.m_round < 0 then
        err "message %d: sent in negative round %d" m.m_id m.m_round)
    t.msgs;
  (* Flow-matrix sums must reproduce the Definition-7 totals of an
     independently coded analysis over the same events. *)
  let totals = Report.totals (Report.of_events t.events) in
  let sum f = List.fold_left (fun acc x -> acc + f x) 0 t.c_flows in
  let expect name got want =
    if got <> want then err "flows.%s = %d but report totals say %d" name got want
  in
  expect "multicasts" (sum (fun f -> f.f_multicasts)) totals.Report.multicasts;
  expect "multicast_bits"
    (sum (fun f -> f.f_multicast_bits))
    totals.Report.multicast_bits;
  expect "unicasts" (sum (fun f -> f.f_unicasts)) totals.Report.unicasts;
  expect "unicast_bits"
    (sum (fun f -> f.f_unicast_bits))
    totals.Report.unicast_bits;
  expect "removals" (sum (fun f -> f.f_removals)) totals.Report.removals;
  expect "injections" (sum (fun f -> f.f_injections)) totals.Report.injections;
  (* Per-decision sanity. *)
  let states = t.c_n * t.c_rounds in
  List.iter
    (fun d ->
      if d.d_tainted_states < 0 || d.d_tainted_states > d.d_cone_states then
        err "decision (%d, %d): tainted %d outside 0..cone %d" d.d_node
          d.d_round d.d_tainted_states d.d_cone_states;
      if d.d_cone_states > states then
        err "decision (%d, %d): cone %d exceeds %d states" d.d_node d.d_round
          d.d_cone_states states;
      if d.d_cone_states < d.d_round + 1 then
        err "decision (%d, %d): cone %d misses the decider's memory chain"
          d.d_node d.d_round d.d_cone_states;
      if d.d_critical_path > d.d_round then
        err "decision (%d, %d): critical path %d exceeds the round" d.d_node
          d.d_round d.d_critical_path;
      if (not t.adversarial) && d.d_tainted_states <> 0 then
        err "decision (%d, %d): taint %d on an adversary-free trace" d.d_node
          d.d_round d.d_tainted_states)
    t.c_decisions;
  match List.rev !errors with [] -> Ok () | es -> Error es

(* ---------- exporters --------------------------------------------------- *)

let kind_label kind = if kind = Trace.no_kind then "?" else kind

let to_text ?(top = 10) t =
  let s = summary t in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "nodes: %d  rounds: %d  states: %d  delivery edges: %d\n"
       s.s_n s.s_rounds s.s_states s.s_edges);
  Buffer.add_string buf
    (Printf.sprintf "messages: %d delivered, %d severed, %d injected\n"
       s.s_delivered s.s_severed s.s_injected);
  if s.s_approx > 0 then
    Buffer.add_string buf
      (Printf.sprintf
         "warning: %d targeted messages lack recipient lists (legacy \
          trace); cones and taint are upper bounds\n"
         s.s_approx);
  let dec_table =
    Bastats.Table.create ~title:"Decisions (highest tainted fraction first)"
      ~columns:
        [ "node"; "round"; "output"; "cone"; "tainted"; "taint"; "crit-path" ]
  in
  let by_taint a b =
    match Float.compare (taint_fraction b) (taint_fraction a) with
    | 0 -> (
        match Int.compare a.d_round b.d_round with
        | 0 -> Int.compare a.d_node b.d_node
        | c -> c)
    | c -> c
  in
  List.sort by_taint s.s_decisions
  |> List.filteri (fun i _ -> i < top)
  |> List.iter (fun d ->
         Bastats.Table.add_row dec_table
           [ string_of_int d.d_node;
             string_of_int d.d_round;
             (match d.d_output with
             | Some true -> "1"
             | Some false -> "0"
             | None -> "-");
             string_of_int d.d_cone_states;
             string_of_int d.d_tainted_states;
             Printf.sprintf "%.3f" (taint_fraction d);
             string_of_int d.d_critical_path ]);
  Buffer.add_string buf (Bastats.Table.render dec_table);
  Buffer.add_char buf '\n';
  let flow_table =
    Bastats.Table.create ~title:"Flow matrix (per round x kind)"
      ~columns:
        [ "round"; "kind"; "multicasts"; "mcast_bits"; "unicasts";
          "ucast_bits"; "removals"; "injections"; "inj_bits" ]
  in
  List.iter
    (fun f ->
      Bastats.Table.add_row flow_table
        [ string_of_int f.f_round;
          kind_label f.f_kind;
          string_of_int f.f_multicasts;
          string_of_int f.f_multicast_bits;
          string_of_int f.f_unicasts;
          string_of_int f.f_unicast_bits;
          string_of_int f.f_removals;
          string_of_int f.f_injections;
          string_of_int f.f_injection_bits ])
    s.s_flows;
  Buffer.add_string buf (Bastats.Table.render flow_table);
  Buffer.contents buf

let decision_to_json d =
  Baobs.Json.Obj
    [ ("node", Baobs.Json.Int d.d_node);
      ("round", Baobs.Json.Int d.d_round);
      ( "output",
        match d.d_output with
        | Some b -> Baobs.Json.Bool b
        | None -> Baobs.Json.Null );
      ("cone_states", Baobs.Json.Int d.d_cone_states);
      ("tainted_states", Baobs.Json.Int d.d_tainted_states);
      ("critical_path", Baobs.Json.Int d.d_critical_path) ]

let flow_to_json f =
  Baobs.Json.Obj
    [ ("round", Baobs.Json.Int f.f_round);
      ("kind", Baobs.Json.String f.f_kind);
      ("multicasts", Baobs.Json.Int f.f_multicasts);
      ("multicast_bits", Baobs.Json.Int f.f_multicast_bits);
      ("unicasts", Baobs.Json.Int f.f_unicasts);
      ("unicast_bits", Baobs.Json.Int f.f_unicast_bits);
      ("removals", Baobs.Json.Int f.f_removals);
      ("injections", Baobs.Json.Int f.f_injections);
      ("injection_bits", Baobs.Json.Int f.f_injection_bits) ]

let summary_to_json s =
  let tainted_decisions =
    List.length (List.filter (fun d -> d.d_tainted_states > 0) s.s_decisions)
  in
  Baobs.Json.Obj
    [ ("schema", Baobs.Json.String "ba-causal/v1");
      ("n", Baobs.Json.Int s.s_n);
      ("rounds", Baobs.Json.Int s.s_rounds);
      ("delivered", Baobs.Json.Int s.s_delivered);
      ("severed", Baobs.Json.Int s.s_severed);
      ("injected", Baobs.Json.Int s.s_injected);
      ("approx", Baobs.Json.Int s.s_approx);
      ("states", Baobs.Json.Int s.s_states);
      ("edges", Baobs.Json.Int s.s_edges);
      (* Derived, for cheap downstream gating (greppable in CI). *)
      ("decision_count", Baobs.Json.Int (List.length s.s_decisions));
      ("tainted_decision_count", Baobs.Json.Int tainted_decisions);
      ("decisions", Baobs.Json.List (List.map decision_to_json s.s_decisions));
      ("flows", Baobs.Json.List (List.map flow_to_json s.s_flows)) ]

let to_json t = summary_to_json (summary t)

let summary_of_json json =
  let open Baobs.Json in
  let fail msg = raise (Parse_error ("Causal.summary_of_json: " ^ msg)) in
  (match member "schema" json with
  | Some (String "ba-causal/v1") -> ()
  | Some (String s) -> fail (Printf.sprintf "unexpected schema %S" s)
  | Some (Null | Bool _ | Int _ | Float _ | List _ | Obj _) | None ->
      fail "missing schema");
  let int k j = as_int (member_exn k j) in
  let decision j =
    { d_node = int "node" j;
      d_round = int "round" j;
      d_output =
        (match member_exn "output" j with
        | Null -> None
        | Bool b -> Some b
        | Int _ | Float _ | String _ | List _ | Obj _ ->
            fail "decision output must be a bool or null");
      d_cone_states = int "cone_states" j;
      d_tainted_states = int "tainted_states" j;
      d_critical_path = int "critical_path" j }
  in
  let flow j =
    { f_round = int "round" j;
      f_kind = as_string (member_exn "kind" j);
      f_multicasts = int "multicasts" j;
      f_multicast_bits = int "multicast_bits" j;
      f_unicasts = int "unicasts" j;
      f_unicast_bits = int "unicast_bits" j;
      f_removals = int "removals" j;
      f_injections = int "injections" j;
      f_injection_bits = int "injection_bits" j }
  in
  { s_n = int "n" json;
    s_rounds = int "rounds" json;
    s_delivered = int "delivered" json;
    s_severed = int "severed" json;
    s_injected = int "injected" json;
    s_approx = int "approx" json;
    s_states = int "states" json;
    s_edges = int "edges" json;
    s_decisions = List.map decision (as_list (member_exn "decisions" json));
    s_flows = List.map flow (as_list (member_exn "flows" json)) }

let to_csv t =
  Baobs.Csv.to_string
    ~header:
      [ "round"; "kind"; "multicasts"; "multicast_bits"; "unicasts";
        "unicast_bits"; "removals"; "injections"; "injection_bits" ]
    (List.map
       (fun f ->
         [ string_of_int f.f_round;
           kind_label f.f_kind;
           string_of_int f.f_multicasts;
           string_of_int f.f_multicast_bits;
           string_of_int f.f_unicasts;
           string_of_int f.f_unicast_bits;
           string_of_int f.f_removals;
           string_of_int f.f_injections;
           string_of_int f.f_injection_bits ])
       t.c_flows)

let to_dot t =
  let buf = Buffer.create 4096 in
  let state r i = (r * t.c_n) + i in
  Buffer.add_string buf "digraph causal {\n  rankdir=LR;\n";
  Buffer.add_string buf
    "  node [shape=circle, fontsize=8, width=0.3, fixedsize=true];\n";
  for r = 0 to t.c_rounds - 1 do
    Buffer.add_string buf "  { rank=same;";
    for i = 0 to t.c_n - 1 do
      Buffer.add_string buf (Printf.sprintf " s%d_%d;" i r)
    done;
    Buffer.add_string buf " }\n";
    for i = 0 to t.c_n - 1 do
      Buffer.add_string buf
        (Printf.sprintf "  s%d_%d [label=\"%d@%d\"%s];\n" i r i r
           (if t.tainted.(state r i) then
              ", style=filled, fillcolor=salmon"
            else ""))
    done
  done;
  (* Memory edges. *)
  for r = 0 to t.c_rounds - 2 do
    for i = 0 to t.c_n - 1 do
      Buffer.add_string buf
        (Printf.sprintf "  s%d_%d -> s%d_%d [color=gray, arrowsize=0.4];\n" i r
           i (r + 1))
    done
  done;
  (* Delivered multicasts share one fan-out point per (sender, round,
     origin) so the edge count stays linear in n per sending state. *)
  let fanouts : (int * int * status, string list) Hashtbl.t =
    Hashtbl.create 32
  in
  List.iter
    (fun m ->
      match (m.m_status, m.m_dst) with
      | (S_delivered | S_injected), D_all when m.m_round + 1 < t.c_rounds ->
          let key = (m.m_src, m.m_round, m.m_status) in
          let kinds =
            Option.value ~default:[] (Hashtbl.find_opt fanouts key)
          in
          Hashtbl.replace fanouts key (kind_label m.m_kind :: kinds)
      | (S_delivered | S_injected | S_severed), (D_all | D_targets _) -> ())
    t.msgs;
  Hashtbl.iter
    (fun (src, r, status) kinds ->
      let point =
        Printf.sprintf "f%d_%d%s" src r
          (match status with S_injected -> "i" | S_delivered | S_severed -> "")
      in
      let color =
        match status with
        | S_injected -> ", color=red"
        | S_delivered | S_severed -> ""
      in
      Buffer.add_string buf
        (Printf.sprintf
           "  %s [shape=point, width=0.05, xlabel=\"%s\"];\n  s%d_%d -> %s \
            [arrowhead=none%s];\n"
           point
           (String.concat "," (List.sort_uniq String.compare kinds))
           src r point color);
      for j = 0 to t.c_n - 1 do
        Buffer.add_string buf
          (Printf.sprintf "  %s -> s%d_%d [arrowsize=0.4%s];\n" point j (r + 1)
             color)
      done)
    fanouts;
  (* Targeted deliveries: direct edges. Severed sends: a dashed red stub
     to a dead-end point — the Definition-7 erasure made visible. *)
  List.iter
    (fun m ->
      match (m.m_status, m.m_dst) with
      | S_severed, _ ->
          Buffer.add_string buf
            (Printf.sprintf
               "  x%d [shape=point, width=0.05, color=red];\n  s%d_%d -> x%d \
                [style=dashed, color=red, label=\"%s\"];\n"
               m.m_id m.m_src m.m_round m.m_id (kind_label m.m_kind))
      | (S_delivered | S_injected), D_targets ts
        when m.m_round + 1 < t.c_rounds ->
          let color =
            match m.m_status with
            | S_injected -> ", color=red"
            | S_delivered | S_severed -> ""
          in
          List.iter
            (fun j ->
              Buffer.add_string buf
                (Printf.sprintf "  s%d_%d -> s%d_%d [arrowsize=0.4%s];\n"
                   m.m_src m.m_round j (m.m_round + 1) color))
            ts
      | (S_delivered | S_injected), (D_all | D_targets _) -> ())
    t.msgs;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_chrome t =
  let pid = 1 in
  let round_us r = float_of_int r *. 1000.0 in
  let mid_us r = round_us r +. 450.0 in
  let events = ref [] in
  let emit e = events := e :: !events in
  emit
    (Baobs.Chrome_trace.metadata ~pid ~tid:0 ~name:"process_name"
       ~value:"ba_causal");
  for i = 0 to t.c_n - 1 do
    emit
      (Baobs.Chrome_trace.metadata ~pid ~tid:i ~name:"thread_name"
         ~value:(Printf.sprintf "node %d" i))
  done;
  for r = 0 to t.c_rounds - 1 do
    for i = 0 to t.c_n - 1 do
      let args =
        if t.tainted.((r * t.c_n) + i) then
          [ ("tainted", Baobs.Json.Bool true) ]
        else []
      in
      emit
        (Baobs.Chrome_trace.complete_event ~pid ~tid:i
           ~name:(Printf.sprintf "r%d" r)
           ~ts_us:(round_us r) ~dur_us:900.0 ~args)
    done
  done;
  List.iter
    (fun m ->
      let name =
        if m.m_kind = Trace.no_kind then "msg" else m.m_kind
      in
      match m.m_status with
      | S_severed ->
          emit
            (Baobs.Chrome_trace.instant_event ~pid ~tid:m.m_src
               ~name:("removed:" ^ name)
               ~ts_us:(mid_us m.m_round)
               ~args:[ ("recipients", Baobs.Json.Int m.m_recipients) ])
      | S_delivered | S_injected ->
          if m.m_round + 1 < t.c_rounds then begin
            emit
              (Baobs.Chrome_trace.flow_event ~pid ~tid:m.m_src ~name
                 ~id:m.m_id ~ts_us:(mid_us m.m_round) `Start);
            iter_targets ~n:t.c_n m (fun j ->
                emit
                  (Baobs.Chrome_trace.flow_event ~pid ~tid:j ~name ~id:m.m_id
                     ~ts_us:(mid_us (m.m_round + 1))
                     `Finish))
          end)
    t.msgs;
  List.iter
    (fun d ->
      emit
        (Baobs.Chrome_trace.instant_event ~pid ~tid:d.d_node ~name:"halt"
           ~ts_us:(mid_us d.d_round)
           ~args:
             [ ( "output",
                 match d.d_output with
                 | Some b -> Baobs.Json.Bool b
                 | None -> Baobs.Json.Null );
               ("tainted_states", Baobs.Json.Int d.d_tainted_states);
               ("cone_states", Baobs.Json.Int d.d_cone_states) ]))
    t.c_decisions;
  Baobs.Chrome_trace.document (List.rev !events)
