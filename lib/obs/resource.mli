(** Runtime-resource telemetry: GC/memory samplers, a per-round
    recorder, and the memory-flatness analysis behind [ba_obs mem].

    The paper's sub-HM protocol wins because per-round work is polylog;
    the million-node engine (ROADMAP item 1) is gated on evidence that
    per-round {e memory} stays flat too. This module is the measuring
    instrument: cheap samplers over [Gc.quick_stat] (counter reads — no
    collection is triggered, no protocol-visible state is touched, so a
    recorded run's trace is byte-identical to an unrecorded one),
    delta snapshots between them, a per-round series recorder the
    engine fills via [Engine.run ?resource], and JSON
    ([ba-resource/v1]) / CSV encoders plus the flatness check CI gates
    on.

    Like {!Probe}, recording is off by default behind a global switch:
    {!round_begin} / {!round_end} short-circuit on one atomic load when
    disabled, so an engine built with resource hooks in place costs
    nothing unless a caller opts in. *)

(** {2 Samplers} *)

type sample = {
  minor_words : float;       (** cumulative words allocated in the minor heap *)
  promoted_words : float;    (** cumulative words promoted minor → major *)
  major_words : float;       (** cumulative words allocated in the major heap,
                                 including promotions *)
  minor_collections : int;
  major_collections : int;
  compactions : int;
  heap_words : int;          (** current major-heap size (level, not counter) *)
  top_heap_words : int;      (** high-water major-heap size *)
}

val sample : unit -> sample
(** Snapshot via [Gc.quick_stat] — counter reads only, no collection. *)

val live_words : unit -> int
(** Live words via [Gc.stat]. {b Expensive}: forces a full major
    collection, so call it around runs, never per round. *)

type delta = {
  allocated_words : float;
      (** words newly allocated between the samples:
          minor + major − promoted (promotions would otherwise be
          double-counted) *)
  promoted_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
  heap_growth_words : int;
      (** change in major-heap size — the one signed field: the heap
          can shrink *)
}

val delta : before:sample -> after:sample -> delta
(** All counter-derived fields are non-negative for samples taken in
    order on one domain (the counters are monotonic); only
    [heap_growth_words] can be negative. *)

(** {2 Global switch (mirrors {!Probe})} *)

val enable : unit -> unit

val disable : unit -> unit

val enabled : unit -> bool

(** {2 Per-round recorder} *)

type row = {
  round : int;               (** [-1] = setup (env, static corruptions, init) *)
  row_allocated_words : float;
  row_promoted_words : float;
  minor_gcs : int;
  major_gcs : int;
  row_heap_words : int;      (** major-heap size at round end *)
  row_top_heap_words : int;  (** high water at round end *)
}

type t

val create : unit -> t

val round_begin : t -> unit
(** Open a round window (samples only when {!enabled}). *)

val round_end : t -> round:int -> unit
(** Close the window opened by {!round_begin} and append a {!row}.
    A window opened while disabled records nothing. *)

val rows : t -> row list
(** Recorded rows, in recording order. *)

val allocation_summary : t -> Bastats.Summary.t option
(** Streaming ({!Bastats.Sketch}) summary of allocated words per round
    over rows with [round >= 0] — O(1) memory however long the run.
    [None] when no such row was recorded. *)

val to_json : ?meta:(string * Json.t) list -> t -> Json.t
(** [ba-resource/v1]: [{schema; ...meta; totals; per_round; rounds}].
    [meta] fields (protocol, n, seed, …) are spliced in after the
    schema tag. *)

val to_csv : t -> string

(** {2 Analysis ([ba_obs mem])} *)

type report
(** A parsed [ba-resource/v1] document. *)

val report_of_json : Json.t -> report
(** @raise Json.Parse_error on a missing/foreign schema tag or
    malformed rows. *)

val report_rows : report -> row list

type flatness = {
  warmup : int;        (** leading post-setup rounds excluded from the fit *)
  cooldown : int;      (** trailing rounds excluded — the decide/halt
                           phase is a one-off allocation spike, not a
                           leak *)
  measured : int;      (** rounds the fit ran over *)
  mean_words : float;  (** mean allocated words/round in the window *)
  slope_words : float; (** Theil–Sen slope (median of pairwise slopes),
                           words/round per round — robust to per-epoch
                           allocation bursts and decision-round spikes,
                           unlike a least-squares fit *)
  drift : float;       (** [slope × (measured − 1) / mean]: the fitted
                           relative change in per-round allocation
                           across the whole window *)
  tolerance : float;
  flat : bool;         (** [|drift| <= tolerance] *)
}

val flatness :
  ?warmup:int -> ?cooldown:int -> ?tolerance:float -> report -> flatness
(** Fit allocated-words-per-round against round index over the
    steady-state window — executed rounds with the first [warmup] and
    last [cooldown] trimmed (setup row excluded) — with a Theil–Sen
    estimator. [warmup] and [cooldown] each default to a fifth of the
    rounds (at least 1); [tolerance] defaults to 0.25. Fewer than 3
    windowed rounds fit trivially flat. *)

val report_to_text : report -> flatness -> string

val report_to_json : report -> flatness -> Json.t
(** [ba-mem-report/v1]. *)

val report_to_csv : report -> string
