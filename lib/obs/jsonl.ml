type target = Channel of out_channel | Buffer of Buffer.t

type t = { target : target; mutable emitted : int }

let to_channel oc = { target = Channel oc; emitted = 0 }

let to_buffer buf = { target = Buffer buf; emitted = 0 }

let emit t json =
  let line = Json.to_string json in
  (match t.target with
  | Channel oc ->
      output_string oc line;
      output_char oc '\n'
  | Buffer buf ->
      Buffer.add_string buf line;
      Buffer.add_char buf '\n');
  t.emitted <- t.emitted + 1

let emitted t = t.emitted

let flush t =
  match t.target with Channel oc -> flush oc | Buffer _ -> ()

let validate_path path =
  let dir = Filename.dirname path in
  if not (Sys.file_exists dir) then
    Error (Printf.sprintf "%s: parent directory %s does not exist" path dir)
  else if not (Sys.is_directory dir) then
    Error (Printf.sprintf "%s: parent %s is not a directory" path dir)
  else if Sys.file_exists path && Sys.is_directory path then
    Error (Printf.sprintf "%s: is a directory" path)
  else Ok ()
