(** Minimal dependency-free JSON: a value type, a compact printer, and a
    strict parser. Used by every telemetry exporter (metric series, trace
    JSONL, bench results, experiment tables) — the toolchain has no
    [yojson], so this is the repository's one JSON implementation. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string
(** Compact (single-line) rendering. Non-finite floats print as [null]. *)

val to_buffer : Buffer.t -> t -> unit

val of_string : string -> t
(** Strict parse of one JSON document.
    @raise Parse_error on malformed input or trailing garbage. *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on other constructors. *)

val member_exn : string -> t -> t
(** @raise Parse_error when the member is absent. *)

val as_int : t -> int

val as_float : t -> float
(** Accepts [Int] too. *)

val as_string : t -> string

val as_bool : t -> bool

val as_list : t -> t list
