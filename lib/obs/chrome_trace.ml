(* Chrome trace_event ("Trace Event Format") emission. Only the subset
   Perfetto / chrome://tracing actually require is produced: complete
   events (ph "X") with name/ts/dur/pid/tid, plus process/thread name
   metadata (ph "M"). Timestamps are microseconds; span inputs are
   nanoseconds, normalized so the earliest span starts at ts 0 (raw
   wall-clock epochs overflow the viewer's usable range). *)

let default_pid = 1

let default_tid = 1

let us_of_ns ns = ns /. 1e3

let metadata ~pid ~tid ~name ~value =
  Json.Obj
    [ ("name", Json.String name);
      ("ph", Json.String "M");
      ("ts", Json.Float 0.0);
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.String value) ]) ]

let complete_event ~pid ~tid ~name ~ts_us ~dur_us ~args =
  Json.Obj
    [ ("name", Json.String name);
      ("ph", Json.String "X");
      ("ts", Json.Float ts_us);
      ("dur", Json.Float dur_us);
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("args", Json.Obj args) ]

(* Flow events bind arrows between slices: a start (ph "s") and a finish
   (ph "f") sharing an [id] draw one arrow from the slice enclosing the
   start's ts/pid/tid to the one enclosing the finish's. "bp":"e" on the
   finish makes the arrow land at the enclosing slice even when the ts
   falls mid-slice (the binding Perfetto expects for message arrival). *)
let flow_event ~pid ~tid ~name ~id ~ts_us phase =
  let ph, extra =
    match phase with
    | `Start -> ("s", [])
    | `Step -> ("t", [])
    | `Finish -> ("f", [ ("bp", Json.String "e") ])
  in
  Json.Obj
    ([ ("name", Json.String name);
       ("cat", Json.String "flow");
       ("ph", Json.String ph);
       ("id", Json.Int id);
       ("ts", Json.Float ts_us);
       ("pid", Json.Int pid);
       ("tid", Json.Int tid) ]
    @ extra)

(* Thread-scoped instant event (ph "i"): a zero-duration marker. *)
let instant_event ~pid ~tid ~name ~ts_us ~args =
  Json.Obj
    [ ("name", Json.String name);
      ("ph", Json.String "i");
      ("s", Json.String "t");
      ("ts", Json.Float ts_us);
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("args", Json.Obj args) ]

let document events =
  Json.Obj
    [ ("traceEvents", Json.List events);
      ("displayTimeUnit", Json.String "ms") ]

let of_spans ?(pid = default_pid) ?(tid = default_tid) spans =
  let base =
    List.fold_left
      (fun acc (s : Probe.span) -> Float.min acc s.Probe.start_ns)
      infinity spans
  in
  let events =
    List.map
      (fun (s : Probe.span) ->
        complete_event ~pid ~tid ~name:s.Probe.probe
          ~ts_us:(us_of_ns (s.Probe.start_ns -. base))
          ~dur_us:(us_of_ns s.Probe.dur_ns)
          ~args:[])
      spans
  in
  document
    (metadata ~pid ~tid ~name:"process_name" ~value:"ba_run"
    :: metadata ~pid ~tid ~name:"thread_name" ~value:"probes"
    :: events)

(* Aggregate fallback: when a profile carries probe totals but no
   individual spans (the span ring was never installed), render each
   probe as one bar whose width is its cumulative time, laid end to
   end — a poor man's flamegraph that still shows where time went. *)
let of_totals ?(pid = default_pid) ?(tid = default_tid) totals =
  let _, events =
    List.fold_left
      (fun (cursor, acc) (name, count, total_ns) ->
        let dur_us = us_of_ns total_ns in
        let ev =
          complete_event ~pid ~tid ~name ~ts_us:cursor ~dur_us
            ~args:[ ("count", Json.Int count) ]
        in
        (cursor +. dur_us, ev :: acc))
      (0.0, []) totals
  in
  document
    (metadata ~pid ~tid ~name:"process_name" ~value:"ba_run"
    :: metadata ~pid ~tid ~name:"thread_name" ~value:"probe totals"
    :: List.rev events)

(* ---------- profile-document conversion --------------------------------- *)

let spans_of_profile json =
  let open Json in
  match member "spans" json with
  | None -> []
  | Some spans ->
      List.map
        (fun s ->
          { Probe.probe = as_string (member_exn "name" s);
            start_ns = as_float (member_exn "start_ns" s);
            dur_ns = as_float (member_exn "dur_ns" s) })
        (as_list spans)

let totals_of_profile json =
  let open Json in
  match member "probes" json with
  | None -> []
  | Some probes ->
      List.map
        (fun p ->
          ( as_string (member_exn "name" p),
            as_int (member_exn "count" p),
            as_float (member_exn "total_ns" p) ))
        (as_list probes)

let of_profile ?pid ?tid json =
  match spans_of_profile json with
  | [] -> of_totals ?pid ?tid (totals_of_profile json)
  | spans -> of_spans ?pid ?tid spans
