(** Bounded ring buffer: keeps the last [capacity] elements, evicting the
    oldest on overflow. The memory-bounded alternative to the
    grow-forever trace collector for long executions. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity <= 0]. *)

val add : 'a t -> 'a -> unit

val to_list : 'a t -> 'a list
(** Retained elements, oldest first. *)

val length : 'a t -> int

val capacity : 'a t -> int

val dropped : 'a t -> int
(** Number of elements evicted so far. *)
